// Chiplet strategy (the paper's Section 6.5): compare the original
// mixed-process Zen 2 against single-process chiplet and monolithic
// alternatives, with and without a silicon interposer, on
// time-to-market, cost and agility.
package main

import (
	"fmt"
	"log"

	"ttmcas"
)

func main() {
	const chips = 10e6

	zen := ttmcas.Zen2()
	zenIp, err := zen.WithInterposer(ttmcas.N65)
	if err != nil {
		log.Fatal(err)
	}
	all7 := zen.Retarget(ttmcas.N7)
	all7.Name = "all-7nm chiplets"
	mono7 := zen.Monolithic(ttmcas.N7)
	all12 := zen.Retarget(ttmcas.N12)
	all12.Name = "all-12nm chiplets"
	mono12 := zen.Monolithic(ttmcas.N12)

	designs := []ttmcas.Design{zen, zenIp, all7, mono7, all12, mono12}

	fmt.Printf("Zen 2 family, %.0fM chips, full capacity:\n\n", chips/1e6)
	fmt.Printf("%-28s %10s %10s %14s\n", "design", "TTM (wk)", "cost ($B)", "CAS (w/wk²)")
	for _, d := range designs {
		ttm, err := ttmcas.TTM(d, chips, ttmcas.FullCapacity())
		if err != nil {
			log.Fatal(err)
		}
		cost, err := ttmcas.Cost(d, chips)
		if err != nil {
			log.Fatal(err)
		}
		cas, err := ttmcas.CAS(d, chips, ttmcas.FullCapacity())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %10.1f %10.2f %14.0f\n", d.Name, float64(ttm), cost.Total.Billions(), cas.CAS)
	}

	// The paper's Fig. 13c behaviour: the mixed-process design is the
	// most agile at full capacity, but once the low-capacity 12nm I/O
	// line degrades it becomes the bottleneck and agility collapses.
	fmt.Println("\nCAS vs production capacity (zen2 vs all-7nm chiplets):")
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	zenCurve, err := ttmcas.CASCurve(zen, chips, ttmcas.FullCapacity(), fracs)
	if err != nil {
		log.Fatal(err)
	}
	c7Curve, err := ttmcas.CASCurve(all7, chips, ttmcas.FullCapacity(), fracs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%10s %14s %14s\n", "capacity", "zen2", "all-7nm")
	for i, f := range fracs {
		fmt.Printf("%9.0f%% %14.0f %14.0f\n", f*100, zenCurve[i].CAS, c7Curve[i].CAS)
	}

	// Interposer what-if: moving the interposer off the congested
	// legacy node helps (the paper moves it from 65nm to 40nm).
	ip40, err := zen.WithInterposer(ttmcas.N40)
	if err != nil {
		log.Fatal(err)
	}
	t65, err := ttmcas.TTM(zenIp, 100e6, ttmcas.FullCapacity())
	if err != nil {
		log.Fatal(err)
	}
	t40, err := ttmcas.TTM(ip40, 100e6, ttmcas.FullCapacity())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninterposer at 100M chips: 65nm -> %.1f wk, 40nm -> %.1f wk (saves %.1f weeks)\n",
		float64(t65), float64(t40), float64(t65-t40))
}
