#!/bin/sh
# Boots a 3-node ttmcas-serve cluster on localhost, waits for the ring
# to converge, routes the same TTM request through each node (watch the
# X-Cache header: the owner answers MISS then HIT, non-owners answer
# FWD), prints the /v1/cluster membership document, and tears the fleet
# down.
#
#   examples/cluster/launch.sh            # demo run, then shutdown
#   KEEP=1 examples/cluster/launch.sh     # leave the fleet running (^C to stop)
#   BASE_PORT=9000 examples/cluster/launch.sh
#
# Needs curl. Logs land in a temp dir printed at startup.
set -eu

cd "$(dirname "$0")/../.."

base="${BASE_PORT:-18081}"
p1="$base"; p2=$((base + 1)); p3=$((base + 2))
u1="http://127.0.0.1:$p1"; u2="http://127.0.0.1:$p2"; u3="http://127.0.0.1:$p3"

tmp="$(mktemp -d)"
echo "building ttmcas-serve (logs in $tmp)"
go build -o "$tmp/ttmcas-serve" ./cmd/ttmcas-serve

pids=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$pids" ] && kill $pids 2>/dev/null || true
    wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

start_node() { # port self peers name
    "$tmp/ttmcas-serve" -addr "127.0.0.1:$1" -cluster-addr "$2" \
        -peers "$3" -node-id "$4" -probe-interval 250ms \
        -access-log=false >"$tmp/$4.log" 2>&1 &
    pids="$pids $!"
}

start_node "$p1" "$u1" "$u2,$u3" node1
start_node "$p2" "$u2" "$u1,$u3" node2
start_node "$p3" "$u3" "$u1,$u2" node3

for u in "$u1" "$u2" "$u3"; do
    i=0
    until curl -sf "$u/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 50 ] && { echo "node at $u never became healthy" >&2; exit 1; }
        sleep 0.1
    done
done
echo "3 nodes up: $u1 $u2 $u3"

body='{"design":"a11","node":"28nm","n":10e6}'
echo
echo "same request through each node (X-Cache: owner MISS then HIT, non-owners FWD):"
for u in "$u1" "$u2" "$u3"; do
    xc="$(curl -s -D - -o /dev/null -d "$body" "$u/v1/ttm" | tr -d '\r' \
        | awk -F': ' 'tolower($1) == "x-cache" { print $2 }')"
    printf '  %s  ->  X-Cache: %s\n' "$u/v1/ttm" "${xc:-?}"
done

echo
echo "cluster document from node1:"
curl -s "$u1/v1/cluster"
echo

if [ "${KEEP:-0}" = "1" ]; then
    echo
    echo "fleet left running (KEEP=1); ^C to stop"
    wait
fi
