// Command jobsclient is an end-to-end walkthrough of the async jobs
// API: it starts the evaluation server on a random port, submits a
// Monte-Carlo band job over HTTP, polls its progress until it
// succeeds, fetches the result document, and then demonstrates
// cancelling a second, larger job mid-run — the programmatic
// equivalent of
//
//	ttmcas-serve -addr :8080 &
//	curl -s localhost:8080/v1/jobs -d '{"kind":"mc-band","design":"a11","node":"28nm","samples":64}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000002
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"ttmcas/internal/jobs"
	"ttmcas/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "jobsclient:", err)
		os.Exit(1)
	}
}

func run() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Logger: log.New(io.Discard, "", 0),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("server listening on %s\n\n", ln.Addr())

	// 1. Submit the paper's re-release question as a batch job: the
	// uncertainty band of A11@28nm TTM across capacity allocations.
	spec := `{"kind":"mc-band","design":"a11","node":"28nm","samples":64,"seed":7}`
	fmt.Printf("POST %s/v1/jobs\n  %s\n", base, spec)
	v, err := submit(base, spec)
	if err != nil {
		return err
	}
	fmt.Printf("  accepted as %s (%s)\n\n", v.ID, v.Status)

	// 2. Poll until it finishes, printing progress.
	for !v.Status.Finished() {
		time.Sleep(50 * time.Millisecond)
		if v, err = get(base, v.ID); err != nil {
			return err
		}
		fmt.Printf("  %s: %s %d/%d (%.0f%%)\n", v.ID, v.Status, v.Done, v.Total, v.Fraction*100)
	}
	if v.Status != jobs.StatusSucceeded {
		return fmt.Errorf("job %s ended %s: %s", v.ID, v.Status, v.Error)
	}

	// 3. Fetch the result document.
	raw, err := body(http.Get(base + "/v1/jobs/" + v.ID + "/result"))
	if err != nil {
		return err
	}
	var res struct {
		Result struct {
			Points []struct {
				X    float64  `json:"x"`
				Mean *float64 `json:"mean"`
			} `json:"points"`
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &res); err != nil {
		return err
	}
	fmt.Printf("\nband curve (%d points):\n", len(res.Result.Points))
	for _, p := range res.Result.Points {
		if p.Mean != nil {
			fmt.Printf("  x=%.2f  mean TTM %.1f weeks\n", p.X, *p.Mean)
		}
	}

	// 4. Cancellation: submit a much larger job and abort it mid-run.
	big, err := submit(base, `{"kind":"mc-band","design":"a11","node":"28nm","samples":4096,"seed":1}`)
	if err != nil {
		return err
	}
	for big.Status == jobs.StatusPending || big.Done == 0 {
		time.Sleep(5 * time.Millisecond)
		if big, err = get(base, big.ID); err != nil {
			return err
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+big.ID, nil)
	if _, err := body(http.DefaultClient.Do(req)); err != nil {
		return err
	}
	for !big.Status.Finished() {
		time.Sleep(10 * time.Millisecond)
		if big, err = get(base, big.ID); err != nil {
			return err
		}
	}
	fmt.Printf("\ncancelled %s after %d/%d evaluations (status %s)\n",
		big.ID, big.Done, big.Total, big.Status)

	cancel()
	return <-done
}

func submit(base, spec string) (jobs.View, error) {
	return view(http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec)))
}

func get(base, id string) (jobs.View, error) {
	return view(http.Get(base + "/v1/jobs/" + id))
}

func view(resp *http.Response, err error) (jobs.View, error) {
	raw, err := body(resp, err)
	if err != nil {
		return jobs.View{}, err
	}
	var v jobs.View
	if err := json.Unmarshal(raw, &v); err != nil {
		return jobs.View{}, err
	}
	return v, nil
}

func body(resp *http.Response, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 300 {
		return nil, fmt.Errorf("%s: %s", resp.Status, raw)
	}
	return raw, nil
}
