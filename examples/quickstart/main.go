// Quickstart: evaluate a design's time-to-market, agility and cost
// with the ttmcas public API, and see how the numbers move under a
// supply-chain disruption.
package main

import (
	"fmt"
	"log"

	"ttmcas"
)

func main() {
	// The Apple A11 case study: 4.3B transistors, 514M of them unique.
	// Re-releasing it today means picking a node and restarting the
	// tapeout phase there.
	design := ttmcas.A11().Retarget(ttmcas.N28)
	const chips = 10e6

	baseline := ttmcas.FullCapacity()
	r, err := ttmcas.Evaluate(design, chips, baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s, %.0fM chips at full capacity:\n", design.Name, chips/1e6)
	fmt.Printf("  tapeout      %5.1f weeks\n", float64(r.Tapeout))
	fmt.Printf("  fabrication  %5.1f weeks (%.0f wafers)\n", float64(r.Fabrication), float64(r.Nodes[0].Wafers))
	fmt.Printf("  packaging    %5.1f weeks\n", float64(r.Packaging))
	fmt.Printf("  TTM          %5.1f weeks\n\n", float64(r.TTM))

	// Chip Agility Score: how resilient is this choice to
	// production-side supply changes?
	cas, err := ttmcas.CAS(design, chips, baseline)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CAS = %.0f wafers/week² (higher = more agile)\n\n", cas.CAS)

	// Chip creation cost (Moonwalk-style: NRE + wafers + packaging).
	cost, err := ttmcas.Cost(design, chips)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost = $%.2fB total, $%.2f per chip\n\n", cost.Total.Billions(), float64(cost.PerChip))

	// Now a 2021-style shortage: every node quotes a 4-week lead time
	// and capacity drops to 70%.
	shortage := ttmcas.FullCapacity().WithQueueAll(4).AtCapacity(0.7)
	stressed, err := ttmcas.TTM(design, chips, shortage)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("under a shortage (4-week queues, 70%% capacity): TTM = %.1f weeks (+%.1f)\n",
		float64(stressed), float64(stressed-r.TTM))
}
