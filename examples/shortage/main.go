// Shortage planning: an automotive-class product team needs to ship
// chips through a 2021-style shortage. This example walks the analysis
// the paper enables: (1) which node gets the re-released design to
// market fastest, (2) how queues and capacity loss punish that choice,
// (3) how an in-flight order rides through a disruption, via the
// discrete-event fab simulator.
package main

import (
	"fmt"
	"log"
	"sort"

	"ttmcas"
)

func main() {
	const chips = 10e6
	design := ttmcas.A11()

	// (1) Node selection under the baseline market.
	type row struct {
		node ttmcas.Node
		ttm  ttmcas.Weeks
		cas  float64
	}
	var rows []row
	for _, node := range ttmcas.ProducingNodes() {
		d := design.Retarget(node)
		ttm, err := ttmcas.TTM(d, chips, ttmcas.FullCapacity())
		if err != nil {
			log.Fatal(err)
		}
		cas, err := ttmcas.CAS(d, chips, ttmcas.FullCapacity())
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{node, ttm, cas.CAS})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ttm < rows[j].ttm })
	fmt.Printf("re-releasing %s for %.0fM chips — node ranking by TTM:\n", design.Name, chips/1e6)
	for i, r := range rows {
		marker := ""
		if i == 0 {
			marker = "  <- fastest to market"
		}
		fmt.Printf("  %-6s TTM %6.1f wk   CAS %9.0f%s\n", r.node, float64(r.ttm), r.cas, marker)
	}
	fastest := rows[0].node

	// (2) Stress the chosen node with the built-in scenarios.
	fmt.Printf("\nstress-testing the %s choice:\n", fastest)
	d := design.Retarget(fastest)
	for _, s := range ttmcas.Scenarios() {
		ttm, err := ttmcas.TTM(d, chips, s.Conditions)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s TTM %6.1f wk   (%s)\n", s.Name, float64(ttm), s.Description)
	}

	// The Monte-Carlo view: how trustworthy is the point estimate
	// given ±10% uncertainty in the six guarded inputs?
	est, err := ttmcas.TTMWithUncertainty(d, chips, ttmcas.FullCapacity(), ttmcas.MCConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith ±10%% input uncertainty: TTM = %.1f wk, 95%% CI [%.1f, %.1f] (%d samples)\n",
		est.Mean, est.CI.Lo, est.CI.Hi, est.Samples)

	// (3) An order already in the fab when disaster strikes: week 1, a
	// storm takes the line to 25%; week 6 it recovers.
	line, err := ttmcas.FabLineFor(fastest)
	if err != nil {
		log.Fatal(err)
	}
	r, err := ttmcas.Evaluate(d, chips, ttmcas.FullCapacity())
	if err != nil {
		log.Fatal(err)
	}
	wafers := float64(r.Nodes[0].Wafers)
	clean, err := ttmcas.SimulateFab(line, wafers, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	storm, err := ttmcas.SimulateFab(line, wafers, 0, []ttmcas.FabDisruption{
		{AtWeek: 1, Fraction: 0.25},
		{AtWeek: 6, Fraction: 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscrete-event fab run of the %.0f-wafer order at %s:\n", wafers, fastest)
	fmt.Printf("  undisrupted: last wafer packaged at week %.1f\n", float64(clean.LastPackaged))
	fmt.Printf("  storm wk1-6 (25%% capacity): last wafer packaged at week %.1f (+%.1f weeks)\n",
		float64(storm.LastPackaged), float64(storm.LastPackaged-clean.LastPackaged))
}
