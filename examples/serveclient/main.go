// Command serveclient is an end-to-end smoke test of the HTTP
// evaluation service: it starts ttmcas-serve's server on a random
// port, issues a TTM and a CAS request over real HTTP, and prints the
// responses — the programmatic equivalent of
//
//	ttmcas-serve -addr :8080 &
//	curl -s localhost:8080/v1/ttm -d '{"design":"a11","node":"28nm","n":10e6}'
//	curl -s localhost:8080/v1/cas -d '{"design":"zen2","n":10e6}'
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"ttmcas/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serveclient:", err)
		os.Exit(1)
	}
}

func run() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Logger: log.New(io.Discard, "", 0),
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("server listening on %s\n\n", ln.Addr())

	// The paper's re-release question: the A11 on 28 nm, 10 M chips.
	if err := post(base+"/v1/ttm", `{"design":"a11","node":"28nm","n":10e6}`); err != nil {
		return err
	}
	// And how agile is the Zen 2 chiplet design?
	if err := post(base+"/v1/cas", `{"design":"zen2","n":10e6}`); err != nil {
		return err
	}

	cancel()
	return <-done
}

func post(url, body string) error {
	fmt.Printf("POST %s\n  %s\n", url, body)
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, raw)
	}
	var pretty map[string]any
	if err := json.Unmarshal(raw, &pretty); err != nil {
		return err
	}
	out, _ := json.MarshalIndent(pretty, "  ", "  ")
	fmt.Printf("  %s\n\n", out)
	return nil
}
