// Multi-process manufacturing (the paper's Section 7): tape out the
// same microcontroller on two process nodes in parallel and find the
// production split that maximizes the Chip Agility Score while keeping
// time-to-market and cost in check.
package main

import (
	"fmt"
	"log"

	"ttmcas"
	"ttmcas/internal/opt"
)

func main() {
	const chips = 1e9 // automotive-scale MCU volume

	study := opt.SplitStudy{
		Factory: func(n ttmcas.Node) ttmcas.Design { return ttmcas.RavenMCU(n) },
		Step:    0.02,
	}

	// Single-process baselines.
	fmt.Printf("Raven-class MCU, %.0fB chips — single-process baselines:\n", chips/1e9)
	singles := map[ttmcas.Node]opt.SplitPoint{}
	for _, node := range []ttmcas.Node{ttmcas.N250, ttmcas.N130, ttmcas.N90, ttmcas.N40, ttmcas.N28} {
		pt, err := study.BestSplit(node, node, chips)
		if err != nil {
			log.Fatal(err)
		}
		singles[node] = pt
		fmt.Printf("  %-6s TTM %6.1f wk   cost $%.2fB   CAS %9.0f\n",
			node, float64(pt.TTM), pt.Cost.Billions(), pt.CAS)
	}

	// CAS-optimal two-process splits for a few interesting pairs.
	fmt.Println("\nCAS-optimal two-process splits:")
	pairs := [][2]ttmcas.Node{
		{ttmcas.N28, ttmcas.N40},
		{ttmcas.N250, ttmcas.N180},
		{ttmcas.N130, ttmcas.N90},
		{ttmcas.N90, ttmcas.N65},
	}
	for _, p := range pairs {
		pt, err := study.BestSplit(p[0], p[1], chips)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s + %-6s  %3.0f%%/%3.0f%% split  TTM %6.1f wk  cost $%.2fB  CAS %9.0f\n",
			p[0], p[1], pt.FracPrimary*100, (1-pt.FracPrimary)*100,
			float64(pt.TTM), pt.Cost.Billions(), pt.CAS)
	}

	// The headline comparison of Section 7: the fastest multi-process
	// split vs the fastest single process and the cheapest process.
	best, err := study.BestSplit(ttmcas.N28, ttmcas.N40, chips)
	if err != nil {
		log.Fatal(err)
	}
	single28 := singles[ttmcas.N28]
	fmt.Printf("\n28nm+40nm split vs single 28nm:\n")
	fmt.Printf("  agility: %.0f vs %.0f (%.0f%% more agile)\n",
		best.CAS, single28.CAS, (best.CAS/single28.CAS-1)*100)
	fmt.Printf("  TTM:     %.1f vs %.1f weeks\n", float64(best.TTM), float64(single28.TTM))
	fmt.Printf("  cost:    $%.2fB vs $%.2fB (%+.1f%%)\n",
		best.Cost.Billions(), single28.Cost.Billions(),
		(float64(best.Cost)/float64(single28.Cost)-1)*100)

	// Legacy rescue: how much does pairing save the slow legacy nodes?
	fmt.Println("\nlegacy-node rescue (weeks saved by adding the next node down):")
	for _, p := range [][2]ttmcas.Node{{ttmcas.N250, ttmcas.N180}, {ttmcas.N130, ttmcas.N90}, {ttmcas.N90, ttmcas.N65}} {
		pt, err := study.BestSplit(p[0], p[1], chips)
		if err != nil {
			log.Fatal(err)
		}
		saved := float64(singles[p[0]].TTM - pt.TTM)
		fmt.Printf("  %-6s alone %6.1f wk -> with %-6s %6.1f wk (saves %.1f weeks)\n",
			p[0], float64(singles[p[0]].TTM), p[1], float64(pt.TTM), saved)
	}
}
