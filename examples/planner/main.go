// Design-methodology automation (the paper's Section 7, as a tool): a
// product team states requirements — volume, deadline, budget, minimum
// agility — and the planner searches every producing node and every
// CAS-optimal two-process split for the plan that maximizes the Chip
// Agility Score subject to the constraints.
package main

import (
	"errors"
	"fmt"
	"log"

	"ttmcas"
)

func main() {
	// The product: a mass-market MCU, one billion units.
	base := ttmcas.RavenMCU(ttmcas.N180)
	planner := ttmcas.NewPlanner(base)

	show := func(label string, req ttmcas.PlanRequirements) {
		fmt.Printf("%s\n", label)
		best, all, err := planner.Recommend(req)
		switch {
		case errors.Is(err, ttmcas.ErrNoFeasiblePlan):
			fmt.Println("  no feasible plan; nearest candidates:")
			for i, o := range all {
				if i == 3 {
					break
				}
				fmt.Printf("    %-18s TTM %5.1f wk  CAS %8.0f  — %v\n",
					o.Name, float64(o.TTM), o.CAS, o.Violations)
			}
			fmt.Println()
			return
		case err != nil:
			log.Fatal(err)
		}
		fmt.Printf("  recommended: %-18s TTM %5.1f wk  cost $%.2fB  CAS %8.0f\n",
			best.Name, float64(best.TTM), best.Cost.Billions(), best.CAS)
		for i, o := range all {
			if i == 3 || !o.Feasible {
				break
			}
			if o.Name != best.Name {
				fmt.Printf("  runner-up:   %-18s TTM %5.1f wk  cost $%.2fB  CAS %8.0f\n",
					o.Name, float64(o.TTM), o.Cost.Billions(), o.CAS)
			}
		}
		fmt.Println()
	}

	// Unconstrained CAS maximization exposes a real property of Eq. 8:
	// a plan whose critical path is a fixed fab latency (a sliver of
	// volume parked on a slow, high-latency line) is almost immune to
	// wafer-rate changes — maximally "agile" but slow. Agility is not
	// speed; that is why the paper pairs CAS with TTM and cost, and why
	// the constrained queries below give the useful answers.
	show("1B chips, unconstrained (pure agility play):",
		ttmcas.PlanRequirements{Volume: 1e9})

	show("1B chips, must ship within 19 weeks:",
		ttmcas.PlanRequirements{Volume: 1e9, Deadline: 19})

	show("1B chips, 19-week deadline AND at least 150k CAS:",
		ttmcas.PlanRequirements{Volume: 1e9, Deadline: 19, MinCAS: 150_000})

	show("1B chips, impossible 10-week deadline:",
		ttmcas.PlanRequirements{Volume: 1e9, Deadline: 10})
}
