// Custom foundry data: the paper open-sources its framework so users
// can "easily plug in their values". This example builds a private
// node database — your foundry's quoted rates, your NDA'd defect
// densities — and re-runs the node-selection analysis against it,
// including a speculative 3nm entry extrapolated from the effort
// curves.
package main

import (
	"fmt"
	"log"
	"os"

	"ttmcas"
)

func main() {
	// Start from the built-in calibration and override what you know
	// better. Here: our foundry's 28nm line runs at 500 kW/month (not
	// the public 350) but with a slightly worse defect density.
	db := ttmcas.DefaultNodeDatabase()
	our28, err := db.Lookup(ttmcas.N28)
	if err != nil {
		log.Fatal(err)
	}
	our28.WaferRate = kwpm(500)
	our28.DefectDensity = 0.07
	db, err = db.With(our28)
	if err != nil {
		log.Fatal(err)
	}

	// Add a node the public table does not have: a speculative 3nm
	// class, priced off the 5nm entry with the extrapolated tapeout
	// effort (tapeout cost keeps growing past 5nm).
	n5, err := db.Lookup(ttmcas.N5)
	if err != nil {
		log.Fatal(err)
	}
	n3 := n5
	n3.Node = ttmcas.Node(3)
	n3.WaferRate = kwpm(50)
	n3.Density = n5.Density * 1.6
	n3.DefectDensity = 0.16
	n3.FabLatency = 22
	n3.TapeoutEffort = n5.TapeoutEffort * 1.5
	n3.WaferCost = 26000
	n3.MaskSetCost = 5e6
	db, err = db.With(n3)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate the A11 re-release against OUR numbers.
	m := ttmcas.Model{Nodes: db}
	cm := ttmcas.CostModel{Nodes: db}
	const chips = 10e6
	fmt.Println("A11 re-release, 10M chips, against the private node database:")
	for _, node := range []ttmcas.Node{ttmcas.N28, ttmcas.N7, ttmcas.N5, ttmcas.Node(3)} {
		d := ttmcas.A11().Retarget(node)
		r, err := m.Evaluate(d, chips, ttmcas.FullCapacity())
		if err != nil {
			log.Fatal(err)
		}
		total, err := cm.Total(d, chips)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s tapeout %5.1f wk  fab %5.1f wk  TTM %5.1f wk  cost $%.2fB\n",
			node, float64(r.Tapeout), float64(r.Fabrication), float64(r.TTM), total.Billions())
	}

	// Compare against the public calibration: our beefed-up 28nm line
	// cuts fabrication time.
	pub, err := ttmcas.TTM(ttmcas.A11().Retarget(ttmcas.N28), chips, ttmcas.FullCapacity())
	if err != nil {
		log.Fatal(err)
	}
	ours, err := m.TTM(ttmcas.A11().Retarget(ttmcas.N28), chips, ttmcas.FullCapacity())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n28nm with our 500 kW/month line: %.1f wk vs %.1f wk public (%.1f weeks faster)\n",
		float64(ours), float64(pub), float64(pub-ours))

	// The database serializes to JSON for the CLI (-nodedb) and for
	// sharing inside the company.
	path := "custom-nodes.json"
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(path)
	if err := ttmcas.WriteNodeDatabase(f, db); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s — reusable via 'ttmcas ttm -nodedb %s ...'\n", path, path)
}

// kwpm converts kilo-wafers per month into the API's wafers-per-week.
func kwpm(kw float64) ttmcas.WafersPerWeek {
	return ttmcas.WafersPerWeek(kw * 1000 / (365.25 / 12 / 7))
}
