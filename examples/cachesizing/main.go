// Cache sizing under time-to-market pressure (the paper's Section 6.1
// case study): sweep a 16-core Ariane's instruction and data caches,
// measure IPC with the trace-driven cache simulator, and find the
// configurations that maximize IPC per week of time-to-market versus
// IPC per dollar.
package main

import (
	"fmt"
	"log"

	"ttmcas"
	"ttmcas/internal/cachesim"
	"ttmcas/internal/opt"
)

func main() {
	// Build the IPC table once: simulate a SPEC-like synthetic
	// workload across cache capacities from 1 KB to 1 MB.
	fmt.Println("simulating cache miss curves (SPEC-like synthetic workload)...")
	table, err := cachesim.BuildIPCTable(cachesim.SPECLike(), cachesim.CPUModel{}, cachesim.SweepSizesKB, 500_000)
	if err != nil {
		log.Fatal(err)
	}

	// Evaluate every (I$, D$) pair for 100M chips at 14nm.
	study := opt.CacheStudy{Table: table}
	points, err := study.Evaluate(ttmcas.N14, 100e6)
	if err != nil {
		log.Fatal(err)
	}

	byTTM, err := opt.Best(points, opt.MaxIPCPerTTM)
	if err != nil {
		log.Fatal(err)
	}
	byCost, err := opt.Best(points, opt.MaxIPCPerCost)
	if err != nil {
		log.Fatal(err)
	}
	byIPC, err := opt.Best(points, opt.MaxIPC)
	if err != nil {
		log.Fatal(err)
	}

	show := func(label string, p opt.CachePoint) {
		fmt.Printf("%-22s I$=%4dKB D$=%4dKB  IPC=%.4f  TTM=%.1fwk  cost=$%.2fB\n",
			label, p.IKB, p.DKB, p.IPC, float64(p.TTM), p.Cost.Billions())
	}
	fmt.Println("\n16-core Ariane, 100M chips, 14nm:")
	show("max IPC:", byIPC)
	show("max IPC/TTM:", byTTM)
	show("max IPC/cost:", byCost)

	fmt.Printf("\nthe IPC/TTM optimum gives up %.1f%% IPC/cost;\n",
		(1-byTTM.IPCPerCost/byCost.IPCPerCost)*100)
	fmt.Printf("the IPC/cost optimum gives up %.1f%% IPC/TTM —\n",
		(1-byCost.IPCPerTTM/byTTM.IPCPerTTM)*100)
	fmt.Println("in a race to market, optimizing for IPC/TTM is the safer compromise.")

	// How does the optimum move with volume on a legacy node?
	fmt.Println("\nIPC/TTM-optimal caches on 65nm by production volume:")
	for _, n := range []float64{1e4, 1e6, 1e8} {
		pts, err := study.Evaluate(ttmcas.N65, n)
		if err != nil {
			log.Fatal(err)
		}
		best, err := opt.Best(pts, opt.MaxIPCPerTTM)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %10.0f chips: I$=%4dKB D$=%4dKB (TTM %.1fwk)\n", n, best.IKB, best.DKB, float64(best.TTM))
	}
}
