module ttmcas

go 1.22
