// Package ttmcas is an open-source Go implementation of the modeling
// framework from "Supply Chain Aware Computer Architecture" (Ning,
// Tziantzioulis, Wentzlaff — ISCA 2023): a chip-creation
// time-to-market model, the Chip Agility Score (CAS), and a
// Moonwalk-style chip-creation cost model, together with the
// substrates needed to reproduce the paper's five case studies — a
// process-node database, a negative-binomial yield model, a
// trace-driven cache simulator, structural accelerator models, a
// discrete-event fab-pipeline simulator, Monte-Carlo uncertainty and
// Sobol sensitivity analysis, and optimizers for cache sizing and
// multi-process production splits.
//
// # Quick start
//
//	d := ttmcas.A11().Retarget(ttmcas.N28) // re-release the A11 at 28nm
//	r, err := ttmcas.Evaluate(d, 10e6, ttmcas.FullCapacity())
//	// r.TTM is the time-to-market in calendar weeks;
//	// r.Tapeout/r.Fabrication/r.Packaging decompose it (Eq. 1).
//
//	cas, err := ttmcas.CAS(d, 10e6, ttmcas.FullCapacity())
//	// cas.CAS is the Chip Agility Score (Eq. 8), wafers/week².
//
//	cost, err := ttmcas.Cost(d, 10e6)
//	// cost.Total decomposes into NRE, wafers and packaging.
//
// Market conditions model the supply-chain state: capacity fractions
// per node and quoted foundry queues:
//
//	shortage := ttmcas.FullCapacity().WithQueue(ttmcas.N7, 4).AtCapacity(0.6)
//
// Every figure and table of the paper's evaluation regenerates through
// the Figure function (or the ttmcas CLI's `figure`/`table`
// subcommands), and the benchmark harness in bench_test.go times each
// one.
//
// # Serving
//
// The cmd/ttmcas-serve binary runs the framework as an always-on HTTP
// evaluation service (internal/server): a JSON REST API over this
// package — POST /v1/ttm, /v1/cas, /v1/cost, /v1/sensitivity,
// /v1/plan, /v1/scenarios (timeline evaluation) and GET /v1/nodes,
// /v1/scenarios, /v1/designs, /v1/episodes — with a
// keyed LRU response cache, single-flight deduplication of concurrent
// identical evaluations, a bounded worker pool for the expensive
// analyses, per-request timeouts, graceful shutdown, and
// /healthz + /metrics endpoints. Built-in designs are addressable by
// name through DesignByName, the same registry the CLI's -design flag
// uses.
//
// # Operating under overload
//
// The server degrades predictably instead of collapsing when offered
// more work than it can finish (internal/resilience). Every
// evaluation route passes through a CoDel-style admission limiter —
// one per route class, cheap (closed-form evaluations) and heavy (the
// sensitivity/plan worker pool): while the minimum queueing delay
// over a rolling interval exceeds the -shed-target-ms target,
// arrivals are shed with 503 and a Retry-After header rather than
// queued behind work that cannot finish in time. Cache hits bypass
// admission, so a shedding server still serves its hot set at full
// speed. With -fresh-ttl/-stale-ttl configured, cached bodies that
// have gone stale are recomputed on access, but a shed or failed
// recompute falls back to the retained body, marked X-Cache: STALE,
// while a bounded background refresh repopulates the entry; client
// errors are never stale-masked. An off-by-default fault-injection
// middleware (-fault-spec; internal/resilience/faultinject) drives
// chaos tests: cmd/ttmcas-loadgen's chaos scenario runs fault-injected
// load and asserts availability — every 5xx a deliberate shed, goodput
// at least 90% of admitted requests, no goroutine leaks after drain.
//
// # Running a cluster
//
// Several ttmcas-serve processes form a cluster given only each
// other's URLs (-peers plus -cluster-addr; internal/cluster — no
// coordinator, no external store). A consistent-hash ring with
// virtual nodes maps each request's canonical cache key to one owning
// node: send any request to any node, the owner computes and caches
// it, a non-owner forwards server-side in one hop (X-Cache: FWD) or,
// with -forward=false, answers a 307 redirect to the owner — so each
// distinct evaluation is computed once cluster-wide. Batch jobs route
// to their owner the same way and are findable through any node.
// Gossip-style health probes drive an alive → suspect → dead state
// machine: a suspect peer keeps its ring segment (brief stalls don't
// reshuffle the keyspace), a dead one is evicted and the ring
// rebalances, moving only ≈1/N of the keyspace; the first successful
// probe rejoins it. A failed forward falls back to local computation
// — availability beats placement — and /v1/cluster plus the
// ttmcas_cluster_* metrics expose membership, epoch and traffic
// placement. cmd/ttmcas-loadgen's cluster scenario drives an
// in-process N-node fleet through a kill and rejoin and asserts
// near-linear scaling (make clustersmoke).
//
// # Batch jobs
//
// The analyses behind the paper's figures — Monte-Carlo uncertainty
// bands, Sobol sensitivity, node-by-volume sweeps, cache Pareto
// fronts, multi-scenario plan portfolios — take seconds to minutes, so
// the server also runs them asynchronously (internal/jobs): POST
// /v1/jobs accepts a typed spec and returns 202 with a job id; GET
// /v1/jobs/{id} reports progress (done/total and ETA); DELETE cancels
// a running job promptly. Jobs are executed by a bounded worker pool
// with per-job deadlines and panic isolation, and with snapshot
// persistence enabled they survive a server restart: finished results
// come back queryable and interrupted jobs re-run from their
// deterministic specs. The ttmcas CLI's `jobs` subcommand runs the
// same specs locally without a server.
//
// # Composing scenarios
//
// Static market conditions answer "what does TTM look like under this
// state"; disruptions are trajectories. The timeline composer
// (internal/timeline, exported here as TimelineSpec, CompileTimeline
// and EvaluateTimeline) turns a declarative spec — fab-outage ramps
// with recovery, demand shocks with the hoarding feedback,
// queue-depth drift, composed over a named base scenario — into a
// piecewise conditions curve, evaluates TTM and CAS at every step
// through the same compiled kernel as the static path, and reports
// summary statistics: peak TTM, peak CAS degradation, time-to-recover
// and the integrated AUC schedule loss. An optional in-flight study
// simulates an order placed at week 0 through the disruption
// (promised vs simulated TTM). A built-in library of historical
// episodes (TimelineEpisodes; the 2020-22 global shortage, a
// single-fab loss, an export-control shock, a fab-fire recovery) is
// anchored bit-for-bit to the static scenario library at its
// endpoints. The server evaluates timelines inline at POST
// /v1/scenarios, asynchronously as the "timeline" job kind, and the
// CLI's `timeline` subcommand runs them locally.
//
// # Performance
//
// The analysis layers do not evaluate the map-based model directly:
// core.Model.Compile resolves a (design, volume, conditions) triple
// once into a flat, allocation-free evaluation kernel, and the
// Monte-Carlo, Sobol and split-study drivers fan out over it in
// adaptive chunks with one kernel clone and one RNG per worker
// (falling back to inline serial execution for small batches, so
// parallel entry points never lose to serial ones). The compiled
// kernel is tested bit-for-bit against the oracle Evaluate across all
// built-in designs and market scenarios, and `make bench` records the
// kernel and driver throughput — with allocation counts — in
// BENCH_jobs.json.
//
// On top of the compiled kernel sits a structure-of-arrays batch path:
// Evaluator.EvalBatch and CASBatch (plus at-capacity variants) take a
// core.Batch of flat per-input columns — perturbation fields, chip
// counts, a global factor, per-node factor and queue columns in
// compiled node order, with nil meaning "default for every sample" —
// and fill caller-preallocated output slices in one call. Per-sample
// failures come back as a compact index list (core.BatchErrors) whose
// First method returns the lowest-index failure, exactly what a serial
// per-call loop would have hit, with the identical error value. The
// batch path is oracle-tested bit-for-bit against per-call Eval
// (values and error reporting) and is allocation-free in steady state;
// callers pool the Batch, outputs and BatchErrors per worker and give
// each worker its own Evaluator.Clone. Every hot driver — the
// Monte-Carlo bands, the Saltelli AB_i fan-out, sweep chunk bodies,
// the split-study fraction sweep, and per-step timeline evaluation
// (compiled once, stepped via SetConditions) — feeds this batch path
// through pooled per-worker buffers.
//
// The HTTP service applies the same discipline to its hot path. A
// sharded, byte-budgeted LRU caches encoded response bodies (a hit
// costs a map lookup plus pooled, precomputed writes — no encoding,
// no timer, near-zero allocation), single-flight collapses concurrent
// identical misses, and a second LRU caches compiled evaluators per
// (design, scenario, model-variant) so misses skip re-compilation.
// cmd/ttmcas-loadgen load-tests the stack closed-loop (cached,
// uncached and mixed scenarios, in-process or live) and `make bench`
// records RPS and p50/p95/p99 latency in BENCH_serve.json; on one
// shared Xeon vCPU the cached-hit path sustains roughly six times the
// throughput of full uncached computes at ~12x lower p99.
//
// The model equations are implemented exactly as printed in the paper;
// parameter values are calibrated to the paper's published anchors as
// documented in DESIGN.md. Absolute weeks and dollars are
// representational — comparisons between designs, nodes and market
// conditions are the intended use, as in the paper itself.
package ttmcas
