package ttmcas_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"ttmcas"
)

func TestEvaluateA11(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N28)
	r, err := ttmcas.Evaluate(d, 10e6, ttmcas.FullCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if r.TTM <= 0 || r.TTM != r.DesignTime+r.Tapeout+r.Fabrication+r.Packaging {
		t.Errorf("breakdown inconsistent: %+v", r)
	}
	ttm, err := ttmcas.TTM(d, 10e6, ttmcas.FullCapacity())
	if err != nil || ttm != r.TTM {
		t.Errorf("TTM() = %v, %v", ttm, err)
	}
}

func TestCASAndCurve(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N7)
	cas, err := ttmcas.CAS(d, 10e6, ttmcas.FullCapacity())
	if err != nil || cas.CAS <= 0 {
		t.Fatalf("CAS = %+v, %v", cas, err)
	}
	curve, err := ttmcas.CASCurve(d, 10e6, ttmcas.FullCapacity(), []float64{0.5, 1.0})
	if err != nil || len(curve) != 2 {
		t.Fatalf("curve = %v, %v", curve, err)
	}
	if curve[0].CAS >= curve[1].CAS {
		t.Error("CAS should rise with capacity")
	}
}

func TestCostFacade(t *testing.T) {
	b, err := ttmcas.Cost(ttmcas.Zen2(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != b.MaskNRE+b.TapeoutNRE+b.Wafers+b.Packaging {
		t.Errorf("cost breakdown inconsistent: %+v", b)
	}
}

func TestNodeHelpers(t *testing.T) {
	if len(ttmcas.Nodes()) != 12 {
		t.Errorf("Nodes() = %d, want 12", len(ttmcas.Nodes()))
	}
	if len(ttmcas.ProducingNodes()) != 10 {
		t.Errorf("ProducingNodes() = %d, want 10", len(ttmcas.ProducingNodes()))
	}
	n, err := ttmcas.ParseNode("28nm")
	if err != nil || n != ttmcas.N28 {
		t.Errorf("ParseNode = %v, %v", n, err)
	}
	p, err := ttmcas.LookupNode(ttmcas.N12)
	if err != nil || !p.InProduction() {
		t.Errorf("12nm variant should resolve: %+v, %v", p, err)
	}
}

func TestUncertaintyFacade(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N28)
	est, err := ttmcas.TTMWithUncertainty(d, 10e6, ttmcas.FullCapacity(), ttmcas.MCConfig{Samples: 64})
	if err != nil || !est.CI.Contains(est.Mean) {
		t.Fatalf("estimate = %+v, %v", est, err)
	}
	cas, err := ttmcas.CASWithUncertainty(d, 10e6, ttmcas.FullCapacity(), ttmcas.MCConfig{Samples: 32})
	if err != nil || cas.Mean <= 0 {
		t.Fatalf("cas estimate = %+v, %v", cas, err)
	}
}

func TestSensitivityFacade(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N5)
	res, err := ttmcas.Sensitivity(d, 10e6, ttmcas.FullCapacity(), ttmcas.SensitivityConfig{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Total) != len(ttmcas.SensitivityInputs()) {
		t.Errorf("inputs = %v", res)
	}
	// 5nm: unique transistor count should carry real weight.
	idx := -1
	for i, name := range res.Inputs {
		if name == "NUT" {
			idx = i
		}
	}
	if idx < 0 || res.Total[idx] < 0.1 {
		t.Errorf("NUT S_T at 5nm = %v, want substantial", res.Total)
	}
}

func TestDieYield(t *testing.T) {
	y, err := ttmcas.DieYield(1660, ttmcas.N250)
	if err != nil || math.Abs(y-0.48) > 0.01 {
		t.Errorf("yield = %v, %v", y, err)
	}
	if _, err := ttmcas.DieYield(100, ttmcas.Node(3)); err == nil {
		t.Error("unknown node should error")
	}
}

func TestFabFacade(t *testing.T) {
	line, err := ttmcas.FabLineFor(ttmcas.N28)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ttmcas.SimulateFab(line, 10_000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastPackaged <= res.LastFabComplete {
		t.Errorf("milestones out of order: %+v", res)
	}
	if _, err := ttmcas.FabLineFor(ttmcas.Node(3)); err == nil {
		t.Error("unknown node should error")
	}
}

func TestFigureFacade(t *testing.T) {
	ids := ttmcas.FigureIDs()
	if len(ids) != 23 {
		t.Fatalf("FigureIDs = %v", ids)
	}
	r, err := ttmcas.Figure("t2", ttmcas.FastFigures())
	if err != nil || r.ID != "t2" {
		t.Fatalf("Figure(t2) = %v, %v", r, err)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestScenariosFacade(t *testing.T) {
	if len(ttmcas.Scenarios()) < 5 {
		t.Error("scenarios missing")
	}
	d := ttmcas.Ariane16(32, 32, ttmcas.N14)
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if err := ttmcas.RavenMCU(ttmcas.N180).Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlannerFacade(t *testing.T) {
	p := ttmcas.NewPlanner(ttmcas.RavenMCU(ttmcas.N180))
	p.MultiProcess = false
	p.Nodes = []ttmcas.Node{ttmcas.N40, ttmcas.N28}
	best, all, err := p.Recommend(ttmcas.PlanRequirements{Volume: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if best.Name == "" || len(all) != 2 {
		t.Fatalf("best=%+v all=%d", best, len(all))
	}
	_, _, err = p.Recommend(ttmcas.PlanRequirements{Volume: 1e8, Deadline: 1})
	if !errors.Is(err, ttmcas.ErrNoFeasiblePlan) {
		t.Errorf("err = %v, want ErrNoFeasiblePlan", err)
	}
	if ttmcas.SplitFactory(ttmcas.RavenMCU(ttmcas.N180))(ttmcas.N28).Dies[0].Node != ttmcas.N28 {
		t.Error("SplitFactory should retarget")
	}
}

func TestDesignRegistry(t *testing.T) {
	names := ttmcas.DesignNames()
	want := []string{"a11", "zen2", "ariane16", "raven", "chipA", "chipB"}
	if len(names) != len(want) {
		t.Fatalf("DesignNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("DesignNames[%d] = %q, want %q", i, names[i], n)
		}
	}
	for _, name := range names {
		d, err := ttmcas.DesignByName(name)
		if err != nil {
			t.Errorf("DesignByName(%q): %v", name, err)
			continue
		}
		if err := d.Validate(); err != nil {
			t.Errorf("%s: invalid design: %v", name, err)
		}
		if ttmcas.DesignStudy(name) == "" {
			t.Errorf("DesignStudy(%q) empty", name)
		}
	}
	// Case-insensitive, as the CLI always accepted.
	if d, err := ttmcas.DesignByName("CHIPA"); err != nil || d.Name != ttmcas.ChipA().Name {
		t.Errorf("DesignByName(CHIPA) = %v, %v", d.Name, err)
	}
	if _, err := ttmcas.DesignByName("nonesuch"); err == nil {
		t.Error("unknown design should error")
	}
	if ttmcas.DesignStudy("nonesuch") != "" {
		t.Error("unknown design should have no study")
	}
}

// TestWriteNodeDatabaseNil pins the doc-comment promise that a nil
// database serializes the built-in calibrated one (the nil-receiver
// path of technode.Database.WriteJSON).
func TestWriteNodeDatabaseNil(t *testing.T) {
	var nilOut, defaultOut bytes.Buffer
	if err := ttmcas.WriteNodeDatabase(&nilOut, nil); err != nil {
		t.Fatalf("WriteNodeDatabase(w, nil): %v", err)
	}
	if err := ttmcas.WriteNodeDatabase(&defaultOut, ttmcas.DefaultNodeDatabase()); err != nil {
		t.Fatalf("WriteNodeDatabase(w, Default): %v", err)
	}
	if nilOut.String() != defaultOut.String() {
		t.Error("nil database should serialize identically to the built-in one")
	}
	db, err := ttmcas.ReadNodeDatabase(&nilOut)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	for _, n := range ttmcas.Nodes() {
		got, err := db.Lookup(n)
		if err != nil {
			t.Fatalf("round-tripped database missing %s: %v", n, err)
		}
		want, _ := ttmcas.LookupNode(n)
		if got != want {
			t.Errorf("%s: round trip changed params:\n got %+v\nwant %+v", n, got, want)
		}
	}
}

func TestParseNodeErrorPaths(t *testing.T) {
	cases := []struct {
		in      string
		want    ttmcas.Node
		wantErr bool
	}{
		{"", 0, true},
		{"3nm", 0, true}, // plausible-looking but outside the database
		{"abc", 0, true},
		{"-7", 0, true},
		{"28nm", ttmcas.N28, false},
		{"28", ttmcas.N28, false},
		{"28nm ", ttmcas.N28, false}, // trailing whitespace is tolerated
		{" 28", ttmcas.N28, false},
	}
	for _, tc := range cases {
		n, err := ttmcas.ParseNode(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseNode(%q) = %v, want error", tc.in, n)
			}
			continue
		}
		if err != nil || n != tc.want {
			t.Errorf("ParseNode(%q) = %v, %v, want %v", tc.in, n, err, tc.want)
		}
	}
}

// TestLookupNodeAbsentFromCustomDatabase checks the error path of a
// database that deliberately omits nodes: a single-node database built
// through the public JSON surface must reject every other node.
func TestLookupNodeAbsentFromCustomDatabase(t *testing.T) {
	var full bytes.Buffer
	if err := ttmcas.WriteNodeDatabase(&full, nil); err != nil {
		t.Fatal(err)
	}
	var entries []map[string]any
	if err := json.Unmarshal(full.Bytes(), &entries); err != nil {
		t.Fatal(err)
	}
	var only []map[string]any
	for _, e := range entries {
		if e["node_nm"] == float64(28) {
			only = append(only, e)
		}
	}
	if len(only) != 1 {
		t.Fatalf("expected one 28nm entry, got %d", len(only))
	}
	single, err := json.Marshal(only)
	if err != nil {
		t.Fatal(err)
	}
	db, err := ttmcas.ReadNodeDatabase(bytes.NewReader(single))
	if err != nil {
		t.Fatalf("single-node database: %v", err)
	}
	if _, err := db.Lookup(ttmcas.N28); err != nil {
		t.Errorf("Lookup(28nm) on its own database: %v", err)
	}
	if _, err := db.Lookup(ttmcas.N5); err == nil {
		t.Error("Lookup(5nm) should fail on a database that omits it")
	}
	// The package-level LookupNode still answers from the built-in
	// database, and still rejects nodes outside it.
	if _, err := ttmcas.LookupNode(ttmcas.N5); err != nil {
		t.Errorf("LookupNode(5nm) on the built-in database: %v", err)
	}
	if _, err := ttmcas.LookupNode(ttmcas.Node(3)); err == nil {
		t.Error("LookupNode(3) should fail: not in the built-in database")
	}
}
