package ttmcas_test

import (
	"errors"
	"math"
	"testing"

	"ttmcas"
)

func TestEvaluateA11(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N28)
	r, err := ttmcas.Evaluate(d, 10e6, ttmcas.FullCapacity())
	if err != nil {
		t.Fatal(err)
	}
	if r.TTM <= 0 || r.TTM != r.DesignTime+r.Tapeout+r.Fabrication+r.Packaging {
		t.Errorf("breakdown inconsistent: %+v", r)
	}
	ttm, err := ttmcas.TTM(d, 10e6, ttmcas.FullCapacity())
	if err != nil || ttm != r.TTM {
		t.Errorf("TTM() = %v, %v", ttm, err)
	}
}

func TestCASAndCurve(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N7)
	cas, err := ttmcas.CAS(d, 10e6, ttmcas.FullCapacity())
	if err != nil || cas.CAS <= 0 {
		t.Fatalf("CAS = %+v, %v", cas, err)
	}
	curve, err := ttmcas.CASCurve(d, 10e6, ttmcas.FullCapacity(), []float64{0.5, 1.0})
	if err != nil || len(curve) != 2 {
		t.Fatalf("curve = %v, %v", curve, err)
	}
	if curve[0].CAS >= curve[1].CAS {
		t.Error("CAS should rise with capacity")
	}
}

func TestCostFacade(t *testing.T) {
	b, err := ttmcas.Cost(ttmcas.Zen2(), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total != b.MaskNRE+b.TapeoutNRE+b.Wafers+b.Packaging {
		t.Errorf("cost breakdown inconsistent: %+v", b)
	}
}

func TestNodeHelpers(t *testing.T) {
	if len(ttmcas.Nodes()) != 12 {
		t.Errorf("Nodes() = %d, want 12", len(ttmcas.Nodes()))
	}
	if len(ttmcas.ProducingNodes()) != 10 {
		t.Errorf("ProducingNodes() = %d, want 10", len(ttmcas.ProducingNodes()))
	}
	n, err := ttmcas.ParseNode("28nm")
	if err != nil || n != ttmcas.N28 {
		t.Errorf("ParseNode = %v, %v", n, err)
	}
	p, err := ttmcas.LookupNode(ttmcas.N12)
	if err != nil || !p.InProduction() {
		t.Errorf("12nm variant should resolve: %+v, %v", p, err)
	}
}

func TestUncertaintyFacade(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N28)
	est, err := ttmcas.TTMWithUncertainty(d, 10e6, ttmcas.FullCapacity(), ttmcas.MCConfig{Samples: 64})
	if err != nil || !est.CI.Contains(est.Mean) {
		t.Fatalf("estimate = %+v, %v", est, err)
	}
	cas, err := ttmcas.CASWithUncertainty(d, 10e6, ttmcas.FullCapacity(), ttmcas.MCConfig{Samples: 32})
	if err != nil || cas.Mean <= 0 {
		t.Fatalf("cas estimate = %+v, %v", cas, err)
	}
}

func TestSensitivityFacade(t *testing.T) {
	d := ttmcas.A11At(ttmcas.N5)
	res, err := ttmcas.Sensitivity(d, 10e6, ttmcas.FullCapacity(), ttmcas.SensitivityConfig{N: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Total) != len(ttmcas.SensitivityInputs()) {
		t.Errorf("inputs = %v", res)
	}
	// 5nm: unique transistor count should carry real weight.
	idx := -1
	for i, name := range res.Inputs {
		if name == "NUT" {
			idx = i
		}
	}
	if idx < 0 || res.Total[idx] < 0.1 {
		t.Errorf("NUT S_T at 5nm = %v, want substantial", res.Total)
	}
}

func TestDieYield(t *testing.T) {
	y, err := ttmcas.DieYield(1660, ttmcas.N250)
	if err != nil || math.Abs(y-0.48) > 0.01 {
		t.Errorf("yield = %v, %v", y, err)
	}
	if _, err := ttmcas.DieYield(100, ttmcas.Node(3)); err == nil {
		t.Error("unknown node should error")
	}
}

func TestFabFacade(t *testing.T) {
	line, err := ttmcas.FabLineFor(ttmcas.N28)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ttmcas.SimulateFab(line, 10_000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastPackaged <= res.LastFabComplete {
		t.Errorf("milestones out of order: %+v", res)
	}
	if _, err := ttmcas.FabLineFor(ttmcas.Node(3)); err == nil {
		t.Error("unknown node should error")
	}
}

func TestFigureFacade(t *testing.T) {
	ids := ttmcas.FigureIDs()
	if len(ids) != 23 {
		t.Fatalf("FigureIDs = %v", ids)
	}
	r, err := ttmcas.Figure("t2", ttmcas.FastFigures())
	if err != nil || r.ID != "t2" {
		t.Fatalf("Figure(t2) = %v, %v", r, err)
	}
	if r.Render() == "" {
		t.Error("empty render")
	}
}

func TestScenariosFacade(t *testing.T) {
	if len(ttmcas.Scenarios()) < 5 {
		t.Error("scenarios missing")
	}
	d := ttmcas.Ariane16(32, 32, ttmcas.N14)
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
	if err := ttmcas.RavenMCU(ttmcas.N180).Validate(); err != nil {
		t.Error(err)
	}
}

func TestPlannerFacade(t *testing.T) {
	p := ttmcas.NewPlanner(ttmcas.RavenMCU(ttmcas.N180))
	p.MultiProcess = false
	p.Nodes = []ttmcas.Node{ttmcas.N40, ttmcas.N28}
	best, all, err := p.Recommend(ttmcas.PlanRequirements{Volume: 1e8})
	if err != nil {
		t.Fatal(err)
	}
	if best.Name == "" || len(all) != 2 {
		t.Fatalf("best=%+v all=%d", best, len(all))
	}
	_, _, err = p.Recommend(ttmcas.PlanRequirements{Volume: 1e8, Deadline: 1})
	if !errors.Is(err, ttmcas.ErrNoFeasiblePlan) {
		t.Errorf("err = %v, want ErrNoFeasiblePlan", err)
	}
	if ttmcas.SplitFactory(ttmcas.RavenMCU(ttmcas.N180))(ttmcas.N28).Dies[0].Node != ttmcas.N28 {
		t.Error("SplitFactory should retarget")
	}
}
