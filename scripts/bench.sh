#!/bin/sh
# Runs the serial-vs-parallel throughput benchmarks behind the jobs
# subsystem (Monte-Carlo band curve, Sobol sensitivity) and records
# them as JSON — ns/op and the model-evaluations-per-second metric the
# benchmarks report — so speedups can be tracked across commits.
#
#   scripts/bench.sh [out.json]       # default out: BENCH_jobs.json
#   BENCHTIME=5s scripts/bench.sh     # longer runs for stabler numbers
set -eu

out="${1:-BENCH_jobs.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BandCurve|Sobol' -benchtime "${BENCHTIME:-2s}" \
    ./internal/mc ./internal/sens | tee "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/^Benchmark/, "", name)
            sub(/-[0-9]+$/, "", name)
            ns = "null"; evals = "null"
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")   ns = $i
                if ($(i+1) == "evals/s") evals = $i
            }
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"evals_per_s\": %s}", name, ns, evals
        }
        END { printf "\n" }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out"
