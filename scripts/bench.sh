#!/bin/sh
# Runs the throughput benchmarks behind the evaluation stack — the
# compiled core kernel, the Monte-Carlo band curve (serial, parallel,
# compiled), and Sobol sensitivity — and records them as JSON: ns/op,
# allocs/op, and the model-evaluations-per-second metric the benchmarks
# report, so speedups (and allocation regressions) can be tracked
# across commits.
#
# It then load-tests the serving layer with ttmcas-loadgen (cached-hit,
# uncached and mixed /v1/ttm scenarios against an in-process server)
# and records RPS and p50/p95/p99/max latency as BENCH_serve.json,
# followed by the cluster scaling sweep (N in 1, 2, 4 in-process nodes
# under the latency-bound cluster scenario) recorded as
# BENCH_cluster.json with per-N RPS and the forward-hop p99, the
# timeline step-sweep (serial vs parallel per-step evaluation at 64 and
# 512 steps) recorded as BENCH_timeline.json in steps/s, and the
# distributed-job sweep (heavy mc-band batch jobs sharded across a
# 4-node in-process ring with a mid-run node kill, vs the same workload
# single-node) recorded as BENCH_distjobs.json in jobs/s, and the
# netsplit partition sweep (a 4-node ring crossing a mid-run asymmetric
# partition and heal) recorded as BENCH_netsplit.json with per-phase
# RPS and the heal-to-reconvergence time.
#
# After the measurement runs, a delta table against the committed
# BENCH_*.json baselines is printed (% change per benchmark/scenario)
# so perf movement is visible in PR logs even when every guard passes.
#
#   scripts/bench.sh [out.json] [serve_out.json] [cluster_out.json] [timeline_out.json] [distjobs_out.json] [netsplit_out.json]
#                # defaults: BENCH_jobs.json BENCH_serve.json
#                #           BENCH_cluster.json BENCH_timeline.json
#                #           BENCH_distjobs.json BENCH_netsplit.json
#   BENCHTIME=5s scripts/bench.sh     # longer kernel runs for stabler numbers
#   BENCHCOUNT=5 scripts/bench.sh     # more repetitions per benchmark
#   SERVE_DURATION=10s scripts/bench.sh   # longer load-test scenarios
#   BENCH_STRICT=1 scripts/bench.sh   # exit non-zero when a guard fails
#
# The kernel and timeline benchmark suites run BENCHCOUNT times each
# (default 3) and the recorded figure per benchmark is the best
# repetition: on a shared or 1-vCPU runner the dominant error is
# external load arriving in waves, which penalizes whichever benchmark
# happens to be running — taking the per-benchmark minimum ns/op
# compares serial and parallel drivers on their quiet-machine behavior
# instead of on scheduler luck. Repetitions are whole-suite reruns
# rather than `go test -count` (which repeats each benchmark
# back-to-back, so one load wave can sink every repetition of a single
# benchmark): rerunning the suite keeps paired serial/parallel
# repetitions seconds apart and spreads the repetitions of each
# benchmark across the full wall-clock span of the run.
#
# Guards (loud warning, failing the run when BENCH_STRICT=1 — CI runs
# with BENCH_STRICT=1 now that the SobolParallel regression is fixed):
#   - parallel drivers slower than their serial baselines
#   - batched band curve below 2x the pre-batch compiled driver
#     (3.68M evals/s) or allocating on its steady-state path
#   - cached-hit p99 latency not below uncached p99
#   - cached-hit RPS below 5x uncached RPS
#   - 4-node cluster RPS below 0.8 x 4 x single-node RPS
#   - parallel timeline steps/s below serial at the largest step count
#   - 4-node distributed jobs/s below 0.7 x 4 x single-node jobs/s
#   - distjobs sweep losing jobs, completing no remote shards at N=4,
#     or failing to reconverge the ring after the mid-run kill
#   - netsplit sweep losing requests or jobs, breakers never opening
#     (or still open after the heal), the ring not reconverging, or
#     partitioned-phase RPS below half the healthy phase's
set -eu

out="${1:-BENCH_jobs.json}"
serveout="${2:-BENCH_serve.json}"
clusterout="${3:-BENCH_cluster.json}"
timelineout="${4:-BENCH_timeline.json}"
distjobsout="${5:-BENCH_distjobs.json}"
netsplitout="${6:-BENCH_netsplit.json}"
tmp="$(mktemp)"
tmpbest="$(mktemp)"
tmptl="$(mktemp)"
tmptlbest="$(mktemp)"
tmpkvnew="$(mktemp)"
tmpkvold="$(mktemp)"
tmpbin="$(mktemp -d)"
trap 'rm -f "$tmp" "$tmpbest" "$tmptl" "$tmptlbest" "$tmpkvnew" "$tmpkvold"; rm -rf "$tmpbin"' EXIT

# best_of reduces repeated benchmark lines to one line per benchmark —
# the repetition with the lowest ns/op — as "name ns allocs metric"
# rows, where metric is the benchmark's reported rate (evals/s or
# steps/s, "null" when absent).
best_of() {
    awk -v metric="$1" '
        /^Benchmark/ {
            name = $1
            sub(/-[0-9]+$/, "", name)
            ns = ""; rate = "null"; allocs = "null"
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")     ns = $i
                if ($(i+1) == metric)      rate = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            if (ns == "") next
            if (!(name in best)) { order[++cnt] = name }
            if (!(name in best) || ns + 0 < best[name] + 0) {
                best[name] = ns; brate[name] = rate; ballocs[name] = allocs
            }
        }
        END {
            for (i = 1; i <= cnt; i++) {
                n = order[i]
                print n, best[n], ballocs[n], brate[n]
            }
        }'
}

# emit_json turns a best-of table into the recorded JSON document.
emit_json() {
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchmarks": [\n'
    awk -v field="$2" '
        {
            name = $1
            sub(/^Benchmark/, "", name)
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"%s\": %s}", name, $2, $3, field, $4
        }
        END { printf "\n" }
    ' "$1"
    printf '  ]\n'
    printf '}\n'
}

: > "$tmp"
rep=0
while [ "$rep" -lt "${BENCHCOUNT:-3}" ]; do
    go test -run '^$' -bench 'BandCurve|Sobol|ModelEvaluate|Evaluator' -benchmem \
        -benchtime "${BENCHTIME:-2s}" \
        ./internal/core ./internal/mc ./internal/sens | tee -a "$tmp"
    rep=$((rep + 1))
done
best_of "evals/s" < "$tmp" > "$tmpbest"

emit_json "$tmpbest" evals_per_s > "$out"
echo "wrote $out"

# Parallel-vs-serial guard: the chunked drivers must not lose to their
# serial baselines (10% tolerance for measurement noise), comparing
# best-of-BENCHCOUNT repetitions.
guard_status=0
best_field() {
    # $1 = benchmark name (without the Benchmark prefix), $2 = table,
    # $3 = column: 2 ns/op, 3 allocs/op, 4 rate.
    awk -v n="Benchmark$1" -v c="$3" '$1 == n { print $c; exit }' "$2"
}
check_pair() {
    par_name="$1"; ser_name="$2"
    par=$(best_field "$par_name" "$tmpbest" 2)
    ser=$(best_field "$ser_name" "$tmpbest" 2)
    if [ -z "$par" ] || [ -z "$ser" ]; then
        echo "WARNING: missing benchmark pair $par_name/$ser_name" >&2
        guard_status=1
        return
    fi
    if awk -v p="$par" -v s="$ser" 'BEGIN { exit !(p > s * 1.10) }'; then
        echo "WARNING: $par_name (${par} ns/op) is slower than $ser_name (${ser} ns/op)" >&2
        guard_status=1
    else
        echo "ok: $par_name (${par} ns/op) vs $ser_name (${ser} ns/op)"
    fi
}
check_pair BandCurveParallel BandCurveSerial
check_pair SobolParallel SobolSerial

# Batch-kernel guard: the structure-of-arrays band-curve driver must
# hold at least 2x the pre-batch compiled driver's 1.84M evals/s and
# stay allocation-free in steady state.
batch_evals="$(best_field BandCurveBatch "$tmpbest" 4)"
batch_allocs="$(best_field BandCurveBatch "$tmpbest" 3)"
[ "$batch_evals" = "null" ] && batch_evals=""
if [ -z "$batch_evals" ] || [ -z "$batch_allocs" ]; then
    echo "WARNING: missing BandCurveBatch benchmark" >&2
    guard_status=1
else
    if awk -v e="$batch_evals" 'BEGIN { exit !(e < 3680000) }'; then
        echo "WARNING: BandCurveBatch (${batch_evals} evals/s) below 2x the pre-batch compiled baseline (3.68M)" >&2
        guard_status=1
    else
        echo "ok: BandCurveBatch ${batch_evals} evals/s >= 3.68M (2x pre-batch compiled)"
    fi
    if [ "$batch_allocs" != "0" ]; then
        echo "WARNING: BandCurveBatch allocates (${batch_allocs} allocs/op), want 0" >&2
        guard_status=1
    else
        echo "ok: BandCurveBatch steady state allocation-free"
    fi
fi

# ---- serving-layer load test ---------------------------------------
# Three in-process scenarios: every request a response-cache hit, every
# request a full miss (unique capacity -> decode, resolve, compile,
# evaluate, encode), and a 9:1 mix.
go build -o "$tmpbin/ttmcas-loadgen" ./cmd/ttmcas-loadgen

servedur="${SERVE_DURATION:-3s}"
servec="${SERVE_CONCURRENCY:-8}"
cached_json="$("$tmpbin/ttmcas-loadgen" -scenario cached -d "$servedur" -c "$servec" -json)"
uncached_json="$("$tmpbin/ttmcas-loadgen" -scenario uncached -d "$servedur" -c "$servec" -json)"
mixed_json="$("$tmpbin/ttmcas-loadgen" -scenario mixed -d "$servedur" -c "$servec" -json)"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "scenarios": [\n'
    printf '    %s,\n' "$cached_json"
    printf '    %s,\n' "$uncached_json"
    printf '    %s\n' "$mixed_json"
    printf '  ]\n'
    printf '}\n'
} > "$serveout"
echo "wrote $serveout"

# The first "rps"/"p99_us" in a scenario line is the aggregate (the
# per-target breakdown comes later in the object).
field() { printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9.eE+-]*\).*/\1/p" | head -n 1; }
cached_rps="$(field "$cached_json" rps)"
uncached_rps="$(field "$uncached_json" rps)"
cached_p99="$(field "$cached_json" p99_us)"
uncached_p99="$(field "$uncached_json" p99_us)"

if awk -v c="$cached_p99" -v u="$uncached_p99" 'BEGIN { exit !(c >= u) }'; then
    echo "WARNING: cached-hit p99 (${cached_p99}us) is not below uncached p99 (${uncached_p99}us)" >&2
    guard_status=1
else
    echo "ok: cached-hit p99 ${cached_p99}us < uncached p99 ${uncached_p99}us"
fi
if awk -v c="$cached_rps" -v u="$uncached_rps" 'BEGIN { exit !(c < 5 * u) }'; then
    echo "WARNING: cached-hit RPS (${cached_rps}) is below 5x uncached RPS (${uncached_rps})" >&2
    guard_status=1
else
    echo "ok: cached-hit RPS ${cached_rps} >= 5x uncached RPS ${uncached_rps}"
fi

# ---- cluster scaling sweep -----------------------------------------
# The latency-bound cluster scenario at N in {1, 2, 4} in-process
# nodes. RPS should grow near-linearly with N (the per-request 5ms
# floor is sleep, not CPU); the ttm-forward target's p99 is the cost of
# one peer hop.
cluster_rps_1=""
cluster_rps_4=""
{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "scaling": [\n'
    first=1
    for n in 1 2 4; do
        run_json="$("$tmpbin/ttmcas-loadgen" -scenario cluster -nodes "$n" -d "$servedur" -c 4 -json)"
        # "baseline_rps" never matches: the grep needs the quote right
        # before "rps". The aggregate precedes the per-target stats.
        rps="$(printf '%s' "$run_json" | grep -o '"rps":[0-9.eE+-]*' | head -n 1 | cut -d: -f2)"
        fwd_p99="$(printf '%s' "$run_json" | sed -n 's/.*"name":"ttm-forward"[^}]*"p99_us":\([0-9.eE+-]*\).*/\1/p')"
        [ "$n" = 1 ] && cluster_rps_1="$rps"
        [ "$n" = 4 ] && cluster_rps_4="$rps"
        [ "$first" = 1 ] || printf ',\n'
        first=0
        printf '    {"nodes": %s, "rps": %s, "forward_p99_us": %s}' \
            "$n" "${rps:-null}" "${fwd_p99:-null}"
    done
    printf '\n  ]\n'
    printf '}\n'
} > "$clusterout"
echo "wrote $clusterout"

# ---- timeline step sweep -------------------------------------------
# Serial vs parallel per-step timeline evaluation of a 3-segment
# disruption spec at 64 and 512 steps. The benchmarks report steps/s;
# the parallel sweep must not lose to the serial one at the largest
# step count, where the fan-out has the most work to amortise (same
# 10% noise tolerance as the kernel pairs — on a single-core runner
# the two paths are equal up to scheduling noise).
: > "$tmptl"
rep=0
while [ "$rep" -lt "${BENCHCOUNT:-3}" ]; do
    go test -run '^$' -bench 'Timeline' -benchmem \
        -benchtime "${BENCHTIME:-2s}" ./internal/timeline | tee -a "$tmptl"
    rep=$((rep + 1))
done
best_of "steps/s" < "$tmptl" > "$tmptlbest"

emit_json "$tmptlbest" steps_per_s > "$timelineout"
echo "wrote $timelineout"

tl_par="$(best_field 'TimelineParallel/steps=512' "$tmptlbest" 4)"
tl_ser="$(best_field 'TimelineSerial/steps=512' "$tmptlbest" 4)"
[ "$tl_par" = "null" ] && tl_par=""
[ "$tl_ser" = "null" ] && tl_ser=""
if [ -z "$tl_par" ] || [ -z "$tl_ser" ]; then
    echo "WARNING: missing timeline benchmark pair (steps=512)" >&2
    guard_status=1
elif awk -v p="$tl_par" -v s="$tl_ser" 'BEGIN { exit !(p < s * 0.90) }'; then
    echo "WARNING: parallel timeline (${tl_par} steps/s) is slower than serial (${tl_ser} steps/s) at 512 steps" >&2
    guard_status=1
else
    echo "ok: parallel timeline ${tl_par} steps/s >= serial ${tl_ser} steps/s at 512 steps"
fi

# ---- distributed-job sweep -----------------------------------------
# Heavy mc-band batch jobs (paced so each job is latency-bound, like
# the cluster scenario's per-request 5ms floor) run single-node, then
# sharded across a 4-node in-process ring with a mid-run node kill and
# rejoin. Distribution must deliver >= 0.7 x 4 x the single-node
# jobs/s with zero lost jobs, remotely completed shards, and a
# reconverged ring.
distjobs_1="$("$tmpbin/ttmcas-loadgen" -scenario distjobs -nodes 1 -d "$servedur" -c 3 -json)"
distjobs_4="$("$tmpbin/ttmcas-loadgen" -scenario distjobs -nodes 4 -kill -d "$servedur" -c 3 -json)"
{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "runs": [\n'
    printf '    %s,\n' "$distjobs_1"
    printf '    %s\n' "$distjobs_4"
    printf '  ]\n'
    printf '}\n'
} > "$distjobsout"
echo "wrote $distjobsout"

# The distjobs JSON is one compact line per run, so take the first
# occurrence of each key (keys are unambiguous prefixes when quoted).
djfield() { printf '%s' "$1" | grep -o "\"$2\":[0-9.eE+-]*" | head -n 1 | cut -d: -f2; }
djps1="$(djfield "$distjobs_1" jobs_per_sec)"
djps4="$(djfield "$distjobs_4" jobs_per_sec)"
dfail1="$(djfield "$distjobs_1" jobs_failed)"
dfail4="$(djfield "$distjobs_4" jobs_failed)"
dshards4="$(djfield "$distjobs_4" shards_completed)"
dconv4="$(printf '%s' "$distjobs_4" | grep -o '"converged":[a-z]*' | cut -d: -f2)"

if [ -z "$djps1" ] || [ -z "$djps4" ]; then
    echo "WARNING: distjobs sweep produced no jobs/s figures" >&2
    guard_status=1
elif awk -v d="$djps4" -v s="$djps1" 'BEGIN { exit !(d < 0.7 * 4 * s) }'; then
    echo "WARNING: 4-node distributed jobs/s (${djps4}) below 0.7 x 4 x single-node jobs/s (${djps1})" >&2
    guard_status=1
else
    echo "ok: 4-node distributed jobs/s ${djps4} >= 0.7 x 4 x single-node ${djps1}"
fi
if [ "${dfail1:-1}" != "0" ] || [ "${dfail4:-1}" != "0" ]; then
    echo "WARNING: distjobs sweep lost jobs (single-node failed=${dfail1:-?}, 4-node failed=${dfail4:-?})" >&2
    guard_status=1
else
    echo "ok: distjobs sweep lost zero jobs"
fi
if [ -z "$dshards4" ] || [ "$dshards4" = "0" ]; then
    echo "WARNING: 4-node distjobs run completed no remote shards (shards_completed=${dshards4:-?})" >&2
    guard_status=1
else
    echo "ok: 4-node distjobs run completed ${dshards4} shards remotely"
fi
if [ "${dconv4:-}" != "true" ]; then
    echo "WARNING: ring did not reconverge after the distjobs mid-run kill (converged=${dconv4:-?})" >&2
    guard_status=1
else
    echo "ok: ring reconverged after the distjobs mid-run kill"
fi

# ---- netsplit partition sweep --------------------------------------
# A 4-node ring driven through healthy / partitioned / healed phases:
# mid-run every majority node's traffic to the last node is blackholed
# (its own outbound keeps working — the asymmetric case), then the
# partition heals. The run must not cost a single request or job;
# breakers must open during the split and all be closed again at the
# end; the ring must reconverge; and the majority side must hold at
# least half the healthy throughput while the split is open.
netsplit_json="$("$tmpbin/ttmcas-loadgen" -scenario netsplit -nodes 4 -d "$servedur" -c 2 -json)"
{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "runs": [\n'
    printf '    %s\n' "$netsplit_json"
    printf '  ]\n'
    printf '}\n'
} > "$netsplitout"
echo "wrote $netsplitout"

ns_healthy="$(djfield "$netsplit_json" healthy_rps)"
ns_part="$(djfield "$netsplit_json" partitioned_rps)"
ns_jobs="$(djfield "$netsplit_json" jobs_total)"
ns_jobsok="$(djfield "$netsplit_json" jobs_ok)"
ns_opens="$(djfield "$netsplit_json" breaker_opens)"
ns_open_end="$(djfield "$netsplit_json" open_breakers)"
ns_conv="$(printf '%s' "$netsplit_json" | grep -o '"converged":[a-z]*' | cut -d: -f2)"
ns_errs="$(printf '%s' "$netsplit_json" | grep -o '"errors":[0-9]*' | awk -F: '{ s += $2 } END { print s + 0 }')"
ns_5xx="$(printf '%s' "$netsplit_json" | grep -o '"status_5xx":[0-9]*' | awk -F: '{ s += $2 } END { print s + 0 }')"

if [ "${ns_errs:-1}" != "0" ] || [ "${ns_5xx:-1}" != "0" ]; then
    echo "WARNING: netsplit sweep saw client-visible failures (errors=${ns_errs:-?}, 5xx=${ns_5xx:-?})" >&2
    guard_status=1
else
    echo "ok: netsplit sweep lost zero requests across the partition"
fi
if [ -z "$ns_jobs" ] || [ "$ns_jobs" = "0" ] || [ "${ns_jobsok:-}" != "$ns_jobs" ]; then
    echo "WARNING: netsplit sweep lost jobs (ok=${ns_jobsok:-?}/${ns_jobs:-?})" >&2
    guard_status=1
else
    echo "ok: netsplit sweep completed all ${ns_jobs} jobs"
fi
if [ -z "$ns_opens" ] || [ "$ns_opens" = "0" ]; then
    echo "WARNING: no breaker opened during the netsplit partition" >&2
    guard_status=1
elif [ "${ns_open_end:-1}" != "0" ]; then
    echo "WARNING: ${ns_open_end:-?} breakers still open after the netsplit heal" >&2
    guard_status=1
else
    echo "ok: netsplit breakers opened (${ns_opens}) and all re-closed"
fi
if [ "${ns_conv:-}" != "true" ]; then
    echo "WARNING: ring did not reconverge after the netsplit heal (converged=${ns_conv:-?})" >&2
    guard_status=1
else
    echo "ok: ring reconverged after the netsplit heal"
fi
if [ -z "$ns_healthy" ] || [ -z "$ns_part" ]; then
    echo "WARNING: netsplit sweep produced no RPS figures" >&2
    guard_status=1
elif awk -v p="$ns_part" -v h="$ns_healthy" 'BEGIN { exit !(p < 0.5 * h) }'; then
    echo "WARNING: partitioned RPS (${ns_part}) below 0.5 x healthy RPS (${ns_healthy})" >&2
    guard_status=1
else
    echo "ok: partitioned RPS ${ns_part} >= 0.5 x healthy RPS ${ns_healthy}"
fi

if [ -n "$cluster_rps_1" ] && [ -n "$cluster_rps_4" ]; then
    if awk -v r4="$cluster_rps_4" -v r1="$cluster_rps_1" 'BEGIN { exit !(r4 < 0.8 * 4 * r1) }'; then
        echo "WARNING: 4-node cluster RPS (${cluster_rps_4}) below 0.8 x 4 x single-node RPS (${cluster_rps_1})" >&2
        guard_status=1
    else
        echo "ok: 4-node cluster RPS ${cluster_rps_4} >= 0.8 x 4 x single-node RPS ${cluster_rps_1}"
    fi
else
    echo "WARNING: cluster sweep produced no RPS figures" >&2
    guard_status=1
fi

# ---- delta vs committed baselines ----------------------------------
# Informational only (never flips guard_status): % change for every
# benchmark/scenario against the BENCH_*.json committed at HEAD, so
# perf movement is visible in run logs even when every guard passes.
# For ns/op tables negative is faster; for rate tables (RPS, jobs/s)
# positive is faster. A table is skipped when HEAD carries no baseline
# for it (first run, or git unavailable).
kv_ns() { sed -n 's/.*"name": "\([^"]*\)", "ns_per_op": \([0-9.eE+-]*\).*/\1 \2/p'; }
kv_cluster() { sed -n 's/.*{"nodes": \([0-9]*\), "rps": \([0-9.eE+-]*\).*/nodes=\1 \2/p'; }
kv_rate() {
    # One "label rate" row per line bearing a "scenario" tag; the first
    # occurrence of the rate key on the line is the aggregate figure.
    awk -v key="$1" '
        match($0, /"scenario":"[^"]*"/) {
            label = substr($0, RSTART + 12, RLENGTH - 13)
            if (match($0, /"nodes":[0-9]+/))
                label = label "-nodes=" substr($0, RSTART + 8, RLENGTH - 8)
            if (match($0, "\"" key "\":[0-9.eE+-]+"))
                print label, substr($0, RSTART + length(key) + 3, RLENGTH - length(key) - 3)
        }'
}
baseline_of() { git show "HEAD:$1" 2>/dev/null || true; }
delta_section() {
    # $1 = table title; reads the freshly extracted "label value" rows
    # from $tmpkvnew and the committed baseline rows from $tmpkvold.
    if [ ! -s "$tmpkvold" ]; then
        echo "delta: $1 -- no committed baseline at HEAD, skipped"
        return
    fi
    echo "delta: $1 (new vs committed baseline)"
    awk 'NR == FNR { old[$1] = $2; next }
         {
             if (($1 in old) && old[$1] + 0 != 0)
                 printf "  %-44s %14s %14s %+7.1f%%\n", $1, $2, old[$1], ($2 - old[$1]) / old[$1] * 100
             else
                 printf "  %-44s %14s %14s %8s\n", $1, $2, "-", "n/a"
         }' "$tmpkvold" "$tmpkvnew"
}

kv_ns < "$out" > "$tmpkvnew"
baseline_of BENCH_jobs.json | kv_ns > "$tmpkvold"
delta_section "kernel ns/op (negative = faster)"

kv_rate rps < "$serveout" > "$tmpkvnew"
baseline_of BENCH_serve.json | kv_rate rps > "$tmpkvold"
delta_section "serving RPS (positive = faster)"

kv_cluster < "$clusterout" > "$tmpkvnew"
baseline_of BENCH_cluster.json | kv_cluster > "$tmpkvold"
delta_section "cluster RPS by node count (positive = faster)"

kv_ns < "$timelineout" > "$tmpkvnew"
baseline_of BENCH_timeline.json | kv_ns > "$tmpkvold"
delta_section "timeline ns/op (negative = faster)"

kv_rate jobs_per_sec < "$distjobsout" > "$tmpkvnew"
baseline_of BENCH_distjobs.json | kv_rate jobs_per_sec > "$tmpkvold"
delta_section "distributed jobs/s (positive = faster)"

kv_netsplit() {
    awk '
        match($0, /"healthy_rps":[0-9.eE+-]+/)     { print "healthy", substr($0, RSTART + 14, RLENGTH - 14) }
        match($0, /"partitioned_rps":[0-9.eE+-]+/) { print "partitioned", substr($0, RSTART + 18, RLENGTH - 18) }
        match($0, /"healed_rps":[0-9.eE+-]+/)      { print "healed", substr($0, RSTART + 13, RLENGTH - 13) }
    '
}
kv_netsplit < "$netsplitout" > "$tmpkvnew"
baseline_of BENCH_netsplit.json | kv_netsplit > "$tmpkvold"
delta_section "netsplit phase RPS (positive = faster)"

if [ "$guard_status" -ne 0 ] && [ "${BENCH_STRICT:-0}" = "1" ]; then
    echo "FAIL: benchmark guards failed (see warnings above)" >&2
    exit 1
fi
exit 0
