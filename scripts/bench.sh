#!/bin/sh
# Runs the throughput benchmarks behind the evaluation stack — the
# compiled core kernel, the Monte-Carlo band curve (serial, parallel,
# compiled), and Sobol sensitivity — and records them as JSON: ns/op,
# allocs/op, and the model-evaluations-per-second metric the benchmarks
# report, so speedups (and allocation regressions) can be tracked
# across commits.
#
#   scripts/bench.sh [out.json]       # default out: BENCH_jobs.json
#   BENCHTIME=5s scripts/bench.sh     # longer runs for stabler numbers
#   BENCH_STRICT=1 scripts/bench.sh   # exit non-zero when parallel < serial
#
# The script compares the parallel drivers against their serial
# baselines: parallel slower than 0.9x serial prints a loud warning,
# and fails the run when BENCH_STRICT=1 (the adaptive chunking is
# supposed to make parallel never lose, even on one core).
set -eu

out="${1:-BENCH_jobs.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BandCurve|Sobol|ModelEvaluate|Evaluator' -benchmem \
    -benchtime "${BENCHTIME:-2s}" \
    ./internal/core ./internal/mc ./internal/sens | tee "$tmp"

{
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "go": "%s",\n' "$(go env GOVERSION)"
    printf '  "benchmarks": [\n'
    awk '
        /^Benchmark/ {
            name = $1
            sub(/^Benchmark/, "", name)
            sub(/-[0-9]+$/, "", name)
            ns = "null"; evals = "null"; allocs = "null"
            for (i = 2; i < NF; i++) {
                if ($(i+1) == "ns/op")     ns = $i
                if ($(i+1) == "evals/s")   evals = $i
                if ($(i+1) == "allocs/op") allocs = $i
            }
            if (n++) printf ",\n"
            printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s, \"evals_per_s\": %s}", name, ns, allocs, evals
        }
        END { printf "\n" }
    ' "$tmp"
    printf '  ]\n'
    printf '}\n'
} > "$out"

echo "wrote $out"

# Parallel-vs-serial guard: the chunked drivers must not lose to their
# serial baselines (10% tolerance for measurement noise).
guard_status=0
check_pair() {
    par_name="$1"; ser_name="$2"
    par=$(awk -v n="Benchmark$par_name" '$1 ~ "^"n"(-[0-9]+)?$" { print $3; exit }' "$tmp")
    ser=$(awk -v n="Benchmark$ser_name" '$1 ~ "^"n"(-[0-9]+)?$" { print $3; exit }' "$tmp")
    if [ -z "$par" ] || [ -z "$ser" ]; then
        echo "WARNING: missing benchmark pair $par_name/$ser_name" >&2
        guard_status=1
        return
    fi
    if awk -v p="$par" -v s="$ser" 'BEGIN { exit !(p > s * 1.10) }'; then
        echo "WARNING: $par_name (${par} ns/op) is slower than $ser_name (${ser} ns/op)" >&2
        guard_status=1
    else
        echo "ok: $par_name (${par} ns/op) vs $ser_name (${ser} ns/op)"
    fi
}
check_pair BandCurveParallel BandCurveSerial
check_pair SobolParallel SobolSerial

if [ "$guard_status" -ne 0 ] && [ "${BENCH_STRICT:-0}" = "1" ]; then
    echo "FAIL: parallel drivers regressed below their serial baselines" >&2
    exit 1
fi
exit 0
