#!/bin/sh
# The repository's full verification pass — what CI runs, runnable
# anywhere a Go toolchain exists (no make required).
set -eux

go vet ./...
go build ./...
go test -race ./...

# Bench smoke: one iteration of each throughput benchmark — including
# the compiled core kernel's — so a broken benchmark (or a
# serial/parallel variant that stops compiling) fails CI without CI
# paying for real measurement runs.
go test -run '^$' -bench . -benchtime 1x ./internal/core ./internal/mc ./internal/sens ./internal/sweep
