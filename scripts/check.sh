#!/bin/sh
# The repository's full verification pass — what CI runs, runnable
# anywhere a Go toolchain exists (no make required).
set -eux

go vet ./...
go build ./...
go test -race ./...

# Bench smoke: one iteration of each throughput benchmark — including
# the compiled core kernel's — so a broken benchmark (or a
# serial/parallel variant that stops compiling) fails CI without CI
# paying for real measurement runs.
go test -run '^$' -bench . -benchtime 1x ./internal/core ./internal/mc ./internal/sens ./internal/sweep ./internal/timeline

# Load-generator smoke: one short mixed run against an in-process
# server. -check fails the run on zero completed requests, any
# transport error, or any 5xx — a one-second end-to-end exercise of the
# whole serving stack (routing, caches, worker pool, encoding).
go run ./cmd/ttmcas-loadgen -scenario mixed -d 1s -c 4 -check

# Chaos smoke: one short fault-injected run (latency spikes, errors,
# one panic) against a deliberately small in-process server. -check
# asserts the availability contract: zero transport errors, every 5xx
# a deliberate Retry-After-bearing shed, goodput >= 90% of admitted
# requests, bounded p99, stale fallbacks observed, and the goroutine
# count back at baseline after drain.
go run ./cmd/ttmcas-loadgen -scenario chaos -d 2s -c 8 -check

# Cluster smoke: a 4-node in-process cluster (real loopback listeners
# between peers) with one node killed a quarter in and revived at three
# quarters. -check runs a single-node baseline first and asserts the
# scaling contract: >= 0.8 x 4 x baseline RPS, zero transport errors,
# every request answered 200 across the kill and rejoin, forwards
# actually exercised, and the ring reconverged.
go run ./cmd/ttmcas-loadgen -scenario cluster -nodes 4 -kill -d 2s -c 4 -check

# Timeline smoke: one fab-fire-recovery batch job driven end to end
# through /v1/jobs (submit, poll to success, fetch the result), then a
# short 9:1 cached/uncached POST /v1/scenarios mix against an
# in-process server. -check fails on transport errors or any 5xx
# beyond deliberate Retry-After-bearing sheds.
go run ./cmd/ttmcas-loadgen -scenario timeline -d 2s -c 4 -check

# Distributed-job smoke: heavy mc-band batch jobs sharded across a
# 4-node in-process ring with a mid-run node kill and rejoin. -check
# runs a single-node baseline first and asserts zero lost jobs,
# remotely completed shards, a reconverged ring, and >= 0.7 x 4 x the
# single-node jobs/s.
go run ./cmd/ttmcas-loadgen -scenario distjobs -nodes 4 -kill -d 2s -c 3 -check

# Netsplit smoke: a 4-node in-process cluster with a mid-run asymmetric
# partition (every majority node's traffic to the victim blackholed,
# the victim's outbound intact) that heals before the run ends. -check
# asserts the partition-tolerance contract: zero transport errors and
# zero non-2xx in every phase, zero lost jobs, breakers open and
# re-close, the ring reconverges, and partitioned-phase throughput at
# least half the healthy phase's.
go run ./cmd/ttmcas-loadgen -scenario netsplit -nodes 4 -d 2s -c 2 -check
