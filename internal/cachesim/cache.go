// Package cachesim is the cache-performance substrate for the paper's
// cache-sizing case study (Section 6.1). The paper drives its IPC model
// with published SPEC CPU2000 miss-rate tables (Cantin & Hill); those
// tables are not redistributable, so this package regenerates
// equivalent data from first principles: a trace-driven set-associative
// cache simulator, a synthetic workload generator with SPEC-like
// locality structure, and a simple in-order IPC model on top.
//
// Only the *shape* of the miss curves matters to the case study —
// monotone, diminishing-return miss rates versus capacity with a
// working-set knee — and that shape is a property of bounded working
// sets plus reuse, which the generator reproduces by construction.
package cachesim

import (
	"fmt"
	"math/bits"
)

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity; must be a power of two.
	SizeBytes int
	// LineBytes is the cache line size; zero means 64.
	LineBytes int
	// Ways is the set associativity; zero means 4.
	Ways int
}

// Defaults for unset fields.
const (
	DefaultLineBytes = 64
	DefaultWays      = 4
)

func (c Config) withDefaults() Config {
	if c.LineBytes == 0 {
		c.LineBytes = DefaultLineBytes
	}
	if c.Ways == 0 {
		c.Ways = DefaultWays
	}
	return c
}

// Validate checks the configuration's structural constraints.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.SizeBytes <= 0 || bits.OnesCount(uint(c.SizeBytes)) != 1 {
		return fmt.Errorf("cachesim: size %d must be a positive power of two", c.SizeBytes)
	}
	if c.LineBytes <= 0 || bits.OnesCount(uint(c.LineBytes)) != 1 {
		return fmt.Errorf("cachesim: line size %d must be a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cachesim: ways %d must be positive", c.Ways)
	}
	if c.SizeBytes < c.LineBytes*c.Ways {
		return fmt.Errorf("cachesim: size %d too small for %d ways of %d-byte lines",
			c.SizeBytes, c.Ways, c.LineBytes)
	}
	return nil
}

// Stats accumulates access counts.
type Stats struct {
	Accesses, Misses uint64
}

// MissRate returns misses/accesses, or 0 before any access.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// only tags (no data payload): the case study needs hit/miss behaviour,
// not contents.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint
	setMask   uint64
	// tags[set*ways + way]; lru holds per-line recency counters
	// (smaller = older). A per-set clock avoids global counter
	// wraparound concerns for any realistic trace length.
	tags  []uint64
	valid []bool
	lru   []uint64
	clock []uint64
	stats Stats
}

// New builds a cache for the configuration.
func New(cfg Config) (*Cache, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		tags:      make([]uint64, sets*cfg.Ways),
		valid:     make([]bool, sets*cfg.Ways),
		lru:       make([]uint64, sets*cfg.Ways),
		clock:     make([]uint64, sets),
	}
	return c, nil
}

// Config returns the (defaulted) configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Access references addr and returns true on a hit. Misses fill the
// line, evicting the LRU way.
func (c *Cache) Access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	base := set * c.cfg.Ways
	c.stats.Accesses++
	c.clock[set]++
	tick := c.clock[set]

	victim, victimLRU := base, c.lru[base]
	for i := base; i < base+c.cfg.Ways; i++ {
		if c.valid[i] && c.tags[i] == line {
			c.lru[i] = tick
			return true
		}
		if !c.valid[i] {
			// Prefer an invalid way as the victim outright.
			victim, victimLRU = i, 0
		} else if c.lru[i] < victimLRU {
			victim, victimLRU = i, c.lru[i]
		}
	}
	c.stats.Misses++
	c.tags[victim] = line
	c.valid[victim] = true
	c.lru[victim] = tick
	return false
}

// Stats returns the accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.lru[i] = 0
		c.tags[i] = 0
	}
	for i := range c.clock {
		c.clock[i] = 0
	}
	c.stats = Stats{}
}
