package cachesim

import (
	"math"
	"testing"
)

func TestCPUModelDefaults(t *testing.T) {
	var cpu CPUModel
	perfect := MissRates{}
	if got := cpu.CPI(perfect); got != DefaultBaseCPI {
		t.Errorf("perfect-cache CPI = %v", got)
	}
	if got := cpu.IPC(perfect); math.Abs(got-1/DefaultBaseCPI) > 1e-12 {
		t.Errorf("perfect-cache IPC = %v", got)
	}
}

func TestCPIAdditive(t *testing.T) {
	cpu := CPUModel{BaseCPI: 2, MissPenalty: 100}
	m := MissRates{I: 0.01, D: 0.1, DataPerInstr: 0.4}
	want := 2 + 0.01*100 + 0.1*0.4*100
	if got := cpu.CPI(m); math.Abs(got-want) > 1e-12 {
		t.Errorf("CPI = %v, want %v", got, want)
	}
}

func TestSimulateValidatesConfigs(t *testing.T) {
	if _, err := Simulate(SPECLike(), Config{SizeBytes: 3}, Config{SizeBytes: 1024}, 10); err == nil {
		t.Error("bad icache config should error")
	}
	if _, err := Simulate(SPECLike(), Config{SizeBytes: 1024}, Config{SizeBytes: 3}, 10); err == nil {
		t.Error("bad dcache config should error")
	}
}

func TestLookupInterpolates(t *testing.T) {
	curve := []CurvePoint{{SizeKB: 1, MissRate: 0.4}, {SizeKB: 4, MissRate: 0.2}, {SizeKB: 16, MissRate: 0.1}}
	cases := []struct {
		kb   int
		want float64
	}{
		{1, 0.4}, {4, 0.2}, {16, 0.1},
		{2, 0.3},  // halfway in log2 space between 1 and 4
		{8, 0.15}, // halfway between 4 and 16
		{0, 0.4},  // clamp below
		{64, 0.1}, // clamp above
	}
	for _, c := range cases {
		got, err := Lookup(curve, c.kb)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Lookup(%d) = %v, want %v", c.kb, got, c.want)
		}
	}
	if _, err := Lookup(nil, 4); err == nil {
		t.Error("empty curve should error")
	}
}

func TestBuildIPCTable(t *testing.T) {
	sizes := []int{1, 32, 1024}
	tbl, err := BuildIPCTable(SPECLike(), CPUModel{}, sizes, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.IPC) != 3 || len(tbl.IPC[0]) != 3 {
		t.Fatalf("table shape wrong: %+v", tbl)
	}
	// IPC must be monotone non-decreasing along both axes.
	for i := 0; i < 3; i++ {
		for j := 1; j < 3; j++ {
			if tbl.IPC[i][j] < tbl.IPC[i][j-1]-1e-9 {
				t.Errorf("IPC not monotone in D$ at (%d,%d)", i, j)
			}
			if tbl.IPC[j][i] < tbl.IPC[j-1][i]-1e-9 {
				t.Errorf("IPC not monotone in I$ at (%d,%d)", j, i)
			}
		}
	}
	lo, err := tbl.At(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := tbl.At(1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if hi <= lo {
		t.Errorf("IPC(1MB,1MB)=%v should exceed IPC(1KB,1KB)=%v", hi, lo)
	}
	// The case study's dynamic range: roughly 0.08–0.28.
	if lo < 0.05 || hi > 0.30 {
		t.Errorf("IPC range [%v, %v] outside the case-study band", lo, hi)
	}
	if _, err := tbl.At(3, 1); err == nil {
		t.Error("unknown size should error")
	}
}
