package cachesim

// Workload presets. The paper's cache study uses SPEC CPU2000 averages;
// real suites span a range of locality behaviours, and the IPC/TTM
// conclusions should be checked against more than one point in that
// space. These presets bracket it:
//
//   - SPECLike      — the reference mix (defaults).
//   - ComputeBound  — small working sets, few memory references: caches
//     saturate early, so the IPC/TTM optimum shifts to small caches.
//   - MemoryBound   — large, flat heap working set: misses stay high
//     until multi-megabyte capacities.
//   - Streaming     — DSP/media-style sequential sweeps: a high
//     compulsory-miss floor no cache size removes.
//   - CodeHeavy     — large instruction footprint (interpreters,
//     databases): the I-cache matters more than the D-cache.

// Presets returns the named workload suite, reference mix first.
func Presets() []Workload {
	return []Workload{
		SPECLike(),
		ComputeBound(),
		MemoryBound(),
		Streaming(),
		CodeHeavy(),
	}
}

// FindPreset returns the named preset, or false.
func FindPreset(name string) (Workload, bool) {
	for _, w := range Presets() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// ComputeBound models a register-resident kernel: tiny footprints and
// a light data-reference rate.
func ComputeBound() Workload {
	return Workload{
		Name: "compute-bound", Seed: 31,
		CodeFootprintKB: 32, Functions: 8,
		HeapFootprintKB: 64, HeapZipf: 1.6,
		StackKB: 1, StreamFrac: 0.005,
		LoadsPerInstr: 0.12, StoresPerInstr: 0.05,
	}
}

// MemoryBound models a graph/database-style access pattern: a large
// heap with a weak popularity skew.
func MemoryBound() Workload {
	return Workload{
		Name: "memory-bound", Seed: 37,
		CodeFootprintKB: 128, Functions: 32,
		HeapFootprintKB: 65536, HeapZipf: 1.05,
		StackKB: 2, StreamFrac: 0.02,
		LoadsPerInstr: 0.35, StoresPerInstr: 0.12,
	}
}

// Streaming models media/DSP kernels: most data references sweep
// arrays once.
func Streaming() Workload {
	return Workload{
		Name: "streaming", Seed: 41,
		CodeFootprintKB: 64, Functions: 8,
		HeapFootprintKB: 1024, HeapZipf: 1.4,
		StackKB: 1, StreamFrac: 0.5,
		LoadsPerInstr: 0.30, StoresPerInstr: 0.15,
	}
}

// CodeHeavy models interpreter/database frontends: a multi-megabyte
// instruction footprint with shallow loops.
func CodeHeavy() Workload {
	return Workload{
		Name: "code-heavy", Seed: 43,
		CodeFootprintKB: 8192, Functions: 1024, CodeZipf: 0.9,
		HeapFootprintKB: 2048, HeapZipf: 1.4,
		StackKB: 2, StreamFrac: 0.01,
		LoadsPerInstr: 0.22, StoresPerInstr: 0.08,
	}
}
