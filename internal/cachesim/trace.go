package cachesim

import (
	"math"
	"math/rand"
)

// RefKind distinguishes instruction fetches from data accesses.
type RefKind uint8

// Reference kinds.
const (
	Fetch RefKind = iota
	Load
	Store
)

// Ref is one memory reference of a trace.
type Ref struct {
	Addr uint64
	Kind RefKind
}

// Workload parameterizes the synthetic trace generator. The generator
// models the locality structure that produces SPEC-like miss curves:
//
//   - instructions stream sequentially through basic blocks inside a
//     set of "functions" with Zipf-distributed popularity (hot loops
//     dominate, cold code tails off), giving instruction working sets
//     from a few KB to hundreds of KB;
//   - data accesses mix a small hot stack, a Zipf-weighted heap
//     working set, and streaming array sweeps, giving data miss curves
//     with a capacity knee and a compulsory-miss floor.
type Workload struct {
	// Name labels the workload in reports.
	Name string
	// Seed fixes the trace; the same seed always yields the same trace.
	Seed int64

	// CodeFootprintKB is the total code size; zero means 512.
	CodeFootprintKB int
	// Functions is the number of code regions; zero means 64.
	Functions int
	// CodeZipf is the Zipf s-parameter for function popularity; zero
	// means 1.2.
	CodeZipf float64
	// AvgBlockInstrs is the mean basic-block length in instructions;
	// zero means 8.
	AvgBlockInstrs int

	// HeapFootprintKB is the heap working-set size; zero means 8192.
	HeapFootprintKB int
	// HeapZipf is the Zipf s-parameter for heap *line* popularity
	// (must exceed 1); zero means 1.3.
	HeapZipf float64
	// StackKB is the stack region size; accesses concentrate near the
	// top of stack. Zero means 2.
	StackKB int
	// StreamFrac is the fraction of data references that sweep a large
	// streaming array (compulsory misses); zero means 0.02.
	StreamFrac float64
	// LoadsPerInstr and StoresPerInstr set the data-reference mix;
	// zeros mean 0.25 and 0.10.
	LoadsPerInstr, StoresPerInstr float64
}

// Defaults as documented on Workload.
func (w Workload) withDefaults() Workload {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	deff := func(v *float64, d float64) {
		if *v == 0 {
			*v = d
		}
	}
	def(&w.CodeFootprintKB, 512)
	def(&w.Functions, 64)
	deff(&w.CodeZipf, 1.2)
	def(&w.AvgBlockInstrs, 8)
	def(&w.HeapFootprintKB, 8192)
	deff(&w.HeapZipf, 1.3)
	def(&w.StackKB, 2)
	deff(&w.StreamFrac, 0.02)
	deff(&w.LoadsPerInstr, 0.25)
	deff(&w.StoresPerInstr, 0.10)
	return w
}

// SPECLike returns the reference workload used by the cache case study:
// the defaults above, which produce instruction and data miss curves
// with knees in the 8–256 KB range like the SPEC CPU2000 averages the
// paper cites.
func SPECLike() Workload {
	return Workload{Name: "spec-like", Seed: 2023}.withDefaults()
}

// zipfWeights returns normalized rank weights w_r ∝ 1/r^s.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Generator produces an endless reference stream for a workload.
type Generator struct {
	w   Workload
	rng *rand.Rand

	funcBase []uint64  // code region base addresses
	funcSize []uint64  // code region sizes
	funcCum  []float64 // cumulative popularity

	heapLines uint64
	heapZipf  *rand.Zipf // line-granularity popularity

	pc       uint64
	fn       int
	blockEnd uint64

	streamPtr  uint64
	stackBase  uint64
	heapBase   uint64
	streamBase uint64

	pendingData []Ref
}

// Address-space layout constants (arbitrary, distinct regions).
const (
	codeBase   = 0x0040_0000
	stackBase  = 0x7fff_0000
	heapBase   = 0x1000_0000
	streamBase = 0x4000_0000
)

// NewGenerator builds a deterministic generator for the workload.
func NewGenerator(w Workload) *Generator {
	w = w.withDefaults()
	g := &Generator{
		w:          w,
		rng:        rand.New(rand.NewSource(w.Seed)),
		stackBase:  stackBase,
		heapBase:   heapBase,
		streamBase: streamBase,
	}

	// Carve the code footprint into functions with Zipf popularity.
	weights := zipfWeights(w.Functions, w.CodeZipf)
	total := uint64(w.CodeFootprintKB) * 1024
	per := total / uint64(w.Functions)
	if per < 256 {
		per = 256 // keep at least a few basic blocks per function
	}
	g.funcBase = make([]uint64, w.Functions)
	g.funcSize = make([]uint64, w.Functions)
	g.funcCum = make([]float64, w.Functions)
	cum := 0.0
	for i := 0; i < w.Functions; i++ {
		g.funcBase[i] = codeBase + uint64(i)*per
		g.funcSize[i] = per
		cum += weights[i]
		g.funcCum[i] = cum
	}

	// Heap popularity at line granularity: rank r is accessed with
	// probability ∝ 1/(1+r)^s, and ranks are scattered across the
	// footprint by a fixed permutation so popular lines land in
	// different cache sets.
	g.heapLines = uint64(w.HeapFootprintKB) * 1024 / DefaultLineBytes
	if g.heapLines < 1 {
		g.heapLines = 1
	}
	s := w.HeapZipf
	if s <= 1 {
		s = 1.01
	}
	g.heapZipf = rand.NewZipf(g.rng, s, 1, g.heapLines-1)

	g.enterFunction(0)
	return g
}

// enterFunction jumps the PC into function fn at a random block start.
func (g *Generator) enterFunction(fn int) {
	g.fn = fn
	off := uint64(g.rng.Int63n(int64(g.funcSize[fn]/64))) * 64
	g.pc = g.funcBase[fn] + off
	g.newBlock()
}

// newBlock picks the current basic block's length.
func (g *Generator) newBlock() {
	n := 1 + g.rng.Int63n(int64(2*g.w.AvgBlockInstrs))
	g.blockEnd = g.pc + uint64(n)*4
}

// pickByCum samples an index from a cumulative distribution.
func (g *Generator) pickByCum(cum []float64) int {
	u := g.rng.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Next returns the next reference in the trace.
func (g *Generator) Next() Ref {
	// Drain any data references scheduled by the last instruction.
	if len(g.pendingData) > 0 {
		r := g.pendingData[len(g.pendingData)-1]
		g.pendingData = g.pendingData[:len(g.pendingData)-1]
		return r
	}

	// Fetch the current instruction.
	r := Ref{Addr: g.pc, Kind: Fetch}
	g.pc += 4

	// Schedule this instruction's data accesses.
	if g.rng.Float64() < g.w.LoadsPerInstr {
		g.pendingData = append(g.pendingData, Ref{Addr: g.dataAddr(), Kind: Load})
	}
	if g.rng.Float64() < g.w.StoresPerInstr {
		g.pendingData = append(g.pendingData, Ref{Addr: g.dataAddr(), Kind: Store})
	}

	// Control flow at block boundaries.
	if g.pc >= g.blockEnd {
		switch u := g.rng.Float64(); {
		case u < 0.70:
			// Loop back within the function: re-enter near the
			// function start, keeping the hot region hot.
			back := uint64(g.rng.Int63n(int64(g.funcSize[g.fn]/2/64))) * 64
			g.pc = g.funcBase[g.fn] + back
			g.newBlock()
		case u < 0.85:
			// Fall through to the next block.
			g.newBlock()
		default:
			// Call/branch to another function by popularity.
			g.enterFunction(g.pickByCum(g.funcCum))
		}
	}
	return r
}

// heapScatter is the odd multiplier of the rank→line bijection.
const heapScatter = 2654435761 // Knuth's multiplicative hash constant

// dataAddr samples one data address from the stack/heap/stream mix.
func (g *Generator) dataAddr() uint64 {
	u := g.rng.Float64()
	switch {
	case u < 0.35:
		// Stack: offsets concentrate near the top of stack with an
		// exponential-ish tail (|N(0, size/6)| clamped), so the hot
		// frame fits even small caches.
		size := float64(g.w.StackKB * 1024)
		off := math.Abs(g.rng.NormFloat64()) * size / 6
		if off >= size {
			off = size - 1
		}
		return g.stackBase + uint64(off)
	case u < 1-g.w.StreamFrac:
		// Line-granularity Zipf heap, scattered across the footprint.
		rank := g.heapZipf.Uint64()
		line := (rank * heapScatter) % g.heapLines
		return g.heapBase + line*DefaultLineBytes + uint64(g.rng.Int63n(DefaultLineBytes))
	default:
		// Streaming sweep: sequential, effectively compulsory misses.
		g.streamPtr += 16
		return g.streamBase + g.streamPtr
	}
}
