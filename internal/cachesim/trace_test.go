package cachesim

import (
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(SPECLike())
	g2 := NewGenerator(SPECLike())
	for i := 0; i < 10_000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("trace diverged at ref %d", i)
		}
	}
	g3 := NewGenerator(Workload{Name: "other", Seed: 99})
	diverged := false
	g4 := NewGenerator(SPECLike())
	for i := 0; i < 1000; i++ {
		if g3.Next() != g4.Next() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("different seeds should produce different traces")
	}
}

func TestTraceRegions(t *testing.T) {
	g := NewGenerator(SPECLike())
	var fetches, loads, stores int
	for i := 0; i < 200_000; i++ {
		r := g.Next()
		switch r.Kind {
		case Fetch:
			fetches++
			if r.Addr < codeBase || r.Addr >= heapBase {
				t.Fatalf("fetch outside code region: %#x", r.Addr)
			}
			if r.Addr%4 != 0 {
				t.Fatalf("unaligned fetch: %#x", r.Addr)
			}
		case Load:
			loads++
		case Store:
			stores++
		}
		if r.Kind != Fetch && r.Addr >= codeBase && r.Addr < codeBase+1<<20 {
			t.Fatalf("data access inside code region: %#x", r.Addr)
		}
	}
	if fetches == 0 || loads == 0 || stores == 0 {
		t.Fatalf("mix missing kinds: f=%d l=%d s=%d", fetches, loads, stores)
	}
	// Loads ≈ 0.25/instr, stores ≈ 0.10/instr.
	lpi := float64(loads) / float64(fetches)
	spi := float64(stores) / float64(fetches)
	if lpi < 0.22 || lpi > 0.28 {
		t.Errorf("loads/instr = %v, want ~0.25", lpi)
	}
	if spi < 0.08 || spi > 0.12 {
		t.Errorf("stores/instr = %v, want ~0.10", spi)
	}
}

func TestMissCurvesShape(t *testing.T) {
	ic, dc, err := MissCurves(SPECLike(), []int{1, 8, 64, 512}, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	checkMonotone := func(name string, curve []CurvePoint) {
		t.Helper()
		for i := 1; i < len(curve); i++ {
			if curve[i].MissRate > curve[i-1].MissRate+0.005 {
				t.Errorf("%s miss curve not decreasing: %+v", name, curve)
			}
		}
		first, last := curve[0].MissRate, curve[len(curve)-1].MissRate
		if first < 2*last {
			t.Errorf("%s curve too flat: %v -> %v", name, first, last)
		}
	}
	checkMonotone("I", ic)
	checkMonotone("D", dc)
	// SPEC-like magnitudes: small-cache data misses are substantial,
	// large-cache misses approach the compulsory floor.
	if dc[0].MissRate < 0.2 {
		t.Errorf("D miss at 1KB = %v, want > 0.2", dc[0].MissRate)
	}
	if dc[len(dc)-1].MissRate > 0.1 {
		t.Errorf("D miss at 512KB = %v, want < 0.1", dc[len(dc)-1].MissRate)
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(10, 1.2)
	sum := 0.0
	for i, v := range w {
		sum += v
		if i > 0 && v >= w[i-1] {
			t.Error("weights should decay")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("weights sum = %v", sum)
	}
}

func TestTinyWorkloadsDoNotPanic(t *testing.T) {
	tiny := Workload{
		Name: "tiny", Seed: 1,
		CodeFootprintKB: 1, Functions: 16,
		HeapFootprintKB: 1, StackKB: 1,
	}
	g := NewGenerator(tiny)
	for i := 0; i < 50_000; i++ {
		g.Next()
	}
}
