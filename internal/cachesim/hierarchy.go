package cachesim

import (
	"fmt"
)

// Two-level hierarchy support. The paper's case study models a split
// L1 backed directly by memory; real Ariane-class SoCs share an L2
// between the cores, which changes how much the L1 capacity sweep
// matters (the L2 absorbs part of every L1 miss penalty). The
// hierarchy simulator quantifies that, and the corresponding CPU model
// splits the miss penalty into an L2-hit and a memory portion.

// HierarchyConfig describes a split L1 in front of a unified L2.
type HierarchyConfig struct {
	L1I, L1D Config
	// L2 is the unified second level; a zero SizeBytes disables it
	// (the case study's flat configuration).
	L2 Config
}

// HierarchyStats reports per-level results of a hierarchy run.
type HierarchyStats struct {
	L1I, L1D Stats
	// L2 counts only the accesses that missed an L1.
	L2 Stats
	// Refs is the total reference count driven.
	Refs int
}

// L1IMissRate and friends are per-access rates.
func (h HierarchyStats) L1IMissRate() float64 { return h.L1I.MissRate() }

// L1DMissRate is the data-side L1 miss rate.
func (h HierarchyStats) L1DMissRate() float64 { return h.L1D.MissRate() }

// L2MissRate is misses per L2 access (i.e. per L1 miss).
func (h HierarchyStats) L2MissRate() float64 { return h.L2.MissRate() }

// Hierarchy is an instantiated two-level cache system.
type Hierarchy struct {
	l1i, l1d *Cache
	l2       *Cache
	stats    HierarchyStats
}

// NewHierarchy builds the system; the L2, when present, must be at
// least as large as each L1 (a sanity constraint, not strict
// inclusion).
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	l1i, err := New(cfg.L1I)
	if err != nil {
		return nil, fmt.Errorf("L1I: %w", err)
	}
	l1d, err := New(cfg.L1D)
	if err != nil {
		return nil, fmt.Errorf("L1D: %w", err)
	}
	h := &Hierarchy{l1i: l1i, l1d: l1d}
	if cfg.L2.SizeBytes != 0 {
		l2, err := New(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("L2: %w", err)
		}
		if cfg.L2.SizeBytes < cfg.L1I.SizeBytes || cfg.L2.SizeBytes < cfg.L1D.SizeBytes {
			return nil, fmt.Errorf("cachesim: L2 (%d B) smaller than an L1", cfg.L2.SizeBytes)
		}
		h.l2 = l2
	}
	return h, nil
}

// Access drives one reference through the hierarchy.
func (h *Hierarchy) Access(r Ref) {
	h.stats.Refs++
	var l1 *Cache
	if r.Kind == Fetch {
		l1 = h.l1i
	} else {
		l1 = h.l1d
	}
	if l1.Access(r.Addr) {
		return
	}
	if h.l2 != nil {
		h.l2.Access(r.Addr)
	}
}

// Stats returns the accumulated counters.
func (h *Hierarchy) Stats() HierarchyStats {
	s := HierarchyStats{L1I: h.l1i.Stats(), L1D: h.l1d.Stats(), Refs: h.stats.Refs}
	if h.l2 != nil {
		s.L2 = h.l2.Stats()
	}
	return s
}

// SimulateHierarchy runs refs references of the workload through the
// hierarchy and returns the stats.
func SimulateHierarchy(w Workload, cfg HierarchyConfig, refs int) (HierarchyStats, error) {
	h, err := NewHierarchy(cfg)
	if err != nil {
		return HierarchyStats{}, err
	}
	g := NewGenerator(w)
	for i := 0; i < refs; i++ {
		h.Access(g.Next())
	}
	return h.Stats(), nil
}

// HierarchyCPUModel extends CPUModel with a second level: an L1 miss
// pays L2Latency; an L2 miss pays MemoryPenalty on top.
type HierarchyCPUModel struct {
	// BaseCPI as in CPUModel; zero means the same default.
	BaseCPI float64
	// L2Latency is the L1-miss/L2-hit cost in cycles; zero means 8.
	L2Latency float64
	// MemoryPenalty is the additional cost of an L2 miss; zero means
	// the flat model's full penalty (so a disabled L2 reproduces the
	// flat numbers exactly).
	MemoryPenalty float64
}

// Default hierarchy latencies.
const (
	DefaultL2Latency     = 8
	DefaultMemoryPenalty = DefaultMissPenalty
)

// CPI computes cycles per instruction from hierarchy stats, given the
// workload's data-reference rate.
func (m HierarchyCPUModel) CPI(s HierarchyStats, dataPerInstr float64) float64 {
	base := m.BaseCPI
	if base == 0 {
		base = DefaultBaseCPI
	}
	l2lat := m.L2Latency
	if l2lat == 0 {
		l2lat = DefaultL2Latency
	}
	mem := m.MemoryPenalty
	if mem == 0 {
		mem = DefaultMemoryPenalty
	}
	// Per-instruction L1 miss rate.
	l1miss := s.L1IMissRate() + s.L1DMissRate()*dataPerInstr
	cpi := base
	if s.L2.Accesses > 0 {
		cpi += l1miss * (l2lat + s.L2MissRate()*mem)
	} else {
		// No L2 configured: every L1 miss goes straight to memory,
		// reproducing the flat CPUModel exactly.
		cpi += l1miss * mem
	}
	return cpi
}

// IPC is the reciprocal of CPI.
func (m HierarchyCPUModel) IPC(s HierarchyStats, dataPerInstr float64) float64 {
	return 1 / m.CPI(s, dataPerInstr)
}
