package cachesim

import (
	"fmt"
	"math"
	"sort"
)

// MissRates are the per-access miss rates of a split L1.
type MissRates struct {
	// I is misses per instruction fetch; D is misses per data access.
	I, D float64
	// LoadsPerInstr+StoresPerInstr is the data-reference rate used to
	// convert D into misses per instruction.
	DataPerInstr float64
}

// Simulate runs refs references of the workload through a split
// I/D cache pair and returns the measured miss rates.
func Simulate(w Workload, icfg, dcfg Config, refs int) (MissRates, error) {
	ic, err := New(icfg)
	if err != nil {
		return MissRates{}, fmt.Errorf("icache: %w", err)
	}
	dc, err := New(dcfg)
	if err != nil {
		return MissRates{}, fmt.Errorf("dcache: %w", err)
	}
	g := NewGenerator(w)
	for i := 0; i < refs; i++ {
		r := g.Next()
		if r.Kind == Fetch {
			ic.Access(r.Addr)
		} else {
			dc.Access(r.Addr)
		}
	}
	wd := w.withDefaults()
	return MissRates{
		I:            ic.Stats().MissRate(),
		D:            dc.Stats().MissRate(),
		DataPerInstr: wd.LoadsPerInstr + wd.StoresPerInstr,
	}, nil
}

// CPUModel is the simple in-order IPC model of the case study: a base
// CPI plus additive miss penalties, the classic first-order model for
// a blocking in-order core like Ariane.
type CPUModel struct {
	// BaseCPI is the cycles per instruction with perfect caches; zero
	// means 3.7 (in-order single-issue with realistic hazards; the
	// SPEC2000-era Ariane-class operating point of the case study).
	BaseCPI float64
	// MissPenalty is the cycles to serve an L1 miss; zero means 25.
	MissPenalty float64
}

// Defaults as documented on CPUModel.
const (
	DefaultBaseCPI     = 3.7
	DefaultMissPenalty = 25
)

func (c CPUModel) withDefaults() CPUModel {
	if c.BaseCPI == 0 {
		c.BaseCPI = DefaultBaseCPI
	}
	if c.MissPenalty == 0 {
		c.MissPenalty = DefaultMissPenalty
	}
	return c
}

// CPI returns cycles per instruction for the measured miss rates.
func (c CPUModel) CPI(m MissRates) float64 {
	c = c.withDefaults()
	return c.BaseCPI + m.I*c.MissPenalty + m.D*m.DataPerInstr*c.MissPenalty
}

// IPC returns instructions per cycle.
func (c CPUModel) IPC(m MissRates) float64 { return 1 / c.CPI(m) }

// SweepSizesKB is the cache-capacity sweep of the paper's Figs. 4–6:
// 1 KB to 1 MB in powers of two.
var SweepSizesKB = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// CurvePoint is one capacity sample of a miss curve.
type CurvePoint struct {
	SizeKB   int
	MissRate float64
}

// MissCurves simulates the workload once per capacity point and returns
// the instruction and data miss curves. Because the I and D caches are
// independent, the (i, d) cross-product of the case study factorizes
// into two one-dimensional sweeps. refs is the trace length per point;
// zero means 2 000 000.
func MissCurves(w Workload, sizesKB []int, refs int) (icurve, dcurve []CurvePoint, err error) {
	if refs <= 0 {
		refs = 2_000_000
	}
	if len(sizesKB) == 0 {
		sizesKB = SweepSizesKB
	}
	// Fix the off-axis cache at a mid size so the sweep isolates one
	// dimension (the other cache's contents don't interact anyway).
	const fixedKB = 32
	for _, kb := range sizesKB {
		m, err := Simulate(w, Config{SizeBytes: kb * 1024}, Config{SizeBytes: fixedKB * 1024}, refs)
		if err != nil {
			return nil, nil, err
		}
		icurve = append(icurve, CurvePoint{SizeKB: kb, MissRate: m.I})
		m, err = Simulate(w, Config{SizeBytes: fixedKB * 1024}, Config{SizeBytes: kb * 1024}, refs)
		if err != nil {
			return nil, nil, err
		}
		dcurve = append(dcurve, CurvePoint{SizeKB: kb, MissRate: m.D})
	}
	return icurve, dcurve, nil
}

// Lookup returns the miss rate at the given capacity, interpolating
// geometrically between sampled points (miss curves are near-linear in
// log-capacity between knees).
func Lookup(curve []CurvePoint, sizeKB int) (float64, error) {
	if len(curve) == 0 {
		return 0, fmt.Errorf("cachesim: empty curve")
	}
	pts := append([]CurvePoint(nil), curve...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].SizeKB < pts[j].SizeKB })
	if sizeKB <= pts[0].SizeKB {
		return pts[0].MissRate, nil
	}
	last := pts[len(pts)-1]
	if sizeKB >= last.SizeKB {
		return last.MissRate, nil
	}
	for i := 1; i < len(pts); i++ {
		if sizeKB <= pts[i].SizeKB {
			lo, hi := pts[i-1], pts[i]
			t := (math.Log2(float64(sizeKB)) - math.Log2(float64(lo.SizeKB))) /
				(math.Log2(float64(hi.SizeKB)) - math.Log2(float64(lo.SizeKB)))
			return lo.MissRate + t*(hi.MissRate-lo.MissRate), nil
		}
	}
	return last.MissRate, nil
}

// IPCTable evaluates the CPU model over the full (I$, D$) capacity
// cross-product from the two one-dimensional miss curves.
type IPCTable struct {
	SizesKB []int
	// IPC[i][j] is the IPC with I$ = SizesKB[i], D$ = SizesKB[j].
	IPC [][]float64
}

// BuildIPCTable computes the table for a workload and CPU model.
func BuildIPCTable(w Workload, cpu CPUModel, sizesKB []int, refs int) (IPCTable, error) {
	if len(sizesKB) == 0 {
		sizesKB = SweepSizesKB
	}
	ic, dc, err := MissCurves(w, sizesKB, refs)
	if err != nil {
		return IPCTable{}, err
	}
	wd := w.withDefaults()
	tbl := IPCTable{SizesKB: append([]int(nil), sizesKB...)}
	tbl.IPC = make([][]float64, len(sizesKB))
	for i, ikb := range sizesKB {
		tbl.IPC[i] = make([]float64, len(sizesKB))
		for j, dkb := range sizesKB {
			mi, err := Lookup(ic, ikb)
			if err != nil {
				return IPCTable{}, err
			}
			md, err := Lookup(dc, dkb)
			if err != nil {
				return IPCTable{}, err
			}
			tbl.IPC[i][j] = cpu.IPC(MissRates{I: mi, D: md, DataPerInstr: wd.LoadsPerInstr + wd.StoresPerInstr})
		}
	}
	return tbl, nil
}

// At returns the IPC for the given capacities, which must be members of
// SizesKB.
func (t IPCTable) At(ikb, dkb int) (float64, error) {
	ii, jj := -1, -1
	for idx, kb := range t.SizesKB {
		if kb == ikb {
			ii = idx
		}
		if kb == dkb {
			jj = idx
		}
	}
	if ii < 0 || jj < 0 {
		return 0, fmt.Errorf("cachesim: size (%d, %d) not in table", ikb, dkb)
	}
	return t.IPC[ii][jj], nil
}
