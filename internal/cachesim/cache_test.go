package cachesim

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := []Config{
		{SizeBytes: 1024},
		{SizeBytes: 64, LineBytes: 16, Ways: 2},
		{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
	bad := []Config{
		{SizeBytes: 0},
		{SizeBytes: 1000},               // not a power of two
		{SizeBytes: 1024, LineBytes: 3}, // not a power of two
		{SizeBytes: 1024, Ways: -1},
		{SizeBytes: 128, LineBytes: 64, Ways: 4}, // size < line*ways
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
	if _, err := New(Config{SizeBytes: 1000}); err == nil {
		t.Error("New should validate")
	}
}

func TestColdMissThenHit(t *testing.T) {
	c, err := New(Config{SizeBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Error("cold access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("repeat access should hit")
	}
	if !c.Access(0x1010) {
		t.Error("same-line access should hit")
	}
	if c.Access(0x2000) {
		t.Error("new line should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction of an LRU scenario: 2-way set, three lines
	// mapping to the same set.
	c, err := New(Config{SizeBytes: 2 * 64, LineBytes: 64, Ways: 2})
	if err != nil {
		t.Fatal(err) // 1 set, 2 ways
	}
	a, b, x := uint64(0), uint64(64), uint64(128)
	c.Access(a) // miss, A in
	c.Access(b) // miss, B in
	c.Access(a) // hit, A most-recent
	c.Access(x) // miss, evicts B (LRU)
	if !c.Access(a) {
		t.Error("A should still be resident")
	}
	if c.Access(b) {
		t.Error("B should have been evicted (LRU)")
	}
}

func TestLRUMatchesSmallWorkingSet(t *testing.T) {
	// A working set that fits must converge to a 100% hit rate after
	// the cold pass.
	c, err := New(Config{SizeBytes: 8192, LineBytes: 64, Ways: 4})
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 10; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr)
		}
	}
	s := c.Stats()
	if s.Misses != 64 {
		t.Errorf("misses = %d, want 64 (cold only)", s.Misses)
	}
}

func TestReset(t *testing.T) {
	c, err := New(Config{SizeBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 || s.Misses != 0 {
		t.Errorf("stats after reset = %+v", s)
	}
	if c.Access(0) {
		t.Error("reset cache should cold-miss")
	}
}

func TestMissRateBounds(t *testing.T) {
	// Property: for any address stream, 0 ≤ miss rate ≤ 1 and misses
	// ≤ accesses.
	f := func(addrs []uint32) bool {
		c, err := New(Config{SizeBytes: 4096, Ways: 2})
		if err != nil {
			return false
		}
		for _, a := range addrs {
			c.Access(uint64(a))
		}
		s := c.Stats()
		return s.Misses <= s.Accesses && s.MissRate() >= 0 && s.MissRate() <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBiggerCacheNeverWorseOnFixedTrace(t *testing.T) {
	// Property (LRU inclusion): doubling capacity at fixed
	// associativity×2 (same sets) cannot increase misses for the same
	// trace. We test the practical version: on the generated trace,
	// the measured miss rate is monotone non-increasing in capacity.
	g := NewGenerator(SPECLike())
	trace := make([]Ref, 300_000)
	for i := range trace {
		trace[i] = g.Next()
	}
	prev := 1.1
	for _, kb := range []int{1, 4, 16, 64, 256} {
		c, err := New(Config{SizeBytes: kb * 1024, Ways: 8})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range trace {
			if r.Kind != Fetch {
				c.Access(r.Addr)
			}
		}
		mr := c.Stats().MissRate()
		if mr > prev+0.005 {
			t.Errorf("miss rate rose at %dKB: %v > %v", kb, mr, prev)
		}
		prev = mr
	}
}

func TestStatsZero(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
}

func TestConfigAccessors(t *testing.T) {
	c, err := New(Config{SizeBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().LineBytes != DefaultLineBytes || c.Config().Ways != DefaultWays {
		t.Errorf("defaults not applied: %+v", c.Config())
	}
	if c.Sets() != 4096/(DefaultLineBytes*DefaultWays) {
		t.Errorf("sets = %d", c.Sets())
	}
}
