package cachesim

import (
	"testing"
)

func TestPresetsDistinctAndValid(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Presets() {
		if w.Name == "" {
			t.Fatal("preset without a name")
		}
		if seen[w.Name] {
			t.Fatalf("duplicate preset %q", w.Name)
		}
		seen[w.Name] = true
		// Every preset must generate without panicking.
		g := NewGenerator(w)
		for i := 0; i < 20_000; i++ {
			g.Next()
		}
	}
	if _, ok := FindPreset("spec-like"); !ok {
		t.Error("spec-like preset missing")
	}
	if _, ok := FindPreset("nope"); ok {
		t.Error("unknown preset should not resolve")
	}
}

// missAt simulates one workload and returns (I, D) miss rates at the
// given split cache capacity.
func missAt(t *testing.T, w Workload, kb int) MissRates {
	t.Helper()
	m, err := Simulate(w, Config{SizeBytes: kb * 1024}, Config{SizeBytes: kb * 1024}, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStreamingHasHighMissFloor(t *testing.T) {
	// At 1 MB, the streaming preset's data misses stay far above the
	// reference mix's (compulsory misses are capacity-proof).
	spec := missAt(t, SPECLike(), 1024)
	stream := missAt(t, Streaming(), 1024)
	// Stream accesses touch each 64-byte line four times (16-byte
	// stride), so the floor is ~StreamFrac/4 ≈ 0.125.
	if stream.D < 2*spec.D || stream.D < 0.10 {
		t.Errorf("streaming D-miss floor %v should dwarf spec-like %v", stream.D, spec.D)
	}
}

func TestComputeBoundSaturatesEarly(t *testing.T) {
	// The compute-bound mix should be near its miss floor already at
	// 32 KB: growing to 512 KB buys almost nothing.
	small := missAt(t, ComputeBound(), 32)
	big := missAt(t, ComputeBound(), 512)
	if small.D-big.D > 0.02 {
		t.Errorf("compute-bound should saturate by 32KB: %v -> %v", small.D, big.D)
	}
	if small.D > 0.08 {
		t.Errorf("compute-bound D-miss at 32KB = %v, want small", small.D)
	}
}

func TestMemoryBoundNeedsCapacity(t *testing.T) {
	// The memory-bound mix keeps missing at capacities where the
	// reference mix has flattened.
	spec := missAt(t, SPECLike(), 256)
	mem := missAt(t, MemoryBound(), 256)
	if mem.D < 2*spec.D {
		t.Errorf("memory-bound D-miss %v should far exceed spec-like %v at 256KB", mem.D, spec.D)
	}
}

func TestCodeHeavyStressesICache(t *testing.T) {
	// At 64 KB the code-heavy mix misses instructions far more than
	// the reference mix.
	spec := missAt(t, SPECLike(), 64)
	code := missAt(t, CodeHeavy(), 64)
	if code.I < 1.8*spec.I {
		t.Errorf("code-heavy I-miss %v should far exceed spec-like %v", code.I, spec.I)
	}
}

func TestPresetsChangeTheCacheOptimum(t *testing.T) {
	// The study's conclusion is workload-dependent in the expected
	// direction: a compute-bound product needs less cache at the IPC
	// knee than a memory-bound one. Compare the capacity needed to get
	// within 10% of each workload's best IPC.
	kneeOf := func(w Workload) int {
		var cpu CPUModel
		best := 0.0
		ipcAt := map[int]float64{}
		for _, kb := range []int{1, 8, 64, 512} {
			m := missAt(t, w, kb)
			ipc := cpu.IPC(m)
			ipcAt[kb] = ipc
			if ipc > best {
				best = ipc
			}
		}
		for _, kb := range []int{1, 8, 64, 512} {
			if ipcAt[kb] >= 0.9*best {
				return kb
			}
		}
		return 512
	}
	if compute, mem := kneeOf(ComputeBound()), kneeOf(MemoryBound()); compute > mem {
		t.Errorf("compute-bound knee %dKB should not exceed memory-bound %dKB", compute, mem)
	}
}
