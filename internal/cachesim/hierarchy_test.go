package cachesim

import (
	"math"
	"testing"
)

func l1pair(kb int) HierarchyConfig {
	return HierarchyConfig{
		L1I: Config{SizeBytes: kb * 1024},
		L1D: Config{SizeBytes: kb * 1024},
	}
}

func TestHierarchyValidation(t *testing.T) {
	bad := HierarchyConfig{L1I: Config{SizeBytes: 3}, L1D: Config{SizeBytes: 1024}}
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("bad L1I should error")
	}
	bad = HierarchyConfig{L1I: Config{SizeBytes: 1024}, L1D: Config{SizeBytes: 3}}
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("bad L1D should error")
	}
	bad = l1pair(64)
	bad.L2 = Config{SizeBytes: 3}
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("bad L2 should error")
	}
	bad = l1pair(64)
	bad.L2 = Config{SizeBytes: 32 * 1024}
	if _, err := NewHierarchy(bad); err == nil {
		t.Error("L2 smaller than L1 should error")
	}
}

func TestHierarchyMatchesFlatWithoutL2(t *testing.T) {
	// With no L2, the hierarchy's per-side miss rates equal the flat
	// simulator's on the same workload.
	cfg := l1pair(32)
	hs, err := SimulateHierarchy(SPECLike(), cfg, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Simulate(SPECLike(), cfg.L1I, cfg.L1D, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hs.L1IMissRate()-flat.I) > 1e-12 || math.Abs(hs.L1DMissRate()-flat.D) > 1e-12 {
		t.Errorf("hierarchy %v/%v vs flat %v/%v", hs.L1IMissRate(), hs.L1DMissRate(), flat.I, flat.D)
	}
	if hs.L2.Accesses != 0 {
		t.Error("disabled L2 should see no accesses")
	}
}

func TestL2SeesOnlyL1Misses(t *testing.T) {
	cfg := l1pair(16)
	cfg.L2 = Config{SizeBytes: 512 * 1024, Ways: 8}
	hs, err := SimulateHierarchy(SPECLike(), cfg, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	l1misses := hs.L1I.Misses + hs.L1D.Misses
	if hs.L2.Accesses != l1misses {
		t.Errorf("L2 accesses %d != L1 misses %d", hs.L2.Accesses, l1misses)
	}
	// A big L2 absorbs most L1 misses on a SPEC-like trace.
	if hs.L2MissRate() > 0.6 {
		t.Errorf("L2 miss rate %v implausibly high", hs.L2MissRate())
	}
}

func TestL2SoftensL1SizeSensitivity(t *testing.T) {
	// The architectural point: adding an L2 shrinks the IPC gap
	// between small and large L1s, which weakens the cache-sizing
	// study's TTM trade-off.
	var m HierarchyCPUModel
	const dataPerInstr = 0.35
	ipcAt := func(l1kb int, l2 bool) float64 {
		cfg := l1pair(l1kb)
		if l2 {
			cfg.L2 = Config{SizeBytes: 1 << 20, Ways: 8}
		}
		hs, err := SimulateHierarchy(SPECLike(), cfg, 300_000)
		if err != nil {
			t.Fatal(err)
		}
		return m.IPC(hs, dataPerInstr)
	}
	gapFlat := ipcAt(64, false) - ipcAt(2, false)
	gapL2 := ipcAt(64, true) - ipcAt(2, true)
	if !(gapL2 < gapFlat) {
		t.Errorf("an L2 should shrink the L1-size IPC gap: flat %v vs L2 %v", gapFlat, gapL2)
	}
	if ipcAt(2, true) <= ipcAt(2, false) {
		t.Error("an L2 should help a small L1")
	}
}

func TestHierarchyCPUModelDefaults(t *testing.T) {
	var m HierarchyCPUModel
	// Perfect caches: base CPI only.
	s := HierarchyStats{L1I: Stats{Accesses: 100}, L1D: Stats{Accesses: 100}}
	if got := m.CPI(s, 0.35); math.Abs(got-DefaultBaseCPI) > 1e-12 {
		t.Errorf("perfect CPI = %v", got)
	}
	// Without an L2, every miss pays the full memory penalty — the
	// flat CPUModel's contract.
	s = HierarchyStats{
		L1I: Stats{Accesses: 100, Misses: 10},
		L1D: Stats{Accesses: 100, Misses: 0},
	}
	want := DefaultBaseCPI + 0.1*DefaultMemoryPenalty
	if got := m.CPI(s, 0.35); math.Abs(got-want) > 1e-12 {
		t.Errorf("no-L2 CPI = %v, want %v", got, want)
	}
	// With an L2, the same misses pay L2 latency plus the L2 miss
	// fraction of the memory penalty.
	s.L2 = Stats{Accesses: 10, Misses: 5}
	want = DefaultBaseCPI + 0.1*(DefaultL2Latency+0.5*DefaultMemoryPenalty)
	if got := m.CPI(s, 0.35); math.Abs(got-want) > 1e-12 {
		t.Errorf("L2 CPI = %v, want %v", got, want)
	}
}
