package demand

import (
	"math"
	"testing"
	"testing/quick"

	"ttmcas/internal/units"
)

func line() Config {
	return Config{Capacity: 10_000, BaseDemand: 8_000, FabLatency: 12, Weeks: 120}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Capacity: -1, BaseDemand: 1},
		{Capacity: 10, BaseDemand: -1},
		{Capacity: 10, BaseDemand: 1, FabLatency: -1},
	}
	for _, c := range bad {
		if _, err := Simulate(c, nil); err == nil {
			t.Errorf("%+v should be rejected", c)
		}
	}
	if _, err := Simulate(line(), []Shock{{StartWeek: 5, EndWeek: 2, Multiplier: 1}}); err == nil {
		t.Error("inverted shock window should error")
	}
	if _, err := Simulate(line(), []Shock{{StartWeek: 0, EndWeek: 2, Multiplier: -1}}); err == nil {
		t.Error("negative multiplier should error")
	}
}

func TestSteadyStateUnderCapacity(t *testing.T) {
	// Demand at 80% of capacity with no shocks: the backlog never
	// forms and the quote stays at the baseline fab latency.
	res, err := Simulate(line(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Weeks {
		if w.Backlog > 1e-9 {
			t.Fatalf("week %d: backlog %v under capacity", w.Week, w.Backlog)
		}
		if math.Abs(float64(w.LeadTime)-12) > 1e-9 {
			t.Fatalf("week %d: quote %v, want 12", w.Week, float64(w.LeadTime))
		}
	}
	if res.ExcessOrders != 0 {
		t.Errorf("no hoarding configured, excess = %v", res.ExcessOrders)
	}
}

func TestShockBuildsAndDrainsBacklog(t *testing.T) {
	// 150% demand for 10 weeks: orders run 2k/week over capacity, so
	// the backlog peaks at 20k (quote 12 + 2 weeks) and drains at
	// 2k/week afterwards; the quote re-enters the 5% band (≤ 12.6 wk,
	// backlog ≤ 6k) seven weeks after the shock ends.
	res, err := Simulate(line(), []Shock{{StartWeek: 10, EndWeek: 20, Multiplier: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PeakBacklog-20_000) > 1 {
		t.Errorf("peak backlog = %v, want 20000", res.PeakBacklog)
	}
	wantPeakQuote := 12 + 20_000.0/10_000
	if math.Abs(float64(res.PeakLeadTime)-wantPeakQuote) > 0.01 {
		t.Errorf("peak quote = %v, want %v", float64(res.PeakLeadTime), wantPeakQuote)
	}
	if res.RecoveryWeek < 24 || res.RecoveryWeek > 30 {
		t.Errorf("recovery week = %d, want ~26", res.RecoveryWeek)
	}
}

func TestHoardingAmplifiesShortage(t *testing.T) {
	// The Fig. 1(c) mechanism: with hoarding on, the same shock yields
	// a higher peak lead time, a later recovery, and positive excess
	// inventory pulled downstream.
	shock := []Shock{{StartWeek: 10, EndWeek: 20, Multiplier: 1.5}}
	plain, err := Simulate(line(), shock)
	if err != nil {
		t.Fatal(err)
	}
	hoard := line()
	hoard.Hoarding = true
	amplified, err := Simulate(hoard, shock)
	if err != nil {
		t.Fatal(err)
	}
	if !(amplified.PeakLeadTime > plain.PeakLeadTime) {
		t.Errorf("hoarding should raise peak lead time: %v vs %v",
			float64(amplified.PeakLeadTime), float64(plain.PeakLeadTime))
	}
	if amplified.RecoveryWeek != -1 && plain.RecoveryWeek != -1 &&
		amplified.RecoveryWeek <= plain.RecoveryWeek {
		t.Errorf("hoarding should delay recovery: %d vs %d", amplified.RecoveryWeek, plain.RecoveryWeek)
	}
	if amplified.ExcessOrders <= 0 {
		t.Error("hoarding should pull excess inventory")
	}
}

func TestHoardingCap(t *testing.T) {
	cfg := line()
	cfg.Hoarding = true
	cfg.MaxHoarding = 1.2
	res, err := Simulate(cfg, []Shock{{StartWeek: 0, EndWeek: 40, Multiplier: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Weeks {
		if w.Orders > w.TrueDemand*1.2+1e-9 {
			t.Fatalf("week %d: orders %v exceed the hoarding cap", w.Week, w.Orders)
		}
	}
}

func TestOverCapacityNeverRecovers(t *testing.T) {
	cfg := line()
	cfg.BaseDemand = 12_000 // structurally over capacity
	res, err := Simulate(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveryWeek != -1 {
		t.Errorf("structural over-demand should never recover, got week %d", res.RecoveryWeek)
	}
	last := res.Weeks[len(res.Weeks)-1]
	if last.Backlog < 100_000 {
		t.Errorf("backlog should grow without bound, got %v", last.Backlog)
	}
}

func TestConservation(t *testing.T) {
	// Property: cumulative production never exceeds capacity·weeks and
	// orders − production = backlog at every step.
	f := func(rawDemand uint16, rawShock uint8) bool {
		cfg := Config{
			Capacity:   10_000,
			BaseDemand: float64(rawDemand % 12_000),
			FabLatency: 12,
			Weeks:      60,
		}
		shock := []Shock{{StartWeek: 5, EndWeek: 15, Multiplier: 1 + float64(rawShock%20)/10}}
		res, err := Simulate(cfg, shock)
		if err != nil {
			return false
		}
		var produced, ordered float64
		for _, w := range res.Weeks {
			produced += w.Produced
			ordered += w.Orders
			if w.Produced > 10_000+1e-9 || w.Backlog < -1e-9 {
				return false
			}
		}
		last := res.Weeks[len(res.Weeks)-1]
		return math.Abs(ordered-produced-last.Backlog) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQueueAtWeekFeedsEq4(t *testing.T) {
	res, err := Simulate(line(), []Shock{{StartWeek: 0, EndWeek: 10, Multiplier: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	q, err := QueueAtWeek(res, 5)
	if err != nil {
		t.Fatal(err)
	}
	if float64(q) != res.Weeks[5].Backlog {
		t.Errorf("queue = %v, backlog = %v", float64(q), res.Weeks[5].Backlog)
	}
	if _, err := QueueAtWeek(res, -1); err == nil {
		t.Error("negative week should error")
	}
	if _, err := QueueAtWeek(res, 10_000); err == nil {
		t.Error("week beyond horizon should error")
	}
	_ = units.Wafers(0)
}

// The new validation rules: hoarding parameters and horizon that the
// recursion was never defined for must be rejected up front.
func TestValidationHoardingAndHorizon(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"negative hoarding gain", Config{Capacity: 10, BaseDemand: 8, HoardingGain: -0.1}},
		{"negative max hoarding", Config{Capacity: 10, BaseDemand: 8, MaxHoarding: -2}},
		{"sub-unity max hoarding", Config{Capacity: 10, BaseDemand: 8, MaxHoarding: 0.5}},
		{"negative horizon", Config{Capacity: 10, BaseDemand: 8, Weeks: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Errorf("%+v accepted", tc.cfg)
			}
		})
	}
	ok := []Config{
		{Capacity: 10, BaseDemand: 8},                   // zero values: defaults
		{Capacity: 10, BaseDemand: 8, MaxHoarding: 1},   // exactly 1 = no over-order
		{Capacity: 10, BaseDemand: 8, MaxHoarding: 1.5}, // explicit cap
		{Capacity: 10, BaseDemand: 0},                   // idle line is fine
	}
	for _, c := range ok {
		if err := c.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", c, err)
		}
	}
}

// GenerateShocks is a deterministic stream: same seed, same shocks —
// across runs and (because it is splitmix64, not math/rand) across Go
// versions. Windows, durations and multipliers must respect the doc.
func TestGenerateShocks(t *testing.T) {
	cases := []struct {
		name          string
		seed          int64
		n, start, end int
	}{
		{"small window", 1, 3, 10, 16},
		{"wide window", 42, 8, 0, 104},
		{"tight window", 7, 5, 20, 22},
		{"single", -99, 1, 4, 40},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := GenerateShocks(tc.seed, tc.n, tc.start, tc.end)
			b := GenerateShocks(tc.seed, tc.n, tc.start, tc.end)
			if len(a) != tc.n {
				t.Fatalf("got %d shocks, want %d", len(a), tc.n)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("shock %d not reproducible: %+v vs %+v", i, a[i], b[i])
				}
			}
			for i, s := range a {
				if s.StartWeek < tc.start || s.EndWeek > tc.end {
					t.Errorf("shock %d window [%d, %d) escapes [%d, %d)", i, s.StartWeek, s.EndWeek, tc.start, tc.end)
				}
				if dur := s.EndWeek - s.StartWeek; dur < 1 || dur > 12 {
					t.Errorf("shock %d duration %d outside [1, 12]", i, dur)
				}
				if s.Multiplier < 1.1 || s.Multiplier > 1.8 {
					t.Errorf("shock %d multiplier %v outside [1.1, 1.8]", i, s.Multiplier)
				}
				if i > 0 && a[i].StartWeek < a[i-1].StartWeek {
					t.Errorf("shocks not sorted by start: %d before %d", a[i].StartWeek, a[i-1].StartWeek)
				}
			}
			// Generated shocks must be directly consumable by Simulate.
			if _, err := Simulate(line(), a); err != nil {
				t.Errorf("Simulate rejected generated shocks: %v", err)
			}
		})
	}
	if got := GenerateShocks(1, 0, 0, 10); got != nil {
		t.Errorf("n=0 returned %v, want nil", got)
	}
	if got := GenerateShocks(1, 3, 10, 10); got != nil {
		t.Errorf("empty window returned %v, want nil", got)
	}
	// Different seeds should explore the window differently.
	a := GenerateShocks(1, 6, 0, 104)
	b := GenerateShocks(2, 6, 0, 104)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 1 and 2 generated identical shock sets")
	}
}
