// Package demand models how foundry queues form. The core TTM model
// takes the queue (Eq. 4's N_W,ahead) as an exogenous quote; this
// package generates it endogenously: customers place wafer orders
// against a line with finite capacity, the backlog sets the quoted
// lead time, and — the mechanism of the paper's Fig. 1(c) — customers
// who see long lead times over-order ("companies have hoarded chips,
// which has exacerbated shortages"), feeding the backlog further. The
// resulting bullwhip dynamics show why a modest demand shock can turn
// into a multi-quarter shortage.
package demand

import (
	"errors"
	"fmt"
	"sort"

	"ttmcas/internal/units"
)

// Config parameterizes a weekly backlog simulation of one production
// line.
type Config struct {
	// Capacity is the line's wafer production rate.
	Capacity units.WafersPerWeek
	// BaseDemand is the customers' true weekly wafer need under normal
	// conditions. Utilization = BaseDemand/Capacity.
	BaseDemand float64
	// FabLatency is added to the backlog-drain time when quoting lead
	// times.
	FabLatency units.Weeks
	// Hoarding enables the over-ordering feedback: when the quoted
	// lead time exceeds NormalLeadTime, customers scale their orders
	// by 1 + HoardingGain·(quote − normal), capped at MaxHoarding.
	Hoarding bool
	// HoardingGain is the over-order fraction per week of excess lead
	// time; zero means 0.15.
	HoardingGain float64
	// MaxHoarding caps the order multiplier; zero means 2.0.
	MaxHoarding float64
	// Weeks is the horizon; zero means 104 (two years).
	Weeks int
}

func (c Config) withDefaults() Config {
	if c.HoardingGain == 0 {
		c.HoardingGain = 0.15
	}
	if c.MaxHoarding == 0 {
		c.MaxHoarding = 2.0
	}
	if c.Weeks == 0 {
		c.Weeks = 104
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return errors.New("demand: capacity must be positive")
	}
	if c.BaseDemand < 0 {
		return errors.New("demand: negative base demand")
	}
	if c.FabLatency < 0 {
		return errors.New("demand: negative fab latency")
	}
	// A negative gain would scale orders below true demand — negative
	// "demand" the backlog recursion was never defined for — and a
	// multiplier cap below 1 silently clips orders under need.
	if c.HoardingGain < 0 {
		return errors.New("demand: negative hoarding gain")
	}
	if c.MaxHoarding < 0 || (c.MaxHoarding > 0 && c.MaxHoarding < 1) {
		return errors.New("demand: max hoarding must be at least 1 (or 0 for the default)")
	}
	if c.Weeks < 0 {
		return errors.New("demand: negative horizon")
	}
	return nil
}

// Shock scales true demand for a window of weeks (a consumer-electronics
// surge, an automotive re-order wave).
type Shock struct {
	// StartWeek and EndWeek bound the shock, [start, end).
	StartWeek, EndWeek int
	// Multiplier scales BaseDemand during the window.
	Multiplier float64
}

// WeekState is one week of the simulation.
type WeekState struct {
	Week int
	// TrueDemand is what customers actually need this week.
	TrueDemand float64
	// Orders is what they placed (≥ TrueDemand under hoarding).
	Orders float64
	// Backlog is the end-of-week outstanding wafer count.
	Backlog float64
	// LeadTime is the end-of-week quote: backlog/capacity + L_fab.
	LeadTime units.Weeks
	// Produced is the wafers the line completed this week.
	Produced float64
}

// Result is a full simulation run.
type Result struct {
	Weeks []WeekState
	// PeakLeadTime is the worst quote over the horizon.
	PeakLeadTime units.Weeks
	// PeakBacklog is the worst backlog.
	PeakBacklog float64
	// RecoveryWeek is the first week after the peak when the quote
	// returns within 5% of the baseline quote, or -1 if it never does.
	RecoveryWeek int
	// ExcessOrders is the cumulative over-ordering (orders − true
	// demand): inventory hoarded downstream.
	ExcessOrders float64
}

// Simulate runs the weekly backlog recursion.
func Simulate(cfg Config, shocks []Shock) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	cfg = cfg.withDefaults()
	for _, s := range shocks {
		if s.StartWeek < 0 || s.EndWeek < s.StartWeek {
			return Result{}, fmt.Errorf("demand: bad shock window [%d, %d)", s.StartWeek, s.EndWeek)
		}
		if s.Multiplier < 0 {
			return Result{}, errors.New("demand: negative shock multiplier")
		}
	}

	cap := float64(cfg.Capacity)
	baselineQuote := units.Weeks(float64(cfg.FabLatency))
	res := Result{RecoveryWeek: -1}
	backlog := 0.0
	peakWeek := 0
	for w := 0; w < cfg.Weeks; w++ {
		mult := 1.0
		for _, s := range shocks {
			if w >= s.StartWeek && w < s.EndWeek {
				mult *= s.Multiplier
			}
		}
		trueDemand := cfg.BaseDemand * mult

		// Customers see last week's quote when ordering.
		quote := units.Weeks(backlog/cap) + cfg.FabLatency
		orders := trueDemand
		if cfg.Hoarding && quote > baselineQuote {
			f := 1 + cfg.HoardingGain*float64(quote-baselineQuote)
			if f > cfg.MaxHoarding {
				f = cfg.MaxHoarding
			}
			orders = trueDemand * f
		}

		backlog += orders
		produced := cap
		if produced > backlog {
			produced = backlog
		}
		backlog -= produced

		st := WeekState{
			Week: w, TrueDemand: trueDemand, Orders: orders,
			Backlog: backlog, Produced: produced,
			LeadTime: units.Weeks(backlog/cap) + cfg.FabLatency,
		}
		res.Weeks = append(res.Weeks, st)
		res.ExcessOrders += orders - trueDemand
		if st.LeadTime > res.PeakLeadTime {
			res.PeakLeadTime = st.LeadTime
			peakWeek = w
		}
		if st.Backlog > res.PeakBacklog {
			res.PeakBacklog = st.Backlog
		}
	}
	// Recovery: first post-peak week whose quote is within 5% of the
	// baseline.
	for w := peakWeek + 1; w < len(res.Weeks); w++ {
		if float64(res.Weeks[w].LeadTime) <= float64(baselineQuote)*1.05 {
			res.RecoveryWeek = w
			break
		}
	}
	return res, nil
}

// QueueAtWeek converts a simulated week into the Eq. 4 queue quote the
// TTM model consumes: the backlog is exactly N_W,ahead for a customer
// ordering that week.
func QueueAtWeek(res Result, week int) (units.Wafers, error) {
	if week < 0 || week >= len(res.Weeks) {
		return 0, fmt.Errorf("demand: week %d outside horizon", week)
	}
	return units.Wafers(res.Weeks[week].Backlog), nil
}

// GenerateShocks draws n deterministic demand shocks inside the window
// [startWeek, endWeek): starts uniform over the window, durations of
// 2 to 12 weeks (clipped to the window), multipliers in [1.1, 1.8].
// The same seed always yields the same shocks — the generator is a
// splitmix64 stream, not math/rand — so scenario specs that reference
// a seed reproduce exactly across runs, machines and Go versions.
// Shocks may overlap; Simulate composes overlaps multiplicatively.
func GenerateShocks(seed int64, n, startWeek, endWeek int) []Shock {
	if n <= 0 || endWeek <= startWeek {
		return nil
	}
	window := endWeek - startWeek
	state := uint64(seed) ^ 0x6a09e667f3bcc908
	next := func() float64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / (1 << 53)
	}
	out := make([]Shock, 0, n)
	for i := 0; i < n; i++ {
		maxDur := 12
		if maxDur > window {
			maxDur = window
		}
		dur := 2
		if maxDur > 2 {
			dur = 2 + int(next()*float64(maxDur-1))
			if dur > maxDur {
				dur = maxDur
			}
		}
		start := startWeek + int(next()*float64(window-dur+1))
		if start+dur > endWeek {
			start = endWeek - dur
		}
		out = append(out, Shock{
			StartWeek:  start,
			EndWeek:    start + dur,
			Multiplier: 1.1 + 0.7*next(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].StartWeek < out[j].StartWeek })
	return out
}
