package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ttmcas/internal/resilience"
)

// ForwardHeader is the single-hop guard: a request carrying it is
// already a peer-to-peer forward and must be served locally no matter
// what the receiver's ring says, so transient ring disagreements can
// never bounce a request between nodes.
const ForwardHeader = "X-Ttmcas-Forward"

// maxForwardBody caps how much of a peer's response a forward reads.
const maxForwardBody = 16 << 20

// State is a peer's position in the health state machine.
type State int

const (
	// StateAlive peers own ring segments and receive forwards.
	StateAlive State = iota
	// StateSuspect peers have missed probes but keep their ring
	// segments — a blip should not reshuffle ownership.
	StateSuspect
	// StateDead peers are evicted from the ring; their keys rebalance
	// to the survivors until a probe succeeds again.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	default:
		return "dead"
	}
}

// Health is the JSON body of /healthz — the gossip payload. A bare 200
// is not enough for membership: the node ID catches misrouted probes
// (two configs pointing at the same process), and the ring epoch lets
// operators spot nodes whose view of membership has diverged.
type Health struct {
	Status    string  `json:"status"`
	NodeID    string  `json:"node_id"`
	UptimeS   float64 `json:"uptime_s"`
	RingEpoch uint64  `json:"ring_epoch"`
}

// Options parameterize a Cluster.
type Options struct {
	// SelfID names this node in health responses and status documents.
	SelfID string
	// SelfURL is this node's advertised base URL ("http://host:port");
	// it is the node's ring identity.
	SelfURL string
	// Peers are the other members' base URLs. Peers start alive and in
	// the ring — optimistic membership converges instantly on a healthy
	// cluster and the probe loop demotes the rest.
	Peers []string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// Redirect disables server-side forwarding: ownership misses should
	// be answered with 307 redirects to the owner instead.
	Redirect bool
	// ProbeInterval is the per-peer health-probe period (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default: ProbeInterval, capped at
	// 2s).
	ProbeTimeout time.Duration
	// SuspectAfter is the consecutive probe-failure count that marks a
	// peer suspect (default 2); EvictAfter the count that marks it dead
	// and evicts it from the ring (default 3).
	SuspectAfter int
	EvictAfter   int
	// Client issues forwards (default: a pooled transport).
	Client *http.Client
	// ProbeClient issues health probes. It defaults to a client sharing
	// Client's transport with an explicit Timeout of ProbeTimeout, so a
	// peer that accepts the connection and then hangs forever cannot
	// wedge a prober regardless of how the forward client is tuned.
	ProbeClient *http.Client
	// Breaker parameterizes the per-peer circuit breakers (Name and
	// OnTransition are managed by the cluster). The zero value selects
	// the resilience defaults.
	Breaker resilience.BreakerConfig
	// Retry parameterizes the forward retry budget and backoff. The
	// zero value selects the resilience defaults.
	Retry resilience.RetryPolicy
	// RetrySeed fixes the backoff jitter stream (default 1).
	RetrySeed int64
	// Logger receives membership transitions (default log.Default()).
	Logger *log.Logger
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval
		if o.ProbeTimeout > 2*time.Second {
			o.ProbeTimeout = 2 * time.Second
		}
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2
	}
	if o.EvictAfter <= o.SuspectAfter {
		o.EvictAfter = o.SuspectAfter + 1
	}
	if o.Client == nil {
		o.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
			// Forwards carry their own request contexts; this bounds
			// probes and stray calls without one.
			Timeout: 0,
		}
	}
	if o.ProbeClient == nil {
		o.ProbeClient = &http.Client{Transport: o.Client.Transport, Timeout: o.ProbeTimeout}
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// peer is the tracked state of one remote member.
type peer struct {
	url         string
	id          string // learned from its /healthz
	state       State
	failures    int
	lastProbe   time.Time
	lastOK      time.Time
	lastLatency time.Duration
	lastEpoch   uint64
	// br is the peer's circuit breaker, fed by both forwards and
	// gossip probes; an open breaker marks the peer suspect and
	// short-circuits forwards before they burn a deadline.
	br *resilience.Breaker
}

// Cluster tracks membership and routes keys. Lookups read an immutable
// ring snapshot through an atomic pointer, so the request hot path
// takes no locks.
type Cluster struct {
	opts Options
	ring atomic.Pointer[Ring]
	// epoch counts ring rebuilds; it starts at 1 so a zero epoch
	// unambiguously means "not clustered".
	epoch atomic.Uint64

	mu    sync.Mutex
	peers map[string]*peer // by URL

	// retrier is the shared forward retry budget (per request class).
	retrier *resilience.Retrier

	local         atomic.Uint64
	forwarded     atomic.Uint64
	forwardErrors atomic.Uint64
	redirected    atomic.Uint64
	probeFailures atomic.Uint64

	breakerShort       atomic.Uint64 // forwards short-circuited by an open breaker
	breakerTransitions atomic.Uint64
	breakerOpens       atomic.Uint64

	latMu  sync.Mutex
	latCnt uint64
	latSum time.Duration
	latMax time.Duration

	done chan struct{}
	wg   sync.WaitGroup
}

// New builds the cluster and starts one probe goroutine per peer.
// Callers must Close it.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	c := &Cluster{
		opts:  opts,
		peers: make(map[string]*peer, len(opts.Peers)),
		done:  make(chan struct{}),
	}
	c.retrier = resilience.NewRetrier(opts.Retry, opts.RetrySeed)
	for _, u := range opts.Peers {
		if u == opts.SelfURL || u == "" {
			continue
		}
		if _, dup := c.peers[u]; dup {
			continue
		}
		bcfg := opts.Breaker
		bcfg.Name = u
		bcfg.OnTransition = c.onBreakerTransition
		c.peers[u] = &peer{url: u, state: StateAlive, br: resilience.NewBreaker(bcfg)}
	}
	c.rebuildLocked() // peers map is not yet shared; no lock needed, but rebuild wants it
	for u := range c.peers {
		c.wg.Add(1)
		go c.probeLoop(u)
	}
	return c
}

// Close stops the probe loops and waits for them.
func (c *Cluster) Close() {
	select {
	case <-c.done:
		return
	default:
	}
	close(c.done)
	c.wg.Wait()
}

// SelfID returns the node's configured identity.
func (c *Cluster) SelfID() string { return c.opts.SelfID }

// SelfURL returns the node's advertised base URL.
func (c *Cluster) SelfURL() string { return c.opts.SelfURL }

// Epoch returns the ring epoch: 1 at startup, +1 per membership change.
func (c *Cluster) Epoch() uint64 { return c.epoch.Load() }

// Forwarding reports whether ownership misses are forwarded
// server-side (true) or should be redirected to the owner (false).
func (c *Cluster) Forwarding() bool { return !c.opts.Redirect }

// Ring returns the current ring snapshot.
func (c *Cluster) Ring() *Ring { return c.ring.Load() }

// Owner maps key to its owning member. self is true when this node
// owns the key (or the ring is somehow empty — then serving locally is
// the only correct fallback).
func (c *Cluster) Owner(key string) (url string, self bool) {
	owner := c.ring.Load().Owner(key)
	if owner == "" || owner == c.opts.SelfURL {
		return c.opts.SelfURL, true
	}
	return owner, false
}

// PeerURLs lists peer base URLs; with aliveOnly, peers currently
// believed dead are skipped. Alive and suspect peers sort first by
// state so scatter lookups try the healthiest candidates first.
func (c *Cluster) PeerURLs(aliveOnly bool) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.peers))
	for _, st := range []State{StateAlive, StateSuspect, StateDead} {
		if aliveOnly && st == StateDead {
			continue
		}
		for u, p := range c.peers {
			if p.state == st {
				out = append(out, u)
			}
		}
	}
	return out
}

// NoteLocal counts an ownership decision that stayed local.
func (c *Cluster) NoteLocal() { c.local.Add(1) }

// NoteRedirect counts an ownership miss answered with a redirect.
func (c *Cluster) NoteRedirect() { c.redirected.Add(1) }

// ForwardResult is a peer's answer to a forwarded request.
type ForwardResult struct {
	Status     int
	Body       []byte
	XCache     string
	RetryAfter string
}

// ForwardOptions select the retry behavior of one forwarded request.
type ForwardOptions struct {
	// Retry opts the request into the retry budget. Only set it for
	// idempotent requests: a netfault-style connection reset delivers
	// the request and destroys the response, so a retried
	// non-idempotent request (a job submit) could execute twice.
	Retry bool
	// Class names the retry-budget bucket the request draws from
	// ("eval", "job", ...; default "forward"), so one misbehaving
	// request class cannot drain another's budget.
	Class string
}

// Forward sends one request to a peer with the single-hop guard header
// set and returns its response, with no retries: exactly one attempt,
// gated by the peer's circuit breaker. Idempotent callers that want
// the retry budget use ForwardOpts.
func (c *Cluster) Forward(ctx context.Context, peerURL, method, path string, body []byte) (ForwardResult, error) {
	return c.ForwardOpts(ctx, peerURL, method, path, body, ForwardOptions{})
}

// ForwardOpts forwards one request through the peer's circuit breaker
// and, when opts.Retry is set, the retry budget: transport failures
// (and 503s carrying Retry-After) are retried with full-jitter
// exponential backoff while the budget and the caller's deadline
// allow. An open breaker fails immediately with ErrBreakerOpen so the
// caller can fail over — next alive peer or local compute — without
// burning its deadline on a peer known to be unreachable. Every
// attempt's outcome feeds the breaker; a transport-level failure no
// longer bumps the gossip failure counter directly (suspicion feeds
// on breaker state instead, so one slow call cannot flap membership).
func (c *Cluster) ForwardOpts(ctx context.Context, peerURL, method, path string, body []byte, opts ForwardOptions) (ForwardResult, error) {
	br := c.breakerFor(peerURL)
	class := opts.Class
	if class == "" {
		class = "forward"
	}
	c.retrier.Attempt(class)
	for attempt := 1; ; attempt++ {
		if !br.Allow() {
			c.breakerShort.Add(1)
			return ForwardResult{}, fmt.Errorf("cluster: peer %s: %w", peerURL, resilience.ErrBreakerOpen)
		}
		res, err := c.forwardOnce(ctx, peerURL, method, path, body)
		br.Record(err == nil)
		var retryAfter time.Duration
		switch {
		case err == nil && (!opts.Retry || res.Status != http.StatusServiceUnavailable || res.RetryAfter == ""):
			return res, nil
		case err == nil:
			// A shed with explicit Retry-After advice: retryable for
			// idempotent requests, honoring the server's delay.
			retryAfter = parseRetryAfter(res.RetryAfter)
		case !opts.Retry:
			return ForwardResult{}, err
		}
		if ctx.Err() != nil || !c.retrier.AllowRetry(class, attempt) {
			if err != nil {
				return ForwardResult{}, err
			}
			return res, nil // relay the 503 when the budget is dry
		}
		timer := time.NewTimer(c.retrier.Backoff(attempt, retryAfter))
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			if err != nil {
				return ForwardResult{}, err
			}
			return res, nil
		}
	}
}

// forwardOnce performs a single forward attempt.
func (c *Cluster) forwardOnce(ctx context.Context, peerURL, method, path string, body []byte) (ForwardResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, peerURL+path, rd)
	if err != nil {
		return ForwardResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(ForwardHeader, c.opts.SelfID)
	began := time.Now()
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		c.forwardErrors.Add(1)
		return ForwardResult{}, fmt.Errorf("cluster: forwarding to %s: %w", peerURL, err)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxForwardBody))
	resp.Body.Close()
	if err != nil {
		c.forwardErrors.Add(1)
		return ForwardResult{}, fmt.Errorf("cluster: reading forwarded response from %s: %w", peerURL, err)
	}
	d := time.Since(began)
	c.forwarded.Add(1)
	c.latMu.Lock()
	c.latCnt++
	c.latSum += d
	if d > c.latMax {
		c.latMax = d
	}
	c.latMu.Unlock()
	return ForwardResult{
		Status:     resp.StatusCode,
		Body:       b,
		XCache:     resp.Header.Get("X-Cache"),
		RetryAfter: resp.Header.Get("Retry-After"),
	}, nil
}

// parseRetryAfter reads a Retry-After header value as delay seconds
// (the only form this stack emits); unparseable values mean no floor.
func parseRetryAfter(s string) time.Duration {
	if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	return 0
}

// breakerFor returns the peer's circuit breaker; nil (which is fully
// permissive) for URLs the cluster does not track.
func (c *Cluster) breakerFor(url string) *resilience.Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.peers[url]; ok {
		return p.br
	}
	return nil
}

// BreakerState reports the named peer's breaker state (closed for
// unknown peers).
func (c *Cluster) BreakerState(url string) resilience.BreakerState {
	return c.breakerFor(url).State()
}

// onBreakerTransition is every peer breaker's transition hook: it
// keeps the aggregate counters, feeds gossip suspicion (a breaker
// opening marks its peer suspect without waiting for probe failures
// to accumulate), and chains to any caller-supplied hook.
func (c *Cluster) onBreakerTransition(url string, from, to resilience.BreakerState) {
	c.breakerTransitions.Add(1)
	if to == resilience.BreakerOpen {
		c.breakerOpens.Add(1)
		c.markSuspect(url)
	}
	c.opts.Logger.Printf("cluster: peer %s breaker %s -> %s", url, from, to)
	if c.opts.Breaker.OnTransition != nil {
		c.opts.Breaker.OnTransition(url, from, to)
	}
}

// markSuspect demotes an alive peer to suspect (keeping its ring
// segments — suspicion must not reshuffle ownership).
func (c *Cluster) markSuspect(url string) {
	c.mu.Lock()
	if p, ok := c.peers[url]; ok && p.state == StateAlive {
		p.state = StateSuspect
	}
	c.mu.Unlock()
}

// ---- membership ----------------------------------------------------

// probeLoop probes one peer's /healthz forever at the configured
// interval. One goroutine per peer keeps probes from overlapping and
// from serializing behind a slow sibling.
func (c *Cluster) probeLoop(url string) {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
			c.probe(url)
		}
	}
}

func (c *Cluster) probe(url string) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	began := time.Now()
	h, err := c.fetchHealth(ctx, url)
	// Probes bypass the breaker's admission gate (they ARE the
	// recovery detector) but always feed it: a probe success observed
	// while the breaker is open is what walks it back toward closed.
	c.breakerFor(url).Record(err == nil)
	if err != nil {
		c.probeFailures.Add(1)
		c.noteFailure(url)
		return
	}
	c.noteSuccess(url, h, time.Since(began))
}

func (c *Cluster) fetchHealth(ctx context.Context, url string) (Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return Health{}, err
	}
	resp, err := c.opts.ProbeClient.Do(req)
	if err != nil {
		return Health{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return Health{}, fmt.Errorf("cluster: %s/healthz: status %d", url, resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return Health{}, fmt.Errorf("cluster: %s/healthz: %w", url, err)
	}
	return h, nil
}

// noteFailure advances one peer through the suspicion state machine.
// Only the probe loop calls it: forward failures feed the peer's
// circuit breaker instead, whose open transition marks the peer
// suspect (fast detection on the hot path) while eviction — the
// expensive, ring-reshuffling verdict — still requires EvictAfter
// consecutive probe failures.
func (c *Cluster) noteFailure(url string) {
	c.mu.Lock()
	p, ok := c.peers[url]
	if !ok {
		c.mu.Unlock()
		return
	}
	p.failures++
	p.lastProbe = time.Now()
	failures := p.failures
	var transition string
	switch {
	case p.state != StateDead && p.failures >= c.opts.EvictAfter:
		p.state = StateDead
		transition = "dead"
		c.rebuildLocked()
	case p.state == StateAlive && p.failures >= c.opts.SuspectAfter:
		p.state = StateSuspect
		transition = "suspect"
	}
	c.mu.Unlock()
	if transition != "" {
		c.opts.Logger.Printf("cluster: peer %s -> %s after %d failures (ring epoch %d)",
			url, transition, failures, c.epoch.Load())
	}
}

// noteSuccess resets a peer's probe-failure count and records what its
// health body gossiped back. Promotion to alive (and ring rejoin for
// an evicted peer) is gated on the peer's circuit breaker being
// closed: a peer whose probes answer but whose forwards still fail —
// or one healing from a partition — stays suspect until CloseAfter
// consecutive successes close the breaker, so traffic returns to it
// deliberately rather than on the first good packet.
func (c *Cluster) noteSuccess(url string, h Health, latency time.Duration) {
	c.mu.Lock()
	p, ok := c.peers[url]
	if !ok {
		c.mu.Unlock()
		return
	}
	if p.id != "" && h.NodeID != "" && p.id != h.NodeID {
		c.opts.Logger.Printf("cluster: peer %s changed identity %q -> %q (restart or misconfiguration)",
			url, p.id, h.NodeID)
	}
	p.id = h.NodeID
	p.failures = 0
	p.lastProbe = time.Now()
	p.lastOK = p.lastProbe
	p.lastLatency = latency
	p.lastEpoch = h.RingEpoch
	rejoined := false
	if p.br.State() == resilience.BreakerClosed {
		rejoined = p.state == StateDead
		p.state = StateAlive
		if rejoined {
			c.rebuildLocked()
		}
	}
	c.mu.Unlock()
	if rejoined {
		c.opts.Logger.Printf("cluster: peer %s rejoined (ring epoch %d)", url, c.epoch.Load())
	}
}

// rebuildLocked recomputes the ring from the live member set (self plus
// every non-dead peer) and bumps the epoch. Callers hold c.mu (or, in
// New, exclusive ownership of the struct).
func (c *Cluster) rebuildLocked() {
	members := make([]string, 0, len(c.peers)+1)
	members = append(members, c.opts.SelfURL)
	for u, p := range c.peers {
		if p.state != StateDead {
			members = append(members, u)
		}
	}
	c.ring.Store(NewRing(c.opts.VNodes, members))
	c.epoch.Add(1)
}

// ---- observability -------------------------------------------------

// PeerBreaker is one peer's breaker state in a Stats snapshot, for
// the per-peer ttmcas_cluster_breaker_state gauge.
type PeerBreaker struct {
	URL   string
	State resilience.BreakerState
}

// Stats is the point-in-time aggregate surfaced in /metrics.
type Stats struct {
	RingNodes     int
	Epoch         uint64
	Alive         int
	Suspect       int
	Dead          int
	Local         uint64
	Forwarded     uint64
	ForwardErrors uint64
	Redirected    uint64
	ProbeFailures uint64
	ForwardCount  uint64
	ForwardSum    time.Duration
	ForwardMax    time.Duration

	Retries              uint64 // forward retries admitted by the budget
	RetriesDenied        uint64 // retries refused (budget dry or attempts exhausted)
	BreakerShortCircuits uint64 // forwards refused outright by an open breaker
	BreakerTransitions   uint64
	BreakerOpens         uint64
	Breakers             []PeerBreaker // sorted by URL
}

// Stats snapshots the counters and membership tallies.
func (c *Cluster) Stats() Stats {
	rs := c.retrier.Stats()
	st := Stats{
		RingNodes:            c.ring.Load().Len(),
		Epoch:                c.epoch.Load(),
		Alive:                1, // self
		Local:                c.local.Load(),
		Forwarded:            c.forwarded.Load(),
		ForwardErrors:        c.forwardErrors.Load(),
		Redirected:           c.redirected.Load(),
		ProbeFailures:        c.probeFailures.Load(),
		Retries:              rs.Retries,
		RetriesDenied:        rs.BudgetDenied,
		BreakerShortCircuits: c.breakerShort.Load(),
		BreakerTransitions:   c.breakerTransitions.Load(),
		BreakerOpens:         c.breakerOpens.Load(),
	}
	c.mu.Lock()
	for u, p := range c.peers {
		switch p.state {
		case StateAlive:
			st.Alive++
		case StateSuspect:
			st.Suspect++
		default:
			st.Dead++
		}
		st.Breakers = append(st.Breakers, PeerBreaker{URL: u, State: p.br.State()})
	}
	c.mu.Unlock()
	sort.Slice(st.Breakers, func(i, j int) bool { return st.Breakers[i].URL < st.Breakers[j].URL })
	c.latMu.Lock()
	st.ForwardCount = c.latCnt
	st.ForwardSum = c.latSum
	st.ForwardMax = c.latMax
	c.latMu.Unlock()
	return st
}

// PeerStatus is one peer's row in the /v1/cluster document.
type PeerStatus struct {
	ID          string  `json:"id,omitempty"`
	URL         string  `json:"url"`
	State       string  `json:"state"`
	Breaker     string  `json:"breaker,omitempty"`
	Failures    int     `json:"failures,omitempty"`
	LatencyMS   float64 `json:"latency_ms,omitempty"`
	LastOKAgoS  float64 `json:"last_ok_ago_s,omitempty"`
	ReportEpoch uint64  `json:"report_epoch,omitempty"`
}

// Status is the /v1/cluster response body.
type Status struct {
	Enabled    bool         `json:"enabled"`
	Self       PeerStatus   `json:"self"`
	Epoch      uint64       `json:"epoch"`
	VNodes     int          `json:"vnodes"`
	Forwarding bool         `json:"forwarding"`
	RingNodes  []string     `json:"ring_nodes"`
	Peers      []PeerStatus `json:"peers"`
	Local      uint64       `json:"local"`
	Forwarded  uint64       `json:"forwarded"`
	Redirected uint64       `json:"redirected"`
}

// Status builds the full cluster-state document.
func (c *Cluster) Status() Status {
	now := time.Now()
	st := Status{
		Enabled:    true,
		Self:       PeerStatus{ID: c.opts.SelfID, URL: c.opts.SelfURL, State: StateAlive.String()},
		Epoch:      c.epoch.Load(),
		VNodes:     c.opts.VNodes,
		Forwarding: c.Forwarding(),
		RingNodes:  c.ring.Load().Members(),
		Local:      c.local.Load(),
		Forwarded:  c.forwarded.Load(),
		Redirected: c.redirected.Load(),
	}
	c.mu.Lock()
	for _, p := range c.peers {
		ps := PeerStatus{
			ID:          p.id,
			URL:         p.url,
			State:       p.state.String(),
			Breaker:     p.br.State().String(),
			Failures:    p.failures,
			ReportEpoch: p.lastEpoch,
		}
		if !p.lastOK.IsZero() {
			ps.LatencyMS = float64(p.lastLatency.Nanoseconds()) / 1e6
			ps.LastOKAgoS = now.Sub(p.lastOK).Seconds()
		}
		st.Peers = append(st.Peers, ps)
	}
	c.mu.Unlock()
	sort.Slice(st.Peers, func(i, j int) bool { return st.Peers[i].URL < st.Peers[j].URL })
	return st
}
