package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ttmcas/internal/resilience"
)

// TestHangingHealthzIsSuspected is the regression test for the probe
// client's explicit timeout: a peer that accepts /healthz connections
// and then never answers must be suspected (and evicted) within the
// configured window, not wedge the prober forever.
func TestHangingHealthzIsSuspected(t *testing.T) {
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold the request open until the test ends
	}))
	defer hang.Close()
	defer close(release)

	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         []string{hang.URL},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  20 * time.Millisecond,
		SuspectAfter:  2,
		EvictAfter:    3,
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	if to := c.opts.ProbeClient.Timeout; to != 20*time.Millisecond {
		t.Fatalf("probe client timeout = %v, want the configured ProbeTimeout", to)
	}
	waitFor(t, "hanging peer dead", func() bool {
		st := c.Stats()
		return st.Dead == 1 && st.RingNodes == 1
	})
}

// TestBreakerShortCircuitsForward: enough forward failures trip the
// peer's breaker, after which Forward fails instantly with
// ErrBreakerOpen instead of re-dialing a dead peer — and the breaker
// opening marks the peer suspect without any probe failures.
func TestBreakerShortCircuitsForward(t *testing.T) {
	p := newFakePeer(t, "n1")
	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         []string{p.ts.URL},
		ProbeInterval: time.Hour, // no probes: forwards alone drive the breaker
		SuspectAfter:  2,
		EvictAfter:    3,
		Breaker:       resilience.BreakerConfig{ConsecutiveFailures: 3, OpenFor: time.Hour},
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	url := p.ts.URL
	p.ts.Close() // kill the listener: transport errors, not 503s
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Forward(ctx, url, http.MethodGet, "/v1/nodes", nil); err == nil {
			t.Fatalf("forward %d to a closed listener succeeded", i)
		} else if errors.Is(err, resilience.ErrBreakerOpen) {
			t.Fatalf("forward %d short-circuited before the breaker tripped: %v", i, err)
		}
	}
	if got := c.BreakerState(url); got != resilience.BreakerOpen {
		t.Fatalf("breaker state after 3 failures = %v, want open", got)
	}
	if _, err := c.Forward(ctx, url, http.MethodGet, "/v1/nodes", nil); !errors.Is(err, resilience.ErrBreakerOpen) {
		t.Fatalf("tripped breaker forward err = %v, want ErrBreakerOpen", err)
	}
	st := c.Stats()
	if st.BreakerShortCircuits != 1 {
		t.Fatalf("BreakerShortCircuits = %d, want 1", st.BreakerShortCircuits)
	}
	if st.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", st.BreakerOpens)
	}
	if st.Suspect != 1 {
		t.Fatalf("Suspect = %d, want 1 (breaker open must mark the peer suspect)", st.Suspect)
	}
	if st.RingNodes != 2 {
		t.Fatalf("RingNodes = %d, want 2 (suspicion must not evict)", st.RingNodes)
	}
	if len(st.Breakers) != 1 || st.Breakers[0].State != resilience.BreakerOpen {
		t.Fatalf("Stats.Breakers = %+v, want one open entry", st.Breakers)
	}
	doc := c.Status()
	if len(doc.Peers) != 1 || doc.Peers[0].Breaker != "open" {
		t.Fatalf("/v1/cluster peers = %+v, want breaker \"open\"", doc.Peers)
	}
}

// TestForwardRetriesTransportError: with ForwardOptions.Retry a
// transient transport failure is retried within the budget and the
// caller sees success; the retry is counted.
func TestForwardRetriesTransportError(t *testing.T) {
	var calls atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Destroy the first response mid-flight: transport error.
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Error("response writer cannot hijack")
				return
			}
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "true"})
	}))
	defer flaky.Close()

	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         []string{flaky.URL},
		ProbeInterval: time.Hour,
		Retry:         resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	res, err := c.ForwardOpts(context.Background(), flaky.URL, http.MethodGet, "/x", nil,
		ForwardOptions{Retry: true, Class: "eval"})
	if err != nil {
		t.Fatalf("retried forward failed: %v", err)
	}
	if res.Status != http.StatusOK {
		t.Fatalf("status = %d, want 200", res.Status)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2 (one failure, one retry)", got)
	}
	if st := c.Stats(); st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
}

// TestForwardNoRetryWithoutOptIn: the plain Forward path — used for
// non-idempotent requests like job submits — must stay single-attempt.
func TestForwardNoRetryWithoutOptIn(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		hj := w.(http.Hijacker)
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer srv.Close()

	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         []string{srv.URL},
		ProbeInterval: time.Hour,
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	if _, err := c.Forward(context.Background(), srv.URL, http.MethodPost, "/v1/jobs", []byte("{}")); err == nil {
		t.Fatal("forward to a resetting peer succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (no retry without opt-in)", got)
	}
}

// TestForwardRetriesShedWithRetryAfter: a 503 carrying Retry-After is
// retried (idempotent classes only), honoring the advice as a floor.
func TestForwardRetriesShedWithRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"shed"}`, http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"ok": "true"})
	}))
	defer srv.Close()

	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         []string{srv.URL},
		ProbeInterval: time.Hour,
		Retry:         resilience.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond},
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	res, err := c.ForwardOpts(context.Background(), srv.URL, http.MethodGet, "/x", nil,
		ForwardOptions{Retry: true})
	if err != nil {
		t.Fatalf("forward failed: %v", err)
	}
	if res.Status != http.StatusOK || calls.Load() != 2 {
		t.Fatalf("status %d after %d calls, want 200 after 2", res.Status, calls.Load())
	}
}

// TestPartitionHealReclosesBreaker drives the full netsplit lifecycle
// at the unit level: forwards fail until the breaker opens, then the
// peer heals and gossip probes walk the breaker closed and the peer
// back to alive — without an OpenFor cooldown wait, because probe
// successes feed the breaker directly.
func TestPartitionHealReclosesBreaker(t *testing.T) {
	p := newFakePeer(t, "n1")
	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         []string{p.ts.URL},
		ProbeInterval: 10 * time.Millisecond,
		SuspectAfter:  2,
		EvictAfter:    3,
		Breaker:       resilience.BreakerConfig{ConsecutiveFailures: 2, OpenFor: time.Hour, CloseAfter: 2},
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	p.down.Store(true) // /healthz answers 503: probes fail, peer dies
	waitFor(t, "breaker open", func() bool {
		return c.BreakerState(p.ts.URL) == resilience.BreakerOpen
	})
	waitFor(t, "peer dead", func() bool { return c.Stats().Dead == 1 })

	p.down.Store(false) // heal
	waitFor(t, "breaker closed again", func() bool {
		return c.BreakerState(p.ts.URL) == resilience.BreakerClosed
	})
	waitFor(t, "peer alive and ring rebuilt", func() bool {
		st := c.Stats()
		return st.Alive == 2 && st.Dead == 0 && st.RingNodes == 2
	})
}

// TestRingChurnRaces hammers evict/rejoin/epoch-advance from the probe
// loops while Forward traffic, stats scrapes, and status renders are
// in flight. It exists for `go test -race` (the CI race-dist job): any
// unsynchronized access between the membership path and the forward
// path is a build failure.
func TestRingChurnRaces(t *testing.T) {
	p1, p2 := newFakePeer(t, "n1"), newFakePeer(t, "n2")
	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         []string{p1.ts.URL, p2.ts.URL},
		ProbeInterval: time.Millisecond, // churn as fast as possible
		ProbeTimeout:  50 * time.Millisecond,
		SuspectAfter:  1,
		EvictAfter:    2,
		Breaker:       resilience.BreakerConfig{ConsecutiveFailures: 2, CloseAfter: 1, OpenFor: time.Millisecond},
		Retry:         resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Flap p2 up and down: evictions, rejoins, epoch advances.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
				p2.down.Store(i%2 == 0)
			}
		}
	}()

	// Forward traffic against both peers the whole time.
	for _, u := range []string{p1.ts.URL, p2.ts.URL} {
		u := u
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			for {
				select {
				case <-stop:
					return
				default:
					c.ForwardOpts(ctx, u, http.MethodGet, "/healthz", nil,
						ForwardOptions{Retry: true, Class: "eval"})
				}
			}
		}()
	}

	// Concurrent readers of every observability surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Stats()
				_ = c.Status()
				_, _ = c.Owner("some-key")
				_ = c.PeerURLs(true)
			}
		}
	}()

	time.Sleep(250 * time.Millisecond)
	close(stop)
	wg.Wait()

	p2.down.Store(false)
	waitFor(t, "ring reconverged after churn", func() bool {
		st := c.Stats()
		return st.Alive == 3 && st.RingNodes == 3
	})
}
