package cluster

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("POST /v1/ttm|{\"design\":\"a11\",\"n\":%d}\n", i)
	}
	return out
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// Balance: with the default virtual-node count, four members each own
// within ±15% of the ideal quarter of a large key population.
func TestRingBalance(t *testing.T) {
	ms := members(4)
	r := NewRing(DefaultVNodes, ms)
	counts := make(map[string]int, 4)
	ks := keys(40000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	ideal := float64(len(ks)) / 4
	for _, m := range ms {
		got := float64(counts[m])
		if got < 0.85*ideal || got > 1.15*ideal {
			t.Errorf("member %s owns %.0f keys, outside ±15%% of ideal %.0f", m, got, ideal)
		}
	}
}

// Adding a member moves roughly 1/N of the keys, and every moved key
// lands on the new member — the property that makes scale-out cheap.
func TestRingAddMovesOneNth(t *testing.T) {
	before := NewRing(DefaultVNodes, members(4))
	after := NewRing(DefaultVNodes, append(members(4), "http://10.0.0.9:8080"))
	ks := keys(40000)
	moved := 0
	for _, k := range ks {
		oldOwner, newOwner := before.Owner(k), after.Owner(k)
		if oldOwner == newOwner {
			continue
		}
		moved++
		if newOwner != "http://10.0.0.9:8080" {
			t.Fatalf("key moved from %s to %s, not to the new member", oldOwner, newOwner)
		}
	}
	frac := float64(moved) / float64(len(ks))
	// Ideal is 1/5; allow generous spread for vnode placement noise.
	if frac < 0.10 || frac > 0.30 {
		t.Errorf("add moved %.1f%% of keys, want ≈20%%", 100*frac)
	}
}

// Removing a member strands only its own keys: everything it did not
// own keeps its owner.
func TestRingRemoveMovesOnlyOrphans(t *testing.T) {
	before := NewRing(DefaultVNodes, members(4))
	after := NewRing(DefaultVNodes, members(3)) // drops 10.0.0.4
	removed := members(4)[3]
	moved := 0
	for _, k := range keys(40000) {
		oldOwner := before.Owner(k)
		if oldOwner == removed {
			moved++
			continue
		}
		if newOwner := after.Owner(k); newOwner != oldOwner {
			t.Fatalf("key not owned by removed member moved %s → %s", oldOwner, newOwner)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys")
	}
}

// Ownership is a pure function of the member set: construction order,
// duplicate entries and process restarts cannot change the mapping.
func TestRingDeterministic(t *testing.T) {
	ms := members(4)
	a := NewRing(DefaultVNodes, ms)
	b := NewRing(DefaultVNodes, []string{ms[2], ms[0], ms[3], ms[1], ms[0]})
	for _, k := range keys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner differs across construction orders for %q: %s vs %s",
				k, a.Owner(k), b.Owner(k))
		}
	}
	if a.Len() != b.Len() || a.Len() != 4 {
		t.Fatalf("ring sizes %d, %d, want 4", a.Len(), b.Len())
	}
}

// A single-member ring owns everything; an empty ring owns nothing.
func TestRingDegenerate(t *testing.T) {
	one := NewRing(DefaultVNodes, members(1))
	for _, k := range keys(100) {
		if one.Owner(k) != members(1)[0] {
			t.Fatal("single-member ring did not own a key")
		}
	}
	if empty := NewRing(DefaultVNodes, nil); empty.Owner("x") != "" || empty.Len() != 0 {
		t.Fatal("empty ring must own nothing")
	}
}
