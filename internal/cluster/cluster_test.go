package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fakePeer is a /healthz endpoint whose availability the test controls.
type fakePeer struct {
	id   string
	down atomic.Bool
	ts   *httptest.Server
}

func newFakePeer(t *testing.T, id string) *fakePeer {
	t.Helper()
	p := &fakePeer{id: id}
	p.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if p.down.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		json.NewEncoder(w).Encode(Health{Status: "ok", NodeID: p.id, RingEpoch: 1})
	}))
	t.Cleanup(p.ts.Close)
	return p
}

func testCluster(t *testing.T, peers ...*fakePeer) *Cluster {
	t.Helper()
	urls := make([]string, len(peers))
	for i, p := range peers {
		urls[i] = p.ts.URL
	}
	c := New(Options{
		SelfID:        "self",
		SelfURL:       "http://self.test:0",
		Peers:         urls,
		ProbeInterval: 10 * time.Millisecond,
		SuspectAfter:  2,
		EvictAfter:    3,
		Logger:        log.New(io.Discard, "", 0),
	})
	t.Cleanup(c.Close)
	return c
}

// waitFor polls until cond holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The membership lifecycle: optimistic start, suspicion on failures,
// eviction with ring rebalance, rejoin on recovery.
func TestGossipLifecycle(t *testing.T) {
	p1, p2 := newFakePeer(t, "n1"), newFakePeer(t, "n2")
	c := testCluster(t, p1, p2)

	// Optimistic membership: the full ring exists before any probe.
	if got := c.Ring().Len(); got != 3 {
		t.Fatalf("initial ring has %d members, want 3", got)
	}
	if c.Epoch() == 0 {
		t.Fatal("clustered epoch must start above zero")
	}
	epoch0 := c.Epoch()

	// Kill p2: consecutive probe failures must walk it suspect → dead
	// and shrink the ring; suspicion alone must NOT reshuffle keys.
	p2.down.Store(true)
	waitFor(t, "p2 suspect", func() bool {
		return c.Stats().Suspect == 1 && c.Stats().RingNodes == 3
	})
	waitFor(t, "p2 dead", func() bool { return c.Stats().Dead == 1 })
	if got := c.Ring().Len(); got != 2 {
		t.Fatalf("ring has %d members after eviction, want 2", got)
	}
	if c.Epoch() <= epoch0 {
		t.Fatal("eviction must advance the ring epoch")
	}

	// Every key must now be owned by a survivor.
	for _, k := range keys(200) {
		if owner, _ := c.Owner(k); owner == p2.ts.URL {
			t.Fatalf("evicted peer still owns key %q", k)
		}
	}

	// Revive p2: one successful probe re-admits it.
	p2.down.Store(false)
	waitFor(t, "p2 rejoin", func() bool {
		st := c.Stats()
		// Alive counts self, so a fully healed 3-member ring reads 3.
		return st.Alive == 3 && st.Dead == 0 && st.RingNodes == 3
	})
	if c.Stats().ProbeFailures == 0 {
		t.Error("probe failures were not counted")
	}
}

// Forward carries the single-hop guard header, relays status and body,
// and maintains the latency summary; transport failures count and
// surface as errors so callers can fall back to local compute.
func TestForward(t *testing.T) {
	var gotGuard atomic.Value
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			json.NewEncoder(w).Encode(Health{Status: "ok", NodeID: "n1"})
			return
		}
		gotGuard.Store(r.Header.Get(ForwardHeader))
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("X-Cache", "HIT")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}))
	defer peer.Close()

	c := New(Options{
		SelfID: "self", SelfURL: "http://self.test:0",
		Peers:         []string{peer.URL},
		ProbeInterval: time.Hour, // probes stay out of the way
		Logger:        log.New(io.Discard, "", 0),
	})
	defer c.Close()

	res, err := c.Forward(context.Background(), peer.URL, http.MethodPost, "/v1/ttm", []byte(`{"n":1}`))
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if res.Status != http.StatusOK || string(res.Body) != `{"n":1}` || res.XCache != "HIT" {
		t.Fatalf("Forward relay = %d %q xcache=%q", res.Status, res.Body, res.XCache)
	}
	if guard, _ := gotGuard.Load().(string); guard == "" {
		t.Fatal("forwarded request did not carry the guard header")
	}
	st := c.Stats()
	if st.Forwarded != 1 || st.ForwardCount != 1 || st.ForwardSum <= 0 {
		t.Fatalf("forward counters = %+v", st)
	}

	// Transport failure: a closed peer yields an error and a counter,
	// not a relayed response.
	peer.Close()
	if _, err := c.Forward(context.Background(), peer.URL, http.MethodPost, "/v1/ttm", nil); err == nil {
		t.Fatal("Forward to a closed peer must fail")
	}
	if st := c.Stats(); st.ForwardErrors != 1 {
		t.Fatalf("forward errors = %d, want 1", st.ForwardErrors)
	}
}

// A peer whose /healthz answers with an unexpected node ID is still
// tracked (identity is informational), and the status document reflects
// learned IDs and states.
func TestStatusDocument(t *testing.T) {
	p1 := newFakePeer(t, "n1")
	c := testCluster(t, p1)
	waitFor(t, "id learned", func() bool {
		for _, p := range c.Status().Peers {
			if p.ID == "n1" && p.State == "alive" {
				return true
			}
		}
		return false
	})
	st := c.Status()
	if !st.Enabled || st.Self.ID != "self" || len(st.Peers) != 1 {
		t.Fatalf("status = %+v", st)
	}
	if st.Epoch == 0 || len(st.RingNodes) != 2 {
		t.Fatalf("status ring = epoch %d members %v", st.Epoch, st.RingNodes)
	}
}
