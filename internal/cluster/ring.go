// Package cluster scales ttmcas-serve horizontally: N cooperating
// processes share one logical response cache by consistent-hashing the
// canonical cache key onto a ring of member nodes. Each key has exactly
// one owner; non-owners either forward the request to the owner over
// plain HTTP (with a single-hop guard header so ring disagreements can
// never loop) or answer with a 307 redirect when forwarding is
// disabled. Membership is maintained gossip-style from each node's
// point of view: peers are probed on /healthz, walk an alive → suspect
// → dead state machine on consecutive failures, are evicted from the
// ring when dead, and rejoin automatically on the first successful
// probe. Everything is standard library only.
//
// The transport is partition-tolerant: every peer gets a circuit
// breaker (resilience.Breaker) that turns a persistently failing
// forward path into instant refusals instead of burned deadlines, and
// forwards may opt into a budgeted retry policy (resilience.Retrier)
// gated on idempotency. Breaker opens feed suspicion directly, health
// probes bypass the breaker's admission gate (they are the recovery
// detector) while feeding its state, and a dead peer rejoins the ring
// only once its breaker has closed — so an asymmetric partition is
// noticed at traffic speed and a flapping link cannot flap the
// keyspace. Probes run under their own timeout, decoupled from the
// probe interval, so a hung peer cannot wedge the prober.
package cluster

import (
	"sort"
	"strconv"
)

// point is one virtual node on the ring: a hash position owned by a
// member.
type point struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring: members are expanded into
// vnodes virtual points each, and a key is owned by the member of the
// first point clockwise of the key's hash. Immutability makes lookups
// lock-free — membership changes build a new Ring and swap it in.
//
// The mapping is fully determined by (members, vnodes): construction
// order does not matter (members are sorted first) and no randomness is
// involved, so every process that agrees on the member set agrees on
// every key's owner — including across restarts.
type Ring struct {
	points  []point
	members []string
	vnodes  int
}

// DefaultVNodes is the virtual-node count used when none is configured.
// Per-member load imbalance shrinks as ~1/sqrt(vnodes): at 256 vnodes
// the expected skew is ~6%, comfortably inside the ±15% balance
// contract, and the ring stays tiny (N×256 16-byte points, searched by
// binary search).
const DefaultVNodes = 256

// NewRing builds a ring over the given member identifiers (base URLs in
// the serving layer). Duplicate members are collapsed; vnodes <= 0
// selects DefaultVNodes.
func NewRing(vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		points:  make([]point, 0, len(uniq)*vnodes),
		members: uniq,
		vnodes:  vnodes,
	}
	for _, m := range uniq {
		for v := 0; v < vnodes; v++ {
			h := hash64(m + "#" + strconv.Itoa(v))
			r.points = append(r.points, point{hash: h, node: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode labels is vanishingly rare,
		// but the tiebreak keeps ownership deterministic even then.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Owner returns the member owning key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point clockwise of the largest hash
	}
	return r.points[i].node
}

// Members returns the ring's member set, sorted. The slice is shared;
// callers must not mutate it.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Len reports the member count.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// VNodes reports the virtual-node count per member.
func (r *Ring) VNodes() int {
	if r == nil {
		return 0
	}
	return r.vnodes
}

// hash64 is 64-bit FNV-1a with a murmur-style finalizer. Raw FNV-1a is
// a poor ring hash: bytes near the END of the input pass through only a
// few multiplies, so strings differing in a short suffix — exactly the
// shape of vnode labels "member#0".."member#63" — come out with
// correlated high bits, and since ring order is dominated by high bits,
// a member's vnodes clump together instead of interleaving (measured:
// >2× ownership skew at 64 vnodes). The fmix64 finalizer avalanches
// every input bit across the whole word, restoring the ~1/√vnodes
// balance the ring design assumes.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
