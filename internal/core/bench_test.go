package core_test

import (
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

// The kernel benchmarks pin the tentpole claim: Evaluator.Eval runs the
// full TTM model with zero allocations, roughly an order of magnitude
// faster than the map-based Model.Evaluate it compiles away. bench.sh
// records both so a regression in either shows up in BENCH_jobs.json.

var benchPert = core.Perturbation{NTT: 1.05, NUT: 0.95, D0: 1.1, Rate: 0.9, FabLatency: 1.02, TAPLatency: 1.01}

func BenchmarkModelEvaluate(b *testing.B) {
	m := core.Model{Perturb: benchPert}
	d := scenario.A11At(technode.N28)
	c := market.Full().WithQueueAll(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.TTM(d, 10e6, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorEval(b *testing.B) {
	m := core.Model{}
	ev, err := m.Compile(scenario.A11At(technode.N28), 10e6, market.Full().WithQueueAll(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(benchPert); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorCAS(b *testing.B) {
	m := core.Model{}
	ev, err := m.Compile(scenario.Zen2(), 10e6, market.Full().WithQueueAll(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.CAS(benchPert); err != nil {
			b.Fatal(err)
		}
	}
}
