package core_test

import (
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

// The kernel benchmarks pin the tentpole claim: Evaluator.Eval runs the
// full TTM model with zero allocations, roughly an order of magnitude
// faster than the map-based Model.Evaluate it compiles away. bench.sh
// records both so a regression in either shows up in BENCH_jobs.json.

var benchPert = core.Perturbation{NTT: 1.05, NUT: 0.95, D0: 1.1, Rate: 0.9, FabLatency: 1.02, TAPLatency: 1.01}

func BenchmarkModelEvaluate(b *testing.B) {
	m := core.Model{Perturb: benchPert}
	d := scenario.A11At(technode.N28)
	c := market.Full().WithQueueAll(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.TTM(d, 10e6, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorEval(b *testing.B) {
	m := core.Model{}
	ev, err := m.Compile(scenario.A11At(technode.N28), 10e6, market.Full().WithQueueAll(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.Eval(benchPert); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluatorCAS(b *testing.B) {
	m := core.Model{}
	ev, err := m.Compile(scenario.Zen2(), 10e6, market.Full().WithQueueAll(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.CAS(benchPert); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch builds a column batch of n copies of the benchmark
// perturbation with a little per-sample spread, the shape the MC and
// Sobol drivers feed EvalBatch.
func benchBatch(n int) *core.Batch {
	b := &core.Batch{
		NTT: make([]float64, n), NUT: make([]float64, n), D0: make([]float64, n),
		Rate: make([]float64, n), FabLatency: make([]float64, n), TAPLatency: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		j := 1 + 0.0001*float64(i%16)
		b.NTT[i], b.NUT[i], b.D0[i] = benchPert.NTT*j, benchPert.NUT, benchPert.D0*j
		b.Rate[i], b.FabLatency[i], b.TAPLatency[i] = benchPert.Rate, benchPert.FabLatency*j, benchPert.TAPLatency
	}
	return b
}

func BenchmarkEvaluatorEvalBatch(b *testing.B) {
	m := core.Model{}
	ev, err := m.Compile(scenario.A11At(technode.N28), 10e6, market.Full().WithQueueAll(4))
	if err != nil {
		b.Fatal(err)
	}
	const n = 1024
	batch := benchBatch(n)
	out := make([]units.Weeks, n)
	var errs core.BatchErrors
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.EvalBatch(batch, out, &errs); err != nil {
			b.Fatal(err)
		}
		if errs.Len() != 0 {
			b.Fatal("unexpected sample errors")
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

func BenchmarkEvaluatorCASBatch(b *testing.B) {
	m := core.Model{}
	ev, err := m.Compile(scenario.Zen2(), 10e6, market.Full().WithQueueAll(4))
	if err != nil {
		b.Fatal(err)
	}
	const n = 256
	batch := benchBatch(n)
	out := make([]float64, n)
	var errs core.BatchErrors
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ev.CASBatch(batch, out, &errs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

// TestBatchAllocs pins the steady-state zero-allocation contract of the
// batch entry points, including the Sobol inner-loop shape (an A-matrix
// column batch with one column swapped to B) and the at-capacity and
// CAS forms the MC band driver uses.
func TestBatchAllocs(t *testing.T) {
	m := core.Model{}
	for dname, d := range registeredDesigns() {
		ev, err := m.Compile(d, 10e6, market.Full().WithQueueAll(4))
		if err != nil {
			t.Fatal(err)
		}
		const n = 256
		batch := benchBatch(n)
		wout := make([]units.Weeks, n)
		cout := make([]float64, n)
		var errs core.BatchErrors
		// Warm the lazily-grown scratch once.
		if err := ev.EvalBatch(batch, wout, &errs); err != nil {
			t.Fatal(err)
		}
		if err := ev.CASBatch(batch, cout, &errs); err != nil {
			t.Fatal(err)
		}
		if a := testing.AllocsPerRun(20, func() {
			if err := ev.EvalBatch(batch, wout, &errs); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s: EvalBatch allocates %v/op, want 0", dname, a)
		}
		if a := testing.AllocsPerRun(20, func() {
			if err := ev.EvalBatchAtCapacity(batch, 0.5, wout, &errs); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s: EvalBatchAtCapacity allocates %v/op, want 0", dname, a)
		}
		if a := testing.AllocsPerRun(10, func() {
			if err := ev.CASBatch(batch, cout, &errs); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s: CASBatch allocates %v/op, want 0", dname, a)
		}
		// Sobol inner loop: column-substituted Saltelli batch.
		bcol := benchBatch(n)
		swapped := *batch
		swapped.Rate = bcol.NTT
		if a := testing.AllocsPerRun(20, func() {
			if err := ev.EvalBatch(&swapped, wout, &errs); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s: EvalBatch (Sobol column swap) allocates %v/op, want 0", dname, a)
		}
	}
}
