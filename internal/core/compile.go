package core

import (
	"fmt"
	"math"

	"ttmcas/internal/design"
	"ttmcas/internal/geometry"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
	"ttmcas/internal/yield"
)

// This file implements the compiled evaluation kernel: Model.Evaluate
// resolves every per-node parameter through map lookups and builds
// fresh result slices on each call, which is fine for a one-shot
// evaluation but dominates the runtime of the Monte-Carlo, Sobol and
// sweep drivers that call it 10³–10⁶ times with nothing changing but
// the Perturbation. Compile performs all of that resolution once —
// node parameters, effort curves, wafer geometry, queue depths,
// capacity factors — into flat slices indexed by a dense node index,
// so Evaluator.Eval runs the model with zero map operations and zero
// heap allocations.
//
// The kernel mirrors Evaluate's floating-point operations in the exact
// same order, so its results are bit-for-bit identical to the
// map-based oracle; the property tests in compile_test.go hold the two
// paths equal across every registered design × scenario.

// Evaluator is a design × conditions pair compiled for repeated
// evaluation under varying perturbations. An Evaluator owns a scratch
// buffer and is therefore NOT safe for concurrent use; parallel
// drivers give each worker its own Clone (cheap: the compiled tables
// are shared and immutable, only the scratch is duplicated).
type Evaluator struct {
	// chips is the compiled final-chip count n.
	chips float64
	// global is the raw GlobalCapacity of the compiled conditions
	// (zero meaning "default to 1", resolved at eval time exactly as
	// market.Conditions.capacity does).
	global float64

	designTime units.Weeks
	team       float64 // float64(d.Team())

	alpha      float64
	yieldModel yield.Model
	noEdge     bool

	nodes []evalNode
	dies  []evalDie

	// scratch accumulates per-node wafer demand during one Eval; it is
	// the only per-call mutable state.
	scratch []units.Wafers

	// batch holds the per-sample accumulators of the structure-of-arrays
	// entry points (EvalBatch/CASBatch); lazily allocated on first batch
	// use and grown to the largest batch length seen. See batch.go.
	batch *batchScratch
}

// evalNode is one distinct process node of the design with every
// map-resolved parameter flattened.
type evalNode struct {
	node          technode.Node
	nutBase       float64 // float64(d.UniqueTransistorsAt(node))
	tapeoutEffort float64
	waferRate     float64 // float64(p.WaferRate), full capacity
	factor        float64 // node capacity multiplier (1 when unset)
	queueWafers   float64 // float64(c.QueueWafers(p)), fixed at quote time
	fabLatency    float64 // float64(p.FabLatency)
}

// evalDie is one die type with its node parameters resolved.
type evalDie struct {
	name          string
	node          technode.Node
	nodeIdx       int
	tapLatency    float64 // float64(p.TAPLatency)
	nttBase       float64 // float64(die.TotalTransistors())
	areaOverride  units.MM2
	minArea       units.MM2
	density       units.MTrPerMM2
	d0Base        float64 // float64(p.DefectDensity)
	yieldOverride float64
	salvage       *yield.Salvage
	wafer         geometry.Wafer
	countF        float64 // float64(die.Count())
	testingEffort float64
	packageEffort float64
}

// Compile resolves the design and market conditions against the
// model's node database into an Evaluator. The model's own Perturb
// field is ignored: the perturbation is an argument of every Eval so
// one compiled kernel serves a whole Monte-Carlo or Sobol stream.
// Structural errors (invalid design, negative chip count, unknown
// node, invalid salvage scheme) surface here; data-dependent errors
// (a die too large for the wafer under a perturbed transistor count)
// surface from Eval.
func (m Model) Compile(d design.Design, n float64, c market.Conditions) (*Evaluator, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("core: negative chip count %v", n)
	}
	e := &Evaluator{
		chips:      n,
		global:     c.GlobalCapacity,
		designTime: d.DesignTime,
		team:       float64(d.Team()),
		alpha:      m.Alpha,
		yieldModel: m.YieldModel,
		noEdge:     m.NoEdgeCorrection,
	}
	nodeIdx := make(map[technode.Node]int)
	for _, node := range d.Nodes() {
		p, err := m.Nodes.Lookup(node)
		if err != nil {
			return nil, err
		}
		nodeIdx[node] = len(e.nodes)
		e.nodes = append(e.nodes, evalNode{
			node:          node,
			nutBase:       float64(d.UniqueTransistorsAt(node)),
			tapeoutEffort: p.TapeoutEffort,
			waferRate:     float64(p.WaferRate),
			factor:        nodeFactor(c, node),
			queueWafers:   float64(c.QueueWafers(p)),
			fabLatency:    float64(p.FabLatency),
		})
	}
	for _, die := range d.Dies {
		p, err := m.Nodes.Lookup(die.Node)
		if err != nil {
			return nil, err
		}
		if die.Salvage != nil {
			if err := die.Salvage.Validate(); err != nil {
				return nil, fmt.Errorf("core: die %q: %w", die.Name, err)
			}
		}
		e.dies = append(e.dies, evalDie{
			name:          die.Name,
			node:          die.Node,
			nodeIdx:       nodeIdx[die.Node],
			tapLatency:    float64(p.TAPLatency),
			nttBase:       float64(die.TotalTransistors()),
			areaOverride:  die.AreaOverride,
			minArea:       die.MinArea,
			density:       p.Density,
			d0Base:        float64(p.DefectDensity),
			yieldOverride: die.YieldOverride,
			salvage:       die.Salvage,
			wafer:         m.waferFor(p),
			countF:        float64(die.Count()),
			testingEffort: p.TestingEffort,
			packageEffort: p.PackageEffort,
		})
	}
	e.scratch = make([]units.Wafers, len(e.nodes))
	return e, nil
}

// Clone returns an Evaluator sharing the compiled tables but owning a
// fresh scratch buffer, for one worker of a parallel driver.
func (e *Evaluator) Clone() *Evaluator {
	out := *e
	out.scratch = make([]units.Wafers, len(e.nodes))
	out.batch = nil // batch scratch is per-goroutine; clones grow their own
	return &out
}

// Chips returns the compiled final-chip count.
func (e *Evaluator) Chips() float64 { return e.chips }

// Eval computes the headline TTM under the perturbation at the
// compiled conditions. The hot path performs no map operations and no
// heap allocations (asserted by testing.AllocsPerRun in the tests);
// only the error path allocates.
func (e *Evaluator) Eval(p Perturbation) (units.Weeks, error) {
	return e.eval(p, e.chips, e.global, -1, 0, nil)
}

// EvalResult is Eval returning the full per-phase, per-die and per-node
// breakdown, bit-for-bit identical to Model.Evaluate on the compiled
// design × conditions pair. Unlike Eval it allocates the result slices,
// so it belongs on request paths that need the detail once, not in
// Monte-Carlo inner loops.
func (e *Evaluator) EvalResult(p Perturbation) (Result, error) {
	return e.EvalResultChips(p, e.chips)
}

// EvalResultChips is EvalResult with the final-chip count overridden,
// so one compiled evaluator serves detailed evaluations across request
// volumes.
func (e *Evaluator) EvalResultChips(p Perturbation, n float64) (Result, error) {
	if n < 0 {
		return Result{}, fmt.Errorf("core: negative chip count %v", n)
	}
	var res Result
	if _, err := e.eval(p, n, e.global, -1, 0, &res); err != nil {
		return Result{}, err
	}
	return res, nil
}

// EvalAtCapacity is Eval with the global capacity fraction overridden,
// exactly as evaluating at c.AtCapacity(global) would; the x-axis of
// every capacity-sweep figure.
func (e *Evaluator) EvalAtCapacity(p Perturbation, global float64) (units.Weeks, error) {
	return e.eval(p, e.chips, global, -1, 0, nil)
}

// EvalChipsAtCapacity overrides both the final-chip count and the
// global capacity fraction, for cached evaluators serving arbitrary
// request volumes across capacity sweeps.
func (e *Evaluator) EvalChipsAtCapacity(p Perturbation, n float64, global float64) (units.Weeks, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative chip count %v", n)
	}
	return e.eval(p, n, global, -1, 0, nil)
}

// EvalChips is Eval with the final-chip count overridden, for volume
// sweeps and production-split studies that re-divide a fixed order
// across designs.
func (e *Evaluator) EvalChips(p Perturbation, n float64) (units.Weeks, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative chip count %v", n)
	}
	return e.eval(p, n, e.global, -1, 0, nil)
}

// EvalChipsNodeCapacity is EvalChips with one node's capacity factor
// replaced (the WithNodeCapacity finite-difference probe). A node the
// design does not use leaves the result unchanged.
func (e *Evaluator) EvalChipsNodeCapacity(p Perturbation, n float64, node technode.Node, f float64) (units.Weeks, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative chip count %v", n)
	}
	idx := -1
	for i := range e.nodes {
		if e.nodes[i].node == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return e.eval(p, n, e.global, -1, 0, nil)
	}
	return e.eval(p, n, e.global, idx, f, nil)
}

// CAS computes the Chip Agility Score (Eq. 8) under the perturbation
// at the compiled conditions via the same central differences as
// Model.CAS, without the per-node Derivatives map.
func (e *Evaluator) CAS(p Perturbation) (float64, error) {
	return e.cas(p, e.chips, e.global, nil)
}

// CASAtCapacity is CAS with the global capacity fraction overridden.
func (e *Evaluator) CASAtCapacity(p Perturbation, global float64) (float64, error) {
	return e.cas(p, e.chips, global, nil)
}

// CASChipsAtCapacity overrides both the final-chip count and the
// global capacity fraction, the CAS counterpart of EvalChipsAtCapacity.
func (e *Evaluator) CASChipsAtCapacity(p Perturbation, n float64, global float64) (float64, error) {
	if n < 0 {
		return 0, fmt.Errorf("core: negative chip count %v", n)
	}
	return e.cas(p, n, global, nil)
}

// CASResultChips computes the agility score with its per-node
// derivative composition, bit-for-bit identical to Model.CAS, with the
// final-chip count overridden. It allocates the Derivatives map, so it
// belongs on request paths, not inner loops.
func (e *Evaluator) CASResultChips(p Perturbation, n float64) (CASResult, error) {
	if n < 0 {
		return CASResult{}, fmt.Errorf("core: negative chip count %v", n)
	}
	res := CASResult{Derivatives: make(map[technode.Node]float64, len(e.nodes))}
	cas, err := e.cas(p, n, e.global, res.Derivatives)
	if err != nil {
		return CASResult{}, err
	}
	res.CAS = cas
	return res, nil
}

// eval is the kernel. overrideIdx < 0 means no node-capacity override.
// The arithmetic mirrors Model.Evaluate operation for operation so the
// result is bit-for-bit identical to the oracle. detail, when non-nil,
// receives the full per-phase/per-die/per-node breakdown exactly as
// Model.Evaluate would report it; the hot path passes nil and stays
// allocation-free.
func (e *Evaluator) eval(p Perturbation, chips, global float64, overrideIdx int, overrideF float64, detail *Result) (units.Weeks, error) {
	// Tapeout phase (Eq. 2).
	var tapeoutHours units.Hours
	for i := range e.nodes {
		nd := &e.nodes[i]
		nut := nd.nutBase * or1(p.NUT)
		tapeoutHours += units.Hours(nut / 1e6 * nd.tapeoutEffort)
	}
	tapeout := units.Weeks(float64(tapeoutHours) / (units.HoursPerWeek * e.team))
	if detail != nil {
		detail.DesignTime = e.designTime
		detail.TapeoutHours = tapeoutHours
		detail.Tapeout = tapeout
		detail.Dies = make([]DieResult, 0, len(e.dies))
		detail.Nodes = make([]NodeFabResult, 0, len(e.nodes))
	}

	// Per-die geometry, yield and wafer demand (Eqs. 5–7).
	for i := range e.scratch {
		e.scratch[i] = 0
	}
	var testWeeks, packWeeks float64
	var tapLatency units.Weeks
	for i := range e.dies {
		die := &e.dies[i]
		if units.Weeks(die.tapLatency*or1(p.TAPLatency)) > tapLatency {
			tapLatency = units.Weeks(die.tapLatency * or1(p.TAPLatency))
		}

		ntt := units.Transistors(die.nttBase * or1(p.NTT))
		area := die.areaOverride
		if area <= 0 {
			area = die.density.Area(ntt)
		}
		if area < die.minArea {
			area = die.minArea
		}

		y := die.yieldOverride
		if y == 0 {
			yp := yield.Params{
				Area:  area,
				D0:    units.DefectsPerCM2(die.d0Base * or1(p.D0)),
				Alpha: e.alpha,
				Model: e.yieldModel,
			}
			if die.salvage != nil {
				var err error
				y, err = yield.SalvageYield(yp, *die.salvage)
				if err != nil {
					return 0, fmt.Errorf("core: die %q: %w", die.name, err)
				}
			} else {
				y = yield.Yield(yp)
			}
		}

		var gross float64
		if e.noEdge {
			gross = float64(die.wafer.NaiveDies(area))
		} else {
			gross = die.wafer.GrossDiesFrac(area)
		}
		if gross < 1 {
			return 0, fmt.Errorf("core: die %q (%.0f mm² at %s): %w",
				die.name, float64(area), die.node, geometry.ErrDieTooLarge)
		}

		diesNeeded := yield.DiesNeeded(chips*die.countF, y)
		e.scratch[die.nodeIdx] += units.Wafers(diesNeeded / gross)
		if detail != nil {
			detail.Dies = append(detail.Dies, DieResult{
				Name:          die.name,
				Node:          die.node,
				Area:          area,
				Yield:         y,
				GrossPerWafer: gross,
				Wafers:        units.Wafers(diesNeeded / gross),
			})
		}

		if y > 0 {
			testWeeks += chips * die.countF / y * float64(ntt) * die.testingEffort
		}
		packWeeks += chips * die.countF * float64(area) * die.packageEffort
	}

	// Eqs. 3–5 per node, synchronized at the slowest node.
	var fabrication units.Weeks
	first := true
	for i := range e.nodes {
		nd := &e.nodes[i]
		g := global
		if g == 0 {
			g = 1
		}
		if overrideIdx == i {
			g *= overrideF
		} else {
			g *= nd.factor
		}
		if g < 0 {
			g = 0
		}
		rate := nd.waferRate * g * or1(p.Rate)
		lfab := units.Weeks(nd.fabLatency * or1(p.FabLatency))
		wafers := e.scratch[i]
		var queue, production, fabTotal units.Weeks
		switch {
		case rate > 0:
			queue = units.Weeks(nd.queueWafers / rate)            // Eq. 4
			production = units.Weeks(float64(wafers)/rate) + lfab // Eq. 5
			fabTotal = queue + production
		case wafers > 0 || nd.queueWafers > 0:
			queue = units.Weeks(math.Inf(1))
			production = units.Weeks(math.Inf(1))
			fabTotal = units.Weeks(math.Inf(1))
		default:
			production = lfab
			fabTotal = lfab
		}
		if detail != nil {
			detail.Nodes = append(detail.Nodes, NodeFabResult{
				Node:       nd.node,
				Wafers:     wafers,
				Queue:      queue,
				Production: production,
				FabTotal:   fabTotal,
			})
		}
		if first || fabTotal > fabrication {
			fabrication = fabTotal
			if detail != nil {
				detail.CriticalNode = nd.node
			}
			first = false
		}
	}

	packaging := tapLatency + units.Weeks(testWeeks) + units.Weeks(packWeeks)
	ttm := e.designTime + tapeout + fabrication + packaging
	if detail != nil {
		detail.Fabrication = fabrication
		detail.Packaging = packaging
		detail.TTM = ttm
	}
	return ttm, nil
}

// cas mirrors Model.CASWithStep at the default step. derivs, when
// non-nil, receives |∂TTM/∂μ_W| per node exactly as Model.CAS reports
// it; the hot path passes nil.
func (e *Evaluator) cas(p Perturbation, chips, global float64, derivs map[technode.Node]float64) (float64, error) {
	g := global
	if g == 0 {
		g = 1
	}
	const step = DefaultDerivativeStep
	sum := 0.0
	for i := range e.nodes {
		nd := &e.nodes[i]
		f0 := nd.factor
		fUp, fDown := f0+step, f0-step
		if fDown <= 0 {
			fDown = f0
		}
		up, err := e.eval(p, chips, global, i, fUp, nil)
		if err != nil {
			return 0, err
		}
		down, err := e.eval(p, chips, global, i, fDown, nil)
		if err != nil {
			return 0, err
		}
		if math.IsInf(float64(up), 0) || math.IsInf(float64(down), 0) {
			if derivs != nil {
				derivs[nd.node] = math.Inf(1)
			}
			sum = math.Inf(1)
			continue
		}
		der := math.Abs(float64(up-down)) / ((fUp - fDown) * g * nd.waferRate)
		if derivs != nil {
			derivs[nd.node] = der
		}
		sum += der
	}
	if sum <= 0 {
		return math.Inf(1), nil
	}
	if math.IsInf(sum, 1) {
		return 0, nil
	}
	return 1 / sum, nil
}
