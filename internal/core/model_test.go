package core_test

import (
	"math"
	"testing"
	"testing/quick"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
	"ttmcas/internal/yield"
)

func simple(node technode.Node) design.Design {
	return design.Design{
		Name: "simple",
		Dies: []design.Die{{Name: "die", Node: node, NTT: 1e9, NUT: 100e6}},
	}
}

func TestEvaluateBreakdownSums(t *testing.T) {
	var m core.Model
	d := simple(technode.N28)
	d.DesignTime = 10
	r, err := m.Evaluate(d, 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	sum := r.DesignTime + r.Tapeout + r.Fabrication + r.Packaging
	if math.Abs(float64(sum-r.TTM)) > 1e-9 {
		t.Errorf("phases sum to %v, TTM = %v", float64(sum), float64(r.TTM))
	}
	if r.DesignTime != 10 {
		t.Errorf("design time = %v", float64(r.DesignTime))
	}
	if len(r.Dies) != 1 || len(r.Nodes) != 1 || r.CriticalNode != technode.N28 {
		t.Errorf("die detail = %+v", r)
	}
}

func TestTapeoutHours(t *testing.T) {
	// Eq. 2: 100e6 unique transistors × 41 h/MTr at 28 nm = 4100 hours
	// → 1.025 weeks for a 100-engineer team.
	var m core.Model
	r, err := m.Evaluate(simple(technode.N28), 1, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(r.TapeoutHours)-4100) > 1e-6 {
		t.Errorf("tapeout hours = %v, want 4100", float64(r.TapeoutHours))
	}
	if math.Abs(float64(r.Tapeout)-1.025) > 1e-9 {
		t.Errorf("tapeout weeks = %v, want 1.025", float64(r.Tapeout))
	}
}

func TestFabSynchronizationMax(t *testing.T) {
	// A two-die design's fabrication phase is bounded by the slower
	// die (Eq. 3), not the sum.
	var m core.Model
	two := design.Design{
		Name: "two",
		Dies: []design.Die{
			{Name: "fast", Node: technode.N7, NTT: 1e9, NUT: 1e6},
			{Name: "slow", Node: technode.N5, NTT: 1e9, NUT: 1e6},
		},
	}
	r, err := m.Evaluate(two, 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	want := math.Max(float64(r.Nodes[0].FabTotal), float64(r.Nodes[1].FabTotal))
	if math.Abs(float64(r.Fabrication)-want) > 1e-9 {
		t.Errorf("fab = %v, want max %v", float64(r.Fabrication), want)
	}
	if r.CriticalNode != technode.N5 {
		t.Errorf("critical node = %v, want 5nm (20-week latency)", r.CriticalNode)
	}
}

func TestTTMMonotoneInVolumeAndCapacity(t *testing.T) {
	// Properties: TTM is non-decreasing in chip count and
	// non-increasing in capacity fraction.
	var m core.Model
	d := scenario.A11At(technode.N28)
	f := func(rawN uint32, rawF uint8) bool {
		n := float64(rawN%100_000_000 + 1)
		frac := 0.05 + 0.95*float64(rawF)/255
		base, err := m.TTM(d, n, market.Full().AtCapacity(frac))
		if err != nil {
			return false
		}
		moreChips, err := m.TTM(d, n*2, market.Full().AtCapacity(frac))
		if err != nil {
			return false
		}
		if moreChips < base {
			return false
		}
		moreCap, err := m.TTM(d, n, market.Full().AtCapacity(math.Min(1, frac*1.5)))
		if err != nil {
			return false
		}
		return moreCap <= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQueueAddsLeadTime(t *testing.T) {
	var m core.Model
	d := simple(technode.N7)
	base, err := m.TTM(d, 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.TTM(d, 1e6, market.Full().WithQueue(technode.N7, 2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(queued-base)-2) > 1e-9 {
		t.Errorf("2-week queue at full capacity should add exactly 2 weeks, added %v", float64(queued-base))
	}
	// At half capacity the same quoted queue takes twice as long.
	baseHalf, _ := m.TTM(d, 1e6, market.Full().AtCapacity(0.5))
	queuedHalf, _ := m.TTM(d, 1e6, market.Full().AtCapacity(0.5).WithQueue(technode.N7, 2))
	if math.Abs(float64(queuedHalf-baseHalf)-4) > 1e-9 {
		t.Errorf("2-week queue at 50%% capacity should add 4 weeks, added %v", float64(queuedHalf-baseHalf))
	}
}

func TestIdleNodeGivesInfiniteTTM(t *testing.T) {
	var m core.Model
	got, err := m.TTM(simple(technode.N20), 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(float64(got), 1) {
		t.Errorf("TTM at idle 20nm = %v, want +Inf", float64(got))
	}
}

func TestOversizedDieErrors(t *testing.T) {
	var m core.Model
	big := design.Design{Dies: []design.Die{{Name: "huge", Node: technode.N250, NTT: 500e9}}}
	if _, err := m.Evaluate(big, 1, market.Full()); err == nil {
		t.Error("wafer-sized die should error")
	}
}

func TestInvalidInputs(t *testing.T) {
	var m core.Model
	if _, err := m.Evaluate(design.Design{}, 1, market.Full()); err == nil {
		t.Error("invalid design should error")
	}
	if _, err := m.Evaluate(simple(technode.N28), -1, market.Full()); err == nil {
		t.Error("negative chip count should error")
	}
}

func TestPerturbationDirections(t *testing.T) {
	// Each input's perturbation must push TTM in the physically
	// expected direction.
	d := scenario.A11At(technode.N28)
	n := 10e6
	var base core.Model
	ttm := func(p core.Perturbation) float64 {
		m := base
		m.Perturb = p
		v, err := m.TTM(d, n, market.Full())
		if err != nil {
			t.Fatal(err)
		}
		return float64(v)
	}
	b := ttm(core.Perturbation{})
	if ttm(core.Perturbation{NTT: 1.2}) <= b {
		t.Error("more transistors should not speed up TTM")
	}
	if ttm(core.Perturbation{NUT: 1.2}) <= b {
		t.Error("more unique transistors should slow tapeout")
	}
	if ttm(core.Perturbation{D0: 1.5}) <= b {
		t.Error("more defects should slow TTM")
	}
	if ttm(core.Perturbation{Rate: 1.2}) >= b {
		t.Error("faster wafer production should speed TTM")
	}
	if ttm(core.Perturbation{FabLatency: 1.2}) <= b {
		t.Error("longer fab latency should slow TTM")
	}
	if ttm(core.Perturbation{TAPLatency: 1.2}) <= b {
		t.Error("longer OSAT latency should slow TTM")
	}
}

func TestPerturbationSetInput(t *testing.T) {
	var p core.Perturbation
	for _, name := range core.Inputs {
		if err := p.SetInput(name, 1.1); err != nil {
			t.Errorf("SetInput(%q): %v", name, err)
		}
	}
	if p.NTT != 1.1 || p.TAPLatency != 1.1 {
		t.Errorf("SetInput did not stick: %+v", p)
	}
	if err := p.SetInput("bogus", 1); err == nil {
		t.Error("unknown input should error")
	}
}

func TestYieldOverrideRespected(t *testing.T) {
	var m core.Model
	d := design.Design{Dies: []design.Die{{
		Name: "interposer", Node: technode.N65, AreaOverride: 300,
		YieldOverride: 0.9999,
	}}}
	r, err := m.Evaluate(d, 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if r.Dies[0].Yield != 0.9999 {
		t.Errorf("yield = %v, want override 0.9999", r.Dies[0].Yield)
	}
}

func TestYieldModelAblation(t *testing.T) {
	// Poisson yield is more pessimistic than negative binomial for
	// large dies, so it must never produce a faster TTM.
	nb := core.Model{YieldModel: yield.NegativeBinomial}
	po := core.Model{YieldModel: yield.Poisson}
	d := scenario.A11At(technode.N90) // ~977 mm² die: yield matters
	tNB, err := nb.TTM(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	tPO, err := po.TTM(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if tPO <= tNB {
		t.Errorf("poisson TTM %v should exceed neg-binomial %v on a large die", float64(tPO), float64(tNB))
	}
}

func TestEdgeCorrectionAblation(t *testing.T) {
	with := core.Model{}
	without := core.Model{NoEdgeCorrection: true}
	d := scenario.A11At(technode.N90)
	rWith, err := with.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	rWithout, err := without.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if rWithout.Dies[0].GrossPerWafer <= rWith.Dies[0].GrossPerWafer {
		t.Error("naive gross-die count should exceed edge-corrected")
	}
	if rWithout.TTM >= rWith.TTM {
		t.Error("ignoring edge dies should under-estimate TTM")
	}
}
