package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
	"ttmcas/internal/yield"
)

// The compiled evaluator must be indistinguishable from the map-based
// oracle: same float64 bits, same error/no-error outcomes, across every
// registered design, every built-in market scenario, and a cloud of
// random perturbations. These property tests are the contract that lets
// every driver (mc, sens, jobs, server) switch to the kernel blindly.

func registeredDesigns() map[string]design.Design {
	return map[string]design.Design{
		"a11":            scenario.A11(),
		"a11@28nm":       scenario.A11At(technode.N28),
		"a11@7nm":        scenario.A11At(technode.N7),
		"ariane":         scenario.ArianeConfig{}.Design(),
		"zen2":           scenario.Zen2(),
		"zen2-mono@7nm":  scenario.Zen2Monolithic(technode.N7),
		"chip-a":         scenario.ChipA(),
		"chip-b":         scenario.ChipB(),
		"accel-host@7nm": scenario.AccelHost(technode.N7),
		"raven":          scenario.RavenConfig{}.Design(),
	}
}

// perturbations returns a deterministic cloud of multipliers around 1
// (±25%), plus the zero value and single-axis perturbations, covering
// the ±10% band the paper's Section 5 sweeps with margin.
func perturbations(seed int64, n int) []core.Perturbation {
	rng := rand.New(rand.NewSource(seed))
	u := func() float64 { return 0.75 + 0.5*rng.Float64() }
	ps := []core.Perturbation{
		{}, // zero value: all multipliers 1
		{NTT: 1.1}, {NUT: 0.9}, {D0: 1.25}, {Rate: 0.8}, {FabLatency: 1.2}, {TAPLatency: 0.75},
	}
	for i := 0; i < n; i++ {
		ps = append(ps, core.Perturbation{
			NTT: u(), NUT: u(), D0: u(), Rate: u(), FabLatency: u(), TAPLatency: u(),
		})
	}
	return ps
}

func modelVariants() map[string]core.Model {
	return map[string]core.Model{
		"default":  {},
		"no-edge":  {NoEdgeCorrection: true},
		"poisson":  {YieldModel: yield.Poisson},
		"murphy-2": {YieldModel: yield.Murphy, Alpha: 2},
	}
}

func sameWeeks(t *testing.T, ctx string, got, want units.Weeks, gotErr, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: compiled err %v, oracle err %v", ctx, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: compiled err %q, oracle err %q", ctx, gotErr, wantErr)
		}
		return
	}
	if math.Float64bits(float64(got)) != math.Float64bits(float64(want)) {
		t.Fatalf("%s: compiled %v (%#x), oracle %v (%#x)", ctx,
			got, math.Float64bits(float64(got)), want, math.Float64bits(float64(want)))
	}
}

func TestEvaluatorMatchesOracleBitForBit(t *testing.T) {
	perts := perturbations(1, 24)
	const chips = 10e6
	for mname, m := range modelVariants() {
		for dname, d := range registeredDesigns() {
			for _, sc := range market.Scenarios() {
				ev, err := m.Compile(d, chips, sc.Conditions)
				if err != nil {
					t.Fatalf("%s/%s/%s: Compile: %v", mname, dname, sc.Name, err)
				}
				for i, p := range perts {
					om := m
					om.Perturb = p
					want, wantErr := om.TTM(d, chips, sc.Conditions)
					got, gotErr := ev.Eval(p)
					sameWeeks(t, fmt.Sprintf("%s/%s/%s pert %d", mname, dname, sc.Name, i),
						got, want, gotErr, wantErr)
				}
			}
		}
	}
}

func TestEvaluatorAtCapacityMatchesOracle(t *testing.T) {
	perts := perturbations(2, 8)
	const chips = 10e6
	m := core.Model{}
	for dname, d := range registeredDesigns() {
		for _, sc := range market.Scenarios() {
			ev, err := m.Compile(d, chips, sc.Conditions)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range []float64{0.1, 0.25, 0.5, 1.0} {
				for i, p := range perts {
					om := m
					om.Perturb = p
					want, wantErr := om.TTM(d, chips, sc.Conditions.AtCapacity(f))
					got, gotErr := ev.EvalAtCapacity(p, f)
					sameWeeks(t, fmt.Sprintf("%s/%s f=%v pert %d", dname, sc.Name, f, i),
						got, want, gotErr, wantErr)
				}
			}
		}
	}
}

func TestEvaluatorChipsAndNodeCapacityMatchOracle(t *testing.T) {
	perts := perturbations(3, 6)
	m := core.Model{}
	for dname, d := range registeredDesigns() {
		for _, sc := range market.Scenarios() {
			ev, err := m.Compile(d, 10e6, sc.Conditions)
			if err != nil {
				t.Fatal(err)
			}
			for _, chips := range []float64{0, 1e3, 50e6} {
				for i, p := range perts {
					om := m
					om.Perturb = p
					want, wantErr := om.TTM(d, chips, sc.Conditions)
					got, gotErr := ev.EvalChips(p, chips)
					sameWeeks(t, fmt.Sprintf("%s/%s n=%v pert %d", dname, sc.Name, chips, i),
						got, want, gotErr, wantErr)
				}
			}
			// The finite-difference probe: every node the design uses,
			// plus one it does not (28 nm is absent from the single-node
			// 7 nm designs, N250 from most).
			probes := append([]technode.Node{technode.N250}, d.Nodes()...)
			for _, node := range probes {
				for _, f := range []float64{0.01, 0.6, 0.99, 1.01} {
					p := perts[len(perts)-1]
					om := m
					om.Perturb = p
					want, wantErr := om.TTM(d, 10e6, sc.Conditions.WithNodeCapacity(node, f))
					got, gotErr := ev.EvalChipsNodeCapacity(p, 10e6, node, f)
					if node == technode.N250 && !designUses(d, node) {
						// The oracle ignores capacity overrides on unused
						// nodes too, so the comparison still holds.
						_ = want
					}
					sameWeeks(t, fmt.Sprintf("%s/%s node=%s f=%v", dname, sc.Name, node, f),
						got, want, gotErr, wantErr)
				}
			}
		}
	}
}

func TestEvaluatorCASMatchesOracleBitForBit(t *testing.T) {
	perts := perturbations(4, 8)
	const chips = 10e6
	for mname, m := range modelVariants() {
		for dname, d := range registeredDesigns() {
			for _, sc := range market.Scenarios() {
				ev, err := m.Compile(d, chips, sc.Conditions)
				if err != nil {
					t.Fatal(err)
				}
				for i, p := range perts {
					om := m
					om.Perturb = p
					wantRes, wantErr := om.CAS(d, chips, sc.Conditions)
					got, gotErr := ev.CAS(p)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("%s/%s/%s pert %d: compiled err %v, oracle err %v",
							mname, dname, sc.Name, i, gotErr, wantErr)
					}
					if gotErr != nil {
						continue
					}
					if math.Float64bits(got) != math.Float64bits(wantRes.CAS) {
						t.Fatalf("%s/%s/%s pert %d: compiled CAS %v, oracle %v",
							mname, dname, sc.Name, i, got, wantRes.CAS)
					}
				}
				// CASAtCapacity vs oracle at swept global capacity.
				for _, f := range []float64{0.25, 0.7, 1.0} {
					wantRes, wantErr := m.CAS(d, chips, sc.Conditions.AtCapacity(f))
					got, gotErr := ev.CASAtCapacity(core.Perturbation{}, f)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("%s/%s/%s f=%v: compiled err %v, oracle err %v",
							mname, dname, sc.Name, f, gotErr, wantErr)
					}
					if gotErr == nil && math.Float64bits(got) != math.Float64bits(wantRes.CAS) {
						t.Fatalf("%s/%s/%s f=%v: compiled CAS %v, oracle %v",
							mname, dname, sc.Name, f, got, wantRes.CAS)
					}
				}
			}
		}
	}
}

func TestEvaluatorCloneMatchesOriginal(t *testing.T) {
	m := core.Model{}
	d := scenario.Zen2()
	ev, err := m.Compile(d, 10e6, market.Full().WithQueueAll(4))
	if err != nil {
		t.Fatal(err)
	}
	cl := ev.Clone()
	for _, p := range perturbations(5, 16) {
		a, errA := ev.Eval(p)
		b, errB := cl.Eval(p)
		if (errA == nil) != (errB == nil) || a != b {
			t.Fatalf("clone diverged: %v/%v vs %v/%v", a, errA, b, errB)
		}
	}
}

func TestEvaluatorZeroAllocs(t *testing.T) {
	m := core.Model{}
	for dname, d := range registeredDesigns() {
		ev, err := m.Compile(d, 10e6, market.Full().WithQueueAll(4))
		if err != nil {
			t.Fatal(err)
		}
		p := core.Perturbation{NTT: 1.05, NUT: 0.95, D0: 1.1, Rate: 0.9, FabLatency: 1.02, TAPLatency: 1.01}
		if n := testing.AllocsPerRun(200, func() {
			if _, err := ev.Eval(p); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: Eval allocates %v/op, want 0", dname, n)
		}
		if n := testing.AllocsPerRun(200, func() {
			if _, err := ev.EvalAtCapacity(p, 0.5); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: EvalAtCapacity allocates %v/op, want 0", dname, n)
		}
		if n := testing.AllocsPerRun(50, func() {
			if _, err := ev.CAS(p); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Errorf("%s: CAS allocates %v/op, want 0", dname, n)
		}
	}
}

func TestCompileRejectsInvalidInput(t *testing.T) {
	m := core.Model{}
	if _, err := m.Compile(design.Design{}, 1, market.Full()); err == nil {
		t.Error("Compile accepted an empty design")
	}
	if _, err := m.Compile(scenario.A11(), -1, market.Full()); err == nil {
		t.Error("Compile accepted a negative chip count")
	}
	if _, err := m.Compile(design.Design{Dies: []design.Die{{Name: "x", Node: 999, NTT: 1e6}}}, 1, market.Full()); err == nil {
		t.Error("Compile accepted an unknown node")
	}
}

func designUses(d design.Design, n technode.Node) bool {
	for _, node := range d.Nodes() {
		if node == n {
			return true
		}
	}
	return false
}

// sameF64 compares two float64s bit-for-bit (so Inf==Inf, and -0 != 0
// is surfaced rather than hidden).
func sameF64(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func TestEvaluatorEvalResultMatchesOracle(t *testing.T) {
	// EvalResultChips must reproduce Model.Evaluate's full breakdown —
	// every phase, every die row, every node row, the critical node —
	// bit-for-bit, across designs, scenarios and chip counts, so the
	// server can serve detailed responses from a cached evaluator.
	perts := perturbations(11, 6)
	for mname, m := range modelVariants() {
		for dname, d := range registeredDesigns() {
			for _, sc := range market.Scenarios() {
				ev, err := m.Compile(d, 1, sc.Conditions)
				if err != nil {
					t.Fatal(err)
				}
				for _, chips := range []float64{0, 1e4, 10e6} {
					for i, p := range perts {
						ctx := fmt.Sprintf("%s/%s/%s n=%v pert %d", mname, dname, sc.Name, chips, i)
						om := m
						om.Perturb = p
						want, wantErr := om.Evaluate(d, chips, sc.Conditions)
						got, gotErr := ev.EvalResultChips(p, chips)
						if (gotErr == nil) != (wantErr == nil) {
							t.Fatalf("%s: compiled err %v, oracle err %v", ctx, gotErr, wantErr)
						}
						if gotErr != nil {
							if gotErr.Error() != wantErr.Error() {
								t.Fatalf("%s: compiled err %q, oracle err %q", ctx, gotErr, wantErr)
							}
							continue
						}
						for _, ph := range []struct {
							name      string
							got, want float64
						}{
							{"DesignTime", float64(got.DesignTime), float64(want.DesignTime)},
							{"Tapeout", float64(got.Tapeout), float64(want.Tapeout)},
							{"TapeoutHours", float64(got.TapeoutHours), float64(want.TapeoutHours)},
							{"Fabrication", float64(got.Fabrication), float64(want.Fabrication)},
							{"Packaging", float64(got.Packaging), float64(want.Packaging)},
							{"TTM", float64(got.TTM), float64(want.TTM)},
						} {
							if !sameF64(ph.got, ph.want) {
								t.Fatalf("%s: %s compiled %v, oracle %v", ctx, ph.name, ph.got, ph.want)
							}
						}
						if got.CriticalNode != want.CriticalNode {
							t.Fatalf("%s: CriticalNode compiled %v, oracle %v", ctx, got.CriticalNode, want.CriticalNode)
						}
						if len(got.Dies) != len(want.Dies) || len(got.Nodes) != len(want.Nodes) {
							t.Fatalf("%s: breakdown lengths %d/%d vs %d/%d",
								ctx, len(got.Dies), len(got.Nodes), len(want.Dies), len(want.Nodes))
						}
						for j := range want.Dies {
							g, w := got.Dies[j], want.Dies[j]
							if g.Name != w.Name || g.Node != w.Node ||
								!sameF64(float64(g.Area), float64(w.Area)) ||
								!sameF64(g.Yield, w.Yield) ||
								!sameF64(g.GrossPerWafer, w.GrossPerWafer) ||
								!sameF64(float64(g.Wafers), float64(w.Wafers)) {
								t.Fatalf("%s: die %d compiled %+v, oracle %+v", ctx, j, g, w)
							}
						}
						for j := range want.Nodes {
							g, w := got.Nodes[j], want.Nodes[j]
							if g.Node != w.Node ||
								!sameF64(float64(g.Wafers), float64(w.Wafers)) ||
								!sameF64(float64(g.Queue), float64(w.Queue)) ||
								!sameF64(float64(g.Production), float64(w.Production)) ||
								!sameF64(float64(g.FabTotal), float64(w.FabTotal)) {
								t.Fatalf("%s: node %d compiled %+v, oracle %+v", ctx, j, g, w)
							}
						}
					}
				}
			}
		}
	}
}

func TestEvaluatorCASResultMatchesOracle(t *testing.T) {
	perts := perturbations(12, 4)
	m := core.Model{}
	for dname, d := range registeredDesigns() {
		for _, sc := range market.Scenarios() {
			ev, err := m.Compile(d, 1, sc.Conditions)
			if err != nil {
				t.Fatal(err)
			}
			for _, chips := range []float64{1e4, 10e6} {
				for i, p := range perts {
					ctx := fmt.Sprintf("%s/%s n=%v pert %d", dname, sc.Name, chips, i)
					om := m
					om.Perturb = p
					want, wantErr := om.CAS(d, chips, sc.Conditions)
					got, gotErr := ev.CASResultChips(p, chips)
					if (gotErr == nil) != (wantErr == nil) {
						t.Fatalf("%s: compiled err %v, oracle err %v", ctx, gotErr, wantErr)
					}
					if gotErr != nil {
						continue
					}
					if !sameF64(got.CAS, want.CAS) {
						t.Fatalf("%s: CAS compiled %v, oracle %v", ctx, got.CAS, want.CAS)
					}
					if len(got.Derivatives) != len(want.Derivatives) {
						t.Fatalf("%s: derivative count %d vs %d", ctx, len(got.Derivatives), len(want.Derivatives))
					}
					for node, w := range want.Derivatives {
						if g, ok := got.Derivatives[node]; !ok || !sameF64(g, w) {
							t.Fatalf("%s: derivative[%v] compiled %v, oracle %v", ctx, node, g, w)
						}
					}
				}
			}
		}
	}
}

func TestEvaluatorChipsAtCapacityMatchesOracle(t *testing.T) {
	// The chips+capacity override pair is what lets one cached evaluator
	// serve CAS/TTM curves for any request volume.
	m := core.Model{}
	d := scenario.Zen2()
	base := market.Full().WithQueueAll(2)
	ev, err := m.Compile(d, 1, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, chips := range []float64{1e4, 10e6} {
		for _, f := range []float64{0.25, 0.5, 1.0} {
			for i, p := range perturbations(13, 4) {
				ctx := fmt.Sprintf("n=%v f=%v pert %d", chips, f, i)
				om := m
				om.Perturb = p
				want, wantErr := om.TTM(d, chips, base.AtCapacity(f))
				got, gotErr := ev.EvalChipsAtCapacity(p, chips, f)
				sameWeeks(t, ctx, got, want, gotErr, wantErr)

				wantCAS, wantErr := om.CAS(d, chips, base.AtCapacity(f))
				gotCAS, gotErr := ev.CASChipsAtCapacity(p, chips, f)
				if (gotErr == nil) != (wantErr == nil) {
					t.Fatalf("%s: CAS compiled err %v, oracle err %v", ctx, gotErr, wantErr)
				}
				if gotErr == nil && !sameF64(gotCAS, wantCAS.CAS) {
					t.Fatalf("%s: CAS compiled %v, oracle %v", ctx, gotCAS, wantCAS.CAS)
				}
			}
		}
	}
	if _, err := ev.EvalResultChips(core.Perturbation{}, -1); err == nil {
		t.Error("EvalResultChips accepted a negative chip count")
	}
	if _, err := ev.CASResultChips(core.Perturbation{}, -1); err == nil {
		t.Error("CASResultChips accepted a negative chip count")
	}
}
