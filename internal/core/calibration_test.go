package core_test

// Calibration tests: these pin the model's A11 outputs against the
// numbers the paper reports in Figure 10 (time-to-market matrix) and
// the wafer-count ratios quoted in Section 6.2. Advanced-node values
// should land close to the paper's; legacy-node values are looser
// because the paper's exact testing/packaging calibration is not
// public (see EXPERIMENTS.md).

import (
	"math"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

// within asserts |got-want| <= tol·want.
func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Errorf("%s = %v, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Errorf("%s = %.2f, want %.2f (±%.0f%%)", name, got, want, relTol*100)
	}
}

func TestA11Fig10SmallVolume(t *testing.T) {
	// Fig. 10 row n=1K: TTM is tapeout + L_fab + L_TAP (production and
	// testing are negligible at 1 000 chips).
	paper := map[technode.Node]float64{
		technode.N250: 20.3, technode.N180: 20.4, technode.N130: 20.7,
		technode.N90: 21.0, technode.N65: 21.5, technode.N40: 22.2,
		technode.N28: 23.3, technode.N14: 29.5, technode.N7: 42.9,
		technode.N5: 53.5,
	}
	var m core.Model
	for node, want := range paper {
		got, err := m.TTM(scenario.A11At(node), 1e3, market.Full())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		within(t, "TTM(A11,1K,"+node.String()+")", float64(got), want, 0.05)
	}
}

func TestA11Fig10TenMillion(t *testing.T) {
	// Fig. 10 row n=10M. Advanced nodes (>= 28 nm class throughput,
	// small dies) should be tight; legacy nodes reflect our own
	// testing/packaging calibration and get a wider band.
	tight := map[technode.Node]float64{
		technode.N65: 29.6, technode.N40: 25.4, technode.N28: 24.8,
		technode.N14: 30.1, technode.N7: 43.1, technode.N5: 53.7,
	}
	loose := map[technode.Node]float64{
		technode.N250: 135, technode.N180: 37.2, technode.N130: 47.9,
		technode.N90: 51.3,
	}
	var m core.Model
	for node, want := range tight {
		got, err := m.TTM(scenario.A11At(node), 10e6, market.Full())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		within(t, "TTM(A11,10M,"+node.String()+")", float64(got), want, 0.10)
	}
	for node, want := range loose {
		got, err := m.TTM(scenario.A11At(node), 10e6, market.Full())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		within(t, "TTM(A11,10M,"+node.String()+")", float64(got), want, 0.30)
	}
}

func TestA11WaferRatios(t *testing.T) {
	// Section 6.2: producing A11 at 5 nm requires 1.84x fewer wafers
	// than 7 nm and 6.44x fewer than 14 nm; 14 nm requires 3.16x fewer
	// than 28 nm.
	var m core.Model
	wafers := func(node technode.Node) float64 {
		r, err := m.Evaluate(scenario.A11At(node), 10e6, market.Full())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		return float64(r.Dies[0].Wafers)
	}
	w28, w14, w7, w5 := wafers(technode.N28), wafers(technode.N14), wafers(technode.N7), wafers(technode.N5)
	within(t, "wafers(7nm)/wafers(5nm)", w7/w5, 1.84, 0.15)
	within(t, "wafers(14nm)/wafers(5nm)", w14/w5, 6.44, 0.15)
	within(t, "wafers(28nm)/wafers(14nm)", w28/w14, 3.16, 0.15)
}

func TestA11LegacyDieGeometry(t *testing.T) {
	// Section 6.2: a 4.3 B-transistor die at 250 nm fits ~43 dies per
	// 300 mm wafer (before edge losses) with ~48% expected yield.
	var m core.Model
	r, err := m.Evaluate(scenario.A11At(technode.N250), 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	d := r.Dies[0]
	within(t, "yield(A11@250nm)", d.Yield, 0.48, 0.07)
	if d.Area < 1500 || d.Area > 1800 {
		t.Errorf("area(A11@250nm) = %.0f mm², want ~1650", float64(d.Area))
	}
}

func TestA11FastestNodeAt10M(t *testing.T) {
	// Fig. 7: the 28 nm process has the quickest time-to-market for
	// 10 M A11 chips.
	var m core.Model
	best, bestTTM := technode.Node(0), math.Inf(1)
	for _, node := range technode.Producing() {
		got, err := m.TTM(scenario.A11At(node), 10e6, market.Full())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		if float64(got) < bestTTM {
			best, bestTTM = node, float64(got)
		}
	}
	if best != technode.N28 {
		t.Errorf("fastest node for 10M A11 = %s (%.1f wk), want 28nm", best, bestTTM)
	}
}

func TestA11CASOrderingFig9(t *testing.T) {
	// Fig. 9: at full capacity, CAS(7nm) > CAS(14nm) > CAS(5nm) >
	// CAS(28nm) > CAS(40nm) for 10 M A11 chips.
	var m core.Model
	cas := func(node technode.Node) float64 {
		r, err := m.CAS(scenario.A11At(node), 10e6, market.Full())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		return r.CAS
	}
	order := []technode.Node{technode.N7, technode.N14, technode.N5, technode.N28, technode.N40}
	vals := make([]float64, len(order))
	for i, n := range order {
		vals[i] = cas(n)
	}
	for i := 1; i < len(vals); i++ {
		if !(vals[i-1] > vals[i]) {
			t.Errorf("CAS ordering violated: CAS(%s)=%.0f !> CAS(%s)=%.0f",
				order[i-1], vals[i-1], order[i], vals[i])
		}
	}
}
