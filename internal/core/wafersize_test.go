package core_test

// The paper evaluates everything on 300 mm-equivalent wafers and
// footnotes that some legacy lines physically run 200 mm. These tests
// exercise the un-normalized path: a node whose line runs 200 mm
// yields ~2.4x fewer gross dies per wafer, so the same order needs
// more wafers and more production time.

import (
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/cost"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

// db200 returns a database whose 180 nm line runs physical 200 mm
// wafers.
func db200(t *testing.T) *technode.Database {
	t.Helper()
	p := technode.MustLookup(technode.N180)
	p.WaferDiameterMM = 200
	db, err := (*technode.Database)(nil).With(p)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSmallerWafersNeedMoreOfThem(t *testing.T) {
	d := scenario.A11At(technode.N180)
	var m300 core.Model
	m200 := core.Model{Nodes: db200(t)}
	r300, err := m300.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	r200, err := m200.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	// Area ratio 300²/200² = 2.25; edge losses make the gross-die gap
	// a bit larger.
	ratio := float64(r200.Dies[0].Wafers) / float64(r300.Dies[0].Wafers)
	if ratio < 2.25 || ratio > 3.5 {
		t.Errorf("200mm wafer ratio = %.2f, want in [2.25, 3.5]", ratio)
	}
	if r200.TTM <= r300.TTM {
		t.Error("200mm line should be slower at the same wafer rate")
	}
}

func TestWaferOverrideWinsOverNode(t *testing.T) {
	// An explicit model-level wafer overrides the node's diameter.
	d := scenario.A11At(technode.N180)
	m := core.Model{Nodes: db200(t)}
	m.Wafer.DiameterMM = 300
	var base core.Model
	rOverride, err := m.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	rBase, err := base.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if rOverride.Dies[0].GrossPerWafer != rBase.Dies[0].GrossPerWafer {
		t.Error("explicit 300mm override should match the default geometry")
	}
}

func TestCostSeesWaferSizeToo(t *testing.T) {
	d := scenario.A11At(technode.N180)
	var c300 cost.Model
	c200 := cost.Model{Nodes: db200(t)}
	b300, err := c300.Evaluate(d, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	b200, err := c200.Evaluate(d, 10e6)
	if err != nil {
		t.Fatal(err)
	}
	if b200.WaferCount <= b300.WaferCount {
		t.Error("cost model must count 200mm wafers consistently with the TTM model")
	}
}
