package core

import (
	"context"
	"fmt"
	"math"

	"ttmcas/internal/design"
	"ttmcas/internal/fabsim"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

// Operational evaluation: the analytic model (Eqs. 3–5) assumes
// constant market conditions for the whole fabrication phase. Real
// disruptions — a fab fire in week 3, a storm with a two-week recovery
// — change capacity mid-run. EvaluateOperational keeps the analytic
// tapeout and packaging phases but replaces the fabrication phase with
// the discrete-event pipeline of internal/fabsim, run once per process
// node under a per-node disruption schedule.

// DisruptionSchedule maps process nodes to their capacity timelines.
type DisruptionSchedule map[technode.Node][]fabsim.Disruption

// OperationalResult extends the analytic Result with the simulated
// fabrication outcome.
type OperationalResult struct {
	// Analytic is the closed-form evaluation under the *initial*
	// conditions (what a planner would have promised).
	Analytic Result
	// Fabrication is the simulated fabrication phase: the slowest
	// node's last-lot fab completion.
	Fabrication units.Weeks
	// TTM re-sums Eq. 1 with the simulated fabrication phase.
	TTM units.Weeks
	// PerNode details each node's simulated run.
	PerNode map[technode.Node]fabsim.Result
	// Slip is the simulated TTM minus the analytic promise.
	Slip units.Weeks
}

// EvaluateOperational simulates producing n chips of the design under
// market conditions c while the given disruptions unfold. Lots default
// to 25 wafers; the TAP stage throughput is unbounded, matching the
// analytic model's assumption.
func (m Model) EvaluateOperational(d design.Design, n float64, c market.Conditions, sched DisruptionSchedule) (OperationalResult, error) {
	return m.EvaluateOperationalCtx(context.Background(), d, n, c, sched)
}

// EvaluateOperationalCtx is EvaluateOperational under a context: each
// per-node discrete-event simulation checks for cancellation, so a
// timeline job hitting its deadline mid-study stops promptly.
func (m Model) EvaluateOperationalCtx(ctx context.Context, d design.Design, n float64, c market.Conditions, sched DisruptionSchedule) (OperationalResult, error) {
	analytic, err := m.Evaluate(d, n, c)
	if err != nil {
		return OperationalResult{}, err
	}
	out := OperationalResult{
		Analytic: analytic,
		PerNode:  make(map[technode.Node]fabsim.Result, len(analytic.Nodes)),
	}
	for _, nf := range analytic.Nodes {
		p, err := m.Nodes.Lookup(nf.Node)
		if err != nil {
			return OperationalResult{}, err
		}
		rate := c.Rate(p)
		if rate <= 0 {
			return OperationalResult{}, fmt.Errorf("core: node %s has no production to simulate", nf.Node)
		}
		cfg := fabsim.Config{
			Rate:       rate,
			FabLatency: p.FabLatency,
			TAPLatency: p.TAPLatency,
		}
		res, err := fabsim.RunCtx(ctx, cfg, float64(nf.Wafers), c.QueueWafers(p), sched[nf.Node])
		if err != nil {
			return OperationalResult{}, fmt.Errorf("core: simulating %s: %w", nf.Node, err)
		}
		out.PerNode[nf.Node] = res
		if res.LastFabComplete > out.Fabrication {
			out.Fabrication = res.LastFabComplete
		}
	}
	out.TTM = analytic.DesignTime + analytic.Tapeout + out.Fabrication + analytic.Packaging
	out.Slip = out.TTM - analytic.TTM
	if math.IsNaN(float64(out.Slip)) {
		out.Slip = 0
	}
	return out, nil
}
