package core

import (
	"fmt"
	"math"

	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

// The Chip Agility Score (Eq. 8) quantifies a design's resilience to
// production-side supply changes:
//
//	CAS = ( Σ_{p_i ∈ d} | ∂TTM/∂μ_W(p_i) | )^(−1)
//
// A higher CAS means the design's time-to-market moves less when wafer
// production rates move, i.e. the architecture is less bottlenecked by
// the chip creation process. CAS is measured in wafers/week² and, as
// Section 4 notes, excludes the design and tapeout phases (they are
// upstream of production); the derivative here therefore acts only on
// the fabrication and packaging phases, which is automatic because the
// upstream phases do not depend on μ_W.

// DefaultDerivativeStep is the relative step (as a fraction of each
// node's full-capacity rate) used by the central-difference derivative.
const DefaultDerivativeStep = 0.01

// CASResult reports the agility score and its per-node composition.
type CASResult struct {
	// CAS is the Chip Agility Score in wafers/week².
	CAS float64
	// Derivatives holds |∂TTM/∂μ_W(p)| per node in weeks per
	// (wafer/week); the score is the inverse of their sum.
	Derivatives map[technode.Node]float64
}

// CAS computes the Chip Agility Score of producing n chips of the
// design under the given conditions, using a central difference with
// the default step. Infinite TTM (a node out of production) yields a
// CAS of zero: the design has no agility at all.
func (m Model) CAS(d design.Design, n float64, c market.Conditions) (CASResult, error) {
	return m.CASWithStep(d, n, c, DefaultDerivativeStep)
}

// CASWithStep is CAS with an explicit relative derivative step,
// exposed for the step-size ablation.
func (m Model) CASWithStep(d design.Design, n float64, c market.Conditions, step float64) (CASResult, error) {
	if step <= 0 {
		step = DefaultDerivativeStep
	}
	res := CASResult{Derivatives: make(map[technode.Node]float64)}
	g := c.GlobalCapacity
	if g == 0 {
		g = 1
	}
	sum := 0.0
	for _, node := range d.Nodes() {
		p, err := m.Nodes.Lookup(node)
		if err != nil {
			return CASResult{}, err
		}
		// Finite difference on the node's capacity fraction f. The
		// effective rate is μ = g·f·μ_full, so dTTM/dμ =
		// ΔTTM / (Δf · g · μ_full). Central where possible, forward at
		// the capacity floor.
		f0 := nodeFactor(c, node)
		fUp, fDown := f0+step, f0-step
		if fDown <= 0 {
			fDown = f0
		}
		up, err := m.TTM(d, n, c.WithNodeCapacity(node, fUp))
		if err != nil {
			return CASResult{}, err
		}
		down, err := m.TTM(d, n, c.WithNodeCapacity(node, fDown))
		if err != nil {
			return CASResult{}, err
		}
		if math.IsInf(float64(up), 0) || math.IsInf(float64(down), 0) {
			res.Derivatives[node] = math.Inf(1)
			sum = math.Inf(1)
			continue
		}
		der := math.Abs(float64(up-down)) / ((fUp - fDown) * g * float64(p.WaferRate))
		res.Derivatives[node] = der
		sum += der
	}
	if sum <= 0 {
		// TTM is locally flat in every node's rate (e.g. zero chips):
		// the design is perfectly agile; report +Inf explicitly.
		res.CAS = math.Inf(1)
		return res, nil
	}
	res.CAS = 1 / sum
	if math.IsInf(sum, 1) {
		res.CAS = 0
	}
	return res, nil
}

// nodeFactor reports the node-specific capacity multiplier currently in
// c (default 1), so the finite difference perturbs around the actual
// operating point.
func nodeFactor(c market.Conditions, n technode.Node) float64 {
	if f, ok := c.NodeCapacity[n]; ok {
		return f
	}
	return 1
}

// CASPoint is one sample of a CAS-versus-capacity curve.
type CASPoint struct {
	// Capacity is the global capacity fraction in (0, 1].
	Capacity float64
	// CAS is the agility score at that capacity.
	CAS float64
	// TTM is the time-to-market at that capacity, for the paired
	// curves of Fig. 3.
	TTM units.Weeks
}

// CASCurve evaluates CAS and TTM across a sweep of global capacity
// fractions (the x-axis of Figs. 3, 9, 12 and 13c). Fractions must be
// positive; points where production stalls report CAS 0 and infinite
// TTM.
func (m Model) CASCurve(d design.Design, n float64, base market.Conditions, fractions []float64) ([]CASPoint, error) {
	// One compiled evaluator serves the whole sweep: each curve point is
	// 1 + 2·|nodes| evaluations, so the curve rides the zero-allocation
	// kernel instead of re-resolving the design per point.
	ev, err := m.Compile(d, n, base)
	if err != nil {
		return nil, err
	}
	pts := make([]CASPoint, 0, len(fractions))
	for _, f := range fractions {
		if f <= 0 {
			return nil, fmt.Errorf("core: capacity fraction %v must be positive", f)
		}
		ttm, err := ev.EvalAtCapacity(m.Perturb, f)
		if err != nil {
			return nil, err
		}
		cas, err := ev.CASAtCapacity(m.Perturb, f)
		if err != nil {
			return nil, err
		}
		pts = append(pts, CASPoint{Capacity: f, CAS: cas, TTM: ttm})
	}
	return pts, nil
}
