package core_test

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

// The batch kernel must be indistinguishable from the per-call compiled
// path: same float64 bits per sample, and per-sample failures carrying
// the exact error values Eval would return, reported through the
// compact index list. These tests hold that across every design ×
// scenario × model variant, for the condition-column path, and for the
// degenerate batch shapes (empty, len-1, ragged).

// columns converts a perturbation cloud to the structure-of-arrays form.
func columns(perts []core.Perturbation) *core.Batch {
	b := &core.Batch{
		NTT:        make([]float64, len(perts)),
		NUT:        make([]float64, len(perts)),
		D0:         make([]float64, len(perts)),
		Rate:       make([]float64, len(perts)),
		FabLatency: make([]float64, len(perts)),
		TAPLatency: make([]float64, len(perts)),
	}
	for i, p := range perts {
		b.NTT[i], b.NUT[i], b.D0[i] = p.NTT, p.NUT, p.D0
		b.Rate[i], b.FabLatency[i], b.TAPLatency[i] = p.Rate, p.FabLatency, p.TAPLatency
	}
	return b
}

// batchErrAt returns the recorded error for sample s, or nil.
func batchErrAt(errs *core.BatchErrors, s int) error {
	for i, idx := range errs.Idx {
		if idx == s {
			return errs.Errs[i]
		}
	}
	return nil
}

func sameFloat(t *testing.T, ctx string, got, want float64, gotErr, wantErr error) {
	t.Helper()
	if (gotErr == nil) != (wantErr == nil) {
		t.Fatalf("%s: batch err %v, per-call err %v", ctx, gotErr, wantErr)
	}
	if gotErr != nil {
		if gotErr.Error() != wantErr.Error() {
			t.Fatalf("%s: batch err %q, per-call err %q", ctx, gotErr, wantErr)
		}
		return
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: batch %v (%#x), per-call %v (%#x)", ctx,
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func TestEvalBatchMatchesEvalBitForBit(t *testing.T) {
	perts := perturbations(11, 24)
	b := columns(perts)
	out := make([]units.Weeks, len(perts))
	var errs core.BatchErrors
	const chips = 10e6
	for mname, m := range modelVariants() {
		for dname, d := range registeredDesigns() {
			for _, sc := range market.Scenarios() {
				ev, err := m.Compile(d, chips, sc.Conditions)
				if err != nil {
					t.Fatalf("%s/%s/%s: Compile: %v", mname, dname, sc.Name, err)
				}
				if err := ev.EvalBatch(b, out, &errs); err != nil {
					t.Fatalf("%s/%s/%s: EvalBatch: %v", mname, dname, sc.Name, err)
				}
				ref := ev.Clone()
				for i, p := range perts {
					want, wantErr := ref.Eval(p)
					sameWeeks(t, fmt.Sprintf("%s/%s/%s sample %d", mname, dname, sc.Name, i),
						out[i], want, batchErrAt(&errs, i), wantErr)
				}
			}
		}
	}
}

func TestCASBatchMatchesCASBitForBit(t *testing.T) {
	perts := perturbations(12, 12)
	b := columns(perts)
	out := make([]float64, len(perts))
	var errs core.BatchErrors
	const chips = 10e6
	m := core.Model{}
	for dname, d := range registeredDesigns() {
		for _, sc := range market.Scenarios() {
			ev, err := m.Compile(d, chips, sc.Conditions)
			if err != nil {
				t.Fatal(err)
			}
			if err := ev.CASBatch(b, out, &errs); err != nil {
				t.Fatal(err)
			}
			ref := ev.Clone()
			for i, p := range perts {
				want, wantErr := ref.CAS(p)
				sameFloat(t, fmt.Sprintf("%s/%s sample %d", dname, sc.Name, i),
					out[i], want, batchErrAt(&errs, i), wantErr)
			}
		}
	}
}

func TestBatchAtCapacityMatchesPerCall(t *testing.T) {
	perts := perturbations(13, 8)
	b := columns(perts)
	wout := make([]units.Weeks, len(perts))
	cout := make([]float64, len(perts))
	var errs core.BatchErrors
	m := core.Model{}
	for dname, d := range registeredDesigns() {
		ev, err := m.Compile(d, 10e6, market.Full())
		if err != nil {
			t.Fatal(err)
		}
		ref := ev.Clone()
		for _, g := range []float64{0.05, 0.3, 0.75, 1.0} {
			if err := ev.EvalBatchAtCapacity(b, g, wout, &errs); err != nil {
				t.Fatal(err)
			}
			for i, p := range perts {
				want, wantErr := ref.EvalAtCapacity(p, g)
				sameWeeks(t, fmt.Sprintf("%s ttm@%v sample %d", dname, g, i),
					wout[i], want, batchErrAt(&errs, i), wantErr)
			}
			if err := ev.CASBatchAtCapacity(b, g, cout, &errs); err != nil {
				t.Fatal(err)
			}
			for i, p := range perts {
				want, wantErr := ref.CASAtCapacity(p, g)
				sameFloat(t, fmt.Sprintf("%s cas@%v sample %d", dname, g, i),
					cout[i], want, batchErrAt(&errs, i), wantErr)
			}
		}
	}
}

func TestBatchChipsColumnMatchesEvalChips(t *testing.T) {
	m := core.Model{}
	d := scenario.Zen2()
	ev, err := m.Compile(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	chips := []float64{0, 1, 1e3, 5e6, 40e6, -3, 10e6}
	b := &core.Batch{Chips: chips}
	out := make([]units.Weeks, len(chips))
	var errs core.BatchErrors
	if err := ev.EvalBatch(b, out, &errs); err != nil {
		t.Fatal(err)
	}
	ref := ev.Clone()
	for i, n := range chips {
		want, wantErr := ref.EvalChips(core.Perturbation{}, n)
		sameWeeks(t, fmt.Sprintf("chips %v", n), out[i], want, batchErrAt(&errs, i), wantErr)
	}
	if idx, err := errs.First(); idx != 5 || err == nil || !strings.Contains(err.Error(), "negative chip count") {
		t.Fatalf("First() = (%d, %v), want the negative-chips failure at index 5", idx, err)
	}
}

// TestSetConditionsMatchesCompile pins the condition-column path the
// timeline driver uses: one evaluator compiled at the baseline, with
// per-sample Global/Factor/Queue columns filled via SetConditions, must
// reproduce an evaluator compiled directly at each sample's conditions.
func TestSetConditionsMatchesCompile(t *testing.T) {
	m := core.Model{}
	scenarios := market.Scenarios()
	perts := []core.Perturbation{{}, {Rate: 0.8, FabLatency: 1.3}}
	for dname, d := range registeredDesigns() {
		ev, err := m.Compile(d, 10e6, scenarios[0].Conditions)
		if err != nil {
			t.Fatal(err)
		}
		b := &core.Batch{}
		ev.ResizeConditions(b, len(scenarios))
		for s, sc := range scenarios {
			ev.SetConditions(b, s, sc.Conditions)
		}
		for _, p := range perts {
			b.NTT = nil // perturbation applied uniformly below
			pb := *b
			if p != (core.Perturbation{}) {
				n := len(scenarios)
				fill := func(v float64) []float64 {
					col := make([]float64, n)
					for i := range col {
						col[i] = v
					}
					return col
				}
				pb.NTT, pb.NUT, pb.D0 = fill(p.NTT), fill(p.NUT), fill(p.D0)
				pb.Rate, pb.FabLatency, pb.TAPLatency = fill(p.Rate), fill(p.FabLatency), fill(p.TAPLatency)
			}
			wout := make([]units.Weeks, len(scenarios))
			cout := make([]float64, len(scenarios))
			var werrs, cerrs core.BatchErrors
			if err := ev.EvalBatch(&pb, wout, &werrs); err != nil {
				t.Fatal(err)
			}
			if err := ev.CASBatch(&pb, cout, &cerrs); err != nil {
				t.Fatal(err)
			}
			for s, sc := range scenarios {
				ref, err := m.Compile(d, 10e6, sc.Conditions)
				if err != nil {
					t.Fatal(err)
				}
				wantW, wErr := ref.Eval(p)
				sameWeeks(t, fmt.Sprintf("%s/%s ttm", dname, sc.Name), wout[s], wantW, batchErrAt(&werrs, s), wErr)
				wantC, cErr := ref.CAS(p)
				sameFloat(t, fmt.Sprintf("%s/%s cas", dname, sc.Name), cout[s], wantC, batchErrAt(&cerrs, s), cErr)
			}
		}
	}
}

// TestEvalBatchErrorIndices drives a mixed batch where some samples
// blow the die past the wafer: the failing index set, the error values
// and the zeroed outputs must all match the per-call path.
func TestEvalBatchErrorIndices(t *testing.T) {
	m := core.Model{}
	d := scenario.A11At(technode.N7)
	ev, err := m.Compile(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	// NTT multipliers: huge values push the die area past the wafer.
	ntt := []float64{1, 1e6, 0.9, 5e5, 1.1, 1e6}
	b := &core.Batch{NTT: ntt}
	out := make([]units.Weeks, len(ntt))
	var errs core.BatchErrors
	if err := ev.EvalBatch(b, out, &errs); err != nil {
		t.Fatal(err)
	}
	ref := ev.Clone()
	failWant := 0
	for i, v := range ntt {
		want, wantErr := ref.Eval(core.Perturbation{NTT: v})
		sameWeeks(t, fmt.Sprintf("sample %d", i), out[i], want, batchErrAt(&errs, i), wantErr)
		if wantErr != nil {
			failWant++
			if out[i] != 0 {
				t.Errorf("sample %d: failed sample output = %v, want 0", i, out[i])
			}
		}
	}
	if failWant == 0 {
		t.Fatal("test needs at least one failing sample; NTT blow-up did not fail")
	}
	if errs.Len() != failWant {
		t.Fatalf("errs.Len() = %d, want %d", errs.Len(), failWant)
	}
	if idx, _ := errs.First(); idx != 1 {
		t.Fatalf("First() index = %d, want 1", idx)
	}
}

// TestBatchShapes fuzzes the degenerate batch shapes: empty, len-1,
// ragged, mismatched outputs, and misuse of the at-capacity variants.
func TestBatchShapes(t *testing.T) {
	m := core.Model{}
	ev, err := m.Compile(scenario.Zen2(), 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	var errs core.BatchErrors

	// Empty: all-nil batch with empty output is a no-op.
	if err := ev.EvalBatch(&core.Batch{}, nil, &errs); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	// All-nil batch with a non-empty output evaluates the unperturbed
	// point once per slot.
	out := make([]units.Weeks, 3)
	if err := ev.EvalBatch(&core.Batch{}, out, &errs); err != nil {
		t.Fatal(err)
	}
	want, _ := ev.Clone().Eval(core.Perturbation{})
	for i, v := range out {
		if v != want {
			t.Fatalf("all-nil batch out[%d] = %v, want %v", i, v, want)
		}
	}

	// Len-1.
	one := &core.Batch{NTT: []float64{1.05}}
	if err := ev.EvalBatch(one, out[:1], &errs); err != nil {
		t.Fatal(err)
	}
	want, _ = ev.Clone().Eval(core.Perturbation{NTT: 1.05})
	if out[0] != want {
		t.Fatalf("len-1 batch = %v, want %v", out[0], want)
	}

	// Ragged columns are a structural error, not a panic.
	ragged := &core.Batch{NTT: make([]float64, 4), D0: make([]float64, 5)}
	if err := ev.EvalBatch(ragged, make([]units.Weeks, 4), &errs); err == nil {
		t.Fatal("ragged batch: want error")
	}
	raggedF := &core.Batch{Global: make([]float64, 2), Factor: [][]float64{make([]float64, 3), nil}}
	if ev.NodeCount() == 2 {
		if err := ev.EvalBatch(raggedF, make([]units.Weeks, 2), &errs); err == nil {
			t.Fatal("ragged Factor column: want error")
		}
	}

	// Output length mismatch.
	if err := ev.EvalBatch(one, make([]units.Weeks, 2), &errs); err == nil {
		t.Fatal("output length mismatch: want error")
	}
	// Wrong Factor outer length.
	badOuter := &core.Batch{Global: make([]float64, 2), Factor: make([][]float64, ev.NodeCount()+1)}
	if err := ev.EvalBatch(badOuter, make([]units.Weeks, 2), &errs); err == nil {
		t.Fatal("wrong Factor outer length: want error")
	}
	// Global column + scalar capacity override.
	g := &core.Batch{Global: []float64{0.5}}
	if err := ev.EvalBatchAtCapacity(g, 0.7, out[:1], &errs); err == nil {
		t.Fatal("Global column with scalar override: want error")
	}
	if err := ev.CASBatchAtCapacity(g, 0.7, []float64{0}, &errs); err == nil {
		t.Fatal("CAS Global column with scalar override: want error")
	}
	// A nil error sink is structural misuse.
	if err := ev.EvalBatch(one, out[:1], nil); err == nil {
		t.Fatal("nil errs: want error")
	}
}

// TestBatchCloneIndependence: concurrent clones each grow their own
// batch scratch; results match the parent bit for bit.
func TestBatchCloneIndependence(t *testing.T) {
	m := core.Model{}
	ev, err := m.Compile(scenario.Zen2(), 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	perts := perturbations(14, 16)
	b := columns(perts)
	wantOut := make([]units.Weeks, len(perts))
	var errs core.BatchErrors
	if err := ev.EvalBatch(b, wantOut, &errs); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func() {
			cl := ev.Clone()
			out := make([]units.Weeks, len(perts))
			var es core.BatchErrors
			for r := 0; r < 50; r++ {
				if err := cl.EvalBatch(b, out, &es); err != nil {
					done <- err
					return
				}
				for i := range out {
					if out[i] != wantOut[i] {
						done <- fmt.Errorf("clone out[%d] = %v, want %v", i, out[i], wantOut[i])
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
