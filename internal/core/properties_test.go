package core_test

// Property-based invariants of the TTM model beyond the calibration
// tests: structural identities that must hold for arbitrary designs.

import (
	"math"
	"testing"
	"testing/quick"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

// randDesign builds a structurally valid single-die design from fuzz
// bytes, restricted to producing nodes.
func randDesign(nttRaw, nutRaw uint32, nodeSel uint8) design.Design {
	nodes := technode.Producing()
	node := nodes[int(nodeSel)%len(nodes)]
	ntt := float64(nttRaw%4_000_000_000) + 1e6
	nut := math.Min(float64(nutRaw), ntt)
	return design.Design{
		Name: "fuzz",
		Dies: []design.Die{{Name: "die", Node: node, NTT: units.Transistors(ntt), NUT: units.Transistors(nut)}},
	}
}

func TestPropBlocksEquivalentToExplicitCounts(t *testing.T) {
	// A die described as blocks must evaluate identically to the same
	// die described by explicit NTT/NUT.
	var m core.Model
	f := func(coreTr uint32, inst uint8) bool {
		tr := units.Transistors(float64(coreTr%50_000_000) + 1e5)
		n := int(inst%8) + 1
		blocks := design.Design{Dies: []design.Die{{
			Name: "b", Node: technode.N28,
			Blocks: []design.Block{{Name: "core", Transistors: tr, Instances: n}},
		}}}
		explicit := design.Design{Dies: []design.Die{{
			Name: "e", Node: technode.N28,
			NTT: tr * units.Transistors(n), NUT: tr,
		}}}
		tb, err1 := m.TTM(blocks, 1e6, market.Full())
		te, err2 := m.TTM(explicit, 1e6, market.Full())
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(float64(tb-te)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropReuseNeverSlowsTapeout(t *testing.T) {
	// Marking blocks pre-verified (IP reuse) can only shrink tapeout
	// and leaves fabrication/packaging untouched.
	var m core.Model
	f := func(nttRaw, nutRaw uint32, nodeSel uint8) bool {
		d := randDesign(nttRaw, nutRaw, nodeSel)
		reused := d
		reused.Dies = append([]design.Die(nil), d.Dies...)
		reused.Dies[0].NUT = 0
		r1, err1 := m.Evaluate(d, 1e6, market.Full())
		r2, err2 := m.Evaluate(reused, 1e6, market.Full())
		if err1 != nil || err2 != nil {
			return true // oversized die etc.: nothing to compare
		}
		return r2.Tapeout <= r1.Tapeout &&
			math.Abs(float64(r1.Fabrication-r2.Fabrication)) < 1e-9 &&
			math.Abs(float64(r1.Packaging-r2.Packaging)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropTeamScalingOnlyAffectsTapeout(t *testing.T) {
	var m core.Model
	d := randDesign(3_000_000_000, 400_000_000, 6)
	d.TapeoutTeam = 50
	r50, err := m.Evaluate(d, 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	d.TapeoutTeam = 100
	r100, err := m.Evaluate(d, 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(r50.Tapeout)-2*float64(r100.Tapeout)) > 1e-9 {
		t.Errorf("doubling the team should halve tapeout: %v vs %v", r50.Tapeout, r100.Tapeout)
	}
	if r50.Fabrication != r100.Fabrication || r50.Packaging != r100.Packaging {
		t.Error("team size must not touch downstream phases")
	}
}

func TestPropWaferDemandScalesLinearly(t *testing.T) {
	// Doubling the chip count doubles wafer demand exactly (the yield
	// model is per-die, not per-order).
	var m core.Model
	f := func(nttRaw, nutRaw uint32, nodeSel uint8) bool {
		d := randDesign(nttRaw, nutRaw, nodeSel)
		r1, err1 := m.Evaluate(d, 1e6, market.Full())
		r2, err2 := m.Evaluate(d, 2e6, market.Full())
		if err1 != nil || err2 != nil {
			return true
		}
		return math.Abs(float64(r2.Dies[0].Wafers)-2*float64(r1.Dies[0].Wafers)) < 1e-6*float64(r2.Dies[0].Wafers)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropCASQuadraticInCapacity(t *testing.T) {
	// For a single-node design with no queue, TTM = const + N_W/(fμ),
	// so CAS(f) = (fμ)²/N_W: halving capacity quarters the score.
	var m core.Model
	d := randDesign(2_000_000_000, 100_000_000, 4)
	full, err := m.CAS(d, 1e7, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	half, err := m.CAS(d, 1e7, market.Full().AtCapacity(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := full.CAS / half.CAS; math.Abs(ratio-4) > 0.05 {
		t.Errorf("CAS(100%%)/CAS(50%%) = %v, want ~4", ratio)
	}
}

func TestPropPackagingSyncDominance(t *testing.T) {
	// A multi-die design is never faster than its slowest die built
	// alone at the same per-package volume (the Eq. 3 max).
	var m core.Model
	combined := design.Design{
		Name: "combined",
		Dies: []design.Die{
			{Name: "a", Node: technode.N7, NTT: 3e9, NUT: 2e8},
			{Name: "b", Node: technode.N40, NTT: 2e9, NUT: 1e8},
		},
	}
	rc, err := m.Evaluate(combined, 1e7, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	for _, die := range combined.Dies {
		solo := design.Design{Name: die.Name, Dies: []design.Die{die}}
		rs, err := m.Evaluate(solo, 1e7, market.Full())
		if err != nil {
			t.Fatal(err)
		}
		if rc.Fabrication < rs.Fabrication-1e-9 {
			t.Errorf("combined fabrication %v beats solo %s %v", rc.Fabrication, die.Name, rs.Fabrication)
		}
	}
}

func TestPropSameNodeDiesShareCapacity(t *testing.T) {
	// Two die types on one node take as long as one die type with the
	// same total wafer demand: per-node aggregation, not per-die lines.
	var m core.Model
	split := design.Design{
		Name: "split",
		Dies: []design.Die{
			{Name: "a", Node: technode.N7, NTT: 1.9e9, NUT: 1e8},
			{Name: "b", Node: technode.N7, NTT: 1.9e9, NUT: 1e8},
		},
	}
	r, err := m.Evaluate(split, 1e7, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 1 {
		t.Fatalf("nodes = %v", r.Nodes)
	}
	wantWafers := float64(r.Dies[0].Wafers) + float64(r.Dies[1].Wafers)
	if math.Abs(float64(r.Nodes[0].Wafers)-wantWafers) > 1e-9 {
		t.Errorf("node wafers %v != sum of die wafers %v", float64(r.Nodes[0].Wafers), wantWafers)
	}
}
