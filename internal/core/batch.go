package core

import (
	"fmt"
	"math"

	"ttmcas/internal/geometry"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
	"ttmcas/internal/yield"
)

// This file implements the structure-of-arrays batch entry points of
// the compiled kernel. Eval runs one perturbation per call; the
// Monte-Carlo, Sobol, sweep and timeline drivers call it 10³–10⁶ times
// in tight loops, paying per-call dispatch (argument marshalling,
// bounds-checked scratch resets, error wrapping) on every sample.
// EvalBatch takes the whole sample set as flat float64 columns — one
// slice per perturbed input, shared condition columns per node — and
// evaluates it phase by phase: each compiled table row (node, die) is
// resolved once and then applied across the dense sample columns, so
// the per-node resolution work is hoisted out of the per-sample path
// and the remaining inner loops are branch-light slice walks.
//
// The arithmetic mirrors Evaluator.eval operation for operation, in
// the same order, so batch results are bit-for-bit identical to the
// per-call path (held by the property tests in batch_test.go), and
// per-element failures reproduce the exact per-call error values.
//
// Error convention: structural misuse (ragged columns, wrong output
// length, nil error sink) is reported as the call's error return;
// per-sample evaluation failures (a die too large under its perturbed
// transistor count, an invalid salvage yield) are collected into a
// compact BatchErrors index list and the corresponding output entries
// are zeroed, exactly the value Eval returns alongside its error. A
// sample fails at its first failing die, like the per-call path, and
// later phases skip failed samples.
//
// Pooling rules for callers: a Batch, its output slices and the
// BatchErrors are plain memory — pool them per worker (sync.Pool or a
// per-chunk struct) and reuse them across calls, and steady-state
// allocations drop to zero. The Evaluator's own batch scratch grows to
// the largest batch length seen and is retained; like the per-call
// scratch it makes the Evaluator single-goroutine — parallel drivers
// give each worker its own Clone.

// Batch is a structure-of-arrays sample set for EvalBatch/CASBatch.
// Every column is either nil (all samples take the default: an
// unperturbed input, the compiled chip count / conditions) or a slice
// of one value per sample; all non-nil columns must share one length.
type Batch struct {
	// NTT..TAPLatency are the Perturbation fields as columns; entry s
	// of each is Perturbation.<Field> of sample s (zero and negative
	// values mean "unperturbed", as in the scalar Perturbation).
	NTT, NUT, D0, Rate, FabLatency, TAPLatency []float64

	// Chips overrides the compiled final-chip count per sample
	// (EvalChips); negative entries fail with the per-call error.
	Chips []float64

	// Global overrides the compiled global capacity fraction per
	// sample (EvalAtCapacity); zero means "default to 1" exactly as
	// the compiled conditions do.
	Global []float64

	// Factor and Queue override the compiled per-node capacity factor
	// and queued-wafer count. They are indexed by the evaluator's
	// compiled node order (NodeIndex/NodeAt); a nil inner column keeps
	// the node's compiled value. Evaluator.SetConditions fills one
	// sample of all three condition columns from a market.Conditions.
	Factor [][]float64
	Queue  [][]float64
}

// Len returns the common length of the batch's non-nil columns, or 0
// when every column is nil (the caller's output length then sets the
// sample count). It returns an error for ragged columns.
func (b *Batch) Len() (int, error) {
	n := -1
	check := func(name string, col []float64) error {
		if col == nil {
			return nil
		}
		if n < 0 {
			n = len(col)
			return nil
		}
		if len(col) != n {
			return fmt.Errorf("core: batch column %s has length %d, want %d", name, len(col), n)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		col  []float64
	}{
		{"NTT", b.NTT}, {"NUT", b.NUT}, {"D0", b.D0}, {"Rate", b.Rate},
		{"FabLatency", b.FabLatency}, {"TAPLatency", b.TAPLatency},
		{"Chips", b.Chips}, {"Global", b.Global},
	} {
		if err := check(c.name, c.col); err != nil {
			return 0, err
		}
	}
	for i, col := range b.Factor {
		if err := check("Factor", col); err != nil {
			return 0, fmt.Errorf("core: batch Factor[%d]: %w", i, err)
		}
	}
	for i, col := range b.Queue {
		if err := check("Queue", col); err != nil {
			return 0, fmt.Errorf("core: batch Queue[%d]: %w", i, err)
		}
	}
	if n < 0 {
		n = 0
	}
	return n, nil
}

// BatchErrors is the compact per-sample error list of a batch call:
// parallel slices of failing sample indices and their error values
// (the exact errors the per-call path returns for those samples). The
// indices follow the kernel's phase order, not ascending sample
// order; First recovers the per-call "first failing sample".
type BatchErrors struct {
	Idx  []int
	Errs []error
}

// Reset empties the list, retaining capacity for reuse.
func (be *BatchErrors) Reset() {
	be.Idx = be.Idx[:0]
	be.Errs = be.Errs[:0]
}

// Len returns the number of failed samples.
func (be *BatchErrors) Len() int { return len(be.Idx) }

// First returns the failure with the lowest sample index — the error a
// serial per-call loop over the batch would have stopped at — or
// (-1, nil) when every sample succeeded.
func (be *BatchErrors) First() (int, error) {
	if len(be.Idx) == 0 {
		return -1, nil
	}
	best := 0
	for i := 1; i < len(be.Idx); i++ {
		if be.Idx[i] < be.Idx[best] {
			best = i
		}
	}
	return be.Idx[best], be.Errs[best]
}

func (be *BatchErrors) add(i int, err error) {
	be.Idx = append(be.Idx, i)
	be.Errs = append(be.Errs, err)
}

// batchScratch is the per-sample accumulator state of one batch call.
// It is lazily grown to the largest batch length seen and excluded
// from Clone, so clones start with independent (empty) batch scratch.
type batchScratch struct {
	chips  []float64 // resolved per-sample chip count
	global []float64 // resolved per-sample raw global capacity
	failed []byte    // non-zero once a sample has failed

	tapH   []float64 // accumulated tapeout hours
	tapLat []float64 // max die TAP latency (weeks)
	testW  []float64 // accumulated testing weeks
	packW  []float64 // accumulated packaging weeks
	fab    []float64 // slowest-node fabrication weeks
	wafers []float64 // node-major wafer demand, len(nodes)·n

	// CAS-only state, kept separate so the nested EvalBatch probes do
	// not clobber it.
	fUp, fDown []float64
	up, down   []units.Weeks
	sum        []float64
}

func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func (sc *batchScratch) ensure(n, nodes int) {
	sc.chips = grow(sc.chips, n)
	sc.global = grow(sc.global, n)
	if cap(sc.failed) < n {
		sc.failed = make([]byte, n)
	} else {
		sc.failed = sc.failed[:n]
	}
	sc.tapH = grow(sc.tapH, n)
	sc.tapLat = grow(sc.tapLat, n)
	sc.testW = grow(sc.testW, n)
	sc.packW = grow(sc.packW, n)
	sc.fab = grow(sc.fab, n)
	if cap(sc.wafers) < nodes*n {
		sc.wafers = make([]float64, nodes*n)
	} else {
		sc.wafers = sc.wafers[:nodes*n]
	}
}

func (sc *batchScratch) ensureCAS(n int) {
	sc.fUp = grow(sc.fUp, n)
	sc.fDown = grow(sc.fDown, n)
	sc.sum = grow(sc.sum, n)
	if cap(sc.up) < n {
		sc.up = make([]units.Weeks, n)
		sc.down = make([]units.Weeks, n)
	} else {
		sc.up, sc.down = sc.up[:n], sc.down[:n]
	}
}

// NodeCount returns the number of compiled process nodes — the outer
// length condition columns (Batch.Factor/Queue) must have.
func (e *Evaluator) NodeCount() int { return len(e.nodes) }

// NodeAt returns the process node at compiled index i.
func (e *Evaluator) NodeAt(i int) technode.Node { return e.nodes[i].node }

// NodeIndex returns the compiled index of a node, or -1 when the
// design does not use it.
func (e *Evaluator) NodeIndex(node technode.Node) int {
	for i := range e.nodes {
		if e.nodes[i].node == node {
			return i
		}
	}
	return -1
}

// ResizeConditions sizes the batch's Global/Factor/Queue condition
// columns for n samples of this evaluator, reusing their capacity, so
// a pooled Batch can be refilled via SetConditions with no steady-state
// allocations.
func (e *Evaluator) ResizeConditions(b *Batch, n int) {
	b.Global = grow(b.Global, n)
	if cap(b.Factor) < len(e.nodes) {
		b.Factor = make([][]float64, len(e.nodes))
	} else {
		b.Factor = b.Factor[:len(e.nodes)]
	}
	if cap(b.Queue) < len(e.nodes) {
		b.Queue = make([][]float64, len(e.nodes))
	} else {
		b.Queue = b.Queue[:len(e.nodes)]
	}
	for i := range e.nodes {
		b.Factor[i] = grow(b.Factor[i], n)
		b.Queue[i] = grow(b.Queue[i], n)
	}
}

// SetConditions writes market conditions c into sample s of the
// batch's condition columns (sized beforehand via ResizeConditions),
// resolving them exactly as Compile does: the raw global capacity, the
// per-node capacity factor (1 when unset) and the queued-wafer count
// fixed against the node's full-capacity rate. A batch filled this way
// evaluates bit-for-bit like an evaluator compiled at c.
func (e *Evaluator) SetConditions(b *Batch, s int, c market.Conditions) {
	b.Global[s] = c.GlobalCapacity
	for i := range e.nodes {
		nd := &e.nodes[i]
		b.Factor[i][s] = nodeFactor(c, nd.node)
		qw := 0.0
		if w, ok := c.QueueWeeks[nd.node]; ok && w > 0 {
			qw = float64(w) * nd.waferRate
		}
		b.Queue[i][s] = qw
	}
}

// colAt reads column col at sample s, defaulting to 0 (the unperturbed
// sentinel) for a nil column.
func colAt(col []float64, s int) float64 {
	if col == nil {
		return 0
	}
	return col[s]
}

// EvalBatch evaluates every sample of the batch at the compiled
// conditions, writing TTM per sample into out. out sets the sample
// count when every batch column is nil; otherwise its length must
// match the batch's. Per-sample failures land in errs (required) with
// the corresponding out entries zeroed; the returned error reports
// structural misuse only.
func (e *Evaluator) EvalBatch(b *Batch, out []units.Weeks, errs *BatchErrors) error {
	n, err := e.batchSetup(b, len(out), errs)
	if err != nil || n == 0 {
		return err
	}
	e.evalBatchInto(b, n, -1, nil, out, errs)
	e.zeroFailed(out, n)
	return nil
}

// EvalBatchAtCapacity is EvalBatch with the global capacity fraction
// overridden for every sample, the batch form of EvalAtCapacity. The
// batch must not also carry a Global column.
func (e *Evaluator) EvalBatchAtCapacity(b *Batch, global float64, out []units.Weeks, errs *BatchErrors) error {
	if b.Global != nil {
		return fmt.Errorf("core: batch has both a Global column and a scalar capacity override")
	}
	n, err := e.batchSetup(b, len(out), errs)
	if err != nil || n == 0 {
		return err
	}
	for s := 0; s < n; s++ {
		e.batch.global[s] = global
	}
	e.evalBatchInto(b, n, -1, nil, out, errs)
	e.zeroFailed(out, n)
	return nil
}

// CASBatch computes the Chip Agility Score per sample at the compiled
// conditions via the same per-node central differences as CAS, with
// the two capacity probes of each node evaluated as nested batches.
func (e *Evaluator) CASBatch(b *Batch, out []float64, errs *BatchErrors) error {
	n, err := e.batchSetup(b, len(out), errs)
	if err != nil || n == 0 {
		return err
	}
	e.casBatchInto(b, n, out, errs)
	return nil
}

// CASBatchAtCapacity is CASBatch with the global capacity fraction
// overridden for every sample.
func (e *Evaluator) CASBatchAtCapacity(b *Batch, global float64, out []float64, errs *BatchErrors) error {
	if b.Global != nil {
		return fmt.Errorf("core: batch has both a Global column and a scalar capacity override")
	}
	n, err := e.batchSetup(b, len(out), errs)
	if err != nil || n == 0 {
		return err
	}
	for s := 0; s < n; s++ {
		e.batch.global[s] = global
	}
	e.casBatchInto(b, n, out, errs)
	return nil
}

// batchSetup validates the batch against the output length, sizes the
// scratch, resolves the per-sample chip count and raw global capacity,
// resets the failure state and applies the per-call negative-chip
// check per sample.
func (e *Evaluator) batchSetup(b *Batch, outLen int, errs *BatchErrors) (int, error) {
	if errs == nil {
		return 0, fmt.Errorf("core: batch call needs a non-nil *BatchErrors")
	}
	n, err := b.Len()
	if err != nil {
		return 0, err
	}
	if n == 0 {
		n = outLen
	}
	if outLen != n {
		return 0, fmt.Errorf("core: batch output has length %d, want %d", outLen, n)
	}
	if b.Factor != nil && len(b.Factor) != len(e.nodes) {
		return 0, fmt.Errorf("core: batch Factor has %d node columns, want %d", len(b.Factor), len(e.nodes))
	}
	if b.Queue != nil && len(b.Queue) != len(e.nodes) {
		return 0, fmt.Errorf("core: batch Queue has %d node columns, want %d", len(b.Queue), len(e.nodes))
	}
	errs.Reset()
	if e.batch == nil {
		e.batch = &batchScratch{}
	}
	sc := e.batch
	sc.ensure(n, len(e.nodes))
	for s := 0; s < n; s++ {
		sc.failed[s] = 0
	}
	if b.Chips != nil {
		copy(sc.chips, b.Chips)
		for s := 0; s < n; s++ {
			if sc.chips[s] < 0 {
				sc.failed[s] = 1
				errs.add(s, fmt.Errorf("core: negative chip count %v", sc.chips[s]))
			}
		}
	} else {
		for s := 0; s < n; s++ {
			sc.chips[s] = e.chips
		}
	}
	if b.Global != nil {
		copy(sc.global, b.Global)
	} else {
		for s := 0; s < n; s++ {
			sc.global[s] = e.global
		}
	}
	return n, nil
}

// zeroFailed zeroes the outputs of failed samples, matching the zero
// value Eval returns alongside its error.
func (e *Evaluator) zeroFailed(out []units.Weeks, n int) {
	sc := e.batch
	for s := 0; s < n; s++ {
		if sc.failed[s] != 0 {
			out[s] = 0
		}
	}
}

// evalBatchInto is the batch kernel body: the three phases of eval
// (tapeout, per-die geometry/yield/wafer demand, per-node fabrication)
// each run as a compiled-table-outer, sample-inner loop, so every
// table row is resolved once per batch instead of once per sample.
// overrideIdx/overrideCol replace one node's capacity factor per
// sample (the CAS probes). Samples already marked failed are skipped;
// new failures are recorded in errs.
func (e *Evaluator) evalBatchInto(b *Batch, n int, overrideIdx int, overrideCol []float64, out []units.Weeks, errs *BatchErrors) {
	sc := e.batch
	failed := sc.failed

	// Tapeout phase (Eq. 2): per-sample accumulation in node order.
	for s := 0; s < n; s++ {
		sc.tapH[s] = 0
		sc.tapLat[s] = 0
		sc.testW[s] = 0
		sc.packW[s] = 0
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		nutCol := b.NUT
		for s := 0; s < n; s++ {
			nut := nd.nutBase * or1(colAt(nutCol, s))
			sc.tapH[s] += nut / 1e6 * nd.tapeoutEffort
		}
	}

	// Per-die geometry, yield and wafer demand (Eqs. 5–7), die order
	// preserved per sample so each sample fails at its first failing
	// die with the per-call error.
	for i := range sc.wafers {
		sc.wafers[i] = 0
	}
	for di := range e.dies {
		die := &e.dies[di]
		tapCol, nttCol, d0Col := b.TAPLatency, b.NTT, b.D0
		base := die.nodeIdx * n
		for s := 0; s < n; s++ {
			if failed[s] != 0 {
				continue
			}
			if tl := die.tapLatency * or1(colAt(tapCol, s)); tl > sc.tapLat[s] {
				sc.tapLat[s] = tl
			}

			ntt := units.Transistors(die.nttBase * or1(colAt(nttCol, s)))
			area := die.areaOverride
			if area <= 0 {
				area = die.density.Area(ntt)
			}
			if area < die.minArea {
				area = die.minArea
			}

			y := die.yieldOverride
			if y == 0 {
				yp := yield.Params{
					Area:  area,
					D0:    units.DefectsPerCM2(die.d0Base * or1(colAt(d0Col, s))),
					Alpha: e.alpha,
					Model: e.yieldModel,
				}
				if die.salvage != nil {
					var err error
					y, err = yield.SalvageYield(yp, *die.salvage)
					if err != nil {
						failed[s] = 1
						errs.add(s, fmt.Errorf("core: die %q: %w", die.name, err))
						continue
					}
				} else {
					y = yield.Yield(yp)
				}
			}

			var gross float64
			if e.noEdge {
				gross = float64(die.wafer.NaiveDies(area))
			} else {
				gross = die.wafer.GrossDiesFrac(area)
			}
			if gross < 1 {
				failed[s] = 1
				errs.add(s, fmt.Errorf("core: die %q (%.0f mm² at %s): %w",
					die.name, float64(area), die.node, geometry.ErrDieTooLarge))
				continue
			}

			diesNeeded := yield.DiesNeeded(sc.chips[s]*die.countF, y)
			sc.wafers[base+s] += diesNeeded / gross
			if y > 0 {
				sc.testW[s] += sc.chips[s] * die.countF / y * float64(ntt) * die.testingEffort
			}
			sc.packW[s] += sc.chips[s] * die.countF * float64(area) * die.packageEffort
		}
	}

	// Eqs. 3–5 per node, synchronized at the slowest node.
	if len(e.nodes) == 0 {
		for s := 0; s < n; s++ {
			sc.fab[s] = 0
		}
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		var fcol []float64
		if overrideIdx == i {
			fcol = overrideCol
		} else if b.Factor != nil {
			fcol = b.Factor[i]
		}
		var qcol []float64
		if b.Queue != nil {
			qcol = b.Queue[i]
		}
		rateCol, flCol := b.Rate, b.FabLatency
		wrow := sc.wafers[i*n : (i+1)*n]
		for s := 0; s < n; s++ {
			g := sc.global[s]
			if g == 0 {
				g = 1
			}
			if fcol != nil {
				g *= fcol[s]
			} else {
				g *= nd.factor
			}
			if g < 0 {
				g = 0
			}
			rate := nd.waferRate * g * or1(colAt(rateCol, s))
			lfab := nd.fabLatency * or1(colAt(flCol, s))
			wafers := wrow[s]
			qw := nd.queueWafers
			if qcol != nil {
				qw = qcol[s]
			}
			var fabTotal float64
			switch {
			case rate > 0:
				fabTotal = qw/rate + (wafers/rate + lfab) // Eqs. 4–5
			case wafers > 0 || qw > 0:
				fabTotal = math.Inf(1)
			default:
				fabTotal = lfab
			}
			if i == 0 || fabTotal > sc.fab[s] {
				sc.fab[s] = fabTotal
			}
		}
	}

	for s := 0; s < n; s++ {
		tapeout := units.Weeks(sc.tapH[s] / (units.HoursPerWeek * e.team))
		packaging := units.Weeks(sc.tapLat[s]) + units.Weeks(sc.testW[s]) + units.Weeks(sc.packW[s])
		out[s] = e.designTime + tapeout + units.Weeks(sc.fab[s]) + packaging
	}
}

// casBatchInto mirrors cas over the batch: for each node the two
// capacity probes run as nested batch evaluations, then the
// finite-difference derivatives accumulate per sample in node order.
func (e *Evaluator) casBatchInto(b *Batch, n int, out []float64, errs *BatchErrors) {
	sc := e.batch
	sc.ensureCAS(n)
	failed := sc.failed
	const step = DefaultDerivativeStep
	for s := 0; s < n; s++ {
		sc.sum[s] = 0
	}
	for i := range e.nodes {
		nd := &e.nodes[i]
		var fcol []float64
		if b.Factor != nil {
			fcol = b.Factor[i]
		}
		for s := 0; s < n; s++ {
			f0 := nd.factor
			if fcol != nil {
				f0 = fcol[s]
			}
			fUp, fDown := f0+step, f0-step
			if fDown <= 0 {
				fDown = f0
			}
			sc.fUp[s], sc.fDown[s] = fUp, fDown
		}
		e.evalBatchInto(b, n, i, sc.fUp, sc.up, errs)
		e.evalBatchInto(b, n, i, sc.fDown, sc.down, errs)
		for s := 0; s < n; s++ {
			if failed[s] != 0 {
				continue
			}
			up, down := sc.up[s], sc.down[s]
			if math.IsInf(float64(up), 0) || math.IsInf(float64(down), 0) {
				sc.sum[s] = math.Inf(1)
				continue
			}
			g := sc.global[s]
			if g == 0 {
				g = 1
			}
			der := math.Abs(float64(up-down)) / ((sc.fUp[s] - sc.fDown[s]) * g * nd.waferRate)
			sc.sum[s] += der
		}
	}
	for s := 0; s < n; s++ {
		if failed[s] != 0 {
			out[s] = 0
			continue
		}
		switch sum := sc.sum[s]; {
		case sum <= 0:
			out[s] = math.Inf(1)
		case math.IsInf(sum, 1):
			out[s] = 0
		default:
			out[s] = 1 / sum
		}
	}
}
