package core_test

// Tests of the "plug in your values" workflow: evaluating designs
// against a user-supplied process-node database instead of the
// built-in calibration.

import (
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

func TestCustomDatabaseChangesResults(t *testing.T) {
	d := simple(technode.N28)
	var base core.Model
	baseTTM, err := base.TTM(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}

	// A foundry that doubles its 28 nm capacity.
	fast := technode.MustLookup(technode.N28)
	fast.WaferRate = units.KWPM(700)
	db, err := (*technode.Database)(nil).With(fast)
	if err != nil {
		t.Fatal(err)
	}
	custom := core.Model{Nodes: db}
	fastTTM, err := custom.TTM(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if fastTTM >= baseTTM {
		t.Errorf("doubled capacity should cut TTM: %v -> %v", float64(baseTTM), float64(fastTTM))
	}

	// Agility doubles-ish with the doubled rate (CAS ∝ μ²/N_W).
	baseCAS, err := base.CAS(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	fastCAS, err := custom.CAS(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	ratio := fastCAS.CAS / baseCAS.CAS
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("CAS ratio with 2x rate = %v, want ~4 (μ² scaling)", ratio)
	}
}

func TestSpeculativeNodeEvaluates(t *testing.T) {
	// Add a speculative "3 nm" node from the extrapolated tapeout
	// curve and evaluate the A11 there — the forward-looking study the
	// paper's effort-curve extrapolation enables.
	e3, err := technode.ExtrapolateTapeout(12)
	if err != nil {
		t.Fatal(err)
	}
	n3 := technode.Params{
		Node:          technode.Node(3),
		WaferRate:     units.KWPM(55),
		DefectDensity: 0.15,
		Density:       180,
		FabLatency:    22,
		TAPLatency:    6,
		TapeoutEffort: e3,
		TestingEffort: 1.2e-17,
		PackageEffort: 7e-12,
		WaferCost:     25000,
		MaskSetCost:   5e6,
	}
	db, err := (*technode.Database)(nil).With(n3)
	if err != nil {
		t.Fatal(err)
	}
	m := core.Model{Nodes: db}
	d := design.Design{
		Name:        "a11-like@3nm",
		TapeoutTeam: 100,
		Dies:        []design.Die{{Name: "soc", Node: technode.Node(3), NTT: 4.3e9, NUT: 514e6}},
	}
	r, err := m.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	// The extrapolated node's tapeout must exceed 5 nm's for the same
	// design ("Big Trouble at 3nm").
	var baseModel core.Model
	r5, err := baseModel.Evaluate(design.Design{
		Name: "a11-like@5nm", TapeoutTeam: 100,
		Dies: []design.Die{{Name: "soc", Node: technode.N5, NTT: 4.3e9, NUT: 514e6}},
	}, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if r.Tapeout <= r5.Tapeout {
		t.Errorf("3nm tapeout (%v wk) should exceed 5nm's (%v wk)", float64(r.Tapeout), float64(r5.Tapeout))
	}
}

func TestCustomDatabaseMissingNodeErrors(t *testing.T) {
	db, err := technode.NewDatabase([]technode.Params{{Node: 28, Density: 7, WaferRate: units.KWPM(350)}})
	if err != nil {
		t.Fatal(err)
	}
	m := core.Model{Nodes: db}
	if _, err := m.Evaluate(simple(technode.N7), 1e6, market.Full()); err == nil {
		t.Error("design on an absent node should error")
	}
}
