package core_test

import (
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/cost"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/yield"
)

// salvageDesign is a Zen-style 8-core compute die, with and without
// defect binning (sell dies with ≥6 good cores).
func salvageDesign(withSalvage bool) design.Design {
	die := design.Die{
		Name: "ccd", Node: technode.N7,
		NTT: 3.8e9, NUT: 475e6,
	}
	if withSalvage {
		die.Salvage = &yield.Salvage{Cores: 8, MinGoodCores: 6, CoreAreaFraction: 0.7}
	}
	return design.Design{Name: "salvage-study", Dies: []design.Die{die}}
}

func TestSalvageCutsWafersAndTTM(t *testing.T) {
	var m core.Model
	plain, err := m.Evaluate(salvageDesign(false), 50e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	salv, err := m.Evaluate(salvageDesign(true), 50e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if !(salv.Dies[0].Yield > plain.Dies[0].Yield) {
		t.Errorf("salvage yield %v should exceed plain %v", salv.Dies[0].Yield, plain.Dies[0].Yield)
	}
	if !(salv.Dies[0].Wafers < plain.Dies[0].Wafers) {
		t.Error("salvage should need fewer wafers")
	}
	if !(salv.TTM < plain.TTM) {
		t.Errorf("salvage should cut TTM: %v vs %v", float64(salv.TTM), float64(plain.TTM))
	}
	// Tapeout is identical: binning is a backend decision.
	if salv.Tapeout != plain.Tapeout {
		t.Error("salvage must not change tapeout time")
	}
}

func TestSalvageImprovesAgility(t *testing.T) {
	// Fewer wafers for the same chip count ⇒ smaller |∂TTM/∂μ| ⇒
	// higher CAS: binning is a supply-chain resilience lever.
	var m core.Model
	plain, err := m.CAS(salvageDesign(false), 50e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	salv, err := m.CAS(salvageDesign(true), 50e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if !(salv.CAS > plain.CAS) {
		t.Errorf("salvage CAS %v should exceed plain %v", salv.CAS, plain.CAS)
	}
}

func TestSalvageValidatedThroughDesign(t *testing.T) {
	d := salvageDesign(true)
	d.Dies[0].Salvage = &yield.Salvage{Cores: 0, MinGoodCores: 1, CoreAreaFraction: 0.5}
	var m core.Model
	if _, err := m.Evaluate(d, 1e6, market.Full()); err == nil {
		t.Error("invalid salvage spec should be rejected")
	}
}

func TestSalvageCostConsistency(t *testing.T) {
	// The cost model must see the same wafer savings the TTM model
	// does.
	var cm cost.Model
	cPlain, err := cm.Evaluate(salvageDesign(false), 50e6)
	if err != nil {
		t.Fatal(err)
	}
	cSalv, err := cm.Evaluate(salvageDesign(true), 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(cSalv.Wafers < cPlain.Wafers) {
		t.Errorf("salvage should cut wafer cost: %v vs %v", cSalv.Wafers, cPlain.Wafers)
	}
	if cSalv.TapeoutNRE != cPlain.TapeoutNRE {
		t.Error("salvage must not change NRE")
	}
}
