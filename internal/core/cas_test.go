package core_test

import (
	"math"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

func TestCASMatchesClosedForm(t *testing.T) {
	// For a single-node design with no queue, TTM = const + N_W/μ, so
	// |∂TTM/∂μ| = N_W/μ² and CAS = μ²/N_W exactly.
	var m core.Model
	d := simple(technode.N7)
	r, err := m.Evaluate(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	mu := float64(technode.MustLookup(technode.N7).WaferRate)
	want := mu * mu / float64(r.Dies[0].Wafers)
	cas, err := m.CAS(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cas.CAS-want)/want > 0.02 {
		t.Errorf("CAS = %v, closed form %v", cas.CAS, want)
	}
}

func TestCASQueuePenalty(t *testing.T) {
	// With a fixed-wafer-count queue, CAS = μ²/(N_W + N_ahead): agility
	// drops when wafers are queued ahead (Section 6.3).
	var m core.Model
	d := scenario.A11At(technode.N7)
	base, err := m.CAS(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.CAS(d, 10e6, market.Full().WithQueue(technode.N7, 1))
	if err != nil {
		t.Fatal(err)
	}
	if queued.CAS >= base.CAS {
		t.Errorf("queue should reduce CAS: %v -> %v", base.CAS, queued.CAS)
	}
}

func TestCASDecreasesWithCapacity(t *testing.T) {
	// Fig. 9: CAS curves fall as capacity falls (μ² dominates).
	var m core.Model
	d := scenario.A11At(technode.N7)
	pts, err := m.CASCurve(d, 10e6, market.Full(), market.CapacitySweep(0.2, 1.0, 9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].CAS <= pts[i-1].CAS {
			t.Errorf("CAS not increasing with capacity at %v: %v <= %v",
				pts[i].Capacity, pts[i].CAS, pts[i-1].CAS)
		}
		if pts[i].TTM >= pts[i-1].TTM {
			t.Errorf("TTM not decreasing with capacity at %v", pts[i].Capacity)
		}
	}
}

func TestCASPositive(t *testing.T) {
	var m core.Model
	for _, node := range technode.Producing() {
		r, err := m.CAS(scenario.A11At(node), 10e6, market.Full())
		if err != nil {
			t.Fatalf("%s: %v", node, err)
		}
		if r.CAS <= 0 || math.IsNaN(r.CAS) {
			t.Errorf("CAS(%s) = %v, want positive", node, r.CAS)
		}
		if len(r.Derivatives) != 1 {
			t.Errorf("derivatives = %v", r.Derivatives)
		}
	}
}

func TestCASMultiNodeSumsDerivatives(t *testing.T) {
	// Eq. 8 sums |∂TTM/∂μ| across nodes, so a two-node design's CAS is
	// the inverse of the sum of its per-node derivative magnitudes.
	var m core.Model
	d := scenario.Zen2()
	r, err := m.CAS(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Derivatives) != 2 {
		t.Fatalf("derivatives = %v, want 2 nodes", r.Derivatives)
	}
	sum := 0.0
	for _, v := range r.Derivatives {
		sum += v
	}
	if math.Abs(r.CAS-1/sum)/r.CAS > 1e-9 {
		t.Errorf("CAS %v != 1/Σ %v", r.CAS, 1/sum)
	}
}

func TestCASNonCriticalNodeContributesLess(t *testing.T) {
	// Fig. 13c's explanation: at full capacity the Zen 2 I/O die
	// (14 nm class) finishes fabrication well before the 7 nm compute
	// dies, so small 14 nm rate changes barely move TTM. The packaging
	// phase still depends on every node's throughput in this model, so
	// the derivative is small rather than zero.
	var m core.Model
	r, err := m.CAS(scenario.Zen2(), 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if r.Derivatives[technode.N12] >= r.Derivatives[technode.N7] {
		t.Errorf("non-critical 12nm derivative %v should be below critical 7nm %v",
			r.Derivatives[technode.N14], r.Derivatives[technode.N7])
	}
}

func TestCASIdleNodeZero(t *testing.T) {
	var m core.Model
	d := design.Design{Dies: []design.Die{{Name: "x", Node: technode.N10, NTT: 1e9, NUT: 1e8}}}
	r, err := m.CAS(d, 1e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if r.CAS != 0 {
		t.Errorf("CAS on idle node = %v, want 0", r.CAS)
	}
}

func TestCASStepSizeStability(t *testing.T) {
	// Ablation: the finite-difference step must not change the result
	// meaningfully across two orders of magnitude.
	var m core.Model
	d := scenario.A11At(technode.N7)
	ref, err := m.CASWithStep(d, 10e6, market.Full(), 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []float64{0.001, 0.05, 0.1} {
		got, err := m.CASWithStep(d, 10e6, market.Full(), h)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.CAS-ref.CAS)/ref.CAS > 0.05 {
			t.Errorf("CAS at step %v = %v, deviates from %v", h, got.CAS, ref.CAS)
		}
	}
	// A non-positive step falls back to the default.
	fallback, err := m.CASWithStep(d, 10e6, market.Full(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fallback.CAS-ref.CAS)/ref.CAS > 1e-9 {
		t.Error("zero step should use the default")
	}
}

func TestCASCurveRejectsZeroCapacity(t *testing.T) {
	var m core.Model
	if _, err := m.CASCurve(simple(technode.N7), 1e6, market.Full(), []float64{0}); err == nil {
		t.Error("zero capacity fraction should error")
	}
}
