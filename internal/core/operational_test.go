package core_test

import (
	"math"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/fabsim"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

func TestOperationalMatchesAnalyticWithoutDisruptions(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	res, err := m.EvaluateOperational(d, 10e6, market.Full(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Lot quantization bounds the gap: one 25-wafer lot at the 28nm
	// rate is well under an hour.
	if slip := math.Abs(float64(res.Slip)); slip > 0.01 {
		t.Errorf("undisrupted simulation slipped %v weeks from the analytic promise", slip)
	}
	if res.TTM <= 0 || len(res.PerNode) != 1 {
		t.Errorf("result malformed: %+v", res)
	}
}

func TestOperationalMultiNodeSynchronization(t *testing.T) {
	var m core.Model
	d := scenario.Zen2()
	res, err := m.EvaluateOperational(d, 10e6, market.Full(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerNode) != 2 {
		t.Fatalf("per-node results = %v", res.PerNode)
	}
	// The simulated fab phase is the max of the nodes' completions.
	worst := 0.0
	for _, r := range res.PerNode {
		worst = math.Max(worst, float64(r.LastFabComplete))
	}
	if math.Abs(worst-float64(res.Fabrication)) > 1e-9 {
		t.Errorf("fabrication %v != slowest node %v", float64(res.Fabrication), worst)
	}
}

func TestOperationalDisruptionCausesSlip(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N90) // long production: ~321k wafers
	// The 90nm line drops to 20% in week 2 and recovers in week 12.
	sched := core.DisruptionSchedule{
		technode.N90: {{AtWeek: 2, Fraction: 0.2}, {AtWeek: 12, Fraction: 1}},
	}
	res, err := m.EvaluateOperational(d, 10e6, market.Full(), sched)
	if err != nil {
		t.Fatal(err)
	}
	// 10 weeks at 20% capacity ⇒ ~8 weeks of lost starts.
	if res.Slip < 6 || res.Slip > 10 {
		t.Errorf("slip = %v weeks, want ~8", float64(res.Slip))
	}
	// A disruption on a node the design does not use is free.
	other := core.DisruptionSchedule{
		technode.N5: {{AtWeek: 0, Fraction: 0}},
	}
	clean, err := m.EvaluateOperational(d, 10e6, market.Full(), other)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(clean.Slip)) > 0.01 {
		t.Errorf("irrelevant disruption slipped %v weeks", float64(clean.Slip))
	}
}

func TestOperationalDisruptionOnNonCriticalNode(t *testing.T) {
	// Zen 2: the 7nm compute dies bound fabrication at full capacity.
	// A mild, recovering 12nm outage is absorbed by the slack; a long
	// one flips the critical node.
	var m core.Model
	d := scenario.Zen2()
	base, err := m.EvaluateOperational(d, 10e6, market.Full(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mild := core.DisruptionSchedule{
		technode.N12: {{AtWeek: 0, Fraction: 0.5}, {AtWeek: 1, Fraction: 1}},
	}
	r1, err := m.EvaluateOperational(d, 10e6, market.Full(), mild)
	if err != nil {
		t.Fatal(err)
	}
	if r1.TTM > base.TTM+0.01 {
		t.Errorf("mild 12nm outage should hide in the sync slack: %v vs %v", float64(r1.TTM), float64(base.TTM))
	}
	severe := core.DisruptionSchedule{
		technode.N12: {{AtWeek: 0, Fraction: 0.1}},
	}
	r2, err := m.EvaluateOperational(d, 10e6, market.Full(), severe)
	if err != nil {
		t.Fatal(err)
	}
	if r2.TTM <= base.TTM {
		t.Error("a severe 12nm outage must delay the package")
	}
}

func TestOperationalErrors(t *testing.T) {
	var m core.Model
	// Idle node: nothing to simulate.
	d := scenario.A11At(technode.N20)
	if _, err := m.EvaluateOperational(d, 1e6, market.Full(), nil); err == nil {
		t.Error("idle node should error")
	}
	// A permanent outage never completes.
	sched := core.DisruptionSchedule{
		technode.N28: {{AtWeek: 0, Fraction: 0}},
	}
	if _, err := m.EvaluateOperational(scenario.A11At(technode.N28), 1e6, market.Full(), sched); err == nil {
		t.Error("permanent outage should error")
	}
	_ = fabsim.DefaultLotSize
}
