// Package core implements the paper's primary contribution: the chip
// creation time-to-market model (Section 3, Eqs. 1–7) and the Chip
// Agility Score (Section 4, Eq. 8).
//
// The model decomposes time-to-market as
//
//	TTM = T_design+implementation + T_tapeout + T_fabrication + T_package
//
// where T_tapeout is engineering effort proportional to unique,
// unverified transistors per node (Eq. 2); T_fabrication is the
// worst-case die's queue plus pipelined production time (Eqs. 3–5);
// and T_package is the testing/assembly/packaging time with
// negative-binomial die yield (Eqs. 6–7). Packaging is the
// synchronization point: every die type must finish fabrication before
// assembly begins, which is what makes multi-node designs sensitive to
// a disruption on any of their nodes.
package core

import (
	"fmt"
	"math"

	"ttmcas/internal/design"
	"ttmcas/internal/geometry"
	"ttmcas/internal/market"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
	"ttmcas/internal/yield"
)

// Model evaluates designs under market conditions. The zero value is
// the paper's configuration: 300 mm wafers, negative-binomial yield
// with α = 3, and the partial-edge-die correction enabled.
type Model struct {
	// Wafer is the wafer geometry; the zero value means the standard
	// 300 mm wafer.
	Wafer geometry.Wafer
	// YieldModel selects the die-yield family; the zero value is the
	// paper's negative binomial.
	YieldModel yield.Model
	// Alpha is the yield cluster parameter; zero means the paper's 3.
	Alpha float64
	// NoEdgeCorrection disables the partial-edge-die correction in the
	// gross-die count (ablation only).
	NoEdgeCorrection bool
	// Nodes is the process-node parameter database; nil means the
	// built-in calibrated database. Supplying a custom database is the
	// paper's "plug in your values" workflow.
	Nodes *technode.Database
	// Perturb scales the six closely-guarded inputs for Monte-Carlo
	// uncertainty and Sobol sensitivity analysis; the zero value means
	// no perturbation.
	Perturb Perturbation
}

// Perturbation multiplies the six inputs Section 5 varies (±10%): total
// transistor count, unique transistor count, defect density, wafer
// production rate, foundry latency, and OSAT (testing/assembly/
// packaging) latency. A zero field means a multiplier of 1.
type Perturbation struct {
	NTT, NUT, D0, Rate, FabLatency, TAPLatency float64
}

// or1 returns m if positive, else 1.
func or1(m float64) float64 {
	if m > 0 {
		return m
	}
	return 1
}

// Inputs enumerates the perturbable inputs in the paper's Fig. 8 order.
var Inputs = []string{"NTT", "NUT", "D0", "muW", "Lfab", "LOSAT"}

// SetInput sets the multiplier for the named input (one of Inputs).
func (p *Perturbation) SetInput(name string, m float64) error {
	switch name {
	case "NTT":
		p.NTT = m
	case "NUT":
		p.NUT = m
	case "D0":
		p.D0 = m
	case "muW":
		p.Rate = m
	case "Lfab":
		p.FabLatency = m
	case "LOSAT":
		p.TAPLatency = m
	default:
		return fmt.Errorf("core: unknown perturbation input %q", name)
	}
	return nil
}

// DieResult reports the geometry and wafer demand of one die type.
type DieResult struct {
	Name string
	Node technode.Node
	// Area is the (possibly overridden) die area.
	Area units.MM2
	// Yield is the die yield fraction in (0, 1].
	Yield float64
	// GrossPerWafer is the (fractional) gross die sites per wafer.
	GrossPerWafer float64
	// Wafers is this die type's share of N_W.
	Wafers units.Wafers
}

// NodeFabResult decomposes the fabrication phase (Eq. 3) for one
// process node: every die type at the node shares its wafer rate.
type NodeFabResult struct {
	Node technode.Node
	// Wafers is the node's aggregate wafer demand.
	Wafers units.Wafers
	// Queue, Production and FabTotal decompose Eqs. 4–5.
	Queue, Production, FabTotal units.Weeks
}

// Result is a full TTM evaluation.
type Result struct {
	// DesignTime, Tapeout, Fabrication and Packaging are the four
	// phases of Eq. 1; TTM is their sum.
	DesignTime  units.Weeks
	Tapeout     units.Weeks
	Fabrication units.Weeks
	Packaging   units.Weeks
	TTM         units.Weeks
	// TapeoutHours is the engineering-hours form of Eq. 2 before
	// conversion to calendar weeks via the tapeout team size.
	TapeoutHours units.Hours
	// Dies details each die type; Nodes details each process node's
	// fabrication; CriticalNode is the node bounding the phase (the
	// max of Eq. 3).
	Dies         []DieResult
	Nodes        []NodeFabResult
	CriticalNode technode.Node
}

// Evaluate computes the time-to-market of producing n final chips of
// the design under the given market conditions.
func (m Model) Evaluate(d design.Design, n float64, c market.Conditions) (Result, error) {
	if err := d.Validate(); err != nil {
		return Result{}, err
	}
	if n < 0 {
		return Result{}, fmt.Errorf("core: negative chip count %v", n)
	}
	res := Result{DesignTime: d.DesignTime}

	// Tapeout phase (Eq. 2): engineering-hours summed over the nodes
	// the design uses, then divided across the tapeout team.
	for _, node := range d.Nodes() {
		p, err := m.Nodes.Lookup(node)
		if err != nil {
			return Result{}, err
		}
		nut := float64(d.UniqueTransistorsAt(node)) * or1(m.Perturb.NUT)
		res.TapeoutHours += units.Hours(nut / 1e6 * p.TapeoutEffort)
	}
	res.Tapeout = res.TapeoutHours.Weeks(d.Team())

	// Fabrication phase (Eqs. 3–5): all dies fabricated at the same
	// node share that node's wafer production rate, so wafer demand
	// aggregates per node; packaging then synchronizes on the slowest
	// node (the max of Eq. 3).
	var testWeeks, packWeeks float64
	var tapLatency units.Weeks
	nodeWafers := map[technode.Node]units.Wafers{}
	for _, die := range d.Dies {
		p, err := m.Nodes.Lookup(die.Node)
		if err != nil {
			return Result{}, err
		}
		if units.Weeks(float64(p.TAPLatency)*or1(m.Perturb.TAPLatency)) > tapLatency {
			tapLatency = units.Weeks(float64(p.TAPLatency) * or1(m.Perturb.TAPLatency))
		}

		ntt := units.Transistors(float64(die.TotalTransistors()) * or1(m.Perturb.NTT))
		area := die.AreaOverride
		if area <= 0 {
			// Derive area from the (possibly perturbed) transistor
			// count so NTT variance propagates through area, yield and
			// wafer count.
			area = p.Area(ntt)
		}
		if area < die.MinArea {
			area = die.MinArea
		}

		y := die.YieldOverride
		if y == 0 {
			yp := yield.Params{
				Area:  area,
				D0:    units.DefectsPerCM2(float64(p.DefectDensity) * or1(m.Perturb.D0)),
				Alpha: m.Alpha,
				Model: m.YieldModel,
			}
			if die.Salvage != nil {
				y, err = yield.SalvageYield(yp, *die.Salvage)
				if err != nil {
					return Result{}, fmt.Errorf("core: die %q: %w", die.Name, err)
				}
			} else {
				y = yield.Yield(yp)
			}
		}

		wafer := m.waferFor(p)
		var gross float64
		if m.NoEdgeCorrection {
			gross = float64(wafer.NaiveDies(area))
		} else {
			gross = wafer.GrossDiesFrac(area)
		}
		if gross < 1 {
			return Result{}, fmt.Errorf("core: die %q (%.0f mm² at %s): %w",
				die.Name, float64(area), die.Node, geometry.ErrDieTooLarge)
		}

		diesNeeded := yield.DiesNeeded(n*float64(die.Count()), y)
		wafers := units.Wafers(diesNeeded / gross)
		nodeWafers[die.Node] += wafers

		res.Dies = append(res.Dies, DieResult{
			Name:          die.Name,
			Node:          die.Node,
			Area:          area,
			Yield:         y,
			GrossPerWafer: gross,
			Wafers:        wafers,
		})

		// Packaging phase contributions (Eq. 7). Testing covers every
		// fabricated die (n/Y of them); assembly covers the n good
		// chips' packaged area.
		if y > 0 {
			testWeeks += n * float64(die.Count()) / y * float64(ntt) * p.TestingEffort
		}
		packWeeks += n * float64(die.Count()) * float64(area) * p.PackageEffort
	}

	// Eqs. 3–5 per node, synchronized at the slowest node.
	first := true
	for _, node := range d.Nodes() {
		p, err := m.Nodes.Lookup(node)
		if err != nil {
			return Result{}, err
		}
		nf := NodeFabResult{Node: node, Wafers: nodeWafers[node]}
		rate := float64(c.Rate(p)) * or1(m.Perturb.Rate)
		lfab := units.Weeks(float64(p.FabLatency) * or1(m.Perturb.FabLatency))
		switch {
		case rate > 0:
			nf.Queue = units.Weeks(float64(c.QueueWafers(p)) / rate)    // Eq. 4
			nf.Production = units.Weeks(float64(nf.Wafers)/rate) + lfab // Eq. 5
			nf.FabTotal = nf.Queue + nf.Production
		case nf.Wafers > 0 || c.QueueWafers(p) > 0:
			// No production at this node: fabrication never finishes.
			nf.Queue = units.Weeks(math.Inf(1))
			nf.Production = units.Weeks(math.Inf(1))
			nf.FabTotal = units.Weeks(math.Inf(1))
		default:
			nf.Production = lfab
			nf.FabTotal = lfab
		}
		res.Nodes = append(res.Nodes, nf)
		if first || nf.FabTotal > res.Fabrication {
			res.Fabrication = nf.FabTotal
			res.CriticalNode = node
			first = false
		}
	}

	res.Packaging = tapLatency + units.Weeks(testWeeks) + units.Weeks(packWeeks)
	res.TTM = res.DesignTime + res.Tapeout + res.Fabrication + res.Packaging
	return res, nil
}

// waferFor resolves the wafer geometry for a node: an explicit model
// override wins, then the node's own line diameter, then the paper's
// 300 mm-equivalent default.
func (m Model) waferFor(p technode.Params) geometry.Wafer {
	switch {
	case m.Wafer.DiameterMM != 0:
		return m.Wafer
	case p.WaferDiameterMM > 0:
		return geometry.Wafer{DiameterMM: p.WaferDiameterMM}
	default:
		return geometry.Default300()
	}
}

// TTM is a convenience wrapper returning only the headline number.
func (m Model) TTM(d design.Design, n float64, c market.Conditions) (units.Weeks, error) {
	r, err := m.Evaluate(d, n, c)
	if err != nil {
		return 0, err
	}
	return r.TTM, nil
}
