// Package scenario defines the concrete chip designs the paper's case
// studies evaluate: the Apple A11 (Section 6.2), a 16-core Ariane
// (Section 6.1), the Zen 2 chiplet family (Section 6.5, Table 4), and
// the Raven/PicoRV32-style microcontroller of the multi-process study
// (Section 7), plus the two illustrative chips of Fig. 3.
package scenario

import (
	"ttmcas/internal/design"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

// A11 returns the paper's Apple A11 model: 4.3 B total transistors in
// 88 mm² at 10 nm, of which ≈514 M are unique/unverified (the custom
// big/little CPU cores, GPU cores, and NPU); the remainder is
// pre-verified memory and third-party soft IP available at every node.
// The paper assumes a 100-engineer tapeout team with blocks taped out
// in parallel.
func A11() design.Design {
	return design.Design{
		Name:        "A11",
		TapeoutTeam: 100,
		Dies: []design.Die{{
			Name: "soc",
			Node: technode.N10,
			Blocks: []design.Block{
				{Name: "big-cpu", Transistors: 100e6, Instances: 2},
				{Name: "little-cpu", Transistors: 40e6, Instances: 4},
				{Name: "gpu-core", Transistors: 88e6, Instances: 3},
				{Name: "npu", Transistors: 286e6, Instances: 1},
				{Name: "sram+ip", Transistors: 3390e6, Instances: 1, PreVerified: true},
			},
		}},
	}
}

// A11At returns the A11 architecture re-targeted for fabrication at the
// given node, as in the re-release study of Section 6.2: the tapeout
// phase restarts at the new node and the die area re-derives from the
// node's transistor density.
func A11At(node technode.Node) design.Design { return A11().Retarget(node) }

// ArianeConfig parameterizes the cache-sizing study of Section 6.1.
type ArianeConfig struct {
	// Cores is the core count (the paper manufactures 16-core chips).
	Cores int
	// ICacheKB and DCacheKB are the per-core instruction and data
	// cache capacities in KiB, swept from 1 KB to 1 MB.
	ICacheKB, DCacheKB int
	// Node is the fabrication node (the paper's scatter uses 14 nm).
	Node technode.Node
}

// Ariane cache geometry: 6 transistors per SRAM bit plus 20% array
// overhead (decoders, sense amps, tags).
const (
	arianeCoreLogic   units.Transistors = 3.5e6
	arianeUncoreLogic units.Transistors = 30e6
	sramTransPerBit                     = 6.0
	sramOverhead                        = 1.2
)

// CacheTransistors returns the transistor cost of one cache of the
// given capacity in KiB.
func CacheTransistors(kb int) units.Transistors {
	bits := float64(kb) * 1024 * 8
	return units.Transistors(bits * sramTransPerBit * sramOverhead)
}

// Ariane returns the multicore Ariane design for the configuration.
// The core logic is unique (taped out once); caches are pre-verified
// SRAM macros; the uncore (NoC, IO) is unique top-level logic.
func (c ArianeConfig) Design() design.Design {
	cores := c.Cores
	if cores < 1 {
		cores = 16
	}
	node := c.Node
	if node == 0 {
		node = technode.N14
	}
	cache := CacheTransistors(c.ICacheKB) + CacheTransistors(c.DCacheKB)
	return design.Design{
		Name:        "ariane16",
		TapeoutTeam: 100,
		Dies: []design.Die{{
			Name: "cpu",
			Node: node,
			Blocks: []design.Block{
				{Name: "core", Transistors: arianeCoreLogic, Instances: cores},
				{Name: "caches", Transistors: cache, Instances: cores, PreVerified: true},
				{Name: "uncore", Transistors: arianeUncoreLogic, Instances: 1},
			},
		}},
	}
}

// Zen 2 die parameters (Table 4). Starred values in the paper come
// directly from AMD's ISSCC papers; the others derive from the
// density model. The 12 nm GlobalFoundries I/O node maps to the
// database's 14 nm class.
const (
	Zen2ComputeNTT units.Transistors = 3.8e9
	Zen2ComputeNUT units.Transistors = 475e6
	Zen2IONTT      units.Transistors = 2.1e9
	Zen2IONUT      units.Transistors = 523e6
)

// Zen2 returns the original Zen 2 chiplet design: two 7 nm compute dies
// (74 mm², source-reported) and one 12 nm I/O die (125 mm²,
// source-reported) per package, no interposer. The I/O die's 12 nm
// line is a GlobalFoundries-class variant node with far less capacity
// than the Table 2 foundry, which is what exposes the design to
// I/O-side production disruptions (Fig. 13c).
func Zen2() design.Design {
	return design.Design{
		Name:        "zen2",
		TapeoutTeam: 100,
		Dies: []design.Die{
			{
				Name: "compute", Node: technode.N7,
				NTT: Zen2ComputeNTT, NUT: Zen2ComputeNUT,
				CountPerPackage: 2, AreaOverride: 74,
			},
			{
				Name: "io", Node: technode.N12,
				NTT: Zen2IONTT, NUT: Zen2IONUT,
				CountPerPackage: 1, AreaOverride: 125,
			},
		},
	}
}

// Zen2Chiplet returns the Zen 2 chiplet design with every die moved to
// one node (the "all 7 nm" and "all 12 nm" hypotheticals of Fig. 13);
// die areas re-derive from the node's density.
func Zen2Chiplet(node technode.Node) design.Design {
	d := Zen2().Retarget(node)
	d.Name = "zen2-chiplet@" + node.String()
	return d
}

// Zen2Monolithic returns the single-die merge of Zen 2 at the node.
func Zen2Monolithic(node technode.Node) design.Design {
	d := Zen2().Monolithic(node)
	d.Name = "zen2-monolithic@" + node.String()
	return d
}

// InterposerNode is the legacy node the paper fabricates silicon
// interposers at.
const InterposerNode = technode.N65

// RavenConfig parameterizes the multi-process microcontroller study of
// Section 7.
type RavenConfig struct {
	// Cores is the PicoRV32 core count of the multicore tile.
	Cores int
	// Node is the fabrication node.
	Node technode.Node
}

// Raven returns a Raven/PicoRV32-inspired multicore microcontroller: a
// small RISC-V core, SRAM, and peripherals, clamped to the paper's
// 1 mm² minimum die area. Performance and area are akin to a low-end
// Cortex-M-class automotive microcontroller.
func (c RavenConfig) Design() design.Design {
	cores := c.Cores
	if cores < 1 {
		cores = 32
	}
	node := c.Node
	if node == 0 {
		node = technode.N180
	}
	return design.Design{
		Name:        "raven",
		TapeoutTeam: 20,
		Dies: []design.Die{{
			Name:    "mcu",
			Node:    node,
			MinArea: 1,
			Blocks: []design.Block{
				{Name: "picorv32", Transistors: 0.5e6, Instances: cores},
				{Name: "sram", Transistors: 12e6, Instances: 1, PreVerified: true},
				{Name: "uncore+io", Transistors: 2.0e6, Instances: 1},
			},
		}},
	}
}

// ChipA and ChipB are the two illustrative designs of Fig. 3: same
// final chip count, but Chip A needs many more wafers (large die on a
// slower node), so its TTM reacts more steeply to production-rate
// changes and its CAS is lower.
func ChipA() design.Design {
	return design.Design{
		Name:        "chip-A",
		TapeoutTeam: 100,
		Dies: []design.Die{{
			Name: "big-die", Node: technode.N90,
			NTT: 2.0e9, NUT: 150e6,
		}},
	}
}

// ChipB is the smaller, denser-node counterpart of ChipA.
func ChipB() design.Design {
	return design.Design{
		Name:        "chip-B",
		TapeoutTeam: 100,
		Dies: []design.Die{{
			Name: "small-die", Node: technode.N28,
			NTT: 2.0e9, NUT: 150e6,
		}},
	}
}

// AccelHost returns the general-purpose Ariane host core the
// accelerator study (Section 6.4) augments.
func AccelHost(node technode.Node) design.Design {
	cfg := ArianeConfig{Cores: 1, ICacheKB: 16, DCacheKB: 32, Node: node}
	d := cfg.Design()
	d.Name = "ariane-host"
	return d
}
