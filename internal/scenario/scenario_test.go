package scenario

import (
	"math"
	"testing"

	"ttmcas/internal/technode"
)

func TestA11Composition(t *testing.T) {
	d := A11()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	die := d.Dies[0]
	if got := float64(die.TotalTransistors()); math.Abs(got-4.3e9) > 1e6 {
		t.Errorf("A11 NTT = %v, want 4.3e9", got)
	}
	if got := float64(die.UniqueTransistors()); math.Abs(got-514e6) > 1e6 {
		t.Errorf("A11 NUT = %v, want 514e6", got)
	}
	if die.Node != technode.N10 {
		t.Errorf("A11 node = %v, want 10nm", die.Node)
	}
	if d.Team() != 100 {
		t.Errorf("A11 team = %d, want 100", d.Team())
	}
	p := technode.MustLookup(technode.N10)
	if a := die.Area(p); a < 85 || a > 91 {
		t.Errorf("A11 area = %.1f mm², want ~88", float64(a))
	}
}

func TestA11Retarget(t *testing.T) {
	d := A11At(technode.N28)
	if d.Dies[0].Node != technode.N28 {
		t.Error("retarget failed")
	}
	if got := float64(d.Dies[0].UniqueTransistors()); math.Abs(got-514e6) > 1e6 {
		t.Errorf("retarget changed NUT: %v", got)
	}
}

func TestArianeCacheScaling(t *testing.T) {
	smallCfg := ArianeConfig{Cores: 16, ICacheKB: 1, DCacheKB: 1}
	bigCfg := ArianeConfig{Cores: 16, ICacheKB: 1024, DCacheKB: 1024}
	small := smallCfg.Design()
	big := bigCfg.Design()
	if err := small.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := big.Validate(); err != nil {
		t.Fatal(err)
	}
	if big.Dies[0].TotalTransistors() <= small.Dies[0].TotalTransistors() {
		t.Error("bigger caches should mean more transistors")
	}
	// Caches are pre-verified SRAM: unique counts must match.
	if big.Dies[0].UniqueTransistors() != small.Dies[0].UniqueTransistors() {
		t.Error("cache size must not change tapeout load")
	}
	// 2 MB of cache at 6T/bit ≈ 100M transistors per core.
	perCore := CacheTransistors(1024)
	want := 1024.0 * 1024 * 8 * 6 * 1.2
	if math.Abs(float64(perCore)-want) > 1 {
		t.Errorf("CacheTransistors(1MB) = %v, want %v", float64(perCore), want)
	}
}

func TestArianeDefaults(t *testing.T) {
	d := ArianeConfig{ICacheKB: 16, DCacheKB: 32}.Design()
	if d.Dies[0].Node != technode.N14 {
		t.Error("default node should be 14nm")
	}
	// Default 16 cores: 16 × core + uncore.
	wantUnique := float64(arianeCoreLogic) + float64(arianeUncoreLogic)
	if got := float64(d.Dies[0].UniqueTransistors()); math.Abs(got-wantUnique) > 1 {
		t.Errorf("unique = %v, want %v", got, wantUnique)
	}
}

func TestZen2Table4(t *testing.T) {
	d := Zen2()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.DiesPerPackage() != 3 {
		t.Errorf("Zen2 dies/package = %d, want 3", d.DiesPerPackage())
	}
	nodes := d.Nodes()
	if len(nodes) != 2 {
		t.Errorf("Zen2 nodes = %v", nodes)
	}
	for _, die := range d.Dies {
		switch die.Name {
		case "compute":
			if die.NTT != 3.8e9 || die.NUT != 475e6 || die.AreaOverride != 74 {
				t.Errorf("compute die = %+v", die)
			}
		case "io":
			if die.NTT != 2.1e9 || die.NUT != 523e6 || die.AreaOverride != 125 {
				t.Errorf("io die = %+v", die)
			}
		}
	}
}

func TestZen2Variants(t *testing.T) {
	all7 := Zen2Chiplet(technode.N7)
	for _, die := range all7.Dies {
		if die.Node != technode.N7 {
			t.Errorf("all-7nm variant has die at %v", die.Node)
		}
		if die.AreaOverride != 0 {
			t.Error("retargeted dies should re-derive area")
		}
	}
	mono := Zen2Monolithic(technode.N7)
	if len(mono.Dies) != 1 {
		t.Errorf("monolithic dies = %d", len(mono.Dies))
	}
	if got := float64(mono.Dies[0].NTT); math.Abs(got-9.7e9) > 1e6 {
		t.Errorf("monolithic NTT = %v, want 2×3.8e9 + 2.1e9", got)
	}
}

func TestRavenSmallDie(t *testing.T) {
	d := RavenConfig{}.Design()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	p := technode.MustLookup(technode.N180)
	a := d.Dies[0].Area(p)
	if a < 1 {
		t.Errorf("Raven area = %v, must respect 1 mm² minimum", float64(a))
	}
	if d.Dies[0].TotalTransistors() > 50e6 {
		t.Error("Raven should be a small microcontroller-class design")
	}
}

func TestChipAVsChipB(t *testing.T) {
	a, b := ChipA(), ChipB()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chip A must demand more wafer area per chip than Chip B (bigger
	// die on a lower-density node).
	pa := technode.MustLookup(a.Dies[0].Node)
	pb := technode.MustLookup(b.Dies[0].Node)
	if a.Dies[0].Area(pa) <= b.Dies[0].Area(pb) {
		t.Error("Chip A should have the larger die")
	}
}

func TestAccelHost(t *testing.T) {
	d := AccelHost(technode.N5)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Dies[0].Node != technode.N5 {
		t.Error("host node wrong")
	}
}
