package figures

import (
	"fmt"
	"math"

	"ttmcas/internal/accel"
	"ttmcas/internal/core"
	"ttmcas/internal/cost"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/opt"
	"ttmcas/internal/report"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

func init() {
	register("t3", table3)
	register("t4", table4)
	register("13", fig13)
	register("14", fig14)
}

// accelTeam is the tapeout team size of the accelerator study; the
// paper's Table 3 tapeout weeks are consistent with roughly this team
// against the 5 nm effort curve.
const accelTeam = 68

// Table3Row is one accelerator design's evaluation.
type Table3Row struct {
	Name        string
	SpeedUp     float64
	NUT         units.Transistors
	AreaRatio   float64
	TapeoutWk   units.Weeks
	TapeoutCost units.USD
}

func table3(Config) (*Result, error) {
	var cm cost.Model
	var rows []Table3Row
	p := technode.MustLookup(technode.N5)
	var core5 accel.ScalarCore
	for _, a := range accel.All() {
		hours := float64(a.UniqueTransistors) / 1e6 * p.TapeoutEffort
		tc, err := cm.TapeoutCost(a.UniqueTransistors, technode.N5)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Name:        a.Name,
			SpeedUp:     a.KernelSpeedUp(core5),
			NUT:         a.UniqueTransistors,
			AreaRatio:   a.AreaRelativeToAriane(),
			TapeoutWk:   units.Hours(hours).Weeks(accelTeam),
			TapeoutCost: tc,
		})
	}
	t := report.NewTable("Accelerator speed-up, tapeout time and tapeout cost at 5nm (2048-element blocks)",
		"design", "speed-up", "N_TT (M)", "area vs Ariane", "T_tapeout (wk)", "C_tapeout")
	for _, r := range rows {
		t.AddRow(r.Name, report.Fmt2(r.SpeedUp), report.Fmt2(r.NUT.Millions()),
			report.Fmt2(r.AreaRatio)+"x", report.Fmt1(float64(r.TapeoutWk)), units.FmtUSD(r.TapeoutCost))
	}
	return &Result{
		ID:       "t3",
		Title:    "Cost of specialization (SPIRAL-style sorting and DFT accelerators)",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Table4Row is one Zen 2 die's parameters at the two candidate nodes.
type Table4Row struct {
	Die       string
	NTT, NUT  units.Transistors
	Area14    units.MM2
	Area7     units.MM2
	Tapeout14 units.Weeks
	Tapeout7  units.Weeks
}

func table4(Config) (*Result, error) {
	p14 := technode.MustLookup(technode.N14)
	p7 := technode.MustLookup(technode.N7)
	team := scenario.Zen2().Team()
	mk := func(name string, ntt, nut units.Transistors, a14, a7 units.MM2) Table4Row {
		row := Table4Row{Die: name, NTT: ntt, NUT: nut, Area14: a14, Area7: a7}
		row.Tapeout14 = units.Hours(float64(nut) / 1e6 * p14.TapeoutEffort).Weeks(team)
		row.Tapeout7 = units.Hours(float64(nut) / 1e6 * p7.TapeoutEffort).Weeks(team)
		return row
	}
	rows := []Table4Row{
		// Source-reported areas where the paper stars them; derived
		// from the density model otherwise.
		mk("compute", scenario.Zen2ComputeNTT, scenario.Zen2ComputeNUT,
			p14.Area(scenario.Zen2ComputeNTT), 74),
		mk("io", scenario.Zen2IONTT, scenario.Zen2IONUT,
			125, p7.Area(scenario.Zen2IONTT)),
	}
	t := report.NewTable("Zen 2-like die parameters (12nm-class dies use the 14nm database entry)",
		"die", "N_TT (B)", "N_UT (M)", "area 14nm (mm2)", "area 7nm (mm2)", "tapeout 14nm (wk)", "tapeout 7nm (wk)")
	for _, r := range rows {
		t.AddRow(r.Die, report.Fmt2(r.NTT.Billions()), report.Fmt1(r.NUT.Millions()),
			report.Fmt1(float64(r.Area14)), report.Fmt1(float64(r.Area7)),
			report.Fmt1(float64(r.Tapeout14)), report.Fmt1(float64(r.Tapeout7)))
	}
	return &Result{
		ID:       "t4",
		Title:    "Zen 2 chiplet die inventory",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// fig13Designs builds the eight designs of the chiplet study.
func fig13Designs() ([]design.Design, error) {
	zen := scenario.Zen2()
	withIp := func(d design.Design) (design.Design, error) {
		return d.WithInterposer(scenario.InterposerNode)
	}
	zenIp, err := withIp(zen)
	if err != nil {
		return nil, err
	}
	c7 := scenario.Zen2Chiplet(technode.N7)
	c7ip, err := withIp(c7)
	if err != nil {
		return nil, err
	}
	c14 := scenario.Zen2Chiplet(technode.N12)
	c14ip, err := withIp(c14)
	if err != nil {
		return nil, err
	}
	return []design.Design{
		zen, zenIp,
		c7, c7ip, scenario.Zen2Monolithic(technode.N7),
		c14, c14ip, scenario.Zen2Monolithic(technode.N12),
	}, nil
}

// fig13Names are the display names in the paper's legend order.
var fig13Names = []string{
	"zen2", "zen2+interposer",
	"7nm-chiplet", "7nm-chiplet+interposer", "7nm-monolithic",
	"12nm-chiplet", "12nm-chiplet+interposer", "12nm-monolithic",
}

// Fig13Data holds the three panels.
type Fig13Data struct {
	Names      []string
	Quantities []float64
	// TTM and Cost index [design][quantity]; CAS indexes
	// [design][capacity].
	TTM      [][]units.Weeks
	Cost     [][]units.USD
	Capacity []float64
	CAS      [][]float64
}

// fig13Quantities is the x-axis of panels (a) and (b) in final chips.
var fig13Quantities = []float64{1e6, 5e6, 10e6, 20e6, 40e6, 60e6, 80e6, 100e6}

func fig13(cfg Config) (*Result, error) {
	var m core.Model
	var cm cost.Model
	designs, err := fig13Designs()
	if err != nil {
		return nil, err
	}
	caps := market.CapacitySweep(0.2, 1.0, cfg.capacityPoints())
	data := Fig13Data{
		Names: fig13Names, Quantities: fig13Quantities, Capacity: caps,
		TTM:  make([][]units.Weeks, len(designs)),
		Cost: make([][]units.USD, len(designs)),
		CAS:  make([][]float64, len(designs)),
	}
	for i, d := range designs {
		for _, q := range fig13Quantities {
			ttm, err := m.TTM(d, q, market.Full())
			if err != nil {
				return nil, err
			}
			total, err := cm.Total(d, q)
			if err != nil {
				return nil, err
			}
			data.TTM[i] = append(data.TTM[i], ttm)
			data.Cost[i] = append(data.Cost[i], total)
		}
		pts, err := m.CASCurve(d, 10e6, market.Full(), caps)
		if err != nil {
			return nil, err
		}
		for _, pt := range pts {
			data.CAS[i] = append(data.CAS[i], pt.CAS)
		}
	}

	qCols := make([]string, len(fig13Quantities))
	for i, q := range fig13Quantities {
		qCols[i] = report.FmtSI(q)
	}
	ttmMx := report.NewMatrix("(a) TTM (weeks) by final chip count", fig13Names, qCols)
	costMx := report.NewMatrix("(b) chip creation cost ($B) by final chip count", fig13Names, qCols)
	for i := range designs {
		for j := range fig13Quantities {
			ttmMx.Set(i, j, report.Fmt1(float64(data.TTM[i][j])))
			costMx.Set(i, j, report.Fmt2(data.Cost[i][j].Billions()))
		}
	}
	capCols := make([]string, len(caps))
	for i, c := range caps {
		capCols[i] = percentHeader(c)
	}
	casMx := report.NewMatrix("(c) CAS (kilo-wafers/week², 10M chips) by production capacity", fig13Names, capCols)
	for i := range designs {
		for j := range caps {
			casMx.Set(i, j, report.Fmt1(data.CAS[i][j]/1000))
		}
	}
	return &Result{
		ID:       "13",
		Title:    "Chiplets and mixed-process nodes (Zen 2 family)",
		Sections: []string{ttmMx.String(), costMx.String(), casMx.String()},
		Data:     data,
	}, nil
}

// Fig14Data is the two-process split study.
type Fig14Data struct {
	Nodes  []technode.Node
	Matrix map[technode.Node]map[technode.Node]opt.SplitPoint
	// BestPair is the overall fastest combination (the paper's blue
	// highlight).
	BestPrimary, BestSecondary technode.Node
}

func fig14(cfg Config) (*Result, error) {
	study := opt.SplitStudy{
		Factory: func(n technode.Node) design.Design {
			return scenario.RavenConfig{Node: n}.Design()
		},
		Step: cfg.splitStep(),
	}
	const n = 1e9
	matrix, err := study.PairMatrix(n)
	if err != nil {
		return nil, err
	}
	nodes := technode.Producing()
	data := Fig14Data{Nodes: nodes, Matrix: matrix}
	bestTTM := math.Inf(1)
	for _, p := range nodes {
		for _, s := range nodes {
			pt := matrix[p][s]
			if float64(pt.TTM) < bestTTM {
				bestTTM = float64(pt.TTM)
				data.BestPrimary, data.BestSecondary = p, s
			}
		}
	}
	cols := nodeNames(nodes)
	rows := nodeNames(nodes)
	ttmMx := report.NewMatrix("(a) TTM (weeks) of the CAS-optimal split; * marks the overall fastest", rows, cols)
	costMx := report.NewMatrix("(b) chip creation cost ($B)", rows, cols)
	splitMx := report.NewMatrix("(c) % of chips from the primary process", rows, cols)
	ttmMx.CornerTag, costMx.CornerTag, splitMx.CornerTag = "2nd\\1st", "2nd\\1st", "2nd\\1st"
	for i, sNode := range nodes { // rows: secondary (as in the paper)
		for j, pNode := range nodes {
			pt := matrix[pNode][sNode]
			cell := report.Fmt1(float64(pt.TTM))
			if pNode == data.BestPrimary && sNode == data.BestSecondary {
				cell += "*"
			}
			ttmMx.Set(i, j, cell)
			costMx.Set(i, j, report.Fmt2(pt.Cost.Billions()))
			splitMx.Set(i, j, fmt.Sprintf("%.0f", pt.FracPrimary*100))
		}
	}
	return &Result{
		ID:       "14",
		Title:    "Two-process chip design study (Raven-class MCU, 1B chips, CAS-maximizing splits)",
		Sections: []string{ttmMx.String(), costMx.String(), splitMx.String()},
		Data:     data,
	}, nil
}
