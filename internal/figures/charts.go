package figures

import (
	"fmt"
	"math"

	"ttmcas/internal/core"
	"ttmcas/internal/opt"
	"ttmcas/internal/report"
)

// Chart is one rendered SVG figure panel.
type Chart struct {
	// Name is a file-friendly label ("fig9-cas").
	Name string
	// SVG is the complete document.
	SVG string
}

// BuildCharts renders the SVG panels for a generated figure from its
// structured Data. Results without a chartable payload (the tables)
// return an empty slice.
func BuildCharts(r *Result) []Chart {
	switch d := r.Data.(type) {
	case Fig3Data:
		return chartsFig3(d)
	case Fig4Data:
		return chartsFig4(d)
	case Fig5Data:
		return chartsFig5(d)
	case Fig6Data:
		return chartsFig6(d)
	case []Fig7Row:
		return chartsFig7(d)
	case Fig8Data:
		return chartsFig8(d)
	case Fig9Data:
		return chartsFig9(d)
	case Fig10Data:
		return chartsFig10(d)
	case QueueCurves:
		return chartsQueue(r.ID, d)
	case Fig13Data:
		return chartsFig13(d)
	case Fig14Data:
		return chartsFig14(d)
	default:
		return nil
	}
}

func chartsFig3(d Fig3Data) []Chart {
	ttm := report.LineChart{
		Title: "Fig. 3 — TTM vs production capacity (10M chips)", XLabel: "capacity fraction", YLabel: "TTM (weeks)",
		YMinZero: true,
	}
	cas := report.LineChart{
		Title: "Fig. 3 — CAS vs production capacity", XLabel: "capacity fraction", YLabel: "CAS (wafers/week²)",
		YMinZero: true,
	}
	addChip := func(name string, pts []core.CASPoint) {
		var xs, ts, cs []float64
		for _, p := range pts {
			xs = append(xs, p.Capacity)
			ts = append(ts, float64(p.TTM))
			cs = append(cs, p.CAS)
		}
		ttm.Series = append(ttm.Series, report.Series{Name: name, X: xs, Y: ts})
		cas.Series = append(cas.Series, report.Series{Name: name, X: xs, Y: cs})
	}
	addChip("Chip A", d.ChipA)
	addChip("Chip B", d.ChipB)
	return []Chart{
		{Name: "fig3-ttm", SVG: ttm.Render()},
		{Name: "fig3-cas", SVG: cas.Render()},
	}
}

func chartsFig4(d Fig4Data) []Chart {
	c := report.LineChart{
		Title: "Fig. 4 — IPC vs TTM per (I$, D$) configuration", XLabel: "IPC", YLabel: "TTM (weeks)",
	}
	// One scatter series per instruction-cache size (the paper's
	// marker classes).
	byI := map[int]*report.Series{}
	var order []int
	for _, p := range d.Points {
		s, ok := byI[p.IKB]
		if !ok {
			s = &report.Series{Name: fmt.Sprintf("I$ %dKB", p.IKB), PointsOnly: true}
			byI[p.IKB] = s
			order = append(order, p.IKB)
		}
		s.X = append(s.X, p.IPC)
		s.Y = append(s.Y, float64(p.TTM))
	}
	for _, ikb := range order {
		c.Series = append(c.Series, *byI[ikb])
	}
	return []Chart{{Name: "fig4-scatter", SVG: c.Render()}}
}

func chartsFig5(d Fig5Data) []Chart {
	c := report.LineChart{
		Title:  "Fig. 5 — normalized IPC/TTM vs IPC/cost",
		XLabel: "IPC/TTM (normalized)", YLabel: "IPC/cost (normalized)",
	}
	all := report.Series{Name: "configs", PointsOnly: true}
	for _, p := range d.Points {
		all.X = append(all.X, p.IPCPerTTM/d.BestByTTM.IPCPerTTM)
		all.Y = append(all.Y, p.IPCPerCost/d.BestByCost.IPCPerCost)
	}
	c.Series = append(c.Series,
		all,
		report.Series{Name: "IPC/TTM opt", PointsOnly: true,
			X: []float64{1}, Y: []float64{d.BestByTTM.IPCPerCost / d.BestByCost.IPCPerCost}},
		report.Series{Name: "IPC/cost opt", PointsOnly: true,
			X: []float64{d.BestByCost.IPCPerTTM / d.BestByTTM.IPCPerTTM}, Y: []float64{1}},
	)
	return []Chart{{Name: "fig5-frontier", SVG: c.Render()}}
}

func chartsFig6(d Fig6Data) []Chart {
	rows := make([]string, len(d.Quantities))
	text := make([][]string, len(d.Quantities))
	vals := make([][]float64, len(d.Quantities))
	cols := nodeNames(d.Nodes)
	for i, q := range d.Quantities {
		rows[i] = report.FmtSI(q)
		text[i] = make([]string, len(d.Nodes))
		vals[i] = make([]float64, len(d.Nodes))
		for j, node := range d.Nodes {
			cell := d.Cells[q][node]
			text[i][j] = fmt.Sprintf("%d/%d", cell.IKB, cell.DKB)
			vals[i][j] = cell.AreaOverhead
		}
	}
	h := report.HeatmapChart{
		Title:    "Fig. 6 — IPC/TTM-optimal I$/D$ (KB); shade = cache share of die",
		RowNames: rows, ColNames: cols, Values: vals, CellText: text,
	}
	return []Chart{{Name: "fig6-optima", SVG: h.Render()}}
}

func chartsFig7(rows []Fig7Row) []Chart {
	bars := report.StackedBarChart{
		Title: "Fig. 7 — TTM phases for 10M A11 chips", YLabel: "weeks",
	}
	tape := report.BarSegment{Name: "tapeout"}
	fab := report.BarSegment{Name: "fabrication"}
	pack := report.BarSegment{Name: "packaging"}
	cost := report.LineChart{
		Title: "Fig. 7 — chip creation cost", XLabel: "node index (old → new)", YLabel: "cost ($B)", YMinZero: true,
	}
	var cx, cy []float64
	for i, r := range rows {
		bars.Categories = append(bars.Categories, r.Node.String())
		tape.Values = append(tape.Values, float64(r.Tapeout))
		fab.Values = append(fab.Values, float64(r.Fab))
		pack.Values = append(pack.Values, float64(r.Pack))
		cx = append(cx, float64(i))
		cy = append(cy, r.Cost.Billions())
	}
	bars.Segments = []report.BarSegment{tape, fab, pack}
	cost.Series = []report.Series{{Name: "10M chips", X: cx, Y: cy}}
	return []Chart{
		{Name: "fig7-phases", SVG: bars.Render()},
		{Name: "fig7-cost", SVG: cost.Render()},
	}
}

func chartsFig8(d Fig8Data) []Chart {
	vals := make([][]float64, len(d.Inputs))
	for i, in := range d.Inputs {
		vals[i] = make([]float64, len(d.Nodes))
		for j, node := range d.Nodes {
			vals[i][j] = d.Total[in][node]
		}
	}
	h := report.HeatmapChart{
		Title:    "Fig. 8 — Sobol total-effect index S_T",
		RowNames: d.Inputs, ColNames: nodeNames(d.Nodes), Values: vals,
	}
	return []Chart{{Name: "fig8-sensitivity", SVG: h.Render()}}
}

func chartsFig9(d Fig9Data) []Chart {
	c := report.LineChart{
		Title: "Fig. 9 — CAS for 10M A11 chips", XLabel: "capacity fraction",
		YLabel: "CAS (wafers/week²)", YMinZero: true,
	}
	for _, node := range d.Nodes {
		var xs, ys, lo, hi []float64
		for i, b := range d.Bands[node] {
			xs = append(xs, d.Capacity[i])
			ys = append(ys, b.Mean)
			lo = append(lo, b.CI10.Lo)
			hi = append(hi, b.CI10.Hi)
		}
		c.Series = append(c.Series, report.Series{Name: node.String(), X: xs, Y: ys, BandLo: lo, BandHi: hi})
	}
	return []Chart{{Name: "fig9-cas", SVG: c.Render()}}
}

func chartsFig10(d Fig10Data) []Chart {
	rows := make([]string, len(d.Quantities))
	vals := make([][]float64, len(d.Quantities))
	for i, q := range d.Quantities {
		rows[i] = report.FmtSI(q)
		vals[i] = make([]float64, len(d.Nodes))
		for j, node := range d.Nodes {
			vals[i][j] = float64(d.TTM[node][q])
		}
	}
	h := report.HeatmapChart{
		Title:    "Fig. 10 — A11 TTM (weeks) by node and volume",
		RowNames: rows, ColNames: nodeNames(d.Nodes), Values: vals, Reverse: true,
	}
	return []Chart{{Name: "fig10-matrix", SVG: h.Render()}}
}

func chartsQueue(id string, d QueueCurves) []Chart {
	title, ylabel, name := "Fig. 11 — TTM under foundry queues", "TTM (weeks)", "fig11-ttm"
	if id == "12" {
		title, ylabel, name = "Fig. 12 — CAS under foundry queues", "CAS (wafers/week²)", "fig12-cas"
	}
	c := report.LineChart{Title: title, XLabel: "capacity fraction", YLabel: ylabel, YMinZero: true}
	for _, q := range d.QueueWeeks {
		var xs, ys, lo, hi []float64
		for i, b := range d.Bands[q] {
			xs = append(xs, d.Capacity[i])
			ys = append(ys, b.Mean)
			lo = append(lo, b.CI10.Lo)
			hi = append(hi, b.CI10.Hi)
		}
		c.Series = append(c.Series, report.Series{
			Name: fmt.Sprintf("queue %.0f wk", float64(q)), X: xs, Y: ys, BandLo: lo, BandHi: hi,
		})
	}
	return []Chart{{Name: name, SVG: c.Render()}}
}

func chartsFig13(d Fig13Data) []Chart {
	ttm := report.LineChart{
		Title: "Fig. 13a — TTM by final chip count", XLabel: "final chips (millions)", YLabel: "TTM (weeks)",
	}
	cost := report.LineChart{
		Title: "Fig. 13b — chip creation cost", XLabel: "final chips (millions)", YLabel: "cost ($B)", YMinZero: true,
	}
	cas := report.LineChart{
		Title: "Fig. 13c — CAS vs capacity (10M chips)", XLabel: "capacity fraction",
		YLabel: "CAS (wafers/week²)", YMinZero: true,
	}
	for i, name := range d.Names {
		var qx, ty, cy []float64
		for j, q := range d.Quantities {
			qx = append(qx, q/1e6)
			ty = append(ty, float64(d.TTM[i][j]))
			cy = append(cy, d.Cost[i][j].Billions())
		}
		ttm.Series = append(ttm.Series, report.Series{Name: name, X: qx, Y: ty})
		cost.Series = append(cost.Series, report.Series{Name: name, X: qx, Y: cy})
		var cx, cv []float64
		for j, f := range d.Capacity {
			cx = append(cx, f)
			cv = append(cv, d.CAS[i][j])
		}
		cas.Series = append(cas.Series, report.Series{Name: name, X: cx, Y: cv})
	}
	return []Chart{
		{Name: "fig13a-ttm", SVG: ttm.Render()},
		{Name: "fig13b-cost", SVG: cost.Render()},
		{Name: "fig13c-cas", SVG: cas.Render()},
	}
}

func chartsFig14(d Fig14Data) []Chart {
	rows := nodeNames(d.Nodes)
	mk := func(name, title string, get func(p opt.SplitPoint) float64, reverse bool) Chart {
		vals := make([][]float64, len(d.Nodes))
		for i, sNode := range d.Nodes {
			vals[i] = make([]float64, len(d.Nodes))
			for j, pNode := range d.Nodes {
				v := get(d.Matrix[pNode][sNode])
				if math.IsInf(v, 0) {
					v = math.Inf(1)
				}
				vals[i][j] = v
			}
		}
		h := report.HeatmapChart{Title: title, RowNames: rows, ColNames: rows, Values: vals, Reverse: reverse}
		return Chart{Name: name, SVG: h.Render()}
	}
	return []Chart{
		mk("fig14a-ttm", "Fig. 14a — TTM (weeks) of CAS-optimal splits (rows: secondary, cols: primary)",
			func(p opt.SplitPoint) float64 { return float64(p.TTM) }, true),
		mk("fig14b-cost", "Fig. 14b — chip creation cost ($B)",
			func(p opt.SplitPoint) float64 { return p.Cost.Billions() }, true),
		mk("fig14c-split", "Fig. 14c — % of chips from the primary process",
			func(p opt.SplitPoint) float64 { return p.FracPrimary * 100 }, false),
	}
}
