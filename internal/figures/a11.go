package figures

import (
	"context"
	"fmt"
	"math"

	"ttmcas/internal/core"
	"ttmcas/internal/cost"
	"ttmcas/internal/market"
	"ttmcas/internal/mc"
	"ttmcas/internal/report"
	"ttmcas/internal/scenario"
	"ttmcas/internal/sens"
	"ttmcas/internal/stats"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

func init() {
	register("3", fig3)
	register("t1", table1)
	register("t2", table2)
	register("7", fig7)
	register("8", fig8)
	register("9", fig9)
	register("10", fig10)
	register("11", fig11)
	register("12", fig12)
}

// Fig3Data pairs the two illustrative chips' curves.
type Fig3Data struct {
	Capacity []float64
	ChipA    []core.CASPoint
	ChipB    []core.CASPoint
}

func fig3(cfg Config) (*Result, error) {
	var m core.Model
	const n = 10e6
	caps := market.CapacitySweep(0.2, 1.0, cfg.capacityPoints())
	a, err := m.CASCurve(scenario.ChipA(), n, market.Full(), caps)
	if err != nil {
		return nil, err
	}
	b, err := m.CASCurve(scenario.ChipB(), n, market.Full(), caps)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("TTM and CAS vs production capacity (10M chips)",
		"capacity", "ChipA TTM (wk)", "ChipB TTM (wk)", "ChipA CAS", "ChipB CAS")
	for i := range caps {
		t.AddRow(percentHeader(caps[i]),
			report.Fmt1(float64(a[i].TTM)), report.Fmt1(float64(b[i].TTM)),
			report.Fmt1(a[i].CAS/1000), report.Fmt1(b[i].CAS/1000))
	}
	return &Result{
		ID:       "3",
		Title:    "TTM and CAS of illustrative Chips A and B (CAS in kilo-wafers/week²)",
		Sections: []string{t.String()},
		Data:     Fig3Data{Capacity: caps, ChipA: a, ChipB: b},
	}, nil
}

func table2(Config) (*Result, error) {
	t := report.NewTable("Estimated wafer production rates across process nodes",
		"node", "kWafers/month", "wafers/week", "in production")
	for _, node := range technode.All() {
		p := technode.MustLookup(node)
		t.AddRow(node.String(), report.Fmt1(p.WaferRate.KWPMValue()),
			report.Fmt1(float64(p.WaferRate)), fmt.Sprintf("%v", p.InProduction()))
	}
	return &Result{
		ID:       "t2",
		Title:    "Wafer production rates (Table 2 of the paper, verbatim)",
		Sections: []string{t.String()},
		Data:     technode.All(),
	}, nil
}

// Fig7Row is one node's bar of Fig. 7.
type Fig7Row struct {
	Node               technode.Node
	Tapeout, Fab, Pack units.Weeks
	TTM                mc.Estimate
	CI25               mc.Estimate
	Cost               units.USD
}

func fig7(cfg Config) (*Result, error) {
	var m core.Model
	var cm cost.Model
	const n = 10e6
	var rows []Fig7Row
	for _, node := range technode.Producing() {
		d := scenario.A11At(node)
		nom, err := m.Evaluate(d, n, market.Full())
		if err != nil {
			return nil, err
		}
		e10, err := mc.TTM(context.Background(), m, d, n, market.Full(), mc.Config{Samples: cfg.mcSamples(), Variation: 0.10})
		if err != nil {
			return nil, err
		}
		e25, err := mc.TTM(context.Background(), m, d, n, market.Full(), mc.Config{Samples: cfg.mcSamples(), Variation: 0.25})
		if err != nil {
			return nil, err
		}
		total, err := cm.Total(d, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{
			Node: node, Tapeout: nom.Tapeout, Fab: nom.Fabrication, Pack: nom.Packaging,
			TTM: e10, CI25: e25, Cost: total,
		})
	}
	t := report.NewTable("TTM and cost for 10M A11 chips per process node",
		"node", "tapeout", "fab", "package", "TTM mean", "95% CI ±10%", "95% CI ±25%", "cost ($B)")
	for _, r := range rows {
		t.AddRow(r.Node.String(), report.Fmt1(float64(r.Tapeout)), report.Fmt1(float64(r.Fab)),
			report.Fmt1(float64(r.Pack)), report.Fmt1(r.TTM.Mean),
			fmt.Sprintf("[%.1f, %.1f]", r.TTM.CI.Lo, r.TTM.CI.Hi),
			fmt.Sprintf("[%.1f, %.1f]", r.CI25.CI.Lo, r.CI25.CI.Hi),
			report.Fmt2(r.Cost.Billions()))
	}
	return &Result{
		ID:       "7",
		Title:    "Time-to-market and chip creation cost for 10 million A11 chips",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Fig8Data is the sensitivity heatmap: Total[input][node], with
// bootstrap 95% CI half-widths in TotalCI.
type Fig8Data struct {
	Inputs  []string
	Nodes   []technode.Node
	Total   map[string]map[technode.Node]float64
	TotalCI map[string]map[technode.Node]stats.Interval
}

func fig8(cfg Config) (*Result, error) {
	var base core.Model
	const n = 10e6
	nodes := technode.Producing()
	data := Fig8Data{
		Inputs: core.Inputs, Nodes: nodes,
		Total:   map[string]map[technode.Node]float64{},
		TotalCI: map[string]map[technode.Node]stats.Interval{},
	}
	for _, in := range core.Inputs {
		data.Total[in] = map[technode.Node]float64{}
		data.TotalCI[in] = map[technode.Node]stats.Interval{}
	}
	for _, node := range nodes {
		d := scenario.A11At(node)
		res, err := sens.TotalEffectWithCI(core.Inputs, sens.Config{N: cfg.sobolN(), Variation: 0.10, Seed: 7}, 200,
			func(mult []float64) (float64, error) {
				m := base
				for i, name := range core.Inputs {
					if err := m.Perturb.SetInput(name, mult[i]); err != nil {
						return 0, err
					}
				}
				t, err := m.TTM(d, n, market.Full())
				return float64(t), err
			})
		if err != nil {
			return nil, err
		}
		for i, in := range core.Inputs {
			data.Total[in][node] = res.Total[i]
			data.TotalCI[in][node] = res.TotalCI[i]
		}
	}
	cols := make([]string, len(nodes))
	for i, nd := range nodes {
		cols[i] = nd.String()
	}
	mx := report.NewMatrix("Total-effect index S_T by input and node (10M A11 chips)", core.Inputs, cols)
	mx.CornerTag = "input"
	ciMx := report.NewMatrix("bootstrap 95% CI half-width of S_T (200 resamples)", core.Inputs, cols)
	ciMx.CornerTag = "input"
	for i, in := range core.Inputs {
		for j, nd := range nodes {
			mx.Set(i, j, report.Fmt2(data.Total[in][nd]))
			ciMx.Set(i, j, fmt.Sprintf("±%.2f", data.TotalCI[in][nd].Width()/2))
		}
	}
	return &Result{
		ID:       "8",
		Title:    "Sobol sensitivity of A11 time-to-market (higher S_T = more output variance)",
		Sections: []string{mx.String(), ciMx.String()},
		Data:     data,
	}, nil
}

// Fig9Data holds per-node CAS band curves.
type Fig9Data struct {
	Nodes    []technode.Node
	Capacity []float64
	// Bands[node][i] aligns with Capacity.
	Bands map[technode.Node][]mc.Band
}

// fig9Nodes are the five most advanced producing nodes of Fig. 9.
var fig9Nodes = []technode.Node{technode.N40, technode.N28, technode.N14, technode.N7, technode.N5}

func fig9(cfg Config) (*Result, error) {
	var m core.Model
	const n = 10e6
	caps := market.CapacitySweep(0.2, 1.0, cfg.capacityPoints())
	data := Fig9Data{Nodes: fig9Nodes, Capacity: caps, Bands: map[technode.Node][]mc.Band{}}
	for _, node := range fig9Nodes {
		d := scenario.A11At(node)
		bands, err := mc.BandCurve(context.Background(), m, mc.Config{Samples: cfg.curveSamples()}, caps,
			func(pm core.Model, x float64) (float64, error) {
				r, err := pm.CAS(d, n, market.Full().AtCapacity(x))
				return r.CAS, err
			})
		if err != nil {
			return nil, err
		}
		data.Bands[node] = bands
	}
	t := report.NewTable("CAS vs production capacity for 10M A11 chips (mean [95% CI ±10%])",
		append([]string{"capacity"}, nodeNames(fig9Nodes)...)...)
	for i, c := range caps {
		row := []interface{}{percentHeader(c)}
		for _, node := range fig9Nodes {
			b := data.Bands[node][i]
			row = append(row, fmt.Sprintf("%.0f [%.0f, %.0f]", b.Mean/1000, b.CI10.Lo/1000, b.CI10.Hi/1000))
		}
		t.AddRow(row...)
	}
	return &Result{
		ID:       "9",
		Title:    "Chip Agility Score for 10 million A11 chips (kilo-wafers/week²)",
		Sections: []string{t.String()},
		Data:     data,
	}, nil
}

// Fig10Data is TTM[node][quantity].
type Fig10Data struct {
	Nodes      []technode.Node
	Quantities []float64
	TTM        map[technode.Node]map[float64]units.Weeks
	// Fastest[q] is the quickest node at quantity q (the blue outline
	// of the paper's matrix).
	Fastest map[float64]technode.Node
}

func fig10(Config) (*Result, error) {
	var m core.Model
	nodes := technode.Producing()
	data := Fig10Data{
		Nodes: nodes, Quantities: Quantities,
		TTM:     map[technode.Node]map[float64]units.Weeks{},
		Fastest: map[float64]technode.Node{},
	}
	for _, node := range nodes {
		data.TTM[node] = map[float64]units.Weeks{}
	}
	for _, q := range Quantities {
		best, bestTTM := technode.Node(0), math.Inf(1)
		for _, node := range nodes {
			ttm, err := m.TTM(scenario.A11At(node), q, market.Full())
			if err != nil {
				return nil, err
			}
			data.TTM[node][q] = ttm
			if float64(ttm) < bestTTM {
				best, bestTTM = node, float64(ttm)
			}
		}
		data.Fastest[q] = best
	}
	rows := make([]string, len(Quantities))
	for i, q := range Quantities {
		rows[i] = report.FmtSI(q)
	}
	mx := report.NewMatrix("TTM (weeks) for A11 by node and final chip count; * marks the fastest node per row",
		rows, nodeNames(nodes))
	mx.CornerTag = "chips"
	for i, q := range Quantities {
		for j, node := range nodes {
			cell := report.Fmt1(float64(data.TTM[node][q]))
			if data.Fastest[q] == node {
				cell += "*"
			}
			mx.Set(i, j, cell)
		}
	}
	return &Result{
		ID:       "10",
		Title:    "Time-to-market matrix for A11 chips",
		Sections: []string{mx.String()},
		Data:     data,
	}, nil
}

// QueueCurves holds Figs. 11/12 data: per queue length, a band curve
// over capacity.
type QueueCurves struct {
	QueueWeeks []units.Weeks
	Capacity   []float64
	Bands      map[units.Weeks][]mc.Band
}

var queueSweep = []units.Weeks{0, 1, 2, 4}

func queueStudy(cfg Config, output func(core.Model, market.Conditions) (float64, error)) (QueueCurves, error) {
	var m core.Model
	caps := market.CapacitySweep(0.25, 1.0, cfg.capacityPoints())
	data := QueueCurves{QueueWeeks: queueSweep, Capacity: caps, Bands: map[units.Weeks][]mc.Band{}}
	for _, q := range queueSweep {
		base := market.Full()
		if q > 0 {
			base = base.WithQueue(technode.N7, q)
		}
		bands, err := mc.BandCurve(context.Background(), m, mc.Config{Samples: cfg.curveSamples()}, caps,
			func(pm core.Model, x float64) (float64, error) {
				return output(pm, base.AtCapacity(x))
			})
		if err != nil {
			return QueueCurves{}, err
		}
		data.Bands[q] = bands
	}
	return data, nil
}

func queueTable(title, unit string, data QueueCurves, scale float64) *report.Table {
	headers := []string{"capacity"}
	for _, q := range data.QueueWeeks {
		headers = append(headers, fmt.Sprintf("queue %.0fwk (%s)", float64(q), unit))
	}
	t := report.NewTable(title, headers...)
	for i, c := range data.Capacity {
		row := []interface{}{percentHeader(c)}
		for _, q := range data.QueueWeeks {
			b := data.Bands[q][i]
			row = append(row, fmt.Sprintf("%.1f [%.1f, %.1f]", b.Mean*scale, b.CI10.Lo*scale, b.CI10.Hi*scale))
		}
		t.AddRow(row...)
	}
	return t
}

func fig11(cfg Config) (*Result, error) {
	const n = 10e6
	d := scenario.A11At(technode.N7)
	data, err := queueStudy(cfg, func(pm core.Model, c market.Conditions) (float64, error) {
		t, err := pm.TTM(d, n, c)
		return float64(t), err
	})
	if err != nil {
		return nil, err
	}
	t := queueTable("TTM vs capacity by quoted queue (10M A11 chips at 7nm)", "wk", data, 1)
	return &Result{
		ID:       "11",
		Title:    "Time-to-market under foundry queues (T_fab,queue study)",
		Sections: []string{t.String()},
		Data:     data,
	}, nil
}

func fig12(cfg Config) (*Result, error) {
	const n = 10e6
	d := scenario.A11At(technode.N7)
	data, err := queueStudy(cfg, func(pm core.Model, c market.Conditions) (float64, error) {
		r, err := pm.CAS(d, n, c)
		return r.CAS, err
	})
	if err != nil {
		return nil, err
	}
	t := queueTable("CAS vs capacity by quoted queue (10M A11 chips at 7nm)", "kW/wk²", data, 1.0/1000)
	return &Result{
		ID:       "12",
		Title:    "Chip Agility Score under foundry queues",
		Sections: []string{t.String()},
		Data:     data,
	}, nil
}

func nodeNames(nodes []technode.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.String()
	}
	return out
}

// table1 reproduces the paper's Table 1: the chip creation process
// model parameters, with this implementation's units and the module
// that owns each.
func table1(Config) (*Result, error) {
	t := report.NewTable("Chip creation process model parameters",
		"parameter", "explanation", "units here", "owned by")
	rows := [][4]string{
		{"N_TT", "Number of Total Transistors", "transistors", "design.Die.TotalTransistors"},
		{"N_UT", "Number of Unique/Unverified Transistors", "transistors", "design.Die.UniqueTransistors"},
		{"E_tapeout", "Tapeout Engineering Effort", "engineer-hours / M transistors", "technode.Params.TapeoutEffort"},
		{"N_W", "Number of Wafers", "wafers (expected)", "core.NodeFabResult.Wafers"},
		{"mu_W", "Wafer Production Rate of the Foundry", "wafers / week", "technode.Params.WaferRate"},
		{"L_fab", "Foundry Fabrication Latency", "weeks", "technode.Params.FabLatency"},
		{"n", "Number of Final Chips", "chips", "core.Model.Evaluate argument"},
		{"Y", "Die Yield", "fraction", "yield.Yield (Eq. 6)"},
		{"A_die", "Die Area", "mm^2", "design.Die.Area"},
		{"N_die_package", "Number of Dies per Package", "dies", "design.Design.DiesPerPackage"},
		{"L_TAP", "Testing, Assembly, and Packaging Latency", "weeks", "technode.Params.TAPLatency"},
		{"E_testing", "Testing Engineering Effort", "weeks / transistor tested", "technode.Params.TestingEffort"},
		{"E_packaging", "Packaging Engineering Effort", "weeks / (chip*mm^2)", "technode.Params.PackageEffort"},
	}
	for _, r := range rows {
		t.AddRow(r[0], r[1], r[2], r[3])
	}
	return &Result{
		ID:       "t1",
		Title:    "Model parameter glossary (Table 1 of the paper, mapped to this implementation)",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}
