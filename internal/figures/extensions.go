package figures

// Extension experiments: studies the paper motivates but does not
// evaluate, built from the same substrates. They register under "x"
// ids so the CLI and bench harness treat them like paper figures.
//
//	x1 — speculative 3 nm/2 nm re-release of the A11, with node
//	     parameters extrapolated from the effort-curve regressions
//	     ("Big Trouble at 3nm").
//	x2 — operational disruption replay: the closed-form promise vs the
//	     discrete-event outcome when a fab line fails mid-run.
//	x3 — defect binning (core salvage): how selling ≥m-good-core dies
//	     moves yield, TTM, cost and agility for a Zen-class compute die.
//	x4 — workload sensitivity of the cache study: the IPC/TTM-optimal
//	     configuration under each cachesim workload preset.
//	x5 — endogenous queue formation: a demand shock with and without
//	     the hoarding feedback of Fig. 1(c), and what the resulting
//	     queue does to an order placed at the worst moment.
//	x6 — NRE break-even volumes for two-process manufacturing: the
//	     volume at which the second tapeout pays for itself.
//	x7 — endogenous shortage replay: per-node demand simulations emit
//	     market-wide queue quotes, which feed Eq. 4 and re-rank the
//	     node-selection study.

import (
	"fmt"
	"math"

	"ttmcas/internal/cachesim"
	"ttmcas/internal/core"
	"ttmcas/internal/cost"
	"ttmcas/internal/demand"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/opt"
	"ttmcas/internal/report"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
	"ttmcas/internal/yield"
)

func init() {
	register("x1", ext1Speculative)
	register("x2", ext2Disruption)
	register("x3", ext3Salvage)
	register("x4", ext4Workloads)
	register("x5", ext5Hoarding)
	register("x6", ext6BreakEven)
	register("x7", ext7Shortage)
}

// SpeculativeNodes builds "3 nm" and "2 nm" parameter sets by
// extrapolating the calibrated curves: tapeout effort from the
// tail-fitted exponential, density/costs/latency continuing their
// per-generation ratios.
func SpeculativeNodes() ([]technode.Params, error) {
	n5 := technode.MustLookup(technode.N5)
	var out []technode.Params
	for i, nm := range []int{3, 2} {
		idx := 12 + float64(i)
		effort, err := technode.ExtrapolateTapeout(idx)
		if err != nil {
			return nil, err
		}
		scale := float64(i + 1)
		out = append(out, technode.Params{
			Node: technode.Node(nm),
			// Ramping lines start small: about half of 5 nm capacity,
			// shrinking again for 2 nm.
			WaferRate:     units.WafersPerWeek(float64(n5.WaferRate) * 0.55 / scale),
			DefectDensity: n5.DefectDensity * units.DefectsPerCM2(1+0.3*scale),
			Density:       n5.Density * units.MTrPerMM2(1+0.6*scale),
			FabLatency:    n5.FabLatency + units.Weeks(2*scale),
			TAPLatency:    n5.TAPLatency,
			TapeoutEffort: effort,
			TestingEffort: n5.TestingEffort * (1 + 0.1*scale),
			PackageEffort: n5.PackageEffort * 0.9,
			WaferCost:     n5.WaferCost * units.USD(1+0.5*scale),
			MaskSetCost:   n5.MaskSetCost * units.USD(1+0.6*scale),
		})
	}
	return out, nil
}

// Ext1Row is one node of the speculative study.
type Ext1Row struct {
	Node    technode.Node
	Tapeout units.Weeks
	TTM     units.Weeks
	CAS     float64
	Cost    units.USD
}

func ext1Speculative(Config) (*Result, error) {
	spec, err := SpeculativeNodes()
	if err != nil {
		return nil, err
	}
	db := technode.Default()
	for _, p := range spec {
		if db, err = db.With(p); err != nil {
			return nil, err
		}
	}
	m := core.Model{Nodes: db}
	cm := cost.Model{Nodes: db}
	const n = 10e6
	nodes := []technode.Node{technode.N7, technode.N5, technode.Node(3), technode.Node(2)}
	var rows []Ext1Row
	for _, node := range nodes {
		d := scenario.A11At(node)
		r, err := m.Evaluate(d, n, market.Full())
		if err != nil {
			return nil, err
		}
		cas, err := m.CAS(d, n, market.Full())
		if err != nil {
			return nil, err
		}
		total, err := cm.Total(d, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Ext1Row{Node: node, Tapeout: r.Tapeout, TTM: r.TTM, CAS: cas.CAS, Cost: total})
	}
	t := report.NewTable("A11 re-release on speculative leading-edge nodes (10M chips)",
		"node", "tapeout (wk)", "TTM (wk)", "CAS (w/wk²)", "cost ($B)")
	for _, r := range rows {
		t.AddRow(r.Node.String(), report.Fmt1(float64(r.Tapeout)), report.Fmt1(float64(r.TTM)),
			fmt.Sprintf("%.0f", r.CAS), report.Fmt2(r.Cost.Billions()))
	}
	return &Result{
		ID:       "x1",
		Title:    "tapeout effort extrapolated beyond 5nm (\"Big Trouble at 3nm\")",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Ext2Row is one disruption scenario of the replay study.
type Ext2Row struct {
	Name     string
	Promise  units.Weeks // analytic TTM under initial conditions
	Actual   units.Weeks // simulated TTM with the disruption unfolding
	Slip     units.Weeks
	Critical technode.Node
}

func ext2Disruption(Config) (*Result, error) {
	var m core.Model
	d := scenario.Zen2()
	// 20M chips: ~0.8 weeks of 7nm starts and ~3.2 weeks of 12nm
	// starts, so week-zero disruptions land inside the start window.
	const n = 20e6
	cases := []struct {
		name  string
		sched core.DisruptionSchedule
	}{
		{"no disruption", nil},
		{"7nm outage wk0-2", core.DisruptionSchedule{
			technode.N7: {{AtWeek: 0, Fraction: 0}, {AtWeek: 2, Fraction: 1}},
		}},
		{"12nm outage wk0-8", core.DisruptionSchedule{
			technode.N12: {{AtWeek: 0, Fraction: 0}, {AtWeek: 8, Fraction: 1}},
		}},
		{"both lines at 60% wk0-10", core.DisruptionSchedule{
			technode.N7:  {{AtWeek: 0, Fraction: 0.6}, {AtWeek: 10, Fraction: 1}},
			technode.N12: {{AtWeek: 0, Fraction: 0.6}, {AtWeek: 10, Fraction: 1}},
		}},
	}
	var rows []Ext2Row
	for _, c := range cases {
		res, err := m.EvaluateOperational(d, n, market.Full(), c.sched)
		if err != nil {
			return nil, err
		}
		// The operationally critical node is whichever line finished
		// last in simulation.
		var crit technode.Node
		worst := units.Weeks(-1)
		for node, r := range res.PerNode {
			if r.LastFabComplete > worst {
				worst, crit = r.LastFabComplete, node
			}
		}
		rows = append(rows, Ext2Row{
			Name: c.name, Promise: res.Analytic.TTM, Actual: res.TTM, Slip: res.Slip, Critical: crit,
		})
	}
	t := report.NewTable("Zen 2, 20M chips: closed-form promise vs discrete-event outcome",
		"disruption", "promised TTM (wk)", "actual TTM (wk)", "slip (wk)", "critical line")
	for _, r := range rows {
		t.AddRow(r.Name, report.Fmt1(float64(r.Promise)), report.Fmt1(float64(r.Actual)),
			report.Fmt1(float64(r.Slip)), r.Critical.String())
	}
	return &Result{
		ID:       "x2",
		Title:    "operational disruption replay (fabsim-backed fabrication phase)",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Ext3Row is one bin floor of the salvage study.
type Ext3Row struct {
	MinGoodCores int
	Yield        float64
	TTM          units.Weeks
	CAS          float64
	Cost         units.USD
}

func ext3Salvage(Config) (*Result, error) {
	var m core.Model
	var cm cost.Model
	const n = 50e6
	mk := func(minGood int) design.Design {
		die := design.Die{Name: "ccd", Node: technode.N7, NTT: 3.8e9, NUT: 475e6}
		if minGood < 8 {
			die.Salvage = &yield.Salvage{Cores: 8, MinGoodCores: minGood, CoreAreaFraction: 0.7}
		}
		return design.Design{Name: fmt.Sprintf("ccd-bin%d", minGood), Dies: []design.Die{die}}
	}
	var rows []Ext3Row
	for _, minGood := range []int{8, 7, 6, 4} {
		d := mk(minGood)
		r, err := m.Evaluate(d, n, market.Full())
		if err != nil {
			return nil, err
		}
		cas, err := m.CAS(d, n, market.Full())
		if err != nil {
			return nil, err
		}
		total, err := cm.Total(d, n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Ext3Row{
			MinGoodCores: minGood, Yield: r.Dies[0].Yield, TTM: r.TTM, CAS: cas.CAS, Cost: total,
		})
	}
	t := report.NewTable("8-core 7nm compute die, 50M chips, by lowest sellable bin",
		"min good cores", "sellable yield", "TTM (wk)", "CAS (w/wk²)", "cost ($B)")
	for _, r := range rows {
		label := fmt.Sprintf("%d/8", r.MinGoodCores)
		if r.MinGoodCores == 8 {
			label += " (no binning)"
		}
		t.AddRow(label, fmt.Sprintf("%.3f", r.Yield), report.Fmt1(float64(r.TTM)),
			fmt.Sprintf("%.0f", r.CAS), report.Fmt2(r.Cost.Billions()))
	}
	return &Result{
		ID:       "x3",
		Title:    "defect binning (core salvage) as a supply-chain lever",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Ext4Row is one workload preset's optimal configuration.
type Ext4Row struct {
	Workload string
	Best     opt.CachePoint
}

func ext4Workloads(cfg Config) (*Result, error) {
	var rows []Ext4Row
	for _, w := range cachesim.Presets() {
		tbl, err := cachesim.BuildIPCTable(w, cachesim.CPUModel{}, cachesim.SweepSizesKB, cfg.cacheRefs()/2)
		if err != nil {
			return nil, err
		}
		study := opt.CacheStudy{Table: tbl}
		pts, err := study.Evaluate(technode.N14, 100e6)
		if err != nil {
			return nil, err
		}
		best, err := opt.Best(pts, opt.MaxIPCPerTTM)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Ext4Row{Workload: w.Name, Best: best})
	}
	t := report.NewTable("IPC/TTM-optimal caches per workload (16-core Ariane, 100M chips, 14nm)",
		"workload", "I$ (KB)", "D$ (KB)", "IPC", "TTM (wk)")
	for _, r := range rows {
		t.AddRow(r.Workload, r.Best.IKB, r.Best.DKB, fmt.Sprintf("%.4f", r.Best.IPC),
			report.Fmt1(float64(r.Best.TTM)))
	}
	return &Result{
		ID:       "x4",
		Title:    "the cache-sizing conclusion across workload classes",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Ext5Row is one policy of the hoarding study.
type Ext5Row struct {
	Policy       string
	PeakLeadTime units.Weeks
	RecoveryWeek int
	ExcessWafers float64
	// TTMAtPeak is the A11@7nm time-to-market for an order placed at
	// the worst week, with the simulated backlog as the Eq. 4 queue.
	TTMAtPeak units.Weeks
}

func ext5Hoarding(Config) (*Result, error) {
	p7 := technode.MustLookup(technode.N7)
	base := demand.Config{
		Capacity:   p7.WaferRate,
		BaseDemand: float64(p7.WaferRate) * 0.85,
		FabLatency: p7.FabLatency,
		Weeks:      120,
	}
	// A 2021-style surge: +40% demand for 16 weeks.
	shock := []demand.Shock{{StartWeek: 10, EndWeek: 26, Multiplier: 1.4}}

	var m core.Model
	d := scenario.A11At(technode.N7)
	const n = 10e6
	var rows []Ext5Row
	for _, hoarding := range []bool{false, true} {
		cfg := base
		cfg.Hoarding = hoarding
		res, err := demand.Simulate(cfg, shock)
		if err != nil {
			return nil, err
		}
		// Find the worst week and price an order placed then.
		worst, worstWeek := units.Weeks(0), 0
		for _, w := range res.Weeks {
			if w.LeadTime > worst {
				worst, worstWeek = w.LeadTime, w.Week
			}
		}
		q, err := demand.QueueAtWeek(res, worstWeek)
		if err != nil {
			return nil, err
		}
		queueWeeks := units.Weeks(float64(q) / float64(p7.WaferRate))
		ttm, err := m.TTM(d, n, market.Full().WithQueue(technode.N7, queueWeeks))
		if err != nil {
			return nil, err
		}
		policy := "rational ordering"
		if hoarding {
			policy = "hoarding (Fig. 1c)"
		}
		rows = append(rows, Ext5Row{
			Policy: policy, PeakLeadTime: res.PeakLeadTime,
			RecoveryWeek: res.RecoveryWeek, ExcessWafers: res.ExcessOrders,
			TTMAtPeak: ttm,
		})
	}
	t := report.NewTable("7nm line, +40% demand shock for 16 weeks, with and without hoarding",
		"ordering policy", "peak quoted lead time (wk)", "recovery week", "excess wafers hoarded", "A11 TTM at peak (wk)")
	for _, r := range rows {
		rec := fmt.Sprintf("%d", r.RecoveryWeek)
		if r.RecoveryWeek < 0 {
			rec = "never"
		}
		t.AddRow(r.Policy, report.Fmt1(float64(r.PeakLeadTime)), rec,
			fmt.Sprintf("%.0f", r.ExcessWafers), report.Fmt1(float64(r.TTMAtPeak)))
	}
	return &Result{
		ID:       "x5",
		Title:    "queue formation and the hoarding feedback loop",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Ext6Row is one node pairing of the break-even study.
type Ext6Row struct {
	Primary, Secondary technode.Node
	// ExtraNRE is the added mask + tapeout cost of the second process.
	ExtraNRE units.USD
	// PerChipSaving is v_single − v_split (positive when the split's
	// per-chip cost is lower).
	PerChipSaving units.USD
	// BreakEven is the volume where the two-process portfolio becomes
	// cheaper; zero means it never does.
	BreakEven float64
}

func ext6BreakEven(Config) (*Result, error) {
	var cm cost.Model
	mk := func(n technode.Node) design.Design {
		return scenario.RavenConfig{Node: n}.Design()
	}
	pairs := [][2]technode.Node{
		{technode.N250, technode.N180},
		{technode.N130, technode.N90},
		{technode.N90, technode.N65},
		{technode.N40, technode.N28},
		{technode.N28, technode.N40},
	}
	var rows []Ext6Row
	for _, pr := range pairs {
		_, vp, err := cm.Affine(mk(pr[0]))
		if err != nil {
			return nil, err
		}
		fs, vs, err := cm.Affine(mk(pr[1]))
		if err != nil {
			return nil, err
		}
		// Even 50/50 split: portfolio = (fp+fs) + n·(vp+vs)/2.
		row := Ext6Row{
			Primary: pr[0], Secondary: pr[1],
			ExtraNRE:      fs,
			PerChipSaving: vp - (vp+vs)/2,
		}
		if row.PerChipSaving > 0 {
			row.BreakEven = float64(row.ExtraNRE) / float64(row.PerChipSaving)
		}
		rows = append(rows, row)
	}
	t := report.NewTable("Raven MCU: volume at which a 50/50 two-process split pays for its second tapeout",
		"primary", "secondary", "extra NRE", "per-chip saving", "break-even volume")
	for _, r := range rows {
		be := "never (secondary costs more per chip)"
		if r.BreakEven > 0 {
			be = report.FmtSI(r.BreakEven) + " chips"
		}
		t.AddRow(r.Primary.String(), r.Secondary.String(), units.FmtUSD(r.ExtraNRE),
			fmt.Sprintf("$%.4f", float64(r.PerChipSaving)), be)
	}
	return &Result{
		ID:       "x6",
		Title:    "NRE break-even for multi-process manufacturing (§7's economic-feasibility claim)",
		Sections: []string{t.String()},
		Data:     rows,
	}, nil
}

// Ext7Row is one node of the endogenous-shortage replay.
type Ext7Row struct {
	Node        technode.Node
	Utilization float64
	QueueWeeks  units.Weeks
	BaselineTTM units.Weeks
	ShortageTTM units.Weeks
}

// Ext7Data adds the ranking flip.
type Ext7Data struct {
	Rows                             []Ext7Row
	FastestBaseline, FastestShortage technode.Node
}

// ext7Utilization is the assumed steady-state demand/capacity ratio per
// node before the shock: leading-edge and automotive-legacy lines run
// hot, mid-legacy lines have slack.
var ext7Utilization = map[technode.Node]float64{
	technode.N250: 0.93, technode.N180: 0.85, technode.N130: 0.80,
	technode.N90: 0.80, technode.N65: 0.85, technode.N40: 0.90,
	technode.N28: 0.94, technode.N14: 0.90, technode.N7: 0.95,
	technode.N5: 0.92,
}

func ext7Shortage(Config) (*Result, error) {
	var m core.Model
	const n = 10e6
	const sampleWeek = 29 // just before the shock ends: peak stress
	shock := []demand.Shock{{StartWeek: 10, EndWeek: 30, Multiplier: 1.25}}

	conditions := market.Full()
	data := Ext7Data{}
	for _, node := range technode.Producing() {
		p := technode.MustLookup(node)
		cfg := demand.Config{
			Capacity:   p.WaferRate,
			BaseDemand: float64(p.WaferRate) * ext7Utilization[node],
			FabLatency: p.FabLatency,
			Hoarding:   true,
			Weeks:      60,
		}
		res, err := demand.Simulate(cfg, shock)
		if err != nil {
			return nil, err
		}
		q, err := demand.QueueAtWeek(res, sampleWeek)
		if err != nil {
			return nil, err
		}
		queueWeeks := units.Weeks(float64(q) / float64(p.WaferRate))
		conditions = conditions.WithQueue(node, queueWeeks)
		data.Rows = append(data.Rows, Ext7Row{
			Node: node, Utilization: ext7Utilization[node], QueueWeeks: queueWeeks,
		})
	}

	bestBase, bestShort := units.Weeks(math.Inf(1)), units.Weeks(math.Inf(1))
	for i := range data.Rows {
		row := &data.Rows[i]
		d := scenario.A11At(row.Node)
		base, err := m.TTM(d, n, market.Full())
		if err != nil {
			return nil, err
		}
		short, err := m.TTM(d, n, conditions)
		if err != nil {
			return nil, err
		}
		row.BaselineTTM, row.ShortageTTM = base, short
		if base < bestBase {
			bestBase, data.FastestBaseline = base, row.Node
		}
		if short < bestShort {
			bestShort, data.FastestShortage = short, row.Node
		}
	}

	t := report.NewTable("A11 node ranking, 10M chips: baseline vs an endogenous 2021-style shortage (+25% demand, hoarding)",
		"node", "utilization", "emergent queue (wk)", "baseline TTM (wk)", "shortage TTM (wk)")
	for _, r := range data.Rows {
		mark := func(n technode.Node, best technode.Node, v units.Weeks) string {
			s := report.Fmt1(float64(v))
			if n == best {
				s += "*"
			}
			return s
		}
		t.AddRow(r.Node.String(), fmt.Sprintf("%.0f%%", r.Utilization*100),
			report.Fmt1(float64(r.QueueWeeks)),
			mark(r.Node, data.FastestBaseline, r.BaselineTTM),
			mark(r.Node, data.FastestShortage, r.ShortageTTM))
	}
	return &Result{
		ID:       "x7",
		Title:    "market-wide queues generated by the demand model, fed back into node selection",
		Sections: []string{t.String()},
		Data:     data,
	}, nil
}
