package figures

import (
	"fmt"

	"ttmcas/internal/opt"
	"ttmcas/internal/report"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

func init() {
	register("4", fig4)
	register("5", fig5)
	register("6", fig6)
}

// Fig4Data is the full (I$, D$) scatter for 100M 16-core Ariane chips
// at 14 nm.
type Fig4Data struct {
	Points []opt.CachePoint
}

// cacheStudyPoints builds the shared scatter of Figs. 4 and 5.
func cacheStudyPoints(cfg Config) ([]opt.CachePoint, error) {
	tbl, err := ipcTable(cfg.cacheRefs())
	if err != nil {
		return nil, err
	}
	study := opt.CacheStudy{Table: tbl}
	return study.Evaluate(technode.N14, 100e6)
}

func fig4(cfg Config) (*Result, error) {
	pts, err := cacheStudyPoints(cfg)
	if err != nil {
		return nil, err
	}
	t := report.NewTable("IPC vs TTM per (I$, D$) configuration (16-core Ariane, 100M chips, 14nm)",
		"I$ (KB)", "D$ (KB)", "IPC", "TTM (wk)", "cost ($B)")
	for _, p := range pts {
		t.AddRow(p.IKB, p.DKB, fmt.Sprintf("%.4f", p.IPC), report.Fmt1(float64(p.TTM)), report.Fmt2(p.Cost.Billions()))
	}
	return &Result{
		ID:       "4",
		Title:    "IPC and time-to-market across cache configurations",
		Sections: []string{t.String()},
		Data:     Fig4Data{Points: pts},
	}, nil
}

// Fig5Data holds the normalized frontier and both optima.
type Fig5Data struct {
	Points     []opt.CachePoint
	BestByTTM  opt.CachePoint
	BestByCost opt.CachePoint
	// Penalties quantify the paper's asymmetry claim: how much of the
	// other metric each optimum gives up, as a fraction of its max.
	TTMOptCostPenalty, CostOptTTMPenalty float64
}

func fig5(cfg Config) (*Result, error) {
	pts, err := cacheStudyPoints(cfg)
	if err != nil {
		return nil, err
	}
	byTTM, err := opt.Best(pts, opt.MaxIPCPerTTM)
	if err != nil {
		return nil, err
	}
	byCost, err := opt.Best(pts, opt.MaxIPCPerCost)
	if err != nil {
		return nil, err
	}
	data := Fig5Data{
		Points: pts, BestByTTM: byTTM, BestByCost: byCost,
		TTMOptCostPenalty: 1 - byTTM.IPCPerCost/byCost.IPCPerCost,
		CostOptTTMPenalty: 1 - byCost.IPCPerTTM/byTTM.IPCPerTTM,
	}
	t := report.NewTable("Normalized IPC/TTM and IPC/cost per configuration",
		"I$ (KB)", "D$ (KB)", "IPC/TTM (norm)", "IPC/cost (norm)", "marker")
	for _, p := range pts {
		marker := ""
		if p.IKB == byTTM.IKB && p.DKB == byTTM.DKB {
			marker = "IPC/TTM-opt"
		}
		if p.IKB == byCost.IKB && p.DKB == byCost.DKB {
			if marker != "" {
				marker += "+"
			}
			marker += "IPC/cost-opt"
		}
		t.AddRow(p.IKB, p.DKB,
			fmt.Sprintf("%.3f", p.IPCPerTTM/byTTM.IPCPerTTM),
			fmt.Sprintf("%.3f", p.IPCPerCost/byCost.IPCPerCost), marker)
	}
	summary := report.NewTable("Optima",
		"objective", "I$ (KB)", "D$ (KB)", "IPC", "TTM (wk)", "cost ($B)", "penalty on other metric")
	summary.AddRow("IPC/TTM", byTTM.IKB, byTTM.DKB, fmt.Sprintf("%.4f", byTTM.IPC),
		report.Fmt1(float64(byTTM.TTM)), report.Fmt2(byTTM.Cost.Billions()),
		fmt.Sprintf("%.1f%% worse IPC/cost", data.TTMOptCostPenalty*100))
	summary.AddRow("IPC/cost", byCost.IKB, byCost.DKB, fmt.Sprintf("%.4f", byCost.IPC),
		report.Fmt1(float64(byCost.TTM)), report.Fmt2(byCost.Cost.Billions()),
		fmt.Sprintf("%.1f%% worse IPC/TTM", data.CostOptTTMPenalty*100))
	return &Result{
		ID:       "5",
		Title:    "IPC/TTM vs IPC/cost optimization divergence",
		Sections: []string{summary.String(), t.String()},
		Data:     data,
	}, nil
}

// Fig6Cell is one optimal configuration of the Fig. 6 matrix.
type Fig6Cell struct {
	IKB, DKB int
	// AreaOverhead is the cache fraction of total die transistors,
	// the paper's color scale.
	AreaOverhead float64
}

// Fig6Data maps (quantity, node) to the IPC/TTM-optimal cache pair.
type Fig6Data struct {
	Nodes      []technode.Node
	Quantities []float64
	Cells      map[float64]map[technode.Node]Fig6Cell
}

func fig6(cfg Config) (*Result, error) {
	tbl, err := ipcTable(cfg.cacheRefs())
	if err != nil {
		return nil, err
	}
	nodes := technode.Producing()
	data := Fig6Data{Nodes: nodes, Quantities: Quantities, Cells: map[float64]map[technode.Node]Fig6Cell{}}
	study := opt.CacheStudy{Table: tbl}
	for _, q := range Quantities {
		data.Cells[q] = map[technode.Node]Fig6Cell{}
		for _, node := range nodes {
			pts, err := study.Evaluate(node, q)
			if err != nil {
				return nil, err
			}
			best, err := opt.Best(pts, opt.MaxIPCPerTTM)
			if err != nil {
				return nil, err
			}
			cacheTr := 16 * float64(scenario.CacheTransistors(best.IKB)+scenario.CacheTransistors(best.DKB))
			d := scenario.ArianeConfig{Cores: 16, ICacheKB: best.IKB, DCacheKB: best.DKB, Node: node}.Design()
			data.Cells[q][node] = Fig6Cell{
				IKB: best.IKB, DKB: best.DKB,
				AreaOverhead: cacheTr / float64(d.Dies[0].TotalTransistors()),
			}
		}
	}
	rows := make([]string, len(Quantities))
	for i, q := range Quantities {
		rows[i] = report.FmtSI(q)
	}
	mx := report.NewMatrix("IPC/TTM-optimal I$/D$ (KB) per node and quantity; (xx%) is cache share of die transistors",
		rows, nodeNames(nodes))
	mx.CornerTag = "chips"
	for i, q := range Quantities {
		for j, node := range nodes {
			c := data.Cells[q][node]
			mx.Set(i, j, fmt.Sprintf("%d/%d (%.0f%%)", c.IKB, c.DKB, c.AreaOverhead*100))
		}
	}
	return &Result{
		ID:       "6",
		Title:    "IPC/TTM-optimized cache configurations for the 16-core Ariane",
		Sections: []string{mx.String()},
		Data:     data,
	}, nil
}
