// Package figures regenerates every table and figure of the paper's
// evaluation (Figs. 3–14, Tables 2–4) from the model packages. Each
// generator returns a structured Result that the CLI renders as text,
// the benchmark harness times, and the integration tests assert
// against.
package figures

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"ttmcas/internal/cachesim"
)

// Config scales the Monte-Carlo and simulation budgets. The zero value
// reproduces the paper's fidelity; Fast() is for tests.
type Config struct {
	// MCSamples is the Monte-Carlo sample count for error bars; zero
	// means the paper's 1024.
	MCSamples int
	// CurveSamples is the per-point sample count for CI band curves
	// (Figs. 9, 11, 12); zero means 256.
	CurveSamples int
	// CacheRefs is the trace length per cache simulation; zero means
	// 1 000 000.
	CacheRefs int
	// SobolN is the Saltelli base sample count; zero means 512.
	SobolN int
	// SplitStep is the production-split granularity of Fig. 14; zero
	// means 0.02.
	SplitStep float64
	// CapacityPoints is the number of samples on capacity sweeps; zero
	// means 9 (20%..100%).
	CapacityPoints int
}

func (c Config) mcSamples() int {
	if c.MCSamples <= 0 {
		return 1024
	}
	return c.MCSamples
}

func (c Config) curveSamples() int {
	if c.CurveSamples <= 0 {
		return 256
	}
	return c.CurveSamples
}

func (c Config) cacheRefs() int {
	if c.CacheRefs <= 0 {
		return 1_000_000
	}
	return c.CacheRefs
}

func (c Config) sobolN() int {
	if c.SobolN <= 0 {
		return 512
	}
	return c.SobolN
}

func (c Config) splitStep() float64 {
	if c.SplitStep <= 0 {
		return 0.02
	}
	return c.SplitStep
}

func (c Config) capacityPoints() int {
	if c.CapacityPoints <= 0 {
		return 9
	}
	return c.CapacityPoints
}

// Fast returns a configuration with reduced budgets for quick runs and
// tests; shapes remain, error bars get noisier.
func Fast() Config {
	return Config{
		MCSamples:      96,
		CurveSamples:   48,
		CacheRefs:      200_000,
		SobolN:         96,
		SplitStep:      0.10,
		CapacityPoints: 5,
	}
}

// Quantities is the chip-count axis shared by Figs. 6 and 10.
var Quantities = []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8}

// Result is a regenerated figure or table.
type Result struct {
	// ID is the registry key ("3".."14", "t2".."t4").
	ID string
	// Title describes the experiment.
	Title string
	// Sections are the rendered tables/matrices in order.
	Sections []string
	// Data holds the generator-specific structured output for tests.
	Data interface{}
}

// Render concatenates the sections.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n", label(r.ID), r.Title)
	for i, s := range r.Sections {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(s)
	}
	return b.String()
}

func label(id string) string {
	switch {
	case strings.HasPrefix(id, "t"):
		return "Table " + strings.TrimPrefix(id, "t")
	case strings.HasPrefix(id, "x"):
		return "Extension " + strings.TrimPrefix(id, "x")
	default:
		return "Figure " + id
	}
}

// Generator produces one figure/table.
type Generator func(Config) (*Result, error)

// registry maps figure ids to generators; populated by init functions
// in the per-study files.
var registry = map[string]Generator{}

func register(id string, g Generator) { registry[id] = g }

// IDs returns the known figure/table ids in presentation order:
// figures 3–14, tables t2–t4, then extension studies x1–x4.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	rank := func(id string) int {
		switch {
		case strings.HasPrefix(id, "t"):
			return 1
		case strings.HasPrefix(id, "x"):
			return 2
		default:
			return 0
		}
	}
	num := func(id string) int {
		var v int
		fmt.Sscanf(strings.TrimLeft(id, "tx"), "%d", &v)
		return v
	}
	sort.Slice(ids, func(i, j int) bool {
		if ri, rj := rank(ids[i]), rank(ids[j]); ri != rj {
			return ri < rj
		}
		return num(ids[i]) < num(ids[j])
	})
	return ids
}

// Generate runs the generator for an id.
func Generate(id string, cfg Config) (*Result, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("figures: unknown figure/table %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return g(cfg)
}

// ipcTables caches the expensive cache-simulation sweep per trace
// length, shared by Figs. 4–6.
var ipcTables sync.Map // int -> cachesim.IPCTable

func ipcTable(refs int) (cachesim.IPCTable, error) {
	if v, ok := ipcTables.Load(refs); ok {
		return v.(cachesim.IPCTable), nil
	}
	tbl, err := cachesim.BuildIPCTable(cachesim.SPECLike(), cachesim.CPUModel{}, cachesim.SweepSizesKB, refs)
	if err != nil {
		return cachesim.IPCTable{}, err
	}
	ipcTables.Store(refs, tbl)
	return tbl, nil
}

// percentHeader renders a capacity fraction as "60%".
func percentHeader(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
