package figures

import (
	"math"
	"strings"
	"testing"

	"ttmcas/internal/opt"
	"ttmcas/internal/technode"
	"ttmcas/internal/units"
)

// fast is shared by all figure tests.
var fast = Fast()

func generate(t *testing.T, id string) *Result {
	t.Helper()
	r, err := Generate(id, fast)
	if err != nil {
		t.Fatalf("Generate(%q): %v", id, err)
	}
	if r.ID != id || len(r.Sections) == 0 || r.Title == "" {
		t.Fatalf("malformed result: %+v", r)
	}
	if !strings.Contains(r.Render(), r.Title) {
		t.Error("Render should include the title")
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "t1", "t2", "t3", "t4", "x1", "x2", "x3", "x4", "x5", "x6", "x7"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs order = %v, want %v", got, want)
		}
	}
	if _, err := Generate("99", fast); err == nil {
		t.Error("unknown id should error")
	}
}

func TestFig3ChipBMoreAgile(t *testing.T) {
	r := generate(t, "3")
	d := r.Data.(Fig3Data)
	last := len(d.Capacity) - 1
	// Fig. 3's story: Chip A is faster at full capacity... actually
	// the paper's Chip B has HIGHER TTM at max production but a lower
	// rate of change, hence higher CAS. Our Chip B (smaller die,
	// faster node) dominates in CAS everywhere.
	if !(d.ChipB[last].CAS > d.ChipA[last].CAS) {
		t.Errorf("Chip B should be more agile: CAS_B=%v CAS_A=%v", d.ChipB[last].CAS, d.ChipA[last].CAS)
	}
	// As capacity drops, Chip A's TTM rises faster than Chip B's.
	dA := float64(d.ChipA[0].TTM - d.ChipA[last].TTM)
	dB := float64(d.ChipB[0].TTM - d.ChipB[last].TTM)
	if dA <= dB {
		t.Errorf("Chip A should be more sensitive to capacity: ΔA=%v ΔB=%v", dA, dB)
	}
}

func TestTable2(t *testing.T) {
	r := generate(t, "t2")
	if !strings.Contains(r.Sections[0], "350") {
		t.Error("28nm's 350 kW/mo missing from Table 2")
	}
}

func TestFig4IPCvsTTMTradeoff(t *testing.T) {
	r := generate(t, "4")
	d := r.Data.(Fig4Data)
	if len(d.Points) != 121 {
		t.Fatalf("points = %d, want 11x11", len(d.Points))
	}
	var minTTM, maxTTM = math.Inf(1), 0.0
	for _, p := range d.Points {
		minTTM = math.Min(minTTM, float64(p.TTM))
		maxTTM = math.Max(maxTTM, float64(p.TTM))
	}
	// Fig. 4's spread: ~24 to ~32 weeks. Require a clear multi-week
	// spread driven by cache area.
	if maxTTM-minTTM < 3 {
		t.Errorf("TTM spread = %.1f weeks, want > 3", maxTTM-minTTM)
	}
	if minTTM < 15 || maxTTM > 45 {
		t.Errorf("TTM range [%.1f, %.1f] out of band", minTTM, maxTTM)
	}
}

func TestFig5OptimaDiverge(t *testing.T) {
	r := generate(t, "5")
	d := r.Data.(Fig5Data)
	if d.BestByTTM.IKB == d.BestByCost.IKB && d.BestByTTM.DKB == d.BestByCost.DKB {
		t.Errorf("IPC/TTM and IPC/cost optima coincide at (%d,%d); the paper's core claim is that they differ",
			d.BestByTTM.IKB, d.BestByTTM.DKB)
	}
	// The paper: each optimum pays a real but bounded penalty on the
	// other metric (4% / 18% in the paper; our calibration produces a
	// different split — see EXPERIMENTS.md — but both penalties must
	// be positive and moderate).
	for name, p := range map[string]float64{
		"TTM-opt cost penalty": d.TTMOptCostPenalty,
		"cost-opt TTM penalty": d.CostOptTTMPenalty,
	} {
		if p <= 0 || p > 0.5 {
			t.Errorf("%s = %.3f, want in (0, 0.5]", name, p)
		}
	}
	// The IPC/TTM optimum picks mid-size caches (the paper lands on
	// 32/32 KB): neither tiny nor maximal.
	tot := d.BestByTTM.IKB + d.BestByTTM.DKB
	if tot < 8 || tot > 1024 {
		t.Errorf("IPC/TTM optimum (%d,%d) not mid-range", d.BestByTTM.IKB, d.BestByTTM.DKB)
	}
}

func TestFig6CachesGrowWithDensityAndShrinkWithVolume(t *testing.T) {
	r := generate(t, "6")
	d := r.Data.(Fig6Data)
	total := func(c Fig6Cell) int { return c.IKB + c.DKB }
	// At low volume, advanced nodes afford bigger caches than legacy
	// nodes (denser silicon makes cache area cheap).
	lowQ := Quantities[0]
	if !(total(d.Cells[lowQ][technode.N5]) >= total(d.Cells[lowQ][technode.N250])) {
		t.Errorf("at %v chips, 5nm optimal cache %v should be >= 250nm's %v",
			lowQ, d.Cells[lowQ][technode.N5], d.Cells[lowQ][technode.N250])
	}
	// At high volume on legacy nodes, optimal caches shrink vs low
	// volume (wafer production becomes the bottleneck).
	hiQ := Quantities[len(Quantities)-1]
	if !(total(d.Cells[hiQ][technode.N250]) <= total(d.Cells[lowQ][technode.N250])) {
		t.Errorf("250nm optimal cache should shrink with volume: %v -> %v",
			d.Cells[lowQ][technode.N250], d.Cells[hiQ][technode.N250])
	}
}

func TestFig7Shapes(t *testing.T) {
	r := generate(t, "7")
	rows := r.Data.([]Fig7Row)
	byNode := map[technode.Node]Fig7Row{}
	for _, row := range rows {
		byNode[row.Node] = row
	}
	// 28nm fastest; 250nm slowest; 5nm slower than 7nm; CI(±25%)
	// wider than CI(±10%).
	for node, row := range byNode {
		if node != technode.N28 && row.TTM.Mean < byNode[technode.N28].TTM.Mean {
			t.Errorf("%s (%.1f wk) beat 28nm (%.1f wk)", node, row.TTM.Mean, byNode[technode.N28].TTM.Mean)
		}
		if row.CI25.CI.Width() <= row.TTM.CI.Width() {
			t.Errorf("%s: ±25%% CI should be wider", node)
		}
	}
	if byNode[technode.N250].TTM.Mean < 2*byNode[technode.N28].TTM.Mean {
		t.Error("250nm should be dramatically slower than 28nm")
	}
	if byNode[technode.N5].TTM.Mean <= byNode[technode.N7].TTM.Mean {
		t.Error("5nm should be slower than 7nm (lower wafer rate, longer tapeout)")
	}
	// Cost: legacy nodes (wafer-dominated) cost more than 7nm.
	if byNode[technode.N250].Cost <= byNode[technode.N7].Cost {
		t.Error("250nm wafer volume should dominate cost vs 7nm")
	}
}

func TestFig8SensitivityStory(t *testing.T) {
	r := generate(t, "8")
	d := r.Data.(Fig8Data)
	// Paper's reading of Fig. 8: legacy nodes are dominated by total
	// transistor count; 5nm by unique transistor count; mid nodes by
	// foundry latency.
	if !(d.Total["NTT"][technode.N250] > d.Total["NUT"][technode.N250]) {
		t.Error("250nm should be NTT-dominated")
	}
	if !(d.Total["NUT"][technode.N5] > d.Total["NTT"][technode.N5]) {
		t.Error("5nm should be NUT-dominated")
	}
	if !(d.Total["Lfab"][technode.N28] > d.Total["NUT"][technode.N28]) {
		t.Error("28nm should be latency-dominated over NUT")
	}
	// NUT monotone story: its influence grows toward advanced nodes.
	if !(d.Total["NUT"][technode.N5] > d.Total["NUT"][technode.N14]) {
		t.Error("NUT influence should grow toward 5nm")
	}
}

func TestFig9Orderings(t *testing.T) {
	r := generate(t, "9")
	d := r.Data.(Fig9Data)
	last := len(d.Capacity) - 1
	cas := func(n technode.Node) float64 { return d.Bands[n][last].Mean }
	if !(cas(technode.N7) > cas(technode.N14) && cas(technode.N14) > cas(technode.N5)) {
		t.Errorf("Fig 9 ordering broken: 7nm=%v 14nm=%v 5nm=%v",
			cas(technode.N7), cas(technode.N14), cas(technode.N5))
	}
	if !(cas(technode.N5) > cas(technode.N28) && cas(technode.N28) > cas(technode.N40)) {
		t.Errorf("Fig 9 tail ordering broken: 5nm=%v 28nm=%v 40nm=%v",
			cas(technode.N5), cas(technode.N28), cas(technode.N40))
	}
	// Curves decline as capacity declines.
	for _, n := range d.Nodes {
		if d.Bands[n][0].Mean >= d.Bands[n][last].Mean {
			t.Errorf("%s CAS should fall with capacity", n)
		}
	}
}

func TestFig10FastestShiftsAdvanced(t *testing.T) {
	r := generate(t, "10")
	d := r.Data.(Fig10Data)
	if d.Fastest[1e3] != technode.N250 {
		t.Errorf("at 1K chips the fastest node should be the cheapest-tapeout 250nm, got %s", d.Fastest[1e3])
	}
	if d.Fastest[1e7] != technode.N28 {
		t.Errorf("at 10M chips the fastest node should be 28nm, got %s", d.Fastest[1e7])
	}
	// 180nm beats 130nm and 90nm even at 100M chips (higher wafer
	// rate), one of the paper's observations.
	q := 1e8
	if !(d.TTM[technode.N180][q] < d.TTM[technode.N130][q] && d.TTM[technode.N180][q] < d.TTM[technode.N90][q]) {
		t.Error("180nm should beat 130nm and 90nm at 100M chips")
	}
}

func TestFig11QueueSteepensTTM(t *testing.T) {
	r := generate(t, "11")
	d := r.Data.(QueueCurves)
	last := len(d.Capacity) - 1
	// At full capacity, each queue week adds about a week.
	t0 := d.Bands[0][last].Mean
	t4 := d.Bands[4][last].Mean
	if t4-t0 < 3 || t4-t0 > 5.5 {
		t.Errorf("4-week queue at full capacity added %.1f weeks, want ~4", t4-t0)
	}
	// At 25% capacity the same queue quadruples.
	l0 := d.Bands[0][0].Mean
	l4 := d.Bands[4][0].Mean
	if l4-l0 < 12 {
		t.Errorf("4-week queue at 25%% capacity added %.1f weeks, want ~16", l4-l0)
	}
}

func TestFig12QueueCutsCAS(t *testing.T) {
	r := generate(t, "12")
	d := r.Data.(QueueCurves)
	last := len(d.Capacity) - 1
	base := d.Bands[0][last].Mean
	q1 := d.Bands[1][last].Mean
	if !(q1 < base) {
		t.Errorf("1-week queue should cut max CAS: %v -> %v", base, q1)
	}
	drop := 1 - q1/base
	// Section 6.3 reports a 37% drop; our calibration gives a larger
	// one (fewer wafers per order). Any substantial drop preserves the
	// claim; record the exact number in EXPERIMENTS.md.
	if drop < 0.2 {
		t.Errorf("1-week queue dropped max CAS by only %.0f%%", drop*100)
	}
	for _, q := range d.QueueWeeks[1:] {
		if !(d.Bands[q][last].Mean < base) {
			t.Errorf("queue %v should reduce CAS", q)
		}
	}
}

func TestTable3Values(t *testing.T) {
	r := generate(t, "t3")
	rows := r.Data.([]Table3Row)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tapeout weeks in the neighbourhood of the paper's 3.5/1.6/2.9/1.5.
	want := map[string][2]float64{
		"sorting-stream":    {2.8, 4.2},
		"sorting-iterative": {1.2, 2.0},
		"dft-stream":        {2.3, 3.5},
		"dft-iterative":     {1.1, 1.9},
	}
	for _, row := range rows {
		b := want[row.Name]
		if float64(row.TapeoutWk) < b[0] || float64(row.TapeoutWk) > b[1] {
			t.Errorf("%s tapeout = %.2f wk, want in [%v, %v]", row.Name, float64(row.TapeoutWk), b[0], b[1])
		}
		if row.TapeoutCost < 3e6 || row.TapeoutCost > 8e6 {
			t.Errorf("%s tapeout cost = %v, want millions of dollars", row.Name, row.TapeoutCost)
		}
	}
}

func TestTable4Values(t *testing.T) {
	r := generate(t, "t4")
	rows := r.Data.([]Table4Row)
	for _, row := range rows {
		if row.Tapeout7 <= row.Tapeout14 {
			t.Errorf("%s: 7nm tapeout should exceed 14nm's", row.Die)
		}
	}
	// Compute die: paper's derived 14nm area is 206 mm².
	if rows[0].Area14 < 195 || rows[0].Area14 > 215 {
		t.Errorf("compute die area at 14nm = %.0f, want ~206", float64(rows[0].Area14))
	}
}

func TestFig13ChipletStory(t *testing.T) {
	r := generate(t, "13")
	d := r.Data.(Fig13Data)
	idx := map[string]int{}
	for i, n := range d.Names {
		idx[n] = i
	}
	lastQ := len(d.Quantities) - 1
	// (a) Original mixed-process Zen 2 is faster to market than the
	// all-7nm chiplet design at high volume.
	if !(d.TTM[idx["zen2"]][lastQ] < d.TTM[idx["7nm-chiplet"]][lastQ]) {
		t.Errorf("zen2 (%.1f) should beat 7nm chiplet (%.1f) at 100M chips",
			float64(d.TTM[idx["zen2"]][lastQ]), float64(d.TTM[idx["7nm-chiplet"]][lastQ]))
	}
	// Chiplets beat monolithic equivalents on TTM at volume (yield).
	if !(d.TTM[idx["7nm-chiplet"]][lastQ] < d.TTM[idx["7nm-monolithic"]][lastQ]) {
		t.Error("7nm chiplet should beat 7nm monolithic")
	}
	if !(d.TTM[idx["12nm-chiplet"]][lastQ] < d.TTM[idx["12nm-monolithic"]][lastQ]) {
		t.Error("12nm chiplet should beat 12nm monolithic")
	}
	// (b) Mixed-process designs cost more than single-process chiplets
	// in NRE terms at low volume.
	if !(d.Cost[idx["zen2"]][0] > 0 && d.Cost[idx["7nm-chiplet"]][0] > 0) {
		t.Error("costs must be positive")
	}
	// Interposer variants are always worse on TTM than their base.
	for _, pair := range [][2]string{
		{"zen2", "zen2+interposer"},
		{"7nm-chiplet", "7nm-chiplet+interposer"},
		{"12nm-chiplet", "12nm-chiplet+interposer"},
	} {
		if !(d.TTM[idx[pair[0]]][lastQ] < d.TTM[idx[pair[1]]][lastQ]) {
			t.Errorf("%s should beat %s on TTM", pair[0], pair[1])
		}
		if !(d.Cost[idx[pair[0]]][lastQ] < d.Cost[idx[pair[1]]][lastQ]) {
			t.Errorf("%s should beat %s on cost", pair[0], pair[1])
		}
	}
	// (c) At full capacity the original design has the highest CAS of
	// the chiplet family.
	lastC := len(d.Capacity) - 1
	zenCAS := d.CAS[idx["zen2"]][lastC]
	for _, name := range []string{"7nm-chiplet", "7nm-monolithic", "12nm-monolithic"} {
		if !(zenCAS > d.CAS[idx[name]][lastC]) {
			t.Errorf("zen2 CAS (%.0f) should beat %s (%.0f) at full capacity",
				zenCAS, name, d.CAS[idx[name]][lastC])
		}
	}
	// ...but at deeply degraded capacity it falls below the 7nm
	// designs (the 12nm node becomes the bottleneck).
	if !(d.CAS[idx["zen2"]][0] < d.CAS[idx["7nm-chiplet"]][0]) {
		t.Errorf("at 20%% capacity zen2 (%.0f) should fall below the 7nm chiplet (%.0f)",
			d.CAS[idx["zen2"]][0], d.CAS[idx["7nm-chiplet"]][0])
	}
}

func TestFig14SplitStudy(t *testing.T) {
	r := generate(t, "14")
	d := r.Data.(Fig14Data)
	// Diagonal is single-process.
	for _, n := range d.Nodes {
		if d.Matrix[n][n].FracPrimary != 1 {
			t.Errorf("diagonal %s should be single-process", n)
		}
	}
	// The overall fastest combination should involve the
	// highest-capacity nodes (the paper lands on 28nm+40nm).
	fast := map[technode.Node]bool{technode.N28: true, technode.N40: true}
	if !fast[d.BestPrimary] || !fast[d.BestSecondary] {
		t.Errorf("fastest pair = %s/%s, want a 28nm/40nm combination", d.BestPrimary, d.BestSecondary)
	}
	// Two-process portfolios beat their single-process primaries on
	// CAS wherever a real split is chosen.
	for _, p := range d.Nodes {
		for _, s := range d.Nodes {
			pt := d.Matrix[p][s]
			if p == s || pt.FracPrimary >= 1 {
				continue
			}
			if pt.CAS <= d.Matrix[p][p].CAS {
				t.Errorf("split %s/%s CAS %.0f should beat single %s %.0f",
					p, s, pt.CAS, p, d.Matrix[p][p].CAS)
			}
		}
	}
	// Legacy primaries save weeks with a secondary process: compare
	// 250nm alone vs its best pairing.
	best250 := math.Inf(1)
	for _, s := range d.Nodes {
		if s == technode.N250 {
			continue
		}
		best250 = math.Min(best250, float64(d.Matrix[technode.N250][s].TTM))
	}
	if !(best250 < float64(d.Matrix[technode.N250][technode.N250].TTM)-5) {
		t.Errorf("pairing 250nm with a secondary should save >5 weeks (%.1f vs %.1f)",
			best250, float64(d.Matrix[technode.N250][technode.N250].TTM))
	}
}

var _ = units.Weeks(0)

func TestExt1SpeculativeNodes(t *testing.T) {
	r := generate(t, "x1")
	rows := r.Data.([]Ext1Row)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Tapeout keeps growing past 5nm, and so does TTM.
	for i := 1; i < len(rows); i++ {
		if rows[i].Tapeout <= rows[i-1].Tapeout {
			t.Errorf("tapeout should grow toward %s: %v <= %v",
				rows[i].Node, float64(rows[i].Tapeout), float64(rows[i-1].Tapeout))
		}
		if rows[i].TTM <= rows[i-1].TTM {
			t.Errorf("TTM should grow toward %s", rows[i].Node)
		}
	}
}

func TestExt2DisruptionReplay(t *testing.T) {
	r := generate(t, "x2")
	rows := r.Data.([]Ext2Row)
	byName := map[string]Ext2Row{}
	for _, row := range rows {
		byName[row.Name] = row
	}
	if s := byName["no disruption"].Slip; s < -0.01 || s > 0.01 {
		t.Errorf("undisrupted slip = %v", float64(s))
	}
	if s := byName["7nm outage wk0-2"].Slip; s < 1.5 || s > 2.5 {
		t.Errorf("a 2-week outage on the critical line should slip ~2 weeks, got %v", float64(s))
	}
	// The long 12nm outage flips the critical line to 12nm.
	if byName["12nm outage wk0-8"].Critical != technode.N12 {
		t.Errorf("critical line = %v, want 12nm", byName["12nm outage wk0-8"].Critical)
	}
	if byName["12nm outage wk0-8"].Slip <= 3 {
		t.Error("the 12nm outage should slip the package by several weeks")
	}
}

func TestExt3SalvageMonotone(t *testing.T) {
	r := generate(t, "x3")
	rows := r.Data.([]Ext3Row)
	for i := 1; i < len(rows); i++ {
		if !(rows[i].Yield > rows[i-1].Yield) {
			t.Errorf("lower bin floor should raise yield: %v vs %v", rows[i], rows[i-1])
		}
		if !(rows[i].TTM < rows[i-1].TTM) {
			t.Error("lower bin floor should cut TTM")
		}
		if !(rows[i].CAS > rows[i-1].CAS) {
			t.Error("lower bin floor should raise CAS")
		}
		if !(rows[i].Cost < rows[i-1].Cost) {
			t.Error("lower bin floor should cut cost")
		}
	}
}

func TestExt4WorkloadSensitivity(t *testing.T) {
	r := generate(t, "x4")
	rows := r.Data.([]Ext4Row)
	best := map[string]opt.CachePoint{}
	for _, row := range rows {
		best[row.Workload] = row.Best
	}
	// The compute-bound mix needs less total cache at its optimum than
	// the memory-bound mix.
	cb := best["compute-bound"].IKB + best["compute-bound"].DKB
	mb := best["memory-bound"].IKB + best["memory-bound"].DKB
	if cb > mb {
		t.Errorf("compute-bound optimum (%d KB) should not exceed memory-bound (%d KB)", cb, mb)
	}
	// The code-heavy mix leans on the I-cache at least as hard as the
	// reference mix does.
	if best["code-heavy"].IKB < best["spec-like"].IKB {
		t.Errorf("code-heavy I$ (%d) should be >= spec-like's (%d)",
			best["code-heavy"].IKB, best["spec-like"].IKB)
	}
}

func TestExt5Hoarding(t *testing.T) {
	r := generate(t, "x5")
	rows := r.Data.([]Ext5Row)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	rational, hoarding := rows[0], rows[1]
	if !(hoarding.PeakLeadTime > rational.PeakLeadTime) {
		t.Errorf("hoarding should worsen the peak quote: %v vs %v",
			float64(hoarding.PeakLeadTime), float64(rational.PeakLeadTime))
	}
	if !(hoarding.TTMAtPeak > rational.TTMAtPeak) {
		t.Error("the peak-week order should take longer under hoarding")
	}
	if hoarding.ExcessWafers <= 0 || rational.ExcessWafers != 0 {
		t.Errorf("excess wafers: hoarding %v, rational %v", hoarding.ExcessWafers, rational.ExcessWafers)
	}
}

func TestExt6BreakEven(t *testing.T) {
	r := generate(t, "x6")
	rows := r.Data.([]Ext6Row)
	byPair := map[[2]technode.Node]Ext6Row{}
	for _, row := range rows {
		byPair[[2]technode.Node{row.Primary, row.Secondary}] = row
	}
	// Pairing a legacy node with the denser next node pays for itself
	// well under automotive volumes (the §7 claim).
	legacy := byPair[[2]technode.Node{technode.N250, technode.N180}]
	if legacy.BreakEven <= 0 || legacy.BreakEven > 1e9 {
		t.Errorf("250nm+180nm break-even = %v, want positive and below 1B chips", legacy.BreakEven)
	}
	for _, row := range rows {
		if row.ExtraNRE <= 0 {
			t.Errorf("%s+%s: extra NRE must be positive", row.Primary, row.Secondary)
		}
		// Sign consistency: a break-even exists exactly when the split
		// lowers the per-chip cost.
		if (row.BreakEven > 0) != (row.PerChipSaving > 0) {
			t.Errorf("%s+%s: break-even %v inconsistent with saving %v",
				row.Primary, row.Secondary, row.BreakEven, float64(row.PerChipSaving))
		}
	}
}

func TestExt7ShortageReplay(t *testing.T) {
	r := generate(t, "x7")
	d := r.Data.(Ext7Data)
	if len(d.Rows) != 10 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	for _, row := range d.Rows {
		if row.QueueWeeks < 0 {
			t.Errorf("%s: negative queue", row.Node)
		}
		if row.ShortageTTM < row.BaselineTTM {
			t.Errorf("%s: shortage TTM %v below baseline %v", row.Node,
				float64(row.ShortageTTM), float64(row.BaselineTTM))
		}
	}
	// Hot lines (95% utilization) grow real queues under a +25% shock.
	for _, row := range d.Rows {
		if row.Utilization >= 0.94 && row.QueueWeeks < 1 {
			t.Errorf("%s at %.0f%% utilization should queue, got %v weeks",
				row.Node, row.Utilization*100, float64(row.QueueWeeks))
		}
	}
	if d.FastestBaseline != technode.N28 {
		t.Errorf("baseline fastest = %s, want 28nm", d.FastestBaseline)
	}
	// The shortage penalizes the hot 28nm line; the ranking must not
	// silently keep every node's order identical.
	if d.FastestShortage == d.FastestBaseline {
		t.Logf("note: fastest node unchanged (%s); acceptable but the gap must shrink", d.FastestShortage)
	}
}

func TestBuildChartsForEveryFigure(t *testing.T) {
	// Every paper figure (not the tables or text-only extensions) must
	// render at least one well-formed SVG panel.
	wantCharts := map[string]int{
		"3": 2, "4": 1, "5": 1, "6": 1, "7": 2, "8": 1, "9": 1,
		"10": 1, "11": 1, "12": 1, "13": 3, "14": 3,
	}
	for id, want := range wantCharts {
		r := generate(t, id)
		charts := BuildCharts(r)
		if len(charts) != want {
			t.Errorf("figure %s: %d charts, want %d", id, len(charts), want)
			continue
		}
		for _, ch := range charts {
			if ch.Name == "" {
				t.Errorf("figure %s: unnamed chart", id)
			}
			if !strings.HasPrefix(ch.SVG, "<svg") || !strings.Contains(ch.SVG, "</svg>") {
				t.Errorf("figure %s/%s: not an SVG document", id, ch.Name)
			}
			if strings.Contains(ch.SVG, "NaN") {
				t.Errorf("figure %s/%s: NaN coordinates leaked into SVG", id, ch.Name)
			}
		}
	}
	// Tables produce no charts, by design.
	for _, id := range []string{"t1", "t2", "t3", "t4"} {
		if got := BuildCharts(generate(t, id)); len(got) != 0 {
			t.Errorf("%s should have no charts, got %d", id, len(got))
		}
	}
}

func TestTable1Glossary(t *testing.T) {
	r := generate(t, "t1")
	for _, param := range []string{"N_TT", "N_UT", "E_tapeout", "mu_W", "L_fab", "L_TAP"} {
		if !strings.Contains(r.Sections[0], param) {
			t.Errorf("Table 1 missing %s", param)
		}
	}
}

func TestGenerationIsDeterministic(t *testing.T) {
	// The whole reproduction pipeline is seed-stable: regenerating any
	// figure yields byte-identical output.
	for _, id := range []string{"7", "9", "14", "x5"} {
		a, err := Generate(id, fast)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(id, fast)
		if err != nil {
			t.Fatal(err)
		}
		if a.Render() != b.Render() {
			t.Errorf("figure %s is not deterministic", id)
		}
	}
}

func TestFig8BootstrapCIs(t *testing.T) {
	r := generate(t, "8")
	d := r.Data.(Fig8Data)
	for _, in := range d.Inputs {
		for _, node := range d.Nodes {
			ci := d.TotalCI[in][node]
			if !ci.Contains(d.Total[in][node]) {
				t.Errorf("S_T[%s][%s] outside its bootstrap CI", in, node)
			}
			if ci.Width() < 0 || ci.Width() > 0.6 {
				t.Errorf("S_T[%s][%s] CI width %v implausible", in, node, ci.Width())
			}
		}
	}
	if len(r.Sections) != 2 {
		t.Errorf("Fig 8 should render the S_T matrix and its CI matrix")
	}
}
