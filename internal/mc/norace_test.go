//go:build !race

package mc

// raceEnabled reports whether the race detector is on.
const raceEnabled = false
