//go:build race

package mc

// raceEnabled reports whether the race detector is on. Under race the
// runtime randomly drops sync.Pool puts to widen interleaving coverage,
// so pooled paths allocate and steady-state zero-allocation assertions
// do not hold.
const raceEnabled = true
