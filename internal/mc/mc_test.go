package mc

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

func TestDefaults(t *testing.T) {
	var c Config
	if c.samples() != DefaultSamples {
		t.Errorf("default samples = %d", c.samples())
	}
	if c.variation() != 0.10 {
		t.Errorf("default variation = %v", c.variation())
	}
}

func TestPerturbationsDeterministicAndBounded(t *testing.T) {
	cfg := Config{Samples: 200, Variation: 0.10, Seed: 42}
	a := cfg.Perturbations()
	b := cfg.Perturbations()
	if len(a) != 200 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce the same stream")
		}
		for _, v := range []float64{a[i].NTT, a[i].NUT, a[i].D0, a[i].Rate, a[i].FabLatency, a[i].TAPLatency} {
			if v < 0.9 || v > 1.1 {
				t.Fatalf("multiplier %v outside ±10%%", v)
			}
		}
	}
	other := Config{Samples: 200, Variation: 0.10, Seed: 43}.Perturbations()
	if a[0] == other[0] {
		t.Error("different seeds should differ")
	}
}

func TestTTMEstimateBracketsNominal(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	nominal, err := m.TTM(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	est, err := TTM(context.Background(), m, d, 10e6, market.Full(), Config{Samples: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !est.CI.Contains(float64(nominal)) {
		t.Errorf("nominal %v outside CI [%v, %v]", float64(nominal), est.CI.Lo, est.CI.Hi)
	}
	if math.Abs(est.Mean-float64(nominal))/float64(nominal) > 0.05 {
		t.Errorf("mean %v far from nominal %v", est.Mean, float64(nominal))
	}
	if est.Samples != 256 {
		t.Errorf("samples = %d", est.Samples)
	}
}

func TestWiderVariationWidensCI(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N7)
	e10, err := TTM(context.Background(), m, d, 10e6, market.Full(), Config{Samples: 256, Variation: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	e25, err := TTM(context.Background(), m, d, 10e6, market.Full(), Config{Samples: 256, Variation: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if e25.CI.Width() <= e10.CI.Width() {
		t.Errorf("±25%% CI (%v) should be wider than ±10%% (%v)", e25.CI.Width(), e10.CI.Width())
	}
}

func TestCASEstimate(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N7)
	est, err := CAS(context.Background(), m, d, 10e6, market.Full(), Config{Samples: 128})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean <= 0 {
		t.Errorf("CAS mean = %v", est.Mean)
	}
	nominal, err := m.CAS(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	if !est.CI.Contains(nominal.CAS) {
		t.Errorf("nominal CAS %v outside CI [%v, %v]", nominal.CAS, est.CI.Lo, est.CI.Hi)
	}
}

func TestBandCurve(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N7)
	xs := []float64{0.5, 1.0}
	bands, err := BandCurve(context.Background(), m, Config{Samples: 64}, xs, func(pm core.Model, x float64) (float64, error) {
		v, err := pm.TTM(d, 10e6, market.Full().AtCapacity(x))
		return float64(v), err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bands) != 2 {
		t.Fatalf("bands = %d", len(bands))
	}
	for _, b := range bands {
		if b.CI25.Width() <= b.CI10.Width() {
			t.Errorf("at x=%v: ±25%% band should be wider", b.X)
		}
		if !b.CI10.Contains(b.Mean) {
			t.Errorf("at x=%v: mean outside its own band", b.X)
		}
	}
	if bands[0].Mean <= bands[1].Mean {
		t.Error("TTM at 50% capacity should exceed TTM at 100%")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	var m core.Model
	wantErr := false
	_, err := Run(context.Background(), m, Config{Samples: 4}, func(core.Model) (float64, error) {
		wantErr = true
		return 0, errSentinel
	})
	if err == nil || !wantErr {
		t.Error("Run should surface eval errors")
	}
}

type sentinel struct{}

func (sentinel) Error() string { return "sentinel" }

var errSentinel = sentinel{}

func TestBandCurveMatchesSerialBitForBit(t *testing.T) {
	// The acceptance bar for the parallel rewrite: over ≥16 x-positions
	// with a fixed seed, the parallel curve must equal the serial walk
	// exactly — every mean and every CI bound, not just approximately.
	var m core.Model
	d := scenario.A11At(technode.N28)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	evalAt := func(pm core.Model, x float64) (float64, error) {
		v, err := pm.TTM(d, 10e6, market.Full().AtCapacity(x))
		return float64(v), err
	}
	cfg := Config{Samples: 48, Seed: 7}
	par, err := BandCurve(context.Background(), m, cfg, xs, evalAt)
	if err != nil {
		t.Fatal(err)
	}
	ser, err := BandCurveSerial(context.Background(), m, cfg, xs, evalAt)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(ser) {
		t.Fatalf("parallel %d points, serial %d", len(par), len(ser))
	}
	for i := range par {
		if par[i] != ser[i] {
			t.Errorf("x=%v: parallel %+v != serial %+v", xs[i], par[i], ser[i])
		}
	}
}

func TestBandCurveEvalMatchesGenericBitForBit(t *testing.T) {
	// BandCurveEval must be indistinguishable from BandCurve running the
	// equivalent map-based closure: the kernel is bit-for-bit equal to
	// the oracle and the perturbation streams and estimator order are
	// shared, so every band must match exactly.
	var m core.Model
	d := scenario.A11At(technode.N28)
	base := market.Full().WithQueueAll(2)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	cfg := Config{Samples: 48, Seed: 7}
	generic, err := BandCurve(context.Background(), m, cfg, xs, func(pm core.Model, x float64) (float64, error) {
		v, err := pm.TTM(d, 10e6, base.AtCapacity(x))
		return float64(v), err
	})
	if err != nil {
		t.Fatal(err)
	}
	var evals atomic.Int64
	compiled, err := BandCurveEval(context.Background(), m, cfg, d, 10e6, base, xs, MetricTTM, func() { evals.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range generic {
		if generic[i] != compiled[i] {
			t.Errorf("x=%v: generic %+v != compiled %+v", xs[i], generic[i], compiled[i])
		}
	}
	if want := int64(len(xs) * 2 * 48); evals.Load() != want {
		t.Errorf("onEval called %d times, want %d", evals.Load(), want)
	}

	genericCAS, err := BandCurve(context.Background(), m, cfg, xs, func(pm core.Model, x float64) (float64, error) {
		r, err := pm.CAS(d, 10e6, base.AtCapacity(x))
		return r.CAS, err
	})
	if err != nil {
		t.Fatal(err)
	}
	compiledCAS, err := BandCurveEval(context.Background(), m, cfg, d, 10e6, base, xs, MetricCAS, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range genericCAS {
		if genericCAS[i] != compiledCAS[i] {
			t.Errorf("CAS x=%v: generic %+v != compiled %+v", xs[i], genericCAS[i], compiledCAS[i])
		}
	}
}

func TestBandCurveEvalCancelledMidRun(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = 0.2 + 0.025*float64(i)
	}
	total := int64(len(xs) * 2 * 512)
	_, err := BandCurveEval(ctx, m, Config{Samples: 512}, d, 10e6, market.Full(), xs, MetricTTM, func() {
		if evals.Add(1) == 10 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if evals.Load() >= total {
		t.Errorf("all %d evals ran despite cancellation", total)
	}
}

func TestRunCancelled(t *testing.T) {
	var m core.Model
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, m, Config{Samples: 64}, func(core.Model) (float64, error) {
		t.Error("eval ran under a cancelled context")
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestBandCurveCancelledMidRun(t *testing.T) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = 0.2 + 0.025*float64(i)
	}
	_, err := BandCurve(ctx, m, Config{Samples: 512}, xs, func(pm core.Model, x float64) (float64, error) {
		if evals.Add(1) == 10 {
			cancel()
		}
		v, err := pm.TTM(d, 10e6, market.Full().AtCapacity(x))
		return float64(v), err
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestColumnFillMatchesRowFillBitForBit(t *testing.T) {
	// The column-major fill must produce exactly the splitmix64 stream of
	// the row-major path — same seed, same draw order, transposed layout —
	// so batch and per-call MC remain seed-compatible. The offset form
	// must equal the tail of the full stream, which is what lets chunked
	// drivers fill [lo,hi) without replaying the prefix.
	for _, v := range []float64{0.10, 0.25} {
		for _, seed := range []int64{0, 1, 42, -7} {
			const n = 97
			rows := make([]core.Perturbation, n)
			fillPerturbations(rows, seed, v)
			b := &core.Batch{
				NTT: make([]float64, n), NUT: make([]float64, n), D0: make([]float64, n),
				Rate: make([]float64, n), FabLatency: make([]float64, n), TAPLatency: make([]float64, n),
			}
			fillPerturbationColumns(b, n, seed, 0, v)
			for i, p := range rows {
				got := core.Perturbation{
					NTT: b.NTT[i], NUT: b.NUT[i], D0: b.D0[i],
					Rate: b.Rate[i], FabLatency: b.FabLatency[i], TAPLatency: b.TAPLatency[i],
				}
				if got != p {
					t.Fatalf("seed=%d v=%v sample %d: columns %+v != rows %+v", seed, v, i, got, p)
				}
			}
			// Seek: filling [pos, n) directly must match rows[pos:].
			for _, pos := range []int{1, 13, n - 1} {
				m := n - pos
				tail := &core.Batch{
					NTT: make([]float64, m), NUT: make([]float64, m), D0: make([]float64, m),
					Rate: make([]float64, m), FabLatency: make([]float64, m), TAPLatency: make([]float64, m),
				}
				fillPerturbationColumns(tail, m, seed, pos, v)
				for i := 0; i < m; i++ {
					p := rows[pos+i]
					got := core.Perturbation{
						NTT: tail.NTT[i], NUT: tail.NUT[i], D0: tail.D0[i],
						Rate: tail.Rate[i], FabLatency: tail.FabLatency[i], TAPLatency: tail.TAPLatency[i],
					}
					if got != p {
						t.Fatalf("seed=%d v=%v pos=%d sample %d: seeked fill %+v != rows %+v", seed, v, pos, i, got, p)
					}
				}
			}
		}
	}
}

func TestRunBatchMatchesRunEvalBitForBit(t *testing.T) {
	// RunBatch (column batches through EvalBatch/CASBatch) must carry the
	// same bits as RunEval walking the same stream per call: same mean,
	// same CI bounds, for both metrics.
	var m core.Model
	d := scenario.A11At(technode.N7)
	ev, err := m.Compile(d, 10e6, market.Full().WithQueueAll(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Samples: 300, Seed: 5}
	for metric, name := range map[Metric]string{MetricTTM: "TTM", MetricCAS: "CAS"} {
		want, err := RunEval(context.Background(), ev, cfg, func(w *core.Evaluator, p core.Perturbation) (float64, error) {
			if metric == MetricCAS {
				return w.CAS(p)
			}
			v, err := w.Eval(p)
			return float64(v), err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunBatch(context.Background(), ev, cfg, metric)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: RunBatch %+v != RunEval %+v", name, got, want)
		}
	}
}

func TestBandCurveBatchErrorsMatchPerCall(t *testing.T) {
	// A design whose dies blow past the reticle under some perturbations
	// must surface the same wrapped error text through the batch walker
	// as through per-call evaluation of the same stream: lowest failing
	// sample index first, "mc: x=... sample %d: ..." formatting.
	var m core.Model
	// A die pinned to an area no wafer can hold fails every sample.
	d := design.Design{
		Name: "reticle-buster",
		Dies: []design.Die{{Name: "huge", Node: technode.N7, NTT: 1e9, NUT: 1e8, AreaOverride: 1e6}},
	}
	ev, err := m.Compile(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Samples: 40, Seed: 3}
	xs := []float64{0.8}
	out := make([]Band, 1)
	batchErr := BandCurveBatch(context.Background(), ev, cfg, xs, MetricTTM, out, nil)
	if batchErr == nil {
		t.Fatal("expected the blown-up design to fail")
	}
	// Per-call oracle over the same ±10% stream.
	perts := make([]core.Perturbation, cfg.samples())
	fillPerturbations(perts, cfg.seedAt(0), 0.10)
	var wantErr error
	for j, p := range perts {
		if _, err := ev.EvalAtCapacity(p, xs[0]); err != nil {
			wantErr = fmt.Errorf("mc: x=%v sample %d: %w", xs[0], j, err)
			break
		}
	}
	if wantErr == nil {
		t.Fatal("oracle did not fail; test design needs a bigger blow-up")
	}
	if batchErr.Error() != wantErr.Error() {
		t.Errorf("batch error %q != per-call error %q", batchErr, wantErr)
	}
}

func TestBandStreamsDeterministicPerPosition(t *testing.T) {
	// Same (seed, position) must always yield the same stream, across
	// both the generic and compiled walkers' derivation path.
	cfg := Config{Samples: 64, Seed: 9}
	a := make([]core.Perturbation, 64)
	b := make([]core.Perturbation, 64)
	fillPerturbations(a, cfg.seedAt(3), 0.10)
	fillPerturbations(b, cfg.seedAt(3), 0.10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same (seed, pos) must reproduce the same stream")
		}
	}
	if cfg.seedAt(0) == cfg.seedAt(1) {
		t.Error("adjacent positions share a derived seed")
	}
	other := Config{Samples: 64, Seed: 10}
	if cfg.seedAt(0) == other.seedAt(0) {
		t.Error("different config seeds share a derived seed")
	}
}

func TestBandStreamsIndependentAcrossPositions(t *testing.T) {
	// Adjacent x-positions must draw uncorrelated sample streams: with
	// the old arithmetic offsets, math/rand sources seeded with nearby
	// values produce visibly correlated sequences. The smoke bar is a
	// small empirical Pearson correlation between neighbouring
	// positions' Rate draws.
	cfg := Config{Samples: 512, Seed: 1}
	streams := make([][]core.Perturbation, 4)
	for pos := range streams {
		streams[pos] = make([]core.Perturbation, cfg.samples())
		fillPerturbations(streams[pos], cfg.seedAt(pos), 0.10)
	}
	pearson := func(a, b []core.Perturbation) float64 {
		n := float64(len(a))
		var sa, sb, saa, sbb, sab float64
		for i := range a {
			x, y := a[i].Rate, b[i].Rate
			sa += x
			sb += y
			saa += x * x
			sbb += y * y
			sab += x * y
		}
		cov := sab/n - (sa/n)*(sb/n)
		va := saa/n - (sa/n)*(sa/n)
		vb := sbb/n - (sb/n)*(sb/n)
		return cov / math.Sqrt(va*vb)
	}
	for pos := 0; pos+1 < len(streams); pos++ {
		if streams[pos][0] == streams[pos+1][0] {
			t.Errorf("positions %d and %d drew identical first samples", pos, pos+1)
		}
		if r := pearson(streams[pos], streams[pos+1]); math.Abs(r) > 0.15 {
			t.Errorf("positions %d and %d correlate: r = %v", pos, pos+1, r)
		}
	}
}
