// Package mc implements the Monte-Carlo uncertainty quantification of
// Section 5: the six closely-guarded model inputs (defect density,
// wafer production rate, foundry latency, OSAT latency, total
// transistor count, unique transistor count) are perturbed with a
// uniform ±10% (or ±25%) error range, the model is evaluated 1024
// times, and the output is reported as the sample mean with an
// empirical 95% confidence interval — the pink/green error bars and
// shaded bands of Figs. 7, 9, 11 and 12.
package mc

import (
	"context"
	"math/rand"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/stats"
	"ttmcas/internal/sweep"
)

// DefaultSamples is the paper's sample count.
const DefaultSamples = 1024

// Config controls a Monte-Carlo run.
type Config struct {
	// Samples is the number of perturbed evaluations; zero means the
	// paper's 1024.
	Samples int
	// Variation is the half-width of the uniform input error range
	// (0.10 for ±10%, 0.25 for ±25%); zero means 0.10.
	Variation float64
	// Seed makes runs reproducible; the zero seed is itself a valid
	// fixed seed (runs are deterministic by default).
	Seed int64
}

func (c Config) samples() int {
	if c.Samples <= 0 {
		return DefaultSamples
	}
	return c.Samples
}

func (c Config) variation() float64 {
	if c.Variation <= 0 {
		return 0.10
	}
	return c.Variation
}

// Estimate is a Monte-Carlo output summary.
type Estimate struct {
	// Mean is the sample mean of the output.
	Mean float64
	// CI is the empirical central 95% interval.
	CI stats.Interval
	// Samples is the number of evaluations aggregated.
	Samples int
}

// Perturbations returns the sequence of input perturbations a config
// generates: each of the six inputs drawn independently and uniformly
// from [1−v, 1+v].
func (c Config) Perturbations() []core.Perturbation {
	rng := rand.New(rand.NewSource(c.Seed))
	v := c.variation()
	draw := func() float64 { return 1 - v + 2*v*rng.Float64() }
	out := make([]core.Perturbation, c.samples())
	for i := range out {
		out[i] = core.Perturbation{
			NTT: draw(), NUT: draw(), D0: draw(),
			Rate: draw(), FabLatency: draw(), TAPLatency: draw(),
		}
	}
	return out
}

// Run evaluates an arbitrary scalar model output under the config's
// perturbations. The eval callback receives a model whose Perturb
// field has been set; it must be a pure function of that model, since
// samples are evaluated concurrently. Results are deterministic: the
// perturbation stream is precomputed from the seed and kept in order.
// Cancelling ctx stops the run within one evaluation per worker and
// returns ctx.Err().
func Run(ctx context.Context, base core.Model, cfg Config, eval func(core.Model) (float64, error)) (Estimate, error) {
	perts := cfg.Perturbations()
	xs, err := sweep.Map(ctx, perts, 0, func(p core.Perturbation) (float64, error) {
		m := base
		m.Perturb = p
		return eval(m)
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: stats.Mean(xs), CI: stats.CI95(xs), Samples: len(xs)}, nil
}

// TTM estimates the time-to-market distribution of a design.
func TTM(ctx context.Context, base core.Model, d design.Design, n float64, c market.Conditions, cfg Config) (Estimate, error) {
	return Run(ctx, base, cfg, func(m core.Model) (float64, error) {
		t, err := m.TTM(d, n, c)
		return float64(t), err
	})
}

// CAS estimates the Chip Agility Score distribution of a design.
func CAS(ctx context.Context, base core.Model, d design.Design, n float64, c market.Conditions, cfg Config) (Estimate, error) {
	return Run(ctx, base, cfg, func(m core.Model) (float64, error) {
		r, err := m.CAS(d, n, c)
		return r.CAS, err
	})
}

// Band is one x-position of a mean curve with its ±10% and ±25% CI
// bands, the structure of the paper's shaded plots.
type Band struct {
	X    float64
	Mean float64
	CI10 stats.Interval
	CI25 stats.Interval
}

// bandAt evaluates one x-position's ±10% and ±25% bands. Each call
// derives its own two perturbation streams from cfg.Seed — the streams
// are per-point and independent of evaluation order, which is what
// makes the parallel and serial curve walks bit-for-bit identical.
func bandAt(ctx context.Context, base core.Model, cfg Config, x float64, evalAt func(core.Model, float64) (float64, error)) (Band, error) {
	cfg10, cfg25 := cfg, cfg
	cfg10.Variation = 0.10
	cfg25.Variation = 0.25
	e10, err := Run(ctx, base, cfg10, func(m core.Model) (float64, error) { return evalAt(m, x) })
	if err != nil {
		return Band{}, err
	}
	e25, err := Run(ctx, base, cfg25, func(m core.Model) (float64, error) { return evalAt(m, x) })
	if err != nil {
		return Band{}, err
	}
	return Band{X: x, Mean: e10.Mean, CI10: e10.CI, CI25: e25.CI}, nil
}

// BandCurve evaluates a scalar output across xs, attaching both the
// ±10% and ±25% confidence bands at each point. evalAt must return the
// output of the perturbed model at position x; like Run's callback it
// must be pure, since both the x-positions and the samples within each
// position are evaluated concurrently.
//
// The curve is deterministic: every x-position derives its
// perturbation streams from cfg.Seed alone, so the output matches
// BandCurveSerial bit-for-bit regardless of scheduling. Cancelling ctx
// stops the whole curve within one evaluation per worker.
func BandCurve(ctx context.Context, base core.Model, cfg Config, xs []float64, evalAt func(core.Model, float64) (float64, error)) ([]Band, error) {
	return sweep.Map(ctx, xs, 0, func(x float64) (Band, error) {
		return bandAt(ctx, base, cfg, x, evalAt)
	})
}

// BandCurveSerial is the serial reference implementation of BandCurve:
// one x-position at a time, samples within each position still
// parallel. It is retained for the equivalence test and the
// serial-vs-parallel benchmark.
func BandCurveSerial(ctx context.Context, base core.Model, cfg Config, xs []float64, evalAt func(core.Model, float64) (float64, error)) ([]Band, error) {
	out := make([]Band, 0, len(xs))
	for _, x := range xs {
		b, err := bandAt(ctx, base, cfg, x, evalAt)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
