// Package mc implements the Monte-Carlo uncertainty quantification of
// Section 5: the six closely-guarded model inputs (defect density,
// wafer production rate, foundry latency, OSAT latency, total
// transistor count, unique transistor count) are perturbed with a
// uniform ±10% (or ±25%) error range, the model is evaluated 1024
// times, and the output is reported as the sample mean with an
// empirical 95% confidence interval — the pink/green error bars and
// shaded bands of Figs. 7, 9, 11 and 12.
package mc

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/stats"
	"ttmcas/internal/sweep"
	"ttmcas/internal/units"
)

// DefaultSamples is the paper's sample count.
const DefaultSamples = 1024

// Config controls a Monte-Carlo run.
type Config struct {
	// Samples is the number of perturbed evaluations; zero means the
	// paper's 1024.
	Samples int
	// Variation is the half-width of the uniform input error range
	// (0.10 for ±10%, 0.25 for ±25%); zero means 0.10.
	Variation float64
	// Seed makes runs reproducible; the zero seed is itself a valid
	// fixed seed (runs are deterministic by default).
	Seed int64
}

func (c Config) samples() int {
	if c.Samples <= 0 {
		return DefaultSamples
	}
	return c.Samples
}

func (c Config) variation() float64 {
	if c.Variation <= 0 {
		return 0.10
	}
	return c.Variation
}

// Estimate is a Monte-Carlo output summary.
type Estimate struct {
	// Mean is the sample mean of the output.
	Mean float64
	// CI is the empirical central 95% interval.
	CI stats.Interval
	// Samples is the number of evaluations aggregated.
	Samples int
}

// Perturbations returns the sequence of input perturbations a config
// generates: each of the six inputs drawn independently and uniformly
// from [1−v, 1+v].
func (c Config) Perturbations() []core.Perturbation {
	out := make([]core.Perturbation, c.samples())
	fillPerturbations(out, c.Seed, c.variation())
	return out
}

// fillPerturbations draws len(dst) perturbations from the stream the
// seed selects; every path that materializes a stream (Perturbations,
// the band-curve walkers, the column fills of the batch drivers) goes
// through the same splitmix64 stream so the draws stay bit-for-bit
// identical across drivers and layouts.
func fillPerturbations(dst []core.Perturbation, seed int64, v float64) {
	rng := perturbationStream(seed, 0)
	for i := range dst {
		dst[i] = core.Perturbation{
			NTT: rng.draw(v), NUT: rng.draw(v), D0: rng.draw(v),
			Rate: rng.draw(v), FabLatency: rng.draw(v), TAPLatency: rng.draw(v),
		}
	}
}

// fillPerturbationColumns is the column-major twin of fillPerturbations:
// it draws samples [pos, pos+n) of the (seed, v) stream straight into
// the batch's six parameter columns (each sized to exactly n by the
// caller). Element i of each column carries the same bits as field i of
// the row fillPerturbations would write at stream position pos+i — the
// stream is seekable, so chunked batch drivers fill any sub-range
// without replaying the prefix, and batch and per-call MC stay
// seed-compatible.
func fillPerturbationColumns(b *core.Batch, n int, seed int64, pos int, v float64) {
	rng := perturbationStream(seed, pos)
	for i := 0; i < n; i++ {
		b.NTT[i] = rng.draw(v)
		b.NUT[i] = rng.draw(v)
		b.D0[i] = rng.draw(v)
		b.Rate[i] = rng.draw(v)
		b.FabLatency[i] = rng.draw(v)
		b.TAPLatency[i] = rng.draw(v)
	}
}

// golden64 is the SplitMix64 golden-gamma increment.
const golden64 = 0x9e3779b97f4a7c15

// splitmix64 is the SplitMix64 output mix: a strong 64-bit bijection
// whose increments of the golden-gamma constant produce statistically
// independent outputs even for adjacent inputs.
func splitmix64(x uint64) uint64 {
	x += golden64
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// uniformSource is a counter-based splitmix64 uniform stream. Unlike
// math/rand's Source (whose Seed call alone used to dominate the band
// walkers' profile), constructing one is free, and the counter makes it
// O(1)-seekable: draw t from seed s reads splitmix64(s + t·golden64),
// so a chunk can start mid-stream without replaying the prefix.
type uniformSource struct{ state uint64 }

// perturbationStream positions a uniform stream at the first draw of
// sample pos (six draws per sample).
func perturbationStream(seed int64, pos int) uniformSource {
	return uniformSource{state: uint64(seed) + uint64(6*pos)*golden64}
}

// draw returns the next uniform multiplier from [1−v, 1+v).
func (r *uniformSource) draw(v float64) float64 {
	u := float64(splitmix64(r.state)>>11) * 0x1p-53
	r.state += golden64
	return 1 - v + 2*v*u
}

// seedAt derives the RNG seed of x-position pos as the pos-th output of
// a SplitMix64 stream keyed by the config seed. Naive arithmetic
// offsets (seed+pos) would hand adjacent positions correlated
// math/rand sequences; the mix makes each position's six-input stream
// independent of its neighbours while staying a pure function of
// (Seed, pos), which keeps serial and parallel curve walks bit-for-bit
// identical.
func (c Config) seedAt(pos int) int64 {
	return int64(splitmix64(splitmix64(uint64(c.Seed)) + uint64(pos)))
}

// Run evaluates an arbitrary scalar model output under the config's
// perturbations. The eval callback receives a model whose Perturb
// field has been set; it must be a pure function of that model, since
// samples are evaluated concurrently. Results are deterministic: the
// perturbation stream is precomputed from the seed and kept in order.
// Cancelling ctx stops the run within one evaluation per worker and
// returns ctx.Err().
func Run(ctx context.Context, base core.Model, cfg Config, eval func(core.Model) (float64, error)) (Estimate, error) {
	perts := cfg.Perturbations()
	xs := make([]float64, len(perts))
	err := sweep.ForChunks(ctx, len(perts), 0, sweep.DefaultGrain, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			m := base
			m.Perturb = perts[i]
			v, err := eval(m)
			if err != nil {
				return fmt.Errorf("mc: sample %d: %w", i, err)
			}
			xs[i] = v
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: stats.Mean(xs), CI: stats.CI95(xs), Samples: len(xs)}, nil
}

// RunEval is Run on a compiled evaluator: each chunk of samples runs on
// its own Clone of ev, so the whole stream rides the zero-allocation
// kernel. eval receives the worker-local evaluator and the sample's
// perturbation.
func RunEval(ctx context.Context, ev *core.Evaluator, cfg Config, eval func(*core.Evaluator, core.Perturbation) (float64, error)) (Estimate, error) {
	perts := cfg.Perturbations()
	xs := make([]float64, len(perts))
	err := sweep.ForChunks(ctx, len(perts), 0, sweep.DefaultGrain, func(lo, hi int) error {
		w := ev.Clone()
		for i := lo; i < hi; i++ {
			v, err := eval(w, perts[i])
			if err != nil {
				return fmt.Errorf("mc: sample %d: %w", i, err)
			}
			xs[i] = v
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: stats.Mean(xs), CI: stats.CI95(xs), Samples: len(xs)}, nil
}

// TTM estimates the time-to-market distribution of a design.
func TTM(ctx context.Context, base core.Model, d design.Design, n float64, c market.Conditions, cfg Config) (Estimate, error) {
	ev, err := base.Compile(d, n, c)
	if err != nil {
		return Estimate{}, err
	}
	return RunBatch(ctx, ev, cfg, MetricTTM)
}

// CAS estimates the Chip Agility Score distribution of a design.
func CAS(ctx context.Context, base core.Model, d design.Design, n float64, c market.Conditions, cfg Config) (Estimate, error) {
	ev, err := base.Compile(d, n, c)
	if err != nil {
		return Estimate{}, err
	}
	return RunBatch(ctx, ev, cfg, MetricCAS)
}

// Band is one x-position of a mean curve with its ±10% and ±25% CI
// bands, the structure of the paper's shaded plots.
type Band struct {
	X    float64
	Mean float64
	CI10 stats.Interval
	CI25 stats.Interval
}

// bandAt evaluates one x-position's ±10% and ±25% bands. Each position
// derives its own two perturbation streams from (cfg.Seed, pos) via
// seedAt — the streams are per-point, independent across positions, and
// independent of evaluation order, which is what makes the parallel and
// serial curve walks bit-for-bit identical. The ±10% and ±25% streams
// of one position share the underlying uniforms (common random
// numbers), so the wider band nests around the narrower one.
func bandAt(ctx context.Context, base core.Model, cfg Config, pos int, x float64, evalAt func(core.Model, float64) (float64, error)) (Band, error) {
	cfg10, cfg25 := cfg, cfg
	cfg10.Variation = 0.10
	cfg25.Variation = 0.25
	cfg10.Seed = cfg.seedAt(pos)
	cfg25.Seed = cfg10.Seed
	e10, err := Run(ctx, base, cfg10, func(m core.Model) (float64, error) { return evalAt(m, x) })
	if err != nil {
		return Band{}, err
	}
	e25, err := Run(ctx, base, cfg25, func(m core.Model) (float64, error) { return evalAt(m, x) })
	if err != nil {
		return Band{}, err
	}
	return Band{X: x, Mean: e10.Mean, CI10: e10.CI, CI25: e25.CI}, nil
}

// BandCurve evaluates a scalar output across xs, attaching both the
// ±10% and ±25% confidence bands at each point. evalAt must return the
// output of the perturbed model at position x; like Run's callback it
// must be pure, since both the x-positions and the samples within each
// position are evaluated concurrently.
//
// The curve is deterministic: every x-position derives its
// perturbation streams from (cfg.Seed, position index) alone, so the
// output matches BandCurveSerial bit-for-bit regardless of scheduling.
// Cancelling ctx stops the whole curve within one evaluation per
// worker.
func BandCurve(ctx context.Context, base core.Model, cfg Config, xs []float64, evalAt func(core.Model, float64) (float64, error)) ([]Band, error) {
	out := make([]Band, len(xs))
	err := sweep.ForChunks(ctx, len(xs), 0, 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			b, err := bandAt(ctx, base, cfg, i, xs[i], evalAt)
			if err != nil {
				return err
			}
			out[i] = b
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Metric selects the model output BandCurveEval sweeps.
type Metric int

const (
	// MetricTTM is time-to-market in weeks.
	MetricTTM Metric = iota
	// MetricCAS is the Chip Agility Score.
	MetricCAS
)

// BandCurveEval is BandCurve on the compiled kernel: the design ×
// conditions pair is compiled once and the curve rides BandCurveBatch.
// The result is bit-for-bit identical to BandCurve with the equivalent
// map-based closure, at roughly an order of magnitude higher
// throughput.
//
// onEval, when non-nil, is called once per sample evaluation from
// worker goroutines (it must be concurrency-safe); jobs use it for
// progress counting. Cancelling ctx stops the curve within one chunk
// per worker.
func BandCurveEval(ctx context.Context, base core.Model, cfg Config, d design.Design, n float64, c market.Conditions, xs []float64, metric Metric, onEval func()) ([]Band, error) {
	ev, err := base.Compile(d, n, c)
	if err != nil {
		return nil, err
	}
	out := make([]Band, len(xs))
	if err := BandCurveBatch(ctx, ev, cfg, xs, metric, out, onEval); err != nil {
		return nil, err
	}
	return out, nil
}

// mcWorker is the pooled per-goroutine state of the batch drivers: an
// evaluator clone bound to its compiled source, the six perturbation
// columns, and the sample buffers. Workers are reused across calls
// through mcWorkerPool; the clone is rebuilt only when a pooled worker
// last served a different evaluator, so steady-state chunk bodies
// allocate nothing.
type mcWorker struct {
	src   *core.Evaluator
	ev    *core.Evaluator
	b     core.Batch
	wout  []units.Weeks
	buf10 []float64
	buf25 []float64
	errs  core.BatchErrors
}

var mcWorkerPool sync.Pool

func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func getMCWorker(ev *core.Evaluator, n int) *mcWorker {
	w, _ := mcWorkerPool.Get().(*mcWorker)
	if w == nil {
		w = &mcWorker{}
	}
	if w.src != ev {
		w.src = ev
		w.ev = ev.Clone()
	}
	w.b.NTT = growFloats(w.b.NTT, n)
	w.b.NUT = growFloats(w.b.NUT, n)
	w.b.D0 = growFloats(w.b.D0, n)
	w.b.Rate = growFloats(w.b.Rate, n)
	w.b.FabLatency = growFloats(w.b.FabLatency, n)
	w.b.TAPLatency = growFloats(w.b.TAPLatency, n)
	if cap(w.wout) < n {
		w.wout = make([]units.Weeks, n)
	}
	w.wout = w.wout[:n]
	w.buf10 = growFloats(w.buf10, n)
	w.buf25 = growFloats(w.buf25, n)
	return w
}

// bandCall carries one BandCurveBatch invocation's parameters to its
// chunk bodies. Calls are pooled, and fn is bound to run once when the
// object is first created, so re-dispatching a curve allocates neither
// a call frame nor a closure.
type bandCall struct {
	ev     *core.Evaluator
	cfg    Config
	xs     []float64
	pos0   int
	metric Metric
	out    []Band
	onEval func()
	fn     func(lo, hi int) error
}

var bandCallPool sync.Pool

// BandCurveBatch is the batched core of BandCurveEval: it walks the
// x-positions of an already-compiled evaluator and writes one Band per
// x-position into out (len(out) must equal len(xs)). Each position's
// ±10% and ±25% streams are drawn column-major into pooled batches and
// evaluated through EvalBatchAtCapacity/CASBatchAtCapacity; all worker
// state comes from package pools, so steady-state calls allocate
// nothing. The bands are bit-for-bit those of the per-call walker.
func BandCurveBatch(ctx context.Context, ev *core.Evaluator, cfg Config, xs []float64, metric Metric, out []Band, onEval func()) error {
	return BandCurveBatchAt(ctx, ev, cfg, xs, 0, metric, out, onEval)
}

// BandCurveBatchAt is BandCurveBatch for a contiguous slice of a larger
// curve: xs holds positions [pos0, pos0+len(xs)) of the full walk, and
// each position i derives its streams from seedAt(pos0+i). Because the
// per-position streams are pure functions of (Seed, absolute position),
// a curve split into range shards — possibly computed on different
// machines — concatenates into exactly the bands the unsplit walk
// produces, bit for bit. Distributed job sharding depends on this.
func BandCurveBatchAt(ctx context.Context, ev *core.Evaluator, cfg Config, xs []float64, pos0 int, metric Metric, out []Band, onEval func()) error {
	if len(out) != len(xs) {
		return fmt.Errorf("mc: band output length %d != x-position count %d", len(out), len(xs))
	}
	c, _ := bandCallPool.Get().(*bandCall)
	if c == nil {
		c = &bandCall{}
		c.fn = c.run
	}
	c.ev, c.cfg, c.xs, c.pos0, c.metric, c.out, c.onEval = ev, cfg, xs, pos0, metric, out, onEval
	err := sweep.ForChunks(ctx, len(xs), 0, 1, c.fn)
	c.ev, c.xs, c.out, c.onEval = nil, nil, nil, nil
	bandCallPool.Put(c)
	return err
}

func (c *bandCall) run(lo, hi int) error {
	n := c.cfg.samples()
	w := getMCWorker(c.ev, n)
	defer mcWorkerPool.Put(w)
	for i := lo; i < hi; i++ {
		x := c.xs[i]
		seed := c.cfg.seedAt(c.pos0 + i)
		fillPerturbationColumns(&w.b, n, seed, 0, 0.10)
		if err := w.stream(c.metric, x, w.buf10, c.onEval); err != nil {
			return err
		}
		fillPerturbationColumns(&w.b, n, seed, 0, 0.25)
		if err := w.stream(c.metric, x, w.buf25, c.onEval); err != nil {
			return err
		}
		// Mean before the in-place sorts: it reads buf10 in stream order,
		// which keeps the summation order — and therefore the bits — of
		// the per-call walker.
		mean := stats.Mean(w.buf10)
		sort.Float64s(w.buf10)
		sort.Float64s(w.buf25)
		c.out[i] = Band{
			X:    x,
			Mean: mean,
			CI10: stats.SortedCI95(w.buf10),
			CI25: stats.SortedCI95(w.buf25),
		}
	}
	return nil
}

// stream evaluates the batch currently in w.b at capacity x and writes
// the metric into buf. The first per-sample error (lowest index, the
// one a serial per-call loop would have hit first) is returned wrapped
// the way the per-call walker wrapped it.
func (w *mcWorker) stream(metric Metric, x float64, buf []float64, onEval func()) error {
	switch metric {
	case MetricCAS:
		if err := w.ev.CASBatchAtCapacity(&w.b, x, buf, &w.errs); err != nil {
			return err
		}
	default:
		if err := w.ev.EvalBatchAtCapacity(&w.b, x, w.wout, &w.errs); err != nil {
			return err
		}
		for j, t := range w.wout {
			buf[j] = float64(t)
		}
	}
	if onEval != nil {
		for range buf {
			onEval()
		}
	}
	if j, err := w.errs.First(); err != nil {
		return fmt.Errorf("mc: x=%v sample %d: %w", x, j, err)
	}
	return nil
}

// runCall is bandCall's counterpart for RunBatch.
type runCall struct {
	ev     *core.Evaluator
	cfg    Config
	metric Metric
	xs     []float64
	fn     func(lo, hi int) error
}

var runCallPool sync.Pool

// RunBatch is Run/RunEval on the batch kernel: the sample stream is
// drawn column-major into pooled batches chunk by chunk (the splitmix64
// stream is seekable, so chunk [lo,hi) fills its columns without
// replaying the prefix) and evaluated through EvalBatch/CASBatch. The
// estimate carries the same bits RunEval would produce for the same
// metric.
func RunBatch(ctx context.Context, ev *core.Evaluator, cfg Config, metric Metric) (Estimate, error) {
	n := cfg.samples()
	xs := make([]float64, n)
	c, _ := runCallPool.Get().(*runCall)
	if c == nil {
		c = &runCall{}
		c.fn = c.run
	}
	c.ev, c.cfg, c.metric, c.xs = ev, cfg, metric, xs
	err := sweep.ForChunks(ctx, n, 0, sweep.DefaultGrain, c.fn)
	c.ev, c.xs = nil, nil
	runCallPool.Put(c)
	if err != nil {
		return Estimate{}, err
	}
	mean := stats.Mean(xs)
	sort.Float64s(xs)
	return Estimate{Mean: mean, CI: stats.SortedCI95(xs), Samples: n}, nil
}

func (c *runCall) run(lo, hi int) error {
	n := hi - lo
	w := getMCWorker(c.ev, n)
	defer mcWorkerPool.Put(w)
	fillPerturbationColumns(&w.b, n, c.cfg.Seed, lo, c.cfg.variation())
	switch c.metric {
	case MetricCAS:
		if err := w.ev.CASBatch(&w.b, c.xs[lo:hi], &w.errs); err != nil {
			return err
		}
	default:
		if err := w.ev.EvalBatch(&w.b, w.wout, &w.errs); err != nil {
			return err
		}
		for j, t := range w.wout {
			c.xs[lo+j] = float64(t)
		}
	}
	if j, err := w.errs.First(); err != nil {
		return fmt.Errorf("mc: sample %d: %w", lo+j, err)
	}
	return nil
}

// BandCurveSerial is the serial reference implementation of BandCurve:
// one x-position at a time, samples within each position still
// parallel. It is retained for the equivalence test and the
// serial-vs-parallel benchmark.
func BandCurveSerial(ctx context.Context, base core.Model, cfg Config, xs []float64, evalAt func(core.Model, float64) (float64, error)) ([]Band, error) {
	out := make([]Band, 0, len(xs))
	for i, x := range xs {
		b, err := bandAt(ctx, base, cfg, i, x, evalAt)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
