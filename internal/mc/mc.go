// Package mc implements the Monte-Carlo uncertainty quantification of
// Section 5: the six closely-guarded model inputs (defect density,
// wafer production rate, foundry latency, OSAT latency, total
// transistor count, unique transistor count) are perturbed with a
// uniform ±10% (or ±25%) error range, the model is evaluated 1024
// times, and the output is reported as the sample mean with an
// empirical 95% confidence interval — the pink/green error bars and
// shaded bands of Figs. 7, 9, 11 and 12.
package mc

import (
	"context"
	"fmt"
	"math/rand"

	"ttmcas/internal/core"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/stats"
	"ttmcas/internal/sweep"
)

// DefaultSamples is the paper's sample count.
const DefaultSamples = 1024

// Config controls a Monte-Carlo run.
type Config struct {
	// Samples is the number of perturbed evaluations; zero means the
	// paper's 1024.
	Samples int
	// Variation is the half-width of the uniform input error range
	// (0.10 for ±10%, 0.25 for ±25%); zero means 0.10.
	Variation float64
	// Seed makes runs reproducible; the zero seed is itself a valid
	// fixed seed (runs are deterministic by default).
	Seed int64
}

func (c Config) samples() int {
	if c.Samples <= 0 {
		return DefaultSamples
	}
	return c.Samples
}

func (c Config) variation() float64 {
	if c.Variation <= 0 {
		return 0.10
	}
	return c.Variation
}

// Estimate is a Monte-Carlo output summary.
type Estimate struct {
	// Mean is the sample mean of the output.
	Mean float64
	// CI is the empirical central 95% interval.
	CI stats.Interval
	// Samples is the number of evaluations aggregated.
	Samples int
}

// Perturbations returns the sequence of input perturbations a config
// generates: each of the six inputs drawn independently and uniformly
// from [1−v, 1+v].
func (c Config) Perturbations() []core.Perturbation {
	out := make([]core.Perturbation, c.samples())
	fillPerturbations(out, c.Seed, c.variation())
	return out
}

// fillPerturbations draws len(dst) perturbations from the stream the
// seed selects; every path that materializes a stream (Perturbations,
// the band-curve walkers) goes through it so the draws stay bit-for-bit
// identical across drivers.
func fillPerturbations(dst []core.Perturbation, seed int64, v float64) {
	rng := rand.New(rand.NewSource(seed))
	draw := func() float64 { return 1 - v + 2*v*rng.Float64() }
	for i := range dst {
		dst[i] = core.Perturbation{
			NTT: draw(), NUT: draw(), D0: draw(),
			Rate: draw(), FabLatency: draw(), TAPLatency: draw(),
		}
	}
}

// splitmix64 is the SplitMix64 output mix: a strong 64-bit bijection
// whose increments of the golden-gamma constant produce statistically
// independent outputs even for adjacent inputs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// seedAt derives the RNG seed of x-position pos as the pos-th output of
// a SplitMix64 stream keyed by the config seed. Naive arithmetic
// offsets (seed+pos) would hand adjacent positions correlated
// math/rand sequences; the mix makes each position's six-input stream
// independent of its neighbours while staying a pure function of
// (Seed, pos), which keeps serial and parallel curve walks bit-for-bit
// identical.
func (c Config) seedAt(pos int) int64 {
	return int64(splitmix64(splitmix64(uint64(c.Seed)) + uint64(pos)))
}

// Run evaluates an arbitrary scalar model output under the config's
// perturbations. The eval callback receives a model whose Perturb
// field has been set; it must be a pure function of that model, since
// samples are evaluated concurrently. Results are deterministic: the
// perturbation stream is precomputed from the seed and kept in order.
// Cancelling ctx stops the run within one evaluation per worker and
// returns ctx.Err().
func Run(ctx context.Context, base core.Model, cfg Config, eval func(core.Model) (float64, error)) (Estimate, error) {
	perts := cfg.Perturbations()
	xs := make([]float64, len(perts))
	err := sweep.ForChunks(ctx, len(perts), 0, sweep.DefaultGrain, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			m := base
			m.Perturb = perts[i]
			v, err := eval(m)
			if err != nil {
				return fmt.Errorf("mc: sample %d: %w", i, err)
			}
			xs[i] = v
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: stats.Mean(xs), CI: stats.CI95(xs), Samples: len(xs)}, nil
}

// RunEval is Run on a compiled evaluator: each chunk of samples runs on
// its own Clone of ev, so the whole stream rides the zero-allocation
// kernel. eval receives the worker-local evaluator and the sample's
// perturbation.
func RunEval(ctx context.Context, ev *core.Evaluator, cfg Config, eval func(*core.Evaluator, core.Perturbation) (float64, error)) (Estimate, error) {
	perts := cfg.Perturbations()
	xs := make([]float64, len(perts))
	err := sweep.ForChunks(ctx, len(perts), 0, sweep.DefaultGrain, func(lo, hi int) error {
		w := ev.Clone()
		for i := lo; i < hi; i++ {
			v, err := eval(w, perts[i])
			if err != nil {
				return fmt.Errorf("mc: sample %d: %w", i, err)
			}
			xs[i] = v
		}
		return nil
	})
	if err != nil {
		return Estimate{}, err
	}
	return Estimate{Mean: stats.Mean(xs), CI: stats.CI95(xs), Samples: len(xs)}, nil
}

// TTM estimates the time-to-market distribution of a design.
func TTM(ctx context.Context, base core.Model, d design.Design, n float64, c market.Conditions, cfg Config) (Estimate, error) {
	ev, err := base.Compile(d, n, c)
	if err != nil {
		return Estimate{}, err
	}
	return RunEval(ctx, ev, cfg, func(w *core.Evaluator, p core.Perturbation) (float64, error) {
		t, err := w.Eval(p)
		return float64(t), err
	})
}

// CAS estimates the Chip Agility Score distribution of a design.
func CAS(ctx context.Context, base core.Model, d design.Design, n float64, c market.Conditions, cfg Config) (Estimate, error) {
	ev, err := base.Compile(d, n, c)
	if err != nil {
		return Estimate{}, err
	}
	return RunEval(ctx, ev, cfg, func(w *core.Evaluator, p core.Perturbation) (float64, error) {
		return w.CAS(p)
	})
}

// Band is one x-position of a mean curve with its ±10% and ±25% CI
// bands, the structure of the paper's shaded plots.
type Band struct {
	X    float64
	Mean float64
	CI10 stats.Interval
	CI25 stats.Interval
}

// bandAt evaluates one x-position's ±10% and ±25% bands. Each position
// derives its own two perturbation streams from (cfg.Seed, pos) via
// seedAt — the streams are per-point, independent across positions, and
// independent of evaluation order, which is what makes the parallel and
// serial curve walks bit-for-bit identical. The ±10% and ±25% streams
// of one position share the underlying uniforms (common random
// numbers), so the wider band nests around the narrower one.
func bandAt(ctx context.Context, base core.Model, cfg Config, pos int, x float64, evalAt func(core.Model, float64) (float64, error)) (Band, error) {
	cfg10, cfg25 := cfg, cfg
	cfg10.Variation = 0.10
	cfg25.Variation = 0.25
	cfg10.Seed = cfg.seedAt(pos)
	cfg25.Seed = cfg10.Seed
	e10, err := Run(ctx, base, cfg10, func(m core.Model) (float64, error) { return evalAt(m, x) })
	if err != nil {
		return Band{}, err
	}
	e25, err := Run(ctx, base, cfg25, func(m core.Model) (float64, error) { return evalAt(m, x) })
	if err != nil {
		return Band{}, err
	}
	return Band{X: x, Mean: e10.Mean, CI10: e10.CI, CI25: e25.CI}, nil
}

// BandCurve evaluates a scalar output across xs, attaching both the
// ±10% and ±25% confidence bands at each point. evalAt must return the
// output of the perturbed model at position x; like Run's callback it
// must be pure, since both the x-positions and the samples within each
// position are evaluated concurrently.
//
// The curve is deterministic: every x-position derives its
// perturbation streams from (cfg.Seed, position index) alone, so the
// output matches BandCurveSerial bit-for-bit regardless of scheduling.
// Cancelling ctx stops the whole curve within one evaluation per
// worker.
func BandCurve(ctx context.Context, base core.Model, cfg Config, xs []float64, evalAt func(core.Model, float64) (float64, error)) ([]Band, error) {
	out := make([]Band, len(xs))
	err := sweep.ForChunks(ctx, len(xs), 0, 1, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			b, err := bandAt(ctx, base, cfg, i, xs[i], evalAt)
			if err != nil {
				return err
			}
			out[i] = b
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Metric selects the model output BandCurveEval sweeps.
type Metric int

const (
	// MetricTTM is time-to-market in weeks.
	MetricTTM Metric = iota
	// MetricCAS is the Chip Agility Score.
	MetricCAS
)

// BandCurveEval is BandCurve on the compiled kernel: the design ×
// conditions pair is compiled once, each x-position's two perturbation
// streams (±10% and ±25%) are drawn from its splitmix64-derived seed,
// and the x-positions are fanned out in chunks with a per-chunk
// evaluator clone and reusable stream/sample buffers. The result is
// bit-for-bit identical to BandCurve with the equivalent map-based
// closure, at roughly an order of magnitude higher throughput.
//
// onEval, when non-nil, is called once per sample evaluation from
// worker goroutines (it must be concurrency-safe); jobs use it for
// progress counting. Cancelling ctx stops the curve within one chunk
// per worker.
func BandCurveEval(ctx context.Context, base core.Model, cfg Config, d design.Design, n float64, c market.Conditions, xs []float64, metric Metric, onEval func()) ([]Band, error) {
	ev, err := base.Compile(d, n, c)
	if err != nil {
		return nil, err
	}
	sample := func(w *core.Evaluator, p core.Perturbation, x float64) (float64, error) {
		if onEval != nil {
			onEval()
		}
		switch metric {
		case MetricCAS:
			return w.CASAtCapacity(p, x)
		default:
			t, err := w.EvalAtCapacity(p, x)
			return float64(t), err
		}
	}

	out := make([]Band, len(xs))
	err = sweep.ForChunks(ctx, len(xs), 0, 1, func(lo, hi int) error {
		w := ev.Clone()
		perts10 := make([]core.Perturbation, cfg.samples())
		perts25 := make([]core.Perturbation, cfg.samples())
		buf10 := make([]float64, len(perts10))
		buf25 := make([]float64, len(perts25))
		for i := lo; i < hi; i++ {
			x := xs[i]
			seed := cfg.seedAt(i)
			fillPerturbations(perts10, seed, 0.10)
			fillPerturbations(perts25, seed, 0.25)
			for j, p := range perts10 {
				v, err := sample(w, p, x)
				if err != nil {
					return fmt.Errorf("mc: x=%v sample %d: %w", x, j, err)
				}
				buf10[j] = v
			}
			for j, p := range perts25 {
				v, err := sample(w, p, x)
				if err != nil {
					return fmt.Errorf("mc: x=%v sample %d: %w", x, j, err)
				}
				buf25[j] = v
			}
			out[i] = Band{
				X:    x,
				Mean: stats.Mean(buf10),
				CI10: stats.CI95(buf10),
				CI25: stats.CI95(buf25),
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// BandCurveSerial is the serial reference implementation of BandCurve:
// one x-position at a time, samples within each position still
// parallel. It is retained for the equivalence test and the
// serial-vs-parallel benchmark.
func BandCurveSerial(ctx context.Context, base core.Model, cfg Config, xs []float64, evalAt func(core.Model, float64) (float64, error)) ([]Band, error) {
	out := make([]Band, 0, len(xs))
	for i, x := range xs {
		b, err := bandAt(ctx, base, cfg, i, x, evalAt)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}
