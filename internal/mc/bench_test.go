package mc

import (
	"context"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

// The band-curve benchmarks measure the tentpole optimization of the
// jobs PR: the serial curve walks 2·len(xs) full Monte-Carlo runs one
// x-position at a time, the parallel curve overlaps them. `make bench`
// records both in BENCH_jobs.json.

func benchBandCurve(b *testing.B, curve func(context.Context, core.Model, Config, []float64, func(core.Model, float64) (float64, error)) ([]Band, error)) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	cfg := Config{Samples: 32, Seed: 1}
	evalAt := func(pm core.Model, x float64) (float64, error) {
		v, err := pm.TTM(d, 10e6, market.Full().AtCapacity(x))
		return float64(v), err
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bands, err := curve(context.Background(), m, cfg, xs, evalAt)
		if err != nil {
			b.Fatal(err)
		}
		if len(bands) != len(xs) {
			b.Fatalf("bands = %d", len(bands))
		}
	}
	evalsPerOp := float64(len(xs) * 2 * cfg.samples())
	b.ReportMetric(evalsPerOp*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

func BenchmarkBandCurveSerial(b *testing.B)   { benchBandCurve(b, BandCurveSerial) }
func BenchmarkBandCurveParallel(b *testing.B) { benchBandCurve(b, BandCurve) }

// BenchmarkBandCurveCompiled is the same curve on BandCurveEval: design
// compiled once, chunked fan-out, zero allocations per sample.
func BenchmarkBandCurveCompiled(b *testing.B) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	cfg := Config{Samples: 32, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bands, err := BandCurveEval(context.Background(), m, cfg, d, 10e6, market.Full(), xs, MetricTTM, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(bands) != len(xs) {
			b.Fatalf("bands = %d", len(bands))
		}
	}
	evalsPerOp := float64(len(xs) * 2 * cfg.samples())
	b.ReportMetric(evalsPerOp*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}
