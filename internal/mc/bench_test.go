package mc

import (
	"context"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

// The band-curve benchmarks measure the tentpole optimization of the
// jobs PR: the serial curve walks 2·len(xs) full Monte-Carlo runs one
// x-position at a time, the parallel curve overlaps them. `make bench`
// records both in BENCH_jobs.json.

func benchBandCurve(b *testing.B, curve func(context.Context, core.Model, Config, []float64, func(core.Model, float64) (float64, error)) ([]Band, error)) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	cfg := Config{Samples: 32, Seed: 1}
	evalAt := func(pm core.Model, x float64) (float64, error) {
		v, err := pm.TTM(d, 10e6, market.Full().AtCapacity(x))
		return float64(v), err
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bands, err := curve(context.Background(), m, cfg, xs, evalAt)
		if err != nil {
			b.Fatal(err)
		}
		if len(bands) != len(xs) {
			b.Fatalf("bands = %d", len(bands))
		}
	}
	evalsPerOp := float64(len(xs) * 2 * cfg.samples())
	b.ReportMetric(evalsPerOp*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

func BenchmarkBandCurveSerial(b *testing.B)   { benchBandCurve(b, BandCurveSerial) }
func BenchmarkBandCurveParallel(b *testing.B) { benchBandCurve(b, BandCurve) }

// BenchmarkBandCurveBatch is the batch successor of BandCurveCompiled:
// the evaluator is compiled once, the Band output is preallocated, and
// every curve walk rides the pooled column-batch path — zero
// allocations per op in steady state.
func BenchmarkBandCurveBatch(b *testing.B) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	ev, err := m.Compile(d, 10e6, market.Full())
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	cfg := Config{Samples: 32, Seed: 1}
	out := make([]Band, len(xs))
	// Warm the pools once so the measurement is steady state.
	if err := BandCurveBatch(context.Background(), ev, cfg, xs, MetricTTM, out, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := BandCurveBatch(context.Background(), ev, cfg, xs, MetricTTM, out, nil); err != nil {
			b.Fatal(err)
		}
	}
	evalsPerOp := float64(len(xs) * 2 * cfg.samples())
	b.ReportMetric(evalsPerOp*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}

// TestBandCurveBatchAllocs pins the steady-state zero-allocation
// contract of the batched band walker (the hot path under
// BandCurveEval, which itself only adds the result-slice allocation).
func TestBandCurveBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime drops sync.Pool puts; pooled path allocates by design")
	}
	var m core.Model
	d := scenario.A11At(technode.N28)
	ev, err := m.Compile(d, 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.5, 0.75, 1.0}
	cfg := Config{Samples: 64, Seed: 1}
	out := make([]Band, len(xs))
	for _, metric := range []Metric{MetricTTM, MetricCAS} {
		// Warm the call, worker, and scratch pools.
		if err := BandCurveBatch(context.Background(), ev, cfg, xs, metric, out, nil); err != nil {
			t.Fatal(err)
		}
		if a := testing.AllocsPerRun(20, func() {
			if err := BandCurveBatch(context.Background(), ev, cfg, xs, metric, out, nil); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("metric %v: BandCurveBatch allocates %v/op, want 0", metric, a)
		}
	}
}

// BenchmarkBandCurveCompiled is the same curve on BandCurveEval: design
// compiled once, chunked fan-out, zero allocations per sample.
func BenchmarkBandCurveCompiled(b *testing.B) {
	var m core.Model
	d := scenario.A11At(technode.N28)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	cfg := Config{Samples: 32, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bands, err := BandCurveEval(context.Background(), m, cfg, d, 10e6, market.Full(), xs, MetricTTM, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(bands) != len(xs) {
			b.Fatalf("bands = %d", len(bands))
		}
	}
	evalsPerOp := float64(len(xs) * 2 * cfg.samples())
	b.ReportMetric(evalsPerOp*float64(b.N)/b.Elapsed().Seconds(), "evals/s")
}
