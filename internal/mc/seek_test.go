package mc

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/market"
	"ttmcas/internal/scenario"
	"ttmcas/internal/technode"
)

// TestUniformSourceSeekable is the invariant distributed sharding
// depends on: the counter-based stream is O(1)-seekable, so drawing
// position t directly produces exactly the value reached by drawing
// positions 0..t in order — for any seed, any variation, any t.
func TestUniformSourceSeekable(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 64; trial++ {
		seed := rng.Int63()
		if rng.Intn(2) == 0 {
			seed = -seed
		}
		v := 0.05 + rng.Float64()*0.45
		const draws = 256
		// Walk the stream serially, recording every draw.
		serial := make([]float64, draws)
		src := uniformSource{state: uint64(seed)}
		for i := range serial {
			serial[i] = src.draw(v)
		}
		// Seek to a handful of random positions directly.
		for k := 0; k < 32; k++ {
			pos := rng.Intn(draws)
			seek := uniformSource{state: uint64(seed) + uint64(pos)*golden64}
			got := seek.draw(v)
			if math.Float64bits(got) != math.Float64bits(serial[pos]) {
				t.Fatalf("seed %d v %v: draw at position %d = %x, serial walk got %x",
					seed, v, pos, math.Float64bits(got), math.Float64bits(serial[pos]))
			}
		}
	}
}

// TestPerturbationStreamSeekable checks the sample-granular form:
// perturbationStream(seed, t) positioned directly equals the state the
// position-0 stream reaches after drawing samples 0..t-1 (six draws
// each), so fillPerturbationColumns can fill any sub-range [pos, pos+n)
// without replaying the prefix.
func TestPerturbationStreamSeekable(t *testing.T) {
	rng := rand.New(rand.NewSource(4222))
	for trial := 0; trial < 32; trial++ {
		seed := rng.Int63()
		v := 0.10
		if trial%2 == 1 {
			v = 0.25
		}
		const samples = 128
		want := make([]core.Perturbation, samples)
		fillPerturbations(want, seed, v)
		for k := 0; k < 16; k++ {
			pos := rng.Intn(samples)
			src := perturbationStream(seed, pos)
			got := core.Perturbation{
				NTT: src.draw(v), NUT: src.draw(v), D0: src.draw(v),
				Rate: src.draw(v), FabLatency: src.draw(v), TAPLatency: src.draw(v),
			}
			if got != want[pos] {
				t.Fatalf("seed %d: sample %d sought directly = %+v, serial walk got %+v",
					seed, pos, got, want[pos])
			}
		}
	}
}

// TestBandCurveBatchAtShards checks that a band curve split into
// position-range shards via BandCurveBatchAt concatenates into exactly
// the unsplit walk's bands.
func TestBandCurveBatchAtShards(t *testing.T) {
	var m core.Model
	ev, err := m.Compile(scenario.A11At(technode.N28), 10e6, market.Full())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Samples: 64, Seed: 7}
	xs := make([]float64, 9)
	for i := range xs {
		xs[i] = 0.5 + 0.1*float64(i)
	}
	want := make([]Band, len(xs))
	if err := BandCurveBatch(context.Background(), ev, cfg, xs, MetricTTM, want, nil); err != nil {
		t.Fatalf("full walk: %v", err)
	}
	got := make([]Band, len(xs))
	for _, cut := range [][2]int{{0, 4}, {4, 7}, {7, 9}} {
		lo, hi := cut[0], cut[1]
		if err := BandCurveBatchAt(context.Background(), ev, cfg, xs[lo:hi], lo, MetricTTM, got[lo:hi], nil); err != nil {
			t.Fatalf("shard [%d,%d): %v", lo, hi, err)
		}
	}
	for i := range want {
		if math.Float64bits(got[i].Mean) != math.Float64bits(want[i].Mean) ||
			got[i].CI10 != want[i].CI10 || got[i].CI25 != want[i].CI25 {
			t.Fatalf("position %d: sharded band %+v != serial %+v", i, got[i], want[i])
		}
	}
}
