package geometry

import (
	"math"
	"testing"
	"testing/quick"

	"ttmcas/internal/units"
)

func TestWaferArea(t *testing.T) {
	w := Default300()
	want := math.Pi * 150 * 150
	if got := float64(w.Area()); math.Abs(got-want) > 1e-9 {
		t.Errorf("Area = %v, want %v", got, want)
	}
}

func TestGrossDiesKnownValues(t *testing.T) {
	w := Default300()
	// ~100 mm² die: 70686/100 − 942.48/√200 ≈ 706.9 − 66.6 ≈ 640.
	if got := w.GrossDies(100); got < 630 || got > 650 {
		t.Errorf("GrossDies(100mm²) = %d, want ~640", got)
	}
	// A die the size of the wafer cannot fit once edge loss applies.
	if got := w.GrossDies(w.Area()); got != 0 {
		t.Errorf("GrossDies(wafer-sized) = %d, want 0", got)
	}
	if got := w.GrossDies(0); got != 0 {
		t.Errorf("GrossDies(0) = %d, want 0", got)
	}
	if got := w.GrossDies(-5); got != 0 {
		t.Errorf("GrossDies(-5) = %d, want 0", got)
	}
}

func TestNaiveExceedsCorrected(t *testing.T) {
	// Property: the naive estimate is always >= the edge-corrected one,
	// and both are monotone non-increasing in die area.
	w := Default300()
	f := func(raw uint16) bool {
		area := units.MM2(1 + float64(raw%2000))
		naive := w.NaiveDies(area)
		corr := w.GrossDies(area)
		if naive < corr {
			return false
		}
		bigger := area * 2
		return w.GrossDies(bigger) <= corr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWafersFor(t *testing.T) {
	w := Default300()
	n, err := w.WafersFor(6400, 100)
	if err != nil {
		t.Fatal(err)
	}
	// ~640 dies per wafer → ~10 wafers.
	if float64(n) < 9.5 || float64(n) > 10.5 {
		t.Errorf("WafersFor = %v, want ~10", float64(n))
	}
	if _, err := w.WafersFor(10, 70000); err == nil {
		t.Error("oversized die should error")
	}
	zero, err := w.WafersFor(0, 100)
	if err != nil || zero != 0 {
		t.Errorf("WafersFor(0) = %v, %v", zero, err)
	}
}

func TestSplitDie(t *testing.T) {
	cases := []struct {
		total units.MM2
		wantN int
	}{
		{100, 1}, {858, 1}, {859, 2}, {1716, 2}, {1717, 3}, {0, 1},
	}
	for _, c := range cases {
		n, per := SplitDie(c.total)
		if n != c.wantN {
			t.Errorf("SplitDie(%v) = %d dies, want %d", float64(c.total), n, c.wantN)
		}
		if c.total > 0 && math.Abs(float64(per)*float64(n)-float64(c.total)) > 1e-9 {
			t.Errorf("SplitDie(%v): %d × %v ≠ total", float64(c.total), n, float64(per))
		}
		if per > ReticleLimitMM2 {
			t.Errorf("SplitDie(%v): per-die %v exceeds reticle", float64(c.total), float64(per))
		}
	}
}

func TestGrossDiesFracContinuity(t *testing.T) {
	// The fractional count should decrease smoothly: no jumps bigger
	// than expected between adjacent areas.
	w := Default300()
	prev := w.GrossDiesFrac(50)
	for a := units.MM2(51); a <= 1000; a++ {
		cur := w.GrossDiesFrac(a)
		if cur > prev {
			t.Fatalf("GrossDiesFrac not monotone at %v mm²: %v > %v", float64(a), cur, prev)
		}
		prev = cur
	}
}
