// Package geometry models wafer and die geometry: how many die sites a
// circular wafer of a given diameter provides for a rectangular die of a
// given area.
//
// The paper's Section 5 computes the number of wafers N_W from the final
// chip count, the die area, and the wafer area, "also account[ing] for
// partial edge dies"; all results use 300 mm-diameter-equivalent wafers.
// This package implements the standard gross-die-per-wafer estimate
//
//	GDPW = π(d/2)²/A − π·d/√(2A)
//
// (wafer area divided by die area, minus the ring of partial dies lost
// at the wafer edge), together with a naive area-ratio estimate used by
// the edge-correction ablation.
package geometry

import (
	"errors"
	"math"

	"ttmcas/internal/units"
)

// DefaultWaferDiameterMM is the industry-standard 300 mm wafer used for
// every evaluation in the paper (legacy 200 mm lines are folded into
// 300 mm equivalents).
const DefaultWaferDiameterMM = 300.0

// ReticleLimitMM2 is the approximate maximum die area a single
// photolithography exposure field can pattern (~26 mm × 33 mm). Designs
// whose dies exceed this cannot be manufactured monolithically.
const ReticleLimitMM2 units.MM2 = 858.0

// ErrDieTooLarge is returned when a die cannot fit on the wafer at all.
var ErrDieTooLarge = errors.New("geometry: die area exceeds usable wafer area")

// Wafer describes a circular silicon wafer.
type Wafer struct {
	// DiameterMM is the wafer diameter in millimeters.
	DiameterMM float64
}

// Default300 returns the standard 300 mm wafer.
func Default300() Wafer { return Wafer{DiameterMM: DefaultWaferDiameterMM} }

// Area returns the full circular area of the wafer.
func (w Wafer) Area() units.MM2 {
	r := w.DiameterMM / 2
	return units.MM2(math.Pi * r * r)
}

// GrossDies returns the estimated number of complete die sites for a die
// of the given area, applying the partial-edge-die correction. The
// result is at least zero; it is zero when the die is larger than the
// wafer can hold.
func (w Wafer) GrossDies(die units.MM2) int {
	n := w.GrossDiesFrac(die)
	if n <= 0 {
		return 0
	}
	return int(n)
}

// GrossDiesFrac is GrossDies before truncation to an integer; exposed
// for smooth optimization sweeps where integer steps would create
// artificial plateaus.
func (w Wafer) GrossDiesFrac(die units.MM2) float64 {
	if die <= 0 {
		return 0
	}
	a := float64(die)
	n := float64(w.Area())/a - math.Pi*w.DiameterMM/math.Sqrt(2*a)
	if n < 0 || math.IsNaN(n) {
		return 0
	}
	return n
}

// NaiveDies returns the uncorrected wafer-area / die-area estimate. It
// systematically over-counts by ignoring partial dies at the wafer edge
// and exists for the edge-correction ablation benchmark.
func (w Wafer) NaiveDies(die units.MM2) int {
	if die <= 0 {
		return 0
	}
	n := float64(w.Area()) / float64(die)
	if n < 1 {
		return 0
	}
	return int(n)
}

// WafersFor returns the expected number of wafers required to obtain
// gross die sites for `dies` dies of the given area. It returns an error
// when no die fits on the wafer. The result is fractional: the model
// works in expectations and the caller decides whether to round up to
// whole wafers (or lots).
func (w Wafer) WafersFor(dies float64, die units.MM2) (units.Wafers, error) {
	per := w.GrossDiesFrac(die)
	if per < 1 {
		return 0, ErrDieTooLarge
	}
	if dies <= 0 {
		return 0, nil
	}
	return units.Wafers(dies / per), nil
}

// SplitDie returns the number of equal-sized dies a design of the given
// total area must be split into so each die fits the reticle limit, and
// the per-die area. A design that already fits returns (1, total).
func SplitDie(total units.MM2) (n int, per units.MM2) {
	if total <= 0 {
		return 1, 0
	}
	n = int(math.Ceil(float64(total) / float64(ReticleLimitMM2)))
	if n < 1 {
		n = 1
	}
	return n, total / units.MM2(n)
}
