package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHoursToWeeks(t *testing.T) {
	cases := []struct {
		hours   Hours
		workers int
		want    Weeks
	}{
		{40, 1, 1},
		{400, 10, 1},
		{80, 1, 2},
		{40, 0, 1},  // non-positive workers default to one
		{40, -3, 1}, // ditto
	}
	for _, c := range cases {
		if got := c.hours.Weeks(c.workers); math.Abs(float64(got-c.want)) > 1e-12 {
			t.Errorf("(%v h).Weeks(%d) = %v, want %v", float64(c.hours), c.workers, got, c.want)
		}
	}
}

func TestWeeksToHours(t *testing.T) {
	if got := Weeks(2).Hours(); got != 336 {
		t.Errorf("2 weeks = %v hours, want 336", float64(got))
	}
}

func TestKWPMRoundTrip(t *testing.T) {
	f := func(raw uint16) bool {
		kw := float64(raw) / 100
		r := KWPM(kw)
		return math.Abs(r.KWPMValue()-kw) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// 350 kW/month ≈ 80.5k wafers/week (365.25/12/7 weeks per month).
	r := KWPM(350)
	if float64(r) < 80_000 || float64(r) > 81_000 {
		t.Errorf("350 kW/mo = %v wafers/week", float64(r))
	}
}

func TestAreaConversions(t *testing.T) {
	if got := MM2(250).CM2(); got != 2.5 {
		t.Errorf("250 mm² = %v cm²", got)
	}
	if got := DefectsPerCM2(0.1).PerMM2(); got != 0.001 {
		t.Errorf("0.1/cm² = %v/mm²", got)
	}
}

func TestDensityArea(t *testing.T) {
	if got := MTrPerMM2(50).Area(5e9); math.Abs(float64(got)-100) > 1e-9 {
		t.Errorf("5B at 50 MTr/mm² = %v mm²", float64(got))
	}
	if got := MTrPerMM2(0).Area(1e9); !math.IsInf(float64(got), 1) {
		t.Errorf("zero density area = %v, want +Inf", float64(got))
	}
	if got := MTrPerMM2(-1).Area(1e9); !math.IsInf(float64(got), 1) {
		t.Errorf("negative density area = %v, want +Inf", float64(got))
	}
}

func TestScaleHelpers(t *testing.T) {
	if USD(2.5e9).Billions() != 2.5 || USD(3e6).Millions() != 3 {
		t.Error("USD scaling wrong")
	}
	if Transistors(4.3e9).Billions() != 4.3 || Transistors(514e6).Millions() != 514 {
		t.Error("transistor scaling wrong")
	}
}

func TestFormatters(t *testing.T) {
	if got := FmtWeeks(23.25); got != "23.2 wk" && got != "23.3 wk" {
		t.Errorf("FmtWeeks = %q", got)
	}
	cases := map[float64]string{
		2.5e9: "$2.50B",
		6.8e6: "$6.8M",
		42e3:  "$42K",
		17:    "$17",
		-3e6:  "$-3.0M",
	}
	for v, want := range cases {
		if got := FmtUSD(USD(v)); got != want {
			t.Errorf("FmtUSD(%v) = %q, want %q", v, got, want)
		}
	}
}
