// Package units defines the typed physical and economic quantities used
// throughout the ttm-cas modeling framework.
//
// The chip-creation model of Ning et al. (ISCA '23) mixes several unit
// systems: calendar time in weeks, engineering effort in engineer-hours,
// silicon area in mm², wafer throughput in wafers per week, and money in
// USD. Distinct named types keep conversions explicit and prevent the
// classic modeling bug of adding engineer-hours to calendar weeks.
package units

import (
	"fmt"
	"math"
)

// Weeks is a span of calendar time measured in weeks. The paper reports
// all time-to-market values in calendar weeks.
type Weeks float64

// Hours is engineering or machine effort measured in hours.
type Hours float64

// HoursPerWeek is the conversion used when turning engineer-hours into
// calendar time for a single engineer: a standard 40-hour work week.
const HoursPerWeek = 40.0

// Weeks converts effort hours into calendar weeks assuming the given
// number of workers share the effort perfectly in parallel.
// A non-positive worker count is treated as a single worker.
func (h Hours) Weeks(workers int) Weeks {
	if workers <= 0 {
		workers = 1
	}
	return Weeks(float64(h) / (HoursPerWeek * float64(workers)))
}

// Hours converts calendar weeks into hours of wall-clock time
// (168 hours per week). This is used by the discrete-event fab
// simulator whose clock runs in hours.
func (w Weeks) Hours() Hours { return Hours(float64(w) * 168.0) }

// MM2 is silicon area in square millimeters.
type MM2 float64

// CM2 converts to square centimeters (defect densities are quoted per cm²).
func (a MM2) CM2() float64 { return float64(a) / 100.0 }

// USD is money in United States dollars.
type USD float64

// Millions returns the value in millions of dollars, for reporting.
func (u USD) Millions() float64 { return float64(u) / 1e6 }

// Billions returns the value in billions of dollars, for reporting.
func (u USD) Billions() float64 { return float64(u) / 1e9 }

// Transistors is a transistor count. Designs in the paper range from
// tens of millions (Raven/PicoRV32 multicore tiles) to billions (A11,
// Zen 2), so a float64 representation is exact far beyond the range
// that matters and composes cleanly with the effort curves.
type Transistors float64

// Millions returns the count in millions of transistors.
func (t Transistors) Millions() float64 { return float64(t) / 1e6 }

// Billions returns the count in billions of transistors.
func (t Transistors) Billions() float64 { return float64(t) / 1e9 }

// WafersPerWeek is foundry throughput. Table 2 of the paper quotes
// kilo-wafers per month; KWPM converts from that convention using the
// average Gregorian month length of 365.25/12/7 weeks.
type WafersPerWeek float64

// WeeksPerMonth is the mean number of weeks in a month, used to convert
// the industry-standard "wafers per month" quotes into per-week rates.
const WeeksPerMonth = 365.25 / 12.0 / 7.0

// KWPM converts a throughput quoted in kilo-wafers per month (the unit
// of the paper's Table 2) into wafers per week.
func KWPM(kw float64) WafersPerWeek {
	return WafersPerWeek(kw * 1000.0 / WeeksPerMonth)
}

// KWPMValue reports the rate back in kilo-wafers per month for display.
func (r WafersPerWeek) KWPMValue() float64 {
	return float64(r) * WeeksPerMonth / 1000.0
}

// Wafers is a (possibly fractional, in expectation) count of wafers.
type Wafers float64

// DefectsPerCM2 is a fabrication defect density, the D0 parameter of the
// negative-binomial yield model.
type DefectsPerCM2 float64

// PerMM2 converts the defect density to defects per mm², matching die
// areas expressed in MM2.
func (d DefectsPerCM2) PerMM2() float64 { return float64(d) / 100.0 }

// MTrPerMM2 is a transistor density in millions of transistors per mm².
type MTrPerMM2 float64

// Area returns the silicon area required to place t transistors at this
// density. Density must be positive; a non-positive density yields +Inf
// area, which downstream code treats as an infeasible design point.
func (d MTrPerMM2) Area(t Transistors) MM2 {
	if d <= 0 {
		return MM2(math.Inf(1))
	}
	return MM2(t.Millions() / float64(d))
}

// Format helpers keep report code terse.

// FmtWeeks renders a week count with one decimal, e.g. "23.3 wk".
func FmtWeeks(w Weeks) string { return fmt.Sprintf("%.1f wk", float64(w)) }

// FmtUSD renders dollars with automatic M/B scaling, e.g. "$6.8M".
func FmtUSD(u USD) string {
	switch v := float64(u); {
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("$%.2fB", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("$%.1fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("$%.0fK", v/1e3)
	default:
		return fmt.Sprintf("$%.0f", v)
	}
}
