package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1: Σ(d²)=32, /7.
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance(single) = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("Percentile(nil) should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestSortedCI95MatchesCI95BitForBit(t *testing.T) {
	// SortedCI95 is the in-place fast path of the batched MC drivers;
	// on a pre-sorted copy it must return exactly the bits CI95 returns
	// on the unsorted original, for every sample size including the
	// len-1 and len-2 edge ranks.
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 7, 64, 1024} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		want := CI95(xs)
		cp := append([]float64(nil), xs...)
		sort.Float64s(cp)
		got := SortedCI95(cp)
		if math.Float64bits(got.Lo) != math.Float64bits(want.Lo) ||
			math.Float64bits(got.Hi) != math.Float64bits(want.Hi) {
			t.Errorf("n=%d: SortedCI95 = %+v, CI95 = %+v", n, got, want)
		}
	}
	empty := SortedCI95(nil)
	if !math.IsNaN(empty.Lo) || !math.IsNaN(empty.Hi) {
		t.Errorf("SortedCI95(nil) = %+v, want NaN bounds", empty)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, -2, 5})
	if s.N != 3 || s.Min != -2 || s.Max != 5 {
		t.Errorf("Summarize = %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 || !math.IsNaN(empty.Min) {
		t.Errorf("Summarize(nil) = %+v", empty)
	}
}

func TestCI95CoversBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	ci := CI95(xs)
	if !almost(ci.Lo, -1.96, 0.1) || !almost(ci.Hi, 1.96, 0.1) {
		t.Errorf("CI95 of standard normal = [%v, %v], want ~[-1.96, 1.96]", ci.Lo, ci.Hi)
	}
	if !ci.Contains(0) {
		t.Error("CI95 should contain 0")
	}
	if ci.Width() <= 0 {
		t.Error("CI width should be positive")
	}
}

func TestMeanCI95Shrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	small := make([]float64, 100)
	big := make([]float64, 10000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	if MeanCI95(big).Width() >= MeanCI95(small).Width() {
		t.Error("mean CI should shrink with sample size")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5 + 1.5*x
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Intercept, 2.5, 1e-9) || !almost(f.Slope, 1.5, 1e-9) || !almost(f.R2, 1, 1e-9) {
		t.Errorf("fit = %+v", f)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{2, 3}); err == nil {
		t.Error("vertical line should error")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{3}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestFitExponentialRoundTrip(t *testing.T) {
	// Property: an exact exponential is recovered for random positive
	// coefficients.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + 10*rng.Float64()
		b := -1 + 2*rng.Float64()
		xs := []float64{0, 1, 2, 3, 4, 5}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a * math.Exp(b*x)
		}
		fit, err := FitExponential(xs, ys)
		if err != nil {
			return false
		}
		return almost(fit.A, a, 1e-6*a) && almost(fit.B, b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitExponentialDomain(t *testing.T) {
	if _, err := FitExponential([]float64{0, 1}, []float64{1, -2}); err == nil {
		t.Error("negative y should error")
	}
}

func TestFitPowerRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := 0.1 + 10*rng.Float64()
		b := -2 + 4*rng.Float64()
		xs := []float64{1, 2, 3, 5, 8, 13}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a * math.Pow(x, b)
		}
		fit, err := FitPower(xs, ys)
		if err != nil {
			return false
		}
		return almost(fit.A, a, 1e-6*a) && almost(fit.B, b, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitPowerDomain(t *testing.T) {
	if _, err := FitPower([]float64{-1, 1}, []float64{1, 2}); err == nil {
		t.Error("negative x should error")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
}

func TestR2PenalizesNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3 + 2*xs[i] + 40*rng.NormFloat64()
	}
	f, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if f.R2 >= 1 || f.R2 < 0.5 {
		t.Errorf("noisy R2 = %v, want in [0.5, 1)", f.R2)
	}
}
