// Package stats provides the small statistical toolkit the modeling
// framework needs: descriptive statistics, confidence intervals, and
// least-squares regression (linear and exponential).
//
// Section 5 of the paper derives its per-node engineering-effort curves
// by fitting exponential and linear regressions through published cost
// anchors, and reports Monte-Carlo means with 95% confidence intervals.
// This package implements exactly those primitives on top of the
// standard library.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when an estimator is given fewer
// observations than it mathematically requires.
var ErrInsufficientData = errors.New("stats: insufficient data")

// ErrDomain is returned when input values fall outside an estimator's
// domain (for example non-positive y values in an exponential fit).
var ErrDomain = errors.New("stats: value outside estimator domain")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice so that callers aggregating optional series need no special
// casing; use Summary when emptiness must be detected.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return sortedPercentile(cp, p)
}

// sortedPercentile is Percentile on data already sorted ascending.
func sortedPercentile(cp []float64, p float64) float64 {
	if len(cp) == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Summary is a batch of descriptive statistics for one output series.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary for xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		s.Min, s.Max = math.NaN(), math.NaN()
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs[1:] {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	return s
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies within the closed interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// CI95 returns the empirical central 95% interval of xs (2.5th to 97.5th
// percentile). The paper's shaded regions and error bars are empirical
// 95% CIs of the Monte-Carlo output distribution, so percentile bounds
// are the faithful estimator (the outputs are not Gaussian).
func CI95(xs []float64) Interval {
	return Interval{Lo: Percentile(xs, 2.5), Hi: Percentile(xs, 97.5)}
}

// SortedCI95 is CI95 for a sample slice the caller has already sorted
// ascending (with sort.Float64s or equivalent): it reads the
// interpolated percentile bounds in place, skipping Percentile's
// copy-and-sort, and returns exactly the bits CI95 would. The batched
// Monte-Carlo drivers take the mean first, then sort their sample
// buffers in place and call this on the hot path.
func SortedCI95(sorted []float64) Interval {
	return Interval{Lo: sortedPercentile(sorted, 2.5), Hi: sortedPercentile(sorted, 97.5)}
}

// MeanCI95 returns a normal-approximation 95% confidence interval for
// the mean of xs (mean ± 1.96·s/√n). Used for estimator-convergence
// tests rather than for the figure bands.
func MeanCI95(xs []float64) Interval {
	if len(xs) == 0 {
		return Interval{math.NaN(), math.NaN()}
	}
	m := Mean(xs)
	half := 1.959963985 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return Interval{Lo: m - half, Hi: m + half}
}

// LinearFit is y = Intercept + Slope·x.
type LinearFit struct {
	Intercept, Slope float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Eval evaluates the fitted line at x.
func (f LinearFit) Eval(x float64) float64 { return f.Intercept + f.Slope*x }

// FitLinear computes the ordinary-least-squares line through (xs, ys).
// It requires at least two points with non-identical x values.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched series lengths")
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	f := LinearFit{Slope: sxy / sxx}
	f.Intercept = my - f.Slope*mx
	if syy > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - f.Eval(xs[i])
			ssRes += r * r
		}
		f.R2 = 1 - ssRes/syy
	} else {
		f.R2 = 1
	}
	_ = n
	return f, nil
}

// ExpFit is y = A·exp(B·x), the form the paper uses for tapeout and
// packaging effort as a function of process generation.
type ExpFit struct {
	A, B float64
	// R2 is computed in log space, where the fit is linear.
	R2 float64
}

// Eval evaluates the fitted exponential at x.
func (f ExpFit) Eval(x float64) float64 { return f.A * math.Exp(f.B*x) }

// FitExponential fits y = A·exp(B·x) by linear least squares on
// ln(y). All ys must be strictly positive.
func FitExponential(xs, ys []float64) (ExpFit, error) {
	logs := make([]float64, len(ys))
	for i, y := range ys {
		if y <= 0 {
			return ExpFit{}, ErrDomain
		}
		logs[i] = math.Log(y)
	}
	lin, err := FitLinear(xs, logs)
	if err != nil {
		return ExpFit{}, err
	}
	return ExpFit{A: math.Exp(lin.Intercept), B: lin.Slope, R2: lin.R2}, nil
}

// PowerFit is y = A·x^B, provided as an alternative effort-curve family
// for ablation against the exponential form.
type PowerFit struct {
	A, B float64
	R2   float64
}

// Eval evaluates the fitted power law at x (x must be positive).
func (f PowerFit) Eval(x float64) float64 { return f.A * math.Pow(x, f.B) }

// FitPower fits y = A·x^B by linear least squares in log-log space.
// All xs and ys must be strictly positive.
func FitPower(xs, ys []float64) (PowerFit, error) {
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	if len(xs) != len(ys) {
		return PowerFit{}, errors.New("stats: mismatched series lengths")
	}
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return PowerFit{}, ErrDomain
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	lin, err := FitLinear(lx, ly)
	if err != nil {
		return PowerFit{}, err
	}
	return PowerFit{A: math.Exp(lin.Intercept), B: lin.Slope, R2: lin.R2}, nil
}
