// Package accel is the substrate for the cost-of-specialization case
// study (Section 6.4, Table 3). The paper benchmarks SPIRAL-generated
// fixed-point sorting and floating-point FFT accelerators against an
// Ariane core on 2048-element blocks, taking cycle counts and unique
// transistor counts from commercial EDA synthesis. Without those tools,
// this package substitutes first-principles structural models:
//
//   - a scalar in-order core model (cycles per comparison / butterfly,
//     including the load/store and branch overhead an Ariane-class
//     pipeline pays per element);
//   - a streaming-reuse accelerator model: hardware implements f of the
//     algorithm's S network stages at w elements per cycle; a dataset
//     makes ⌈S/f⌉ passes, each costing n·stall/w + fill cycles.
//
// Speed-ups come out of these models; unique transistor counts are the
// paper's published synthesis figures (Table 3), carried as data the
// same way the Zen 2 die parameters are.
package accel

import (
	"fmt"
	"math"

	"ttmcas/internal/units"
)

// BlockSize is the dataset size of the case study.
const BlockSize = 2048

// ScalarCore models an Ariane-class in-order core executing the
// kernels in software.
type ScalarCore struct {
	// CyclesPerCompare is the per-comparison cost of merge sort
	// (loads, compare, branch, store, index update); zero means 10.
	CyclesPerCompare float64
	// CyclesPerButterfly is the per-butterfly cost of a radix-2 FFT
	// (10 dependent single-precision flops plus memory); zero means 60.
	CyclesPerButterfly float64
}

// Default scalar-core costs.
const (
	DefaultCyclesPerCompare   = 10
	DefaultCyclesPerButterfly = 60
)

func (c ScalarCore) withDefaults() ScalarCore {
	if c.CyclesPerCompare == 0 {
		c.CyclesPerCompare = DefaultCyclesPerCompare
	}
	if c.CyclesPerButterfly == 0 {
		c.CyclesPerButterfly = DefaultCyclesPerButterfly
	}
	return c
}

// SortCycles returns the scalar cycles to merge-sort n elements:
// n·log2(n) comparisons at the per-comparison cost.
func (c ScalarCore) SortCycles(n int) float64 {
	c = c.withDefaults()
	return float64(n) * math.Log2(float64(n)) * c.CyclesPerCompare
}

// FFTCycles returns the scalar cycles for an n-point radix-2 FFT:
// (n/2)·log2(n) butterflies at the per-butterfly cost.
func (c ScalarCore) FFTCycles(n int) float64 {
	c = c.withDefaults()
	return float64(n) / 2 * math.Log2(float64(n)) * c.CyclesPerButterfly
}

// Accelerator is the streaming-reuse machine model.
type Accelerator struct {
	// Name labels the design.
	Name string
	// TotalStages is the algorithm's network depth S (bitonic sort:
	// log2(n)·(log2(n)+1)/2; radix-2 FFT: log2(n)).
	TotalStages int
	// HWStages is f: how many stages are instantiated in hardware.
	HWStages int
	// Width is w: elements accepted per cycle.
	Width int
	// StallFactor inflates the initiation interval for memory-bank
	// conflicts; zero means 1.
	StallFactor float64
	// FillLatency is the pipeline fill cost per pass in cycles.
	FillLatency int
	// UniqueTransistors is the design's synthesized N_UT (the paper's
	// published Table 3 figures; non-memory transistors are unique).
	UniqueTransistors units.Transistors
}

// Validate checks the structural parameters.
func (a Accelerator) Validate() error {
	if a.TotalStages <= 0 || a.HWStages <= 0 || a.Width <= 0 {
		return fmt.Errorf("accel: %s: stages/width must be positive", a.Name)
	}
	if a.HWStages > a.TotalStages {
		return fmt.Errorf("accel: %s: hardware stages exceed network depth", a.Name)
	}
	return nil
}

// Passes returns how many trips a dataset makes through the hardware.
func (a Accelerator) Passes() int {
	return (a.TotalStages + a.HWStages - 1) / a.HWStages
}

// Cycles returns the cycles to process one n-element dataset.
func (a Accelerator) Cycles(n int) float64 {
	stall := a.StallFactor
	if stall == 0 {
		stall = 1
	}
	perPass := float64(n)*stall/float64(a.Width) + float64(a.FillLatency)
	return float64(a.Passes()) * perPass
}

// SpeedUp returns scalarCycles / acceleratorCycles for the kernel.
func SpeedUp(scalar float64, a Accelerator, n int) float64 {
	return scalar / a.Cycles(n)
}

// bitonicStages returns the comparator-stage depth of an n-input
// bitonic sorting network: log2(n)·(log2(n)+1)/2.
func bitonicStages(n int) int {
	l := int(math.Round(math.Log2(float64(n))))
	return l * (l + 1) / 2
}

// fftStages returns the butterfly-stage depth of an n-point radix-2
// FFT: log2(n).
func fftStages(n int) int {
	return int(math.Round(math.Log2(float64(n))))
}

// ArianeNUT is the unique transistor count of the reference Ariane
// core, the denominator of Table 3's "area relative to Ariane" column
// (the paper's NTT ratios are uniformly 2.51 M per Ariane).
const ArianeNUT units.Transistors = 2.51e6

// The four generated designs of Table 3. Hardware shape parameters are
// chosen so the structural cycle model lands on the paper's measured
// speed-up band; unique transistor counts are the paper's synthesis
// results.
func SortingStream() Accelerator {
	return Accelerator{
		Name:        "sorting-stream",
		TotalStages: bitonicStages(BlockSize),
		HWStages:    6, Width: 2,
		FillLatency:       12,
		UniqueTransistors: 45.62e6,
	}
}

// SortingIterative is the single-stage, reused sorting design.
func SortingIterative() Accelerator {
	return Accelerator{
		Name:        "sorting-iterative",
		TotalStages: bitonicStages(BlockSize),
		HWStages:    1, Width: 2,
		FillLatency:       2,
		UniqueTransistors: 18.90e6,
	}
}

// DFTStream is the streaming FFT design.
func DFTStream() Accelerator {
	return Accelerator{
		Name:        "dft-stream",
		TotalStages: fftStages(BlockSize),
		HWStages:    1, Width: 2,
		FillLatency:       2,
		UniqueTransistors: 37.31e6,
	}
}

// DFTIterative is the narrow, memory-bound FFT design.
func DFTIterative() Accelerator {
	return Accelerator{
		Name:        "dft-iterative",
		TotalStages: fftStages(BlockSize),
		HWStages:    1, Width: 1,
		StallFactor: 1.4, FillLatency: 4,
		UniqueTransistors: 18.18e6,
	}
}

// All returns the four Table 3 designs in the paper's row order.
func All() []Accelerator {
	return []Accelerator{SortingStream(), SortingIterative(), DFTStream(), DFTIterative()}
}

// IsSort reports whether the accelerator runs the sorting kernel (by
// network depth).
func (a Accelerator) IsSort() bool { return a.TotalStages == bitonicStages(BlockSize) }

// KernelSpeedUp evaluates the design's speed-up over the scalar core
// on the case study's 2048-element blocks.
func (a Accelerator) KernelSpeedUp(core ScalarCore) float64 {
	var scalar float64
	if a.IsSort() {
		scalar = core.SortCycles(BlockSize)
	} else {
		scalar = core.FFTCycles(BlockSize)
	}
	return SpeedUp(scalar, a, BlockSize)
}

// AreaRelativeToAriane returns the Table 3 area-ratio column.
func (a Accelerator) AreaRelativeToAriane() float64 {
	return float64(a.UniqueTransistors) / float64(ArianeNUT)
}
