package accel

import (
	"math"
	"testing"
)

func TestNetworkDepths(t *testing.T) {
	// Bitonic 2048: log2 = 11 → 11·12/2 = 66 stages. FFT 2048: 11.
	if got := bitonicStages(2048); got != 66 {
		t.Errorf("bitonic stages = %d, want 66", got)
	}
	if got := fftStages(2048); got != 11 {
		t.Errorf("fft stages = %d, want 11", got)
	}
}

func TestScalarCycleModels(t *testing.T) {
	var c ScalarCore
	// 2048·11·10 comparisons-cycles.
	if got := c.SortCycles(2048); math.Abs(got-225280) > 1 {
		t.Errorf("scalar sort cycles = %v", got)
	}
	// 1024·11·60 butterfly-cycles.
	if got := c.FFTCycles(2048); math.Abs(got-675840) > 1 {
		t.Errorf("scalar fft cycles = %v", got)
	}
}

func TestPasses(t *testing.T) {
	a := SortingStream() // 66 stages, 6 in hardware
	if a.Passes() != 11 {
		t.Errorf("stream passes = %d, want 11", a.Passes())
	}
	if SortingIterative().Passes() != 66 {
		t.Errorf("iterative passes = %d, want 66", SortingIterative().Passes())
	}
}

func TestTable3SpeedUpBands(t *testing.T) {
	// The structural models must land in the neighbourhood of the
	// paper's measured speed-ups (Table 3): 16.71, 3.07, 56.36, 20.81.
	var core ScalarCore
	bands := map[string][2]float64{
		"sorting-stream":    {12, 24},
		"sorting-iterative": {2.4, 4.2},
		"dft-stream":        {45, 70},
		"dft-iterative":     {16, 26},
	}
	for _, a := range All() {
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		got := a.KernelSpeedUp(core)
		b := bands[a.Name]
		if got < b[0] || got > b[1] {
			t.Errorf("%s speed-up = %.2f, want in [%v, %v]", a.Name, got, b[0], b[1])
		}
	}
}

func TestSpeedUpOrderings(t *testing.T) {
	// Streaming designs must beat their iterative counterparts, and
	// within each pair the iterative design must be smaller.
	var core ScalarCore
	ss, si := SortingStream(), SortingIterative()
	ds, di := DFTStream(), DFTIterative()
	if ss.KernelSpeedUp(core) <= si.KernelSpeedUp(core) {
		t.Error("streaming sorter should beat iterative")
	}
	if ds.KernelSpeedUp(core) <= di.KernelSpeedUp(core) {
		t.Error("streaming DFT should beat iterative")
	}
	if ss.UniqueTransistors <= si.UniqueTransistors {
		t.Error("streaming sorter should be larger")
	}
	if ds.UniqueTransistors <= di.UniqueTransistors {
		t.Error("streaming DFT should be larger")
	}
}

func TestAreaRatios(t *testing.T) {
	// Table 3's "area relative to Ariane" column: 18.18, 7.53, 14.87,
	// 7.24.
	want := map[string]float64{
		"sorting-stream":    18.18,
		"sorting-iterative": 7.53,
		"dft-stream":        14.87,
		"dft-iterative":     7.24,
	}
	for _, a := range All() {
		got := a.AreaRelativeToAriane()
		if math.Abs(got-want[a.Name])/want[a.Name] > 0.01 {
			t.Errorf("%s area ratio = %.2f, want %.2f", a.Name, got, want[a.Name])
		}
	}
}

func TestCyclesMonotoneInWidth(t *testing.T) {
	a := SortingIterative()
	narrow := a
	narrow.Width = 1
	if narrow.Cycles(BlockSize) <= a.Cycles(BlockSize) {
		t.Error("halving width should slow the accelerator")
	}
}

func TestStallFactorSlows(t *testing.T) {
	a := DFTStream()
	stalled := a
	stalled.StallFactor = 2
	if stalled.Cycles(BlockSize) <= a.Cycles(BlockSize) {
		t.Error("stalls should add cycles")
	}
}

func TestValidate(t *testing.T) {
	bad := []Accelerator{
		{Name: "z", TotalStages: 0, HWStages: 1, Width: 1},
		{Name: "w", TotalStages: 4, HWStages: 1, Width: 0},
		{Name: "f", TotalStages: 4, HWStages: 8, Width: 1},
	}
	for _, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("%s should be invalid", a.Name)
		}
	}
}
