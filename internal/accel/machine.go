package accel

import (
	"fmt"
	"sort"
)

// Cycle-stepped execution of the streaming-reuse machine. The
// Accelerator type prices designs with a closed-form cycle count
// (passes × (n·stall/w + fill)); this simulator executes the same
// machine beat by beat — data streams through f hardware stages at w
// elements per cycle, loops back ⌈S/f⌉ times, pays the fill latency on
// every pass — so the closed form is validated operationally, the same
// way fabsim validates the fabrication equations. For sorting designs
// it also applies the real bitonic compare-exchanges, so the simulated
// machine must actually sort.

// Trace records one pass of a machine execution.
type Trace struct {
	Pass   int
	Stages []int // network stage indices applied this pass
	Cycles float64
}

// MachineRun is the outcome of a cycle-stepped execution.
type MachineRun struct {
	// Cycles is the simulated total.
	Cycles float64
	// Passes is the number of trips through the hardware.
	Passes int
	// Traces details each pass.
	Traces []Trace
}

// StepSort executes the accelerator on real data: the dataset streams
// through the machine pass by pass, each pass applying the pass's
// bitonic stages and costing n·stall/w + fill cycles. The data must be
// a power-of-two length matching the network the accelerator was built
// for; it is sorted in place.
func (a Accelerator) StepSort(data []int32) (MachineRun, error) {
	if err := a.Validate(); err != nil {
		return MachineRun{}, err
	}
	n := len(data)
	if BitonicStages(n) != a.TotalStages {
		return MachineRun{}, fmt.Errorf("accel: %s is built for a %d-stage network, data needs %d",
			a.Name, a.TotalStages, BitonicStages(n))
	}
	stall := a.StallFactor
	if stall == 0 {
		stall = 1
	}

	// Enumerate the bitonic schedule as (k, j) stage pairs in order.
	type stage struct{ k, j int }
	var schedule []stage
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			schedule = append(schedule, stage{k, j})
		}
	}

	var run MachineRun
	for start := 0; start < len(schedule); start += a.HWStages {
		end := start + a.HWStages
		if end > len(schedule) {
			end = len(schedule)
		}
		tr := Trace{Pass: run.Passes + 1}
		for si := start; si < end; si++ {
			st := schedule[si]
			for i := 0; i < n; i++ {
				l := i ^ st.j
				if l <= i {
					continue
				}
				ascending := i&st.k == 0
				if (data[i] > data[l]) == ascending {
					data[i], data[l] = data[l], data[i]
				}
			}
			tr.Stages = append(tr.Stages, si)
		}
		// One pass streams the dataset once through the instantiated
		// stages: n·stall/w beats plus the pipeline fill.
		tr.Cycles = float64(n)*stall/float64(a.Width) + float64(a.FillLatency)
		run.Cycles += tr.Cycles
		run.Passes++
		run.Traces = append(run.Traces, tr)
	}
	return run, nil
}

// StepCount runs the machine's timing only (no data), for FFT-class
// designs whose dataflow is validated separately by the functional FFT.
func (a Accelerator) StepCount(n int) (MachineRun, error) {
	if err := a.Validate(); err != nil {
		return MachineRun{}, err
	}
	stall := a.StallFactor
	if stall == 0 {
		stall = 1
	}
	var run MachineRun
	for done := 0; done < a.TotalStages; done += a.HWStages {
		cycles := float64(n)*stall/float64(a.Width) + float64(a.FillLatency)
		run.Cycles += cycles
		run.Passes++
		run.Traces = append(run.Traces, Trace{Pass: run.Passes, Cycles: cycles})
	}
	return run, nil
}

// VerifySorted reports whether data is ascending (test helper shared
// with examples).
func VerifySorted(data []int32) bool {
	return sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] })
}
