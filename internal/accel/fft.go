package accel

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Functional radix-2 decimation-in-time FFT: the DFT kernel the paper's
// SPIRAL-generated accelerators implement. As with the sorting network,
// executing the real dataflow grounds the cycle model's stage and
// butterfly counts, and the unit tests verify the transform against a
// naive DFT.

// FFTStats reports the work an FFT execution performed.
type FFTStats struct {
	// Stages is the number of butterfly stages (log2 n).
	Stages int
	// Butterflies is the number of butterfly operations ((n/2)·log2 n).
	Butterflies int
}

// FFT computes the in-place radix-2 DIT FFT of data, whose length must
// be a power of two, and returns the work statistics.
func FFT(data []complex128) (FFTStats, error) {
	n := len(data)
	if n == 0 {
		return FFTStats{}, nil
	}
	if bits.OnesCount(uint(n)) != 1 {
		return FFTStats{}, fmt.Errorf("accel: FFT size %d must be a power of two", n)
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		r := int(bits.Reverse(uint(i)) >> shift)
		if r > i {
			data[i], data[r] = data[r], data[i]
		}
	}
	var st FFTStats
	for size := 2; size <= n; size <<= 1 {
		st.Stages++
		half := size / 2
		step := -2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := cmplx.Exp(complex(0, step*float64(k)))
				a := data[start+k]
				b := data[start+k+half] * w
				data[start+k] = a + b
				data[start+k+half] = a - b
				st.Butterflies++
			}
		}
	}
	return st, nil
}

// NaiveDFT computes the O(n²) discrete Fourier transform, the reference
// the FFT is verified against.
func NaiveDFT(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += in[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// FFTStages returns log2(n) without executing the transform.
func FFTStages(n int) int { return fftStages(n) }
