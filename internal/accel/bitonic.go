package accel

import (
	"fmt"
	"math/bits"
)

// Functional simulator of the bitonic sorting network: it actually
// sorts data by applying the network's compare-exchange schedule stage
// by stage, counting the stages and comparator operations as it goes.
// This grounds the Accelerator cycle model: the stage count the cycle
// model charges for is the stage count the functional network needs to
// sort every input (validated by property test), not a formula taken
// on faith.

// BitonicStats reports the work a network execution performed.
type BitonicStats struct {
	// Stages is the number of comparator stages applied.
	Stages int
	// Comparators is the number of compare-exchange operations.
	Comparators int
	// Exchanges is how many of those actually swapped.
	Exchanges int
}

// BitonicSort sorts data in place (ascending) using the bitonic
// sorting network for len(data), which must be a power of two, and
// returns the work statistics.
func BitonicSort(data []int32) (BitonicStats, error) {
	n := len(data)
	if n == 0 {
		return BitonicStats{}, nil
	}
	if bits.OnesCount(uint(n)) != 1 {
		return BitonicStats{}, fmt.Errorf("accel: bitonic network size %d must be a power of two", n)
	}
	var st BitonicStats
	// Classic iterative bitonic network: k is the size of the bitonic
	// sequences being merged, j the comparator distance within a
	// merge pass. Each (k, j) pair is one hardware stage: all of its
	// comparators are data-independent and fire in parallel.
	for k := 2; k <= n; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			st.Stages++
			for i := 0; i < n; i++ {
				l := i ^ j
				if l <= i {
					continue
				}
				st.Comparators++
				ascending := i&k == 0
				if (data[i] > data[l]) == ascending {
					data[i], data[l] = data[l], data[i]
					st.Exchanges++
				}
			}
		}
	}
	return st, nil
}

// BitonicStages returns the comparator-stage depth of an n-input
// bitonic network without executing it: log2(n)·(log2(n)+1)/2.
func BitonicStages(n int) int { return bitonicStages(n) }

// BitonicComparators returns the total comparator count of the n-input
// network: n/2 comparators per stage.
func BitonicComparators(n int) int { return bitonicStages(n) * n / 2 }
