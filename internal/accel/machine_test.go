package accel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomData(n int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]int32, n)
	for i := range data {
		data[i] = rng.Int31()
	}
	return data
}

func TestStepSortMatchesClosedForm(t *testing.T) {
	// The cycle-stepped machine must land exactly on Accelerator.Cycles
	// for both sorting designs, and it must actually sort.
	for _, a := range []Accelerator{SortingStream(), SortingIterative()} {
		data := randomData(BlockSize, 7)
		run, err := a.StepSort(data)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if !VerifySorted(data) {
			t.Fatalf("%s: machine did not sort", a.Name)
		}
		if run.Passes != a.Passes() {
			t.Errorf("%s: passes = %d, closed form %d", a.Name, run.Passes, a.Passes())
		}
		if math.Abs(run.Cycles-a.Cycles(BlockSize)) > 1e-9 {
			t.Errorf("%s: simulated %v cycles, closed form %v", a.Name, run.Cycles, a.Cycles(BlockSize))
		}
	}
}

func TestStepSortCoversAllStagesOnce(t *testing.T) {
	a := SortingStream()
	data := randomData(BlockSize, 9)
	run, err := a.StepSort(data)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, tr := range run.Traces {
		if len(tr.Stages) > a.HWStages {
			t.Fatalf("pass %d applied %d stages with only %d in hardware", tr.Pass, len(tr.Stages), a.HWStages)
		}
		for _, s := range tr.Stages {
			if seen[s] {
				t.Fatalf("stage %d applied twice", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != a.TotalStages {
		t.Errorf("stages covered = %d, want %d", len(seen), a.TotalStages)
	}
}

func TestStepSortProperty(t *testing.T) {
	// Any power-of-two dataset sorts on a machine built for its size.
	f := func(seed int64, lg uint8) bool {
		n := 1 << (int(lg%6) + 2) // 4..128
		a := Accelerator{
			Name:        "fuzz",
			TotalStages: BitonicStages(n),
			HWStages:    int(lg%3) + 1,
			Width:       2,
			FillLatency: 1,
		}
		data := randomData(n, seed)
		run, err := a.StepSort(data)
		if err != nil {
			return false
		}
		return VerifySorted(data) && math.Abs(run.Cycles-a.Cycles(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestStepSortSizeMismatch(t *testing.T) {
	a := SortingStream() // built for 2048
	if _, err := a.StepSort(randomData(64, 1)); err == nil {
		t.Error("wrong dataset size should error")
	}
	bad := Accelerator{Name: "bad"}
	if _, err := bad.StepSort(randomData(64, 1)); err == nil {
		t.Error("invalid accelerator should error")
	}
}

func TestStepCountMatchesClosedForm(t *testing.T) {
	for _, a := range []Accelerator{DFTStream(), DFTIterative()} {
		run, err := a.StepCount(BlockSize)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if math.Abs(run.Cycles-a.Cycles(BlockSize)) > 1e-9 {
			t.Errorf("%s: simulated %v, closed form %v", a.Name, run.Cycles, a.Cycles(BlockSize))
		}
		if run.Passes != a.Passes() {
			t.Errorf("%s: passes = %d, want %d", a.Name, run.Passes, a.Passes())
		}
	}
	bad := Accelerator{Name: "bad"}
	if _, err := bad.StepCount(64); err == nil {
		t.Error("invalid accelerator should error")
	}
}
