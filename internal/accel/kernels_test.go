package accel

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitonicSortsRandomInputs(t *testing.T) {
	// Property: the network sorts every input, and its stage count
	// matches the closed form the cycle model charges for.
	f := func(seed int64, rawLg uint8) bool {
		lg := int(rawLg%8) + 1 // 2..256 elements
		n := 1 << lg
		rng := rand.New(rand.NewSource(seed))
		data := make([]int32, n)
		for i := range data {
			data[i] = int32(rng.Intn(1000) - 500)
		}
		st, err := BitonicSort(data)
		if err != nil {
			return false
		}
		if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
			return false
		}
		return st.Stages == BitonicStages(n) && st.Comparators == BitonicComparators(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitonicEdgeCases(t *testing.T) {
	if _, err := BitonicSort(make([]int32, 3)); err == nil {
		t.Error("non-power-of-two should error")
	}
	st, err := BitonicSort(nil)
	if err != nil || st.Stages != 0 {
		t.Errorf("empty sort = %+v, %v", st, err)
	}
	one := []int32{7}
	if _, err := BitonicSort(one); err != nil || one[0] != 7 {
		t.Error("single element should be a no-op")
	}
	dup := []int32{3, 3, 1, 1}
	if _, err := BitonicSort(dup); err != nil {
		t.Fatal(err)
	}
	if dup[0] != 1 || dup[3] != 3 {
		t.Errorf("duplicates mishandled: %v", dup)
	}
}

func TestBitonic2048MatchesCycleModelStages(t *testing.T) {
	// The case study's block size: the functional network's measured
	// stage count must equal the TotalStages the accelerator models
	// are built from.
	data := make([]int32, BlockSize)
	rng := rand.New(rand.NewSource(1))
	for i := range data {
		data[i] = rng.Int31()
	}
	st, err := BitonicSort(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stages != SortingStream().TotalStages {
		t.Errorf("functional stages = %d, cycle model charges %d", st.Stages, SortingStream().TotalStages)
	}
	if st.Comparators != BlockSize/2*st.Stages {
		t.Errorf("comparators = %d, want n/2 per stage", st.Comparators)
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 64, 256} {
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := NaiveDFT(in)
		got := append([]complex128(nil), in...)
		st, err := FFT(got)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if d := got[i] - want[i]; math.Hypot(real(d), imag(d)) > 1e-8*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, DFT = %v", n, i, got[i], want[i])
			}
		}
		if n > 1 {
			if st.Stages != FFTStages(n) {
				t.Errorf("n=%d: stages = %d, want %d", n, st.Stages, FFTStages(n))
			}
			if st.Butterflies != n/2*st.Stages {
				t.Errorf("n=%d: butterflies = %d, want (n/2)·stages", n, st.Butterflies)
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Property: energy is preserved up to the 1/n convention
	// (Parseval: Σ|X|² = n·Σ|x|²).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 128
		in := make([]complex128, n)
		var inE float64
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			inE += real(in[i])*real(in[i]) + imag(in[i])*imag(in[i])
		}
		if _, err := FFT(in); err != nil {
			return false
		}
		var outE float64
		for _, x := range in {
			outE += real(x)*real(x) + imag(x)*imag(x)
		}
		return math.Abs(outE-float64(n)*inE)/(float64(n)*inE) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFFTErrors(t *testing.T) {
	if _, err := FFT(make([]complex128, 6)); err == nil {
		t.Error("non-power-of-two should error")
	}
	if st, err := FFT(nil); err != nil || st.Stages != 0 {
		t.Error("empty FFT should be a no-op")
	}
}

func TestFFT2048MatchesCycleModelStages(t *testing.T) {
	in := make([]complex128, BlockSize)
	in[1] = 1
	st, err := FFT(in)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stages != DFTStream().TotalStages {
		t.Errorf("functional stages = %d, cycle model charges %d", st.Stages, DFTStream().TotalStages)
	}
	// An impulse transforms to unit-magnitude twiddles everywhere.
	for i, x := range in {
		if math.Abs(math.Hypot(real(x), imag(x))-1) > 1e-9 {
			t.Fatalf("impulse response wrong at %d: %v", i, x)
		}
	}
}
