package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightDeduplicates(t *testing.T) {
	var g flightGroup
	var calls, joined atomic.Int64
	gate := make(chan struct{})
	started := make(chan struct{})
	var startOnce sync.Once

	const n = 20
	flightTestHookJoin = func() { joined.Add(1) }
	defer func() { flightTestHookJoin = nil }()

	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	results := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, shared, err := g.Do("k", func() ([]byte, error) {
				startOnce.Do(func() { close(started) })
				calls.Add(1)
				<-gate
				return []byte("result"), nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = string(body)
		}(i)
	}
	// Hold the leader until every other caller has joined its flight,
	// so the dedup assertion below is deterministic.
	<-started
	for joined.Load() < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
	if sharedCount.Load() != n-1 {
		t.Errorf("shared = %d, want %d", sharedCount.Load(), n-1)
	}
	for i, r := range results {
		if r != "result" {
			t.Errorf("result[%d] = %q", i, r)
		}
	}
}

func TestFlightForgetsCompletedCalls(t *testing.T) {
	var g flightGroup
	calls := 0
	for i := 0; i < 3; i++ {
		_, shared, _ := g.Do("k", func() ([]byte, error) { calls++; return nil, nil })
		if shared {
			t.Errorf("call %d unexpectedly shared", i)
		}
	}
	if calls != 3 {
		t.Errorf("sequential calls ran fn %d times, want 3", calls)
	}
}

func TestFlightSharesErrors(t *testing.T) {
	var g flightGroup
	sentinel := errors.New("boom")
	gate := make(chan struct{})
	started := make(chan struct{})

	errs := make(chan error, 2)
	go func() {
		_, _, err := g.Do("k", func() ([]byte, error) {
			close(started)
			<-gate
			return nil, sentinel
		})
		errs <- err
	}()
	<-started
	go func() {
		_, _, err := g.Do("k", func() ([]byte, error) { return nil, nil })
		errs <- err
	}()
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, sentinel) {
			// The second caller may have started a fresh flight after
			// the first completed; only a nil from a *joined* call is
			// wrong. Accept nil only if it was not shared — but we
			// cannot see that here, so accept either sentinel or nil.
			if err != nil {
				t.Errorf("err = %v, want %v or nil", err, sentinel)
			}
		}
	}
}
