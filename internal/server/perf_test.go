package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ttmcas"
)

// TestCacheKeyCanonicalization pins down that the response cache keys
// on the decoded request, not the raw bytes: two bodies with the same
// fields in different key order, whitespace and numeric spelling must
// hit the same cache entry.
func TestCacheKeyCanonicalization(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := `{"design":"a11","node":"28nm","n":10e6}`
	second := "{\n\t\"n\":   1.0e7,\n\t\"node\": \"28nm\",\n\t\"design\": \"a11\"\n}"

	st1, b1 := postJSON(t, ts.URL+"/v1/ttm", first)
	st2, b2 := postJSON(t, ts.URL+"/v1/ttm", second)
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("statuses %d, %d; bodies %s %s", st1, st2, b1, b2)
	}
	if b1 != b2 {
		t.Errorf("equivalent requests returned different bodies:\n%s\nvs\n%s", b1, b2)
	}
	m := s.Metrics()
	if m.Evaluations() != 1 {
		t.Errorf("evaluations = %d, want 1 (second request must be a cache hit)", m.Evaluations())
	}
	if m.CacheHits() != 1 || m.CacheMisses() != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1", m.CacheHits(), m.CacheMisses())
	}
}

// TestXCacheHeaderAndContentLength checks the hot-path response
// headers: a computed response is marked MISS, a repeat is served
// verbatim from cache as HIT, and both carry an exact Content-Length.
func TestXCacheHeaderAndContentLength(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func() (*http.Response, string) {
		resp, err := http.Post(ts.URL+"/v1/ttm", "application/json",
			strings.NewReader(`{"design":"a11","node":"28nm","n":10e6}`))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, string(b)
	}

	resp1, body1 := post()
	resp2, body2 := post()
	if got := resp1.Header.Get("X-Cache"); got != "MISS" {
		t.Errorf("first X-Cache = %q, want MISS", got)
	}
	if got := resp2.Header.Get("X-Cache"); got != "HIT" {
		t.Errorf("second X-Cache = %q, want HIT", got)
	}
	if body1 != body2 {
		t.Errorf("cached body differs from computed body")
	}
	if !strings.HasSuffix(body1, "\n") {
		t.Errorf("body should be newline-terminated")
	}
	for i, resp := range []*http.Response{resp1, resp2} {
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body1)) {
			t.Errorf("response %d: Content-Length = %q, want %d", i+1, cl, len(body1))
		}
	}
}

// TestSingleflightCollapsesConcurrentMisses disables the response
// cache so deduplication can only come from single-flight, gates the
// one in-flight computation until every request has joined it, and
// then requires exactly one model evaluation for N requests.
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	s := testServer(t, Config{CacheBytes: -1})
	gate := make(chan struct{})
	s.slowEval = func() { <-gate }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, body := postJSON(t, ts.URL+"/v1/ttm", `{"design":"a11","node":"28nm","n":10e6}`)
			if st != http.StatusOK {
				t.Errorf("status %d: %s", st, body)
			}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Inflight() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests in flight", s.Metrics().Inflight(), n)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	m := s.Metrics()
	if m.Evaluations() != 1 {
		t.Errorf("evaluations = %d, want 1", m.Evaluations())
	}
	if m.Shared() != n-1 {
		t.Errorf("shared = %d, want %d", m.Shared(), n-1)
	}
	if m.CacheHits() != 0 {
		t.Errorf("cache hits = %d, want 0 (cache disabled)", m.CacheHits())
	}
}

// TestEvaluatorCacheReusesCompile checks that requests differing only
// in chip count (distinct response-cache keys) share one compiled
// evaluator, and that /v1/cas reuses the evaluator /v1/ttm compiled.
func TestEvaluatorCacheReusesCompile(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"design":"a11","node":"28nm","n":10e6}`,
		`{"design":"a11","node":"28nm","n":20e6}`,
	} {
		if st, b := postJSON(t, ts.URL+"/v1/ttm", body); st != http.StatusOK {
			t.Fatalf("status %d: %s", st, b)
		}
	}
	if st := s.evals.Stats(); st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("evalcache after two ttm = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
	if st, b := postJSON(t, ts.URL+"/v1/cas", `{"design":"a11","node":"28nm","n":10e6}`); st != http.StatusOK {
		t.Fatalf("cas status %d: %s", st, b)
	}
	if st := s.evals.Stats(); st.Misses != 1 || st.Hits != 2 {
		t.Errorf("evalcache after cas = %+v, want the same compiled evaluator reused", st)
	}
}

func TestEvalCacheLRUEviction(t *testing.T) {
	c := newEvalCache(2)
	keys := []string{"a", "b", "a", "c", "b"}
	for _, k := range keys {
		if _, err := c.getOrCompile(k, func() (*ttmcas.Evaluator, error) { return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	// After a,b,a,c: inserting c evicted b (a was refreshed), so the
	// final b is a miss again.
	st := c.Stats()
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Hits != 1 || st.Misses != 4 {
		t.Errorf("hits/misses = %d/%d, want 1/4", st.Hits, st.Misses)
	}
}

// ---- writeJSON allocation benchmarks -------------------------------

// benchPayload mirrors a realistic /v1/ttm response: one die, one
// node, the shape the hot path serializes most often.
func benchPayload() TTMResponse {
	return TTMResponse{
		Design: "a11", Chips: 10e6, Conditions: "full capacity",
		DesignWeeks: 52.1, TapeoutWeeks: 18.4, FabricationWeeks: 11.9,
		PackagingWeeks: 2, TTMWeeks: 84.4, CriticalNode: "28nm",
		Dies: []DieResponse{{
			Name: "a11", Node: "28nm", AreaMM2: 98.3, Yield: 0.82,
			GrossPerWafer: 612, Wafers: 23871,
		}},
		Nodes: []NodeResponse{{
			Node: "28nm", Wafers: 23871, QueueWeeks: 0,
			ProductionWeeks: 11.9, TotalWeeks: 11.9,
		}},
	}
}

// nopResponseWriter isolates encoding cost from httptest bookkeeping.
type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) WriteHeader(int)             {}
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }

// BenchmarkWriteJSON measures the pooled hot-path encoder.
func BenchmarkWriteJSON(b *testing.B) {
	out := benchPayload()
	w := &nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		writeJSON(w, http.StatusOK, out)
	}
}

// BenchmarkWriteJSONNaive is the pre-PR implementation — Marshal into
// a fresh slice, append the newline — kept as the in-tree baseline the
// pooled path is judged against.
func BenchmarkWriteJSONNaive(b *testing.B) {
	out := benchPayload()
	w := &nopResponseWriter{h: make(http.Header)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		body, err := json.Marshal(out)
		if err != nil {
			b.Fatal(err)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(append(body, '\n'))
	}
}

// BenchmarkServerTTMCachedHit measures the full serving stack on a
// response-cache hit — routing, middleware, decode, canonical key,
// shard lookup, verbatim write — via direct handler dispatch.
func BenchmarkServerTTMCachedHit(b *testing.B) {
	s := New(Config{Logger: log.New(io.Discard, "", 0)})
	defer s.Close()
	h := s.Handler()
	body := []byte(`{"design":"a11","node":"28nm","n":10e6}`)
	do := func() int {
		req := httptest.NewRequest(http.MethodPost, "/v1/ttm", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		w.Body = nil
		h.ServeHTTP(w, req)
		return w.Code
	}
	if code := do(); code != http.StatusOK {
		b.Fatalf("prime status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := do(); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}
