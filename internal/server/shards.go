package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"ttmcas/internal/cluster"
	"ttmcas/internal/jobs"
)

// Distributed job execution: when this node owns a heavy job and the
// ring has alive peers, the job manager shards the spec and scatters
// the shards here. POST /v1/internal/shards is internal — it rides the
// cluster transport with the X-Ttmcas-Forward single-hop guard and the
// same auth-free loopback trust model as job forwarding; it is not
// part of the public API surface.

// clusterDistributor implements jobs.Distributor over the cluster's
// forward transport. Targets are the alive-or-suspect peers,
// healthiest first, re-read per job so dispatch tracks membership.
type clusterDistributor struct{ s *Server }

func (d clusterDistributor) Targets() []string {
	return d.s.cluster.PeerURLs(true)
}

func (d clusterDistributor) Dispatch(ctx context.Context, target string, req jobs.ShardRequest) (jobs.ShardResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return jobs.ShardResult{}, err
	}
	// No transport-level retry: the jobs layer owns shard hedging
	// (next-alive peer, then local fallback), and stacking budgets
	// under it would double-spend the shard deadline.
	fr, err := d.s.cluster.ForwardOpts(ctx, target, http.MethodPost, "/v1/internal/shards", body,
		cluster.ForwardOptions{Class: "shard"})
	if err != nil {
		return jobs.ShardResult{}, err
	}
	if fr.Status != http.StatusOK {
		// A peer that rejects the shard (mismatched limits, restarting,
		// shedding) is as good as unreachable for this dispatch: let
		// the coordinator hedge and ultimately fall back to local
		// compute. Deterministic compute errors come back as 200s with
		// ShardResult.Err set and are never retried.
		return jobs.ShardResult{}, fmt.Errorf("server: shard on %s: status %d", target, fr.Status)
	}
	var res jobs.ShardResult
	if err := json.Unmarshal(fr.Body, &res); err != nil {
		return jobs.ShardResult{}, fmt.Errorf("server: shard response from %s: %w", target, err)
	}
	return res, nil
}

// handleShardExec executes one shard on behalf of a coordinating peer.
func (s *Server) handleShardExec(w http.ResponseWriter, r *http.Request) {
	var req jobs.ShardRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	res, err := jobs.RunShard(r.Context(), s.jobs.SpecLimits(), req, nil)
	if err != nil {
		s.fail(w, jobError(err))
		return
	}
	// The benchmark latency floor: remote shards pay their unit share
	// of the synthetic compute cost just like local ones (no-op when
	// the delay is unconfigured).
	jobs.PaceShard(r.Context(), req, s.cfg.JobEvalDelay)
	writeJSON(w, http.StatusOK, res)
}
