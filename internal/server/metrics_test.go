package server

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsCounters(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest("POST /v1/ttm", 200, 10*time.Millisecond)
	m.ObserveRequest("POST /v1/ttm", 200, 30*time.Millisecond)
	m.ObserveRequest("POST /v1/ttm", 400, time.Millisecond)
	m.ObserveRequest("GET /healthz", 200, time.Microsecond)
	m.CacheHit()
	m.CacheMiss()
	m.CacheMiss()
	m.FlightShared()
	m.Evaluation()

	if got := m.RequestCount("POST /v1/ttm", 200); got != 2 {
		t.Errorf("RequestCount(ttm, 200) = %d, want 2", got)
	}
	if got := m.Requests(); got != 4 {
		t.Errorf("Requests() = %d, want 4", got)
	}
	if m.CacheHits() != 1 || m.CacheMisses() != 2 || m.Shared() != 1 || m.Evaluations() != 1 {
		t.Errorf("counters = %d/%d/%d/%d", m.CacheHits(), m.CacheMisses(), m.Shared(), m.Evaluations())
	}
}

func TestMetricsInflightGauge(t *testing.T) {
	m := NewMetrics()
	m.IncInflight()
	m.IncInflight()
	m.DecInflight()
	if got := m.Inflight(); got != 1 {
		t.Errorf("Inflight = %d, want 1", got)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.ObserveRequest("POST /v1/ttm", 200, 20*time.Millisecond)
	m.CacheHit()
	m.CacheMiss()
	m.Evaluation()
	m.IncInflight()

	var sb strings.Builder
	if _, err := m.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ttmcas_requests_total{route="POST /v1/ttm",code="200"} 1`,
		`ttmcas_request_duration_seconds_count{route="POST /v1/ttm"} 1`,
		`ttmcas_request_duration_seconds_sum{route="POST /v1/ttm"} 0.02`,
		"ttmcas_cache_hits_total 1",
		"ttmcas_cache_misses_total 1",
		"ttmcas_singleflight_shared_total 0",
		"ttmcas_model_evaluations_total 1",
		"ttmcas_inflight_requests 1",
		"# TYPE ttmcas_requests_total counter",
		"# TYPE ttmcas_inflight_requests gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
