package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ttmcas/internal/cluster"
	"ttmcas/internal/jobs"
	"ttmcas/internal/resilience"
	"ttmcas/internal/resilience/faultinject"
)

// Metrics aggregates the server's operational counters and renders
// them in the Prometheus plain-text exposition format — hand-rolled,
// since the repository is dependency-free. Counters are monotonic for
// the life of the process; the in-flight gauge is instantaneous.
type Metrics struct {
	inflight atomic.Int64

	mu       sync.Mutex
	requests map[routeCode]uint64
	latency  map[string]*latencySummary

	cacheHits    uint64
	cacheMisses  uint64
	flightShared uint64
	evaluations  uint64

	staleServed          uint64
	staleRefreshes       uint64
	staleRefreshFailures uint64

	jobsSubmitted  map[string]uint64
	jobsFinished   map[jobStatusKey]uint64
	jobsRunning    int64
	jobEvaluations uint64

	shardsDispatched map[string]uint64
	shardsCompleted  map[string]uint64
	shardsHedged     map[string]uint64
	shardsFallback   map[string]uint64
	shardLatency     latencySummary

	// jobCounts, when set, reads the job manager's instantaneous
	// pending/running counts for the queue-depth and running-jobs
	// gauges (set once, at Server construction).
	jobCounts func() (pending, running int)

	// cacheStats, evalStats, limiterStats and faultStats, when set
	// (once, at Server construction), snapshot the response cache, the
	// compiled-evaluator cache, the admission limiters and the fault
	// injector for the exposition; their counters live in those
	// components themselves, not under this mutex.
	cacheStats   func() cacheStats
	evalStats    func() evalStats
	limiterStats func() []resilience.LimiterStats
	faultStats   func() faultinject.Stats
	clusterStats func() cluster.Stats
}

// jobStatusKey keys the finished-jobs counter by kind and terminal
// status.
type jobStatusKey struct {
	kind   string
	status string
}

// routeCode keys the request counter by route pattern and status code.
type routeCode struct {
	route string
	code  int
}

// latencySummary is a count/sum/max summary per route — enough to
// derive mean latency and spot outliers without histogram buckets.
type latencySummary struct {
	count uint64
	sum   time.Duration
	max   time.Duration
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		requests:         make(map[routeCode]uint64),
		latency:          make(map[string]*latencySummary),
		jobsSubmitted:    make(map[string]uint64),
		jobsFinished:     make(map[jobStatusKey]uint64),
		shardsDispatched: make(map[string]uint64),
		shardsCompleted:  make(map[string]uint64),
		shardsHedged:     make(map[string]uint64),
		shardsFallback:   make(map[string]uint64),
	}
}

// ObserveRequest records one completed request on a route.
func (m *Metrics) ObserveRequest(route string, code int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[routeCode{route, code}]++
	ls, ok := m.latency[route]
	if !ok {
		ls = &latencySummary{}
		m.latency[route] = ls
	}
	ls.count++
	ls.sum += d
	if d > ls.max {
		ls.max = d
	}
}

// CacheHit records a response served from the LRU cache.
func (m *Metrics) CacheHit() { m.mu.Lock(); m.cacheHits++; m.mu.Unlock() }

// CacheMiss records a cache lookup that found nothing.
func (m *Metrics) CacheMiss() { m.mu.Lock(); m.cacheMisses++; m.mu.Unlock() }

// FlightShared records a request that piggybacked on an identical
// in-flight computation instead of evaluating the model itself.
func (m *Metrics) FlightShared() { m.mu.Lock(); m.flightShared++; m.mu.Unlock() }

// Evaluation records one actual model computation.
func (m *Metrics) Evaluation() { m.mu.Lock(); m.evaluations++; m.mu.Unlock() }

// StaleServed records a degraded response: a retained stale body
// served because recomputation was shed or failed.
func (m *Metrics) StaleServed() { m.mu.Lock(); m.staleServed++; m.mu.Unlock() }

// StaleRefresh records a background recomputation kicked off after a
// stale serve; StaleRefreshFailed records one that did not produce a
// fresh body.
func (m *Metrics) StaleRefresh()       { m.mu.Lock(); m.staleRefreshes++; m.mu.Unlock() }
func (m *Metrics) StaleRefreshFailed() { m.mu.Lock(); m.staleRefreshFailures++; m.mu.Unlock() }

// IncInflight/DecInflight track the in-flight request gauge.
func (m *Metrics) IncInflight() { m.inflight.Add(1) }
func (m *Metrics) DecInflight() { m.inflight.Add(-1) }

// Inflight returns the current in-flight request count.
func (m *Metrics) Inflight() int64 { return m.inflight.Load() }

// Requests returns the total request count across routes and codes.
func (m *Metrics) Requests() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.requests {
		n += v
	}
	return n
}

// RequestCount returns the count for one route and status code.
func (m *Metrics) RequestCount(route string, code int) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.requests[routeCode{route, code}]
}

// CacheHits, CacheMisses, Shared and Evaluations expose the counters
// for tests and acceptance checks.
func (m *Metrics) CacheHits() uint64   { m.mu.Lock(); defer m.mu.Unlock(); return m.cacheHits }
func (m *Metrics) CacheMisses() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.cacheMisses }
func (m *Metrics) Shared() uint64      { m.mu.Lock(); defer m.mu.Unlock(); return m.flightShared }
func (m *Metrics) Evaluations() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.evaluations }

// StaleServes and StaleRefreshes expose the degradation counters.
func (m *Metrics) StaleServes() uint64    { m.mu.Lock(); defer m.mu.Unlock(); return m.staleServed }
func (m *Metrics) StaleRefreshes() uint64 { m.mu.Lock(); defer m.mu.Unlock(); return m.staleRefreshes }

// LimiterStats snapshots the admission limiters, if the registry is
// attached to a server.
func (m *Metrics) LimiterStats() []resilience.LimiterStats {
	if m.limiterStats == nil {
		return nil
	}
	return m.limiterStats()
}

// Metrics implements jobs.Observer, folding the job manager's
// lifecycle into the same registry.

// JobSubmitted records one job submission by kind.
func (m *Metrics) JobSubmitted(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsSubmitted[kind]++
}

// JobStarted marks a job as running.
func (m *Metrics) JobStarted(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsRunning++
}

// JobFinished records a job's terminal status and its completed
// evaluation units.
func (m *Metrics) JobFinished(kind string, status jobs.Status, evals uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsRunning--
	m.jobsFinished[jobStatusKey{kind, string(status)}]++
	m.jobEvaluations += evals
}

// JobsSubmitted returns the total job submissions across kinds.
func (m *Metrics) JobsSubmitted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.jobsSubmitted {
		n += v
	}
	return n
}

// JobsFinished returns the finished-job count for one terminal status,
// summed over kinds.
func (m *Metrics) JobsFinished(status jobs.Status) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for k, v := range m.jobsFinished {
		if k.status == string(status) {
			n += v
		}
	}
	return n
}

// JobEvaluations returns the evaluation units completed by finished
// jobs.
func (m *Metrics) JobEvaluations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobEvaluations
}

// Metrics also implements jobs.ShardObserver: distributed job shard
// lifecycle, by kind.

// ShardDispatched records one remote shard dispatch attempt.
func (m *Metrics) ShardDispatched(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsDispatched[kind]++
}

// ShardCompleted records a remote shard that returned, with its
// round-trip latency.
func (m *Metrics) ShardCompleted(kind string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsCompleted[kind]++
	m.shardLatency.count++
	m.shardLatency.sum += d
	if d > m.shardLatency.max {
		m.shardLatency.max = d
	}
}

// ShardHedged records a shard re-dispatched to the next peer after a
// failed or expired attempt.
func (m *Metrics) ShardHedged(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsHedged[kind]++
}

// ShardFallback records a shard computed locally after every peer
// attempt failed.
func (m *Metrics) ShardFallback(kind string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsFallback[kind]++
}

// ShardsCompleted returns completed remote shards summed over kinds,
// for tests and acceptance checks.
func (m *Metrics) ShardsCompleted() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.shardsCompleted {
		n += v
	}
	return n
}

// ShardsFallback returns locally-recovered shards summed over kinds.
func (m *Metrics) ShardsFallback() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.shardsFallback {
		n += v
	}
	return n
}

// ShardsDispatched returns remote dispatch attempts summed over kinds.
func (m *Metrics) ShardsDispatched() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.shardsDispatched {
		n += v
	}
	return n
}

// ShardsHedged returns hedged re-dispatches summed over kinds.
func (m *Metrics) ShardsHedged() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, v := range m.shardsHedged {
		n += v
	}
	return n
}

// scalar is one single-valued series of the exposition.
type scalar struct {
	name, help, typ string
	value           any
}

// WriteTo renders the registry in the Prometheus text exposition
// format, with series sorted for deterministic output.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	var total int64
	emit := func(format string, args ...any) error {
		n, err := fmt.Fprintf(w, format, args...)
		total += int64(n)
		return err
	}

	if err := emit("# HELP ttmcas_requests_total Completed HTTP requests by route and status code.\n# TYPE ttmcas_requests_total counter\n"); err != nil {
		return total, err
	}
	keys := make([]routeCode, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].route != keys[j].route {
			return keys[i].route < keys[j].route
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		if err := emit("ttmcas_requests_total{route=%q,code=\"%d\"} %d\n", k.route, k.code, m.requests[k]); err != nil {
			return total, err
		}
	}

	if err := emit("# HELP ttmcas_request_duration_seconds Request latency summary by route.\n# TYPE ttmcas_request_duration_seconds summary\n"); err != nil {
		return total, err
	}
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		ls := m.latency[r]
		if err := emit("ttmcas_request_duration_seconds_count{route=%q} %d\nttmcas_request_duration_seconds_sum{route=%q} %g\nttmcas_request_duration_seconds_max{route=%q} %g\n",
			r, ls.count, r, ls.sum.Seconds(), r, ls.max.Seconds()); err != nil {
			return total, err
		}
	}

	if err := emit("# HELP ttmcas_jobs_submitted_total Batch jobs submitted by kind.\n# TYPE ttmcas_jobs_submitted_total counter\n"); err != nil {
		return total, err
	}
	kinds := make([]string, 0, len(m.jobsSubmitted))
	for k := range m.jobsSubmitted {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		if err := emit("ttmcas_jobs_submitted_total{kind=%q} %d\n", k, m.jobsSubmitted[k]); err != nil {
			return total, err
		}
	}

	if err := emit("# HELP ttmcas_jobs_finished_total Batch jobs finished by kind and terminal status.\n# TYPE ttmcas_jobs_finished_total counter\n"); err != nil {
		return total, err
	}
	jkeys := make([]jobStatusKey, 0, len(m.jobsFinished))
	for k := range m.jobsFinished {
		jkeys = append(jkeys, k)
	}
	sort.Slice(jkeys, func(i, j int) bool {
		if jkeys[i].kind != jkeys[j].kind {
			return jkeys[i].kind < jkeys[j].kind
		}
		return jkeys[i].status < jkeys[j].status
	})
	for _, k := range jkeys {
		if err := emit("ttmcas_jobs_finished_total{kind=%q,status=%q} %d\n", k.kind, k.status, m.jobsFinished[k]); err != nil {
			return total, err
		}
	}

	for _, sc := range []struct {
		name, help string
		counts     map[string]uint64
	}{
		{"ttmcas_jobs_shards_dispatched_total", "Distributed job shards dispatched to peers, by kind.", m.shardsDispatched},
		{"ttmcas_jobs_shards_completed_total", "Distributed job shards completed by peers, by kind.", m.shardsCompleted},
		{"ttmcas_jobs_shards_hedged_total", "Distributed job shards re-dispatched after a failed or expired attempt, by kind.", m.shardsHedged},
		{"ttmcas_jobs_shards_fallback_total", "Distributed job shards computed locally after every peer attempt failed, by kind.", m.shardsFallback},
	} {
		if err := emit("# HELP %s %s\n# TYPE %s counter\n", sc.name, sc.help, sc.name); err != nil {
			return total, err
		}
		skinds := make([]string, 0, len(sc.counts))
		for k := range sc.counts {
			skinds = append(skinds, k)
		}
		sort.Strings(skinds)
		for _, k := range skinds {
			if err := emit("%s{kind=%q} %d\n", sc.name, k, sc.counts[k]); err != nil {
				return total, err
			}
		}
	}
	if err := emit("# HELP ttmcas_jobs_shard_seconds Round-trip latency summary of completed remote shards.\n# TYPE ttmcas_jobs_shard_seconds summary\nttmcas_jobs_shard_seconds_count %d\nttmcas_jobs_shard_seconds_sum %g\nttmcas_jobs_shard_seconds_max %g\n",
		m.shardLatency.count, m.shardLatency.sum.Seconds(), m.shardLatency.max.Seconds()); err != nil {
		return total, err
	}

	scalars := []scalar{
		{"ttmcas_jobs_running", "Batch jobs currently running.", "gauge", m.jobsRunning},
		{"ttmcas_job_evaluations_total", "Evaluation units completed by finished batch jobs.", "counter", m.jobEvaluations},
		{"ttmcas_cache_hits_total", "Responses served from the LRU cache.", "counter", m.cacheHits},
		{"ttmcas_cache_misses_total", "Cache lookups that found nothing.", "counter", m.cacheMisses},
		{"ttmcas_singleflight_shared_total", "Requests that shared an identical in-flight computation.", "counter", m.flightShared},
		{"ttmcas_model_evaluations_total", "Actual model computations performed.", "counter", m.evaluations},
		{"ttmcas_stale_served_total", "Degraded responses served from a stale cache entry.", "counter", m.staleServed},
		{"ttmcas_stale_refreshes_total", "Background recomputations started after a stale serve.", "counter", m.staleRefreshes},
		{"ttmcas_stale_refresh_failures_total", "Background stale refreshes that failed.", "counter", m.staleRefreshFailures},
		{"ttmcas_inflight_requests", "Requests currently being served.", "gauge", m.inflight.Load()},
	}
	if m.jobCounts != nil {
		pending, running := m.jobCounts()
		scalars = append(scalars,
			scalar{"ttmcas_jobs_queue_depth", "Batch jobs queued awaiting a worker.", "gauge", pending},
			scalar{"ttmcas_jobs_active", "Batch jobs currently executing, from a direct store scan.", "gauge", running},
		)
	}
	if m.cacheStats != nil {
		cs := m.cacheStats()
		scalars = append(scalars,
			scalar{"ttmcas_response_cache_entries", "Entries held by the sharded response cache.", "gauge", cs.Entries},
			scalar{"ttmcas_response_cache_bytes", "Body bytes held by the sharded response cache.", "gauge", cs.Bytes},
			scalar{"ttmcas_response_cache_budget_bytes", "Byte budget of the sharded response cache.", "gauge", cs.BudgetBytes},
			scalar{"ttmcas_response_cache_shards", "Shard count of the response cache.", "gauge", cs.Shards},
			scalar{"ttmcas_response_cache_evictions_total", "Entries evicted from the response cache to respect the byte budget.", "counter", cs.Evictions},
			scalar{"ttmcas_response_cache_expired_total", "Entries dropped from the response cache past their hard TTL.", "counter", cs.Expired},
		)
	}
	if m.evalStats != nil {
		es := m.evalStats()
		scalars = append(scalars,
			scalar{"ttmcas_evalcache_entries", "Compiled evaluators held by the evaluator cache.", "gauge", es.Entries},
			scalar{"ttmcas_evalcache_hits_total", "Evaluator-cache lookups that reused a compiled evaluator.", "counter", es.Hits},
			scalar{"ttmcas_evalcache_misses_total", "Evaluator-cache lookups that had to compile.", "counter", es.Misses},
		)
	}
	for _, s := range scalars {
		if err := emit("# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.typ, s.name, s.value); err != nil {
			return total, err
		}
	}

	if m.limiterStats != nil {
		lims := m.limiterStats()
		type limSeries struct {
			name, help, typ string
			value           func(resilience.LimiterStats) any
		}
		for _, ls := range []limSeries{
			{"ttmcas_admission_admitted_total", "Requests admitted by the adaptive admission limiter, by class.", "counter",
				func(st resilience.LimiterStats) any { return st.Admitted }},
			{"ttmcas_admission_shed_total", "Requests shed by the adaptive admission limiter, by class.", "counter",
				func(st resilience.LimiterStats) any { return st.Shed }},
			{"ttmcas_admission_inuse", "Admission slots currently held, by class.", "gauge",
				func(st resilience.LimiterStats) any { return st.InUse }},
			{"ttmcas_admission_queued", "Requests currently waiting for an admission slot, by class.", "gauge",
				func(st resilience.LimiterStats) any { return st.Queued }},
			{"ttmcas_admission_shedding", "Whether the limiter is currently shedding (1) or not (0), by class.", "gauge",
				func(st resilience.LimiterStats) any { return boolGauge(st.Shedding) }},
		} {
			if err := emit("# HELP %s %s\n# TYPE %s %s\n", ls.name, ls.help, ls.name, ls.typ); err != nil {
				return total, err
			}
			for _, st := range lims {
				if err := emit("%s{class=%q} %d\n", ls.name, st.Name, ls.value(st)); err != nil {
					return total, err
				}
			}
		}
	}

	if m.clusterStats != nil {
		cs := m.clusterStats()
		for _, s := range []scalar{
			{"ttmcas_cluster_ring_nodes", "Members currently owning segments of the consistent-hash ring.", "gauge", cs.RingNodes},
			{"ttmcas_cluster_ring_epoch", "Ring epoch: increments on every membership change.", "gauge", cs.Epoch},
			{"ttmcas_cluster_local_total", "Ownership decisions served locally (this node owned the key).", "counter", cs.Local},
			{"ttmcas_cluster_forwarded_total", "Requests forwarded to the owning peer.", "counter", cs.Forwarded},
			{"ttmcas_cluster_forward_errors_total", "Forwards that failed at the transport level and fell back to local compute.", "counter", cs.ForwardErrors},
			{"ttmcas_cluster_redirected_total", "Ownership misses answered with a 307 redirect to the owner.", "counter", cs.Redirected},
			{"ttmcas_cluster_probe_failures_total", "Peer health probes that failed.", "counter", cs.ProbeFailures},
			{"ttmcas_cluster_retries_total", "Forward retries admitted by the retry budget.", "counter", cs.Retries},
			{"ttmcas_cluster_retries_denied_total", "Forward retries refused: budget dry or attempts exhausted.", "counter", cs.RetriesDenied},
			{"ttmcas_cluster_breaker_transitions_total", "Per-peer circuit breaker state transitions.", "counter", cs.BreakerTransitions},
			{"ttmcas_cluster_breaker_opens_total", "Circuit breaker trips (transitions into the open state).", "counter", cs.BreakerOpens},
			{"ttmcas_cluster_breaker_short_circuits_total", "Forwards refused outright by an open breaker.", "counter", cs.BreakerShortCircuits},
		} {
			if err := emit("# HELP %s %s\n# TYPE %s %s\n%s %d\n", s.name, s.help, s.name, s.typ, s.name, s.value); err != nil {
				return total, err
			}
		}
		if err := emit("# HELP ttmcas_cluster_peers Peers by health state.\n# TYPE ttmcas_cluster_peers gauge\n"); err != nil {
			return total, err
		}
		for _, kv := range []struct {
			state string
			value int
		}{
			// Stats.Alive counts self; this series is peers only.
			{"alive", cs.Alive - 1}, {"suspect", cs.Suspect}, {"dead", cs.Dead},
		} {
			if err := emit("ttmcas_cluster_peers{state=%q} %d\n", kv.state, kv.value); err != nil {
				return total, err
			}
		}
		if err := emit("# HELP ttmcas_cluster_breaker_state Per-peer circuit breaker state: 0 closed, 1 half-open, 2 open.\n# TYPE ttmcas_cluster_breaker_state gauge\n"); err != nil {
			return total, err
		}
		for _, pb := range cs.Breakers {
			if err := emit("ttmcas_cluster_breaker_state{peer=%q} %d\n", pb.URL, int(pb.State)); err != nil {
				return total, err
			}
		}
		if err := emit("# HELP ttmcas_cluster_forward_seconds Latency summary of peer forwards.\n# TYPE ttmcas_cluster_forward_seconds summary\nttmcas_cluster_forward_seconds_count %d\nttmcas_cluster_forward_seconds_sum %g\nttmcas_cluster_forward_seconds_max %g\n",
			cs.ForwardCount, cs.ForwardSum.Seconds(), cs.ForwardMax.Seconds()); err != nil {
			return total, err
		}
	}

	if m.faultStats != nil {
		fs := m.faultStats()
		if err := emit("# HELP ttmcas_faults_injected_total Faults delivered by the fault injector, by kind.\n# TYPE ttmcas_faults_injected_total counter\n"); err != nil {
			return total, err
		}
		for _, kv := range []struct {
			kind  string
			value uint64
		}{{"error", fs.Errors}, {"latency", fs.Latencies}, {"panic", fs.Panics}} {
			if err := emit("ttmcas_faults_injected_total{kind=%q} %d\n", kv.kind, kv.value); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
