package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ttmcas/internal/cluster"
	"ttmcas/internal/jobs"
)

// startClusterNodes boots n full server stacks on loopback listeners
// wired into one hash ring, returning the servers and their base URLs.
func startClusterNodes(t *testing.T, n int, mutate func(i int, cfg *Config)) ([]*Server, []string) {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*Server, n)
	for i := range lns {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		cfg := Config{
			NodeID:               fmt.Sprintf("node%d", i),
			ClusterSelfURL:       urls[i],
			ClusterPeers:         peers,
			ClusterProbeInterval: 20 * time.Millisecond,
			Logger:               log.New(io.Discard, "", 0),
			DisableAccessLog:     true,
		}
		if mutate != nil {
			mutate(i, &cfg)
		}
		srvs[i] = New(cfg)
		hs := &http.Server{Handler: srvs[i].Handler(), ErrorLog: log.New(io.Discard, "", 0)}
		go hs.Serve(lns[i])
		t.Cleanup(func() { hs.Close() })
	}
	for _, s := range srvs {
		t.Cleanup(s.Close)
	}
	return srvs, urls
}

// bodyOwnedBy walks chip counts from start until the canonical key of a
// /v1/ttm request lands on the wanted ring member.
func bodyOwnedBy(t *testing.T, ring *cluster.Ring, owner string, start int) []byte {
	t.Helper()
	for i := start; i < start+10000; i++ {
		body := []byte(fmt.Sprintf(`{"design":"a11","node":"28nm","n":%d}`, 1000000+i))
		var req EvalRequest
		if err := json.Unmarshal(body, &req); err != nil {
			t.Fatal(err)
		}
		key, err := CacheKey("POST /v1/ttm", req)
		if err != nil {
			t.Fatal(err)
		}
		if ring.Owner(key) == owner {
			return body
		}
	}
	t.Fatal("no key owned by " + owner)
	return nil
}

func postBody(t *testing.T, url string, body []byte, hdr http.Header) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// A request for a peer-owned key is forwarded and answered through the
// owner, marked X-Cache: FWD, and counted on both sides.
func TestClusterForwardPath(t *testing.T) {
	srvs, urls := startClusterNodes(t, 2, nil)
	body := bodyOwnedBy(t, srvs[0].Cluster().Ring(), urls[1], 0)

	resp, b := postBody(t, urls[0]+"/v1/ttm", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded request = %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Cache"); got != "FWD" {
		t.Fatalf("X-Cache = %q, want FWD", got)
	}
	if st := srvs[0].Cluster().Stats(); st.Forwarded != 1 || st.ForwardCount != 1 {
		t.Fatalf("origin forward counters = %+v", st)
	}

	// A fresh key sent straight to its owner is served locally, not
	// forwarded. (The forwarded key above is already in the owner's
	// cache, and hits are answered before the ownership check.)
	fresh := bodyOwnedBy(t, srvs[0].Cluster().Ring(), urls[1], 50000)
	resp, b = postBody(t, urls[1]+"/v1/ttm", fresh, nil)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") == "FWD" {
		t.Fatalf("owner-local request = %d X-Cache=%q %s", resp.StatusCode, resp.Header.Get("X-Cache"), b)
	}
	if st := srvs[1].Cluster().Stats(); st.Local == 0 {
		t.Fatal("owner did not count a local serve")
	}
}

// With forwarding disabled the non-owner answers 307 with the owner's
// URL so the client can re-issue directly.
func TestClusterRedirect(t *testing.T) {
	srvs, urls := startClusterNodes(t, 2, func(i int, cfg *Config) { cfg.ClusterRedirect = true })
	body := bodyOwnedBy(t, srvs[0].Cluster().Ring(), urls[1], 0)

	req, _ := http.NewRequest(http.MethodPost, urls[0]+"/v1/ttm", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("status = %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, urls[1]) {
		t.Fatalf("Location = %q, want owner %s", loc, urls[1])
	}
	if st := srvs[0].Cluster().Stats(); st.Redirected != 1 {
		t.Fatalf("redirected = %d, want 1", st.Redirected)
	}
}

// The guard header pins a request to the receiving node: even a
// mis-owned key is served locally, so ring disagreements cannot loop.
func TestClusterForwardGuardNoLoop(t *testing.T) {
	srvs, urls := startClusterNodes(t, 2, nil)
	body := bodyOwnedBy(t, srvs[0].Cluster().Ring(), urls[1], 0)

	hdr := http.Header{cluster.ForwardHeader: []string{"node9"}}
	resp, b := postBody(t, urls[0]+"/v1/ttm", body, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("guarded request = %d %s", resp.StatusCode, b)
	}
	if got := resp.Header.Get("X-Cache"); got == "FWD" {
		t.Fatal("guarded request was forwarded again")
	}
	if st := srvs[0].Cluster().Stats(); st.Forwarded != 0 {
		t.Fatalf("guarded request incremented forwards: %+v", st)
	}
}

// A forward that fails in transport falls back to local compute: the
// client still gets its 200 — availability beats placement.
func TestClusterForwardFallback(t *testing.T) {
	// A listener that is immediately closed: a peer URL nothing answers.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + dead.Addr().String()
	dead.Close()

	s := testServer(t, Config{
		NodeID:               "node0",
		ClusterSelfURL:       "http://127.0.0.1:1", // never dialed: requests come in-process
		ClusterPeers:         []string{deadURL},
		ClusterProbeInterval: time.Hour,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := bodyOwnedBy(t, s.Cluster().Ring(), deadURL, 0)
	resp, b := postBody(t, ts.URL+"/v1/ttm", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback request = %d %s", resp.StatusCode, b)
	}
	st := s.Cluster().Stats()
	if st.ForwardErrors == 0 {
		t.Fatalf("no forward error counted: %+v", st)
	}
}

// Concurrent identical requests for a hot remote key collapse into ONE
// upstream forward — the singleflight contract on the forward path.
func TestClusterSingleflightForward(t *testing.T) {
	var upstream atomic.Int64
	release := make(chan struct{})
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			json.NewEncoder(w).Encode(cluster.Health{Status: "ok", NodeID: "fake"})
			return
		}
		upstream.Add(1)
		<-release
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	}))
	defer fake.Close()

	s := testServer(t, Config{
		NodeID:               "node0",
		ClusterSelfURL:       "http://127.0.0.1:1",
		ClusterPeers:         []string{fake.URL},
		ClusterProbeInterval: time.Hour,
	})
	body := bodyOwnedBy(t, s.Cluster().Ring(), fake.URL, 0)

	const n = 8
	var wg sync.WaitGroup
	codes := make([]int, n)
	bodies := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := httptest.NewRequest(http.MethodPost, "/v1/ttm", bytes.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	// Let every request reach the flight group before the upstream
	// answers.
	deadline := time.Now().Add(5 * time.Second)
	for upstream.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := upstream.Load(); got != 1 {
		t.Fatalf("upstream saw %d requests, want 1 (singleflight)", got)
	}
	for i := 0; i < n; i++ {
		if codes[i] != http.StatusOK || !bytes.Equal(bodies[i], []byte(`{"ok":true}`)) {
			t.Fatalf("request %d = %d %s", i, codes[i], bodies[i])
		}
	}
}

// /healthz gossips identity: node ID, uptime and the ring epoch.
func TestClusterHealthz(t *testing.T) {
	_, urls := startClusterNodes(t, 2, nil)
	resp, err := http.Get(urls[0] + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h cluster.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.NodeID != "node0" || h.RingEpoch == 0 {
		t.Fatalf("healthz = %+v", h)
	}
}

// /v1/cluster exposes the ring and peer table; /metrics exposes the
// cluster series.
func TestClusterStatusAndMetrics(t *testing.T) {
	srvs, urls := startClusterNodes(t, 2, nil)
	body := bodyOwnedBy(t, srvs[0].Cluster().Ring(), urls[1], 0)
	postBody(t, urls[0]+"/v1/ttm", body, nil) // one forward for the counters

	var st cluster.Status
	resp, err := http.Get(urls[0] + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || len(st.RingNodes) != 2 || st.Forwarded == 0 {
		t.Fatalf("cluster status = %+v", st)
	}

	mresp, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"ttmcas_cluster_ring_nodes 2",
		"ttmcas_cluster_forwarded_total 1",
		`ttmcas_cluster_peers{state="alive"} 1`,
		"ttmcas_cluster_forward_seconds_count 1",
		"ttmcas_cluster_retries_total 0",
		"ttmcas_cluster_retries_denied_total 0",
		"ttmcas_cluster_breaker_transitions_total 0",
		"ttmcas_cluster_breaker_opens_total 0",
		"ttmcas_cluster_breaker_short_circuits_total 0",
		fmt.Sprintf("ttmcas_cluster_breaker_state{peer=%q} 0", urls[1]),
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// Jobs route to the owner of their canonical spec key; polls through
// any node find the job via the scatter path.
func TestClusterJobRouting(t *testing.T) {
	srvs, urls := startClusterNodes(t, 2, nil)

	// Find a spec owned by node 1 by varying the seed.
	var spec []byte
	for seed := 0; seed < 10000; seed++ {
		cand := []byte(fmt.Sprintf(`{"kind":"mc-band","design":"a11","samples":8,"seed":%d}`, seed))
		var js jobs.Spec
		if err := json.Unmarshal(cand, &js); err != nil {
			t.Fatal(err)
		}
		key, err := CacheKey("POST /v1/jobs", js)
		if err != nil {
			t.Fatal(err)
		}
		if srvs[0].Cluster().Ring().Owner(key) == urls[1] {
			spec = cand
			break
		}
	}
	if spec == nil {
		t.Fatal("no spec owned by node 1")
	}

	resp, b := postBody(t, urls[0]+"/v1/jobs", spec, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via non-owner = %d %s", resp.StatusCode, b)
	}
	var view jobs.View
	if err := json.Unmarshal(b, &view); err != nil {
		t.Fatal(err)
	}
	if st := srvs[0].Cluster().Stats(); st.Forwarded == 0 {
		t.Fatal("job submission was not forwarded to the owner")
	}

	// The job lives on node 1; node 0 must find it by scattering.
	deadline := time.Now().Add(5 * time.Second)
	for {
		gresp, err := http.Get(urls[0] + "/v1/jobs/" + view.ID)
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := io.ReadAll(gresp.Body)
		gresp.Body.Close()
		if gresp.StatusCode == http.StatusOK {
			var got jobs.View
			if err := json.Unmarshal(gb, &got); err != nil || got.ID != view.ID {
				t.Fatalf("scattered job view = %s (err %v)", gb, err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never visible through non-owner: %d %s", gresp.StatusCode, gb)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
