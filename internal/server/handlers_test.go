package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// do runs one request against a fresh server and returns status+body.
func do(t *testing.T, method, path, body string) (int, string) {
	t.Helper()
	s := testServer(t, Config{})
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

func TestTTMEndpoint(t *testing.T) {
	status, body := do(t, "POST", "/v1/ttm", `{"design":"a11","node":"28nm","n":10e6}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out TTMResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	// The README quotes 26.0 weeks for this exact evaluation.
	if out.TTMWeeks < 20 || out.TTMWeeks > 35 {
		t.Errorf("ttm_weeks = %v, expected ≈26", out.TTMWeeks)
	}
	if len(out.Dies) == 0 || len(out.Nodes) == 0 || out.CriticalNode == "" {
		t.Errorf("missing breakdown: %+v", out)
	}
}

func TestTTMWithMarketOverrides(t *testing.T) {
	base, b1 := do(t, "POST", "/v1/ttm", `{"design":"a11","node":"28nm","n":10e6}`)
	degraded, b2 := do(t, "POST", "/v1/ttm",
		`{"design":"a11","node":"28nm","n":10e6,"capacity":0.5,"queue_weeks":4,"node_capacity":{"28nm":0.8}}`)
	if base != 200 || degraded != 200 {
		t.Fatalf("statuses %d, %d: %s %s", base, degraded, b1, b2)
	}
	var r1, r2 TTMResponse
	json.Unmarshal([]byte(b1), &r1)
	json.Unmarshal([]byte(b2), &r2)
	if r2.TTMWeeks <= r1.TTMWeeks {
		t.Errorf("degraded market should raise TTM: %v vs %v", r2.TTMWeeks, r1.TTMWeeks)
	}
}

func TestTTMScenario(t *testing.T) {
	status, body := do(t, "POST", "/v1/ttm", `{"design":"a11","node":"28nm","n":10e6,"scenario":"baseline"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
}

func TestTTMInlineSpec(t *testing.T) {
	spec := `{
		"n": 1e6,
		"spec": {
			"name": "custom-soc",
			"dies": [
				{"name": "soc", "node": "28nm", "total_transistors": 4.3e9, "unique_transistors": 2e9},
				{"name": "io", "node": "65nm", "total_transistors": 5e8, "unique_transistors": 5e8}
			]
		}
	}`
	status, body := do(t, "POST", "/v1/ttm", spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out TTMResponse
	json.Unmarshal([]byte(body), &out)
	if out.Design != "custom-soc" || len(out.Dies) != 2 {
		t.Errorf("inline spec: %+v", out)
	}
}

func TestTTMInlineSpecWithBlocks(t *testing.T) {
	spec := `{
		"n": 1e6,
		"spec": {
			"dies": [{
				"node": "14nm",
				"blocks": [
					{"name": "core", "transistors": 1e8, "instances": 16},
					{"name": "sram", "transistors": 2e9, "instances": 1, "pre_verified": true}
				]
			}]
		}
	}`
	status, body := do(t, "POST", "/v1/ttm", spec)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
}

func TestTTMInfiniteIs422(t *testing.T) {
	// The design's only node at zero capacity: production never ends.
	status, body := do(t, "POST", "/v1/ttm",
		`{"design":"a11","node":"28nm","n":10e6,"node_capacity":{"28nm":0}}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("status %d, body %s, want 422", status, body)
	}
	if !strings.Contains(body, "infinite") {
		t.Errorf("error should mention infinity: %s", body)
	}
}

func TestTTMBadRequests(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		{"empty body", ``},
		{"malformed json", `{"design":`},
		{"unknown field", `{"design":"a11","n":1e6,"bogus":1}`},
		{"no design", `{"n":1e6}`},
		{"unknown design", `{"design":"nope","n":1e6}`},
		{"design and spec", `{"design":"a11","spec":{"dies":[{"node":"28nm","total_transistors":1e9}]},"n":1e6}`},
		{"spec without dies", `{"spec":{"dies":[]},"n":1e6}`},
		{"spec with bad node", `{"spec":{"dies":[{"node":"3nm","total_transistors":1e9}]},"n":1e6}`},
		{"zero n", `{"design":"a11"}`},
		{"negative n", `{"design":"a11","n":-5}`},
		{"unknown node", `{"design":"a11","node":"3nm","n":1e6}`},
		{"capacity above 1", `{"design":"a11","n":1e6,"capacity":1.5}`},
		{"negative capacity", `{"design":"a11","n":1e6,"capacity":-0.5}`},
		{"negative queue", `{"design":"a11","n":1e6,"queue_weeks":-1}`},
		{"bad override node", `{"design":"a11","n":1e6,"node_capacity":{"banana":0.5}}`},
		{"override above 1", `{"design":"a11","n":1e6,"node_capacity":{"28nm":2}}`},
		{"unknown scenario", `{"design":"a11","n":1e6,"scenario":"apocalypse"}`},
		{"trailing data", `{"design":"a11","n":1e6}{"x":1}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, "POST", "/v1/ttm", tc.body)
			if status != http.StatusBadRequest {
				t.Errorf("status %d, body %s, want 400", status, body)
			}
			var er errorResponse
			if err := json.Unmarshal([]byte(body), &er); err != nil || er.Error == "" {
				t.Errorf("error body not structured: %s", body)
			}
		})
	}
}

func TestCASEndpoint(t *testing.T) {
	status, body := do(t, "POST", "/v1/cas", `{"design":"a11","node":"7nm","n":10e6}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out CASResponse
	json.Unmarshal([]byte(body), &out)
	if out.CAS <= 0 || len(out.Derivatives) == 0 {
		t.Errorf("cas response: %+v", out)
	}
}

func TestCASCurveEndpoint(t *testing.T) {
	status, body := do(t, "POST", "/v1/cas", `{"design":"a11","node":"7nm","n":10e6,"curve":[0.5,1.0]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out CASResponse
	json.Unmarshal([]byte(body), &out)
	if len(out.Curve) != 2 {
		t.Fatalf("curve has %d points, want 2", len(out.Curve))
	}
	if out.Curve[0].CAS >= out.Curve[1].CAS {
		t.Errorf("CAS should rise with capacity: %+v", out.Curve)
	}
	if out.CAS <= 0 {
		t.Errorf("curve responses must still carry the scalar CAS, got %v", out.CAS)
	}
}

func TestCostEndpoint(t *testing.T) {
	status, body := do(t, "POST", "/v1/cost", `{"design":"zen2","n":10e6}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out CostResponse
	json.Unmarshal([]byte(body), &out)
	sum := out.MaskNREUSD + out.TapeoutNREUSD + out.WafersUSD + out.PackagingUSD
	if out.TotalUSD <= 0 || out.TotalUSD-sum > 1 || sum-out.TotalUSD > 1 {
		t.Errorf("cost breakdown inconsistent: %+v", out)
	}
}

func TestSensitivityEndpoint(t *testing.T) {
	status, body := do(t, "POST", "/v1/sensitivity", `{"design":"a11","node":"28nm","n":10e6,"samples":16}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out SensitivityResponse
	json.Unmarshal([]byte(body), &out)
	if len(out.Inputs) != 6 || len(out.TotalEffect) != 6 || out.Evaluations == 0 {
		t.Errorf("sensitivity response: %+v", out)
	}
}

func TestSensitivitySampleCap(t *testing.T) {
	// A well-formed request asking for too much work is 422, not 400.
	status, body := do(t, "POST", "/v1/sensitivity", `{"design":"a11","n":1e6,"samples":100000}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("status %d, body %s, want 422", status, body)
	}
}

func TestCASCurveValidation(t *testing.T) {
	pts := make([]string, 70)
	for i := range pts {
		pts[i] = "0.5"
	}
	status, body := do(t, "POST", "/v1/cas",
		`{"design":"a11","node":"28nm","n":1e6,"curve":[`+strings.Join(pts, ",")+`]}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("oversized curve: status %d, body %s, want 422", status, body)
	}
	status, body = do(t, "POST", "/v1/cas", `{"design":"a11","node":"28nm","n":1e6,"curve":[1.5]}`)
	if status != http.StatusBadRequest {
		t.Errorf("out-of-range curve point: status %d, body %s, want 400", status, body)
	}
}

func TestPlanEndpoint(t *testing.T) {
	status, body := do(t, "POST", "/v1/plan", `{"design":"raven","n":1e9,"top":4}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out PlanResponse
	json.Unmarshal([]byte(body), &out)
	if !out.Feasible || out.Recommended == nil {
		t.Fatalf("unconstrained plan should be feasible: %+v", out)
	}
	if len(out.Options) == 0 || len(out.Options) > 4 {
		t.Errorf("options = %d, want 1..4", len(out.Options))
	}
}

func TestPlanInfeasible(t *testing.T) {
	status, body := do(t, "POST", "/v1/plan", `{"design":"raven","n":1e9,"deadline_weeks":0.001}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out PlanResponse
	json.Unmarshal([]byte(body), &out)
	if out.Feasible || out.Recommended != nil {
		t.Errorf("impossible deadline should be infeasible: %+v", out)
	}
	if len(out.Options) == 0 {
		t.Error("infeasible plan should still rank nearest candidates")
	}
}

func TestNodesEndpoint(t *testing.T) {
	status, body := do(t, "GET", "/v1/nodes", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var entries []map[string]any
	if err := json.Unmarshal([]byte(body), &entries); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(entries) < 12 {
		t.Errorf("%d node entries, want >= 12", len(entries))
	}
	if _, ok := entries[0]["node_nm"]; !ok {
		t.Errorf("entry missing node_nm: %v", entries[0])
	}
}

func TestScenariosEndpoint(t *testing.T) {
	status, body := do(t, "GET", "/v1/scenarios", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var out []ScenarioResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]bool)
	for _, sc := range out {
		names[sc.Name] = true
	}
	if !names["baseline"] {
		t.Errorf("scenarios missing baseline: %v", names)
	}
}

func TestDesignsEndpoint(t *testing.T) {
	status, body := do(t, "GET", "/v1/designs", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var out []DesignResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 6 {
		t.Fatalf("%d designs, want 6", len(out))
	}
	for _, d := range out {
		if d.Name == "" || d.Dies == 0 || len(d.Nodes) == 0 || d.TransistorsPerChip <= 0 {
			t.Errorf("incomplete design summary: %+v", d)
		}
	}
}
