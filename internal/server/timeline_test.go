package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ttmcas"
	"ttmcas/internal/jobs"
)

func TestTimelineEndpointEpisode(t *testing.T) {
	status, body := do(t, "POST", "/v1/scenarios",
		`{"design":"zen2","n":1e6,"episode":"export-control-shock"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out ttmcas.TimelineResult
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	// 52-week horizon at the default 1-week step: 53 samples.
	if len(out.Steps) != 53 {
		t.Fatalf("%d steps, want 53", len(out.Steps))
	}
	if out.Base != "baseline" || out.Design != "zen2" {
		t.Errorf("identity: base %q design %q", out.Base, out.Design)
	}
	if out.Summary.PeakTTMWeeks == nil || out.Summary.BaselineTTMWeeks == nil {
		t.Fatal("summary missing TTMs")
	}
	if *out.Summary.PeakTTMWeeks <= *out.Summary.BaselineTTMWeeks {
		t.Errorf("capacity loss should raise TTM: peak %v baseline %v",
			*out.Summary.PeakTTMWeeks, *out.Summary.BaselineTTMWeeks)
	}
	if out.InFlight != nil {
		t.Error("in-flight study ran without being requested")
	}
}

func TestTimelineEndpointInlineSpec(t *testing.T) {
	status, body := do(t, "POST", "/v1/scenarios", `{
		"design": "zen2", "n": 1e6, "in_flight": true,
		"timeline": {
			"base": "baseline",
			"horizon_weeks": 10,
			"step_weeks": 2,
			"segments": [
				{"kind": "fab-outage", "node": "7nm", "start_week": 2, "end_week": 8,
				 "depth": 0.5, "ramp": "linear", "ramp_weeks": 2}
			]
		}
	}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var out ttmcas.TimelineResult
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Steps) != 6 {
		t.Fatalf("%d steps, want 6", len(out.Steps))
	}
	if out.InFlight == nil {
		t.Fatal("in-flight study missing")
	}
	if out.InFlight.SlipWeeks < -1e-9 {
		t.Errorf("negative slip %v under an outage", out.InFlight.SlipWeeks)
	}
}

func TestTimelineEndpointCache(t *testing.T) {
	s := testServer(t, Config{})
	post := func() (int, string, string) {
		req := httptest.NewRequest("POST", "/v1/scenarios",
			strings.NewReader(`{"design":"zen2","n":1e6,"episode":"fab-fire-recovery"}`))
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, req)
		return w.Code, w.Header().Get("X-Cache"), w.Body.String()
	}
	code, cache, body := post()
	if code != http.StatusOK || cache != "MISS" {
		t.Fatalf("first request: %d X-Cache=%q %s", code, cache, body)
	}
	code, cache, hitBody := post()
	if code != http.StatusOK || cache != "HIT" {
		t.Fatalf("second request: %d X-Cache=%q", code, cache)
	}
	if hitBody != body {
		t.Error("cache hit served a different body")
	}
}

// Well-formed JSON describing an unusable timeline is 422 — the shapes
// the spec validator rejects, surfaced with their reasons.
func TestTimelineUnprocessable(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			"malformed segment",
			`{"design":"zen2","n":1e6,"timeline":{"horizon_weeks":10,"segments":[
				{"kind":"fab-outage","node":"7nm","start_week":2,"end_week":8,"depth":1.5}]}}`,
			"depth",
		},
		{
			"unknown segment kind",
			`{"design":"zen2","n":1e6,"timeline":{"horizon_weeks":10,"segments":[
				{"kind":"meteor","start_week":0,"end_week":4}]}}`,
			"unknown segment kind",
		},
		{
			"overlapping intervals",
			`{"design":"zen2","n":1e6,"timeline":{"horizon_weeks":20,"segments":[
				{"kind":"fab-outage","node":"7nm","start_week":2,"end_week":10,"depth":0.5},
				{"kind":"fab-outage","node":"7nm","start_week":8,"end_week":12,"depth":0.25}]}}`,
			"overlap",
		},
		{
			"unknown base scenario",
			`{"design":"zen2","n":1e6,"timeline":{"base":"apocalypse","horizon_weeks":10,"segments":[
				{"kind":"queue-drift","start_week":0,"end_week":4,"delta_weeks":2}]}}`,
			"unknown base scenario",
		},
		{
			"over-budget step count",
			`{"design":"zen2","n":1e6,"timeline":{"horizon_weeks":104,"step_weeks":0.01,"segments":[
				{"kind":"queue-drift","start_week":0,"end_week":4,"delta_weeks":2}]}}`,
			"batch jobs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, "POST", "/v1/scenarios", tc.body)
			if status != http.StatusUnprocessableEntity {
				t.Fatalf("status %d, body %s, want 422", status, body)
			}
			if !strings.Contains(body, tc.want) {
				t.Errorf("error %s should mention %q", body, tc.want)
			}
		})
	}
}

func TestTimelineBadRequests(t *testing.T) {
	inline := `"timeline":{"horizon_weeks":10,"segments":[{"kind":"queue-drift","start_week":0,"end_week":4,"delta_weeks":2}]}`
	cases := []struct {
		name string
		body string
	}{
		{"no timeline or episode", `{"design":"zen2","n":1e6}`},
		{"timeline and episode", `{"design":"zen2","n":1e6,"episode":"single-fab-loss",` + inline + `}`},
		{"unknown episode", `{"design":"zen2","n":1e6,"episode":"nope"}`},
		{"zero n", `{"design":"zen2","episode":"single-fab-loss"}`},
		{"no design", `{"n":1e6,"episode":"single-fab-loss"}`},
		{"unknown design", `{"design":"nope","n":1e6,"episode":"single-fab-loss"}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := do(t, "POST", "/v1/scenarios", tc.body)
			if status != http.StatusBadRequest {
				t.Errorf("status %d, body %s, want 400", status, body)
			}
		})
	}
}

func TestEpisodesEndpoint(t *testing.T) {
	status, body := do(t, "GET", "/v1/episodes", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	var out []ttmcas.TimelineEpisode
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ttmcas.TimelineEpisodes()) {
		t.Fatalf("%d episodes, want %d", len(out), len(ttmcas.TimelineEpisodes()))
	}
	for _, ep := range out {
		if ep.Name == "" || ep.Description == "" || ep.StartScenario == "" || ep.EndScenario == "" {
			t.Errorf("incomplete episode: %+v", ep)
		}
		if len(ep.Spec.Segments) == 0 {
			t.Errorf("episode %s has no segments", ep.Name)
		}
	}
}

// A timeline batch job runs end to end through the job routes with
// step-accurate progress.
func TestTimelineJobEndToEnd(t *testing.T) {
	s := testServer(t, Config{})
	v := submitJob(t, s, `{"kind":"timeline","design":"zen2","episode":"fab-fire-recovery","in_flight":true}`)
	if v.Kind != "timeline" {
		t.Fatalf("kind = %q", v.Kind)
	}
	fin := waitJob(t, s, v.ID)
	if fin.Status != jobs.StatusSucceeded {
		t.Fatalf("status = %s (err %q)", fin.Status, fin.Error)
	}
	// 40-week horizon, 1-week step: 41 steps of progress.
	if fin.Done != 41 || fin.Total != 41 {
		t.Fatalf("progress = %d/%d, want 41/41", fin.Done, fin.Total)
	}
	status, body := doOn(t, s, "GET", "/v1/jobs/"+v.ID+"/result", "")
	if status != http.StatusOK {
		t.Fatalf("result: status %d, body %s", status, body)
	}
	var res JobResultResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	var out ttmcas.TimelineResult
	if err := json.Unmarshal(res.Result, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Steps) != 41 || out.InFlight == nil {
		t.Fatalf("result: %d steps, in-flight %v", len(out.Steps), out.InFlight != nil)
	}
	// The recovery arc ends back at the baseline quote.
	first, last := out.Steps[0], out.Steps[len(out.Steps)-1]
	if first.TTMWeeks == nil || last.TTMWeeks == nil || *first.TTMWeeks != *last.TTMWeeks {
		t.Errorf("recovery episode endpoints differ: %v vs %v", first.TTMWeeks, last.TTMWeeks)
	}
}

// An invalid timeline job is rejected at submission with 422.
func TestTimelineJobInvalid(t *testing.T) {
	s := testServer(t, Config{})
	status, body := doOn(t, s, "POST", "/v1/jobs", `{"kind":"timeline","design":"zen2","episode":"nope"}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, body %s, want 422", status, body)
	}
}
