package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPprofHandlerServesProfiles(t *testing.T) {
	h := PprofHandler()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap?debug=1", "/debug/pprof/goroutine?debug=1"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Error("pprof index should list the goroutine profile")
	}
}

func TestPprofNotOnAPIHandler(t *testing.T) {
	// The API route table must not expose profiling; it only exists on
	// the dedicated -pprof-addr listener.
	s := New(Config{CacheBytes: -1})
	defer s.Close()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code == http.StatusOK {
		t.Fatalf("API handler serves /debug/pprof/ (%d)", rec.Code)
	}
}
