package server

import (
	"container/list"
	"encoding/json"
	"sync"

	"ttmcas"
)

// modelVariant labels which analytical model compiled the cached
// evaluators. There is only one today; the label keeps the cache key
// forward-compatible with alternative model variants.
const modelVariant = "default"

// compiledEval is one cached compile result: the base evaluator plus a
// pool of per-worker clones. An Evaluator is not safe for concurrent
// use (it carries per-node scratch), so each request borrows a clone
// and returns it — steady-state requests touch no compile work and no
// fresh scratch allocations.
type compiledEval struct {
	base   *ttmcas.Evaluator
	clones sync.Pool
}

func newCompiledEval(base *ttmcas.Evaluator) *compiledEval {
	ce := &compiledEval{base: base}
	ce.clones.New = func() any { return base.Clone() }
	return ce
}

// acquire borrows a worker-private evaluator; pair with release.
func (ce *compiledEval) acquire() *ttmcas.Evaluator {
	return ce.clones.Get().(*ttmcas.Evaluator)
}

func (ce *compiledEval) release(ev *ttmcas.Evaluator) { ce.clones.Put(ev) }

// evalCache is a small LRU over compiled evaluators keyed by
// (model variant, design, market conditions). The cheap evaluation
// routes consult it so a response-cache miss re-runs only the ~50 ns
// kernel, not design resolution and Compile.
type evalCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List
	items    map[string]*list.Element

	hits, misses uint64
}

type evalCacheEntry struct {
	key string
	ce  *compiledEval
}

// evalStats is a point-in-time snapshot surfaced in /metrics.
type evalStats struct {
	Entries      int
	Hits, Misses uint64
}

// newEvalCache returns an evaluator cache holding up to capacity
// compiled designs; capacity < 0 disables it (every lookup compiles).
func newEvalCache(capacity int) *evalCache {
	if capacity < 0 {
		capacity = 0
	}
	return &evalCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// getOrCompile returns the cached compiled evaluator for key,
// compiling and inserting on miss. Compilation runs outside the lock:
// concurrent misses on the same key may compile twice, but identical
// requests are already collapsed upstream by single-flight, and the
// last insert wins harmlessly.
func (c *evalCache) getOrCompile(key string, compile func() (*ttmcas.Evaluator, error)) (*compiledEval, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		ce := el.Value.(*evalCacheEntry).ce
		c.mu.Unlock()
		return ce, nil
	}
	c.misses++
	c.mu.Unlock()

	base, err := compile()
	if err != nil {
		return nil, err
	}
	ce := newCompiledEval(base)
	if c.capacity == 0 {
		return ce, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// A concurrent miss beat us to the insert; adopt its entry so
		// every caller shares one clone pool.
		c.ll.MoveToFront(el)
		return el.Value.(*evalCacheEntry).ce, nil
	}
	c.items[key] = c.ll.PushFront(&evalCacheEntry{key: key, ce: ce})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*evalCacheEntry).key)
	}
	return ce, nil
}

// Stats snapshots the cache counters.
func (c *evalCache) Stats() evalStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return evalStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses}
}

// evalKeyParts is the subset of an EvalRequest that determines the
// compiled evaluator: the design and the market conditions, but not
// the chip count (evaluators compile at n=1 and thread the requested
// volume through the chips override) nor route-specific fields like
// curve points or sample counts. json.Marshal is canonical here —
// struct field order is fixed and Go marshals maps with sorted keys.
type evalKeyParts struct {
	Design         string             `json:"d,omitempty"`
	Spec           *DesignSpec        `json:"s,omitempty"`
	Node           string             `json:"rn,omitempty"`
	Scenario       string             `json:"sc,omitempty"`
	Capacity       float64            `json:"c,omitempty"`
	QueueWeeks     float64            `json:"q,omitempty"`
	NodeCapacity   map[string]float64 `json:"nc,omitempty"`
	NodeQueueWeeks map[string]float64 `json:"nq,omitempty"`
}

// evaluatorFor resolves the request's compiled evaluator through the
// cache. The caller must have resolved (d, c) from the same request;
// they are only used on a cache miss to compile.
func (s *Server) evaluatorFor(req EvalRequest, d ttmcas.Design, c ttmcas.Conditions) (*compiledEval, error) {
	kb, err := json.Marshal(evalKeyParts{
		Design:         req.Design,
		Spec:           req.Spec,
		Node:           req.Node,
		Scenario:       req.Scenario,
		Capacity:       req.Capacity,
		QueueWeeks:     req.QueueWeeks,
		NodeCapacity:   req.NodeCapacity,
		NodeQueueWeeks: req.NodeQueueWeeks,
	})
	if err != nil {
		return nil, badRequestf("encoding evaluator key: %v", err)
	}
	key := modelVariant + "|" + string(kb)
	return s.evals.getOrCompile(key, func() (*ttmcas.Evaluator, error) {
		// Compile at one chip: the kernel's chips override serves any
		// requested volume from the same compiled evaluator.
		ev, err := ttmcas.Compile(d, 1, c)
		if err != nil {
			return nil, unprocessablef("%v", err)
		}
		return ev, nil
	})
}
