package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ttmcas/internal/jobs"
)

// doOn runs one request against an existing server.
func doOn(t *testing.T, s *Server, method, path, body string) (int, string) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w.Code, w.Body.String()
}

func submitJob(t *testing.T, s *Server, spec string) jobs.View {
	t.Helper()
	status, body := doOn(t, s, "POST", "/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", status, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitJob(t *testing.T, s *Server, id string) jobs.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		status, body := doOn(t, s, "GET", "/v1/jobs/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("get %s: status %d, body %s", id, status, body)
		}
		var v jobs.View
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatal(err)
		}
		if v.Status.Finished() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobs.View{}
}

func TestJobsEndToEnd(t *testing.T) {
	s := testServer(t, Config{})

	v := submitJob(t, s, `{"kind":"mc-band","design":"a11","node":"28nm","samples":16,"seed":7}`)
	if v.Status != jobs.StatusPending || v.Kind != "mc-band" {
		t.Fatalf("submit view = %+v", v)
	}

	// Fetching the result before it finishes is a 409.
	if status, _ := doOn(t, s, "GET", "/v1/jobs/"+v.ID+"/result", ""); status != http.StatusOK && status != http.StatusConflict {
		t.Fatalf("early result: status %d", status)
	}

	fin := waitJob(t, s, v.ID)
	if fin.Status != jobs.StatusSucceeded {
		t.Fatalf("status = %s (err %q)", fin.Status, fin.Error)
	}
	if fin.Done != fin.Total || fin.Total == 0 {
		t.Fatalf("progress = %d/%d", fin.Done, fin.Total)
	}

	status, body := doOn(t, s, "GET", "/v1/jobs/"+v.ID+"/result", "")
	if status != http.StatusOK {
		t.Fatalf("result: status %d, body %s", status, body)
	}
	var res JobResultResponse
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Status != jobs.StatusSucceeded || len(res.Result) == 0 {
		t.Fatalf("result response = %+v", res)
	}
	var band struct {
		Points []struct {
			X float64 `json:"x"`
		} `json:"points"`
	}
	if err := json.Unmarshal(res.Result, &band); err != nil {
		t.Fatal(err)
	}
	if len(band.Points) != 16 {
		t.Fatalf("points = %d, want 16", len(band.Points))
	}

	// The job shows up in the listing.
	status, body = doOn(t, s, "GET", "/v1/jobs", "")
	if status != http.StatusOK || !strings.Contains(body, v.ID) {
		t.Fatalf("list: status %d, body %s", status, body)
	}

	// Metrics reflect the lifecycle.
	m := s.Metrics()
	if m.JobsSubmitted() != 1 || m.JobsFinished(jobs.StatusSucceeded) != 1 {
		t.Fatalf("job metrics: submitted %d, succeeded %d", m.JobsSubmitted(), m.JobsFinished(jobs.StatusSucceeded))
	}
	if m.JobEvaluations() != fin.Total {
		t.Fatalf("job evaluations = %d, want %d", m.JobEvaluations(), fin.Total)
	}
	status, body = doOn(t, s, "GET", "/metrics", "")
	if status != http.StatusOK || !strings.Contains(body, `ttmcas_jobs_submitted_total{kind="mc-band"} 1`) {
		t.Fatalf("metrics exposition missing job series: %d\n%s", status, body)
	}

	// DELETE removes a finished job.
	if status, body = doOn(t, s, "DELETE", "/v1/jobs/"+v.ID, ""); status != http.StatusOK {
		t.Fatalf("delete: status %d, body %s", status, body)
	}
	if status, _ = doOn(t, s, "GET", "/v1/jobs/"+v.ID, ""); status != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", status)
	}
}

func TestJobCancelViaDelete(t *testing.T) {
	s := testServer(t, Config{})

	// A CAS curve at the sample cap keeps the compiled kernel busy long
	// enough that the cancel lands while the job is still running.
	v := submitJob(t, s, `{"kind":"mc-band","design":"a11","metric":"cas","samples":8192,"seed":1}`)
	// Cancel as soon as it is running.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		got, _ := s.Jobs().Get(v.ID)
		if got.Status == jobs.StatusRunning {
			break
		}
		if got.Status.Finished() {
			t.Fatalf("job finished (%s) before it could be cancelled", got.Status)
		}
		time.Sleep(time.Millisecond)
	}
	status, body := doOn(t, s, "DELETE", "/v1/jobs/"+v.ID, "")
	if status != http.StatusOK {
		t.Fatalf("cancel: status %d, body %s", status, body)
	}
	fin := waitJob(t, s, v.ID)
	if fin.Status != jobs.StatusCancelled {
		t.Fatalf("status = %s, want cancelled", fin.Status)
	}
}

func TestJobValidationAndLimits(t *testing.T) {
	s := testServer(t, Config{})

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"kind":"nope","design":"a11"}`, http.StatusUnprocessableEntity},
		{`{"kind":"mc-band"}`, http.StatusUnprocessableEntity},
		{`{"kind":"mc-band","design":"a11","samples":100000}`, http.StatusUnprocessableEntity},
		{`{"kind":"mc-band","design":"a11","unknown_field":1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		if status, body := doOn(t, s, "POST", "/v1/jobs", tc.body); status != tc.want {
			t.Errorf("POST %s: status %d, body %s, want %d", tc.body, status, body, tc.want)
		}
	}

	if status, _ := doOn(t, s, "GET", "/v1/jobs/job-424242", ""); status != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", status)
	}
	if status, _ := doOn(t, s, "DELETE", "/v1/jobs/job-424242", ""); status != http.StatusNotFound {
		t.Errorf("delete unknown job: status %d, want 404", status)
	}
}

func TestJobTooManyReturns429(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1, JobWorkers: 1})

	// A slow job occupies the single active slot.
	submitJob(t, s, `{"kind":"mc-band","design":"a11","samples":4096,"seed":1}`)
	status, body := doOn(t, s, "POST", "/v1/jobs", `{"kind":"mc-band","design":"a11","samples":8}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, body %s, want 429", status, body)
	}
}

func TestJobSnapshotAcrossServerRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{JobSnapshotDir: dir}

	s := testServer(t, cfg)
	v := submitJob(t, s, `{"kind":"mc-band","design":"a11","node":"28nm","samples":8,"seed":3}`)
	waitJob(t, s, v.ID)
	s.Close()

	s2 := testServer(t, cfg)
	status, body := doOn(t, s2, "GET", "/v1/jobs/"+v.ID, "")
	if status != http.StatusOK {
		t.Fatalf("restored get: status %d, body %s", status, body)
	}
	var got jobs.View
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatal(err)
	}
	if got.Status != jobs.StatusSucceeded || !got.Restored {
		t.Fatalf("restored view = %+v", got)
	}
	if status, _ = doOn(t, s2, "GET", "/v1/jobs/"+v.ID+"/result", ""); status != http.StatusOK {
		t.Fatalf("restored result: status %d", status)
	}
}
