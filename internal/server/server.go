package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ttmcas/internal/jobs"
)

// Config parameterizes a Server. The zero value of every field selects
// a production-sensible default.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// CacheBytes budgets the sharded response cache by total cached
	// body bytes (default 64 MiB); negative disables caching.
	CacheBytes int64
	// CacheShards is the response-cache shard count, rounded up to a
	// power of two (default 16). More shards means less lock
	// contention between concurrent hits on different keys.
	CacheShards int
	// EvalCacheSize is the compiled-evaluator cache capacity in
	// entries — one per distinct (design, conditions) pair
	// (default 256); negative disables it.
	EvalCacheSize int
	// MaxConcurrent bounds the worker pool used by the expensive
	// routes — sensitivity analysis and planning (default 4).
	MaxConcurrent int
	// RequestTimeout is the per-request deadline (default 30s); work
	// queued behind a full worker pool gives up when it expires.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve drains in-flight requests
	// after its context is canceled (default 30s).
	ShutdownGrace time.Duration
	// Logger receives structured request logs (default log.Default()).
	Logger *log.Logger
	// DisableAccessLog turns off the per-request log line (panics and
	// lifecycle events still log). High-throughput deployments pay
	// measurable per-request formatting cost for access logs even when
	// the destination discards them.
	DisableAccessLog bool

	// MaxSamples caps the client-supplied sample counts: the Saltelli
	// base N of /v1/sensitivity and the Monte-Carlo samples of batch
	// jobs. Requests above it are rejected with 422 (default 8192).
	MaxSamples int
	// MaxCurvePoints caps the /v1/cas curve length and the point lists
	// of batch jobs; above it is 422 (default 64).
	MaxCurvePoints int

	// JobWorkers bounds how many batch jobs run concurrently
	// (default 2).
	JobWorkers int
	// MaxJobs bounds pending+running batch jobs; submissions beyond it
	// get 429 (default 32).
	MaxJobs int
	// JobTTL evicts finished job results this long after completion
	// (default 1h).
	JobTTL time.Duration
	// JobTimeout is the per-job deadline when the spec sets none
	// (default 10m).
	JobTimeout time.Duration
	// JobSnapshotDir, when set, persists jobs as JSON so results
	// survive a restart and interrupted jobs resume.
	JobSnapshotDir string
	// MaxJobEvaluations caps the estimated evaluation units of one job
	// (default 2,000,000).
	MaxJobEvaluations int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.EvalCacheSize == 0 {
		c.EvalCacheSize = 256
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 8192
	}
	if c.MaxCurvePoints <= 0 {
		c.MaxCurvePoints = 64
	}
	return c
}

// Server is the HTTP evaluation service: JSON handlers over the public
// ttmcas API, a keyed LRU response cache with single-flight
// deduplication, a bounded worker pool for the expensive analyses, and
// a metrics registry exposed at /metrics.
type Server struct {
	cfg     Config
	log     *log.Logger
	handler http.Handler
	cache   *shardedCache
	evals   *evalCache
	flight  flightGroup
	metrics *Metrics
	heavy   chan struct{}
	jobs    *jobs.Manager
	closed  sync.Once

	// slowEval, when set, runs at the start of every model
	// computation; tests use it to hold requests in flight.
	slowEval func()
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		cache:   newShardedCache(cfg.CacheBytes, cfg.CacheShards),
		evals:   newEvalCache(cfg.EvalCacheSize),
		metrics: NewMetrics(),
		heavy:   make(chan struct{}, cfg.MaxConcurrent),
	}
	s.metrics.cacheStats = s.cache.Stats
	s.metrics.evalStats = s.evals.Stats
	s.jobs = jobs.New(jobs.Config{
		Workers:        cfg.JobWorkers,
		MaxActive:      cfg.MaxJobs,
		ResultTTL:      cfg.JobTTL,
		DefaultTimeout: cfg.JobTimeout,
		SnapshotDir:    cfg.JobSnapshotDir,
		Limits: jobs.Limits{
			MaxSamples:     cfg.MaxSamples,
			MaxPoints:      cfg.MaxCurvePoints,
			MaxEvaluations: cfg.MaxJobEvaluations,
		},
		Logger:   cfg.Logger,
		Observer: s.metrics,
	})
	s.handler = s.routes()
	return s
}

// Handler returns the server's root handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Jobs returns the batch-job manager, for the CLI and tests.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close stops the batch-job manager, cancelling running jobs and
// waiting for the workers to drain. Serve calls it after the HTTP
// shutdown; tests that only use Handler must call it themselves.
func (s *Server) Close() {
	s.closed.Do(func() { s.jobs.Close() })
}

// routes builds the route table. Every route is wrapped with the
// middleware stack under its own metrics label.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.wrap(pattern, h))
	}
	handle("POST /v1/ttm", s.handleTTM)
	handle("POST /v1/cas", s.handleCAS)
	handle("POST /v1/cost", s.handleCost)
	handle("POST /v1/sensitivity", s.handleSensitivity)
	handle("POST /v1/plan", s.handlePlan)
	handle("POST /v1/jobs", s.handleJobSubmit)
	handle("GET /v1/jobs", s.handleJobList)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("GET /v1/jobs/{id}/result", s.handleJobResult)
	handle("DELETE /v1/jobs/{id}", s.handleJobDelete)
	handle("GET /v1/nodes", s.handleNodes)
	handle("GET /v1/scenarios", s.handleScenarios)
	handle("GET /v1/designs", s.handleDesigns)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	return mux
}

// ListenAndServe listens on the configured address and serves until
// ctx is canceled, then drains gracefully.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.log.Printf("ttmcas-serve listening on %s", ln.Addr())
	return s.Serve(ctx, ln)
}

// Serve accepts connections on ln until ctx is canceled. Cancellation
// triggers a graceful shutdown: the listener closes immediately (new
// connections are refused) while in-flight requests get up to
// ShutdownGrace to complete; running batch jobs are cancelled and
// drained afterwards (snapshotted for resume when persistence is on).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer s.Close()
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Bodies must arrive within the request deadline: with the
		// handler-side timer now armed only around compute work, this
		// is what bounds slow-body clients.
		ReadTimeout: s.cfg.RequestTimeout,
		ErrorLog:    s.log,
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		shutdownErr <- hs.Shutdown(drainCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	select {
	case err := <-shutdownErr:
		return err
	case <-ctx.Done():
		return <-shutdownErr
	}
}

// apiError is an error carrying the HTTP status it should produce.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &apiError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func unprocessablef(format string, args ...any) error {
	return &apiError{http.StatusUnprocessableEntity, fmt.Sprintf(format, args...)}
}

// errorResponse is the uniform error body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// encodeBuffer pairs a reusable buffer with a JSON encoder bound to
// it, so the hot path never reallocates either. Encoder.Encode appends
// the trailing newline every response body carries.
type encodeBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	eb := &encodeBuffer{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

// encodeJSON marshals v into a pooled buffer (newline-terminated).
// The returned release func recycles the buffer; the byte slice is
// only valid until then.
func encodeJSON(v any) (body []byte, release func(), err error) {
	eb := encPool.Get().(*encodeBuffer)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		encPool.Put(eb)
		return nil, nil, err
	}
	return eb.buf.Bytes(), func() { encPool.Put(eb) }, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, release, err := encodeJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	// No explicit Content-Length here: net/http computes it for
	// buffered responses, and the cached paths — where the header is
	// guaranteed — precompute it at insert (writeBody / cache hits).
	w.Header()["Content-Type"] = headerJSON
	w.WriteHeader(status)
	w.Write(body)
	release()
}

// Shared, immutable header values: assigning a pre-built []string
// under the already-canonical key skips textproto's canonicalization
// pass and the per-request slice allocation Header.Set would pay.
var (
	headerJSON = []string{"application/json"}
	headerHit  = []string{"HIT"}
	headerMiss = []string{"MISS"}
)

// writeBody writes a complete, newline-terminated JSON body verbatim
// with a precomputed Content-Length.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	h["Content-Length"] = []string{strconv.Itoa(len(body))}
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// fail maps an error to its HTTP status and writes the error body.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		writeError(w, ae.status, ae.msg)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	default:
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// acquireHeavy takes a worker-pool slot, or fails with 503 when the
// pool stays saturated past the request deadline.
func (s *Server) acquireHeavy(ctx context.Context) error {
	select {
	case s.heavy <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &apiError{http.StatusServiceUnavailable,
			fmt.Sprintf("worker pool saturated (%d concurrent heavy requests)", cap(s.heavy))}
	}
}

func (s *Server) releaseHeavy() { <-s.heavy }

// respondCached serves a POST evaluation through the cache →
// single-flight → compute pipeline. req must already be decoded: its
// canonical JSON, prefixed by the route, keys both layers. Only
// successful responses are cached; errors pass through single-flight
// (concurrent identical failures fail once) but are never remembered.
func (s *Server) respondCached(w http.ResponseWriter, r *http.Request, route string, req any, heavy bool, compute func(ctx context.Context) (any, error)) {
	// The canonical key is built in a pooled buffer: a cache hit never
	// materializes the key as a string (Get looks the bytes up
	// directly), so the hot path performs no key allocations at all.
	eb := encPool.Get().(*encodeBuffer)
	eb.buf.Reset()
	eb.buf.WriteString(route)
	eb.buf.WriteByte('|')
	if err := eb.enc.Encode(req); err != nil {
		encPool.Put(eb)
		s.fail(w, badRequestf("encoding request key: %v", err))
		return
	}

	if body, cl, ok := s.cache.Get(eb.buf.Bytes()); ok {
		encPool.Put(eb)
		s.metrics.CacheHit()
		h := w.Header()
		h["X-Cache"] = headerHit
		h["Content-Type"] = headerJSON
		h["Content-Length"] = cl
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	key := eb.buf.String()
	encPool.Put(eb)
	s.metrics.CacheMiss()

	body, shared, err := s.flight.Do(key, func() ([]byte, error) {
		// The request deadline is armed here, around the only work
		// that can stall, so cache hits never pay for a timer context.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if heavy {
			if err := s.acquireHeavy(ctx); err != nil {
				return nil, err
			}
			defer s.releaseHeavy()
		}
		if s.slowEval != nil {
			s.slowEval()
		}
		s.metrics.Evaluation()
		v, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		// The pooled buffer cannot outlive this closure (the body is
		// cached and shared across piggybacked requests), so copy it
		// into an owned slice — still one precisely-sized allocation
		// instead of Marshal's grow-and-copy churn.
		pooled, release, err := encodeJSON(v)
		if err != nil {
			return nil, &apiError{http.StatusInternalServerError, "encoding response: " + err.Error()}
		}
		b := make([]byte, len(pooled))
		copy(b, pooled)
		release()
		s.cache.Put(key, b)
		return b, nil
	})
	if shared {
		s.metrics.FlightShared()
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header()["X-Cache"] = headerMiss
	writeBody(w, http.StatusOK, body)
}
