package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"ttmcas/internal/jobs"
)

// Config parameterizes a Server. The zero value of every field selects
// a production-sensible default.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// CacheSize is the LRU response-cache capacity in entries
	// (default 1024); negative disables caching.
	CacheSize int
	// MaxConcurrent bounds the worker pool used by the expensive
	// routes — sensitivity analysis and planning (default 4).
	MaxConcurrent int
	// RequestTimeout is the per-request deadline (default 30s); work
	// queued behind a full worker pool gives up when it expires.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve drains in-flight requests
	// after its context is canceled (default 30s).
	ShutdownGrace time.Duration
	// Logger receives structured request logs (default log.Default()).
	Logger *log.Logger

	// MaxSamples caps the client-supplied sample counts: the Saltelli
	// base N of /v1/sensitivity and the Monte-Carlo samples of batch
	// jobs. Requests above it are rejected with 422 (default 8192).
	MaxSamples int
	// MaxCurvePoints caps the /v1/cas curve length and the point lists
	// of batch jobs; above it is 422 (default 64).
	MaxCurvePoints int

	// JobWorkers bounds how many batch jobs run concurrently
	// (default 2).
	JobWorkers int
	// MaxJobs bounds pending+running batch jobs; submissions beyond it
	// get 429 (default 32).
	MaxJobs int
	// JobTTL evicts finished job results this long after completion
	// (default 1h).
	JobTTL time.Duration
	// JobTimeout is the per-job deadline when the spec sets none
	// (default 10m).
	JobTimeout time.Duration
	// JobSnapshotDir, when set, persists jobs as JSON so results
	// survive a restart and interrupted jobs resume.
	JobSnapshotDir string
	// MaxJobEvaluations caps the estimated evaluation units of one job
	// (default 2,000,000).
	MaxJobEvaluations int
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheSize == 0 {
		c.CacheSize = 1024
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 8192
	}
	if c.MaxCurvePoints <= 0 {
		c.MaxCurvePoints = 64
	}
	return c
}

// Server is the HTTP evaluation service: JSON handlers over the public
// ttmcas API, a keyed LRU response cache with single-flight
// deduplication, a bounded worker pool for the expensive analyses, and
// a metrics registry exposed at /metrics.
type Server struct {
	cfg     Config
	log     *log.Logger
	handler http.Handler
	cache   *lruCache
	flight  flightGroup
	metrics *Metrics
	heavy   chan struct{}
	jobs    *jobs.Manager
	closed  sync.Once

	// slowEval, when set, runs at the start of every model
	// computation; tests use it to hold requests in flight.
	slowEval func()
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		cache:   newLRUCache(cfg.CacheSize),
		metrics: NewMetrics(),
		heavy:   make(chan struct{}, cfg.MaxConcurrent),
	}
	s.jobs = jobs.New(jobs.Config{
		Workers:        cfg.JobWorkers,
		MaxActive:      cfg.MaxJobs,
		ResultTTL:      cfg.JobTTL,
		DefaultTimeout: cfg.JobTimeout,
		SnapshotDir:    cfg.JobSnapshotDir,
		Limits: jobs.Limits{
			MaxSamples:     cfg.MaxSamples,
			MaxPoints:      cfg.MaxCurvePoints,
			MaxEvaluations: cfg.MaxJobEvaluations,
		},
		Logger:   cfg.Logger,
		Observer: s.metrics,
	})
	s.handler = s.routes()
	return s
}

// Handler returns the server's root handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Jobs returns the batch-job manager, for the CLI and tests.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// Close stops the batch-job manager, cancelling running jobs and
// waiting for the workers to drain. Serve calls it after the HTTP
// shutdown; tests that only use Handler must call it themselves.
func (s *Server) Close() {
	s.closed.Do(func() { s.jobs.Close() })
}

// routes builds the route table. Every route is wrapped with the
// middleware stack under its own metrics label.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.wrap(pattern, h))
	}
	handle("POST /v1/ttm", s.handleTTM)
	handle("POST /v1/cas", s.handleCAS)
	handle("POST /v1/cost", s.handleCost)
	handle("POST /v1/sensitivity", s.handleSensitivity)
	handle("POST /v1/plan", s.handlePlan)
	handle("POST /v1/jobs", s.handleJobSubmit)
	handle("GET /v1/jobs", s.handleJobList)
	handle("GET /v1/jobs/{id}", s.handleJobGet)
	handle("GET /v1/jobs/{id}/result", s.handleJobResult)
	handle("DELETE /v1/jobs/{id}", s.handleJobDelete)
	handle("GET /v1/nodes", s.handleNodes)
	handle("GET /v1/scenarios", s.handleScenarios)
	handle("GET /v1/designs", s.handleDesigns)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	return mux
}

// ListenAndServe listens on the configured address and serves until
// ctx is canceled, then drains gracefully.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.log.Printf("ttmcas-serve listening on %s", ln.Addr())
	return s.Serve(ctx, ln)
}

// Serve accepts connections on ln until ctx is canceled. Cancellation
// triggers a graceful shutdown: the listener closes immediately (new
// connections are refused) while in-flight requests get up to
// ShutdownGrace to complete; running batch jobs are cancelled and
// drained afterwards (snapshotted for resume when persistence is on).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer s.Close()
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          s.log,
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		shutdownErr <- hs.Shutdown(drainCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	select {
	case err := <-shutdownErr:
		return err
	case <-ctx.Done():
		return <-shutdownErr
	}
}

// apiError is an error carrying the HTTP status it should produce.
type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &apiError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func unprocessablef(format string, args ...any) error {
	return &apiError{http.StatusUnprocessableEntity, fmt.Sprintf(format, args...)}
}

// errorResponse is the uniform error body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	writeRaw(w, status, body)
}

func writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	body, _ := json.Marshal(errorResponse{Error: msg})
	writeRaw(w, status, body)
}

// fail maps an error to its HTTP status and writes the error body.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		writeError(w, ae.status, ae.msg)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	default:
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// acquireHeavy takes a worker-pool slot, or fails with 503 when the
// pool stays saturated past the request deadline.
func (s *Server) acquireHeavy(ctx context.Context) error {
	select {
	case s.heavy <- struct{}{}:
		return nil
	case <-ctx.Done():
		return &apiError{http.StatusServiceUnavailable,
			fmt.Sprintf("worker pool saturated (%d concurrent heavy requests)", cap(s.heavy))}
	}
}

func (s *Server) releaseHeavy() { <-s.heavy }

// respondCached serves a POST evaluation through the cache →
// single-flight → compute pipeline. req must already be decoded: its
// canonical JSON, prefixed by the route, keys both layers. Only
// successful responses are cached; errors pass through single-flight
// (concurrent identical failures fail once) but are never remembered.
func (s *Server) respondCached(w http.ResponseWriter, r *http.Request, route string, req any, heavy bool, compute func(ctx context.Context) (any, error)) {
	keyBytes, err := json.Marshal(req)
	if err != nil {
		s.fail(w, badRequestf("encoding request key: %v", err))
		return
	}
	key := route + "|" + string(keyBytes)

	if body, ok := s.cache.Get(key); ok {
		s.metrics.CacheHit()
		writeRaw(w, http.StatusOK, body)
		return
	}
	s.metrics.CacheMiss()

	body, shared, err := s.flight.Do(key, func() ([]byte, error) {
		if heavy {
			if err := s.acquireHeavy(r.Context()); err != nil {
				return nil, err
			}
			defer s.releaseHeavy()
		}
		if s.slowEval != nil {
			s.slowEval()
		}
		s.metrics.Evaluation()
		v, err := compute(r.Context())
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(v)
		if err != nil {
			return nil, &apiError{http.StatusInternalServerError, "encoding response: " + err.Error()}
		}
		s.cache.Put(key, b)
		return b, nil
	})
	if shared {
		s.metrics.FlightShared()
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	writeRaw(w, http.StatusOK, body)
}
