package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"ttmcas/internal/cluster"
	"ttmcas/internal/jobs"
	"ttmcas/internal/resilience"
	"ttmcas/internal/resilience/faultinject"
	"ttmcas/internal/resilience/netfault"
)

// Config parameterizes a Server. The zero value of every field selects
// a production-sensible default.
type Config struct {
	// Addr is the listen address for ListenAndServe (default ":8080").
	Addr string
	// CacheBytes budgets the sharded response cache by total cached
	// body bytes (default 64 MiB); negative disables caching.
	CacheBytes int64
	// CacheShards is the response-cache shard count, rounded up to a
	// power of two (default 16). More shards means less lock
	// contention between concurrent hits on different keys.
	CacheShards int
	// EvalCacheSize is the compiled-evaluator cache capacity in
	// entries — one per distinct (design, conditions) pair
	// (default 256); negative disables it.
	EvalCacheSize int
	// MaxConcurrent bounds the heavy admission class — sensitivity
	// analysis and planning (default 4).
	MaxConcurrent int
	// CheapConcurrent bounds the cheap admission class — the ttm, cas
	// and cost computations behind response-cache misses
	// (default 2×GOMAXPROCS). Cache hits are never limited.
	CheapConcurrent int
	// ShedTarget is the CoDel-style queue-delay target of both
	// admission classes (default 25ms): when even the minimum slot
	// wait over an observation interval exceeds it, new arrivals are
	// shed with 503 + Retry-After instead of queueing.
	ShedTarget time.Duration
	// FreshTTL is how long a cached response is served directly; past
	// it the entry is revalidated by recomputation (default 0: cached
	// responses never go stale — the models are deterministic).
	FreshTTL time.Duration
	// StaleTTL is how long past freshness an entry is retained for
	// graceful degradation: when revalidation is shed or fails, the
	// stale body is served with X-Cache: STALE instead of an error
	// (default 0: no stale serving). Meaningful only with FreshTTL set.
	StaleTTL time.Duration
	// FaultSpec enables the fault-injection layer (see the
	// resilience/faultinject package for the grammar); empty disables
	// it. Injection applies to the evaluation routes' compute path —
	// downstream of the cache, upstream of the degradation machinery —
	// and wraps every other route as middleware.
	FaultSpec string
	// FaultSeed fixes the fault injector's decision stream (default 1).
	FaultSeed int64
	// NetFaultSpec enables the network-level fault injector on the
	// cluster transport (see internal/resilience/netfault): drop,
	// delay, reset, or fully partition traffic between named peers,
	// e.g. "partition=10.0.0.1:8080,10.0.0.3:8080; drop-rate=0.3".
	// It shapes peer-to-peer traffic only — client requests to this
	// node are not touched.
	NetFaultSpec string
	// NetFaultSeed fixes the net-fault decision stream (default 1).
	NetFaultSeed int64
	// NetFaultPaused starts the net-fault injector paused; the
	// netsplit harness resumes it mid-run to induce the partition.
	NetFaultPaused bool
	// RequestTimeout is the per-request deadline (default 30s); work
	// queued behind a full worker pool gives up when it expires.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// ShutdownGrace bounds how long Serve drains in-flight requests
	// after its context is canceled (default 30s).
	ShutdownGrace time.Duration
	// Logger receives structured request logs (default log.Default()).
	Logger *log.Logger
	// DisableAccessLog turns off the per-request log line (panics and
	// lifecycle events still log). High-throughput deployments pay
	// measurable per-request formatting cost for access logs even when
	// the destination discards them.
	DisableAccessLog bool

	// MaxSamples caps the client-supplied sample counts: the Saltelli
	// base N of /v1/sensitivity and the Monte-Carlo samples of batch
	// jobs. Requests above it are rejected with 422 (default 8192).
	MaxSamples int
	// MaxCurvePoints caps the /v1/cas curve length and the point lists
	// of batch jobs; above it is 422 (default 64).
	MaxCurvePoints int
	// MaxTimelineSteps caps the step count of timelines evaluated
	// inline by POST /v1/scenarios; longer timelines must go through
	// the batch-job route. Above it is 422 (default 256).
	MaxTimelineSteps int

	// JobWorkers bounds how many batch jobs run concurrently
	// (default 2).
	JobWorkers int
	// MaxJobs bounds pending+running batch jobs; submissions beyond it
	// get 429 (default 32).
	MaxJobs int
	// JobTTL evicts finished job results this long after completion
	// (default 1h).
	JobTTL time.Duration
	// JobTimeout is the per-job deadline when the spec sets none
	// (default 10m).
	JobTimeout time.Duration
	// JobSnapshotDir, when set, persists jobs as JSON so results
	// survive a restart and interrupted jobs resume.
	JobSnapshotDir string
	// MaxJobEvaluations caps the estimated evaluation units of one job
	// (default 2,000,000).
	MaxJobEvaluations int
	// JobEvalDelay, when positive, stretches every shardable job
	// compute — serial runs, local shards, and shards executed here on
	// behalf of peers — by shardUnits × JobEvalDelay of sleep. It is
	// the loadtest harness's latency-bound compute floor (see
	// jobs.PaceShard); production deployments leave it zero.
	JobEvalDelay time.Duration

	// NodeID identifies this process in /healthz and cluster state
	// (default: ClusterSelfURL without its scheme, or "single").
	NodeID string
	// ClusterSelfURL is this node's advertised base URL
	// ("http://host:port") — its identity on the hash ring. Cluster
	// mode is enabled when both it and ClusterPeers are set.
	ClusterSelfURL string
	// ClusterPeers lists the other members' base URLs.
	ClusterPeers []string
	// ClusterVNodes is the virtual-node count per ring member
	// (default 64). All members must agree on it.
	ClusterVNodes int
	// ClusterRedirect answers ownership misses with 307 redirects to
	// the owning node instead of forwarding server-side.
	ClusterRedirect bool
	// ClusterProbeInterval is the peer health-probe period (default 1s).
	ClusterProbeInterval time.Duration
	// ClusterSuspectAfter and ClusterEvictAfter are the consecutive
	// probe failures after which a peer is marked suspect (default 2)
	// and evicted from the ring (default 3).
	ClusterSuspectAfter int
	ClusterEvictAfter   int
	// ClusterProbeTimeout bounds one health probe, decoupled from the
	// probe interval (default: ProbeInterval, capped at 2s).
	ClusterProbeTimeout time.Duration
	// ClusterBreaker tunes the per-peer circuit breakers on the
	// forward path; the zero value selects the resilience defaults.
	ClusterBreaker resilience.BreakerConfig
	// ClusterRetry tunes the forward retry budget and backoff; the
	// zero value selects the resilience defaults.
	ClusterRetry resilience.RetryPolicy
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.EvalCacheSize == 0 {
		c.EvalCacheSize = 256
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.CheapConcurrent <= 0 {
		c.CheapConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if c.ShedTarget <= 0 {
		c.ShedTarget = 25 * time.Millisecond
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = 1
	}
	if c.NetFaultSeed == 0 {
		c.NetFaultSeed = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 8192
	}
	if c.MaxCurvePoints <= 0 {
		c.MaxCurvePoints = 64
	}
	if c.MaxTimelineSteps <= 0 {
		c.MaxTimelineSteps = 256
	}
	if c.NodeID == "" {
		if c.ClusterSelfURL != "" {
			c.NodeID = strings.TrimPrefix(strings.TrimPrefix(c.ClusterSelfURL, "https://"), "http://")
		} else {
			c.NodeID = "single"
		}
	}
	if c.ClusterVNodes <= 0 {
		c.ClusterVNodes = cluster.DefaultVNodes
	}
	return c
}

// Server is the HTTP evaluation service: JSON handlers over the public
// ttmcas API, a keyed LRU response cache with single-flight
// deduplication, per-class adaptive admission control for the compute
// paths, and a metrics registry exposed at /metrics.
type Server struct {
	cfg     Config
	log     *log.Logger
	handler http.Handler
	cache   *shardedCache
	evals   *evalCache
	flight  flightGroup
	metrics *Metrics
	// cheap and heavy are the two admission classes: cheap gates the
	// inexpensive evaluations behind response-cache misses, heavy gates
	// sensitivity analysis and planning. Both shed with 503 +
	// Retry-After once their queue delay stands above ShedTarget.
	cheap  *resilience.Limiter
	heavy  *resilience.Limiter
	faults *faultinject.Injector
	// netFaults shapes the cluster transport (forwards and gossip
	// probes) for partition testing; nil when disabled.
	netFaults *netfault.Injector
	// refreshSem bounds concurrent background stale refreshes so a
	// burst of stale serves cannot spawn unbounded goroutines.
	refreshSem chan struct{}
	jobs       *jobs.Manager
	// cluster is the consistent-hash peer layer (nil when the node runs
	// alone): ownership lookup, peer-to-peer forwarding, gossip health.
	cluster *cluster.Cluster
	started time.Time
	closed  sync.Once

	// slowEval, when set, runs at the start of every model
	// computation; tests use it to hold requests in flight.
	slowEval func()
}

// New builds a Server from the configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		cache:   newShardedCache(cfg.CacheBytes, cfg.CacheShards, cfg.FreshTTL, cfg.StaleTTL),
		evals:   newEvalCache(cfg.EvalCacheSize),
		metrics: NewMetrics(),
		cheap: resilience.NewLimiter(resilience.LimiterConfig{
			Name:          "cheap",
			MaxConcurrent: cfg.CheapConcurrent,
			Target:        cfg.ShedTarget,
		}),
		heavy: resilience.NewLimiter(resilience.LimiterConfig{
			Name:          "heavy",
			MaxConcurrent: cfg.MaxConcurrent,
			Target:        cfg.ShedTarget,
		}),
		refreshSem: make(chan struct{}, 2),
		started:    time.Now(),
	}
	if inj, err := netfault.Parse(cfg.NetFaultSpec, cfg.NetFaultSeed); err != nil {
		// Same contract as FaultSpec below: the CLI pre-validates, so
		// this path only logs and disables.
		cfg.Logger.Printf("ignoring invalid net-fault spec: %v", err)
	} else if inj != nil {
		s.netFaults = inj.Bind(cfg.ClusterSelfURL)
		if cfg.NetFaultPaused {
			s.netFaults.Pause()
		}
	}
	if cfg.ClusterSelfURL != "" && len(cfg.ClusterPeers) > 0 {
		copts := cluster.Options{
			SelfID:        cfg.NodeID,
			SelfURL:       cfg.ClusterSelfURL,
			Peers:         cfg.ClusterPeers,
			VNodes:        cfg.ClusterVNodes,
			Redirect:      cfg.ClusterRedirect,
			ProbeInterval: cfg.ClusterProbeInterval,
			ProbeTimeout:  cfg.ClusterProbeTimeout,
			SuspectAfter:  cfg.ClusterSuspectAfter,
			EvictAfter:    cfg.ClusterEvictAfter,
			Breaker:       cfg.ClusterBreaker,
			Retry:         cfg.ClusterRetry,
			Logger:        cfg.Logger,
		}
		if s.netFaults != nil {
			// Wrap the whole cluster transport — forwards AND gossip
			// probes — so a partition is symmetric with production: a
			// peer this node cannot reach is also a peer it cannot
			// probe, and suspicion machinery reacts accordingly.
			copts.Client = &http.Client{
				Transport: s.netFaults.Transport(&http.Transport{
					MaxIdleConns:        64,
					MaxIdleConnsPerHost: 64,
					IdleConnTimeout:     90 * time.Second,
				}),
			}
		}
		s.cluster = cluster.New(copts)
		s.metrics.clusterStats = s.cluster.Stats
	}
	if inj, err := faultinject.Parse(cfg.FaultSpec, cfg.FaultSeed); err != nil {
		// Config errors here cannot fail New's signature; the CLI
		// pre-validates the spec, so this path only logs and disables.
		cfg.Logger.Printf("ignoring invalid fault spec: %v", err)
	} else {
		s.faults = inj
	}
	s.metrics.cacheStats = s.cache.Stats
	s.metrics.evalStats = s.evals.Stats
	s.metrics.limiterStats = func() []resilience.LimiterStats {
		return []resilience.LimiterStats{s.cheap.Stats(), s.heavy.Stats()}
	}
	s.metrics.faultStats = s.faults.Stats
	jcfg := jobs.Config{
		Workers:        cfg.JobWorkers,
		MaxActive:      cfg.MaxJobs,
		ResultTTL:      cfg.JobTTL,
		DefaultTimeout: cfg.JobTimeout,
		SnapshotDir:    cfg.JobSnapshotDir,
		Limits: jobs.Limits{
			MaxSamples:     cfg.MaxSamples,
			MaxPoints:      cfg.MaxCurvePoints,
			MaxEvaluations: cfg.MaxJobEvaluations,
		},
		Logger:    cfg.Logger,
		Observer:  s.metrics,
		EvalDelay: cfg.JobEvalDelay,
	}
	if s.cluster != nil {
		// Heavy jobs shard across alive peers; a lone node (or an
		// all-dead ring) runs every job single-node as before.
		jcfg.Distributor = clusterDistributor{s}
	}
	s.jobs = jobs.New(jcfg)
	s.metrics.jobCounts = s.jobs.Counts
	s.handler = s.routes()
	return s
}

// Handler returns the server's root handler, for tests and embedding.
func (s *Server) Handler() http.Handler { return s.handler }

// Metrics returns the server's metrics registry.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Jobs returns the batch-job manager, for the CLI and tests.
func (s *Server) Jobs() *jobs.Manager { return s.jobs }

// FaultInjector returns the configured fault injector (nil when
// disabled). The chaos harness uses it to pause injection while
// warming caches and to read injected-fault counts.
func (s *Server) FaultInjector() *faultinject.Injector { return s.faults }

// NetFault returns the network-fault injector on the cluster
// transport (nil when disabled). The netsplit harness uses it to
// start and heal partitions mid-run.
func (s *Server) NetFault() *netfault.Injector { return s.netFaults }

// Cluster returns the consistent-hash peer layer, or nil when the node
// runs alone. The cluster harness reads its stats and status.
func (s *Server) Cluster() *cluster.Cluster { return s.cluster }

// Close stops the admission limiters (waking any queued requests with
// 503) and the batch-job manager, cancelling running jobs and waiting
// for the workers to drain. Serve calls it after the HTTP shutdown;
// tests that only use Handler must call it themselves.
func (s *Server) Close() {
	s.closed.Do(func() {
		s.cheap.Close()
		s.heavy.Close()
		s.jobs.Close()
		if s.cluster != nil {
			s.cluster.Close()
		}
	})
}

// routes builds the route table. Every route is wrapped with the
// middleware stack under its own metrics label. The evaluation routes
// inject faults inside respondCached's compute path (so the cache and
// degradation machinery are exercised, not bypassed); the job and
// listing routes take the injector as plain middleware. /healthz and
// /metrics are never injected — operators must be able to observe a
// chaos run.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.wrap(pattern, h))
	}
	injected := func(pattern string, h http.HandlerFunc) {
		mux.Handle(pattern, s.wrap(pattern, s.faults.Middleware(h).ServeHTTP))
	}
	handle("POST /v1/ttm", s.handleTTM)
	handle("POST /v1/cas", s.handleCAS)
	handle("POST /v1/cost", s.handleCost)
	handle("POST /v1/sensitivity", s.handleSensitivity)
	handle("POST /v1/plan", s.handlePlan)
	handle("POST /v1/scenarios", s.handleTimeline)
	injected("POST /v1/jobs", s.handleJobSubmit)
	injected("GET /v1/jobs", s.handleJobList)
	injected("GET /v1/jobs/{id}", s.handleJobGet)
	injected("GET /v1/jobs/{id}/result", s.handleJobResult)
	injected("DELETE /v1/jobs/{id}", s.handleJobDelete)
	injected("GET /v1/nodes", s.handleNodes)
	injected("GET /v1/scenarios", s.handleScenarios)
	injected("GET /v1/episodes", s.handleEpisodes)
	injected("GET /v1/designs", s.handleDesigns)
	handle("GET /healthz", s.handleHealthz)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /v1/cluster", s.handleCluster)
	// Internal peer-to-peer route: distributed job shards arrive over
	// the cluster transport, never from clients.
	handle("POST /v1/internal/shards", s.handleShardExec)
	return mux
}

// ListenAndServe listens on the configured address and serves until
// ctx is canceled, then drains gracefully.
func (s *Server) ListenAndServe(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.log.Printf("ttmcas-serve listening on %s", ln.Addr())
	return s.Serve(ctx, ln)
}

// Serve accepts connections on ln until ctx is canceled. Cancellation
// triggers a graceful shutdown: the listener closes immediately (new
// connections are refused) while in-flight requests get up to
// ShutdownGrace to complete; running batch jobs are cancelled and
// drained afterwards (snapshotted for resume when persistence is on).
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	defer s.Close()
	hs := &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: 10 * time.Second,
		// Bodies must arrive within the request deadline: with the
		// handler-side timer now armed only around compute work, this
		// is what bounds slow-body clients.
		ReadTimeout: s.cfg.RequestTimeout,
		ErrorLog:    s.log,
	}
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		// Close the limiters before draining: requests already admitted
		// keep their slots and finish, but queued-but-unadmitted ones
		// are answered 503 immediately instead of holding the drain
		// window open.
		s.cheap.Close()
		s.heavy.Close()
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		shutdownErr <- hs.Shutdown(drainCtx)
	}()
	if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	select {
	case err := <-shutdownErr:
		return err
	case <-ctx.Done():
		return <-shutdownErr
	}
}

// apiError is an error carrying the HTTP status it should produce.
// retryAfter, when positive, emits a Retry-After header (seconds) so
// shed and rate-limited clients know when to come back.
type apiError struct {
	status     int
	msg        string
	retryAfter int
}

func (e *apiError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func unprocessablef(format string, args ...any) error {
	return &apiError{status: http.StatusUnprocessableEntity, msg: fmt.Sprintf(format, args...)}
}

// errorResponse is the uniform error body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}

// encodeBuffer pairs a reusable buffer with a JSON encoder bound to
// it, so the hot path never reallocates either. Encoder.Encode appends
// the trailing newline every response body carries.
type encodeBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encPool = sync.Pool{New: func() any {
	eb := &encodeBuffer{}
	eb.enc = json.NewEncoder(&eb.buf)
	return eb
}}

// encodeJSON marshals v into a pooled buffer (newline-terminated).
// The returned release func recycles the buffer; the byte slice is
// only valid until then.
func encodeJSON(v any) (body []byte, release func(), err error) {
	eb := encPool.Get().(*encodeBuffer)
	eb.buf.Reset()
	if err := eb.enc.Encode(v); err != nil {
		encPool.Put(eb)
		return nil, nil, err
	}
	return eb.buf.Bytes(), func() { encPool.Put(eb) }, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, release, err := encodeJSON(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	// No explicit Content-Length here: net/http computes it for
	// buffered responses, and the cached paths — where the header is
	// guaranteed — precompute it at insert (writeBody / cache hits).
	w.Header()["Content-Type"] = headerJSON
	w.WriteHeader(status)
	w.Write(body)
	release()
}

// Shared, immutable header values: assigning a pre-built []string
// under the already-canonical key skips textproto's canonicalization
// pass and the per-request slice allocation Header.Set would pay.
var (
	headerJSON  = []string{"application/json"}
	headerHit   = []string{"HIT"}
	headerMiss  = []string{"MISS"}
	headerStale = []string{"STALE"}
	headerFwd   = []string{"FWD"}
)

// writeBody writes a complete, newline-terminated JSON body verbatim
// with a precomputed Content-Length.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	h["Content-Length"] = []string{strconv.Itoa(len(body))}
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// fail maps an error to its HTTP status and writes the error body.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		if ae.retryAfter > 0 {
			w.Header()["Retry-After"] = []string{strconv.Itoa(ae.retryAfter)}
		}
		writeError(w, ae.status, ae.msg)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "request deadline exceeded")
	default:
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, err.Error())
			return
		}
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// computeBody runs one model computation end to end — fault injection,
// the computation itself, pooled JSON encoding, cache insert — and
// contains panics: an injected or genuine panic in the compute path
// becomes a 500 apiError instead of tearing down the single-flight
// call, which both keeps piggybacked waiters alive and makes the
// failure eligible for stale rescue. path is the request path (the
// route label minus its method), which the fault injector matches on.
func (s *Server) computeBody(ctx context.Context, key, path string, compute func(ctx context.Context) (any, error)) (body []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.log.Printf("panic computing %s: %v\n%s", path, p, debug.Stack())
			body, err = nil, &apiError{status: http.StatusInternalServerError, msg: "internal error: computation panicked"}
		}
	}()
	if s.slowEval != nil {
		s.slowEval()
	}
	if err := s.faults.Inject(path); err != nil {
		return nil, err
	}
	s.metrics.Evaluation()
	v, err := compute(ctx)
	if err != nil {
		return nil, err
	}
	// The pooled buffer cannot outlive this call (the body is cached
	// and shared across piggybacked requests), so copy it into an owned
	// slice — still one precisely-sized allocation instead of Marshal's
	// grow-and-copy churn.
	pooled, release, err := encodeJSON(v)
	if err != nil {
		return nil, &apiError{status: http.StatusInternalServerError, msg: "encoding response: " + err.Error()}
	}
	b := make([]byte, len(pooled))
	copy(b, pooled)
	release()
	s.cache.Put(key, b)
	return b, nil
}

// staleEligible reports whether a compute failure may be papered over
// with a retained stale body: sheds, injected faults, panics and
// timeouts qualify; client errors (4xx) never do — the client sent a
// bad request and must hear so.
func staleEligible(err error) bool {
	var ae *apiError
	if errors.As(err, &ae) && ae.status < 500 {
		return false
	}
	return true
}

// tryRefresh starts a best-effort background recomputation of a stale
// entry so the next request finds it fresh. It runs after every stale
// serve but never queues: it needs a free refresh slot and a free
// limiter slot right now, otherwise it does nothing — under a shed the
// limiter is full, so foreground traffic keeps the capacity and the
// stale body keeps being served; after a transient compute failure the
// freed slot is usually available and the retry proceeds.
func (s *Server) tryRefresh(lim *resilience.Limiter, key, path string, compute func(ctx context.Context) (any, error)) {
	select {
	case s.refreshSem <- struct{}{}:
	default:
		return
	}
	rel, ok := lim.TryAdmit()
	if !ok {
		<-s.refreshSem
		return
	}
	s.metrics.StaleRefresh()
	go func() {
		defer func() { <-s.refreshSem }()
		defer rel()
		ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
		defer cancel()
		if _, _, err := s.flight.Do(key, func() ([]byte, error) {
			return s.computeBody(ctx, key, path, compute)
		}); err != nil {
			s.metrics.StaleRefreshFailed()
		}
	}()
}

// respondCached serves a POST evaluation through the cache →
// single-flight → admission → compute pipeline. req must already be
// decoded: its canonical JSON, prefixed by the route, keys both
// layers. Only successful responses are cached; errors pass through
// single-flight (concurrent identical failures fail once) but are
// never remembered. When the computation is shed by admission control
// or fails with a server-side error, a retained stale body — if one
// exists — is served with X-Cache: STALE instead.
func (s *Server) respondCached(w http.ResponseWriter, r *http.Request, route string, req any, heavy bool, compute func(ctx context.Context) (any, error)) {
	// The canonical key is built in a pooled buffer: a cache hit never
	// materializes the key as a string (Get looks the bytes up
	// directly), so the hot path performs no key allocations at all.
	eb := encPool.Get().(*encodeBuffer)
	eb.buf.Reset()
	eb.buf.WriteString(route)
	eb.buf.WriteByte('|')
	if err := eb.enc.Encode(req); err != nil {
		encPool.Put(eb)
		s.fail(w, badRequestf("encoding request key: %v", err))
		return
	}

	if body, cl, ok := s.cache.Get(eb.buf.Bytes()); ok {
		encPool.Put(eb)
		s.metrics.CacheHit()
		h := w.Header()
		h["X-Cache"] = headerHit
		h["Content-Type"] = headerJSON
		h["Content-Length"] = cl
		w.WriteHeader(http.StatusOK)
		w.Write(body)
		return
	}
	key := eb.buf.String()
	encPool.Put(eb)
	s.metrics.CacheMiss()

	// The route label is "METHOD /path"; the injector and the cluster
	// forwarder work with paths.
	path := route
	if _, p, ok := strings.Cut(route, " "); ok {
		path = p
	}

	// Cluster routing: on a local cache miss, a key owned by a peer is
	// forwarded to (or redirected at) its owner, so each key is
	// computed and cached on exactly one node. A request already
	// carrying the single-hop guard header is served locally no matter
	// what this node's ring says — two nodes with divergent membership
	// views must degrade to duplicated work, never to a forwarding
	// loop. A forward that fails at the transport level (owner died
	// between probes) falls through to the local compute path: a dead
	// owner costs latency and a duplicated cache entry, not
	// availability.
	if s.cluster != nil && r.Header.Get(cluster.ForwardHeader) == "" {
		if owner, self := s.cluster.Owner(key); !self {
			if served := s.forwardEval(w, r, owner, path, key); served {
				return
			}
		} else {
			s.cluster.NoteLocal()
		}
	}

	lim := s.cheap
	if heavy {
		lim = s.heavy
	}

	body, shared, err := s.flight.Do(key, func() ([]byte, error) {
		// The request deadline is armed here, around the only work
		// that can stall, so cache hits never pay for a timer context.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		// Admission happens inside the flight so N identical concurrent
		// requests cost one slot; a shed is shared with the
		// piggybackers, each of which falls back to its own stale
		// lookup.
		release, err := lim.Admit(ctx)
		if err != nil {
			return nil, err
		}
		defer release()
		return s.computeBody(ctx, key, path, compute)
	})
	if shared {
		s.metrics.FlightShared()
	}
	if err != nil {
		if staleEligible(err) {
			if body, cl, ok := s.cache.GetAny(key); ok {
				s.metrics.StaleServed()
				s.tryRefresh(lim, key, path, compute)
				h := w.Header()
				h["X-Cache"] = headerStale
				h["Content-Type"] = headerJSON
				h["Content-Length"] = cl
				w.WriteHeader(http.StatusOK)
				w.Write(body)
				return
			}
		}
		switch {
		case errors.Is(err, resilience.ErrShed):
			err = &apiError{
				status:     http.StatusServiceUnavailable,
				msg:        fmt.Sprintf("overloaded: %s admission shed request", lim.Stats().Name),
				retryAfter: int(lim.RetryAfter() / time.Second),
			}
		case errors.Is(err, faultinject.ErrInjected):
			err = &apiError{status: http.StatusServiceUnavailable, msg: err.Error(), retryAfter: 1}
		}
		s.fail(w, err)
		return
	}
	w.Header()["X-Cache"] = headerMiss
	writeBody(w, http.StatusOK, body)
}

// CacheKey returns the canonical cache key of a decoded request on a
// route — route + '|' + the request's canonical JSON encoding
// (newline-terminated), exactly what respondCached builds in its
// pooled buffer. The cluster layer hashes this key onto the ring, and
// the cluster load harness uses CacheKey to route requests
// ownership-aware before sending them.
func CacheKey(route string, req any) (string, error) {
	body, release, err := encodeJSON(req)
	if err != nil {
		return "", err
	}
	key := route + "|" + string(body)
	release()
	return key, nil
}

// forwardEval routes one evaluation request to the owning peer and
// relays the answer. It reports whether a response was written: false
// means the forward failed at the transport level and the caller
// should serve the request locally instead.
//
// Forwards ride the same single-flight group as local computations, so
// N concurrent callers of a hot remote key cost the owner one upstream
// request per flight, not N. With forwarding disabled the caller is
// sent a 307 to the owner instead — the ownership-aware-client
// topology, where a smart client or LB learns the ring from redirects.
func (s *Server) forwardEval(w http.ResponseWriter, r *http.Request, ownerURL, path, key string) bool {
	if !s.cluster.Forwarding() {
		s.cluster.NoteRedirect()
		w.Header()["Location"] = []string{ownerURL + path}
		writeJSON(w, http.StatusTemporaryRedirect,
			errorResponse{Error: "resource owned by peer " + ownerURL})
		return true
	}
	// The canonical JSON after the route prefix is byte-for-byte the
	// body the owner will decode — no re-encoding.
	fwdBody := key[strings.IndexByte(key, '|')+1:]
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	body, shared, err := s.flight.Do(key, func() ([]byte, error) {
		// Eval forwards are deterministic and side-effect-free, so they
		// opt into the cluster retry budget.
		res, err := s.cluster.ForwardOpts(ctx, ownerURL, http.MethodPost, path, []byte(fwdBody),
			cluster.ForwardOptions{Retry: true, Class: "eval"})
		if err != nil {
			return nil, &forwardError{err: err}
		}
		if res.Status != http.StatusOK {
			ae := &apiError{status: res.Status, msg: decodeErrorBody(res.Body)}
			if res.RetryAfter != "" {
				ae.retryAfter, _ = strconv.Atoi(res.RetryAfter)
			}
			return nil, ae
		}
		return res.Body, nil
	})
	if shared {
		s.metrics.FlightShared()
	}
	if err != nil {
		var fe *forwardError
		if errors.As(err, &fe) {
			s.log.Printf("cluster: forward %s to %s failed, serving locally: %v", path, ownerURL, fe.err)
			return false
		}
		s.fail(w, err)
		return true
	}
	w.Header()["X-Cache"] = headerFwd
	writeBody(w, http.StatusOK, body)
	return true
}

// forwardError marks a transport-level forwarding failure — the class
// of error that falls back to local computation.
type forwardError struct{ err error }

func (e *forwardError) Error() string { return e.err.Error() }
func (e *forwardError) Unwrap() error { return e.err }

// decodeErrorBody extracts the "error" field of a peer's JSON error
// body, falling back to the raw body.
func decodeErrorBody(body []byte) string {
	var er errorResponse
	if json.Unmarshal(body, &er) == nil && er.Error != "" {
		return er.Error
	}
	return strings.TrimSpace(string(body))
}
