package server

import (
	"errors"
	"sync"
)

// flightGroup deduplicates concurrent calls with the same key: the
// first caller runs fn, later callers with the same in-flight key
// block and share the first caller's result. Unlike a cache, the entry
// is forgotten as soon as the call completes, so errors are never
// remembered.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	wg   sync.WaitGroup
	body []byte
	err  error
}

// flightTestHookJoin, when set, runs each time a caller joins an
// in-flight call; tests use it to sequence joins deterministically.
var flightTestHookJoin func()

// Do runs fn once per concurrent set of callers sharing key. The
// shared result reports whether this caller piggybacked on another
// caller's execution.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		if flightTestHookJoin != nil {
			flightTestHookJoin()
		}
		c.wg.Wait()
		return c.body, true, c.err
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.calls[key] = c
	g.mu.Unlock()

	// Pre-set the error and complete the call in defers: if fn panics,
	// the panic propagates to this caller's recovery layer, but the
	// piggybacked waiters still wake — with an error — instead of
	// blocking forever on a call that will never finish.
	c.err = errFlightPanicked
	defer func() {
		c.wg.Done()
		g.mu.Lock()
		delete(g.calls, key)
		g.mu.Unlock()
	}()
	body, err = fn()
	c.body, c.err = body, err
	return c.body, false, c.err
}

// errFlightPanicked is what piggybacked callers observe when the
// executing caller's fn panicked out of Do.
var errFlightPanicked = errors.New("singleflight: shared call panicked")
