// Package server is the HTTP serving layer of the framework: a JSON
// REST API over the public ttmcas package, built only on the standard
// library. The supply-chain models are read-mostly and cheap to key —
// a request is fully described by its canonical JSON — so the server
// is built around a keyed LRU response cache with single-flight
// deduplication: concurrent identical evaluations compute once, and
// repeated ones are served from memory. Expensive analyses
// (sensitivity, planning) additionally pass through a bounded worker
// pool so a burst of heavy requests cannot starve the cheap hot path.
package server

import (
	"container/list"
	"sync"
)

// lruCache is a fixed-capacity least-recently-used cache mapping a
// canonical request key to a marshaled response body. It is safe for
// concurrent use.
type lruCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRUCache returns a cache holding up to capacity entries;
// capacity <= 0 disables caching (every Get misses, Put is a no-op).
func newLRUCache(capacity int) *lruCache {
	return &lruCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns the cached body for key and marks it most recently used.
func (c *lruCache) Get(key string) ([]byte, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is full.
func (c *lruCache) Put(key string, body []byte) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	el := c.ll.PushFront(&lruEntry{key: key, body: body})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
