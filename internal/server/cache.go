// Package server is the HTTP serving layer of the framework: a JSON
// REST API over the public ttmcas package, built only on the standard
// library. The supply-chain models are read-mostly and cheap to key —
// a request is fully described by its canonical JSON — so the server
// is built around a keyed response cache with single-flight
// deduplication: concurrent identical evaluations compute once, and
// repeated ones are served from memory. The cache is sharded (per-shard
// locks keyed by an FNV-1a hash, so concurrent hits on different keys
// never contend) and byte-budgeted (eviction is by total cached body
// bytes, not entry count, so one curve response cannot silently crowd
// out a thousand scalar ones). Expensive analyses (sensitivity,
// planning) additionally pass through a bounded worker pool so a burst
// of heavy requests cannot starve the cheap hot path.
package server

import (
	"container/list"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// shardedCache is a byte-budgeted least-recently-used response cache
// split into power-of-two shards. Each shard owns an independent mutex,
// LRU list and byte budget, so Get/Put on different keys proceed in
// parallel; a key always maps to the same shard via FNV-1a, so
// per-entry operations stay linearizable.
//
// Entries optionally age through two TTLs. Within freshTTL an entry is
// served directly (Get hits). Past freshTTL but within staleTTL the
// entry no longer hits — the caller recomputes — but it is retained
// and reachable through GetAny, the degraded-mode read the server uses
// to serve a stale body when recomputation is shed or fails. Past
// freshTTL+staleTTL the entry is dropped lazily on the next lookup.
// freshTTL == 0 (the default) disables aging entirely: entries stay
// fresh until evicted and the hot path never reads the clock.
type shardedCache struct {
	shards   []cacheShard
	mask     uint32
	disabled bool

	freshTTL time.Duration
	staleTTL time.Duration
	// now is the clock, swappable in tests.
	now func() time.Time

	evictions atomic.Uint64
	expired   atomic.Uint64
}

// cacheShard is one lock domain of the cache: an LRU list over the
// shard's entries plus the running total of their body bytes.
type cacheShard struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List
	items  map[string]*list.Element
	_      [24]byte // pad to its own cache line(s); shards sit in one slice
}

type cacheEntry struct {
	key  string
	body []byte
	// cl is the precomputed Content-Length header value, built once at
	// insert so serving a hit allocates nothing for headers.
	cl []string
	// stored is when the body was inserted or last refreshed; the
	// aging TTLs are measured from it.
	stored time.Time
}

// cacheStats is a point-in-time aggregate across shards, surfaced in
// /metrics.
type cacheStats struct {
	Entries     int
	Bytes       int64
	BudgetBytes int64
	Shards      int
	Evictions   uint64
	Expired     uint64
}

// newShardedCache returns a cache bounded to roughly totalBytes of
// cached response bodies across `shards` shards (rounded up to a power
// of two). totalBytes <= 0 disables caching: every Get misses and Put
// is a no-op. freshTTL/staleTTL configure entry aging (0 disables it).
func newShardedCache(totalBytes int64, shards int, freshTTL, staleTTL time.Duration) *shardedCache {
	if totalBytes <= 0 {
		return &shardedCache{disabled: true, now: time.Now}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := totalBytes / int64(n)
	if per < 1 {
		per = 1
	}
	c := &shardedCache{
		shards:   make([]cacheShard, n),
		mask:     uint32(n - 1),
		freshTTL: freshTTL,
		staleTTL: staleTTL,
		now:      time.Now,
	}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			budget: per,
			ll:     list.New(),
			items:  make(map[string]*list.Element),
		}
	}
	return c
}

// fnv1a is the 32-bit FNV-1a hash — cheap, inlineable, and plenty
// uniform for shard selection over canonical-JSON keys. Generic over
// string and []byte so the hot path can hash a pooled key buffer
// without converting it to a string first.
func fnv1a[T ~string | ~[]byte](key T) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (c *shardedCache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)&c.mask]
}

// Get returns the cached body for key, with its precomputed
// Content-Length header value, and marks it most recently used. Only
// fresh entries hit: with aging enabled, an entry past its fresh TTL
// reports a miss (so the caller revalidates) but stays reachable via
// GetAny, and an entry past its hard TTL is dropped on the spot. The
// key is a byte slice so a hit — the hot path — performs zero
// allocations: the map lookup through string(key) is resolved by the
// compiler without materializing the string.
func (c *shardedCache) Get(key []byte) (body []byte, cl []string, ok bool) {
	if c.disabled {
		return nil, nil, false
	}
	var now time.Time
	if c.freshTTL > 0 {
		now = c.now() // read the clock outside the shard lock
	}
	s := &c.shards[fnv1a(key)&c.mask]
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.items[string(key)]
	if !found {
		return nil, nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.freshTTL > 0 {
		switch age := now.Sub(e.stored); {
		case age > c.freshTTL+c.staleTTL:
			// Hard-expired: drop lazily so GetAny cannot resurrect it.
			s.ll.Remove(el)
			delete(s.items, e.key)
			s.bytes -= int64(len(e.body))
			c.expired.Add(1)
			return nil, nil, false
		case age > c.freshTTL:
			return nil, nil, false
		}
	}
	s.ll.MoveToFront(el)
	return e.body, e.cl, true
}

// GetAny returns the entry for key whether fresh or stale — the
// degraded-mode read used to serve a retained body when recomputation
// was shed or failed. Hard-expired entries are dropped, never served.
func (c *shardedCache) GetAny(key string) (body []byte, cl []string, ok bool) {
	if c.disabled {
		return nil, nil, false
	}
	var now time.Time
	if c.freshTTL > 0 {
		now = c.now()
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, found := s.items[key]
	if !found {
		return nil, nil, false
	}
	e := el.Value.(*cacheEntry)
	if c.freshTTL > 0 && now.Sub(e.stored) > c.freshTTL+c.staleTTL {
		s.ll.Remove(el)
		delete(s.items, e.key)
		s.bytes -= int64(len(e.body))
		c.expired.Add(1)
		return nil, nil, false
	}
	s.ll.MoveToFront(el)
	return e.body, e.cl, true
}

// Put inserts or refreshes key, then evicts least-recently-used entries
// until the shard's cached body bytes fit its budget. A body larger
// than the whole shard budget is not cached at all (it would evict
// everything and then exceed the budget alone).
func (c *shardedCache) Put(key string, body []byte) {
	if c.disabled {
		return
	}
	s := c.shard(key)
	if int64(len(body)) > s.budget {
		return
	}
	cl := []string{strconv.Itoa(len(body))}
	var now time.Time
	if c.freshTTL > 0 {
		now = c.now()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		e := el.Value.(*cacheEntry)
		s.bytes += int64(len(body)) - int64(len(e.body))
		e.body = body
		e.cl = cl
		e.stored = now // a refresh restarts the freshness clock
		s.ll.MoveToFront(el)
	} else {
		s.items[key] = s.ll.PushFront(&cacheEntry{key: key, body: body, cl: cl, stored: now})
		s.bytes += int64(len(body))
	}
	for s.bytes > s.budget {
		oldest := s.ll.Back()
		e := oldest.Value.(*cacheEntry)
		s.ll.Remove(oldest)
		delete(s.items, e.key)
		s.bytes -= int64(len(e.body))
		c.evictions.Add(1)
	}
}

// Len reports the number of cached entries across shards.
func (c *shardedCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates entry/byte counts and the eviction counter across
// shards.
func (c *shardedCache) Stats() cacheStats {
	st := cacheStats{Shards: len(c.shards), Evictions: c.evictions.Load(), Expired: c.expired.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.ll.Len()
		st.Bytes += s.bytes
		st.BudgetBytes += s.budget
		s.mu.Unlock()
	}
	return st
}
