package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"ttmcas/internal/cluster"
	"ttmcas/internal/jobs"
)

// The batch-job routes: long-running evaluations (Monte-Carlo band
// curves, Sobol sensitivity, sweeps, Pareto fronts, plan portfolios)
// that do not fit the synchronous request/response deadline. Clients
// submit a typed spec, poll progress, and fetch the result when done.
//
//	POST   /v1/jobs             submit a spec           → 202 + job view
//	GET    /v1/jobs             list jobs, newest first → 200
//	GET    /v1/jobs/{id}        job status + progress   → 200
//	GET    /v1/jobs/{id}/result finished job's result   → 200 / 409
//	DELETE /v1/jobs/{id}        cancel (and forget)     → 200

// jobError maps the manager's sentinels onto HTTP statuses.
func jobError(err error) error {
	switch {
	case errors.Is(err, jobs.ErrInvalidSpec):
		return &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	case errors.Is(err, jobs.ErrTooManyJobs):
		// Job capacity frees on the scale of job runtimes, not request
		// latencies; tell clients to back off accordingly.
		return &apiError{status: http.StatusTooManyRequests, msg: err.Error(), retryAfter: 5}
	case errors.Is(err, jobs.ErrNotFound):
		return &apiError{status: http.StatusNotFound, msg: err.Error()}
	case errors.Is(err, jobs.ErrNotFinished):
		return &apiError{status: http.StatusConflict, msg: err.Error()}
	case errors.Is(err, jobs.ErrClosed):
		return &apiError{status: http.StatusServiceUnavailable, msg: err.Error()}
	default:
		return err
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := decodeJSON(r, &spec); err != nil {
		s.fail(w, err)
		return
	}
	// Cluster routing: a job runs on the node owning its canonical spec
	// key, so identical submissions land (and snapshot) on one node and
	// snapshot files never collide across the fleet. A forward that
	// fails at the transport level runs the job locally — placement is
	// an optimization, acceptance is availability.
	if s.cluster != nil && r.Header.Get(cluster.ForwardHeader) == "" {
		key, err := CacheKey("POST /v1/jobs", spec)
		if err == nil {
			if owner, self := s.cluster.Owner(key); !self {
				if s.forwardJob(w, r, owner, key) {
					return
				}
			} else {
				s.cluster.NoteLocal()
			}
		}
	}
	v, err := s.jobs.Submit(spec)
	if err != nil {
		s.fail(w, jobError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

// forwardJob relays a job submission to the owning peer; false means
// the forward failed in transport and the caller should submit
// locally. With forwarding disabled the client is redirected instead.
func (s *Server) forwardJob(w http.ResponseWriter, r *http.Request, ownerURL, key string) bool {
	if !s.cluster.Forwarding() {
		s.cluster.NoteRedirect()
		w.Header()["Location"] = []string{ownerURL + "/v1/jobs"}
		writeJSON(w, http.StatusTemporaryRedirect,
			errorResponse{Error: "jobs owned by peer " + ownerURL})
		return true
	}
	body := key[len("POST /v1/jobs|"):]
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	// Job submission is not idempotent (each accept mints an ID), so it
	// never retries: a transport failure falls back to running locally.
	res, err := s.cluster.ForwardOpts(ctx, ownerURL, http.MethodPost, "/v1/jobs", []byte(body),
		cluster.ForwardOptions{Class: "job"})
	if err != nil {
		s.log.Printf("cluster: job submit forward to %s failed, running locally: %v", ownerURL, err)
		return false
	}
	relayForwarded(w, res)
	return true
}

// scatterJob queries the peers for a job ID this node does not hold —
// job IDs are minted by the owning node, so a client polling through a
// different node needs the lookup fanned out. Peers are tried
// healthiest-first; the first non-404 answer wins. Returns false when
// no peer knows the job (or clustering is off), leaving the local 404.
func (s *Server) scatterJob(w http.ResponseWriter, r *http.Request, path string) bool {
	if s.cluster == nil || !s.cluster.Forwarding() || r.Header.Get(cluster.ForwardHeader) != "" {
		return false
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	for _, u := range s.cluster.PeerURLs(true) {
		// The healthiest-first peer loop is itself the retry here.
		res, err := s.cluster.ForwardOpts(ctx, u, r.Method, path, nil,
			cluster.ForwardOptions{Class: "scatter"})
		if err != nil || res.Status == http.StatusNotFound {
			continue
		}
		relayForwarded(w, res)
		return true
	}
	return false
}

// relayForwarded writes a peer's response through verbatim.
func relayForwarded(w http.ResponseWriter, res cluster.ForwardResult) {
	h := w.Header()
	h["Content-Type"] = headerJSON
	h["Content-Length"] = []string{strconv.Itoa(len(res.Body))}
	if res.RetryAfter != "" {
		h["Retry-After"] = []string{res.RetryAfter}
	}
	w.WriteHeader(res.Status)
	w.Write(res.Body)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	views := s.jobs.List()
	if views == nil {
		views = []jobs.View{}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := s.jobs.Get(id)
	if !ok {
		if s.scatterJob(w, r, "/v1/jobs/"+id) {
			return
		}
		s.fail(w, jobError(jobs.ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// JobResultResponse wraps a finished job's result document with its
// identity and terminal status. Result is null for failed and
// cancelled jobs; Error says why.
type JobResultResponse struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Status jobs.Status     `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	raw, v, err := s.jobs.Result(id)
	if err != nil {
		if errors.Is(err, jobs.ErrNotFound) && s.scatterJob(w, r, "/v1/jobs/"+id+"/result") {
			return
		}
		s.fail(w, jobError(err))
		return
	}
	writeJSON(w, http.StatusOK, JobResultResponse{
		ID: v.ID, Kind: v.Kind, Status: v.Status, Error: v.Error, Result: raw,
	})
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	// Cancel running jobs but keep them listed so clients can observe
	// the cancellation; remove finished jobs outright.
	id := r.PathValue("id")
	v, ok := s.jobs.Get(id)
	if !ok {
		if s.scatterJob(w, r, "/v1/jobs/"+id) {
			return
		}
		s.fail(w, jobError(jobs.ErrNotFound))
		return
	}
	var err error
	if v.Status.Finished() {
		v, err = s.jobs.Remove(id)
	} else {
		v, err = s.jobs.Cancel(id)
	}
	if err != nil {
		s.fail(w, jobError(err))
		return
	}
	writeJSON(w, http.StatusOK, v)
}
