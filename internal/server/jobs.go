package server

import (
	"encoding/json"
	"errors"
	"net/http"

	"ttmcas/internal/jobs"
)

// The batch-job routes: long-running evaluations (Monte-Carlo band
// curves, Sobol sensitivity, sweeps, Pareto fronts, plan portfolios)
// that do not fit the synchronous request/response deadline. Clients
// submit a typed spec, poll progress, and fetch the result when done.
//
//	POST   /v1/jobs             submit a spec           → 202 + job view
//	GET    /v1/jobs             list jobs, newest first → 200
//	GET    /v1/jobs/{id}        job status + progress   → 200
//	GET    /v1/jobs/{id}/result finished job's result   → 200 / 409
//	DELETE /v1/jobs/{id}        cancel (and forget)     → 200

// jobError maps the manager's sentinels onto HTTP statuses.
func jobError(err error) error {
	switch {
	case errors.Is(err, jobs.ErrInvalidSpec):
		return &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
	case errors.Is(err, jobs.ErrTooManyJobs):
		// Job capacity frees on the scale of job runtimes, not request
		// latencies; tell clients to back off accordingly.
		return &apiError{status: http.StatusTooManyRequests, msg: err.Error(), retryAfter: 5}
	case errors.Is(err, jobs.ErrNotFound):
		return &apiError{status: http.StatusNotFound, msg: err.Error()}
	case errors.Is(err, jobs.ErrNotFinished):
		return &apiError{status: http.StatusConflict, msg: err.Error()}
	case errors.Is(err, jobs.ErrClosed):
		return &apiError{status: http.StatusServiceUnavailable, msg: err.Error()}
	default:
		return err
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	if err := decodeJSON(r, &spec); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.jobs.Submit(spec)
	if err != nil {
		s.fail(w, jobError(err))
		return
	}
	writeJSON(w, http.StatusAccepted, v)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	views := s.jobs.List()
	if views == nil {
		views = []jobs.View{}
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	v, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, jobError(jobs.ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// JobResultResponse wraps a finished job's result document with its
// identity and terminal status. Result is null for failed and
// cancelled jobs; Error says why.
type JobResultResponse struct {
	ID     string          `json:"id"`
	Kind   string          `json:"kind"`
	Status jobs.Status     `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	raw, v, err := s.jobs.Result(r.PathValue("id"))
	if err != nil {
		s.fail(w, jobError(err))
		return
	}
	writeJSON(w, http.StatusOK, JobResultResponse{
		ID: v.ID, Kind: v.Kind, Status: v.Status, Error: v.Error, Result: raw,
	})
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	// Cancel running jobs but keep them listed so clients can observe
	// the cancellation; remove finished jobs outright.
	id := r.PathValue("id")
	v, ok := s.jobs.Get(id)
	if !ok {
		s.fail(w, jobError(jobs.ErrNotFound))
		return
	}
	var err error
	if v.Status.Finished() {
		v, err = s.jobs.Remove(id)
	} else {
		v, err = s.jobs.Cancel(id)
	}
	if err != nil {
		s.fail(w, jobError(err))
		return
	}
	writeJSON(w, http.StatusOK, v)
}
