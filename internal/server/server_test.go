package server

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp.StatusCode, string(b)
}

// TestConcurrentIdenticalTTM is the acceptance check for the caching
// layer: many concurrent identical requests must all observe the same
// correct answer while the model is evaluated far fewer times than
// requests are served.
func TestConcurrentIdenticalTTM(t *testing.T) {
	s := testServer(t, Config{})
	// Hold evaluations briefly so the burst overlaps one in-flight
	// computation rather than racing past each other.
	s.slowEval = func() { time.Sleep(30 * time.Millisecond) }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 60
	body := `{"design":"a11","node":"28nm","n":10e6}`
	var wg sync.WaitGroup
	statuses := make([]int, n)
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/ttm", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			statuses[i] = resp.StatusCode
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d returned a different body:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var out TTMResponse
	if err := json.Unmarshal([]byte(bodies[0]), &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if out.TTMWeeks <= 0 || out.CriticalNode != "28nm" {
		t.Errorf("unexpected answer: %+v", out)
	}
	sum := out.DesignWeeks + out.TapeoutWeeks + out.FabricationWeeks + out.PackagingWeeks
	if diff := out.TTMWeeks - sum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("phase breakdown inconsistent: %v vs %v", out.TTMWeeks, sum)
	}

	m := s.Metrics()
	if served := m.RequestCount("POST /v1/ttm", 200); served != n {
		t.Errorf("served = %d, want %d", served, n)
	}
	if evals := m.Evaluations(); evals >= n {
		t.Errorf("model evaluated %d times for %d requests; caching had no effect", evals, n)
	}
	if m.CacheHits()+m.Shared() == 0 {
		t.Error("neither cache hits nor singleflight sharing recorded")
	}
	t.Logf("served=%d evaluations=%d cache_hits=%d shared=%d",
		n, m.Evaluations(), m.CacheHits(), m.Shared())
}

// TestGracefulShutdown is the acceptance check for draining: a slow
// in-flight request completes with 200 after the serve context is
// canceled (SIGTERM), while new connections are refused.
func TestGracefulShutdown(t *testing.T) {
	s := testServer(t, Config{ShutdownGrace: 5 * time.Second})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slowEval = func() {
		once.Do(func() { close(started) })
		<-release
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	addr := ln.Addr().String()
	type result struct {
		status int
		body   string
		err    error
	}
	slow := make(chan result, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/ttm", "application/json",
			strings.NewReader(`{"design":"a11","node":"28nm","n":1e6}`))
		if err != nil {
			slow <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		slow <- result{status: resp.StatusCode, body: string(b)}
	}()

	<-started
	cancel() // the SIGTERM path: ListenAndServe cancels this context

	// New connections must be refused once the listener closes.
	refused := false
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		conn, err := net.DialTimeout("tcp", addr, 100*time.Millisecond)
		if err != nil {
			refused = true
			break
		}
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
	if !refused {
		t.Error("new connections still accepted after shutdown began")
	}

	close(release)
	r := <-slow
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Errorf("in-flight request: status %d, body %s", r.status, r.body)
	}
	if err := <-serveDone; err != nil {
		t.Errorf("Serve returned %v", err)
	}
}

// TestWorkerPoolSaturation checks that the bounded pool sheds heavy
// load with 503 instead of queueing without limit.
func TestWorkerPoolSaturation(t *testing.T) {
	s := testServer(t, Config{MaxConcurrent: 1, RequestTimeout: 200 * time.Millisecond})
	acquired := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slowEval = func() {
		once.Do(func() { close(acquired) })
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sensitivity", "application/json",
			strings.NewReader(`{"design":"a11","node":"28nm","n":1e6,"samples":8}`))
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-acquired

	status, body := postJSON(t, ts.URL+"/v1/sensitivity",
		`{"design":"a11","node":"28nm","n":1e6,"samples":16}`)
	if status != http.StatusServiceUnavailable {
		t.Errorf("saturated pool: status %d, body %s, want 503", status, body)
	}

	close(release)
	if got := <-first; got != http.StatusOK {
		t.Errorf("first heavy request: status %d, want 200", got)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status    string  `json:"status"`
		NodeID    string  `json:"node_id"`
		UptimeS   float64 `json:"uptime_s"`
		RingEpoch uint64  `json:"ring_epoch"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d, decode err %v", resp.StatusCode, err)
	}
	if health.Status != "ok" || health.NodeID != "single" || health.RingEpoch != 0 {
		t.Errorf("/healthz = %+v, want status ok, node single, epoch 0", health)
	}

	// Generate traffic so the exposition has content: one miss, one hit.
	body := `{"design":"chipA","n":1e6}`
	postJSON(t, ts.URL+"/v1/ttm", body)
	postJSON(t, ts.URL+"/v1/ttm", body)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	out := string(b)
	for _, want := range []string{
		`ttmcas_requests_total{route="POST /v1/ttm",code="200"} 2`,
		`ttmcas_requests_total{route="GET /healthz",code="200"} 1`,
		`ttmcas_request_duration_seconds_count{route="POST /v1/ttm"} 2`,
		"ttmcas_cache_hits_total 1",
		"ttmcas_cache_misses_total 1",
		"ttmcas_model_evaluations_total 1",
		"ttmcas_inflight_requests",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}
}

func TestIdenticalRequestsHitCache(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"design":"zen2","n":10e6}`
	st1, b1 := postJSON(t, ts.URL+"/v1/cost", body)
	st2, b2 := postJSON(t, ts.URL+"/v1/cost", body)
	if st1 != 200 || st2 != 200 || b1 != b2 {
		t.Fatalf("responses differ: %d %s vs %d %s", st1, b1, st2, b2)
	}
	m := s.Metrics()
	if m.Evaluations() != 1 || m.CacheHits() != 1 {
		t.Errorf("evaluations=%d hits=%d, want 1/1", m.Evaluations(), m.CacheHits())
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"design":"nope","n":1e6}`
	st1, _ := postJSON(t, ts.URL+"/v1/ttm", body)
	st2, _ := postJSON(t, ts.URL+"/v1/ttm", body)
	if st1 != http.StatusBadRequest || st2 != http.StatusBadRequest {
		t.Fatalf("statuses %d, %d, want 400", st1, st2)
	}
	if s.cache.Len() != 0 {
		t.Errorf("error response was cached (%d entries)", s.cache.Len())
	}
}

func TestRequestBodyLimit(t *testing.T) {
	s := testServer(t, Config{MaxBodyBytes: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"design":"a11","n":1e6,"node":"` + strings.Repeat("x", 256) + `"}`
	status, _ := postJSON(t, ts.URL+"/v1/ttm", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d, want 413", status)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/ttm")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/ttm = %d, want 405", resp.StatusCode)
	}
}
