package server

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns a handler exposing the standard net/http/pprof
// endpoints under /debug/pprof/. It is deliberately not part of the
// API route table: profiling is opted into on its own listener
// (ttmcas-serve -pprof-addr), never on the public service address, so
// the default deployment exposes nothing.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
