package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := newLRUCache(2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if v, ok := c.Get("a"); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.Put("c", []byte("3"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRUCache(2)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if v, _ := c.Get("a"); string(v) != "new" {
		t.Errorf("Get(a) = %q, want new", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRUCache(0)
	c.Put("a", []byte("1"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache must never hit")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d, want 0", c.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRUCache(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%32)
				c.Put(key, []byte(key))
				if v, ok := c.Get(key); ok && string(v) != key {
					t.Errorf("Get(%s) = %q", key, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}
