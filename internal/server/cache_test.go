package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// singleShard returns a cache with one shard so LRU ordering is
// globally observable in tests.
func singleShard(budget int64) *shardedCache { return newShardedCache(budget, 1, 0, 0) }

func TestCacheBasics(t *testing.T) {
	c := singleShard(2) // two one-byte bodies fit, a third evicts
	if _, _, ok := c.Get([]byte("a")); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	if v, _, ok := c.Get([]byte("a")); !ok || string(v) != "1" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	// "a" is now most recent; inserting "c" must evict "b".
	c.Put("c", []byte("3"))
	if _, _, ok := c.Get([]byte("b")); ok {
		t.Error("b should have been evicted")
	}
	if _, _, ok := c.Get([]byte("a")); !ok {
		t.Error("a should have survived")
	}
	if _, _, ok := c.Get([]byte("c")); !ok {
		t.Error("c should be present")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if st := c.Stats(); st.Evictions != 1 || st.Bytes != 2 {
		t.Errorf("Stats = %+v, want 1 eviction and 2 bytes", st)
	}
}

func TestCacheUpdateExisting(t *testing.T) {
	c := singleShard(16)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new!"))
	if v, _, _ := c.Get([]byte("a")); string(v) != "new!" {
		t.Errorf("Get(a) = %q, want new!", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	if st := c.Stats(); st.Bytes != 4 {
		t.Errorf("Bytes = %d, want 4 (replacement must not double-count)", st.Bytes)
	}
}

func TestCacheEvictsByBytesNotEntries(t *testing.T) {
	c := singleShard(10)
	c.Put("big", []byte(strings.Repeat("x", 8)))
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2")) // 8+1+1 = 10 bytes: everything fits
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// One more byte must push out the least-recently-used entry —
	// which is "big", freeing eight bytes at once.
	c.Put("c", []byte("3"))
	if _, _, ok := c.Get([]byte("big")); ok {
		t.Error("big should have been evicted to fit the budget")
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d, want 3 (a, b, c)", c.Len())
	}
}

func TestCacheRejectsOversizedBody(t *testing.T) {
	c := singleShard(4)
	c.Put("a", []byte("1"))
	c.Put("huge", []byte("xxxxxxxx"))
	if _, _, ok := c.Get([]byte("huge")); ok {
		t.Error("a body larger than the shard budget must not be cached")
	}
	if _, _, ok := c.Get([]byte("a")); !ok {
		t.Error("an oversized Put must not evict existing entries")
	}
}

func TestCacheDisabled(t *testing.T) {
	for _, budget := range []int64{0, -1} {
		c := newShardedCache(budget, 4, 0, 0)
		c.Put("a", []byte("1"))
		if _, _, ok := c.Get([]byte("a")); ok {
			t.Errorf("budget %d: disabled cache must never hit", budget)
		}
		if c.Len() != 0 {
			t.Errorf("budget %d: Len = %d, want 0", budget, c.Len())
		}
	}
}

func TestCacheShardRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		c := newShardedCache(1<<20, tc.ask, 0, 0)
		if got := len(c.shards); got != tc.want {
			t.Errorf("shards(%d) = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestCacheKeyStableShard(t *testing.T) {
	c := newShardedCache(1<<20, 8, 0, 0)
	for _, key := range []string{"", "a", "POST /v1/ttm|{...}", strings.Repeat("k", 100)} {
		if c.shard(key) != c.shard(key) {
			t.Fatalf("shard(%q) not stable", key)
		}
	}
}

// TestCacheTTLAging walks an entry through the two-TTL lifecycle with
// a fake clock: fresh (Get hits), stale (Get misses, GetAny serves),
// hard-expired (dropped everywhere), and refresh restarting the clock.
func TestCacheTTLAging(t *testing.T) {
	c := newShardedCache(1<<20, 1, 100*time.Millisecond, 200*time.Millisecond)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Put("a", []byte("body"))
	if _, _, ok := c.Get([]byte("a")); !ok {
		t.Fatal("fresh entry must hit")
	}

	now = now.Add(150 * time.Millisecond) // past fresh, within stale
	if _, _, ok := c.Get([]byte("a")); ok {
		t.Fatal("stale entry must miss Get")
	}
	if b, cl, ok := c.GetAny("a"); !ok || string(b) != "body" || len(cl) != 1 {
		t.Fatalf("GetAny stale = %q, %v, %v; want the retained body", b, cl, ok)
	}

	// A refresh restarts the freshness clock.
	c.Put("a", []byte("body"))
	if _, _, ok := c.Get([]byte("a")); !ok {
		t.Fatal("refreshed entry must hit again")
	}

	now = now.Add(301 * time.Millisecond) // past fresh+stale
	if _, _, ok := c.GetAny("a"); ok {
		t.Fatal("hard-expired entry must not be served, even degraded")
	}
	if st := c.Stats(); st.Expired != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("after expiry: %+v, want 1 expired, empty cache", st)
	}
}

// TestCacheTTLDisabledNeverExpires pins the default: freshTTL == 0
// means entries never age and Get/GetAny behave identically.
func TestCacheTTLDisabledNeverExpires(t *testing.T) {
	c := newShardedCache(1<<20, 1, 0, 0)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	c.Put("a", []byte("body"))
	now = now.Add(1000 * time.Hour)
	if _, _, ok := c.Get([]byte("a")); !ok {
		t.Fatal("entry aged out with TTLs disabled")
	}
	if _, _, ok := c.GetAny("a"); !ok {
		t.Fatal("GetAny lost an entry with TTLs disabled")
	}
}

// TestCacheConcurrent hammers parallel Get/Put/evict across shards
// under -race, then checks the byte-budget invariant: the sum of
// cached body lengths never exceeds the configured budget.
func TestCacheConcurrent(t *testing.T) {
	const budget = 1 << 10
	c := newShardedCache(budget, 4, 0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%64)
				body := []byte(strings.Repeat("v", 1+(g*13+i)%40))
				c.Put(key, body)
				if v, _, ok := c.Get([]byte(key)); ok && v[0] != 'v' {
					t.Errorf("Get(%s) = %q", key, v)
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Bytes > budget {
		t.Errorf("cached bytes %d exceed budget %d", st.Bytes, budget)
	}
	// The tracked byte total must equal the actual stored body bytes.
	var actual int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; el = el.Next() {
			actual += int64(len(el.Value.(*cacheEntry).body))
		}
		if s.bytes > s.budget {
			t.Errorf("shard %d: bytes %d exceed shard budget %d", i, s.bytes, s.budget)
		}
		s.mu.Unlock()
	}
	if actual != st.Bytes {
		t.Errorf("tracked bytes %d != actual stored bytes %d", st.Bytes, actual)
	}
}
