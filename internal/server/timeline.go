package server

import (
	"context"
	"errors"
	"net/http"

	"ttmcas"
)

// The timeline routes: the scenario composer over HTTP.
//
//	POST /v1/scenarios  evaluate a composed timeline inline → 200
//	GET  /v1/episodes   list the historical-episode library → 200
//
// Inline evaluation is bounded by MaxTimelineSteps; longer timelines
// belong on the batch-job route (POST /v1/jobs, kind "timeline"),
// which chunks the steps, reports progress, and routes across the
// cluster like any other job.

// TimelineRequest is the body of POST /v1/scenarios: a design, a chip
// count, and either an inline timeline spec or a named episode from
// the library.
type TimelineRequest struct {
	// Design names a built-in design; mutually exclusive with Spec.
	Design string `json:"design,omitempty"`
	// Spec is an inline design description.
	Spec *DesignSpec `json:"spec,omitempty"`
	// Node, when set, re-targets the design to this process node.
	Node string `json:"node,omitempty"`
	// N is the number of final chips.
	N float64 `json:"n"`
	// Timeline is an inline timeline spec; mutually exclusive with
	// Episode.
	Timeline *ttmcas.TimelineSpec `json:"timeline,omitempty"`
	// Episode names a built-in historical episode (see /v1/episodes).
	Episode string `json:"episode,omitempty"`
	// InFlight also runs the discrete-event in-flight study: an order
	// placed at week 0, simulated through the composed capacity curve.
	InFlight bool `json:"in_flight,omitempty"`
}

// timelineSpec resolves the inline-spec/episode pair, mirroring the
// batch-job resolution so the two routes accept the same requests.
func (req TimelineRequest) timelineSpec() (ttmcas.TimelineSpec, error) {
	switch {
	case req.Timeline != nil && req.Episode != "":
		return ttmcas.TimelineSpec{}, badRequestf(`"timeline" and "episode" are mutually exclusive`)
	case req.Timeline != nil:
		return *req.Timeline, nil
	case req.Episode != "":
		ep, ok := ttmcas.FindTimelineEpisode(req.Episode)
		if !ok {
			return ttmcas.TimelineSpec{}, badRequestf("unknown episode %q", req.Episode)
		}
		return ep.Spec, nil
	default:
		return ttmcas.TimelineSpec{}, badRequestf(`request needs a "timeline" spec or an "episode" name`)
	}
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	var req TimelineRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	s.respondCached(w, r, "POST /v1/scenarios", req, true, func(ctx context.Context) (any, error) {
		d, err := resolveDesign(req.Design, req.Spec, req.Node)
		if err != nil {
			return nil, err
		}
		if req.N <= 0 {
			return nil, badRequestf(`"n" (number of chips) must be positive`)
		}
		spec, err := req.timelineSpec()
		if err != nil {
			return nil, err
		}
		tl, err := ttmcas.CompileTimeline(spec, ttmcas.TimelineLimits{
			MaxSteps:    s.cfg.MaxTimelineSteps,
			MaxSegments: s.cfg.MaxCurvePoints,
		})
		if err != nil {
			if errors.Is(err, ttmcas.ErrInvalidTimelineSpec) {
				msg := err.Error()
				if spec.StepCount() > s.cfg.MaxTimelineSteps {
					msg += `; longer timelines run as batch jobs (POST /v1/jobs, kind "timeline")`
				}
				return nil, unprocessablef("%s", msg)
			}
			return nil, err
		}
		res, err := ttmcas.EvaluateTimeline(ctx, d, req.N, tl, ttmcas.TimelineOptions{InFlight: req.InFlight})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, unprocessablef("%v", err)
		}
		return res, nil
	})
}

func (s *Server) handleEpisodes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ttmcas.TimelineEpisodes())
}
