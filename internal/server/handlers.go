package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"time"

	"ttmcas"
	"ttmcas/internal/cluster"
)

// ---- request types -------------------------------------------------

// EvalRequest is the shared request body of the evaluation routes:
// a design (by built-in name or inline spec), a chip count, and the
// market conditions to evaluate under — mirroring the CLI flags.
type EvalRequest struct {
	// Design names a built-in design (a11, zen2, ariane16, raven,
	// chipA, chipB); mutually exclusive with Spec.
	Design string `json:"design,omitempty"`
	// Spec is an inline design description.
	Spec *DesignSpec `json:"spec,omitempty"`
	// Node, when set, re-targets the design to this process node
	// ("28nm" or "28").
	Node string `json:"node,omitempty"`
	// N is the number of final chips.
	N float64 `json:"n"`
	// Scenario selects a named market scenario and overrides the
	// capacity/queue fields below.
	Scenario string `json:"scenario,omitempty"`
	// Capacity is the global production capacity fraction in (0, 1];
	// zero means full capacity.
	Capacity float64 `json:"capacity,omitempty"`
	// QueueWeeks quotes the same foundry lead time at every node.
	QueueWeeks float64 `json:"queue_weeks,omitempty"`
	// NodeCapacity scales individual nodes ("12nm": 0.6) on top of
	// Capacity; zero is a valid value (the line is down).
	NodeCapacity map[string]float64 `json:"node_capacity,omitempty"`
	// NodeQueueWeeks quotes per-node lead times ("7nm": 4).
	NodeQueueWeeks map[string]float64 `json:"node_queue_weeks,omitempty"`
	// Curve, for /v1/cas only, evaluates the CAS/TTM curve at these
	// global capacity fractions instead of a single point.
	Curve []float64 `json:"curve,omitempty"`
	// Samples, for /v1/sensitivity only, is the Saltelli base sample
	// count (default 512, max 8192).
	Samples int `json:"samples,omitempty"`
	// Variation, for /v1/sensitivity only, is the uniform half-range
	// of the input multipliers (default 0.10).
	Variation float64 `json:"variation,omitempty"`
	// Seed, for /v1/sensitivity only, fixes the sample stream.
	Seed int64 `json:"seed,omitempty"`
}

// DesignSpec is an inline design: the JSON shape of ttmcas.Design with
// process nodes as strings and explicit units in the field names.
type DesignSpec struct {
	Name            string    `json:"name,omitempty"`
	Dies            []DieSpec `json:"dies"`
	TapeoutTeam     int       `json:"tapeout_team,omitempty"`
	DesignTimeWeeks float64   `json:"design_time_weeks,omitempty"`
}

// DieSpec is one die type of an inline design.
type DieSpec struct {
	Name string `json:"name,omitempty"`
	// Node is the process node the die is fabricated at ("7nm").
	Node   string      `json:"node"`
	Blocks []BlockSpec `json:"blocks,omitempty"`
	// TotalTransistors and UniqueTransistors set N_TT and N_UT
	// directly when Blocks is empty.
	TotalTransistors  float64 `json:"total_transistors,omitempty"`
	UniqueTransistors float64 `json:"unique_transistors,omitempty"`
	CountPerPackage   int     `json:"count_per_package,omitempty"`
	AreaMM2           float64 `json:"area_mm2,omitempty"`
	MinAreaMM2        float64 `json:"min_area_mm2,omitempty"`
	YieldOverride     float64 `json:"yield_override,omitempty"`
	SkipTapeout       bool    `json:"skip_tapeout,omitempty"`
}

// BlockSpec is one reusable block of an inline die.
type BlockSpec struct {
	Name        string  `json:"name,omitempty"`
	Transistors float64 `json:"transistors"`
	Instances   int     `json:"instances,omitempty"`
	PreVerified bool    `json:"pre_verified,omitempty"`
}

// PlanRequest asks /v1/plan for a manufacturing plan recommendation.
type PlanRequest struct {
	Design        string      `json:"design,omitempty"`
	Spec          *DesignSpec `json:"spec,omitempty"`
	N             float64     `json:"n"`
	DeadlineWeeks float64     `json:"deadline_weeks,omitempty"`
	BudgetUSD     float64     `json:"budget_usd,omitempty"`
	MinCAS        float64     `json:"min_cas,omitempty"`
	// Multi also explores two-process splits; defaults to true.
	Multi *bool `json:"multi,omitempty"`
	// Top bounds the ranked alternatives returned (default 8).
	Top int `json:"top,omitempty"`
}

// ---- request resolution --------------------------------------------

func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return err
		}
		return badRequestf("decoding request: %v", err)
	}
	if dec.More() {
		return badRequestf("decoding request: trailing data after JSON body")
	}
	return nil
}

func (spec *DesignSpec) design() (ttmcas.Design, error) {
	if len(spec.Dies) == 0 {
		return ttmcas.Design{}, badRequestf("inline spec needs at least one die")
	}
	d := ttmcas.Design{
		Name:        spec.Name,
		TapeoutTeam: spec.TapeoutTeam,
		DesignTime:  ttmcas.Weeks(spec.DesignTimeWeeks),
	}
	if d.Name == "" {
		d.Name = "inline"
	}
	for i, ds := range spec.Dies {
		node, err := ttmcas.ParseNode(ds.Node)
		if err != nil {
			return ttmcas.Design{}, badRequestf("die %d: %v", i, err)
		}
		die := ttmcas.Die{
			Name:            ds.Name,
			Node:            node,
			NTT:             ttmcas.Transistors(ds.TotalTransistors),
			NUT:             ttmcas.Transistors(ds.UniqueTransistors),
			CountPerPackage: ds.CountPerPackage,
			AreaOverride:    ttmcas.MM2(ds.AreaMM2),
			MinArea:         ttmcas.MM2(ds.MinAreaMM2),
			YieldOverride:   ds.YieldOverride,
			SkipTapeout:     ds.SkipTapeout,
		}
		for _, bs := range ds.Blocks {
			die.Blocks = append(die.Blocks, ttmcas.Block{
				Name:        bs.Name,
				Transistors: ttmcas.Transistors(bs.Transistors),
				Instances:   bs.Instances,
				PreVerified: bs.PreVerified,
			})
		}
		d.Dies = append(d.Dies, die)
	}
	if err := d.Validate(); err != nil {
		return ttmcas.Design{}, unprocessablef("invalid design: %v", err)
	}
	return d, nil
}

// resolveDesign turns the name/spec pair into a design, applying the
// optional re-target node.
func resolveDesign(name string, spec *DesignSpec, node string) (ttmcas.Design, error) {
	var d ttmcas.Design
	switch {
	case name != "" && spec != nil:
		return d, badRequestf(`"design" and "spec" are mutually exclusive`)
	case spec != nil:
		var err error
		if d, err = spec.design(); err != nil {
			return d, err
		}
	case name != "":
		var err error
		if d, err = ttmcas.DesignByName(name); err != nil {
			return d, badRequestf("%v", err)
		}
	default:
		return d, badRequestf(`request needs a "design" name or an inline "spec"`)
	}
	if node != "" {
		n, err := ttmcas.ParseNode(node)
		if err != nil {
			return d, badRequestf("%v", err)
		}
		d = d.Retarget(n)
	}
	return d, nil
}

// conditions builds the market conditions, mirroring the CLI: a named
// scenario overrides the explicit capacity/queue fields.
func (req EvalRequest) conditions() (ttmcas.Conditions, error) {
	if req.Scenario != "" {
		s, ok := ttmcas.FindScenario(req.Scenario)
		if !ok {
			return ttmcas.Conditions{}, badRequestf("unknown scenario %q", req.Scenario)
		}
		return s.Conditions, nil
	}
	c := ttmcas.FullCapacity()
	if req.Capacity != 0 {
		if req.Capacity < 0 || req.Capacity > 1 {
			return c, badRequestf("capacity %v outside (0, 1]", req.Capacity)
		}
		c = c.AtCapacity(req.Capacity)
	}
	if req.QueueWeeks < 0 {
		return c, badRequestf("negative queue_weeks %v", req.QueueWeeks)
	}
	if req.QueueWeeks > 0 {
		c = c.WithQueueAll(ttmcas.Weeks(req.QueueWeeks))
	}
	for name, f := range req.NodeCapacity {
		n, err := ttmcas.ParseNode(name)
		if err != nil {
			return c, badRequestf("node_capacity: %v", err)
		}
		if f < 0 || f > 1 {
			return c, badRequestf("node_capacity[%s] = %v outside [0, 1]", name, f)
		}
		c = c.WithNodeCapacity(n, f)
	}
	for name, w := range req.NodeQueueWeeks {
		n, err := ttmcas.ParseNode(name)
		if err != nil {
			return c, badRequestf("node_queue_weeks: %v", err)
		}
		if w < 0 {
			return c, badRequestf("node_queue_weeks[%s] = %v is negative", name, w)
		}
		c = c.WithQueue(n, ttmcas.Weeks(w))
	}
	return c, nil
}

func (req EvalRequest) resolve() (ttmcas.Design, ttmcas.Conditions, error) {
	d, err := resolveDesign(req.Design, req.Spec, req.Node)
	if err != nil {
		return d, ttmcas.Conditions{}, err
	}
	if req.N <= 0 {
		return d, ttmcas.Conditions{}, badRequestf(`"n" (number of chips) must be positive`)
	}
	c, err := req.conditions()
	return d, c, err
}

// ---- response types ------------------------------------------------

// TTMResponse is the JSON form of a full TTM evaluation.
type TTMResponse struct {
	Design           string         `json:"design"`
	Chips            float64        `json:"chips"`
	Conditions       string         `json:"conditions"`
	DesignWeeks      float64        `json:"design_weeks"`
	TapeoutWeeks     float64        `json:"tapeout_weeks"`
	FabricationWeeks float64        `json:"fabrication_weeks"`
	PackagingWeeks   float64        `json:"packaging_weeks"`
	TTMWeeks         float64        `json:"ttm_weeks"`
	CriticalNode     string         `json:"critical_node"`
	Dies             []DieResponse  `json:"dies"`
	Nodes            []NodeResponse `json:"nodes"`
}

// DieResponse details one die type of a TTM evaluation.
type DieResponse struct {
	Name          string  `json:"name"`
	Node          string  `json:"node"`
	AreaMM2       float64 `json:"area_mm2"`
	Yield         float64 `json:"yield"`
	GrossPerWafer float64 `json:"gross_per_wafer"`
	Wafers        float64 `json:"wafers"`
}

// NodeResponse decomposes one node's fabrication phase.
type NodeResponse struct {
	Node            string  `json:"node"`
	Wafers          float64 `json:"wafers"`
	QueueWeeks      float64 `json:"queue_weeks"`
	ProductionWeeks float64 `json:"production_weeks"`
	TotalWeeks      float64 `json:"total_weeks"`
}

// CASResponse reports a Chip Agility Score, and optionally the
// CAS/TTM curve when the request asked for one.
type CASResponse struct {
	Design      string             `json:"design"`
	Chips       float64            `json:"chips"`
	Conditions  string             `json:"conditions"`
	CAS         float64            `json:"cas"`
	Derivatives map[string]float64 `json:"derivatives,omitempty"`
	Curve       []CASPointResponse `json:"curve,omitempty"`
}

// CASPointResponse is one sample of a CAS/TTM curve. TTMWeeks is
// omitted (and Stalled set) where production never completes.
type CASPointResponse struct {
	Capacity float64  `json:"capacity"`
	CAS      float64  `json:"cas"`
	TTMWeeks *float64 `json:"ttm_weeks,omitempty"`
	Stalled  bool     `json:"stalled,omitempty"`
}

// CostResponse decomposes chip-creation cost.
type CostResponse struct {
	Design        string  `json:"design"`
	Chips         float64 `json:"chips"`
	MaskNREUSD    float64 `json:"mask_nre_usd"`
	TapeoutNREUSD float64 `json:"tapeout_nre_usd"`
	WafersUSD     float64 `json:"wafers_usd"`
	WaferCount    float64 `json:"wafer_count"`
	PackagingUSD  float64 `json:"packaging_usd"`
	TotalUSD      float64 `json:"total_usd"`
	PerChipUSD    float64 `json:"per_chip_usd"`
}

// SensitivityResponse holds Sobol indices per guarded input.
type SensitivityResponse struct {
	Design      string    `json:"design"`
	Chips       float64   `json:"chips"`
	Conditions  string    `json:"conditions"`
	Inputs      []string  `json:"inputs"`
	TotalEffect []float64 `json:"total_effect"`
	FirstOrder  []float64 `json:"first_order"`
	VarY        float64   `json:"var_y"`
	Evaluations int       `json:"evaluations"`
}

// PlanResponse ranks manufacturing plans; Recommended is nil when no
// plan satisfies the constraints.
type PlanResponse struct {
	Design      string               `json:"design"`
	Chips       float64              `json:"chips"`
	Feasible    bool                 `json:"feasible"`
	Recommended *PlanOptionResponse  `json:"recommended,omitempty"`
	Options     []PlanOptionResponse `json:"options"`
}

// PlanOptionResponse is one evaluated manufacturing plan.
type PlanOptionResponse struct {
	Name        string   `json:"name"`
	Primary     string   `json:"primary"`
	Secondary   string   `json:"secondary,omitempty"`
	FracPrimary float64  `json:"frac_primary,omitempty"`
	TTMWeeks    *float64 `json:"ttm_weeks,omitempty"`
	CostUSD     float64  `json:"cost_usd"`
	CAS         float64  `json:"cas"`
	Feasible    bool     `json:"feasible"`
	Violations  []string `json:"violations,omitempty"`
}

// finiteWeeks returns a pointer to w's value, or nil when it is not
// finite (production stalled) — JSON has no encoding for +Inf.
func finiteWeeks(w ttmcas.Weeks) *float64 {
	v := float64(w)
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// ---- evaluation handlers -------------------------------------------

func (s *Server) handleTTM(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	s.respondCached(w, r, "POST /v1/ttm", req, false, func(context.Context) (any, error) {
		d, c, err := req.resolve()
		if err != nil {
			return nil, err
		}
		ce, err := s.evaluatorFor(req, d, c)
		if err != nil {
			return nil, err
		}
		ev := ce.acquire()
		res, err := ev.EvalResultChips(ttmcas.Perturbation{}, req.N)
		ce.release(ev)
		if err != nil {
			return nil, unprocessablef("%v", err)
		}
		if finiteWeeks(res.TTM) == nil {
			return nil, unprocessablef("time-to-market is infinite under these conditions (a required node is at zero capacity)")
		}
		out := TTMResponse{
			Design:           d.Name,
			Chips:            req.N,
			Conditions:       c.String(),
			DesignWeeks:      float64(res.DesignTime),
			TapeoutWeeks:     float64(res.Tapeout),
			FabricationWeeks: float64(res.Fabrication),
			PackagingWeeks:   float64(res.Packaging),
			TTMWeeks:         float64(res.TTM),
			CriticalNode:     res.CriticalNode.String(),
		}
		for _, die := range res.Dies {
			out.Dies = append(out.Dies, DieResponse{
				Name: die.Name, Node: die.Node.String(), AreaMM2: float64(die.Area),
				Yield: die.Yield, GrossPerWafer: die.GrossPerWafer, Wafers: float64(die.Wafers),
			})
		}
		for _, nf := range res.Nodes {
			out.Nodes = append(out.Nodes, NodeResponse{
				Node: nf.Node.String(), Wafers: float64(nf.Wafers),
				QueueWeeks: float64(nf.Queue), ProductionWeeks: float64(nf.Production),
				TotalWeeks: float64(nf.FabTotal),
			})
		}
		return out, nil
	})
}

func (s *Server) handleCAS(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	s.respondCached(w, r, "POST /v1/cas", req, false, func(context.Context) (any, error) {
		d, c, err := req.resolve()
		if err != nil {
			return nil, err
		}
		out := CASResponse{Design: d.Name, Chips: req.N, Conditions: c.String()}
		ce, err := s.evaluatorFor(req, d, c)
		if err != nil {
			return nil, err
		}
		ev := ce.acquire()
		defer ce.release(ev)
		res, err := ev.CASResultChips(ttmcas.Perturbation{}, req.N)
		if err != nil {
			return nil, unprocessablef("%v", err)
		}
		out.CAS = res.CAS
		out.Derivatives = make(map[string]float64, len(res.Derivatives))
		for node, der := range res.Derivatives {
			out.Derivatives[node.String()] = der
		}
		if len(req.Curve) > s.cfg.MaxCurvePoints {
			return nil, unprocessablef("curve has %d points, max %d", len(req.Curve), s.cfg.MaxCurvePoints)
		}
		for i, f := range req.Curve {
			if f <= 0 || f > 1 {
				return nil, badRequestf("curve[%d] = %v outside (0, 1]", i, f)
			}
		}
		// The curve rides the same cached evaluator: each point is one
		// TTM pass plus the CAS stencil, all on the compiled kernel.
		for _, f := range req.Curve {
			ttm, err := ev.EvalChipsAtCapacity(ttmcas.Perturbation{}, req.N, f)
			if err != nil {
				return nil, unprocessablef("%v", err)
			}
			cas, err := ev.CASChipsAtCapacity(ttmcas.Perturbation{}, req.N, f)
			if err != nil {
				return nil, unprocessablef("%v", err)
			}
			fw := finiteWeeks(ttm)
			out.Curve = append(out.Curve, CASPointResponse{
				Capacity: f, CAS: cas, TTMWeeks: fw, Stalled: fw == nil,
			})
		}
		return out, nil
	})
}

func (s *Server) handleCost(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	s.respondCached(w, r, "POST /v1/cost", req, false, func(context.Context) (any, error) {
		d, _, err := req.resolve()
		if err != nil {
			return nil, err
		}
		b, err := ttmcas.Cost(d, req.N)
		if err != nil {
			return nil, unprocessablef("%v", err)
		}
		return CostResponse{
			Design:        d.Name,
			Chips:         req.N,
			MaskNREUSD:    float64(b.MaskNRE),
			TapeoutNREUSD: float64(b.TapeoutNRE),
			WafersUSD:     float64(b.Wafers),
			WaferCount:    float64(b.WaferCount),
			PackagingUSD:  float64(b.Packaging),
			TotalUSD:      float64(b.Total),
			PerChipUSD:    float64(b.PerChip),
		}, nil
	})
}

func (s *Server) handleSensitivity(w http.ResponseWriter, r *http.Request) {
	var req EvalRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	s.respondCached(w, r, "POST /v1/sensitivity", req, true, func(context.Context) (any, error) {
		// The sample count multiplies into N·(k+2) model evaluations:
		// a well-formed request can still ask for more work than the
		// server accepts, hence 422 rather than 400.
		if req.Samples < 0 || req.Samples > s.cfg.MaxSamples {
			return nil, unprocessablef("samples %d outside [0, %d]", req.Samples, s.cfg.MaxSamples)
		}
		d, c, err := req.resolve()
		if err != nil {
			return nil, err
		}
		cfg := ttmcas.SensitivityConfig{N: req.Samples, Variation: req.Variation, Seed: req.Seed}
		res, err := ttmcas.Sensitivity(d, req.N, c, cfg)
		if err != nil {
			return nil, unprocessablef("%v", err)
		}
		return SensitivityResponse{
			Design: d.Name, Chips: req.N, Conditions: c.String(),
			Inputs: res.Inputs, TotalEffect: res.Total, FirstOrder: res.First,
			VarY: res.VarY, Evaluations: res.Evaluations,
		}, nil
	})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	var req PlanRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	s.respondCached(w, r, "POST /v1/plan", req, true, func(context.Context) (any, error) {
		d, err := resolveDesign(req.Design, req.Spec, "")
		if err != nil {
			return nil, err
		}
		if req.N <= 0 {
			return nil, badRequestf(`"n" (number of chips) must be positive`)
		}
		if req.DeadlineWeeks < 0 || req.BudgetUSD < 0 || req.MinCAS < 0 {
			return nil, badRequestf("constraints must be non-negative")
		}
		planner := ttmcas.NewPlanner(d)
		if req.Multi != nil {
			planner.MultiProcess = *req.Multi
		}
		best, all, err := planner.Recommend(ttmcas.PlanRequirements{
			Volume:   req.N,
			Deadline: ttmcas.Weeks(req.DeadlineWeeks),
			Budget:   ttmcas.USD(req.BudgetUSD),
			MinCAS:   req.MinCAS,
		})
		out := PlanResponse{Design: d.Name, Chips: req.N}
		switch {
		case err == nil:
			out.Feasible = true
			rec := planOption(best)
			out.Recommended = &rec
		case errors.Is(err, ttmcas.ErrNoFeasiblePlan):
			// Feasible stays false; the ranked nearest candidates
			// below tell the caller what to relax.
		default:
			return nil, unprocessablef("%v", err)
		}
		top := req.Top
		if top <= 0 {
			top = 8
		}
		for i, o := range all {
			if i >= top {
				break
			}
			out.Options = append(out.Options, planOption(o))
		}
		return out, nil
	})
}

func planOption(o ttmcas.PlanOption) PlanOptionResponse {
	resp := PlanOptionResponse{
		Name:        o.Name,
		Primary:     o.Primary.String(),
		FracPrimary: o.FracPrimary,
		TTMWeeks:    finiteWeeks(o.TTM),
		CostUSD:     float64(o.Cost),
		CAS:         o.CAS,
		Feasible:    o.Feasible,
		Violations:  o.Violations,
	}
	if o.Secondary != 0 {
		resp.Secondary = o.Secondary.String()
	}
	return resp
}

// ---- read-only handlers --------------------------------------------

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := ttmcas.WriteNodeDatabase(&buf, nil); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}

// ScenarioResponse is one built-in market scenario.
type ScenarioResponse struct {
	Name           string             `json:"name"`
	Description    string             `json:"description"`
	Capacity       float64            `json:"capacity"`
	NodeCapacity   map[string]float64 `json:"node_capacity,omitempty"`
	NodeQueueWeeks map[string]float64 `json:"node_queue_weeks,omitempty"`
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	out := make([]ScenarioResponse, 0)
	for _, sc := range ttmcas.Scenarios() {
		resp := ScenarioResponse{
			Name:        sc.Name,
			Description: sc.Description,
			Capacity:    sc.Conditions.GlobalCapacity,
		}
		if resp.Capacity == 0 {
			resp.Capacity = 1
		}
		for n, f := range sc.Conditions.NodeCapacity {
			if resp.NodeCapacity == nil {
				resp.NodeCapacity = make(map[string]float64)
			}
			resp.NodeCapacity[n.String()] = f
		}
		for n, q := range sc.Conditions.QueueWeeks {
			if resp.NodeQueueWeeks == nil {
				resp.NodeQueueWeeks = make(map[string]float64)
			}
			resp.NodeQueueWeeks[n.String()] = float64(q)
		}
		out = append(out, resp)
	}
	writeJSON(w, http.StatusOK, out)
}

// DesignResponse summarizes one built-in design.
type DesignResponse struct {
	Name               string   `json:"name"`
	Dies               int      `json:"dies"`
	Nodes              []string `json:"nodes"`
	TransistorsPerChip float64  `json:"transistors_per_chip"`
	DiesPerPackage     int      `json:"dies_per_package"`
	Study              string   `json:"study"`
}

func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	out := make([]DesignResponse, 0)
	for _, name := range ttmcas.DesignNames() {
		d, err := ttmcas.DesignByName(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		nodes := make([]string, 0, 2)
		for _, n := range d.Nodes() {
			nodes = append(nodes, n.String())
		}
		out = append(out, DesignResponse{
			Name:               name,
			Dies:               len(d.Dies),
			Nodes:              nodes,
			TransistorsPerChip: float64(d.TotalTransistorsPerChip()),
			DiesPerPackage:     d.DiesPerPackage(),
			Study:              ttmcas.DesignStudy(name),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is the liveness probe and the cluster gossip payload:
// peers probing it learn this node's identity, uptime, and ring epoch,
// not just that something answered 200 on the port.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := cluster.Health{
		Status:  "ok",
		NodeID:  s.cfg.NodeID,
		UptimeS: time.Since(s.started).Seconds(),
	}
	if s.cluster != nil {
		h.RingEpoch = s.cluster.Epoch()
	}
	writeJSON(w, http.StatusOK, h)
}

// handleCluster reports the node's view of cluster membership: ring
// epoch and members, peer health states, and the routing counters.
// On a non-clustered node it answers {"enabled": false, ...} so
// operators can distinguish "solo" from "broken".
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, cluster.Status{
			Self: cluster.PeerStatus{ID: s.cfg.NodeID, State: "alive"},
		})
		return
	}
	writeJSON(w, http.StatusOK, s.cluster.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.metrics.WriteTo(w)
}
