package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ttmcas/internal/jobs"
)

// TestShardEndpointExecutes exercises the internal shard route
// stand-alone: a well-formed request computes and returns its partial
// result; malformed ranges map to 422 like any invalid spec.
func TestShardEndpointExecutes(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := jobs.ShardRequest{
		Job: "job-000001", Index: 1, Lo: 2, Hi: 5,
		Spec: jobs.Spec{Kind: jobs.KindMCBand, Design: "a11", Samples: 16, Seed: 9},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/internal/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var res jobs.ShardResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Index != 1 || len(res.Points) != 3 || res.Evals == 0 || res.Err != "" {
		t.Fatalf("shard result = %+v", res)
	}

	req.Hi = 10_000 // outside the 16-point default curve
	body, _ = json.Marshal(req)
	resp2, err := http.Post(ts.URL+"/v1/internal/shards", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad range: status = %d, want 422", resp2.StatusCode)
	}
}

// getBody GETs a URL and returns status and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// waitJobDone polls a job through the given node until it reaches a
// terminal status.
func waitJobDone(t *testing.T, base, id string) jobs.View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("poll %s: %d %s", id, code, body)
		}
		var v jobs.View
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatal(err)
		}
		if v.Status.Finished() {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("job never finished")
	return jobs.View{}
}

// TestDistributedJobAcrossCluster is the end-to-end tentpole check: a
// heavy mc-band job submitted to a 3-node ring is sharded across the
// peers over /v1/internal/shards and gathers into byte-for-byte the
// result a lone node computes.
func TestDistributedJobAcrossCluster(t *testing.T) {
	spec := `{"kind":"mc-band","design":"a11","samples":256,"seed":21}`

	// Reference: the same spec on a single node, no cluster.
	solo := testServer(t, Config{})
	soloTS := httptest.NewServer(solo.Handler())
	defer soloTS.Close()
	code, body := postJSON(t, soloTS.URL+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("solo submit: %d %s", code, body)
	}
	var soloView jobs.View
	if err := json.Unmarshal([]byte(body), &soloView); err != nil {
		t.Fatal(err)
	}
	waitJobDone(t, soloTS.URL, soloView.ID)
	_, soloResult := getBody(t, soloTS.URL+"/v1/jobs/"+soloView.ID+"/result")

	srvs, urls := startClusterNodes(t, 3, nil)
	code, body = postJSON(t, urls[0]+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("cluster submit: %d %s", code, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	fin := waitJobDone(t, urls[0], v.ID)
	if fin.Status != jobs.StatusSucceeded {
		t.Fatalf("distributed job: %s (%s)", fin.Status, fin.Error)
	}
	_, distResult := getBody(t, urls[0]+"/v1/jobs/"+v.ID+"/result")

	var soloRes, distRes JobResultResponse
	if err := json.Unmarshal([]byte(soloResult), &soloRes); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(distResult), &distRes); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(soloRes.Result, distRes.Result) {
		t.Fatalf("distributed result differs from single-node:\nsolo: %s\ndist: %s",
			soloRes.Result, distRes.Result)
	}

	var completed uint64
	coordinator := -1
	for i, s := range srvs {
		if c := s.Metrics().ShardsCompleted(); c > 0 {
			completed += c
			coordinator = i
		}
	}
	if completed == 0 {
		t.Fatal("no shards completed remotely — the job ran single-node")
	}

	// The coordinator's exposition carries the shard series.
	var sb strings.Builder
	if _, err := srvs[coordinator].Metrics().WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`ttmcas_jobs_shards_dispatched_total{kind="mc-band"}`,
		`ttmcas_jobs_shards_completed_total{kind="mc-band"}`,
		"ttmcas_jobs_shard_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("coordinator exposition missing %q", want)
		}
	}
}

// TestDistributedJobSurvivesPeerKill: killing a peer's listener mid-job
// must not lose the job — dispatch failure falls back to local compute
// and the job still succeeds with full progress accounting.
func TestDistributedJobSurvivesPeerKill(t *testing.T) {
	// Inline two-node harness so the victim's listener can be torn down
	// mid-job (startClusterNodes only closes listeners at cleanup).
	lns := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	srvs := make([]*Server, 2)
	hss := make([]*http.Server, 2)
	for i := range lns {
		srvs[i] = New(Config{
			NodeID:               fmt.Sprintf("node%d", i),
			ClusterSelfURL:       urls[i],
			ClusterPeers:         []string{urls[1-i]},
			ClusterProbeInterval: 20 * time.Millisecond,
			Logger:               log.New(io.Discard, "", 0),
			DisableAccessLog:     true,
		})
		hss[i] = &http.Server{Handler: srvs[i].Handler(), ErrorLog: log.New(io.Discard, "", 0)}
		go hss[i].Serve(lns[i])
		hs, srv := hss[i], srvs[i]
		t.Cleanup(func() { hs.Close() })
		t.Cleanup(srv.Close)
	}

	spec := `{"kind":"mc-band","design":"a11","samples":2048,"seed":4}`
	code, body := postJSON(t, urls[0]+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var v jobs.View
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	// The submit may have been forwarded to the spec's ring owner; kill
	// the node that did NOT take the job.
	owner := 0
	if _, ok := srvs[0].Jobs().Get(v.ID); !ok {
		owner = 1
	}
	hss[1-owner].Close()

	fin := waitJobDone(t, urls[owner], v.ID)
	if fin.Status != jobs.StatusSucceeded {
		t.Fatalf("job after peer kill: %s (%s)", fin.Status, fin.Error)
	}
	if fin.Done != fin.Total || fin.Total == 0 {
		t.Fatalf("progress after fallback = %d/%d", fin.Done, fin.Total)
	}
}

// TestMetricsJobGaugesExposed: the queue-depth and running-jobs gauges
// ride every exposition once a manager is attached.
func TestMetricsJobGaugesExposed(t *testing.T) {
	s := testServer(t, Config{})
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	s.Handler().ServeHTTP(rec, req)
	out := rec.Body.String()
	for _, want := range []string{
		"# TYPE ttmcas_jobs_queue_depth gauge",
		"ttmcas_jobs_queue_depth 0",
		"# TYPE ttmcas_jobs_active gauge",
		"ttmcas_jobs_active 0",
		"# TYPE ttmcas_jobs_running gauge",
		"# TYPE ttmcas_jobs_shard_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
