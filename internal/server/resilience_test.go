package server

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"ttmcas/internal/resilience"
)

// doRec runs one in-process request and returns the recorder, so tests
// can inspect headers as well as status and body.
func doRec(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	return w
}

// ageCache pushes the response cache's clock forward so fresh entries
// turn stale. Only call between requests, never while any is in
// flight.
func ageCache(s *Server, by time.Duration) {
	s.cache.now = func() time.Time { return time.Now().Add(by) }
}

// TestStaleServedOnComputeFailure is the graceful-degradation
// acceptance check: when recomputing a stale entry fails, the retained
// body is served with X-Cache: STALE instead of an error.
func TestStaleServedOnComputeFailure(t *testing.T) {
	s := testServer(t, Config{
		FreshTTL:  50 * time.Millisecond,
		StaleTTL:  time.Hour,
		FaultSpec: "route=/v1/ttm error-rate=1",
	})
	s.FaultInjector().Pause() // warm the cache faultlessly

	body := `{"design":"a11","node":"28nm","n":1e6}`
	w := doRec(t, s, "POST", "/v1/ttm", body)
	if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("warmup: %d %q", w.Code, w.Header().Get("X-Cache"))
	}
	fresh := w.Body.String()

	ageCache(s, 10*time.Minute) // past fresh, well within stale
	s.FaultInjector().Resume()

	w = doRec(t, s, "POST", "/v1/ttm", body)
	if w.Code != http.StatusOK {
		t.Fatalf("degraded request: %d %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Cache"); got != "STALE" {
		t.Errorf("X-Cache = %q, want STALE", got)
	}
	if w.Body.String() != fresh {
		t.Errorf("stale body differs from the cached one")
	}
	if n := s.Metrics().StaleServes(); n != 1 {
		t.Errorf("stale serves = %d, want 1", n)
	}
}

// TestInjectedErrorWithoutStaleIs503 pins down the no-fallback path: a
// fault with nothing stale to serve surfaces as 503 with Retry-After,
// never as a client-error status.
func TestInjectedErrorWithoutStaleIs503(t *testing.T) {
	s := testServer(t, Config{FaultSpec: "route=/v1/ttm error-rate=1"})
	w := doRec(t, s, "POST", "/v1/ttm", `{"design":"a11","node":"28nm","n":1e6}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestShedServesStaleThen503 drives the admission limiter into a shed
// and checks both degradation tiers: a key with a stale body is served
// STALE, a cold key gets 503 + Retry-After.
func TestShedServesStaleThen503(t *testing.T) {
	s := testServer(t, Config{
		CheapConcurrent: 1,
		ShedTarget:      5 * time.Millisecond, // MaxWait = 20ms
		FreshTTL:        50 * time.Millisecond,
		StaleTTL:        time.Hour,
	})

	warm := `{"design":"a11","node":"28nm","n":1e6}`
	if w := doRec(t, s, "POST", "/v1/ttm", warm); w.Code != http.StatusOK {
		t.Fatalf("warmup: %d", w.Code)
	}
	ageCache(s, 10*time.Minute)

	// Occupy the single cheap slot with a request held in compute.
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slowEval = func() {
		once.Do(func() { close(started) })
		<-release
	}
	holder := make(chan int, 1)
	go func() {
		w := doRec(t, s, "POST", "/v1/ttm", `{"design":"zen2","node":"28nm","n":1e6}`)
		holder <- w.Code
	}()
	<-started

	// The warmed key sheds on admission but has a stale body: 200 STALE.
	w := doRec(t, s, "POST", "/v1/ttm", warm)
	if w.Code != http.StatusOK || w.Header().Get("X-Cache") != "STALE" {
		t.Errorf("stale-capable shed: %d %q, want 200 STALE",
			w.Code, w.Header().Get("X-Cache"))
	}

	// A cold key has nothing to fall back on: 503 with Retry-After.
	w = doRec(t, s, "POST", "/v1/ttm", `{"design":"h100","node":"28nm","n":1e6}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("cold-key shed: %d, want 503 (body %s)", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed 503 without Retry-After")
	}

	close(release)
	if code := <-holder; code != http.StatusOK {
		t.Errorf("slot holder finished with %d, want 200", code)
	}
}

// TestComputePanicContained checks an injected panic in the compute
// path is contained to a 500 — the process survives, piggybacked
// requests are not hung, and the next request works.
func TestComputePanicContained(t *testing.T) {
	s := testServer(t, Config{FaultSpec: "route=/v1/ttm panics=1"})
	body := `{"design":"a11","node":"28nm","n":1e6}`
	w := doRec(t, s, "POST", "/v1/ttm", body)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("panicking compute: %d, want 500 (body %s)", w.Code, w.Body.String())
	}
	// The panic budget is spent; the same request now succeeds.
	if w = doRec(t, s, "POST", "/v1/ttm", body); w.Code != http.StatusOK {
		t.Fatalf("request after panic: %d, want 200", w.Code)
	}
}

// TestJobTooManyRetryAfter checks the pre-existing 429 on job overflow
// now carries Retry-After, like the new 503 sheds.
func TestJobTooManyRetryAfter(t *testing.T) {
	s := testServer(t, Config{MaxJobs: 1, JobWorkers: 1})
	submitJob(t, s, `{"kind":"mc-band","design":"a11","samples":4096,"seed":1}`)
	w := doRec(t, s, "POST", "/v1/jobs", `{"kind":"mc-band","design":"a11","samples":8}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestFlightPanicWakesPiggybackers pins the single-flight hardening: a
// panicking executor must wake callers that joined its flight, with an
// error, instead of leaving them blocked forever.
func TestFlightPanicWakesPiggybackers(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { recover() }()
		g.Do("k", func() ([]byte, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started

	joined := make(chan struct{})
	flightTestHookJoin = func() { close(joined) }
	defer func() { flightTestHookJoin = nil }()
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do("k", func() ([]byte, error) { return nil, nil })
		done <- err
	}()
	<-joined
	close(release)

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("piggybacker observed nil error from a panicked call")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("piggybacker hung after the executing call panicked")
	}
}

// TestMetricsExposeResilienceSeries checks the new admission, stale
// and fault series appear in /metrics.
func TestMetricsExposeResilienceSeries(t *testing.T) {
	s := testServer(t, Config{FaultSpec: "route=/v1/ttm error-rate=1"})
	doRec(t, s, "POST", "/v1/ttm", `{"design":"a11","node":"28nm","n":1e6}`)
	w := doRec(t, s, "GET", "/metrics", "")
	out := w.Body.String()
	for _, want := range []string{
		`ttmcas_admission_admitted_total{class="cheap"} 1`,
		`ttmcas_admission_shed_total{class="heavy"} 0`,
		`ttmcas_admission_shedding{class="cheap"} 0`,
		`ttmcas_stale_served_total 0`,
		`ttmcas_faults_injected_total{kind="error"} 1`,
		`ttmcas_response_cache_expired_total 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestShutdownUnderLoad is the robustness acceptance check for
// draining: with the cheap class saturated, cancellation completes the
// admitted in-flight request, answers the queued-but-unadmitted one
// with 503, closes the listener, and leaks no goroutines.
func TestShutdownUnderLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := testServer(t, Config{
		CheapConcurrent: 1,
		ShedTarget:      time.Minute, // MaxWait 4min: queued waits until Close
		ShutdownGrace:   10 * time.Second,
	})
	started := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.slowEval = func() {
		once.Do(func() { close(started) })
		<-release
	}

	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	// In-flight: admitted and held inside the compute closure.
	inflight := make(chan int, 1)
	go func() {
		resp, err := client.Post(ts.URL+"/v1/ttm", "application/json",
			strings.NewReader(`{"design":"a11","node":"28nm","n":1e6}`))
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-started

	// Queued: waiting for the occupied admission slot.
	queued := make(chan int, 1)
	go func() {
		resp, err := client.Post(ts.URL+"/v1/ttm", "application/json",
			strings.NewReader(`{"design":"zen2","node":"28nm","n":1e6}`))
		if err != nil {
			queued <- -1
			return
		}
		resp.Body.Close()
		queued <- resp.StatusCode
	}()
	waitFor := time.Now().Add(5 * time.Second)
	for s.cheap.Stats().Queued == 0 {
		if time.Now().After(waitFor) {
			t.Fatal("second request never queued on the limiter")
		}
		time.Sleep(time.Millisecond)
	}

	// Shutdown: Close plays the role Serve's cancellation goroutine
	// does in production — limiters first, then drain.
	go func() {
		s.Close()
		close(release)
	}()

	if code := <-queued; code != http.StatusServiceUnavailable {
		t.Errorf("queued request: %d, want 503", code)
	}
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request: %d, want 200", code)
	}

	ts.Close()
	client.CloseIdleConnections()

	// The goroutine count must return to its pre-server baseline (with
	// slack for the runtime's own background workers).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLimiterCloseIsShedToClients double-checks the error mapping the
// shutdown path relies on: a closed limiter's rejection is a shed.
func TestLimiterCloseIsShedToClients(t *testing.T) {
	l := resilience.NewLimiter(resilience.LimiterConfig{MaxConcurrent: 1})
	l.Close()
	if _, err := l.Admit(t.Context()); err == nil {
		t.Fatal("admit on closed limiter succeeded")
	}
}
