package server

import (
	"net/http"
	"runtime/debug"
	"sync"
	"time"
)

// statusWriter captures the status code and body size a handler wrote,
// for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status  int
	written int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.written += int64(n)
	return n, err
}

// swPool recycles statusWriters: the wrapper is born and dies inside
// wrap, so the hot path pays no per-request allocation for it.
var swPool = sync.Pool{New: func() any { return new(statusWriter) }}

// wrap applies the server's per-request machinery around a handler:
// panic recovery, the in-flight gauge, a request deadline, the
// max-body-size guard, structured logging, and per-route metrics.
// route is the metrics/log label ("POST /v1/ttm").
func (s *Server) wrap(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.IncInflight()
		sw := swPool.Get().(*statusWriter)
		*sw = statusWriter{ResponseWriter: w}

		defer func() {
			if rec := recover(); rec != nil {
				s.log.Printf("panic on %s: %v\n%s", route, rec, debug.Stack())
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal server error")
				}
			}
			s.metrics.DecInflight()
			d := time.Since(start)
			s.metrics.ObserveRequest(route, sw.status, d)
			if !s.cfg.DisableAccessLog {
				s.log.Printf("%s %s %d %dB %s", r.Method, r.URL.RequestURI(), sw.status, sw.written, d)
			}
			swPool.Put(sw)
		}()

		// The per-request deadline is NOT armed here: a timer context
		// costs allocations every request, and the cheap routes (cache
		// hits, reads) never block. respondCached arms it around the
		// compute closure, the only place work can stall; slow request
		// bodies are bounded by the http.Server's ReadTimeout.
		if r.Body != nil {
			r.Body = http.MaxBytesReader(sw, r.Body, s.cfg.MaxBodyBytes)
		}
		h(sw, r)
	})
}
