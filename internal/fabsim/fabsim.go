// Package fabsim is a discrete-event simulator of the downstream chip
// creation pipeline: wafer lots released into a foundry at a bounded
// start rate, a fixed fabrication pipeline latency (12–20 weeks
// depending on node), and a testing/assembly/packaging (TAP) stage with
// its own latency and throughput.
//
// The closed-form model of Section 3 (Eqs. 3–5) assumes "an efficient
// and pipelined assembly line where a new wafer lot can begin
// production once another lot finishes"; this package implements that
// assembly line operationally, which serves two purposes:
//
//  1. cross-validation — on constant conditions the simulated
//     completion time must agree with T_queue + N_W/μ_W + L_fab up to
//     lot quantization (a test pins this), and
//  2. disruption studies the closed form cannot express — capacity
//     that changes mid-run (fires, storms, demand shocks) via a rate
//     schedule, answering "what happens to orders already in flight".
package fabsim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"ttmcas/internal/units"
)

// DefaultLotSize is the industry-standard ~25-wafer lot.
const DefaultLotSize = 25

// Config describes one fabrication + packaging line at a process node.
type Config struct {
	// Rate is the full-capacity wafer start rate.
	Rate units.WafersPerWeek
	// FabLatency is the pipeline latency of a lot through the fab.
	FabLatency units.Weeks
	// LotSize is wafers per lot; zero means 25.
	LotSize int
	// TAPLatency is the packaging-house pipeline latency per lot.
	TAPLatency units.Weeks
	// TAPRate bounds packaging throughput in wafers/week; zero means
	// unbounded (the closed-form model's assumption).
	TAPRate units.WafersPerWeek
}

func (c Config) lotSize() int {
	if c.LotSize <= 0 {
		return DefaultLotSize
	}
	return c.LotSize
}

// Validate checks the line parameters.
func (c Config) Validate() error {
	if c.Rate <= 0 {
		return errors.New("fabsim: wafer start rate must be positive")
	}
	if c.FabLatency < 0 || c.TAPLatency < 0 {
		return errors.New("fabsim: latencies must be non-negative")
	}
	if c.TAPRate < 0 {
		return errors.New("fabsim: TAP rate must be non-negative")
	}
	return nil
}

// Disruption changes the line's capacity fraction at a point in time.
// Fractions stack on nothing: the latest disruption at or before t
// defines the fraction at t (initially 1).
type Disruption struct {
	AtWeek   units.Weeks
	Fraction float64
}

// Result reports a simulated order.
type Result struct {
	// LotsStarted is the number of lots released for the order itself
	// (not counting queued-ahead work).
	LotsStarted int
	// LastStart, LastFabComplete and LastPackaged are the times the
	// final lot started, left the fab, and finished packaging.
	LastStart       units.Weeks
	LastFabComplete units.Weeks
	LastPackaged    units.Weeks
	// QueueDrained is when the queued-ahead wafers finished starting,
	// i.e. the simulated T_fab,queue.
	QueueDrained units.Weeks
}

// event is a unit of work in the simulator.
type event struct {
	at   float64
	kind eventKind
	lot  int
}

type eventKind int

const (
	evFabDone eventKind = iota
	evTAPDone
)

// eventQueue is a min-heap on time.
type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].at < q[j].at }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// releaseClock computes lot release times under a piecewise-constant
// capacity schedule: the k-th lot starts when the integrated start
// capacity reaches k·lotSize wafers.
type releaseClock struct {
	rate     float64 // full-capacity wafers/week
	segStart []float64
	segFrac  []float64
	// progress state
	t        float64 // current time
	seg      int
	capacity float64 // wafers of capacity consumed so far (bookkeeping only)
}

func newReleaseClock(rate float64, disruptions []Disruption) (*releaseClock, error) {
	c := &releaseClock{rate: rate, segStart: []float64{0}, segFrac: []float64{1}}
	ds := append([]Disruption(nil), disruptions...)
	sort.Slice(ds, func(i, j int) bool { return ds[i].AtWeek < ds[j].AtWeek })
	for _, d := range ds {
		if d.AtWeek < 0 {
			return nil, errors.New("fabsim: disruption before time zero")
		}
		if d.Fraction < 0 {
			return nil, errors.New("fabsim: negative capacity fraction")
		}
		c.segStart = append(c.segStart, float64(d.AtWeek))
		c.segFrac = append(c.segFrac, d.Fraction)
	}
	return c, nil
}

// advance returns the time at which a further `wafers` of start
// capacity have accumulated, advancing the clock. Returns +Inf if the
// schedule ends in a zero-capacity segment before accumulating enough.
func (c *releaseClock) advance(wafers float64) float64 {
	need := wafers
	for {
		frac := c.segFrac[c.seg]
		segEnd := math.Inf(1)
		if c.seg+1 < len(c.segStart) {
			segEnd = c.segStart[c.seg+1]
		}
		rate := c.rate * frac
		if rate > 0 {
			dt := need / rate
			if c.t+dt <= segEnd {
				c.t += dt
				c.capacity += need
				return c.t
			}
			got := (segEnd - c.t) * rate
			need -= got
			c.capacity += got
		}
		if math.IsInf(segEnd, 1) {
			// Zero-capacity tail: never completes.
			c.t = math.Inf(1)
			return c.t
		}
		c.t = segEnd
		c.seg++
	}
}

// Run simulates fabricating `wafers` wafers for an order behind
// `queueAhead` wafers of previously-committed work, under the given
// disruption schedule.
func Run(cfg Config, wafers float64, queueAhead units.Wafers, disruptions []Disruption) (Result, error) {
	return RunCtx(context.Background(), cfg, wafers, queueAhead, disruptions)
}

// RunCtx is Run under a context: a large order is hundreds of
// thousands of lot-release and packaging events, and timeline jobs run
// one simulation per disrupted node per evaluation, so the loops check
// for cancellation and return ctx.Err() promptly when a job deadline
// expires mid-simulation.
func RunCtx(ctx context.Context, cfg Config, wafers float64, queueAhead units.Wafers, disruptions []Disruption) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if wafers < 0 || queueAhead < 0 {
		return Result{}, errors.New("fabsim: negative wafer counts")
	}
	clock, err := newReleaseClock(float64(cfg.Rate), disruptions)
	if err != nil {
		return Result{}, err
	}

	var res Result
	// Drain the queued-ahead wafers first: they consume start capacity
	// but we do not track their completion.
	if queueAhead > 0 {
		res.QueueDrained = units.Weeks(clock.advance(float64(queueAhead)))
		if math.IsInf(float64(res.QueueDrained), 1) {
			return res, fmt.Errorf("fabsim: capacity schedule never drains the queue")
		}
	}

	lots := int(math.Ceil(wafers / float64(cfg.lotSize())))
	res.LotsStarted = lots
	if lots == 0 {
		return res, nil
	}

	// Release each lot as capacity accrues and push its fab completion.
	q := &eventQueue{}
	remaining := wafers
	for k := 0; k < lots; k++ {
		if k%1024 == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		size := math.Min(remaining, float64(cfg.lotSize()))
		remaining -= size
		start := clock.advance(size)
		if math.IsInf(start, 1) {
			return res, fmt.Errorf("fabsim: capacity schedule never finishes lot %d", k+1)
		}
		res.LastStart = units.Weeks(start)
		heap.Push(q, event{at: start + float64(cfg.FabLatency), kind: evFabDone, lot: k})
	}

	// TAP stage: FIFO behind a throughput bound, plus fixed latency.
	tapFree := 0.0 // earliest time the TAP line can accept the next lot
	for steps := 0; q.Len() > 0; steps++ {
		if steps%2048 == 0 {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		ev := heap.Pop(q).(event)
		switch ev.kind {
		case evFabDone:
			if ev.at > float64(res.LastFabComplete) {
				res.LastFabComplete = units.Weeks(ev.at)
			}
			begin := ev.at
			if begin < tapFree {
				begin = tapFree
			}
			service := 0.0
			if cfg.TAPRate > 0 {
				service = float64(cfg.lotSize()) / float64(cfg.TAPRate)
			}
			tapFree = begin + service
			heap.Push(q, event{at: begin + service + float64(cfg.TAPLatency), kind: evTAPDone, lot: ev.lot})
		case evTAPDone:
			if ev.at > float64(res.LastPackaged) {
				res.LastPackaged = units.Weeks(ev.at)
			}
		}
	}
	return res, nil
}

// ClosedForm returns the Eqs. 4–5 prediction for the same order under
// constant full capacity: queue/μ + N_W/μ + L_fab (fabrication only).
func ClosedForm(cfg Config, wafers float64, queueAhead units.Wafers) units.Weeks {
	mu := float64(cfg.Rate)
	return units.Weeks(float64(queueAhead)/mu + wafers/mu + float64(cfg.FabLatency))
}
