package fabsim

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"ttmcas/internal/units"
)

func line() Config {
	return Config{Rate: 10000, FabLatency: 12, TAPLatency: 6}
}

func TestAgreesWithClosedForm(t *testing.T) {
	// Cross-validation: on constant conditions the DES must match
	// Eqs. 4–5 within one lot's worth of start time.
	cfg := line()
	for _, wafers := range []float64{100, 5000, 120_000} {
		for _, queue := range []units.Wafers{0, 20_000} {
			res, err := Run(cfg, wafers, queue, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := float64(ClosedForm(cfg, wafers, queue))
			lotTime := float64(DefaultLotSize) / float64(cfg.Rate)
			if diff := math.Abs(float64(res.LastFabComplete) - want); diff > lotTime+1e-9 {
				t.Errorf("wafers=%v queue=%v: sim %v vs closed form %v (diff %v)",
					wafers, float64(queue), float64(res.LastFabComplete), want, diff)
			}
			// Packaging adds exactly the TAP latency when throughput is
			// unbounded.
			if diff := math.Abs(float64(res.LastPackaged-res.LastFabComplete) - 6); diff > 1e-9 {
				t.Errorf("TAP delta = %v, want 6", float64(res.LastPackaged-res.LastFabComplete))
			}
		}
	}
}

func TestQueueDrainTime(t *testing.T) {
	cfg := line()
	res, err := Run(cfg, 1000, 20_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.QueueDrained)-2.0) > 1e-9 {
		t.Errorf("queue drained at %v, want 2 weeks", float64(res.QueueDrained))
	}
}

func TestZeroWafers(t *testing.T) {
	res, err := Run(line(), 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LotsStarted != 0 || res.LastPackaged != 0 {
		t.Errorf("empty order result = %+v", res)
	}
}

func TestDisruptionDelaysCompletion(t *testing.T) {
	cfg := line()
	wafers := 50_000.0 // 5 weeks of work at full rate
	base, err := Run(cfg, wafers, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Halve capacity from week 1: remaining 4 weeks of starts take 8.
	halved, err := Run(cfg, wafers, 0, []Disruption{{AtWeek: 1, Fraction: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	wantDelay := 4.0
	gotDelay := float64(halved.LastFabComplete - base.LastFabComplete)
	if math.Abs(gotDelay-wantDelay) > 0.1 {
		t.Errorf("halving capacity delayed completion by %v, want ~%v", gotDelay, wantDelay)
	}
	// Recovery: capacity back to full at week 5 limits the damage.
	recovered, err := Run(cfg, wafers, 0, []Disruption{{AtWeek: 1, Fraction: 0.5}, {AtWeek: 5, Fraction: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if recovered.LastFabComplete >= halved.LastFabComplete {
		t.Error("recovery should beat the permanent disruption")
	}
	if recovered.LastFabComplete <= base.LastFabComplete {
		t.Error("a temporary disruption still costs time")
	}
}

func TestFullOutageNeverCompletes(t *testing.T) {
	cfg := line()
	_, err := Run(cfg, 50_000, 0, []Disruption{{AtWeek: 1, Fraction: 0}})
	if err == nil {
		t.Error("permanent outage should be reported")
	}
	// An outage with recovery completes.
	res, err := Run(cfg, 50_000, 0, []Disruption{{AtWeek: 1, Fraction: 0}, {AtWeek: 3, Fraction: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(res.LastStart)-7.0) > 0.1 {
		t.Errorf("last start = %v, want ~7 (5 weeks of starts + 2-week outage)", float64(res.LastStart))
	}
}

func TestBoundedTAPThroughput(t *testing.T) {
	cfg := line()
	cfg.TAPRate = 5000 // half the fab rate: packaging becomes the bottleneck
	res, err := Run(cfg, 50_000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	unbounded, err := Run(line(), 50_000, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LastPackaged <= unbounded.LastPackaged {
		t.Error("bounded TAP line should finish later")
	}
	// Steady state: 50k wafers at 5k/week ≈ 10 weeks of TAP service
	// after the first lot arrives at week 12+ε.
	want := 12.0 + 10.0 + 6.0
	if math.Abs(float64(res.LastPackaged)-want) > 1.0 {
		t.Errorf("bottlenecked completion = %v, want ~%v", float64(res.LastPackaged), want)
	}
}

func TestLotConservation(t *testing.T) {
	// Property: lots started always covers the wafer count, and event
	// ordering yields monotone milestones.
	f := func(rawWafers uint16, rawQueue uint16) bool {
		wafers := float64(rawWafers%5000) + 1
		queue := units.Wafers(rawQueue % 10000)
		res, err := Run(line(), wafers, queue, nil)
		if err != nil {
			return false
		}
		if res.LotsStarted != int(math.Ceil(wafers/DefaultLotSize)) {
			return false
		}
		return res.QueueDrained <= res.LastStart &&
			res.LastStart <= res.LastFabComplete &&
			res.LastFabComplete <= res.LastPackaged
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{}, 10, 0, nil); err == nil {
		t.Error("zero rate should error")
	}
	if _, err := Run(line(), -1, 0, nil); err == nil {
		t.Error("negative wafers should error")
	}
	if _, err := Run(line(), 10, 0, []Disruption{{AtWeek: -1, Fraction: 1}}); err == nil {
		t.Error("negative disruption time should error")
	}
	if _, err := Run(line(), 10, 0, []Disruption{{AtWeek: 1, Fraction: -0.5}}); err == nil {
		t.Error("negative fraction should error")
	}
	bad := Config{Rate: 10, FabLatency: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative latency should error")
	}
}

// RunCtx must notice cancellation mid-simulation: a large order is
// hundreds of thousands of events, and timeline jobs rely on their
// deadline propagating into the event loops.
func TestRunCtxCancellation(t *testing.T) {
	cfg := line()
	// Already-cancelled context: the run must abort with ctx.Err()
	// rather than simulating half a million wafers.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunCtx(ctx, cfg, 500_000, 0, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	// An expired deadline behaves the same.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := RunCtx(dctx, cfg, 500_000, 0, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	// A live context completes and matches the context-free entry point.
	want, err := Run(cfg, 5000, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCtx(context.Background(), cfg, 5000, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("RunCtx result %+v differs from Run %+v", got, want)
	}
}
