package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Snapshot persistence: one JSON file per job under Config.SnapshotDir,
// written at submission (pending), on every terminal transition, and —
// for jobs interrupted by manager shutdown — re-written as pending so
// the next manager over the same directory resumes them. Specs are
// deterministic (fixed seeds, precomputed sample streams), so a resumed
// re-run reproduces the interrupted job's result.

// snapshotFile is the on-disk shape. Plan and Shards checkpoint a
// mid-flight distributed run: the scatter plan the coordinator was
// executing and every shard result already in hand, so a restart
// re-runs only the unfinished shards (shard runs are deterministic,
// so the merged result is bit-identical either way).
type snapshotFile struct {
	View   View            `json:"view"`
	Result json.RawMessage `json:"result,omitempty"`
	Plan   []ShardRequest  `json:"plan,omitempty"`
	Shards []ShardResult   `json:"shards,omitempty"`
}

func (m *Manager) snapshotPath(id string) string {
	return filepath.Join(m.cfg.SnapshotDir, id+".json")
}

// persist writes the job's current state; failures are logged, never
// fatal (the in-memory store remains authoritative).
func (m *Manager) persist(j *Job) {
	if m.cfg.SnapshotDir == "" {
		return
	}
	v := j.view(m.cfg.now())
	v.ETASeconds = nil
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	sf := snapshotFile{View: v, Result: res}
	if !v.Status.Finished() {
		// Mid-flight: carry the distributed checkpoint so a restart
		// resumes instead of recomputing finished shards.
		sf.Plan, sf.Shards = j.checkpoint()
	}
	m.writeSnapshot(j.id, sf)
}

// persistPending snapshots a shutdown-interrupted job as if it had
// never started, so a restarted manager re-queues it.
func (m *Manager) persistPending(j *Job) {
	if m.cfg.SnapshotDir == "" {
		return
	}
	v := j.view(m.cfg.now())
	v.Status = StatusPending
	v.Started, v.Finished = nil, nil
	v.Error = ""
	v.Done, v.Fraction, v.ETASeconds = 0, 0, nil
	sf := snapshotFile{View: v}
	sf.Plan, sf.Shards = j.checkpoint()
	m.writeSnapshot(j.id, sf)
}

// writeSnapshot writes atomically: temp file in the same directory,
// then rename, so a crash mid-write never corrupts an existing file.
func (m *Manager) writeSnapshot(id string, sf snapshotFile) {
	if err := os.MkdirAll(m.cfg.SnapshotDir, 0o755); err != nil {
		m.log.Printf("jobs: snapshot dir: %v", err)
		return
	}
	data, err := json.Marshal(sf)
	if err != nil {
		m.log.Printf("jobs: %s: encoding snapshot: %v", id, err)
		return
	}
	tmp, err := os.CreateTemp(m.cfg.SnapshotDir, id+".tmp-*")
	if err != nil {
		m.log.Printf("jobs: %s: snapshot: %v", id, err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		m.log.Printf("jobs: %s: writing snapshot: %v/%v", id, werr, cerr)
		return
	}
	if err := os.Rename(tmp.Name(), m.snapshotPath(id)); err != nil {
		os.Remove(tmp.Name())
		m.log.Printf("jobs: %s: snapshot rename: %v", id, err)
	}
}

func (m *Manager) deleteSnapshot(id string) {
	if m.cfg.SnapshotDir == "" {
		return
	}
	os.Remove(m.snapshotPath(id))
}

// loadSnapshots restores jobs from the snapshot directory into the
// store: terminal jobs keep their results and are marked Restored;
// pending (or interrupted-running) jobs are returned for re-queueing.
// Undecodable files are quarantined (renamed to <name>.corrupt) with a
// log line; mismatched ones are skipped. Startup always continues with
// whatever state is readable.
func (m *Manager) loadSnapshots() []*Job {
	if m.cfg.SnapshotDir == "" {
		return nil
	}
	entries, err := os.ReadDir(m.cfg.SnapshotDir)
	if err != nil {
		if !os.IsNotExist(err) {
			m.log.Printf("jobs: reading snapshot dir: %v", err)
		}
		return nil
	}
	var resume []*Job
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.cfg.SnapshotDir, name))
		if err != nil {
			m.log.Printf("jobs: reading snapshot %s: %v", name, err)
			continue
		}
		var sf snapshotFile
		if err := json.Unmarshal(data, &sf); err != nil {
			// Quarantine rather than skip: renaming the file preserves it
			// for inspection while guaranteeing the next restart does not
			// trip over the same corruption, and startup always proceeds
			// with whatever state is readable.
			path := filepath.Join(m.cfg.SnapshotDir, name)
			if rerr := os.Rename(path, path+".corrupt"); rerr != nil {
				m.log.Printf("jobs: corrupt snapshot %s: %v (quarantine failed: %v)", name, err, rerr)
			} else {
				m.log.Printf("jobs: corrupt snapshot %s: %v (moved to %s.corrupt)", name, err, name)
			}
			continue
		}
		v := sf.View
		if v.ID == "" || v.ID+".json" != name {
			m.log.Printf("jobs: skipping snapshot %s: id %q does not match filename", name, v.ID)
			continue
		}
		var seq int
		if _, err := fmt.Sscanf(v.ID, "job-%d", &seq); err == nil && seq > m.seq {
			m.seq = seq
		}
		j := &Job{
			id:       v.ID,
			spec:     v.Spec,
			created:  v.Created,
			status:   v.Status,
			err:      v.Error,
			result:   sf.Result,
			restored: true,
		}
		j.done.Store(v.Done)
		j.total.Store(v.Total)
		if v.Started != nil {
			j.started = *v.Started
		}
		if v.Finished != nil {
			j.finished = *v.Finished
		}
		if !j.status.Finished() {
			// Interrupted before completing: re-queue. Both progress
			// counters reset — a mid-flight snapshot must not leave
			// orphan done/total from the dead run; the re-run's
			// SetTotal re-establishes the denominator (and restored
			// shard checkpoints re-credit their evaluations). The
			// checkpointed plan and completed shard results carry
			// over so the resumed run recomputes only what's missing.
			j.status = StatusPending
			j.started = time.Time{}
			j.finished = time.Time{}
			j.err = ""
			j.result = nil
			j.done.Store(0)
			j.total.Store(0)
			j.plan = sf.Plan
			if len(sf.Shards) > 0 && j.plan != nil {
				j.completed = make(map[int]ShardResult, len(sf.Shards))
				for _, r := range sf.Shards {
					if r.Index >= 0 && r.Index < len(j.plan) && r.Err == "" {
						j.completed[r.Index] = r
					}
				}
			}
			resume = append(resume, j)
		}
		m.insertLocked(j) // no concurrency yet: New has not started workers
	}
	if n := len(m.jobs); n > 0 {
		m.log.Printf("jobs: restored %d job(s) from %s (%d re-queued)", n, m.cfg.SnapshotDir, len(resume))
	}
	return resume
}
