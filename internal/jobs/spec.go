package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"ttmcas"
	"ttmcas/internal/cachesim"
	"ttmcas/internal/core"
	"ttmcas/internal/mc"
	"ttmcas/internal/opt"
	"ttmcas/internal/plan"
	"ttmcas/internal/sens"
	"ttmcas/internal/sweep"
	"ttmcas/internal/technode"
	"ttmcas/internal/timeline"
	"ttmcas/internal/units"
)

// The job kinds: each wraps one of the repo's batch-evaluation engines.
const (
	// KindMCBand runs mc.BandCurve: a Monte-Carlo mean curve with ±10%
	// and ±25% confidence bands across global capacity fractions (the
	// shaded plots of Figs. 7/9/11/12).
	KindMCBand = "mc-band"
	// KindSensitivity runs sens.TotalEffect: Sobol first-order and
	// total-effect indices of TTM over the six guarded inputs (Fig. 8).
	KindSensitivity = "sensitivity"
	// KindSweep evaluates TTM, CAS and cost for a design re-targeted
	// across a node × quantity grid.
	KindSweep = "sweep"
	// KindPareto extracts the cache-sizing Pareto front (IPC ↑, TTM ↓,
	// cost ↓) per node × quantity cell (Section 6.1, Figs. 5–6).
	KindPareto = "pareto"
	// KindPlanPortfolio runs the §7 planner across a portfolio of
	// market scenarios, recommending a plan per scenario.
	KindPlanPortfolio = "plan-portfolio"
	// KindTimeline evaluates a composed time-varying scenario — an
	// inline timeline spec or a named historical episode — step by
	// step with the compiled evaluator (TTM/CAS curves plus summary
	// statistics).
	KindTimeline = "timeline"
)

// Kinds lists the supported job kinds.
func Kinds() []string {
	return []string{KindMCBand, KindSensitivity, KindSweep, KindPareto, KindPlanPortfolio, KindTimeline}
}

// ErrInvalidSpec wraps every spec validation failure; the HTTP layer
// maps it to 422.
var ErrInvalidSpec = errors.New("jobs: invalid spec")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalidSpec, fmt.Sprintf(format, args...))
}

// Limits clamp client-supplied spec sizes; the zero value selects the
// defaults.
type Limits struct {
	// MaxSamples caps the Monte-Carlo sample count and the Saltelli
	// base N (default 8192).
	MaxSamples int
	// MaxPoints caps the length of every point list — xs, nodes,
	// quantities, scenarios (default 64).
	MaxPoints int
	// MaxEvaluations caps the estimated total model evaluations of a
	// single job (default 2,000,000).
	MaxEvaluations int
}

func (l Limits) withDefaults() Limits {
	if l.MaxSamples <= 0 {
		l.MaxSamples = 8192
	}
	if l.MaxPoints <= 0 {
		l.MaxPoints = 64
	}
	if l.MaxEvaluations <= 0 {
		l.MaxEvaluations = 2_000_000
	}
	return l
}

// Spec describes one batch-evaluation job: which engine to run
// (Kind) and its inputs. Fields outside a kind's section are ignored
// by that kind.
type Spec struct {
	// Kind selects the engine: mc-band, sensitivity, sweep, pareto, or
	// plan-portfolio.
	Kind string `json:"kind"`

	// Design names a built-in design (a11, zen2, ariane16, raven,
	// chipA, chipB); Node optionally re-targets it; N is the chip
	// quantity (default 10e6).
	Design string  `json:"design,omitempty"`
	Node   string  `json:"node,omitempty"`
	N      float64 `json:"n,omitempty"`

	// Scenario / Capacity / QueueWeeks set the market conditions, as
	// in the evaluation routes: a named scenario overrides the
	// explicit fields.
	Scenario   string  `json:"scenario,omitempty"`
	Capacity   float64 `json:"capacity,omitempty"`
	QueueWeeks float64 `json:"queue_weeks,omitempty"`

	// Samples is the Monte-Carlo sample count (mc-band, default 1024)
	// or Saltelli base N (sensitivity, default 512); Variation is the
	// sensitivity half-range (default ±10%); Seed fixes the streams.
	Samples   int     `json:"samples,omitempty"`
	Variation float64 `json:"variation,omitempty"`
	Seed      int64   `json:"seed,omitempty"`

	// Metric selects what an mc-band curve reports: "ttm" (default)
	// or "cas".
	Metric string `json:"metric,omitempty"`
	// Xs are the global capacity fractions of an mc-band curve
	// (default 16 points from 0.25 to 1.0).
	Xs []float64 `json:"xs,omitempty"`

	// Nodes and Quantities span the sweep/pareto grid (defaults:
	// every producing node × [N]).
	Nodes      []string  `json:"nodes,omitempty"`
	Quantities []float64 `json:"quantities,omitempty"`
	// CacheRefs is the pareto kind's cache-simulation reference count
	// (default 200,000).
	CacheRefs int `json:"cache_refs,omitempty"`

	// DeadlineWeeks / BudgetUSD / MinCAS are the plan-portfolio
	// requirements; Scenarios names the portfolio (default every
	// built-in scenario).
	DeadlineWeeks float64  `json:"deadline_weeks,omitempty"`
	BudgetUSD     float64  `json:"budget_usd,omitempty"`
	MinCAS        float64  `json:"min_cas,omitempty"`
	Scenarios     []string `json:"scenarios,omitempty"`

	// Timeline is the timeline kind's inline spec; Episode names a
	// built-in historical episode instead (at most one of the two;
	// neither selects the flagship global-shortage episode). InFlight
	// additionally runs the discrete-event in-flight order study. The
	// base scenario lives inside the timeline spec, so the top-level
	// Scenario field is rejected for this kind.
	Timeline *timeline.Spec `json:"timeline,omitempty"`
	Episode  string         `json:"episode,omitempty"`
	InFlight bool           `json:"in_flight,omitempty"`

	// TimeoutSeconds overrides the manager's default per-job deadline.
	TimeoutSeconds float64 `json:"timeout_seconds,omitempty"`
}

func (s Spec) normalized() Spec {
	s.Kind = strings.ToLower(strings.TrimSpace(s.Kind))
	s.Metric = strings.ToLower(strings.TrimSpace(s.Metric))
	return s
}

func (s Spec) n() float64 {
	if s.N <= 0 {
		return 10e6
	}
	return s.N
}

func (s Spec) samples(def int) int {
	if s.Samples <= 0 {
		return def
	}
	return s.Samples
}

func (s Spec) xs() []float64 {
	if len(s.Xs) > 0 {
		return s.Xs
	}
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = 0.25 + 0.05*float64(i)
	}
	return xs
}

func (s Spec) cacheRefs() int {
	if s.CacheRefs <= 0 {
		return 200_000
	}
	return s.CacheRefs
}

func (s Spec) timeout(def time.Duration) time.Duration {
	if s.TimeoutSeconds <= 0 {
		return def
	}
	return time.Duration(s.TimeoutSeconds * float64(time.Second))
}

func (s Spec) scenarioNames() []string {
	if len(s.Scenarios) > 0 {
		return s.Scenarios
	}
	all := ttmcas.Scenarios()
	names := make([]string, len(all))
	for i, sc := range all {
		names[i] = sc.Name
	}
	return names
}

func (s Spec) gridNodes() ([]technode.Node, error) {
	if len(s.Nodes) == 0 {
		return technode.Producing(), nil
	}
	out := make([]technode.Node, len(s.Nodes))
	for i, name := range s.Nodes {
		n, err := technode.Parse(name)
		if err != nil {
			return nil, invalidf("nodes[%d]: %v", i, err)
		}
		out[i] = n
	}
	return out, nil
}

func (s Spec) quantities() []float64 {
	if len(s.Quantities) > 0 {
		return s.Quantities
	}
	return []float64{s.n()}
}

// EstimatedEvaluations returns the evaluation-unit total a spec
// implies — the denominator of the progress fraction and the quantity
// Limits.MaxEvaluations bounds.
func (s Spec) EstimatedEvaluations() int {
	switch s.Kind {
	case KindMCBand:
		return len(s.xs()) * 2 * s.samples(mc.DefaultSamples)
	case KindSensitivity:
		return s.samples(512) * (len(core.Inputs) + 2)
	case KindSweep:
		nodes := len(s.Nodes)
		if nodes == 0 {
			nodes = len(technode.Producing())
		}
		return nodes * len(s.quantities())
	case KindPareto:
		nodes := len(s.Nodes)
		if nodes == 0 {
			nodes = len(technode.Producing())
		}
		// Each grid cell evaluates the full (I$, D$) cross-product.
		k := len(cachesim.SweepSizesKB)
		return nodes * len(s.quantities()) * k * k
	case KindPlanPortfolio:
		// One planner exploration per scenario; each explores every
		// producing node plus the two-node splits.
		p := len(technode.Producing())
		return len(s.scenarioNames()) * p * p
	case KindTimeline:
		ts, err := s.timelineSpec()
		if err != nil {
			return 0
		}
		return ts.StepCount()
	default:
		return 0
	}
}

// timelineSpec resolves the timeline kind's spec: the inline one, the
// named episode's, or — like every other kind's defaults — the
// flagship episode when neither is given.
func (s Spec) timelineSpec() (timeline.Spec, error) {
	switch {
	case s.Timeline != nil && s.Episode != "":
		return timeline.Spec{}, invalidf("timeline and episode are mutually exclusive")
	case s.Timeline != nil:
		return *s.Timeline, nil
	default:
		name := s.Episode
		if name == "" {
			name = timeline.EpisodeNames()[0]
		}
		ep, ok := timeline.FindEpisode(name)
		if !ok {
			return timeline.Spec{}, invalidf("unknown episode %q (one of %s)",
				name, strings.Join(timeline.EpisodeNames(), ", "))
		}
		return ep.Spec, nil
	}
}

// Validate checks a spec against the limits, resolving every name
// eagerly so submission — not the worker — rejects bad requests. All
// failures wrap ErrInvalidSpec.
func (s Spec) Validate(lim Limits) error {
	lim = lim.withDefaults()
	switch s.Kind {
	case KindMCBand, KindSensitivity, KindSweep, KindPareto, KindPlanPortfolio, KindTimeline:
	case "":
		return invalidf("missing kind (one of %s)", strings.Join(Kinds(), ", "))
	default:
		return invalidf("unknown kind %q (one of %s)", s.Kind, strings.Join(Kinds(), ", "))
	}
	if s.Design == "" {
		return invalidf("missing design (one of %s)", strings.Join(ttmcas.DesignNames(), ", "))
	}
	if _, err := ttmcas.DesignByName(s.Design); err != nil {
		return invalidf("%v", err)
	}
	if s.Node != "" {
		if _, err := ttmcas.ParseNode(s.Node); err != nil {
			return invalidf("%v", err)
		}
	}
	if s.N < 0 {
		return invalidf("negative n %v", s.N)
	}
	if s.Scenario != "" {
		if _, ok := ttmcas.FindScenario(s.Scenario); !ok {
			return invalidf("unknown scenario %q", s.Scenario)
		}
	}
	if s.Capacity < 0 || s.Capacity > 1 {
		return invalidf("capacity %v outside [0, 1]", s.Capacity)
	}
	if s.QueueWeeks < 0 {
		return invalidf("negative queue_weeks %v", s.QueueWeeks)
	}
	if s.Samples < 0 || s.Samples > lim.MaxSamples {
		return invalidf("samples %d outside [0, %d]", s.Samples, lim.MaxSamples)
	}
	if s.Variation < 0 || s.Variation >= 1 {
		return invalidf("variation %v outside [0, 1)", s.Variation)
	}
	for name, n := range map[string]int{
		"xs": len(s.Xs), "nodes": len(s.Nodes),
		"quantities": len(s.Quantities), "scenarios": len(s.Scenarios),
	} {
		if n > lim.MaxPoints {
			return invalidf("%s has %d entries, max %d", name, n, lim.MaxPoints)
		}
	}
	for i, x := range s.Xs {
		if x <= 0 || x > 1 {
			return invalidf("xs[%d] = %v outside (0, 1]", i, x)
		}
	}
	if _, err := s.gridNodes(); err != nil {
		return err
	}
	for i, q := range s.Quantities {
		if q <= 0 {
			return invalidf("quantities[%d] = %v must be positive", i, q)
		}
	}
	if s.Kind == KindMCBand {
		switch s.Metric {
		case "", "ttm", "cas":
		default:
			return invalidf(`metric %q (want "ttm" or "cas")`, s.Metric)
		}
	}
	if s.CacheRefs < 0 || s.CacheRefs > 2_000_000 {
		return invalidf("cache_refs %d outside [0, 2000000]", s.CacheRefs)
	}
	if s.DeadlineWeeks < 0 || s.BudgetUSD < 0 || s.MinCAS < 0 {
		return invalidf("plan constraints must be non-negative")
	}
	for i, name := range s.Scenarios {
		if _, ok := ttmcas.FindScenario(name); !ok {
			return invalidf("scenarios[%d]: unknown scenario %q", i, name)
		}
	}
	if s.TimeoutSeconds < 0 {
		return invalidf("negative timeout_seconds %v", s.TimeoutSeconds)
	}
	if s.Kind == KindTimeline {
		ts, err := s.timelineSpec()
		if err != nil {
			return err
		}
		if s.Scenario != "" {
			return invalidf("timeline jobs set the base scenario inside the timeline spec, not the scenario field")
		}
		// The step budget rides the sample limit: one compiled evaluation
		// per step, same order of work as one Monte-Carlo sample.
		if err := ts.Validate(timeline.Limits{MaxSteps: lim.MaxSamples, MaxSegments: lim.MaxPoints}); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
		}
	} else if s.Timeline != nil || s.Episode != "" {
		return invalidf("timeline/episode fields belong to the %q kind", KindTimeline)
	}
	if est := s.EstimatedEvaluations(); est > lim.MaxEvaluations {
		return invalidf("estimated %d evaluations exceed the limit %d (reduce samples or grid size)",
			est, lim.MaxEvaluations)
	}
	return nil
}

// resolveEval turns the spec's design/conditions fields into concrete
// values. Validate has already vetted the names, so failures here are
// internal errors.
func (s Spec) resolveEval() (ttmcas.Design, ttmcas.Conditions, error) {
	d, err := ttmcas.DesignByName(s.Design)
	if err != nil {
		return d, ttmcas.Conditions{}, err
	}
	if s.Node != "" {
		n, err := ttmcas.ParseNode(s.Node)
		if err != nil {
			return d, ttmcas.Conditions{}, err
		}
		d = d.Retarget(n)
	}
	if s.Scenario != "" {
		sc, ok := ttmcas.FindScenario(s.Scenario)
		if !ok {
			return d, ttmcas.Conditions{}, fmt.Errorf("jobs: unknown scenario %q", s.Scenario)
		}
		return d, sc.Conditions, nil
	}
	c := ttmcas.FullCapacity()
	if s.Capacity > 0 {
		c = c.AtCapacity(s.Capacity)
	}
	if s.QueueWeeks > 0 {
		c = c.WithQueueAll(ttmcas.Weeks(s.QueueWeeks))
	}
	return d, c, nil
}

// runHook, when non-nil, replaces every spec's runner — the test seam
// for exercising the manager's panic recovery, deadline, and
// cancellation paths with synthetic workloads.
var runHook func(ctx context.Context, s Spec, pr Tracker) (any, error)

// run dispatches to the kind's engine. The returned value must be
// JSON-marshalable; pr receives progress as evaluation units complete.
func (s Spec) run(ctx context.Context, pr Tracker) (any, error) {
	if h := runHook; h != nil {
		return h(ctx, s, pr)
	}
	switch s.Kind {
	case KindMCBand:
		return s.runMCBand(ctx, pr)
	case KindSensitivity:
		return s.runSensitivity(ctx, pr)
	case KindSweep:
		return s.runSweep(ctx, pr)
	case KindPareto:
		return s.runPareto(ctx, pr)
	case KindPlanPortfolio:
		return s.runPlanPortfolio(ctx, pr)
	case KindTimeline:
		return s.runTimeline(ctx, pr)
	default:
		return nil, invalidf("unknown kind %q", s.Kind)
	}
}

// finite returns a pointer to v, or nil when it is not finite —
// stalled TTMs are +Inf, which JSON cannot encode.
func finite(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// ---- mc-band -------------------------------------------------------

// BandPoint is one x-position of an mc-band result. The nil-able
// fields mark positions where production stalls (infinite TTM).
type BandPoint struct {
	X      float64  `json:"x"`
	Mean   *float64 `json:"mean"`
	CI10Lo *float64 `json:"ci10_lo"`
	CI10Hi *float64 `json:"ci10_hi"`
	CI25Lo *float64 `json:"ci25_lo"`
	CI25Hi *float64 `json:"ci25_hi"`
}

// BandResult is the mc-band job result.
type BandResult struct {
	Design  string      `json:"design"`
	Metric  string      `json:"metric"`
	Chips   float64     `json:"chips"`
	Samples int         `json:"samples"`
	Seed    int64       `json:"seed"`
	Points  []BandPoint `json:"points"`
}

func (s Spec) runMCBand(ctx context.Context, pr Tracker) (any, error) {
	d, c, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	n := s.n()
	samples := s.samples(mc.DefaultSamples)
	xs := s.xs()
	pr.SetTotal(uint64(len(xs) * 2 * samples))

	metric := s.Metric
	if metric == "" {
		metric = "ttm"
	}
	sel := mc.MetricTTM
	if metric == "cas" {
		sel = mc.MetricCAS
	}
	cfg := mc.Config{Samples: samples, Seed: s.Seed}
	// BandCurveEval compiles the design once and runs the whole curve on
	// the zero-allocation kernel; results are bit-for-bit what the
	// map-based BandCurve closure produced.
	bands, err := mc.BandCurveEval(ctx, core.Model{}, cfg, d, n, c, xs, sel, func() { pr.Add(1) })
	if err != nil {
		return nil, err
	}
	res := BandResult{Design: d.Name, Metric: metric, Chips: n, Samples: samples, Seed: s.Seed}
	for _, b := range bands {
		res.Points = append(res.Points, BandPoint{
			X: b.X, Mean: finite(b.Mean),
			CI10Lo: finite(b.CI10.Lo), CI10Hi: finite(b.CI10.Hi),
			CI25Lo: finite(b.CI25.Lo), CI25Hi: finite(b.CI25.Hi),
		})
	}
	return res, nil
}

// ---- sensitivity ---------------------------------------------------

// SensitivityResult is the sensitivity job result.
type SensitivityResult struct {
	Design      string    `json:"design"`
	Chips       float64   `json:"chips"`
	Inputs      []string  `json:"inputs"`
	TotalEffect []float64 `json:"total_effect"`
	FirstOrder  []float64 `json:"first_order"`
	VarY        float64   `json:"var_y"`
	Evaluations int       `json:"evaluations"`
}

func (s Spec) runSensitivity(ctx context.Context, pr Tracker) (any, error) {
	d, c, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	n := s.n()
	cfg := sens.Config{N: s.samples(512), Variation: s.Variation, Seed: s.Seed}
	pr.SetTotal(uint64(cfg.N * (len(core.Inputs) + 2)))
	ev, err := core.Model{}.Compile(d, n, c)
	if err != nil {
		return nil, err
	}
	// The Saltelli columns feed the kernel's EvalBatch directly
	// (core.Inputs order is the batch column order); progress advances
	// once per sample so the tracker total stays N·(k+2).
	res, err := sens.TotalEffectBatch(ctx, core.Inputs, cfg, sensBatchFactory(ev, pr.Add))
	if err != nil {
		return nil, err
	}
	return SensitivityResult{
		Design: d.Name, Chips: n,
		Inputs: res.Inputs, TotalEffect: res.Total, FirstOrder: res.First,
		VarY: res.VarY, Evaluations: res.Evaluations,
	}, nil
}

// sensBatchFactory adapts a compiled evaluator to the sens.BatchEval
// shape: each call clones the evaluator for its goroutine, binds the
// Saltelli columns as batch inputs, and reports progress per completed
// sample (before surfacing the first per-sample error, so the count
// matches what was actually evaluated).
func sensBatchFactory(ev *core.Evaluator, onEval func(uint64)) func() (sens.BatchEval, error) {
	return func() (sens.BatchEval, error) {
		w := ev.Clone()
		var (
			b    core.Batch
			wout []units.Weeks
			errs core.BatchErrors
		)
		return func(cols [][]float64, out []float64) error {
			b.NTT, b.NUT, b.D0, b.Rate, b.FabLatency, b.TAPLatency = cols[0], cols[1], cols[2], cols[3], cols[4], cols[5]
			if cap(wout) < len(out) {
				wout = make([]units.Weeks, len(out))
			}
			ws := wout[:len(out)]
			if err := w.EvalBatch(&b, ws, &errs); err != nil {
				return err
			}
			if onEval != nil {
				onEval(uint64(len(out)))
			}
			for j, t := range ws {
				out[j] = float64(t)
			}
			_, err := errs.First()
			return err
		}, nil
	}
}

// ---- sweep ---------------------------------------------------------

// SweepCell is one (node, quantity) cell of a sweep result.
type SweepCell struct {
	Node     string   `json:"node"`
	Quantity float64  `json:"quantity"`
	TTMWeeks *float64 `json:"ttm_weeks"`
	Stalled  bool     `json:"stalled,omitempty"`
	CAS      float64  `json:"cas"`
	CostUSD  float64  `json:"cost_usd"`
}

// SweepResult is the sweep job result.
type SweepResult struct {
	Design string      `json:"design"`
	Cells  []SweepCell `json:"cells"`
}

type gridCell struct {
	node technode.Node
	q    float64
}

func (s Spec) grid() ([]gridCell, error) {
	nodes, err := s.gridNodes()
	if err != nil {
		return nil, err
	}
	var cells []gridCell
	for _, n := range nodes {
		for _, q := range s.quantities() {
			cells = append(cells, gridCell{n, q})
		}
	}
	return cells, nil
}

func (s Spec) runSweep(ctx context.Context, pr Tracker) (any, error) {
	d, c, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	cells, err := s.grid()
	if err != nil {
		return nil, err
	}
	pr.SetTotal(uint64(len(cells)))
	eval := sweepCellEval(d, c)
	out, err := sweep.Map(ctx, cells, 0, func(cell gridCell) (SweepCell, error) {
		defer pr.Add(1)
		return eval(cell)
	})
	if err != nil {
		return nil, err
	}
	return SweepResult{Design: d.Name, Cells: out}, nil
}

// sweepCellEval returns the per-cell evaluator of the sweep kind:
// retarget the design to the cell's node and report TTM, CAS and cost
// at the cell's quantity. Shared by the serial runner and the shard
// runner so both produce identical cells.
func sweepCellEval(d ttmcas.Design, c ttmcas.Conditions) func(gridCell) (SweepCell, error) {
	var m core.Model
	var cm ttmcas.CostModel
	return func(cell gridCell) (SweepCell, error) {
		rd := d.Retarget(cell.node)
		ttm, err := m.TTM(rd, cell.q, c)
		if err != nil {
			return SweepCell{}, err
		}
		cas, err := m.CAS(rd, cell.q, c)
		if err != nil {
			return SweepCell{}, err
		}
		total, err := cm.Total(rd, cell.q)
		if err != nil {
			return SweepCell{}, err
		}
		w := finite(float64(ttm))
		return SweepCell{
			Node: cell.node.String(), Quantity: cell.q,
			TTMWeeks: w, Stalled: w == nil,
			CAS: cas.CAS, CostUSD: float64(total),
		}, nil
	}
}

// ---- pareto --------------------------------------------------------

// ParetoPoint is one non-dominated cache configuration.
type ParetoPoint struct {
	ICacheKB   int      `json:"icache_kb"`
	DCacheKB   int      `json:"dcache_kb"`
	IPC        float64  `json:"ipc"`
	TTMWeeks   *float64 `json:"ttm_weeks"`
	CostUSD    float64  `json:"cost_usd"`
	IPCPerTTM  float64  `json:"ipc_per_ttm"`
	IPCPerCost float64  `json:"ipc_per_cost"`
}

// ParetoCell is the front for one (node, quantity) cell.
type ParetoCell struct {
	Node       string        `json:"node"`
	Quantity   float64       `json:"quantity"`
	Configs    int           `json:"configs"`
	Front      []ParetoPoint `json:"front"`
	BestPerTTM *ParetoPoint  `json:"best_per_ttm,omitempty"`
}

// ParetoResult is the pareto job result.
type ParetoResult struct {
	CacheRefs int          `json:"cache_refs"`
	Cells     []ParetoCell `json:"cells"`
}

func (s Spec) runPareto(ctx context.Context, pr Tracker) (any, error) {
	_, c, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	cells, err := s.grid()
	if err != nil {
		return nil, err
	}
	k := len(cachesim.SweepSizesKB)
	pr.SetTotal(uint64(len(cells) * k * k))
	// The IPC table is node-independent: build it once, share it
	// across every cell.
	tbl, err := cachesim.BuildIPCTable(cachesim.SPECLike(), cachesim.CPUModel{}, cachesim.SweepSizesKB, s.cacheRefs())
	if err != nil {
		return nil, err
	}
	res := ParetoResult{CacheRefs: s.cacheRefs()}
	for _, cell := range cells {
		study := opt.CacheStudy{Table: tbl, Conditions: c}
		pts, err := study.EvaluateCtx(ctx, cell.node, cell.q)
		if err != nil {
			return nil, err
		}
		pr.Add(uint64(k * k))
		front := opt.ParetoFront(pts)
		pc := ParetoCell{Node: cell.node.String(), Quantity: cell.q, Configs: len(pts)}
		for _, p := range front {
			pc.Front = append(pc.Front, paretoPoint(p))
		}
		if best, err := opt.Best(pts, opt.MaxIPCPerTTM); err == nil {
			bp := paretoPoint(best)
			pc.BestPerTTM = &bp
		}
		res.Cells = append(res.Cells, pc)
	}
	return res, nil
}

func paretoPoint(p opt.CachePoint) ParetoPoint {
	return ParetoPoint{
		ICacheKB: p.IKB, DCacheKB: p.DKB, IPC: p.IPC,
		TTMWeeks: finite(float64(p.TTM)), CostUSD: float64(p.Cost),
		IPCPerTTM: p.IPCPerTTM, IPCPerCost: p.IPCPerCost,
	}
}

// ---- plan-portfolio ------------------------------------------------

// PlanScenario is the planner verdict for one scenario.
type PlanScenario struct {
	Scenario    string       `json:"scenario"`
	Feasible    bool         `json:"feasible"`
	Recommended *PlanChoice  `json:"recommended,omitempty"`
	Options     []PlanChoice `json:"options"`
}

// PlanChoice is one evaluated plan.
type PlanChoice struct {
	Name        string   `json:"name"`
	Primary     string   `json:"primary"`
	Secondary   string   `json:"secondary,omitempty"`
	FracPrimary float64  `json:"frac_primary,omitempty"`
	TTMWeeks    *float64 `json:"ttm_weeks,omitempty"`
	CostUSD     float64  `json:"cost_usd"`
	CAS         float64  `json:"cas"`
	Feasible    bool     `json:"feasible"`
	Violations  []string `json:"violations,omitempty"`
}

// PortfolioResult is the plan-portfolio job result.
type PortfolioResult struct {
	Design    string         `json:"design"`
	Chips     float64        `json:"chips"`
	Scenarios []PlanScenario `json:"scenarios"`
}

func (s Spec) runPlanPortfolio(ctx context.Context, pr Tracker) (any, error) {
	d, _, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	n := s.n()
	names := s.scenarioNames()
	pr.SetTotal(uint64(len(names)))
	res := PortfolioResult{Design: d.Name, Chips: n}
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc, ok := ttmcas.FindScenario(name)
		if !ok {
			return nil, fmt.Errorf("jobs: unknown scenario %q", name)
		}
		planner := plan.Planner{
			Factory:      func(node technode.Node) ttmcas.Design { return d.Retarget(node) },
			Conditions:   sc.Conditions,
			MultiProcess: true,
		}
		best, all, err := planner.Recommend(plan.Requirements{
			Volume:   n,
			Deadline: ttmcas.Weeks(s.DeadlineWeeks),
			Budget:   ttmcas.USD(s.BudgetUSD),
			MinCAS:   s.MinCAS,
		})
		ps := PlanScenario{Scenario: name}
		switch {
		case err == nil:
			ps.Feasible = true
			rec := planChoice(best)
			ps.Recommended = &rec
		case errors.Is(err, plan.ErrNoFeasiblePlan):
			// Feasible stays false; the ranked options below show the
			// nearest misses.
		default:
			return nil, err
		}
		for i, o := range all {
			if i >= 5 {
				break
			}
			ps.Options = append(ps.Options, planChoice(o))
		}
		res.Scenarios = append(res.Scenarios, ps)
		pr.Add(1)
	}
	return res, nil
}

// ---- timeline ------------------------------------------------------

func (s Spec) runTimeline(ctx context.Context, pr Tracker) (any, error) {
	d, _, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	ts, err := s.timelineSpec()
	if err != nil {
		return nil, err
	}
	// Submission already validated the spec against the manager's
	// limits; compile under a generous ceiling so a manager configured
	// above the defaults is not re-clamped here.
	tl, err := timeline.Compile(ts, timeline.Limits{MaxSteps: 1 << 20})
	if err != nil {
		return nil, err
	}
	pr.SetTotal(uint64(tl.StepCount()))
	return timeline.Evaluate(ctx, core.Model{}, d, s.n(), tl, timeline.Options{
		InFlight: s.InFlight,
		OnStep:   func() { pr.Add(1) },
	})
}

func planChoice(o plan.Option) PlanChoice {
	pc := PlanChoice{
		Name:        o.Name,
		Primary:     o.Primary.String(),
		FracPrimary: o.FracPrimary,
		TTMWeeks:    finite(float64(o.TTM)),
		CostUSD:     float64(o.Cost),
		CAS:         o.CAS,
		Feasible:    o.Feasible,
		Violations:  o.Violations,
	}
	if o.Secondary != 0 {
		pc.Secondary = o.Secondary.String()
	}
	return pc
}
