package jobs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"ttmcas/internal/core"
	"ttmcas/internal/mc"
	"ttmcas/internal/sens"
	"ttmcas/internal/timeline"
)

// Distributor is the cluster seam for sharded job execution: the
// server wires one over its peer transport; nil keeps every job
// single-node. Implementations must be safe for concurrent use.
type Distributor interface {
	// Targets returns the dispatch-eligible peers (alive, not self),
	// healthiest first. An empty slice disables distribution for the
	// job at hand.
	Targets() []string
	// Dispatch executes req on target and returns its result. A
	// non-nil error is a transport-level failure — timeout, refused
	// connection, peer restart — and is retryable; deterministic
	// compute errors travel inside ShardResult.Err instead.
	Dispatch(ctx context.Context, target string, req ShardRequest) (ShardResult, error)
}

// ShardObserver is an optional extension of Observer; when the
// manager's observer also implements it, shard lifecycle events feed
// the ttmcas_jobs_shards_* metrics.
type ShardObserver interface {
	// ShardDispatched fires before each remote dispatch attempt.
	ShardDispatched(kind string)
	// ShardCompleted fires when a remote shard returns, with its
	// round-trip latency.
	ShardCompleted(kind string, latency time.Duration)
	// ShardHedged fires when a dispatch attempt fails (deadline or
	// transport) and the shard is re-dispatched to the next peer.
	ShardHedged(kind string)
	// ShardFallback fires when every peer attempt failed and the
	// coordinator computes the shard locally.
	ShardFallback(kind string)
}

// planShards splits a spec into one shard per participant (the
// coordinator plus each target), balanced over the kind's shard space.
// nil means the job should run single-node: no peers, a kind that
// does not shard, a job too small to be worth the round-trips, or a
// space too small to split.
func planShards(s Spec, job string, targets, minEvals int) []ShardRequest {
	if targets < 1 || s.EstimatedEvaluations() < minEvals {
		return nil
	}
	space := s.shardSpace()
	p := targets + 1
	if p > space {
		p = space
	}
	if p < 2 {
		return nil
	}
	reqs := make([]ShardRequest, p)
	for i := range reqs {
		reqs[i] = ShardRequest{Job: job, Index: i, Lo: i * space / p, Hi: (i + 1) * space / p, Spec: s}
	}
	return reqs
}

// PaceShard blocks for req's share of a synthetic per-unit latency
// floor — shardUnits(Lo, Hi) × perUnit — honoring ctx cancellation.
// It exists for benchmark harnesses: on a single-core runner genuine
// N-node CPU scaling is impossible, so the loadtest cluster gives job
// compute a sleep-bound cost (the same way the cluster scenario pins
// /v1/ttm to a 5ms injected floor). A paced shard's wall time then
// tracks its unit count on whichever node executes it, and splitting a
// job into P shards is a genuine ~P× speedup. Production configs leave
// the delay zero, which makes this a no-op.
func PaceShard(ctx context.Context, req ShardRequest, perUnit time.Duration) {
	if perUnit <= 0 || req.Hi <= req.Lo {
		return
	}
	d := time.Duration(req.Spec.normalized().shardUnits(req.Lo, req.Hi)) * perUnit
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// pace applies the manager's configured latency floor after a local
// compute has succeeded (post-compute keeps invalid requests from
// sleeping and costs the same wall time as pacing the work itself).
func (m *Manager) pace(ctx context.Context, req ShardRequest) {
	PaceShard(ctx, req, m.cfg.EvalDelay)
}

// runSpec executes a job's spec, distributed across the ring when a
// Distributor is wired, peers are alive, and the spec is heavy enough
// to shard; otherwise it is the plain single-node run. The runHook
// test seam always runs locally — it replaces the runner itself.
func (m *Manager) runSpec(ctx context.Context, j *Job) (any, error) {
	if plan := j.shardPlan(); plan != nil && runHook == nil {
		// A restored checkpoint: resume the persisted scatter plan —
		// NOT a freshly computed one, whose shard boundaries could
		// differ and misalign the completed results. With no (or a
		// dead) distributor the missing shards simply run locally.
		d := m.cfg.Distributor
		var targets []string
		if d != nil {
			targets = d.Targets()
		}
		return m.runDistributed(ctx, j, d, targets, plan)
	}
	if d := m.cfg.Distributor; d != nil && runHook == nil {
		targets := d.Targets()
		if reqs := planShards(j.spec, j.id, len(targets), m.cfg.DistMinEvaluations); reqs != nil {
			return m.runDistributed(ctx, j, d, targets, reqs)
		}
	}
	out, err := j.spec.run(ctx, Tracker{j})
	if err == nil && m.cfg.EvalDelay > 0 {
		if space := j.spec.shardSpace(); space > 0 {
			m.pace(ctx, ShardRequest{Hi: space, Spec: j.spec})
		}
	}
	return out, err
}

// runDistributed scatters the planned shards and gathers their partial
// results into the exact single-node answer. Shard 0 always runs
// locally on the worker's goroutine — the coordinator is a participant,
// not just a router — while shards 1..P-1 dispatch concurrently.
//
// Failure semantics: the gathered job can only fail in ways the
// single-node run could. Transport failures hedge to the next-alive
// peer and finally fall back to local compute, so a dead ring
// degrades throughput, never correctness. A deterministic compute
// error is surfaced from the lowest-index erroring shard, which — the
// shard runners report their internally-first error — is exactly the
// error the serial run would have returned.
func (m *Manager) runDistributed(ctx context.Context, j *Job, d Distributor, targets []string, reqs []ShardRequest) (any, error) {
	s := reqs[0].Spec
	space := s.shardSpace()
	Tracker{j}.SetTotal(s.shardUnits(0, space))
	// Record the in-flight coordinator and its scatter plan: if the
	// process dies mid-gather the restarted manager resumes this plan,
	// re-running only the shards whose results were not checkpointed.
	j.setPlan(reqs)
	m.persist(j)

	results := make([]ShardResult, len(reqs))
	errs := make([]error, len(reqs))
	var wg sync.WaitGroup
	for i := 1; i < len(reqs); i++ {
		if res, ok := j.shardDone(i); ok {
			results[i] = res
			Tracker{j}.Add(res.Evals)
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = m.dispatchShard(ctx, j, d, targets, reqs[i])
			if errs[i] == nil && results[i].Err == "" {
				j.noteShard(results[i])
				m.persist(j)
			}
		}(i)
	}
	if res, ok := j.shardDone(0); ok {
		results[0] = res
		Tracker{j}.Add(res.Evals)
	} else {
		results[0], errs[0] = RunShard(ctx, m.cfg.Limits, reqs[0], Tracker{j}.Add)
		if errs[0] == nil {
			m.pace(ctx, reqs[0])
			if results[0].Err == "" {
				j.noteShard(results[0])
				m.persist(j)
			}
		}
	}
	wg.Wait()

	if err := ctx.Err(); err != nil {
		// Cancellation fan-out: the per-dispatch contexts derive from
		// ctx, so every remote shard has already been cut off.
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := range results {
		if results[i].Err != "" {
			return nil, errors.New(results[i].Err)
		}
	}
	return mergeShards(ctx, s, results)
}

// dispatchShard runs one remote shard to completion: up to two peer
// attempts under per-attempt deadlines (the straggler hedge), then
// local fallback. Progress lands on the job tracker when the shard's
// evaluations are in hand (streamed for the local fallback).
func (m *Manager) dispatchShard(ctx context.Context, j *Job, d Distributor, targets []string, req ShardRequest) (ShardResult, error) {
	kind := req.Spec.Kind
	obs, _ := m.cfg.Observer.(ShardObserver)
	attempts := len(targets)
	if attempts > 2 {
		attempts = 2
	}
	for a := 0; a < attempts; a++ {
		if ctx.Err() != nil {
			return ShardResult{}, ctx.Err()
		}
		target := targets[(req.Index-1+a)%len(targets)]
		if obs != nil {
			obs.ShardDispatched(kind)
		}
		start := time.Now()
		sctx, cancel := context.WithTimeout(ctx, m.cfg.ShardTimeout)
		res, err := d.Dispatch(sctx, target, req)
		cancel()
		if err == nil {
			if obs != nil {
				obs.ShardCompleted(kind, time.Since(start))
			}
			Tracker{j}.Add(res.Evals)
			res.Index = req.Index
			return res, nil
		}
		if ctx.Err() != nil {
			return ShardResult{}, ctx.Err()
		}
		m.log.Printf("jobs: %s shard %d [%d,%d) on %s failed: %v",
			j.id, req.Index, req.Lo, req.Hi, target, err)
		if obs != nil && a+1 < attempts {
			obs.ShardHedged(kind)
		}
	}
	// Every peer attempt failed: a dead ring never fails a job that
	// single-node mode could finish.
	if obs != nil {
		obs.ShardFallback(kind)
	}
	res, err := RunShard(ctx, m.cfg.Limits, req, Tracker{j}.Add)
	if err == nil {
		m.pace(ctx, req)
	}
	return res, err
}

// mergeShards gathers ordered, error-free partials into the kind's
// result — bit-for-bit what the serial runner returns, because every
// shard drew exactly the serial run's values for its range.
func mergeShards(ctx context.Context, s Spec, parts []ShardResult) (any, error) {
	d, _, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindMCBand:
		metric := s.Metric
		if metric == "" {
			metric = "ttm"
		}
		res := BandResult{
			Design: d.Name, Metric: metric, Chips: s.n(),
			Samples: s.samples(mc.DefaultSamples), Seed: s.Seed,
		}
		for _, p := range parts {
			res.Points = append(res.Points, p.Points...)
		}
		if want := len(s.xs()); len(res.Points) != want {
			return nil, fmt.Errorf("jobs: merged %d band points, want %d", len(res.Points), want)
		}
		return res, nil

	case KindSensitivity:
		cfg := sens.Config{N: s.samples(512), Variation: s.Variation, Seed: s.Seed}
		want := cfg.N * (len(core.Inputs) + 2)
		ys := make([]float64, 0, want)
		for _, p := range parts {
			for _, b := range p.Bits {
				ys = append(ys, math.Float64frombits(b))
			}
		}
		if len(ys) != want {
			return nil, fmt.Errorf("jobs: merged %d sensitivity outputs, want %d", len(ys), want)
		}
		sr, err := sens.Reduce(core.Inputs, cfg, ys)
		if err != nil {
			return nil, err
		}
		return SensitivityResult{
			Design: d.Name, Chips: s.n(),
			Inputs: sr.Inputs, TotalEffect: sr.Total, FirstOrder: sr.First,
			VarY: sr.VarY, Evaluations: sr.Evaluations,
		}, nil

	case KindSweep:
		var cells []SweepCell
		for _, p := range parts {
			cells = append(cells, p.Cells...)
		}
		if want := s.shardSpace(); len(cells) != want {
			return nil, fmt.Errorf("jobs: merged %d sweep cells, want %d", len(cells), want)
		}
		return SweepResult{Design: d.Name, Cells: cells}, nil

	case KindTimeline:
		ts, err := s.timelineSpec()
		if err != nil {
			return nil, err
		}
		tl, err := timeline.Compile(ts, timeline.Limits{MaxSteps: 1 << 20})
		if err != nil {
			return nil, err
		}
		var steps []timeline.Step
		for _, p := range parts {
			steps = append(steps, p.Steps...)
		}
		return timeline.AssembleResult(ctx, core.Model{}, d, s.n(), tl, steps, timeline.Options{InFlight: s.InFlight})

	default:
		return nil, invalidf("kind %q is not shardable", s.Kind)
	}
}
