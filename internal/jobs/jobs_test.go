package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func quietConfig() Config {
	return Config{Logger: log.New(io.Discard, "", 0)}
}

// setRunHook installs a synthetic runner for the test and restores the
// real dispatch afterwards. Tests using it cannot run in parallel with
// each other.
func setRunHook(t *testing.T, h func(ctx context.Context, s Spec, pr Tracker) (any, error)) {
	t.Helper()
	runHook = h
	t.Cleanup(func() { runHook = nil })
}

// validSpec is a minimal spec that passes validation; the hook decides
// what actually runs.
func validSpec() Spec {
	return Spec{Kind: KindMCBand, Design: "a11", Samples: 8, Xs: []float64{0.5, 1}}
}

func waitStatus(t *testing.T, m *Manager, id string, want Status) View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared while waiting for %s", id, want)
		}
		if v.Status == want {
			return v
		}
		if v.Status.Finished() {
			t.Fatalf("job %s finished as %s (err %q), want %s", id, v.Status, v.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return View{}
}

func waitFinished(t *testing.T, m *Manager, id string) View {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s disappeared before finishing", id)
		}
		if v.Status.Finished() {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return View{}
}

func TestSubmitRunsToCompletion(t *testing.T) {
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		pr.SetTotal(4)
		pr.Add(4)
		return map[string]int{"answer": 42}, nil
	})
	m := New(quietConfig())
	defer m.Close()

	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusPending || v.ID == "" {
		t.Fatalf("submit view = %+v", v)
	}
	fin := waitFinished(t, m, v.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("status = %s (err %q)", fin.Status, fin.Error)
	}
	if fin.Done != 4 || fin.Total != 4 || fin.Fraction != 1 {
		t.Fatalf("progress = %d/%d (%v)", fin.Done, fin.Total, fin.Fraction)
	}
	raw, _, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]int
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["answer"] != 42 {
		t.Fatalf("result = %v", got)
	}
}

func TestResultBeforeFinishErrs(t *testing.T) {
	release := make(chan struct{})
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		<-release
		return "done", nil
	})
	m := New(quietConfig())
	defer m.Close()
	defer close(release)

	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Result(v.ID); !errors.Is(err, ErrNotFinished) {
		t.Fatalf("Result on unfinished job: err = %v, want ErrNotFinished", err)
	}
	if _, _, err := m.Result("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Result on unknown job: err = %v, want ErrNotFound", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{})
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	m := New(quietConfig())
	defer m.Close()

	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitFinished(t, m, v.ID)
	if fin.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", fin.Status)
	}
	if fin.Error != "cancelled" {
		t.Fatalf("error = %q", fin.Error)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	block := make(chan struct{})
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "ok", nil
	})
	cfg := quietConfig()
	cfg.Workers = 1
	m := New(cfg)
	defer m.Close()
	defer close(block)

	// First job occupies the only worker; the second stays queued.
	if _, err := m.Submit(validSpec()); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", v.Status)
	}
	// The worker must skip it once freed, never flipping it back.
	time.Sleep(20 * time.Millisecond)
	if got, _ := m.Get(queued.ID); got.Status != StatusCancelled {
		t.Fatalf("status after worker pass = %s", got.Status)
	}
}

func TestPanicFailsJobNotManager(t *testing.T) {
	calls := 0
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		calls++
		if calls == 1 {
			panic("synthetic failure")
		}
		return "ok", nil
	})
	cfg := quietConfig()
	cfg.Workers = 1
	m := New(cfg)
	defer m.Close()

	bad, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFinished(t, m, bad.ID)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "panic") {
		t.Fatalf("panicked job: status = %s, err = %q", fin.Status, fin.Error)
	}
	// The worker survived: a follow-up job still runs.
	good, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if fin := waitFinished(t, m, good.ID); fin.Status != StatusSucceeded {
		t.Fatalf("follow-up job: status = %s (err %q)", fin.Status, fin.Error)
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	cfg := quietConfig()
	cfg.DefaultTimeout = 20 * time.Millisecond
	m := New(cfg)
	defer m.Close()

	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFinished(t, m, v.ID)
	if fin.Status != StatusFailed || !strings.Contains(fin.Error, "deadline") {
		t.Fatalf("status = %s, err = %q, want failed deadline", fin.Status, fin.Error)
	}
}

func TestMaxActiveRejectsSubmit(t *testing.T) {
	block := make(chan struct{})
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return "ok", nil
	})
	cfg := quietConfig()
	cfg.Workers = 1
	cfg.MaxActive = 2
	m := New(cfg)
	defer m.Close()
	defer close(block)

	for i := 0; i < 2; i++ {
		if _, err := m.Submit(validSpec()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Submit(validSpec()); !errors.Is(err, ErrTooManyJobs) {
		t.Fatalf("third submit: err = %v, want ErrTooManyJobs", err)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	m := New(quietConfig())
	defer m.Close()
	for _, s := range []Spec{
		{},
		{Kind: "nope", Design: "a11"},
		{Kind: KindMCBand},
		{Kind: KindMCBand, Design: "nope"},
		{Kind: KindMCBand, Design: "a11", Samples: 1 << 20},
		{Kind: KindMCBand, Design: "a11", Xs: []float64{2}},
	} {
		if _, err := m.Submit(s); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("Submit(%+v): err = %v, want ErrInvalidSpec", s, err)
		}
	}
}

func TestTTLEvictsFinishedJobs(t *testing.T) {
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		return "ok", nil
	})
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	cfg := quietConfig()
	cfg.ResultTTL = time.Minute
	cfg.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	m := New(cfg)
	defer m.Close()

	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, m, v.ID)
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	m.evictExpired()
	if _, ok := m.Get(v.ID); ok {
		t.Fatal("job survived TTL eviction")
	}
}

func TestListNewestFirst(t *testing.T) {
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		return "ok", nil
	})
	m := New(quietConfig())
	defer m.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		v, err := m.Submit(validSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	views := m.List()
	if len(views) != 3 {
		t.Fatalf("len(List()) = %d", len(views))
	}
	for i, v := range views {
		if want := ids[len(ids)-1-i]; v.ID != want {
			t.Fatalf("List()[%d] = %s, want %s", i, v.ID, want)
		}
	}
}

func TestSnapshotSurvivesRestart(t *testing.T) {
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		pr.SetTotal(2)
		pr.Add(2)
		return map[string]string{"from": "first life"}, nil
	})
	dir := t.TempDir()
	cfg := quietConfig()
	cfg.SnapshotDir = dir

	m := New(cfg)
	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, m, v.ID)
	m.Close()

	m2 := New(cfg)
	defer m2.Close()
	got, ok := m2.Get(v.ID)
	if !ok {
		t.Fatal("restored manager lost the job")
	}
	if got.Status != StatusSucceeded || !got.Restored {
		t.Fatalf("restored view = %+v", got)
	}
	raw, _, err := m2.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "first life") {
		t.Fatalf("restored result = %s", raw)
	}
	// New submissions continue the id sequence instead of colliding.
	v2, err := m2.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID == v.ID {
		t.Fatalf("restored manager reused id %s", v2.ID)
	}
}

func TestDrainedRunningJobResumesAfterRestart(t *testing.T) {
	started := make(chan struct{}, 1)
	var resumed atomic.Bool
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		if resumed.Load() {
			return "second life", nil
		}
		<-ctx.Done()
		return nil, ctx.Err()
	})
	dir := t.TempDir()
	cfg := quietConfig()
	cfg.SnapshotDir = dir

	m := New(cfg)
	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m.Close() // drain: interrupts the running job

	resumed.Store(true)
	m2 := New(cfg)
	defer m2.Close()
	fin := waitFinished(t, m2, v.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("resumed job: status = %s (err %q)", fin.Status, fin.Error)
	}
	raw, _, err := m2.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "second life") {
		t.Fatalf("resumed result = %s", raw)
	}
}

func TestCorruptSnapshotQuarantined(t *testing.T) {
	dir := t.TempDir()
	// A snapshot truncated mid-write (no atomic rename — e.g. a copy
	// restored from a partial backup) must not poison startup.
	if err := os.WriteFile(filepath.Join(dir, "job-000001.json"), []byte(`{"view":{"id":"job-0`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-000002.json"), []byte(`{"view":{"id":"job-000009"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := quietConfig()
	cfg.SnapshotDir = dir
	m := New(cfg)
	defer m.Close()
	if got := len(m.List()); got != 0 {
		t.Fatalf("restored %d jobs from corrupt snapshots", got)
	}
	// The undecodable file is renamed aside — preserved for inspection,
	// never re-read — while the id-mismatched (but valid) one stays.
	if _, err := os.Stat(filepath.Join(dir, "job-000001.json.corrupt")); err != nil {
		t.Errorf("quarantined copy missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-000001.json")); !os.IsNotExist(err) {
		t.Errorf("corrupt snapshot still in place (err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "job-000002.json")); err != nil {
		t.Errorf("id-mismatched snapshot should stay: %v", err)
	}

	// A manager restarted over the same directory starts clean too.
	m2 := New(cfg)
	defer m2.Close()
	if got := len(m2.List()); got != 0 {
		t.Fatalf("second restart restored %d jobs", got)
	}
}

func TestRemoveDeletesJobAndSnapshot(t *testing.T) {
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		return "ok", nil
	})
	dir := t.TempDir()
	cfg := quietConfig()
	cfg.SnapshotDir = dir
	m := New(cfg)
	defer m.Close()

	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, m, v.ID)
	if _, err := m.Remove(v.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(v.ID); ok {
		t.Fatal("job survived Remove")
	}
	if _, err := os.Stat(filepath.Join(dir, v.ID+".json")); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived Remove: %v", err)
	}
	if _, err := m.Remove(v.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Remove: err = %v, want ErrNotFound", err)
	}
}

func TestSubmitAfterCloseErrs(t *testing.T) {
	m := New(quietConfig())
	m.Close()
	if _, err := m.Submit(validSpec()); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// observerRecorder records lifecycle callbacks.
type observerRecorder struct {
	mu        sync.Mutex
	submitted int
	started   int
	finished  map[Status]int
	evals     uint64
}

func (o *observerRecorder) JobSubmitted(string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.submitted++
}

func (o *observerRecorder) JobStarted(string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started++
}

func (o *observerRecorder) JobFinished(_ string, s Status, evals uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.finished == nil {
		o.finished = make(map[Status]int)
	}
	o.finished[s]++
	o.evals += evals
}

func TestObserverSeesLifecycle(t *testing.T) {
	setRunHook(t, func(ctx context.Context, s Spec, pr Tracker) (any, error) {
		pr.SetTotal(3)
		pr.Add(3)
		return "ok", nil
	})
	obs := &observerRecorder{}
	cfg := quietConfig()
	cfg.Observer = obs
	m := New(cfg)
	defer m.Close()

	v, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, m, v.ID)
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if obs.submitted != 1 || obs.started != 1 || obs.finished[StatusSucceeded] != 1 || obs.evals != 3 {
		t.Fatalf("observer = %+v", obs)
	}
}

// TestMCBandJobEndToEnd runs a real mc-band curve through the manager:
// 16 x-positions, monotonic progress, and a bit-for-bit match against
// calling the engine directly.
func TestMCBandJobEndToEnd(t *testing.T) {
	m := New(quietConfig())
	defer m.Close()

	spec := Spec{Kind: KindMCBand, Design: "a11", Node: "28", Samples: 16, Seed: 7}
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Progress must be monotonic while the job runs.
	var last uint64
	for {
		got, ok := m.Get(v.ID)
		if !ok {
			t.Fatal("job disappeared")
		}
		if got.Done < last {
			t.Fatalf("progress went backwards: %d after %d", got.Done, last)
		}
		last = got.Done
		if got.Status.Finished() {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fin := waitFinished(t, m, v.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("status = %s (err %q)", fin.Status, fin.Error)
	}
	wantTotal := uint64(16 * 2 * 16) // xs · two bands · samples
	if fin.Total != wantTotal || fin.Done != wantTotal {
		t.Fatalf("progress = %d/%d, want %d/%d", fin.Done, fin.Total, wantTotal, wantTotal)
	}
	raw, _, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var res BandResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 16 {
		t.Fatalf("points = %d, want 16", len(res.Points))
	}
	// Same spec run directly through the runner gives the same curve.
	var direct BandResult
	dv, err := spec.normalized().run(context.Background(), Tracker{&Job{}})
	if err != nil {
		t.Fatal(err)
	}
	direct = dv.(BandResult)
	for i := range res.Points {
		if *res.Points[i].Mean != *direct.Points[i].Mean {
			t.Fatalf("point %d: job mean %v != direct mean %v", i, *res.Points[i].Mean, *direct.Points[i].Mean)
		}
	}
}

// TestMCBandJobCancelMidRun cancels a real curve mid-flight and checks
// the workers observed the context within one evaluation batch.
func TestMCBandJobCancelMidRun(t *testing.T) {
	m := New(quietConfig())
	defer m.Close()

	// A CAS curve at the sample cap keeps the compiled kernel busy for
	// long enough (hundreds of ms) that the cancel below lands mid-run.
	spec := Spec{Kind: KindMCBand, Design: "a11", Metric: "cas", Samples: 8192, Seed: 1}
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for some progress, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for {
		got, _ := m.Get(v.ID)
		if got.Done > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitFinished(t, m, v.ID)
	if fin.Status != StatusCancelled {
		t.Fatalf("status = %s (err %q), want cancelled", fin.Status, fin.Error)
	}
	if fin.Done >= fin.Total {
		t.Fatalf("cancelled job completed all %d evaluations", fin.Total)
	}
}
