package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"ttmcas/internal/core"
	"ttmcas/internal/timeline"
)

func TestValidateAcceptsEveryKindWithDefaults(t *testing.T) {
	for _, kind := range Kinds() {
		s := Spec{Kind: kind, Design: "a11"}.normalized()
		if err := s.Validate(Limits{}); err != nil {
			t.Errorf("Validate(%s) = %v", kind, err)
		}
		if s.EstimatedEvaluations() <= 0 {
			t.Errorf("EstimatedEvaluations(%s) = %d", kind, s.EstimatedEvaluations())
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		lim  Limits
	}{
		{"missing kind", Spec{Design: "a11"}, Limits{}},
		{"unknown kind", Spec{Kind: "frobnicate", Design: "a11"}, Limits{}},
		{"missing design", Spec{Kind: KindMCBand}, Limits{}},
		{"unknown design", Spec{Kind: KindMCBand, Design: "nope"}, Limits{}},
		{"bad node", Spec{Kind: KindMCBand, Design: "a11", Node: "3nm"}, Limits{}},
		{"negative n", Spec{Kind: KindMCBand, Design: "a11", N: -1}, Limits{}},
		{"unknown scenario", Spec{Kind: KindMCBand, Design: "a11", Scenario: "nope"}, Limits{}},
		{"capacity out of range", Spec{Kind: KindMCBand, Design: "a11", Capacity: 1.5}, Limits{}},
		{"negative queue", Spec{Kind: KindMCBand, Design: "a11", QueueWeeks: -2}, Limits{}},
		{"samples over limit", Spec{Kind: KindMCBand, Design: "a11", Samples: 100}, Limits{MaxSamples: 99}},
		{"variation out of range", Spec{Kind: KindSensitivity, Design: "a11", Variation: 1}, Limits{}},
		{"too many xs", Spec{Kind: KindMCBand, Design: "a11", Xs: []float64{0.1, 0.2, 0.3}}, Limits{MaxPoints: 2}},
		{"x out of range", Spec{Kind: KindMCBand, Design: "a11", Xs: []float64{0}}, Limits{}},
		{"bad grid node", Spec{Kind: KindSweep, Design: "a11", Nodes: []string{"bogus"}}, Limits{}},
		{"bad quantity", Spec{Kind: KindSweep, Design: "a11", Quantities: []float64{-5}}, Limits{}},
		{"bad metric", Spec{Kind: KindMCBand, Design: "a11", Metric: "ipc"}, Limits{}},
		{"cache refs out of range", Spec{Kind: KindPareto, Design: "a11", CacheRefs: 3_000_000}, Limits{}},
		{"negative constraint", Spec{Kind: KindPlanPortfolio, Design: "a11", MinCAS: -1}, Limits{}},
		{"unknown portfolio scenario", Spec{Kind: KindPlanPortfolio, Design: "a11", Scenarios: []string{"nope"}}, Limits{}},
		{"negative timeout", Spec{Kind: KindMCBand, Design: "a11", TimeoutSeconds: -1}, Limits{}},
		{"evaluation budget", Spec{Kind: KindMCBand, Design: "a11", Samples: 64}, Limits{MaxEvaluations: 100}},
	}
	for _, tc := range cases {
		if err := tc.spec.normalized().Validate(tc.lim); !errors.Is(err, ErrInvalidSpec) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec", tc.name, err)
		}
	}
}

func TestNormalizedFoldsCase(t *testing.T) {
	s := Spec{Kind: " MC-Band ", Metric: "TTM"}.normalized()
	if s.Kind != KindMCBand || s.Metric != "ttm" {
		t.Fatalf("normalized = %+v", s)
	}
}

func TestEstimatedEvaluationsMCBand(t *testing.T) {
	s := Spec{Kind: KindMCBand, Design: "a11", Samples: 10, Xs: []float64{0.5, 0.75, 1}}
	if got := s.EstimatedEvaluations(); got != 3*2*10 {
		t.Fatalf("estimate = %d, want 60", got)
	}
}

// trackerFor builds a Tracker over a throwaway job for direct runner
// calls.
func trackerFor() (Tracker, *Job) {
	j := &Job{}
	return Tracker{j}, j
}

func TestRunSensitivity(t *testing.T) {
	pr, j := trackerFor()
	// a11 must be re-targeted to a producing node: at its native node
	// TTM is infinite and the output variance degenerates.
	s := Spec{Kind: KindSensitivity, Design: "a11", Node: "28", Samples: 32, Seed: 3}.normalized()
	out, err := s.run(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	res := out.(SensitivityResult)
	if len(res.Inputs) != len(core.Inputs) || len(res.TotalEffect) != len(core.Inputs) {
		t.Fatalf("result shape = %+v", res)
	}
	want := uint64(32 * (len(core.Inputs) + 2))
	if j.done.Load() != want || j.total.Load() != want {
		t.Fatalf("progress = %d/%d, want %d", j.done.Load(), j.total.Load(), want)
	}
}

func TestRunSweep(t *testing.T) {
	pr, j := trackerFor()
	s := Spec{Kind: KindSweep, Design: "a11", N: 1e6,
		Nodes: []string{"28", "40"}, Quantities: []float64{1e5, 1e6}}.normalized()
	out, err := s.run(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	res := out.(SweepResult)
	if len(res.Cells) != 4 {
		t.Fatalf("cells = %d, want 4", len(res.Cells))
	}
	for _, cell := range res.Cells {
		if cell.Stalled != (cell.TTMWeeks == nil) {
			t.Fatalf("cell %+v: stalled flag inconsistent", cell)
		}
		if cell.TTMWeeks != nil && (*cell.TTMWeeks <= 0 || math.IsInf(*cell.TTMWeeks, 0)) {
			t.Fatalf("cell %+v: bad TTM", cell)
		}
	}
	if j.done.Load() != 4 {
		t.Fatalf("progress = %d, want 4", j.done.Load())
	}
	// The whole result must survive JSON encoding (no Inf leaks).
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}

func TestRunPareto(t *testing.T) {
	pr, j := trackerFor()
	s := Spec{Kind: KindPareto, Design: "ariane16", N: 1e5,
		Nodes: []string{"14"}, Quantities: []float64{1e5}, CacheRefs: 20_000}.normalized()
	out, err := s.run(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	res := out.(ParetoResult)
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	cell := res.Cells[0]
	if len(cell.Front) == 0 || len(cell.Front) > cell.Configs {
		t.Fatalf("front = %d of %d configs", len(cell.Front), cell.Configs)
	}
	if cell.BestPerTTM == nil {
		t.Fatal("missing best-per-TTM point")
	}
	if j.done.Load() != j.total.Load() || j.total.Load() == 0 {
		t.Fatalf("progress = %d/%d", j.done.Load(), j.total.Load())
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanPortfolio(t *testing.T) {
	pr, j := trackerFor()
	s := Spec{Kind: KindPlanPortfolio, Design: "raven", N: 1e6,
		Scenarios: []string{"baseline"}}.normalized()
	if err := s.Validate(Limits{}); err != nil {
		// Scenario names are data-dependent; fall back to the default
		// portfolio if "baseline" is not a built-in.
		s.Scenarios = nil
	}
	out, err := s.run(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	res := out.(PortfolioResult)
	if len(res.Scenarios) == 0 {
		t.Fatal("no scenarios evaluated")
	}
	for _, ps := range res.Scenarios {
		if ps.Feasible && ps.Recommended == nil {
			t.Fatalf("scenario %s feasible without recommendation", ps.Scenario)
		}
		if len(ps.Options) == 0 {
			t.Fatalf("scenario %s has no options", ps.Scenario)
		}
	}
	if j.done.Load() != uint64(len(res.Scenarios)) {
		t.Fatalf("progress = %d, want %d", j.done.Load(), len(res.Scenarios))
	}
	if _, err := json.Marshal(res); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlanPortfolioCancelled(t *testing.T) {
	pr, _ := trackerFor()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Spec{Kind: KindPlanPortfolio, Design: "raven"}.normalized()
	if _, err := s.run(ctx, pr); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunMCBandCASMetric(t *testing.T) {
	pr, _ := trackerFor()
	s := Spec{Kind: KindMCBand, Design: "a11", Samples: 8,
		Metric: "cas", Xs: []float64{0.5, 1}}.normalized()
	out, err := s.run(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	res := out.(BandResult)
	if res.Metric != "cas" || len(res.Points) != 2 {
		t.Fatalf("result = %+v", res)
	}
	for _, p := range res.Points {
		if p.Mean == nil {
			t.Fatalf("CAS point with nil mean: %+v", p)
		}
	}
}

func TestValidateTimelineSpec(t *testing.T) {
	inline := &timeline.Spec{
		Base:         "baseline",
		HorizonWeeks: 10,
		Segments: []timeline.Segment{
			{Kind: timeline.KindQueueDrift, StartWeek: 1, EndWeek: 5, DeltaWeeks: 2},
		},
	}
	ok := []Spec{
		{Kind: KindTimeline, Design: "zen2"}, // defaults to the flagship episode
		{Kind: KindTimeline, Design: "zen2", Episode: "single-fab-loss"},
		{Kind: KindTimeline, Design: "zen2", Timeline: inline, InFlight: true},
	}
	for _, s := range ok {
		if err := s.normalized().Validate(Limits{}); err != nil {
			t.Errorf("Validate(%+v) = %v", s, err)
		}
	}
	bad := []struct {
		name string
		spec Spec
		lim  Limits
	}{
		{"unknown episode", Spec{Kind: KindTimeline, Design: "zen2", Episode: "nope"}, Limits{}},
		{"both spec and episode", Spec{Kind: KindTimeline, Design: "zen2",
			Episode: "single-fab-loss", Timeline: inline}, Limits{}},
		{"scenario field rejected", Spec{Kind: KindTimeline, Design: "zen2",
			Episode: "single-fab-loss", Scenario: "baseline"}, Limits{}},
		{"invalid inline spec", Spec{Kind: KindTimeline, Design: "zen2",
			Timeline: &timeline.Spec{HorizonWeeks: -1}}, Limits{}},
		{"steps over sample limit", Spec{Kind: KindTimeline, Design: "zen2",
			Timeline: inline}, Limits{MaxSamples: 5}},
		{"timeline fields on other kind", Spec{Kind: KindMCBand, Design: "a11",
			Episode: "single-fab-loss"}, Limits{}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.normalized().Validate(tc.lim)
			if err == nil {
				t.Fatal("spec accepted")
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidSpec", err)
			}
		})
	}
	// Estimated work is the step count.
	s := Spec{Kind: KindTimeline, Design: "zen2", Timeline: inline}.normalized()
	if got := s.EstimatedEvaluations(); got != 11 {
		t.Errorf("EstimatedEvaluations = %d, want 11 (weeks 0–10)", got)
	}
}

func TestRunTimeline(t *testing.T) {
	pr, j := trackerFor()
	s := Spec{Kind: KindTimeline, Design: "zen2", Episode: "export-control-shock", InFlight: true}.normalized()
	out, err := s.run(context.Background(), pr)
	if err != nil {
		t.Fatal(err)
	}
	res := out.(*timeline.Result)
	if res.Name != "export-control-shock" || res.Design != "zen2" {
		t.Fatalf("result header = %+v", res)
	}
	if len(res.Steps) != 53 {
		t.Fatalf("got %d steps, want 53", len(res.Steps))
	}
	if res.InFlight == nil {
		t.Fatal("in-flight study missing despite in_flight=true")
	}
	want := uint64(53)
	if j.done.Load() != want || j.total.Load() != want {
		t.Fatalf("progress = %d/%d, want %d", j.done.Load(), j.total.Load(), want)
	}
	// The result must survive the JSON round trip the HTTP layer does.
	if _, err := json.Marshal(out); err != nil {
		t.Fatalf("result not JSON-marshalable: %v", err)
	}
}

func TestRunTimelineCancelled(t *testing.T) {
	pr, _ := trackerFor()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := Spec{Kind: KindTimeline, Design: "zen2", Episode: "global-shortage-2020-22"}.normalized()
	if _, err := s.run(ctx, pr); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
