package jobs

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"ttmcas/internal/core"
	"ttmcas/internal/mc"
	"ttmcas/internal/sens"
	"ttmcas/internal/sweep"
	"ttmcas/internal/timeline"
)

// A shard is a contiguous range [Lo, Hi) of a spec's shard space — the
// index set the kind's work naturally splits over:
//
//   - mc-band: x-positions of the curve. Each position derives its
//     perturbation streams from (Seed, absolute position) alone, so any
//     position range reproduces exactly the serial draws.
//   - sensitivity: the flattened Saltelli evaluation order f(A), f(B),
//     f(AB_1), …, f(AB_k) — (k+2)·N evaluations whose raw outputs
//     merge by sens.Reduce into the exact serial indices.
//   - sweep: grid cells in node-major order.
//   - timeline: timeline steps.
//
// The other kinds (pareto, plan-portfolio) are not shardable; their
// jobs always run locally.

// ShardRequest asks a peer to evaluate one shard of a job's spec.
type ShardRequest struct {
	// Job is the coordinator's job ID — informational (logs, tracing);
	// the shard itself is stateless.
	Job string `json:"job"`
	// Index is the shard's position in the coordinator's plan.
	Index int `json:"index"`
	// Lo and Hi bound the shard's half-open range in the spec's shard
	// space.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Spec is the full job spec; the executing node re-derives
	// everything else (grids, streams, evaluators) from it.
	Spec Spec `json:"spec"`
}

// ShardResult is one shard's partial result. Exactly one payload field
// is set, matching the spec's kind. Err carries a deterministic
// compute error (the shard ran and the model failed); transport-level
// failures are reported out of band so the coordinator can retry —
// compute errors must not be retried, they are part of the answer.
type ShardResult struct {
	Index int    `json:"index"`
	Evals uint64 `json:"evals"`
	Err   string `json:"err,omitempty"`
	// Points are mc-band partial curve points.
	Points []BandPoint `json:"points,omitempty"`
	// Bits are sensitivity raw model outputs as IEEE-754 bit patterns:
	// Sobol intermediates may be ±Inf/NaN, which JSON cannot carry, and
	// the merge must be bit-for-bit.
	Bits []uint64 `json:"bits,omitempty"`
	// Cells are sweep partial grid cells.
	Cells []SweepCell `json:"cells,omitempty"`
	// Steps are timeline partial steps.
	Steps []timeline.Step `json:"steps,omitempty"`
}

// shardSpace is the size of the spec's shard index space, or 0 when
// the kind is not shardable.
func (s Spec) shardSpace() int {
	switch s.Kind {
	case KindMCBand:
		return len(s.xs())
	case KindSensitivity:
		return s.samples(512) * (len(core.Inputs) + 2)
	case KindSweep:
		cells, err := s.grid()
		if err != nil {
			return 0
		}
		return len(cells)
	case KindTimeline:
		ts, err := s.timelineSpec()
		if err != nil {
			return 0
		}
		return ts.StepCount()
	default:
		return 0
	}
}

// shardUnits converts a shard range to progress units — the same
// currency the serial runners feed Tracker.SetTotal, so aggregated
// distributed progress drives the existing ETA unchanged.
func (s Spec) shardUnits(lo, hi int) uint64 {
	if s.Kind == KindMCBand {
		return uint64((hi - lo) * 2 * s.samples(mc.DefaultSamples))
	}
	return uint64(hi - lo)
}

// RunShard evaluates one shard locally. onEval, when set, streams
// completed evaluation units (for coordinator-side progress; remote
// executors leave it nil and report the total in Evals).
//
// A non-nil error return means the shard did not produce an answer —
// an invalid request, or the context ended. A deterministic compute
// error is NOT an error return: it lands in ShardResult.Err, because
// it is the same answer every node would produce and the coordinator
// must surface it rather than retry it.
func RunShard(ctx context.Context, lim Limits, req ShardRequest, onEval func(uint64)) (ShardResult, error) {
	s := req.Spec.normalized()
	if err := s.Validate(lim); err != nil {
		return ShardResult{}, err
	}
	space := s.shardSpace()
	if space == 0 {
		return ShardResult{}, invalidf("kind %q is not shardable", s.Kind)
	}
	if req.Lo < 0 || req.Hi > space || req.Lo >= req.Hi {
		return ShardResult{}, invalidf("shard range [%d, %d) outside [0, %d)", req.Lo, req.Hi, space)
	}
	var evals atomic.Uint64
	count := func(n uint64) {
		evals.Add(n)
		if onEval != nil {
			onEval(n)
		}
	}
	res := ShardResult{Index: req.Index}
	var err error
	switch s.Kind {
	case KindMCBand:
		res.Points, err = s.runMCBandShard(ctx, req.Lo, req.Hi, count)
	case KindSensitivity:
		res.Bits, err = s.runSensitivityShard(ctx, req.Lo, req.Hi, count)
	case KindSweep:
		res.Cells, err = s.runSweepShard(ctx, req.Lo, req.Hi, count)
	case KindTimeline:
		res.Steps, err = s.runTimelineShard(ctx, req.Lo, req.Hi, count)
	}
	res.Evals = evals.Load()
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			// Cancellation/deadline beats any partial compute error —
			// mirrors sweep.ForChunks precedence.
			return ShardResult{}, cerr
		}
		res.Err = err.Error()
		res.Points, res.Bits, res.Cells, res.Steps = nil, nil, nil, nil
	}
	return res, nil
}

func (s Spec) runMCBandShard(ctx context.Context, lo, hi int, count func(uint64)) ([]BandPoint, error) {
	d, c, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	sel := mc.MetricTTM
	if s.Metric == "cas" {
		sel = mc.MetricCAS
	}
	cfg := mc.Config{Samples: s.samples(mc.DefaultSamples), Seed: s.Seed}
	ev, err := core.Model{}.Compile(d, s.n(), c)
	if err != nil {
		return nil, err
	}
	xs := s.xs()
	bands := make([]mc.Band, hi-lo)
	if err := mc.BandCurveBatchAt(ctx, ev, cfg, xs[lo:hi], lo, sel, bands, func() { count(1) }); err != nil {
		return nil, err
	}
	pts := make([]BandPoint, 0, len(bands))
	for _, b := range bands {
		pts = append(pts, BandPoint{
			X: b.X, Mean: finite(b.Mean),
			CI10Lo: finite(b.CI10.Lo), CI10Hi: finite(b.CI10.Hi),
			CI25Lo: finite(b.CI25.Lo), CI25Hi: finite(b.CI25.Hi),
		})
	}
	return pts, nil
}

func (s Spec) runSensitivityShard(ctx context.Context, lo, hi int, count func(uint64)) ([]uint64, error) {
	d, c, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	cfg := sens.Config{N: s.samples(512), Variation: s.Variation, Seed: s.Seed}
	ev, err := core.Model{}.Compile(d, s.n(), c)
	if err != nil {
		return nil, err
	}
	ys := make([]float64, hi-lo)
	if err := sens.EvalRange(ctx, len(core.Inputs), cfg, lo, hi, ys, sensBatchFactory(ev, count)); err != nil {
		return nil, err
	}
	bits := make([]uint64, len(ys))
	for i, y := range ys {
		bits[i] = math.Float64bits(y)
	}
	return bits, nil
}

func (s Spec) runSweepShard(ctx context.Context, lo, hi int, count func(uint64)) ([]SweepCell, error) {
	d, c, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	cells, err := s.grid()
	if err != nil {
		return nil, err
	}
	eval := sweepCellEval(d, c)
	out := make([]SweepCell, hi-lo)
	// Chunks stop at their first error and ForChunks reports the
	// lowest-range error, so — like sweep.Map in the serial runner —
	// the surfaced error is always the first by global cell index, with
	// the identical "sweep: item %d" wrapping.
	err = sweep.ForChunks(ctx, hi-lo, 0, 1, func(clo, chi int) error {
		for i := clo; i < chi; i++ {
			cell, err := eval(cells[lo+i])
			if err != nil {
				return fmt.Errorf("sweep: item %d: %w", lo+i, err)
			}
			out[i] = cell
			count(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (s Spec) runTimelineShard(ctx context.Context, lo, hi int, count func(uint64)) ([]timeline.Step, error) {
	d, _, err := s.resolveEval()
	if err != nil {
		return nil, err
	}
	ts, err := s.timelineSpec()
	if err != nil {
		return nil, err
	}
	tl, err := timeline.Compile(ts, timeline.Limits{MaxSteps: 1 << 20})
	if err != nil {
		return nil, err
	}
	out := make([]timeline.Step, hi-lo)
	// The in-flight study (when requested) is conditions-global, not
	// per-step; the coordinator runs it once at merge time.
	opt := timeline.Options{OnStep: func() { count(1) }}
	if err := timeline.EvaluateSteps(ctx, core.Model{}, d, s.n(), tl, lo, hi, out, opt); err != nil {
		return nil, err
	}
	return out, nil
}
