package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// loopback is an in-process Distributor: Dispatch runs the shard
// locally through the same RunShard a remote peer would, so gathered
// results exercise the real scatter/gather surface without a network.
// Targets can be marked transport-dead to drive hedging and fallback.
type loopback struct {
	targets []string
	lim     Limits

	mu         sync.Mutex
	dispatched map[string]int
	dead       map[string]bool
}

func newLoopback(n int) *loopback {
	d := &loopback{
		dispatched: make(map[string]int),
		dead:       make(map[string]bool),
	}
	for i := 0; i < n; i++ {
		d.targets = append(d.targets, fmt.Sprintf("peer-%d", i))
	}
	return d
}

func (d *loopback) Targets() []string { return d.targets }

func (d *loopback) kill(target string) {
	d.mu.Lock()
	d.dead[target] = true
	d.mu.Unlock()
}

func (d *loopback) calls() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, c := range d.dispatched {
		n += c
	}
	return n
}

func (d *loopback) Dispatch(ctx context.Context, target string, req ShardRequest) (ShardResult, error) {
	d.mu.Lock()
	d.dispatched[target]++
	dead := d.dead[target]
	d.mu.Unlock()
	if dead {
		return ShardResult{}, errors.New("loopback: connection refused")
	}
	return RunShard(ctx, d.lim, req, nil)
}

// runJobOn submits the spec to a fresh manager wired with d (nil for
// single-node) and returns the finished view plus raw result JSON.
func runJobOn(t *testing.T, d Distributor, spec Spec) (View, json.RawMessage) {
	t.Helper()
	cfg := quietConfig()
	cfg.Distributor = d
	cfg.DistMinEvaluations = 1
	m := New(cfg)
	defer m.Close()
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	fin := waitFinished(t, m, v.ID)
	if fin.Status != StatusSucceeded {
		return fin, nil
	}
	raw, _, err := m.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	return fin, raw
}

func oracleSpecs() map[string]Spec {
	xs := make([]float64, 9)
	for i := range xs {
		xs[i] = 0.5 + 0.05*float64(i)
	}
	return map[string]Spec{
		"mc-band": {Kind: KindMCBand, Design: "a11", Samples: 48, Seed: 11, Xs: xs},
		"mc-band-cas": {Kind: KindMCBand, Design: "zen2", Metric: "cas",
			Samples: 32, Seed: 3, Xs: xs[:5]},
		"sensitivity": {Kind: KindSensitivity, Design: "zen2", Samples: 24,
			Seed: 7, Variation: 0.25},
		"sweep": {Kind: KindSweep, Design: "a11",
			Quantities: []float64{1e6, 5e6, 20e6}},
		"timeline": {Kind: KindTimeline, Design: "zen2",
			Episode: "export-control-shock", InFlight: true},
	}
}

// TestDistributedOracleBitForBit is the tentpole guarantee: for every
// shardable kind, the sharded scatter/gather result is byte-for-byte
// the single-node result. Byte equality of the JSON is strictly
// stronger than per-value math.Float64bits equality — Go renders each
// distinct float64 bit pattern as a distinct shortest-round-trip
// string — and additionally pins field order and structure.
func TestDistributedOracleBitForBit(t *testing.T) {
	for name, spec := range oracleSpecs() {
		t.Run(name, func(t *testing.T) {
			_, serial := runJobOn(t, nil, spec)
			d := newLoopback(2)
			fin, dist := runJobOn(t, d, spec)
			if fin.Status != StatusSucceeded {
				t.Fatalf("distributed job: %s (%s)", fin.Status, fin.Error)
			}
			if d.calls() == 0 {
				t.Fatal("job never dispatched a shard — distribution did not engage")
			}
			if !bytes.Equal(serial, dist) {
				t.Fatalf("distributed result differs from serial:\nserial: %s\ndist:   %s", serial, dist)
			}
		})
	}
}

// TestDistributedOracleBandBits re-checks the mc-band oracle at the
// float64 bit level after decoding, independent of JSON rendering.
func TestDistributedOracleBandBits(t *testing.T) {
	spec := oracleSpecs()["mc-band"]
	_, serialRaw := runJobOn(t, nil, spec)
	_, distRaw := runJobOn(t, newLoopback(3), spec)
	var serial, dist BandResult
	if err := json.Unmarshal(serialRaw, &serial); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(distRaw, &dist); err != nil {
		t.Fatal(err)
	}
	if len(serial.Points) != len(dist.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(dist.Points))
	}
	bits := func(p *float64) uint64 {
		if p == nil {
			return 0
		}
		return math.Float64bits(*p)
	}
	for i := range serial.Points {
		s, g := serial.Points[i], dist.Points[i]
		if bits(s.Mean) != bits(g.Mean) || bits(s.CI10Lo) != bits(g.CI10Lo) ||
			bits(s.CI10Hi) != bits(g.CI10Hi) || bits(s.CI25Lo) != bits(g.CI25Lo) ||
			bits(s.CI25Hi) != bits(g.CI25Hi) {
			t.Fatalf("point %d differs at the bit level: %+v vs %+v", i, s, g)
		}
	}
}

// TestDistributedErrorSurfaceMatchesSerial: a deterministic compute
// error (degenerate Sobol variance from a vanishing variation) must
// fail the distributed job with exactly the serial job's error string.
func TestDistributedErrorSurfaceMatchesSerial(t *testing.T) {
	spec := Spec{Kind: KindSensitivity, Design: "a11", Samples: 16,
		Seed: 5, Variation: 1e-300}
	serial, _ := runJobOn(t, nil, spec)
	if serial.Status != StatusFailed {
		t.Fatalf("serial job: %s (%s), want failed", serial.Status, serial.Error)
	}
	dist, _ := runJobOn(t, newLoopback(2), spec)
	if dist.Status != StatusFailed {
		t.Fatalf("distributed job: %s (%s), want failed", dist.Status, dist.Error)
	}
	if serial.Error != dist.Error {
		t.Fatalf("error surfaces differ:\nserial: %q\ndist:   %q", serial.Error, dist.Error)
	}
}

// TestDistributedShardErrorLowestIndexWins: when several shards carry
// compute errors, the coordinator must surface the lowest-index one —
// the error the serial run would have hit first.
func TestDistributedShardErrorLowestIndexWins(t *testing.T) {
	cfg := quietConfig().withDefaults()
	m := New(cfg)
	defer m.Close()
	j := &Job{id: "job-000001", spec: validSpec().normalized()}
	parts := []ShardResult{
		{Index: 0},
		{Index: 1, Err: "boom at shard 1"},
		{Index: 2, Err: "boom at shard 2"},
	}
	d := &errInjector{parts: parts}
	targets := []string{"p0", "p1"}
	reqs := []ShardRequest{
		{Index: 0, Lo: 0, Hi: 1, Spec: j.spec},
		{Index: 1, Lo: 1, Hi: 2, Spec: j.spec},
		{Index: 2, Lo: 2, Hi: 3, Spec: j.spec},
	}
	_, err := m.runDistributed(context.Background(), j, d, targets, reqs)
	if err == nil || err.Error() != "boom at shard 1" {
		t.Fatalf("err = %v, want the lowest-index shard error", err)
	}
}

// errInjector returns pre-built shard results, including for shard 0's
// local slot — runDistributed runs shard 0 itself, so the injector only
// serves indices ≥ 1.
type errInjector struct{ parts []ShardResult }

func (d *errInjector) Targets() []string { return []string{"p0", "p1"} }
func (d *errInjector) Dispatch(ctx context.Context, target string, req ShardRequest) (ShardResult, error) {
	return d.parts[req.Index], nil
}

// TestDistributedHedgesToNextPeer: a transport-dead first target must
// not fail the shard — it re-dispatches to the next peer and the job
// still matches the serial result.
func TestDistributedHedgesToNextPeer(t *testing.T) {
	spec := oracleSpecs()["mc-band"]
	_, serial := runJobOn(t, nil, spec)
	d := newLoopback(2)
	d.kill("peer-0")
	fin, dist := runJobOn(t, d, spec)
	if fin.Status != StatusSucceeded {
		t.Fatalf("job with one dead peer: %s (%s)", fin.Status, fin.Error)
	}
	if !bytes.Equal(serial, dist) {
		t.Fatalf("hedged result differs from serial:\nserial: %s\ndist:   %s", serial, dist)
	}
	d.mu.Lock()
	alive := d.dispatched["peer-1"]
	d.mu.Unlock()
	if alive == 0 {
		t.Fatal("surviving peer never received a hedged dispatch")
	}
}

// TestDistributedFallsBackWhenRingDead: every peer transport-dead — the
// coordinator computes all shards locally and the job still succeeds
// with the serial bits. A dead ring degrades throughput, never
// correctness.
func TestDistributedFallsBackWhenRingDead(t *testing.T) {
	spec := oracleSpecs()["sweep"]
	_, serial := runJobOn(t, nil, spec)
	d := newLoopback(2)
	d.kill("peer-0")
	d.kill("peer-1")
	fin, dist := runJobOn(t, d, spec)
	if fin.Status != StatusSucceeded {
		t.Fatalf("job on dead ring: %s (%s)", fin.Status, fin.Error)
	}
	if !bytes.Equal(serial, dist) {
		t.Fatalf("fallback result differs from serial:\nserial: %s\ndist:   %s", serial, dist)
	}
}

// TestDistributedProgressAggregates: the coordinator's done/total must
// cover the whole job — local shard streaming plus remote bulk adds —
// so the existing ETA math keeps working unchanged.
func TestDistributedProgressAggregates(t *testing.T) {
	spec := oracleSpecs()["mc-band"]
	fin, _ := runJobOn(t, newLoopback(2), spec)
	want := uint64(spec.EstimatedEvaluations())
	if fin.Total != want || fin.Done != want {
		t.Fatalf("progress = %d/%d, want %d/%d", fin.Done, fin.Total, want, want)
	}
}

// TestDistributedCancelFansOut: cancelling the coordinator cancels the
// dispatch contexts; the job ends cancelled, not hung.
func TestDistributedCancelFansOut(t *testing.T) {
	started := make(chan struct{})
	d := &blockingDistributor{started: started, release: make(chan struct{})}
	defer close(d.release)
	cfg := quietConfig()
	cfg.Distributor = d
	cfg.DistMinEvaluations = 1
	m := New(cfg)
	defer m.Close()
	spec := oracleSpecs()["mc-band"]
	spec.Samples = 512 // keep the local shard busy long enough to cancel
	v, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	fin := waitFinished(t, m, v.ID)
	if fin.Status != StatusCancelled {
		t.Fatalf("status = %s (%s), want cancelled", fin.Status, fin.Error)
	}
}

// blockingDistributor parks every dispatch until its context dies,
// signalling the first arrival — a stand-in for a hung peer.
type blockingDistributor struct {
	once    sync.Once
	started chan struct{}
	release chan struct{}
}

func (d *blockingDistributor) Targets() []string { return []string{"p0"} }
func (d *blockingDistributor) Dispatch(ctx context.Context, target string, req ShardRequest) (ShardResult, error) {
	d.once.Do(func() { close(d.started) })
	select {
	case <-ctx.Done():
		return ShardResult{}, ctx.Err()
	case <-d.release:
		return ShardResult{}, errors.New("released")
	}
}

// TestPlanShards pins the planner's gating and balance.
func TestPlanShards(t *testing.T) {
	s := Spec{Kind: KindMCBand, Design: "a11", Samples: 64,
		Xs: []float64{0.3, 0.4, 0.5, 0.6, 0.7}}.normalized()
	if got := planShards(s, "j", 0, 1); got != nil {
		t.Fatalf("no targets: planned %d shards", len(got))
	}
	if got := planShards(s, "j", 2, 1<<30); got != nil {
		t.Fatal("below min evaluations: plan should be nil")
	}
	reqs := planShards(s, "j", 2, 1)
	if len(reqs) != 3 {
		t.Fatalf("planned %d shards, want 3", len(reqs))
	}
	covered := 0
	for i, r := range reqs {
		if r.Index != i || r.Lo >= r.Hi {
			t.Fatalf("shard %d malformed: %+v", i, r)
		}
		if i > 0 && r.Lo != reqs[i-1].Hi {
			t.Fatalf("shards not contiguous at %d", i)
		}
		covered += r.Hi - r.Lo
	}
	if covered != 5 || reqs[0].Lo != 0 || reqs[len(reqs)-1].Hi != 5 {
		t.Fatalf("shards cover %d of 5 positions", covered)
	}
	// More peers than work: capped at one index per shard.
	if reqs := planShards(s, "j", 16, 1); len(reqs) != 5 {
		t.Fatalf("oversubscribed ring planned %d shards, want 5", len(reqs))
	}
	// Pareto does not shard.
	p := Spec{Kind: KindPareto, Design: "a11"}.normalized()
	if got := planShards(p, "j", 4, 1); got != nil {
		t.Fatal("pareto planned shards; kind is not shardable")
	}
}

// TestRunShardRejectsBadRange: malformed ranges are invalid-spec
// errors, not crashes or silent truncation.
func TestRunShardRejectsBadRange(t *testing.T) {
	s := validSpec().normalized()
	for _, r := range [][2]int{{-1, 1}, {1, 1}, {2, 1}, {0, 100}} {
		req := ShardRequest{Job: "j", Lo: r[0], Hi: r[1], Spec: s}
		if _, err := RunShard(context.Background(), Limits{}, req, nil); !errors.Is(err, ErrInvalidSpec) {
			t.Fatalf("range [%d,%d): err = %v, want ErrInvalidSpec", r[0], r[1], err)
		}
	}
	req := ShardRequest{Job: "j", Lo: 0, Hi: 1, Spec: Spec{Kind: KindPareto, Design: "a11"}.normalized()}
	if _, err := RunShard(context.Background(), Limits{}, req, nil); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("pareto shard: err = %v, want ErrInvalidSpec", err)
	}
}

// TestMidFlightSnapshotRestoresClean: a snapshot persisted while a
// (distributed) run was mid-flight — status running, progress counters
// non-zero — must restore as a clean pending job with no orphan
// done/total, then re-run from the spec. Companion to the truncated
// `.corrupt` quarantine case in TestCorruptSnapshotQuarantined.
func TestMidFlightSnapshotRestoresClean(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UTC()
	sf := snapshotFile{View: View{
		ID:      "job-000003",
		Kind:    KindMCBand,
		Status:  StatusRunning,
		Spec:    validSpec().normalized(),
		Created: now,
		Started: &now,
		Done:    17,
		Total:   96,
	}}
	data, err := json.Marshal(sf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-000003.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	cfg := quietConfig()
	cfg.SnapshotDir = dir
	m := New(cfg)
	defer m.Close()
	fin := waitFinished(t, m, "job-000003")
	if fin.Status != StatusSucceeded {
		t.Fatalf("re-run of mid-flight job: %s (%s)", fin.Status, fin.Error)
	}
	if !fin.Restored {
		t.Fatal("job lost its restored mark")
	}
	// The re-run owns the progress counters outright: the spec's own
	// totals, no orphan units from the dead coordinator.
	want := uint64(validSpec().normalized().EstimatedEvaluations())
	if fin.Total != want || fin.Done != want {
		t.Fatalf("progress after re-run = %d/%d, want %d/%d", fin.Done, fin.Total, want, want)
	}
	if strings.Contains(fin.Error, "orphan") {
		t.Fatal(fin.Error)
	}
}

// checkpointDistributor finishes shards aimed at peer-0 (shard 1 of
// the 4-shard plan) and parks every other dispatch until its context
// dies — a coordinator caught mid-scatter.
type checkpointDistributor struct {
	lim      Limits
	shard1OK chan struct{}
	once     sync.Once
}

func (d *checkpointDistributor) Targets() []string { return []string{"peer-0", "peer-1", "peer-2"} }

func (d *checkpointDistributor) Dispatch(ctx context.Context, target string, req ShardRequest) (ShardResult, error) {
	if target == "peer-0" {
		res, err := RunShard(ctx, d.lim, req, nil)
		if err == nil {
			d.once.Do(func() { close(d.shard1OK) })
		}
		return res, err
	}
	<-ctx.Done()
	return ShardResult{}, ctx.Err()
}

// TestShardCheckpointResume is the shard-checkpoint contract: kill the
// coordinator after shard 1 of 4 completes, restore over the same
// snapshot directory, and the resumed job re-runs only the 3 missing
// shards while producing the byte-identical result.
func TestShardCheckpointResume(t *testing.T) {
	spec := oracleSpecs()["mc-band"]
	_, oracle := runJobOn(t, nil, spec)

	dir := t.TempDir()
	cfg := quietConfig()
	cfg.SnapshotDir = dir
	cfg.Distributor = &checkpointDistributor{shard1OK: make(chan struct{})}
	cfg.DistMinEvaluations = 1
	m1 := New(cfg)
	v, err := m1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Wait for shard 1's result to be checkpointed on disk, then kill
	// the coordinator with shards 2 and 3 still parked.
	<-cfg.Distributor.(*checkpointDistributor).shard1OK
	snap := filepath.Join(dir, v.ID+".json")
	waitForCond(t, "shard 1 checkpointed", func() bool {
		data, err := os.ReadFile(snap)
		if err != nil {
			return false
		}
		var sf snapshotFile
		return json.Unmarshal(data, &sf) == nil && len(sf.Shards) >= 1 && len(sf.Plan) == 4
	})
	m1.Close()

	// The interrupted snapshot must still carry the plan + checkpoint.
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var sf snapshotFile
	if err := json.Unmarshal(data, &sf); err != nil {
		t.Fatal(err)
	}
	if sf.View.Status != StatusPending || len(sf.Plan) != 4 || len(sf.Shards) < 1 {
		t.Fatalf("interrupted snapshot: status %s, %d plan, %d shards; want pending/4/>=1",
			sf.View.Status, len(sf.Plan), len(sf.Shards))
	}

	// Restart over the same directory with a healthy (counting) ring.
	lb := newLoopback(3)
	cfg2 := quietConfig()
	cfg2.SnapshotDir = dir
	cfg2.Distributor = lb
	cfg2.DistMinEvaluations = 1
	m2 := New(cfg2)
	defer m2.Close()
	fin := waitFinished(t, m2, v.ID)
	if fin.Status != StatusSucceeded {
		t.Fatalf("resumed job: %s (%s)", fin.Status, fin.Error)
	}
	raw, _, err := m2.Result(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, oracle) {
		t.Fatalf("resumed result differs from single-node oracle:\n%s\nvs\n%s", raw, oracle)
	}
	// Only shards 2 and 3 were re-dispatched (shard 0 is always local,
	// shard 1 came from the checkpoint).
	if got := lb.calls(); got != 2 {
		t.Fatalf("resumed run dispatched %d shards, want 2", got)
	}
	if fin.Done != fin.Total || fin.Total == 0 {
		t.Fatalf("resumed progress = %d/%d, want complete", fin.Done, fin.Total)
	}
}

// waitForCond polls until cond holds or a 5s deadline lapses.
func waitForCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
