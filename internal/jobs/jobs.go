// Package jobs is the asynchronous batch-evaluation engine behind
// POST /v1/jobs and the `ttmcas jobs` subcommand: the paper's headline
// artifacts — Monte-Carlo confidence bands (Figs. 7/9/11/12), Sobol
// total-effect indices (Fig. 8, N·(k+2) evaluations), design sweeps,
// cache Pareto frontiers and §7 plan portfolios — are long-running
// campaigns that do not fit a request/response timeout.
//
// A Manager owns a bounded worker pool and a job store. Jobs are typed
// Specs wrapping the existing mc, sens, sweep, opt and plan packages;
// each job runs under a context that cancels on user request, per-job
// deadline, or manager shutdown, reports progress atomically
// (completed/total evaluation units plus an ETA), and recovers panics
// by failing the job instead of the process. Finished jobs are kept in
// memory until a TTL and, when a snapshot directory is configured,
// persisted as JSON so a restarted manager lists completed results and
// resumes interrupted runs.
//
// # Distributed execution
//
// When a Distributor is configured (in the server, the cluster peer
// layer) and a job's estimated evaluation count reaches
// Config.DistMinEvaluations, the manager shards the job across alive
// peers instead of running it serially: mc-band by x-position range,
// sensitivity by flattened Saltelli evaluation-index range (merged by
// sens.Reduce, the serial reducer), sweep by grid-cell range and
// timeline by step range. Because the underlying sample streams are
// counter-based (O(1)-seekable by position), a shard computing
// [lo,hi) draws exactly the values the serial run would have drawn
// there, and the gathered result — values and error surface alike —
// is byte-identical to the single-node answer; dist_test.go holds the
// oracle tests.
//
// Distribution is an optimization, never a correctness dependency.
// Each shard runs under Config.ShardTimeout; transport failures and
// timeouts hedge to the next alive peer and finally fall back to
// local execution on the coordinator, so a dead ring never fails a
// job a single node could finish. Compute errors inside a shard are
// the job's answer and are not retried. Progress aggregates across
// shards through the job's Tracker, cancellation fans out to every
// in-flight shard, and a ShardObserver (the server's metrics
// registry) sees every dispatch, completion, hedge and fallback.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Status is a job lifecycle state.
type Status string

// The job lifecycle: pending → running → one of the three terminal
// states.
const (
	StatusPending   Status = "pending"
	StatusRunning   Status = "running"
	StatusSucceeded Status = "succeeded"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Finished reports whether the status is terminal.
func (s Status) Finished() bool {
	return s == StatusSucceeded || s == StatusFailed || s == StatusCancelled
}

// Errors the manager returns to callers; the HTTP layer maps them to
// status codes.
var (
	ErrNotFound    = errors.New("jobs: unknown job")
	ErrTooManyJobs = errors.New("jobs: too many active jobs")
	ErrClosed      = errors.New("jobs: manager is closed")
	ErrNotFinished = errors.New("jobs: job has not finished")
)

// Config parameterizes a Manager. The zero value of every field
// selects a production-sensible default.
type Config struct {
	// Workers bounds how many jobs run concurrently (default 2). Each
	// job parallelizes internally across GOMAXPROCS, so a small pool
	// is usually right.
	Workers int
	// MaxActive bounds pending+running jobs; Submit fails with
	// ErrTooManyJobs beyond it (default 32).
	MaxActive int
	// MaxStored bounds the total jobs retained in memory, finished
	// included; the oldest finished jobs are evicted first
	// (default 256).
	MaxStored int
	// ResultTTL evicts finished jobs (memory and snapshot) this long
	// after completion (default 1h).
	ResultTTL time.Duration
	// DefaultTimeout is the per-job deadline when the spec does not
	// set one (default 10m).
	DefaultTimeout time.Duration
	// SnapshotDir, when non-empty, persists every job as
	// <dir>/<id>.json: finished jobs are listed with their results
	// after a restart, and jobs that were pending or running when the
	// process died are re-queued (specs are deterministic, so the
	// re-run reproduces the same result).
	SnapshotDir string
	// Limits clamp client-supplied spec sizes at submission.
	Limits Limits
	// Logger receives job lifecycle logs (default log.Default()).
	Logger *log.Logger
	// Observer receives lifecycle callbacks for metrics; nil disables.
	// An observer that also implements ShardObserver receives shard
	// lifecycle events from distributed runs.
	Observer Observer

	// Distributor, when non-nil, shards heavy jobs across cluster
	// peers (see dist.go); nil runs every job single-node.
	Distributor Distributor
	// ShardTimeout is the per-attempt deadline of one remote shard
	// dispatch; past it the shard hedges to the next peer (default 1m).
	ShardTimeout time.Duration
	// DistMinEvaluations is the minimum estimated evaluation count for
	// a job to be worth distributing (default 4096); smaller jobs run
	// locally regardless of ring size.
	DistMinEvaluations int
	// EvalDelay, when positive, stretches every shardable compute by
	// shardUnits × EvalDelay of sleep — the benchmark harness's
	// latency-bound compute floor (see PaceShard). Zero (the default)
	// disables pacing; production configs never set it.
	EvalDelay time.Duration

	// now is the test seam for time.
	now func() time.Time
}

// Observer receives job lifecycle events; the server folds them into
// its /metrics registry. Implementations must be safe for concurrent
// use.
type Observer interface {
	JobSubmitted(kind string)
	JobStarted(kind string)
	JobFinished(kind string, status Status, evaluations uint64)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 32
	}
	if c.MaxStored <= 0 {
		c.MaxStored = 256
	}
	if c.ResultTTL <= 0 {
		c.ResultTTL = time.Hour
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Minute
	}
	c.Limits = c.Limits.withDefaults()
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = time.Minute
	}
	if c.DistMinEvaluations <= 0 {
		c.DistMinEvaluations = 4096
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Job is one submitted batch evaluation. All mutable fields are
// guarded by mu except the progress counters, which are atomic so the
// evaluation hot path never takes the lock.
type Job struct {
	id      string
	spec    Spec
	created time.Time

	done  atomic.Uint64
	total atomic.Uint64

	mu            sync.Mutex
	status        Status
	started       time.Time
	finished      time.Time
	err           string
	result        json.RawMessage
	restored      bool
	userCancelled bool
	cancel        context.CancelFunc

	// Distributed-run checkpoint: the scatter plan and the completed
	// shard results, persisted with every snapshot so a restarted
	// coordinator resumes a mid-flight job re-running only the shards
	// that had not finished. Guarded by mu.
	plan      []ShardRequest
	completed map[int]ShardResult
}

// setPlan records the scatter plan a distributed run is executing.
func (j *Job) setPlan(reqs []ShardRequest) {
	j.mu.Lock()
	j.plan = reqs
	j.mu.Unlock()
}

// shardPlan returns the checkpointed scatter plan, nil if none.
func (j *Job) shardPlan() []ShardRequest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.plan
}

// shardDone returns the checkpointed result of shard i, if completed.
func (j *Job) shardDone(i int) (ShardResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	res, ok := j.completed[i]
	return res, ok
}

// noteShard checkpoints one completed shard result.
func (j *Job) noteShard(res ShardResult) {
	j.mu.Lock()
	if j.completed == nil {
		j.completed = make(map[int]ShardResult)
	}
	j.completed[res.Index] = res
	j.mu.Unlock()
}

// checkpoint snapshots the plan and the completed shards (ordered by
// index) for persistence.
func (j *Job) checkpoint() ([]ShardRequest, []ShardResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.plan == nil {
		return nil, nil
	}
	shards := make([]ShardResult, 0, len(j.completed))
	for i := 0; i < len(j.plan); i++ {
		if res, ok := j.completed[i]; ok {
			shards = append(shards, res)
		}
	}
	return j.plan, shards
}

// Tracker is the progress reporter handed to spec runners. Add and
// SetTotal are lock-free.
type Tracker struct{ j *Job }

// SetTotal declares the total number of evaluation units.
func (t Tracker) SetTotal(n uint64) { t.j.total.Store(n) }

// Add records n completed evaluation units.
func (t Tracker) Add(n uint64) { t.j.done.Add(n) }

// View is an immutable snapshot of a job, the JSON shape of the HTTP
// status endpoints and the snapshot files.
type View struct {
	ID       string     `json:"id"`
	Kind     string     `json:"kind"`
	Status   Status     `json:"status"`
	Spec     Spec       `json:"spec"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Done/Total count evaluation units (model evaluations for
	// mc-band and sensitivity jobs, grid cells or scenarios for the
	// others); Fraction is Done/Total.
	Done     uint64  `json:"done"`
	Total    uint64  `json:"total"`
	Fraction float64 `json:"fraction"`
	// ETASeconds estimates the remaining run time from the observed
	// evaluation rate; present only while running with progress.
	ETASeconds *float64 `json:"eta_seconds,omitempty"`
	// Restored marks jobs loaded from a snapshot after a restart.
	Restored bool `json:"restored,omitempty"`
}

func (j *Job) view(now time.Time) View {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := View{
		ID:       j.id,
		Kind:     j.spec.Kind,
		Status:   j.status,
		Spec:     j.spec,
		Created:  j.created,
		Error:    j.err,
		Done:     j.done.Load(),
		Total:    j.total.Load(),
		Restored: j.restored,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if v.Total > 0 {
		v.Fraction = float64(v.Done) / float64(v.Total)
	}
	if j.status == StatusRunning && v.Done > 0 && v.Total > v.Done {
		elapsed := now.Sub(j.started).Seconds()
		eta := elapsed * float64(v.Total-v.Done) / float64(v.Done)
		v.ETASeconds = &eta
	}
	return v
}

// Manager owns the worker pool and the job store.
type Manager struct {
	cfg    Config
	log    *log.Logger
	ctx    context.Context
	stop   context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup
	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string // submission order, for List and eviction
	seq    int
	closed bool
}

// New builds a Manager, restores any snapshots, and starts its worker
// pool. Call Close to drain it.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:  cfg,
		log:  cfg.Logger,
		ctx:  ctx,
		stop: cancel,
		jobs: make(map[string]*Job),
	}
	// Restored pending jobs ride the same queue as new submissions;
	// size it so the resume enqueue below can never block.
	resumed := m.loadSnapshots()
	m.queue = make(chan *Job, cfg.MaxActive+len(resumed))
	for _, j := range resumed {
		m.queue <- j
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.janitor()
	return m
}

// Close cancels every running job, stops the workers, and waits for
// them to drain. Interrupted jobs are snapshotted as pending so a new
// manager over the same snapshot directory re-runs them.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
}

// Submit validates a spec against the configured limits and enqueues
// it. The returned view is the job's initial pending state.
func (m *Manager) Submit(spec Spec) (View, error) {
	spec = spec.normalized()
	if err := spec.Validate(m.cfg.Limits); err != nil {
		return View{}, err
	}
	now := m.cfg.now()
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return View{}, ErrClosed
	}
	active := 0
	for _, id := range m.order {
		if !m.jobs[id].snapshotStatus().Finished() {
			active++
		}
	}
	if active >= m.cfg.MaxActive {
		m.mu.Unlock()
		return View{}, fmt.Errorf("%w (%d active, max %d)", ErrTooManyJobs, active, m.cfg.MaxActive)
	}
	m.seq++
	j := &Job{
		id:      fmt.Sprintf("job-%06d", m.seq),
		spec:    spec,
		created: now,
		status:  StatusPending,
	}
	m.insertLocked(j)
	m.mu.Unlock()

	m.persist(j)
	if m.cfg.Observer != nil {
		m.cfg.Observer.JobSubmitted(spec.Kind)
	}
	m.queue <- j // cannot block: queue capacity == MaxActive
	return j.view(now), nil
}

// insertLocked stores a job and evicts the oldest finished jobs beyond
// MaxStored. Callers hold m.mu.
func (m *Manager) insertLocked(j *Job) {
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	for len(m.jobs) > m.cfg.MaxStored {
		evicted := false
		for _, id := range m.order {
			if jj := m.jobs[id]; jj != nil && jj.snapshotStatus().Finished() {
				m.removeLocked(id)
				evicted = true
				break
			}
		}
		if !evicted {
			break // nothing finished to evict; active jobs stay
		}
	}
}

func (m *Manager) removeLocked(id string) {
	delete(m.jobs, id)
	for i, oid := range m.order {
		if oid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.deleteSnapshot(id)
}

// snapshotStatus reads the status under the job lock.
func (j *Job) snapshotStatus() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Get returns a job's current view.
func (m *Manager) Get(id string) (View, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, false
	}
	return j.view(m.cfg.now()), true
}

// SpecLimits returns the manager's effective spec limits — the clamp
// shard executors apply so a scattered spec is vetted exactly as a
// local submission would be.
func (m *Manager) SpecLimits() Limits { return m.cfg.Limits }

// Counts returns the instantaneous number of queued (pending) and
// running jobs — the queue-depth and running-jobs gauges. Unlike a
// counter derived from lifecycle events, a direct scan cannot drift
// when a job is cancelled before it ever starts.
func (m *Manager) Counts() (pending, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		switch j.status {
		case StatusPending:
			pending++
		case StatusRunning:
			running++
		}
		j.mu.Unlock()
	}
	return pending, running
}

// List returns every stored job, newest first.
func (m *Manager) List() []View {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		js = append(js, m.jobs[id])
	}
	m.mu.Unlock()
	now := m.cfg.now()
	out := make([]View, len(js))
	for i, j := range js {
		out[i] = j.view(now)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Result returns a finished job's result document. ErrNotFinished is
// returned while the job is still pending or running; failed and
// cancelled jobs yield their view with a nil result.
func (m *Manager) Result(id string) (json.RawMessage, View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, View{}, ErrNotFound
	}
	v := j.view(m.cfg.now())
	if !v.Status.Finished() {
		return nil, v, ErrNotFinished
	}
	j.mu.Lock()
	res := j.result
	j.mu.Unlock()
	return res, v, nil
}

// Cancel requests cancellation of a pending or running job. Workers
// observe the cancelled context within one evaluation batch. Finished
// jobs are left untouched (cancelling them is a no-op, not an error).
func (m *Manager) Cancel(id string) (View, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return View{}, ErrNotFound
	}
	j.mu.Lock()
	switch {
	case j.status == StatusPending:
		// Still queued: finish it here; the worker skips it.
		j.status = StatusCancelled
		j.userCancelled = true
		j.err = "cancelled before start"
		j.finished = m.cfg.now()
	case j.status == StatusRunning:
		j.userCancelled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	j.mu.Unlock()
	v := j.view(m.cfg.now())
	if v.Status == StatusCancelled {
		m.persist(j)
	}
	return v, nil
}

// Remove cancels the job if active and deletes it from the store and
// the snapshot directory.
func (m *Manager) Remove(id string) (View, error) {
	v, err := m.Cancel(id)
	if err != nil {
		return View{}, err
	}
	m.mu.Lock()
	m.removeLocked(id)
	m.mu.Unlock()
	return v, nil
}

// worker runs queued jobs until the manager closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.runJob(j)
		}
	}
}

// runJob executes one job under its own deadline, with panic recovery
// and snapshot persistence.
func (m *Manager) runJob(j *Job) {
	timeout := j.spec.timeout(m.cfg.DefaultTimeout)
	ctx, cancel := context.WithTimeout(m.ctx, timeout)
	defer cancel()

	j.mu.Lock()
	if j.status != StatusPending { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = m.cfg.now()
	j.cancel = cancel
	j.mu.Unlock()
	if m.cfg.Observer != nil {
		m.cfg.Observer.JobStarted(j.spec.Kind)
	}
	m.log.Printf("jobs: %s started (%s)", j.id, j.spec.Kind)

	var (
		result any
		err    error
	)
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("jobs: panic in %s job: %v", j.spec.Kind, rec)
				m.log.Printf("jobs: %s panicked: %v\n%s", j.id, rec, debug.Stack())
			}
		}()
		result, err = m.runSpec(ctx, j)
	}()

	drained := m.ctx.Err() != nil
	now := m.cfg.now()
	j.mu.Lock()
	j.finished = now
	switch {
	case err == nil:
		raw, merr := json.Marshal(result)
		if merr != nil {
			j.status = StatusFailed
			j.err = "encoding result: " + merr.Error()
		} else {
			j.status = StatusSucceeded
			j.result = raw
		}
	case errors.Is(err, context.DeadlineExceeded) && ctx.Err() == context.DeadlineExceeded:
		j.status = StatusFailed
		j.err = fmt.Sprintf("deadline exceeded after %s", timeout)
	case errors.Is(err, context.Canceled):
		j.status = StatusCancelled
		if j.userCancelled {
			j.err = "cancelled"
		} else {
			j.err = "interrupted by manager shutdown"
		}
	default:
		j.status = StatusFailed
		j.err = err.Error()
	}
	status := j.status
	evals := j.done.Load()
	interrupted := status == StatusCancelled && !j.userCancelled && drained
	j.mu.Unlock()

	if m.cfg.Observer != nil {
		m.cfg.Observer.JobFinished(j.spec.Kind, status, evals)
	}
	m.log.Printf("jobs: %s %s after %d/%d evaluations%s",
		j.id, status, j.done.Load(), j.total.Load(), errSuffix(j))
	if interrupted {
		// Shutdown, not user intent: persist as pending so the next
		// manager over this snapshot directory re-runs the job.
		m.persistPending(j)
		return
	}
	m.persist(j)
}

func errSuffix(j *Job) string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == "" {
		return ""
	}
	return ": " + j.err
}

// janitor evicts finished jobs past the result TTL.
func (m *Manager) janitor() {
	defer m.wg.Done()
	tick := m.cfg.ResultTTL / 10
	if tick > 30*time.Second {
		tick = 30 * time.Second
	}
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.evictExpired()
		}
	}
}

func (m *Manager) evictExpired() {
	cutoff := m.cfg.now().Add(-m.cfg.ResultTTL)
	m.mu.Lock()
	defer m.mu.Unlock()
	var expired []string
	for id, j := range m.jobs {
		j.mu.Lock()
		if j.status.Finished() && !j.finished.IsZero() && j.finished.Before(cutoff) {
			expired = append(expired, id)
		}
		j.mu.Unlock()
	}
	for _, id := range expired {
		m.removeLocked(id)
		m.log.Printf("jobs: %s evicted after result TTL", id)
	}
}
