package yield

import (
	"fmt"
	"math"

	"ttmcas/internal/units"
)

// Binning and core salvage. Section 2.1 of the paper notes that
// customers "may choose to separate chips by their performance
// characteristics or defects, commonly known as binning". For
// multicore dies the dominant defect-binning mechanism is core
// salvage: a die whose shared logic works and at least m of its k
// identical cores work is sold into a lower bin instead of scrapped
// (AMD sells 6-core Zen dies cut from 8-core CCDs this way). Salvage
// raises the effective die yield, which flows straight into the wafer
// counts of Eqs. 5 and 7.
//
// The model splits the die into a shared region (uncore, I/O — any
// defect kills the die) and k equal core slices (defects kill only
// that core), treats region survival as independent, and uses the
// configured yield family per region. Independence is optimistic under
// clustering (a cluster spanning two cores counts twice); the
// negative-binomial per-region law keeps the per-region math exact and
// the composition error second-order.

// Salvage describes a core-salvage binning scheme.
type Salvage struct {
	// Cores is the number of identical core slices (k ≥ 1).
	Cores int
	// MinGoodCores is the lowest sellable bin (1 ≤ m ≤ k). m = k means
	// no salvage: every core must work.
	MinGoodCores int
	// CoreAreaFraction is the fraction of the die occupied by the core
	// slices collectively, in (0, 1]; the remainder is shared logic.
	CoreAreaFraction float64
}

// Validate checks the scheme's structural constraints.
func (s Salvage) Validate() error {
	switch {
	case s.Cores < 1:
		return fmt.Errorf("yield: salvage needs at least one core, got %d", s.Cores)
	case s.MinGoodCores < 1 || s.MinGoodCores > s.Cores:
		return fmt.Errorf("yield: min good cores %d outside [1, %d]", s.MinGoodCores, s.Cores)
	case s.CoreAreaFraction <= 0 || s.CoreAreaFraction > 1:
		return fmt.Errorf("yield: core area fraction %v outside (0, 1]", s.CoreAreaFraction)
	}
	return nil
}

// SalvageYield returns the fraction of dies sellable into any bin ≥
// MinGoodCores: P(shared region good) · P(at least m of k cores good).
func SalvageYield(p Params, s Salvage) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	shared, coreY := regionYields(p, s)
	tail := 0.0
	for j := s.MinGoodCores; j <= s.Cores; j++ {
		tail += binomialPMF(s.Cores, j, coreY)
	}
	return shared * tail, nil
}

// BinDistribution returns P(die lands in the j-good-cores bin) for
// j = 0..Cores, where j = 0 also absorbs dies whose shared region
// failed (scrap). The entries sum to 1.
func BinDistribution(p Params, s Salvage) ([]float64, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	shared, coreY := regionYields(p, s)
	out := make([]float64, s.Cores+1)
	for j := 0; j <= s.Cores; j++ {
		out[j] = shared * binomialPMF(s.Cores, j, coreY)
	}
	out[0] += 1 - shared // shared-logic kill → scrap bin
	return out, nil
}

// regionYields splits the die and evaluates the per-region yields.
func regionYields(p Params, s Salvage) (shared, perCore float64) {
	coreArea := units.MM2(float64(p.Area) * s.CoreAreaFraction / float64(s.Cores))
	sharedArea := units.MM2(float64(p.Area) * (1 - s.CoreAreaFraction))
	mk := func(a units.MM2) float64 {
		return Yield(Params{Area: a, D0: p.D0, Alpha: p.Alpha, Model: p.Model})
	}
	return mk(sharedArea), mk(coreArea)
}

// binomialPMF returns C(n, k)·p^k·(1−p)^(n−k), computed in log space
// for stability at large core counts.
func binomialPMF(n, k int, p float64) float64 {
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lchoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

// lchoose returns ln C(n, k) via log-gamma.
func lchoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
