package yield

import (
	"math"
	"testing"
	"testing/quick"

	"ttmcas/internal/units"
)

func bigDie() Params {
	return Params{Area: 400, D0: 0.1} // A·D0 = 0.4: yield matters
}

func TestSalvageValidate(t *testing.T) {
	bad := []Salvage{
		{Cores: 0, MinGoodCores: 1, CoreAreaFraction: 0.5},
		{Cores: 8, MinGoodCores: 0, CoreAreaFraction: 0.5},
		{Cores: 8, MinGoodCores: 9, CoreAreaFraction: 0.5},
		{Cores: 8, MinGoodCores: 4, CoreAreaFraction: 0},
		{Cores: 8, MinGoodCores: 4, CoreAreaFraction: 1.5},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v should be invalid", s)
		}
		if _, err := SalvageYield(bigDie(), s); err == nil {
			t.Errorf("SalvageYield(%+v) should error", s)
		}
		if _, err := BinDistribution(bigDie(), s); err == nil {
			t.Errorf("BinDistribution(%+v) should error", s)
		}
	}
}

func TestSalvageImprovesYield(t *testing.T) {
	p := bigDie()
	plain := Yield(p)
	full := Salvage{Cores: 8, MinGoodCores: 8, CoreAreaFraction: 0.7}
	salv := Salvage{Cores: 8, MinGoodCores: 6, CoreAreaFraction: 0.7}
	yFull, err := SalvageYield(p, full)
	if err != nil {
		t.Fatal(err)
	}
	ySalv, err := SalvageYield(p, salv)
	if err != nil {
		t.Fatal(err)
	}
	if ySalv <= yFull {
		t.Errorf("salvage (%v) should beat all-cores-required (%v)", ySalv, yFull)
	}
	// Requiring all regions good is (approximately) the plain die
	// yield; independence makes it slightly optimistic under
	// clustering but within a few percent here.
	if math.Abs(yFull-plain) > 0.05 {
		t.Errorf("all-cores yield %v far from plain die yield %v", yFull, plain)
	}
}

func TestSalvageMonotoneInMinCores(t *testing.T) {
	p := bigDie()
	prev := 1.1
	for m := 1; m <= 8; m++ {
		y, err := SalvageYield(p, Salvage{Cores: 8, MinGoodCores: m, CoreAreaFraction: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		if y > prev {
			t.Errorf("yield should fall as the bin floor rises: m=%d gives %v > %v", m, y, prev)
		}
		prev = y
	}
}

func TestSalvageBounds(t *testing.T) {
	// Property: salvage yield is a probability and never exceeds the
	// shared-region yield.
	f := func(rawArea uint16, rawFrac uint8, rawM uint8) bool {
		area := units.MM2(float64(rawArea%800) + 10)
		frac := 0.1 + 0.8*float64(rawFrac)/255
		cores := 8
		m := int(rawM%8) + 1
		p := Params{Area: area, D0: 0.1}
		y, err := SalvageYield(p, Salvage{Cores: cores, MinGoodCores: m, CoreAreaFraction: frac})
		if err != nil {
			return false
		}
		sharedArea := units.MM2(float64(area) * (1 - frac))
		shared := Yield(Params{Area: sharedArea, D0: 0.1})
		return y >= 0 && y <= shared+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinDistributionSumsToOne(t *testing.T) {
	p := bigDie()
	s := Salvage{Cores: 8, MinGoodCores: 6, CoreAreaFraction: 0.7}
	dist, err := BinDistribution(p, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(dist) != 9 {
		t.Fatalf("bins = %d", len(dist))
	}
	sum := 0.0
	for _, v := range dist {
		if v < 0 {
			t.Fatalf("negative bin probability: %v", dist)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("distribution sums to %v", sum)
	}
	// The tail above the bin floor matches SalvageYield.
	tail := dist[6] + dist[7] + dist[8]
	y, _ := SalvageYield(p, s)
	if math.Abs(tail-y) > 1e-9 {
		t.Errorf("tail %v != salvage yield %v", tail, y)
	}
	// With a mildly defective process the all-good bin dominates the
	// 7-good bin, which dominates 6-good.
	if !(dist[8] > dist[7] && dist[7] > dist[6]) {
		t.Errorf("bin ordering unexpected: %v", dist[6:])
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if got := binomialPMF(8, 0, 0); got != 1 {
		t.Errorf("PMF(k=0, p=0) = %v", got)
	}
	if got := binomialPMF(8, 3, 0); got != 0 {
		t.Errorf("PMF(k=3, p=0) = %v", got)
	}
	if got := binomialPMF(8, 8, 1); got != 1 {
		t.Errorf("PMF(k=n, p=1) = %v", got)
	}
	if got := binomialPMF(8, 3, 1); got != 0 {
		t.Errorf("PMF(k<n, p=1) = %v", got)
	}
	// Symmetric fair case: C(4,2)/16 = 0.375.
	if got := binomialPMF(4, 2, 0.5); math.Abs(got-0.375) > 1e-12 {
		t.Errorf("PMF(4,2,0.5) = %v", got)
	}
}
