package yield

import (
	"math"
	"testing"
	"testing/quick"

	"ttmcas/internal/units"
)

func TestNegBinomialKnownValue(t *testing.T) {
	// A·D0 = 0.83, α = 3 → Y = (1 + 0.83/3)^-3 ≈ 0.48, the paper's
	// 250 nm A11 anchor.
	y := NegBinomial(1660, 0.05)
	if math.Abs(y-0.48) > 0.01 {
		t.Errorf("Y(1660mm², 0.05/cm²) = %v, want ~0.48", y)
	}
}

func TestYieldLimits(t *testing.T) {
	if y := NegBinomial(0, 0.1); y != 1 {
		t.Errorf("zero-area yield = %v, want 1", y)
	}
	if y := NegBinomial(100, 0); y != 1 {
		t.Errorf("zero-defect yield = %v, want 1", y)
	}
	if y := NegBinomial(-5, 0.1); y != 1 {
		t.Errorf("negative-area yield = %v, want 1", y)
	}
}

func TestYieldBoundsAndMonotonicity(t *testing.T) {
	// Properties: Y ∈ (0, 1]; monotone non-increasing in area and in
	// defect density, for all three model families.
	f := func(rawArea, rawD0 uint16, modelSel uint8) bool {
		area := units.MM2(float64(rawArea%5000) + 1)
		d0 := units.DefectsPerCM2(float64(rawD0%500)/1000 + 0.001)
		model := Model(modelSel % 3)
		y := Yield(Params{Area: area, D0: d0, Model: model})
		if y <= 0 || y > 1 || math.IsNaN(y) {
			return false
		}
		y2 := Yield(Params{Area: area * 2, D0: d0, Model: model})
		if y2 > y {
			return false
		}
		y3 := Yield(Params{Area: area, D0: d0 * 2, Model: model})
		return y3 <= y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelsAgreeForSmallDefects(t *testing.T) {
	// All three families converge to 1 − A·D0 as A·D0 → 0.
	area, d0 := units.MM2(1), units.DefectsPerCM2(0.01) // A·D0 = 1e-4
	nb := Yield(Params{Area: area, D0: d0, Model: NegativeBinomial})
	po := Yield(Params{Area: area, D0: d0, Model: Poisson})
	mu := Yield(Params{Area: area, D0: d0, Model: Murphy})
	if math.Abs(nb-po) > 1e-6 || math.Abs(nb-mu) > 1e-6 {
		t.Errorf("models diverge at small A·D0: nb=%v po=%v murphy=%v", nb, po, mu)
	}
}

func TestModelOrderingForLargeDefects(t *testing.T) {
	// With clustering, negative binomial is more optimistic than
	// Poisson for large A·D0 (defects bunch on fewer dies).
	area, d0 := units.MM2(1000), units.DefectsPerCM2(0.2) // A·D0 = 2
	nb := Yield(Params{Area: area, D0: d0, Model: NegativeBinomial})
	po := Yield(Params{Area: area, D0: d0, Model: Poisson})
	if nb <= po {
		t.Errorf("negative binomial (%v) should exceed Poisson (%v) at A·D0=2", nb, po)
	}
}

func TestAlphaLimitApproachesPoisson(t *testing.T) {
	area, d0 := units.MM2(500), units.DefectsPerCM2(0.1)
	nb := Yield(Params{Area: area, D0: d0, Alpha: 1e7})
	po := Yield(Params{Area: area, D0: d0, Model: Poisson})
	if math.Abs(nb-po) > 1e-4 {
		t.Errorf("α→∞ limit: nb=%v, poisson=%v", nb, po)
	}
}

func TestDiesNeeded(t *testing.T) {
	if got := DiesNeeded(100, 0.5); got != 200 {
		t.Errorf("DiesNeeded = %v, want 200", got)
	}
	if got := DiesNeeded(0, 0.5); got != 0 {
		t.Errorf("DiesNeeded(0 good) = %v, want 0", got)
	}
	if got := DiesNeeded(100, 0); !math.IsInf(got, 1) {
		t.Errorf("DiesNeeded(yield 0) = %v, want +Inf", got)
	}
}

func TestAreaForInvertsYield(t *testing.T) {
	f := func(rawY uint16) bool {
		y := 0.05 + 0.9*float64(rawY)/65535
		a := AreaFor(y, 0.1, DefaultAlpha)
		back := NegBinomial(a, 0.1)
		return math.Abs(back-y) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if a := AreaFor(1, 0.1, 3); a != 0 {
		t.Errorf("AreaFor(1) = %v, want 0", float64(a))
	}
	if a := AreaFor(0, 0.1, 3); !math.IsInf(float64(a), 1) {
		t.Errorf("AreaFor(0) = %v, want +Inf", float64(a))
	}
}

func TestModelString(t *testing.T) {
	if NegativeBinomial.String() != "negative-binomial" ||
		Poisson.String() != "poisson" || Murphy.String() != "murphy" {
		t.Error("model names wrong")
	}
	if Model(99).String() == "" {
		t.Error("unknown model should still render")
	}
}
