// Package yield implements die-yield models. The paper (Eq. 6) uses the
// negative-binomial yield model
//
//	Y(A, p) = (1 + A·D0(p)/α)^(−α)
//
// with defect density D0 per process node and cluster parameter α = 3
// ("average defect clustering", after Cunningham [26] and Stow et
// al. [111]). Poisson and Murphy models are provided as ablation
// alternatives; all three agree as A·D0 → 0 and diverge for large,
// defect-prone dies.
package yield

import (
	"fmt"
	"math"

	"ttmcas/internal/units"
)

// DefaultAlpha is the cluster parameter the paper fixes for its entire
// evaluation.
const DefaultAlpha = 3.0

// Model identifies a die-yield model family.
type Model int

const (
	// NegativeBinomial is the paper's model (Eq. 6).
	NegativeBinomial Model = iota
	// Poisson is the classical Y = exp(−A·D0) model, the α → ∞ limit
	// of the negative binomial.
	Poisson
	// Murphy is Murphy's yield integral Y = ((1 − e^(−A·D0))/(A·D0))².
	Murphy
)

// String implements fmt.Stringer for reporting.
func (m Model) String() string {
	switch m {
	case NegativeBinomial:
		return "negative-binomial"
	case Poisson:
		return "poisson"
	case Murphy:
		return "murphy"
	default:
		return fmt.Sprintf("yield.Model(%d)", int(m))
	}
}

// Params bundles a yield computation's inputs.
type Params struct {
	// Area is the die area.
	Area units.MM2
	// D0 is the process node's defect density.
	D0 units.DefectsPerCM2
	// Alpha is the clustering parameter for the negative-binomial
	// model; zero means DefaultAlpha.
	Alpha float64
	// Model selects the family; the zero value is the paper's
	// negative binomial.
	Model Model
}

// Yield returns the fraction of functional dies in [0, 1]. Non-positive
// areas or defect densities yield 1 (a zero-area or defect-free die
// always works), matching the model limits.
func Yield(p Params) float64 {
	ad := float64(p.Area) * p.D0.PerMM2() // expected defects per die
	if ad <= 0 {
		return 1
	}
	switch p.Model {
	case Poisson:
		return math.Exp(-ad)
	case Murphy:
		f := (1 - math.Exp(-ad)) / ad
		return f * f
	default:
		alpha := p.Alpha
		if alpha <= 0 {
			alpha = DefaultAlpha
		}
		return math.Pow(1+ad/alpha, -alpha)
	}
}

// NegBinomial is shorthand for the paper's Eq. 6 with the default α.
func NegBinomial(area units.MM2, d0 units.DefectsPerCM2) float64 {
	return Yield(Params{Area: area, D0: d0})
}

// DiesNeeded returns the expected number of dies that must be fabricated
// so that `good` dies pass, given the yield fraction y. A yield of zero
// returns +Inf: the design is unmanufacturable.
func DiesNeeded(good float64, y float64) float64 {
	if good <= 0 {
		return 0
	}
	if y <= 0 {
		return math.Inf(1)
	}
	return good / y
}

// AreaFor inverts the negative-binomial model: it returns the die area
// at which the yield equals y (0 < y < 1) for the given defect density
// and α. Used by tests and by capacity-planning what-ifs.
func AreaFor(y float64, d0 units.DefectsPerCM2, alpha float64) units.MM2 {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if y >= 1 {
		return 0
	}
	if y <= 0 || d0 <= 0 {
		return units.MM2(math.Inf(1))
	}
	ad := alpha * (math.Pow(y, -1/alpha) - 1)
	return units.MM2(ad / d0.PerMM2())
}
