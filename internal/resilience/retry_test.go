package resilience

import (
	"testing"
	"time"
)

func TestRetrierBudget(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 10, BudgetRatio: 0.5, MinBudget: 2}, 1)
	// The cold bucket holds MinBudget tokens.
	for i := 0; i < 2; i++ {
		if !r.AllowRetry("eval", 1) {
			t.Fatalf("cold budget refused retry %d of MinBudget", i+1)
		}
	}
	if r.AllowRetry("eval", 1) {
		t.Fatal("drained budget admitted a retry")
	}
	// Two first attempts deposit 2 * 0.5 = 1 token: one retry.
	r.Attempt("eval")
	r.Attempt("eval")
	if !r.AllowRetry("eval", 1) {
		t.Fatal("replenished budget refused a retry")
	}
	if r.AllowRetry("eval", 1) {
		t.Fatal("budget admitted more retries than deposits paid for")
	}
	st := r.Stats()
	if st.Retries != 3 || st.BudgetDenied != 2 {
		t.Fatalf("stats = %+v, want Retries 3 BudgetDenied 2", st)
	}
}

func TestRetrierBudgetPerClass(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 10, MinBudget: 1}, 1)
	if !r.AllowRetry("a", 1) {
		t.Fatal("class a cold budget refused its retry")
	}
	if r.AllowRetry("a", 1) {
		t.Fatal("class a budget not drained")
	}
	// Class b has its own bucket.
	if !r.AllowRetry("b", 1) {
		t.Fatal("class b budget drained by class a's retries")
	}
}

func TestRetrierMaxAttempts(t *testing.T) {
	r := NewRetrier(RetryPolicy{MaxAttempts: 3, MinBudget: 100}, 1)
	if !r.AllowRetry("eval", 1) || !r.AllowRetry("eval", 2) {
		t.Fatal("budget refused retries below MaxAttempts")
	}
	if r.AllowRetry("eval", 3) {
		t.Fatal("retry admitted at MaxAttempts")
	}
}

func TestRetrierBackoff(t *testing.T) {
	r := NewRetrier(RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}, 1)
	for attempt := 1; attempt <= 6; attempt++ {
		ceil := 100 * time.Millisecond << uint(attempt-1)
		if ceil > time.Second {
			ceil = time.Second
		}
		for i := 0; i < 32; i++ {
			d := r.Backoff(attempt, 0)
			if d < 0 || d >= ceil {
				t.Fatalf("attempt %d backoff = %v, want in [0, %v)", attempt, d, ceil)
			}
		}
	}
}

func TestRetrierBackoffHonorsRetryAfter(t *testing.T) {
	r := NewRetrier(RetryPolicy{BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}, 1)
	if d := r.Backoff(1, 500*time.Millisecond); d < 500*time.Millisecond {
		t.Fatalf("backoff = %v, want >= the 500ms Retry-After floor", d)
	}
}

func TestRetrierDeterministicStream(t *testing.T) {
	a := NewRetrier(RetryPolicy{}, 42)
	b := NewRetrier(RetryPolicy{}, 42)
	for i := 1; i <= 16; i++ {
		da, db := a.Backoff(1+i%3, 0), b.Backoff(1+i%3, 0)
		if da != db {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}
	c := NewRetrier(RetryPolicy{}, 43)
	same := true
	for i := 0; i < 16; i++ {
		if a.Backoff(3, 0) != c.Backoff(3, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical backoff stream")
	}
}

func TestNilRetrier(t *testing.T) {
	var r *Retrier
	r.Attempt("eval")
	if r.AllowRetry("eval", 1) {
		t.Fatal("nil retrier admitted a retry")
	}
	if d := r.Backoff(1, time.Second); d != time.Second {
		t.Fatalf("nil retrier backoff = %v, want the Retry-After floor", d)
	}
	if st := r.Stats(); st.Retries != 0 {
		t.Fatalf("nil retrier stats = %+v", st)
	}
}
