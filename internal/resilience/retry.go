package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// RetryPolicy parameterizes a Retrier. The zero value of every field
// selects a sensible default.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per request, first attempt
	// included (default 3).
	MaxAttempts int
	// BaseDelay is the backoff unit: attempt n sleeps a uniform
	// random duration in [0, BaseDelay * 2^(n-1)] — "full jitter"
	// (default 25ms).
	BaseDelay time.Duration
	// MaxDelay caps the jitter range regardless of attempt count
	// (default 1s).
	MaxDelay time.Duration
	// BudgetRatio is the retry budget: each first attempt deposits
	// this many retry tokens (fractionally), each retry withdraws
	// one, so steady-state retries cannot exceed this fraction of
	// real traffic and a hard outage cannot trigger a retry storm
	// (default 0.2).
	BudgetRatio float64
	// MinBudget is the bucket floor in whole retries, so a cold or
	// low-traffic class can still retry at all (default 3).
	MinBudget int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.BudgetRatio <= 0 || p.BudgetRatio > 1 {
		p.BudgetRatio = 0.2
	}
	if p.MinBudget <= 0 {
		p.MinBudget = 3
	}
	return p
}

// RetrierStats is a point-in-time snapshot of a Retrier's counters.
type RetrierStats struct {
	Retries      uint64 // retries admitted by the budget
	BudgetDenied uint64 // retries refused because the budget was dry
}

// Retrier implements a bounded retry budget with full-jitter
// exponential backoff, in the style of Finagle's RetryBudget: retries
// are paid for by a token bucket fed by first attempts, so under a
// hard outage the retry volume decays to the budget ratio instead of
// multiplying offered load. Buckets are kept per request class
// ("eval", "probe", ...) so one misbehaving class cannot starve
// another's budget.
type Retrier struct {
	policy RetryPolicy

	mu      sync.Mutex
	buckets map[string]*float64

	retries atomic.Uint64
	denied  atomic.Uint64

	seed uint64
	ctr  atomic.Uint64
}

// NewRetrier returns a Retrier with the given policy; seed fixes the
// jitter stream so a run is reproducible.
func NewRetrier(policy RetryPolicy, seed int64) *Retrier {
	return &Retrier{
		policy:  policy.withDefaults(),
		buckets: make(map[string]*float64),
		seed:    uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
	}
}

// Policy returns the retrier's effective (defaulted) policy.
func (r *Retrier) Policy() RetryPolicy { return r.policy }

// Attempt records a first attempt for class, depositing BudgetRatio
// retry tokens into the class bucket (capped so idle periods don't
// accumulate an unbounded burst allowance).
func (r *Retrier) Attempt(class string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	b := r.bucketLocked(class)
	ceil := float64(r.policy.MinBudget) * 10
	if *b += r.policy.BudgetRatio; *b > ceil {
		*b = ceil
	}
	r.mu.Unlock()
}

// AllowRetry reports whether class may retry, withdrawing one token
// on success. attempt is the 1-based number of the attempt that just
// failed; the retrier refuses once MaxAttempts is reached regardless
// of budget.
func (r *Retrier) AllowRetry(class string, attempt int) bool {
	if r == nil {
		return false
	}
	if attempt >= r.policy.MaxAttempts {
		return false
	}
	r.mu.Lock()
	b := r.bucketLocked(class)
	ok := *b >= 1
	if ok {
		*b--
	}
	r.mu.Unlock()
	if ok {
		r.retries.Add(1)
	} else {
		r.denied.Add(1)
	}
	return ok
}

// Backoff returns how long to sleep before retrying after the given
// 1-based failed attempt: a full-jitter exponential draw, floored by
// retryAfter when the server sent an explicit Retry-After hint.
func (r *Retrier) Backoff(attempt int, retryAfter time.Duration) time.Duration {
	if r == nil {
		return retryAfter
	}
	ceil := r.policy.BaseDelay << uint(attempt-1)
	if ceil > r.policy.MaxDelay || ceil <= 0 {
		ceil = r.policy.MaxDelay
	}
	d := time.Duration(r.draw() * float64(ceil))
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// Stats returns a snapshot of the retrier's counters.
func (r *Retrier) Stats() RetrierStats {
	if r == nil {
		return RetrierStats{}
	}
	return RetrierStats{Retries: r.retries.Load(), BudgetDenied: r.denied.Load()}
}

func (r *Retrier) bucketLocked(class string) *float64 {
	b, ok := r.buckets[class]
	if !ok {
		v := float64(r.policy.MinBudget)
		b = &v
		r.buckets[class] = b
	}
	return b
}

// draw returns the next deterministic uniform [0,1) variate
// (splitmix64, same stream construction as the fault injectors).
func (r *Retrier) draw() float64 {
	z := r.seed + r.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
