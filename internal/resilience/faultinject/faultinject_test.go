package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "   ", ";;"} {
		inj, err := Parse(spec, 1)
		if err != nil || inj != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, inj, err)
		}
		if inj.Enabled() {
			t.Fatal("nil injector reports enabled")
		}
		if err := inj.Inject("/v1/ttm"); err != nil {
			t.Fatalf("nil injector injected: %v", err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"latency",                    // not key=value
		"bogus=1",                    // unknown field
		"error-rate=1.5",             // rate out of range
		"error-rate=x",               // not a number
		"latency=abc",                // bad duration
		"latency-rate=0.5",           // rate without latency
		"panics=-1",                  // negative budget
		"route=/v1/ttm latency=-5ms", // negative latency
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestErrorRateOne(t *testing.T) {
	inj, err := Parse("route=/v1/ttm error-rate=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject("/v1/ttm"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject = %v, want ErrInjected", err)
	}
	if err := inj.Inject("/v1/cas"); err != nil {
		t.Fatalf("unmatched route injected: %v", err)
	}
	if st := inj.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 error", st)
	}
}

func TestErrorRateIsApproximate(t *testing.T) {
	inj, err := Parse("error-rate=0.25", 42)
	if err != nil {
		t.Fatal(err)
	}
	failures := 0
	for i := 0; i < 4000; i++ {
		if inj.Inject("/any") != nil {
			failures++
		}
	}
	if failures < 800 || failures > 1200 {
		t.Fatalf("failures = %d/4000, want ~1000", failures)
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	run := func() []bool {
		inj, err := Parse("error-rate=0.5", 7)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = inj.Inject("/x") != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	inj, err := Parse("latency=30ms", 1) // latency-rate defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := inj.Inject("/v1/ttm"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("Inject returned after %v, want >= 30ms sleep", d)
	}
	if st := inj.Stats(); st.Latencies != 1 {
		t.Fatalf("stats = %+v, want 1 latency", st)
	}
}

func TestPanicBudget(t *testing.T) {
	inj, err := Parse("panics=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		inj.Inject("/v1/ttm")
		return false
	}
	if !panicked() {
		t.Fatal("first Inject did not panic")
	}
	if panicked() {
		t.Fatal("second Inject panicked; budget was 1")
	}
	if st := inj.Stats(); st.Panics != 1 {
		t.Fatalf("stats = %+v, want 1 panic", st)
	}
}

func TestPauseResume(t *testing.T) {
	inj, err := Parse("error-rate=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	inj.Pause()
	if inj.Enabled() {
		t.Fatal("paused injector reports enabled")
	}
	if err := inj.Inject("/x"); err != nil {
		t.Fatalf("paused injector injected: %v", err)
	}
	inj.Resume()
	if err := inj.Inject("/x"); err == nil {
		t.Fatal("resumed injector injected nothing at error-rate=1")
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	inj, err := Parse("route=/v1/ttm error-rate=1; route=* error-rate=0", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Inject("/v1/ttm"); err == nil {
		t.Fatal("specific rule not applied")
	}
	if err := inj.Inject("/v1/cas"); err != nil {
		t.Fatalf("wildcard rule injected: %v", err)
	}
}

func TestMiddleware(t *testing.T) {
	inj, err := Parse("route=/fail error-rate=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	next := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	})
	h := inj.Middleware(next)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fail", nil))
	if rec.Code != http.StatusServiceUnavailable || !strings.Contains(rec.Body.String(), "injected") {
		t.Fatalf("injected route: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/pass", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("clean route: %d", rec.Code)
	}

	// A nil injector's middleware is the identity.
	var none *Injector
	if got := none.Middleware(next); got == nil {
		t.Fatal("nil middleware returned nil")
	}
}
