// Package faultinject makes failure paths testable: a configurable
// injector that adds latency spikes, error rates, and panics to
// selected routes. It is off unless a spec is supplied, and it is the
// engine behind the load generator's chaos scenario — the serving
// stack's overload and degradation machinery is only trustworthy if
// something actually exercises it.
//
// A spec is one or more rules separated by ';'. Each rule is a list of
// key=value fields separated by spaces or commas:
//
//	route=/v1/ttm latency=50ms latency-rate=0.02 error-rate=0.05 panics=1
//
// Fields:
//
//	route        path prefix the rule applies to ("*" or empty matches all)
//	latency      injected sleep duration (requires latency-rate > 0)
//	latency-rate probability of injecting the latency (default 1 when latency is set)
//	error-rate   probability of failing the request with ErrInjected
//	panics       total number of panics to inject over the injector's life
//
// The first rule whose route matches the request decides the faults.
// Decisions are drawn from a deterministic splitmix64 stream, so a
// fixed seed reproduces a chaos run exactly.
package faultinject

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrInjected marks a deliberately injected failure, so handlers and
// tests can distinguish chaos from genuine errors.
var ErrInjected = errors.New("faultinject: injected error")

// Rule is one parsed spec rule.
type Rule struct {
	Route       string
	Latency     time.Duration
	LatencyRate float64
	ErrorRate   float64
	Panics      int
}

// rule is a Rule plus its live panic budget.
type rule struct {
	Rule
	panicsLeft atomic.Int64
}

// Stats counts the faults an injector has delivered.
type Stats struct {
	Latencies uint64
	Errors    uint64
	Panics    uint64
}

// Injector applies parsed fault rules. The zero of *Injector (nil) is
// valid and injects nothing, so callers can hold one unconditionally.
type Injector struct {
	rules []*rule
	seed  uint64
	ctr   atomic.Uint64

	paused atomic.Bool

	latencies atomic.Uint64
	errors    atomic.Uint64
	panics    atomic.Uint64
}

// Parse builds an Injector from a spec string. An empty spec returns
// (nil, nil): fault injection disabled.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{seed: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
	for _, group := range strings.Split(spec, ";") {
		group = strings.TrimSpace(group)
		if group == "" {
			continue
		}
		r := &rule{Rule: Rule{Route: "*", LatencyRate: -1}}
		for _, field := range strings.FieldsFunc(group, func(c rune) bool { return c == ' ' || c == ',' || c == '\t' }) {
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: field %q is not key=value", field)
			}
			var err error
			switch key {
			case "route":
				r.Route = val
			case "latency":
				r.Latency, err = time.ParseDuration(val)
			case "latency-rate":
				r.LatencyRate, err = parseRate(key, val)
			case "error-rate":
				r.ErrorRate, err = parseRate(key, val)
			case "panics":
				r.Panics, err = strconv.Atoi(val)
				if err == nil && r.Panics < 0 {
					err = fmt.Errorf("faultinject: panics must be >= 0")
				}
			default:
				err = fmt.Errorf("faultinject: unknown field %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: %q: %w", field, err)
			}
		}
		if r.Latency < 0 {
			return nil, fmt.Errorf("faultinject: negative latency in %q", group)
		}
		if r.LatencyRate < 0 { // unset: default to 1 when a latency is configured
			r.LatencyRate = 0
			if r.Latency > 0 {
				r.LatencyRate = 1
			}
		}
		if r.Latency == 0 && r.LatencyRate > 0 {
			return nil, fmt.Errorf("faultinject: latency-rate without latency in %q", group)
		}
		r.panicsLeft.Store(int64(r.Panics))
		inj.rules = append(inj.rules, r)
	}
	if len(inj.rules) == 0 {
		return nil, nil
	}
	return inj, nil
}

func parseRate(key, val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("%s %v outside [0, 1]", key, f)
	}
	return f, nil
}

// Enabled reports whether the injector exists and is not paused.
func (inj *Injector) Enabled() bool { return inj != nil && !inj.paused.Load() }

// Pause suspends all injection (the rules and panic budgets are kept);
// Resume re-enables it. Harnesses use this to warm caches faultlessly
// before unleashing chaos.
func (inj *Injector) Pause() {
	if inj != nil {
		inj.paused.Store(true)
	}
}

// Resume re-enables a paused injector.
func (inj *Injector) Resume() {
	if inj != nil {
		inj.paused.Store(false)
	}
}

// Stats snapshots the injected-fault counters.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return Stats{
		Latencies: inj.latencies.Load(),
		Errors:    inj.errors.Load(),
		Panics:    inj.panics.Load(),
	}
}

// match returns the first rule whose route prefix matches.
func (inj *Injector) match(route string) *rule {
	for _, r := range inj.rules {
		if r.Route == "*" || r.Route == "" || strings.HasPrefix(route, r.Route) {
			return r
		}
	}
	return nil
}

// Inject applies the matching rule to one request: it may sleep for
// the configured latency, panic (consuming one unit of the rule's
// panic budget), or return an error wrapping ErrInjected. A nil
// injector, a paused injector, or an unmatched route injects nothing.
// route is matched against the request path, not the full pattern.
func (inj *Injector) Inject(route string) error {
	if !inj.Enabled() {
		return nil
	}
	r := inj.match(route)
	if r == nil {
		return nil
	}
	if r.Latency > 0 && inj.draw() < r.LatencyRate {
		inj.latencies.Add(1)
		time.Sleep(r.Latency)
	}
	if r.panicsLeft.Load() > 0 && r.panicsLeft.Add(-1) >= 0 {
		inj.panics.Add(1)
		panic(fmt.Sprintf("faultinject: injected panic on %s", route))
	}
	if r.ErrorRate > 0 && inj.draw() < r.ErrorRate {
		inj.errors.Add(1)
		return fmt.Errorf("%w on %s", ErrInjected, route)
	}
	return nil
}

// Middleware wraps an http.Handler with the injector: injected
// latency delays the request, injected errors answer 503 with a JSON
// body before the handler runs, and injected panics propagate (an
// outer recovery middleware is expected to contain them). A nil
// injector returns next unchanged.
func (inj *Injector) Middleware(next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := inj.Inject(r.URL.Path); err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "{\"error\":%q}\n", err.Error())
			return
		}
		next.ServeHTTP(w, r)
	})
}

// draw returns the next deterministic uniform float64 in [0, 1) from
// a splitmix64 stream keyed by the seed and a global counter.
func (inj *Injector) draw() float64 {
	z := inj.seed + inj.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
