package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmitUnderCapacity(t *testing.T) {
	l := NewLimiter(LimiterConfig{Name: "t", MaxConcurrent: 2})
	rel1, err := l.Admit(context.Background())
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	rel2, err := l.Admit(context.Background())
	if err != nil {
		t.Fatalf("second admit: %v", err)
	}
	st := l.Stats()
	if st.InUse != 2 || st.Admitted != 2 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	rel1()
	rel1() // double release must not free a second slot
	rel2()
	if st := l.Stats(); st.InUse != 0 {
		t.Fatalf("in use after release = %d", st.InUse)
	}
}

func TestSaturatedQueueSheds(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, Target: 5 * time.Millisecond})
	rel, err := l.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// MaxWait defaults to 4×Target = 20ms: the waiter must be shed in
	// bounded time, not hang.
	start := time.Now()
	if _, err := l.Admit(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("saturated admit: err = %v, want ErrShed", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("shed took %v; MaxWait not honored", waited)
	}
	if st := l.Stats(); st.Shed != 1 {
		t.Fatalf("shed count = %d, want 1", st.Shed)
	}
}

func TestContextCancelSheds(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, Target: time.Minute, MaxWait: time.Minute})
	rel, err := l.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := l.Admit(ctx); !errors.Is(err, ErrShed) {
		t.Fatalf("cancelled admit: err = %v, want ErrShed", err)
	}
}

// TestSheddingEngagesAndRecovers walks the control law through its
// states: a standing queue flips shedding on (subsequent arrivals are
// rejected immediately, without waiting), and freed capacity flips it
// back off.
func TestSheddingEngagesAndRecovers(t *testing.T) {
	cfg := LimiterConfig{
		MaxConcurrent: 1,
		Target:        time.Millisecond,
		Interval:      5 * time.Millisecond,
		MaxWait:       10 * time.Millisecond,
	}
	l := NewLimiter(cfg)
	rel, err := l.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Generate standing-queue observations until the law reacts.
	deadline := time.Now().Add(5 * time.Second)
	for !l.Shedding() {
		if time.Now().After(deadline) {
			t.Fatal("limiter never entered shedding despite a standing queue")
		}
		l.Admit(context.Background()) // times out after MaxWait, observes it
	}

	// While shedding, a queue-bound arrival is rejected instantly.
	start := time.Now()
	if _, err := l.Admit(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("shedding admit: err = %v", err)
	}
	if d := time.Since(start); d > cfg.MaxWait {
		t.Errorf("shedding admit waited %v; want immediate rejection", d)
	}

	// Capacity returns: the next arrivals admit on the fast path and
	// their zero-delay observations clear the flag.
	rel()
	deadline = time.Now().Add(5 * time.Second)
	for l.Shedding() {
		if time.Now().After(deadline) {
			t.Fatal("limiter never recovered after capacity returned")
		}
		r, err := l.Admit(context.Background())
		if err == nil {
			r()
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTryAdmit(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1})
	rel, ok := l.TryAdmit()
	if !ok {
		t.Fatal("TryAdmit on empty limiter failed")
	}
	if _, ok := l.TryAdmit(); ok {
		t.Fatal("TryAdmit on full limiter succeeded")
	}
	rel()
	if _, ok := l.TryAdmit(); !ok {
		t.Fatal("TryAdmit after release failed")
	}
}

func TestCloseWakesWaitersAndRejects(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 1, Target: time.Minute, MaxWait: time.Minute})
	rel, err := l.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	waited := make(chan error, 1)
	go func() {
		_, err := l.Admit(context.Background())
		waited <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter queue
	l.Close()
	select {
	case err := <-waited:
		if !errors.Is(err, ErrShed) || !errors.Is(err, ErrClosed) {
			t.Fatalf("queued waiter: err = %v, want ErrClosed (shed)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not wake the queued waiter")
	}
	if _, err := l.Admit(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("admit after close: err = %v, want ErrClosed", err)
	}
	l.Close() // idempotent
}

// TestConcurrentChurn exercises the limiter under the race detector.
func TestConcurrentChurn(t *testing.T) {
	l := NewLimiter(LimiterConfig{MaxConcurrent: 4, Target: time.Millisecond, MaxWait: 2 * time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if rel, err := l.Admit(context.Background()); err == nil {
					rel()
				}
				l.Stats()
			}
		}()
	}
	wg.Wait()
	st := l.Stats()
	if st.Admitted+st.Shed != 8*200 {
		t.Fatalf("admitted %d + shed %d != %d", st.Admitted, st.Shed, 8*200)
	}
	if st.InUse != 0 || st.Queued != 0 {
		t.Fatalf("leaked slots: %+v", st)
	}
}

func TestRetryAfterAtLeastOneSecond(t *testing.T) {
	l := NewLimiter(LimiterConfig{Target: time.Millisecond})
	if ra := l.RetryAfter(); ra < time.Second {
		t.Fatalf("RetryAfter = %v, want >= 1s", ra)
	}
}
