package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (or used as a sentinel by callers) when a
// circuit breaker refuses a call: the downstream peer has failed
// enough recently that sending more traffic would only burn the
// caller's deadline. Callers should fail over immediately — next
// alive peer, local compute — instead of waiting out a timeout.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker automaton.
// The numeric values are chosen so a metrics gauge reads "higher is
// worse": 0 closed (healthy), 1 half-open (probing), 2 open (failing).
type BreakerState int

const (
	BreakerClosed   BreakerState = 0
	BreakerHalfOpen BreakerState = 1
	BreakerOpen     BreakerState = 2
)

// String returns the lowercase state name used in /v1/cluster and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker. The zero value of every field
// selects a sensible default.
type BreakerConfig struct {
	// Name labels the breaker in stats and transition logs (the peer
	// URL, in cluster use).
	Name string
	// ConsecutiveFailures trips the breaker when this many calls fail
	// back to back, regardless of rate (default 5).
	ConsecutiveFailures int
	// FailureRate trips the breaker when the windowed failure ratio
	// reaches it, once MinSamples calls have been observed
	// (default 0.5).
	FailureRate float64
	// MinSamples is how many calls the rolling window must hold
	// before FailureRate applies, so one early failure cannot trip a
	// cold breaker (default 10).
	MinSamples int
	// Window is the span of the rolling failure-rate window
	// (default 10s).
	Window time.Duration
	// OpenFor is how long a tripped breaker rejects everything before
	// admitting half-open probes (default 3s).
	OpenFor time.Duration
	// HalfOpenProbes bounds how many concurrent trial calls the
	// half-open state admits (default 1).
	HalfOpenProbes int
	// CloseAfter is how many consecutive half-open successes close
	// the breaker again (default 2).
	CloseAfter int
	// OnTransition, if set, is called (outside the breaker lock)
	// after every state change.
	OnTransition func(name string, from, to BreakerState)

	// now is a test seam; nil means time.Now.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.FailureRate <= 0 || c.FailureRate > 1 {
		c.FailureRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Window <= 0 {
		c.Window = 10 * time.Second
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 3 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 2
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// BreakerStats is a point-in-time snapshot of one breaker.
type BreakerStats struct {
	Name        string
	State       BreakerState
	Failures    int // consecutive failures (closed state)
	Successes   int // consecutive successes (half-open state)
	Transitions uint64
	Opens       uint64
}

// Breaker is a per-dependency circuit breaker: Closed passes
// everything and counts outcomes; enough failures (consecutive or
// rate-over-window) trip it Open, which rejects instantly; after
// OpenFor it admits a bounded number of HalfOpen trial calls, and
// CloseAfter consecutive successes close it again (any half-open
// failure re-opens it).
//
// Record may be called without a matching Allow — the cluster's gossip
// prober does exactly that, feeding probe outcomes into the breaker so
// recovery is detected even while the breaker rejects regular traffic.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFail  int // consecutive failures while closed
	consecOK    int // consecutive successes while half-open
	inflight    int // admitted half-open probes not yet recorded
	openedAt    time.Time
	transitions uint64
	opens       uint64

	// Rolling failure-rate window: two half-Window buckets rotated in
	// place, so the rate always covers between one and two half-spans
	// of history at O(1) cost.
	bucketAt time.Time
	curOK    int
	curFail  int
	prevOK   int
	prevFail int
}

// NewBreaker returns a Breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call may proceed. Open rejects until OpenFor
// has elapsed, then flips to half-open; half-open admits at most
// HalfOpenProbes calls at once. Every admitted call must be followed
// by exactly one Record.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	now := b.cfg.now()
	switch b.state {
	case BreakerClosed:
		b.mu.Unlock()
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.OpenFor {
			b.mu.Unlock()
			return false
		}
		from := b.transitionLocked(BreakerHalfOpen)
		b.inflight = 1
		b.mu.Unlock()
		b.notify(from, BreakerHalfOpen)
		return true
	default: // half-open
		if b.inflight >= b.cfg.HalfOpenProbes {
			b.mu.Unlock()
			return false
		}
		b.inflight++
		b.mu.Unlock()
		return true
	}
}

// Record feeds one call outcome into the breaker. It is safe to call
// without a preceding Allow (probe traffic): such records still move
// the automaton — in particular a success observed while Open
// transitions to half-open credit, which is how a healed peer is
// detected without waiting for OpenFor to admit a trial request.
func (b *Breaker) Record(success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	now := b.cfg.now()
	b.rotateLocked(now)
	if success {
		b.curOK++
	} else {
		b.curFail++
	}
	if b.inflight > 0 {
		b.inflight--
	}

	var from, to BreakerState
	changed := false
	switch b.state {
	case BreakerClosed:
		if success {
			b.consecFail = 0
			break
		}
		b.consecFail++
		if b.consecFail >= b.cfg.ConsecutiveFailures || b.rateTrippedLocked() {
			from = b.transitionLocked(BreakerOpen)
			to, changed = BreakerOpen, true
		}
	case BreakerOpen:
		if success {
			// A success while open (gossip probe) is recovery
			// evidence: move to half-open and credit it.
			from = b.transitionLocked(BreakerHalfOpen)
			to, changed = BreakerHalfOpen, true
			b.consecOK = 1
			if b.consecOK >= b.cfg.CloseAfter {
				b.transitionLocked(BreakerClosed)
				// Report the net open -> closed transition.
				to = BreakerClosed
			}
		} else {
			b.openedAt = now // failures while open extend the cooldown
		}
	default: // half-open
		if success {
			b.consecOK++
			if b.consecOK >= b.cfg.CloseAfter {
				from = b.transitionLocked(BreakerClosed)
				to, changed = BreakerClosed, true
			}
		} else {
			from = b.transitionLocked(BreakerOpen)
			to, changed = BreakerOpen, true
		}
	}
	b.mu.Unlock()
	if changed {
		b.notify(from, to)
	}
}

// State returns the current state, applying the open -> half-open
// timeout so callers polling State see the same automaton Allow does.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.cfg.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		return BreakerHalfOpen
	}
	return b.state
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: BreakerClosed}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		Name:        b.cfg.Name,
		State:       b.state,
		Failures:    b.consecFail,
		Successes:   b.consecOK,
		Transitions: b.transitions,
		Opens:       b.opens,
	}
}

// transitionLocked moves to state to, resetting per-state counters,
// and returns the previous state. Callers hold b.mu.
func (b *Breaker) transitionLocked(to BreakerState) (from BreakerState) {
	from = b.state
	if from == to {
		return from
	}
	b.state = to
	b.transitions++
	switch to {
	case BreakerOpen:
		b.opens++
		b.openedAt = b.cfg.now()
		b.consecOK = 0
		b.inflight = 0
	case BreakerHalfOpen:
		b.consecOK = 0
	case BreakerClosed:
		b.consecFail = 0
		b.consecOK = 0
		b.inflight = 0
		b.curOK, b.curFail, b.prevOK, b.prevFail = 0, 0, 0, 0
	}
	return from
}

func (b *Breaker) notify(from, to BreakerState) {
	if from != to && b.cfg.OnTransition != nil {
		b.cfg.OnTransition(b.cfg.Name, from, to)
	}
}

// rotateLocked advances the two-bucket rolling window: when the
// current bucket is older than half the window it becomes the
// previous bucket (and anything older is dropped).
func (b *Breaker) rotateLocked(now time.Time) {
	half := b.cfg.Window / 2
	if b.bucketAt.IsZero() {
		b.bucketAt = now
		return
	}
	age := now.Sub(b.bucketAt)
	switch {
	case age >= b.cfg.Window:
		b.curOK, b.curFail, b.prevOK, b.prevFail = 0, 0, 0, 0
		b.bucketAt = now
	case age >= half:
		b.prevOK, b.prevFail = b.curOK, b.curFail
		b.curOK, b.curFail = 0, 0
		b.bucketAt = now
	}
}

// rateTrippedLocked reports whether the windowed failure rate has
// reached the configured threshold with enough samples behind it.
func (b *Breaker) rateTrippedLocked() bool {
	ok := b.curOK + b.prevOK
	fail := b.curFail + b.prevFail
	total := ok + fail
	if total < b.cfg.MinSamples {
		return false
	}
	return float64(fail)/float64(total) >= b.cfg.FailureRate
}
