package resilience

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func testBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.now = clk.now
	return NewBreaker(cfg)
}

func TestBreakerTripsOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{ConsecutiveFailures: 3})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3rd failure = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker admitted a call before OpenFor elapsed")
	}
	if st := b.Stats(); st.Opens != 1 {
		t.Fatalf("Opens = %d, want 1", st.Opens)
	}
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		ConsecutiveFailures: 100, // rate must be what trips it
		FailureRate:         0.5,
		MinSamples:          10,
	})
	// Alternate success/failure: never 100 consecutive, but the
	// windowed rate hits 0.5 with >= MinSamples observations.
	for i := 0; i < 10 && b.State() == BreakerClosed; i++ {
		b.Record(i%2 == 0)
	}
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 50%% failure rate = %v, want open", got)
	}
}

func TestBreakerRateNeedsMinSamples(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{ConsecutiveFailures: 100, FailureRate: 0.5, MinSamples: 10})
	// 100% failure rate but below MinSamples: must stay closed.
	for i := 0; i < 4; i++ {
		b.Record(false)
		b.Record(true) // reset the consecutive counter
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state below MinSamples = %v, want closed", got)
	}
}

func TestBreakerHalfOpenProbeAndClose(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		ConsecutiveFailures: 2,
		OpenFor:             time.Second,
		HalfOpenProbes:      1,
		CloseAfter:          2,
	})
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}

	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe after OpenFor")
	}
	if b.Allow() {
		t.Fatal("half-open admitted a second concurrent probe (HalfOpenProbes=1)")
	}
	b.Record(true)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after 1 half-open success = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open refused the next probe after the first completed")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after CloseAfter successes = %v, want closed", got)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{ConsecutiveFailures: 2, OpenFor: time.Second})
	b.Record(false)
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after half-open failure = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("re-opened breaker admitted a call immediately")
	}
}

func TestBreakerProbeSuccessWhileOpen(t *testing.T) {
	// A Record(true) without Allow — a gossip probe — observed while
	// open must move the breaker toward closed without waiting for
	// the OpenFor cooldown.
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{ConsecutiveFailures: 2, OpenFor: time.Hour, CloseAfter: 2})
	b.Record(false)
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	b.Record(true)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after probe success while open = %v, want half-open", got)
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after CloseAfter probe successes = %v, want closed", got)
	}
}

func TestBreakerTransitionCallback(t *testing.T) {
	clk := newFakeClock()
	type hop struct{ from, to BreakerState }
	var hops []hop
	b := testBreaker(clk, BreakerConfig{
		Name:                "peer-a",
		ConsecutiveFailures: 1,
		OpenFor:             time.Second,
		CloseAfter:          1,
		OnTransition: func(name string, from, to BreakerState) {
			if name != "peer-a" {
				t.Errorf("transition name = %q, want peer-a", name)
			}
			hops = append(hops, hop{from, to})
		},
	})
	b.Record(false) // closed -> open
	clk.advance(time.Second)
	if !b.Allow() { // open -> half-open
		t.Fatal("breaker refused the half-open probe")
	}
	b.Record(true) // half-open -> closed
	want := []hop{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	if len(hops) != len(want) {
		t.Fatalf("transitions = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, hops[i], want[i])
		}
	}
	if st := b.Stats(); st.Transitions != 3 {
		t.Fatalf("Transitions = %d, want 3", st.Transitions)
	}
}

func TestBreakerWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	b := testBreaker(clk, BreakerConfig{
		ConsecutiveFailures: 100,
		FailureRate:         0.5,
		MinSamples:          4,
		Window:              time.Second,
	})
	b.Record(false)
	b.Record(false)
	b.Record(false)
	// Let the window lapse entirely: old failures must not count.
	clk.advance(2 * time.Second)
	b.Record(true)
	b.Record(false)
	b.Record(true)
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after window expiry = %v, want closed (stale failures counted)", got)
	}
}

func TestNilBreakerIsPermissive(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Fatal("nil breaker refused a call")
	}
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", got)
	}
}
