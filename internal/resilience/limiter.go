// Package resilience implements the serving layer's defenses against
// overload and misbehaving dependencies: an adaptive admission-control
// limiter that sheds excess load before queueing delay collapses
// latency, a per-peer circuit breaker and a budgeted retry policy for
// the cluster transport, and (in the faultinject and netfault
// subpackages) configurable fault injectors that make the failure
// paths testable.
//
// The breaker (Breaker) is the fast-fail half of the failure model: a
// peer that keeps failing transport-level is declared open and calls
// to it are refused instantly — no deadline burned dialing a black
// hole — until a cooldown admits bounded half-open probes and
// consecutive successes close it again. The retrier (Retrier) is the
// bounded-persistence half: retries draw on a per-class token budget
// replenished as a fraction of request volume (the Finagle retry-
// budget design), so retry amplification under a dead dependency is
// capped by construction rather than by tuning. The two compose:
// breakers bound how long failures are *attempted*, budgets bound how
// often they are *retried*.
//
// The limiter follows the CoDel (Controlled Delay) insight: a queue is
// only a problem when it is *standing* — when even the minimum queueing
// delay observed over an interval stays above a target, the system is
// persistently oversubscribed and adding waiters only adds latency.
// The limiter therefore bounds concurrency with a slot pool, measures
// how long admitted requests waited for a slot, and flips into a
// shedding state when the per-interval minimum wait exceeds the
// target; while shedding, arrivals that cannot be served immediately
// are rejected at once instead of queueing. A free slot admits
// instantly regardless of state (and its zero-delay observation is
// what heals the shedding flag), so the limiter recovers as soon as
// real capacity returns.
package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrShed is returned by Admit when the limiter rejects a request:
// capacity is saturated and the queue-delay control law has decided
// that waiting longer would only trade availability for latency.
// Callers should translate it into 503 + Retry-After.
var ErrShed = errors.New("resilience: load shed")

// ErrClosed is returned by Admit after Close: the limiter is draining
// for shutdown and admits nothing new. It matches ErrShed under
// errors.Is, so a single errors.Is(err, ErrShed) covers both
// rejection reasons.
var ErrClosed error = closedError{}

// closedError is the concrete type behind ErrClosed; its Is method
// makes a closed limiter count as shedding.
type closedError struct{}

func (closedError) Error() string        { return "resilience: limiter closed" }
func (closedError) Is(target error) bool { return target == ErrShed }

// LimiterConfig parameterizes a Limiter. The zero value of every field
// selects a sensible default.
type LimiterConfig struct {
	// Name labels the limiter in stats and metrics ("cheap", "heavy").
	Name string
	// MaxConcurrent is the slot count — how many requests may hold
	// admission at once (default 4).
	MaxConcurrent int
	// Target is the queue-delay target: when the minimum slot-wait
	// observed over an Interval exceeds it, the limiter starts
	// shedding (default 25ms).
	Target time.Duration
	// Interval is the observation window of the control law
	// (default 4×Target).
	Interval time.Duration
	// MaxWait bounds how long one request may wait for a slot before
	// it is shed even outside the shedding state (default 4×Target).
	// The request context's deadline still applies if sooner.
	MaxWait time.Duration
	// MaxQueue bounds how many requests may wait for a slot at once;
	// arrivals beyond it are shed immediately (default 4×MaxConcurrent).
	MaxQueue int
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.Target <= 0 {
		c.Target = 25 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 4 * c.Target
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 4 * c.Target
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	return c
}

// Limiter is an adaptive admission controller: a bounded slot pool
// with CoDel-style queue-delay shedding. It is safe for concurrent
// use by any number of goroutines.
type Limiter struct {
	cfg   LimiterConfig
	slots chan struct{}

	queued   atomic.Int64
	shedding atomic.Bool
	admitted atomic.Uint64
	shed     atomic.Uint64

	closeOnce sync.Once
	closed    chan struct{}

	// The control law's interval state: the minimum slot-wait seen in
	// the current interval decides the shedding flag when it rolls.
	mu          sync.Mutex
	intervalEnd time.Time
	minDelay    time.Duration
	haveDelay   bool
}

// NewLimiter builds a Limiter from the configuration.
func NewLimiter(cfg LimiterConfig) *Limiter {
	cfg = cfg.withDefaults()
	return &Limiter{
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.MaxConcurrent),
		closed: make(chan struct{}),
	}
}

// Name returns the limiter's label.
func (l *Limiter) Name() string { return l.cfg.Name }

// Admit acquires one admission slot, waiting up to MaxWait (or the
// context's deadline, whichever is sooner) when the pool is full. It
// returns a release function that must be called exactly once when
// the admitted work completes, or an error matching ErrShed when the
// request is rejected.
func (l *Limiter) Admit(ctx context.Context) (release func(), err error) {
	select {
	case <-l.closed:
		l.shed.Add(1)
		return nil, ErrClosed
	default:
	}

	// Fast path: a free slot admits instantly, independent of the
	// shedding state — the zero-delay observation is what clears it.
	select {
	case l.slots <- struct{}{}:
		l.observe(0)
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	default:
	}

	// No free slot. While shedding, or past the queue bound, reject
	// immediately rather than joining a standing queue.
	if l.shedding.Load() {
		l.shed.Add(1)
		return nil, ErrShed
	}
	if l.queued.Load() >= int64(l.cfg.MaxQueue) {
		l.shed.Add(1)
		return nil, ErrShed
	}

	l.queued.Add(1)
	defer l.queued.Add(-1)
	start := time.Now()
	timer := time.NewTimer(l.cfg.MaxWait)
	defer timer.Stop()
	select {
	case l.slots <- struct{}{}:
		l.observe(time.Since(start))
		l.admitted.Add(1)
		return l.releaseFunc(), nil
	case <-timer.C:
		// Waited the full budget without a slot: this IS a standing
		// queue — record the delay so the control law sees it.
		l.observe(l.cfg.MaxWait)
		l.shed.Add(1)
		return nil, ErrShed
	case <-ctx.Done():
		// The client gave up; its partial wait says nothing about the
		// queue, so it is not recorded.
		l.shed.Add(1)
		return nil, ErrShed
	case <-l.closed:
		l.shed.Add(1)
		return nil, ErrClosed
	}
}

// TryAdmit acquires a slot only if one is free right now — the
// non-blocking entry point background work uses so it never competes
// with foreground requests for queue positions.
func (l *Limiter) TryAdmit() (release func(), ok bool) {
	select {
	case <-l.closed:
		return nil, false
	default:
	}
	select {
	case l.slots <- struct{}{}:
		l.observe(0)
		l.admitted.Add(1)
		return l.releaseFunc(), true
	default:
		return nil, false
	}
}

// releaseFunc returns the slot exactly once even if called twice.
func (l *Limiter) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(func() { <-l.slots }) }
}

// observe feeds one slot-wait measurement to the control law: track
// the interval minimum, and when the interval rolls decide whether a
// standing queue exists (minimum wait above target → shed).
func (l *Limiter) observe(d time.Duration) {
	now := time.Now()
	l.mu.Lock()
	if l.intervalEnd.IsZero() {
		l.intervalEnd = now.Add(l.cfg.Interval)
	}
	if !l.haveDelay || d < l.minDelay {
		l.minDelay = d
		l.haveDelay = true
	}
	if now.After(l.intervalEnd) {
		l.shedding.Store(l.minDelay > l.cfg.Target)
		l.intervalEnd = now.Add(l.cfg.Interval)
		l.haveDelay = false
	}
	l.mu.Unlock()
}

// Close rejects all future Admit calls and wakes every queued waiter
// with a shed, so a draining server answers queued-but-unadmitted
// requests promptly instead of holding them through shutdown.
// Work already admitted is unaffected. Close is idempotent.
func (l *Limiter) Close() {
	l.closeOnce.Do(func() { close(l.closed) })
}

// Shedding reports whether the control law is currently rejecting
// queue entry.
func (l *Limiter) Shedding() bool { return l.shedding.Load() }

// RetryAfter is the client back-off hint attached to shed responses:
// one control-law interval, rounded up to a whole second (Retry-After
// has second granularity).
func (l *Limiter) RetryAfter() time.Duration {
	d := l.cfg.Interval
	if d < time.Second {
		return time.Second
	}
	return d.Round(time.Second)
}

// LimiterStats is a point-in-time snapshot of one limiter.
type LimiterStats struct {
	Name          string
	MaxConcurrent int
	InUse         int
	Queued        int
	Shedding      bool
	Admitted      uint64
	Shed          uint64
}

// Stats snapshots the limiter's counters and gauges.
func (l *Limiter) Stats() LimiterStats {
	return LimiterStats{
		Name:          l.cfg.Name,
		MaxConcurrent: l.cfg.MaxConcurrent,
		InUse:         len(l.slots),
		Queued:        int(l.queued.Load()),
		Shedding:      l.shedding.Load(),
		Admitted:      l.admitted.Load(),
		Shed:          l.shed.Load(),
	}
}
