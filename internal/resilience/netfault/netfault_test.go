package netfault

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, rt http.RoundTripper, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"nonsense",
		"drop-rate=2",
		"drop-rate=x",
		"delay=-5ms",
		"delay=fast",
		"partition=a",
		"partition=a,",
		"partition=->b",
		"from=a to=b", // no fault field
		"frob=1",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
	if inj, err := Parse("  ", 1); inj != nil || err != nil {
		t.Errorf("Parse(blank) = %v, %v; want nil, nil", inj, err)
	}
}

func TestParseSpecGrammar(t *testing.T) {
	inj, err := Parse("partition=http://a:1,b:2; partition=c:3->d:4; from=a:1 to=b:2 drop-rate=0.3 delay=50ms reset-rate=0.1", 1)
	if err != nil {
		t.Fatal(err)
	}
	rules := inj.Rules()
	if len(rules) != 3 {
		t.Fatalf("rules = %d, want 3", len(rules))
	}
	if r := rules[0]; r.PartitionA != "a:1" || r.PartitionB != "b:2" || r.Directional {
		t.Fatalf("rule 0 = %+v, want bidirectional a:1,b:2 with scheme stripped", r)
	}
	if r := rules[1]; r.PartitionA != "c:3" || r.PartitionB != "d:4" || !r.Directional {
		t.Fatalf("rule 1 = %+v, want directional c:3->d:4", r)
	}
	if r := rules[2]; r.DropRate != 0.3 || r.Delay != 50*time.Millisecond || r.DelayRate != 1 || r.ResetRate != 0.1 {
		t.Fatalf("rule 2 = %+v, want drop 0.3 delay 50ms (rate 1) reset 0.1", r)
	}
}

func TestPartitionBidirectional(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	inj, err := Parse("partition=me:1,"+host, 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := inj.Bind("http://me:1").Transport(nil)
	if _, err := get(t, rt, srv.URL); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned request err = %v, want ErrPartitioned", err)
	}
	if st := inj.Stats(); st.Partitioned != 1 {
		t.Fatalf("Partitioned = %d, want 1", st.Partitioned)
	}

	// The reverse direction is blocked too: bind as the server side.
	rev, err := Parse("partition=me:1,"+host, 1)
	if err != nil {
		t.Fatal(err)
	}
	rrt := rev.Bind(host).Transport(nil)
	if _, err := get(t, rrt, "http://me:1/x"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("reverse direction err = %v, want ErrPartitioned", err)
	}

	// An uninvolved destination passes the partition check (the dial
	// itself may fail — only the injector's verdict matters here).
	resp, err := get(t, rt, "http://uninvolved.invalid:1/")
	if errors.Is(err, ErrPartitioned) {
		t.Fatalf("uninvolved destination was partitioned: %v", err)
	}
	if resp != nil {
		resp.Body.Close()
	}
}

func TestPartitionDirectional(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	// me -> srv blocked; srv -> me must pass.
	inj, _ := Parse("partition=me:1->"+host, 1)
	rt := inj.Bind("me:1").Transport(nil)
	if _, err := get(t, rt, srv.URL); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("a->b err = %v, want ErrPartitioned", err)
	}

	rev, _ := Parse("partition=me:1->"+host, 1)
	rrt := rev.Bind(host).Transport(nil)
	resp, err := get(t, rrt, srv.URL) // srv talking to itself stands in for srv->me
	if err != nil {
		t.Fatalf("reverse of a directional partition failed: %v", err)
	}
	resp.Body.Close()
}

func TestDropAndDelayAndReset(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		served++
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj, err := Parse("drop-rate=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := inj.Bind("me:1").Transport(nil)
	if _, err := get(t, rt, srv.URL); !errors.Is(err, ErrDropped) {
		t.Fatalf("drop-rate=1 err = %v, want ErrDropped", err)
	}
	if served != 0 {
		t.Fatalf("dropped request reached the server")
	}

	// Reset: the request IS delivered, the response destroyed.
	inj2, _ := Parse("reset-rate=1", 1)
	rt2 := inj2.Bind("me:1").Transport(nil)
	if _, err := get(t, rt2, srv.URL); !errors.Is(err, ErrReset) {
		t.Fatalf("reset-rate=1 err = %v, want ErrReset", err)
	}
	if served != 1 {
		t.Fatalf("reset request did not reach the server (served=%d)", served)
	}

	// Delay: measurable latency, request still succeeds.
	inj3, _ := Parse("delay=30ms", 1)
	rt3 := inj3.Bind("me:1").Transport(nil)
	start := time.Now()
	resp, err := get(t, rt3, srv.URL)
	if err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delayed request took %v, want >= 30ms", d)
	}
	if st := inj3.Stats(); st.Delays != 1 {
		t.Fatalf("Delays = %d, want 1", st.Delays)
	}
}

func TestAllMatchingRulesApply(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	// Two delay rules both match: delays accumulate (unlike
	// faultinject's first-match semantics).
	inj, err := Parse("delay=20ms; delay=20ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	rt := inj.Bind("me:1").Transport(nil)
	start := time.Now()
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("two 20ms rules delayed %v, want >= 40ms", d)
	}
}

func TestScopedRule(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	host := strings.TrimPrefix(srv.URL, "http://")

	// Rule scoped to a different destination: must not fire.
	inj, _ := Parse("to=elsewhere:9 drop-rate=1", 1)
	rt := inj.Bind("me:1").Transport(nil)
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatalf("out-of-scope rule fired: %v", err)
	}
	resp.Body.Close()

	// Scoped to this destination: fires.
	inj2, _ := Parse("to="+host+" drop-rate=1", 1)
	rt2 := inj2.Bind("me:1").Transport(nil)
	if _, err := get(t, rt2, srv.URL); !errors.Is(err, ErrDropped) {
		t.Fatalf("in-scope rule err = %v, want ErrDropped", err)
	}

	// Scoped to a different source: must not fire.
	inj3, _ := Parse("from=other:2 drop-rate=1", 1)
	rt3 := inj3.Bind("me:1").Transport(nil)
	resp, err = get(t, rt3, srv.URL)
	if err != nil {
		t.Fatalf("rule scoped to another source fired: %v", err)
	}
	resp.Body.Close()
}

func TestPauseResume(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	inj, _ := Parse("drop-rate=1", 1)
	inj.Pause()
	rt := inj.Bind("me:1").Transport(nil)
	resp, err := get(t, rt, srv.URL)
	if err != nil {
		t.Fatalf("paused injector dropped: %v", err)
	}
	resp.Body.Close()
	if inj.Enabled() {
		t.Fatal("paused injector reports Enabled")
	}
	inj.Resume()
	if _, err := get(t, rt, srv.URL); !errors.Is(err, ErrDropped) {
		t.Fatalf("resumed injector err = %v, want ErrDropped", err)
	}
}

func TestDeterministicStream(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	run := func(seed int64) []bool {
		inj, err := Parse("drop-rate=0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		rt := inj.Bind("me:1").Transport(nil)
		var outcomes []bool
		for i := 0; i < 64; i++ {
			resp, err := get(t, rt, srv.URL)
			if resp != nil {
				resp.Body.Close()
			}
			outcomes = append(outcomes, errors.Is(err, ErrDropped))
		}
		return outcomes
	}

	a, b, c := run(7), run(7), run(8)
	dropsA := 0
	diffAB, diffAC := false, false
	for i := range a {
		if a[i] {
			dropsA++
		}
		if a[i] != b[i] {
			diffAB = true
		}
		if a[i] != c[i] {
			diffAC = true
		}
	}
	if diffAB {
		t.Fatal("same seed produced different fault sequences")
	}
	if !diffAC {
		t.Fatal("different seeds produced identical fault sequences")
	}
	if dropsA == 0 || dropsA == len(a) {
		t.Fatalf("drop-rate=0.5 dropped %d/%d — stream not mixing", dropsA, len(a))
	}
}

func TestNilInjector(t *testing.T) {
	var inj *Injector
	if inj.Enabled() {
		t.Fatal("nil injector Enabled")
	}
	inj.Pause()
	inj.Resume()
	if st := inj.Stats(); st != (Stats{}) {
		t.Fatalf("nil injector stats = %+v", st)
	}
	if rt := inj.Transport(http.DefaultTransport); rt != http.DefaultTransport {
		t.Fatal("nil injector wrapped the transport")
	}
	if inj.Bind("x") != nil {
		t.Fatal("nil Bind returned non-nil")
	}
}
