// Package netfault injects faults at the network transport layer: a
// spec-driven http.RoundTripper wrapper that can drop, delay, reset,
// or fully partition traffic between named endpoints. Where the
// sibling faultinject package degrades a single node's *handlers*,
// netfault degrades the *links between nodes* — which is what a real
// datacenter partition looks like — so the cluster's breakers, retry
// budgets, and gossip suspicion can be exercised against asymmetric
// netsplits instead of only whole-process kills.
//
// A spec is one or more rules separated by ';'. Each rule is a list
// of key=value fields separated by whitespace (not commas — commas
// separate the two endpoints of a partition pair):
//
//	partition=a,b; drop-rate=0.3 delay=50ms
//
// Fields:
//
//	partition    block all traffic between the two named endpoints,
//	             "a,b" (both directions) or "a->b" (only a's requests
//	             to b); other fields in the same rule are ignored
//	from         source endpoint the rule applies to ("*" or empty matches all)
//	to           destination endpoint the rule applies to ("*" or empty matches all)
//	drop-rate    probability of dropping the request (error without I/O)
//	delay        injected latency before the request is sent
//	delay-rate   probability of injecting the delay (default 1 when delay is set)
//	reset-rate   probability of a connection reset: the request is
//	             delivered but the response is destroyed, so the
//	             caller cannot tell whether the peer acted on it —
//	             the case an idempotency gate exists for
//
// Endpoints are host:port strings (a peer URL minus its scheme). The
// source endpoint is set with Bind (an injector wraps one node's
// transport, so every request shares a source); the destination is
// the request URL's host. Unlike faultinject's first-match rules,
// every matching netfault rule applies: partitions and drops from any
// rule block the request, and delays accumulate.
//
// Decisions are drawn from a deterministic splitmix64 stream, so a
// fixed seed reproduces a fault sequence exactly. Pause/Resume flip
// the whole injector atomically, which is how the netsplit scenario
// starts and heals a partition mid-run.
package netfault

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// ErrDropped marks a request the injector dropped before any I/O: the
// network ate it.
var ErrDropped = errors.New("netfault: request dropped")

// ErrPartitioned marks a request blocked by a partition rule: no
// route between the two endpoints.
var ErrPartitioned = errors.New("netfault: link partitioned")

// ErrReset marks a request whose response was destroyed after
// delivery: the caller cannot know whether the peer acted on it.
var ErrReset = errors.New("netfault: connection reset")

// Rule is one parsed spec rule.
type Rule struct {
	// PartitionA/PartitionB name a blocked endpoint pair; Directional
	// limits the block to A's requests toward B.
	PartitionA  string
	PartitionB  string
	Directional bool

	From      string
	To        string
	DropRate  float64
	Delay     time.Duration
	DelayRate float64
	ResetRate float64
}

// partition reports whether the rule is a partition rule.
func (r Rule) partition() bool { return r.PartitionA != "" }

// Stats counts the faults an injector has delivered.
type Stats struct {
	Drops       uint64
	Delays      uint64
	Resets      uint64
	Partitioned uint64
}

// Injector applies parsed fault rules to outbound requests. The zero
// of *Injector (nil) is valid and injects nothing, so callers can
// hold one unconditionally.
type Injector struct {
	rules []Rule
	self  string
	seed  uint64
	ctr   atomic.Uint64

	paused atomic.Bool

	drops       atomic.Uint64
	delays      atomic.Uint64
	resets      atomic.Uint64
	partitioned atomic.Uint64
}

// Parse builds an Injector from a spec string. An empty spec returns
// (nil, nil): fault injection disabled.
func Parse(spec string, seed int64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	inj := &Injector{
		seed: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d,
	}
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		r, err := parseRule(rs)
		if err != nil {
			return nil, err
		}
		inj.rules = append(inj.rules, r)
	}
	if len(inj.rules) == 0 {
		return nil, fmt.Errorf("netfault: spec %q has no rules", spec)
	}
	return inj, nil
}

func parseRule(rs string) (Rule, error) {
	var r Rule
	sawFault := false
	for _, field := range strings.Fields(rs) {
		k, v, ok := strings.Cut(field, "=")
		if !ok || v == "" {
			return r, fmt.Errorf("netfault: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "partition":
			if a, b, dir := strings.Cut(v, "->"); dir {
				r.PartitionA, r.PartitionB, r.Directional = a, b, true
			} else if a, b, pair := strings.Cut(v, ","); pair {
				r.PartitionA, r.PartitionB = a, b
			} else {
				return r, fmt.Errorf("netfault: partition %q wants a,b or a->b", v)
			}
			if r.PartitionA == "" || r.PartitionB == "" {
				return r, fmt.Errorf("netfault: partition %q names an empty endpoint", v)
			}
			r.PartitionA, r.PartitionB = stripScheme(r.PartitionA), stripScheme(r.PartitionB)
			sawFault = true
		case "from":
			r.From = stripScheme(v)
		case "to":
			r.To = stripScheme(v)
		case "drop-rate":
			if r.DropRate, err = parseRate(k, v); err != nil {
				return r, err
			}
			sawFault = true
		case "delay":
			if r.Delay, err = time.ParseDuration(v); err != nil {
				return r, fmt.Errorf("netfault: delay %q: %v", v, err)
			}
			if r.Delay < 0 {
				return r, fmt.Errorf("netfault: delay %q is negative", v)
			}
			sawFault = true
		case "delay-rate":
			if r.DelayRate, err = parseRate(k, v); err != nil {
				return r, err
			}
		case "reset-rate":
			if r.ResetRate, err = parseRate(k, v); err != nil {
				return r, err
			}
			sawFault = true
		default:
			return r, fmt.Errorf("netfault: unknown field %q", k)
		}
	}
	if !sawFault {
		return r, fmt.Errorf("netfault: rule %q injects nothing (want partition, drop-rate, delay, or reset-rate)", rs)
	}
	if r.Delay > 0 && r.DelayRate == 0 {
		r.DelayRate = 1
	}
	return r, nil
}

func parseRate(k, v string) (float64, error) {
	f, err := strconv.ParseFloat(v, 64)
	if err != nil || f < 0 || f > 1 {
		return 0, fmt.Errorf("netfault: %s %q wants a probability in [0,1]", k, v)
	}
	return f, nil
}

// Bind sets the injector's source endpoint (this node's host:port),
// against which from= and partition endpoints are matched. It returns
// the injector for chaining and is a no-op on nil.
func (inj *Injector) Bind(self string) *Injector {
	if inj != nil {
		inj.self = stripScheme(self)
	}
	return inj
}

// Pause disables the injector until Resume; the spec is retained.
func (inj *Injector) Pause() {
	if inj != nil {
		inj.paused.Store(true)
	}
}

// Resume re-enables a paused injector.
func (inj *Injector) Resume() {
	if inj != nil {
		inj.paused.Store(false)
	}
}

// Enabled reports whether the injector exists and is not paused.
func (inj *Injector) Enabled() bool {
	return inj != nil && !inj.paused.Load()
}

// Stats returns a snapshot of the injector's fault counters.
func (inj *Injector) Stats() Stats {
	if inj == nil {
		return Stats{}
	}
	return Stats{
		Drops:       inj.drops.Load(),
		Delays:      inj.delays.Load(),
		Resets:      inj.resets.Load(),
		Partitioned: inj.partitioned.Load(),
	}
}

// Rules returns the parsed rules (for diagnostics).
func (inj *Injector) Rules() []Rule {
	if inj == nil {
		return nil
	}
	return inj.rules
}

// Transport wraps base (nil means http.DefaultTransport) with the
// injector. A nil injector returns base unchanged, so wiring is
// unconditional at call sites.
func (inj *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if inj == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{inj: inj, base: base}
}

type transport struct {
	inj  *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inj := t.inj
	if !inj.Enabled() {
		return t.base.RoundTrip(req)
	}
	to := req.URL.Host
	var delay time.Duration
	reset := false
	for _, r := range inj.rules {
		if r.partition() {
			if inj.partitionBlocks(r, to) {
				inj.partitioned.Add(1)
				return nil, fmt.Errorf("%w: %s -> %s", ErrPartitioned, inj.self, to)
			}
			continue
		}
		if !match(r.From, inj.self) || !match(r.To, to) {
			continue
		}
		if r.DropRate > 0 && inj.draw() < r.DropRate {
			inj.drops.Add(1)
			return nil, fmt.Errorf("%w: %s -> %s", ErrDropped, inj.self, to)
		}
		if r.Delay > 0 && inj.draw() < r.DelayRate {
			delay += r.Delay
		}
		if r.ResetRate > 0 && inj.draw() < r.ResetRate {
			reset = true
		}
	}
	if delay > 0 {
		inj.delays.Add(1)
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if reset {
		// The request reached the peer — the peer may have acted on
		// it — but the response is lost on the wire. Only retries of
		// idempotent requests are safe after this.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inj.resets.Add(1)
		return nil, fmt.Errorf("%w: %s -> %s", ErrReset, inj.self, to)
	}
	return resp, nil
}

// partitionBlocks reports whether partition rule r blocks a request
// from the bound source to the given destination.
func (inj *Injector) partitionBlocks(r Rule, to string) bool {
	if r.Directional {
		return r.PartitionA == inj.self && r.PartitionB == to
	}
	return (r.PartitionA == inj.self && r.PartitionB == to) ||
		(r.PartitionB == inj.self && r.PartitionA == to)
}

func match(pattern, endpoint string) bool {
	return pattern == "" || pattern == "*" || pattern == endpoint
}

func stripScheme(s string) string {
	s = strings.TrimPrefix(s, "http://")
	s = strings.TrimPrefix(s, "https://")
	return strings.TrimSuffix(s, "/")
}

// draw returns the next deterministic uniform [0,1) variate
// (splitmix64 over a shared atomic counter).
func (inj *Injector) draw() float64 {
	z := inj.seed + inj.ctr.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
