package timeline

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ttmcas/internal/market"
	"ttmcas/internal/technode"
)

func validSpec() Spec {
	return Spec{
		Base:         "baseline",
		HorizonWeeks: 20,
		Segments: []Segment{
			{Kind: KindFabOutage, Node: "40nm", StartWeek: 2, EndWeek: 10, Depth: 0.5, Ramp: RampStep},
		},
	}
}

// Every invalid spec must wrap ErrInvalidSpec (the jobs and HTTP layers
// key 422 off it) and say what is wrong.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"unknown base", func(s *Spec) { s.Base = "no-such-scenario" }, "unknown base scenario"},
		{"zero horizon", func(s *Spec) { s.HorizonWeeks = 0 }, "horizon_weeks"},
		{"negative horizon", func(s *Spec) { s.HorizonWeeks = -4 }, "horizon_weeks"},
		{"negative step", func(s *Spec) { s.StepWeeks = -1 }, "step_weeks"},
		{"too many steps", func(s *Spec) { s.HorizonWeeks = 1e6 }, "exceed the limit"},
		{"no segments", func(s *Spec) { s.Segments = nil }, "no segments"},
		{"missing kind", func(s *Spec) { s.Segments[0].Kind = "" }, "missing segment kind"},
		{"unknown kind", func(s *Spec) { s.Segments[0].Kind = "meteor" }, "unknown segment kind"},
		{"unknown node", func(s *Spec) { s.Segments[0].Node = "3nm-and-a-half" }, "segment 0"},
		{"negative start", func(s *Spec) { s.Segments[0].StartWeek = -1 }, "start_week"},
		{"end before start", func(s *Spec) { s.Segments[0].EndWeek = 1 }, "end_week"},
		{"zero depth", func(s *Spec) { s.Segments[0].Depth = 0 }, "depth"},
		{"depth above one", func(s *Spec) { s.Segments[0].Depth = 1.5 }, "depth"},
		{"unknown ramp", func(s *Spec) { s.Segments[0].Ramp = "cliff" }, "unknown ramp"},
		{"step ramp with weeks", func(s *Spec) { s.Segments[0].RampWeeks = 2 }, "step ramp"},
		{"ramp outgrows window", func(s *Spec) {
			s.Segments[0].Ramp = RampLinear
			s.Segments[0].RampWeeks = 20
		}, "does not fit"},
		{"overlapping same node", func(s *Spec) {
			s.Segments = append(s.Segments, Segment{
				Kind: KindFabOutage, Node: "40nm", StartWeek: 8, EndWeek: 14, Depth: 0.3, Ramp: RampStep,
			})
		}, "overlap"},
		{"overlap via recovery tail", func(s *Spec) {
			s.Segments[0].Ramp = RampLinear
			s.Segments[0].RampWeeks = 1
			s.Segments[0].RecoverWeeks = 6
			s.Segments = append(s.Segments, Segment{
				Kind: KindFabOutage, Node: "40nm", StartWeek: 12, EndWeek: 18, Depth: 0.3, Ramp: RampStep,
			})
		}, "overlap"},
		{"fractional demand window", func(s *Spec) {
			s.Segments[0] = Segment{Kind: KindDemandShock, StartWeek: 1.5, EndWeek: 4, Multiplier: 1.5}
		}, "whole numbers"},
		{"demand without multiplier", func(s *Spec) {
			s.Segments[0] = Segment{Kind: KindDemandShock, StartWeek: 1, EndWeek: 4}
		}, "positive multiplier"},
		{"utilization at one", func(s *Spec) {
			s.Segments[0] = Segment{Kind: KindDemandShock, StartWeek: 1, EndWeek: 4, Multiplier: 1.5, Utilization: 1}
		}, "utilization"},
		{"too many sub-shocks", func(s *Spec) {
			s.Segments[0] = Segment{Kind: KindDemandShock, StartWeek: 1, EndWeek: 4, Shocks: 99}
		}, "shocks"},
		{"zero-delta drift", func(s *Spec) {
			s.Segments[0] = Segment{Kind: KindQueueDrift, StartWeek: 1, EndWeek: 4}
		}, "delta_weeks"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mut(&s)
			err := s.Validate(Limits{})
			if err == nil {
				t.Fatalf("Validate accepted the spec")
			}
			if !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidSpec", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateAccepts(t *testing.T) {
	s := validSpec()
	if err := s.Validate(Limits{}); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// Same kind on different nodes may overlap in time.
	s.Segments = append(s.Segments, Segment{
		Kind: KindFabOutage, Node: "7nm", StartWeek: 2, EndWeek: 10, Depth: 0.5, Ramp: RampStep,
	})
	// Different kinds on the same node may too.
	s.Segments = append(s.Segments, Segment{
		Kind: KindQueueDrift, Node: "40nm", StartWeek: 2, EndWeek: 10, DeltaWeeks: 1,
	})
	if err := s.Validate(Limits{}); err != nil {
		t.Fatalf("overlap across kinds/nodes rejected: %v", err)
	}
	// Every shipped episode must validate under default limits.
	for _, ep := range Episodes() {
		if err := ep.Spec.Validate(Limits{}); err != nil {
			t.Errorf("episode %s: %v", ep.Name, err)
		}
	}
}

func TestStepCount(t *testing.T) {
	cases := []struct {
		horizon, step float64
		want          int
	}{
		{104, 0, 105}, // default 1-week steps, endpoint included
		{104, 1, 105},
		{52, 2, 27},
		{10, 4, 3},  // weeks 0, 4, 8
		{12, 4, 4},  // weeks 0, 4, 8, 12
		{0.5, 1, 1}, // only week 0 fits
		{0, 1, 0},
		{-3, 1, 0},
	}
	for _, tc := range cases {
		s := Spec{HorizonWeeks: tc.horizon, StepWeeks: tc.step}
		if got := s.StepCount(); got != tc.want {
			t.Errorf("StepCount(horizon=%v, step=%v) = %d, want %d", tc.horizon, tc.step, got, tc.want)
		}
	}
}

// The composed conditions must hit the segment targets exactly: full
// capacity before the start, exactly 1−Depth inside the hold window,
// exactly full again after recovery — the invariant the episode
// endpoint oracles build on.
func TestFabOutageComposition(t *testing.T) {
	n40 := technode.N40
	tl, err := Compile(Spec{
		Base:         "baseline",
		HorizonWeeks: 40,
		Segments: []Segment{
			{Kind: KindFabOutage, Node: "40nm", StartWeek: 4, EndWeek: 16,
				Depth: 0.75, Ramp: RampLinear, RampWeeks: 2, RecoverWeeks: 12},
		},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	capAt := func(step int) float64 {
		c := tl.ConditionsAt(step)
		if v, ok := c.NodeCapacity[n40]; ok {
			return v
		}
		return 1
	}
	if got := capAt(0); got != 1 {
		t.Errorf("week 0 capacity %v, want exactly 1", got)
	}
	if got := capAt(5); got != 0.625 {
		t.Errorf("mid-ramp week 5 capacity %v, want 0.625", got)
	}
	if got := capAt(6); got != 0.25 {
		t.Errorf("hold week 6 capacity %v, want exactly 0.25", got)
	}
	if got := capAt(15); got != 0.25 {
		t.Errorf("hold week 15 capacity %v, want exactly 0.25", got)
	}
	if got := capAt(22); got <= 0.25 || got >= 1 {
		t.Errorf("mid-recovery week 22 capacity %v, want strictly between 0.25 and 1", got)
	}
	if got := capAt(28); got != 1 {
		t.Errorf("recovered week 28 capacity %v, want exactly 1", got)
	}
	if got := capAt(40); got != 1 {
		t.Errorf("final week capacity %v, want exactly 1", got)
	}
}

// Global outages scale GlobalCapacity; they compose multiplicatively
// with node outages through the conditions' own capacity() product.
func TestGlobalOutage(t *testing.T) {
	tl, err := Compile(Spec{
		Base:         "baseline",
		HorizonWeeks: 10,
		Segments: []Segment{
			{Kind: KindFabOutage, StartWeek: 2, EndWeek: 8, Depth: 0.5, Ramp: RampStep},
		},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// The baseline scenario sets GlobalCapacity to an explicit 1.
	if g := tl.ConditionsAt(0).GlobalCapacity; g != 1 {
		t.Errorf("week 0 GlobalCapacity %v, want the base scenario's 1", g)
	}
	if g := tl.ConditionsAt(4).GlobalCapacity; g != 0.5 {
		t.Errorf("week 4 GlobalCapacity %v, want 0.5", g)
	}
	if g := tl.ConditionsAt(9).GlobalCapacity; g != 1 {
		t.Errorf("week 9 GlobalCapacity %v, want restored 1", g)
	}
}

// A +delta drift followed by a −delta drift must sum to exactly zero —
// the recovery-arc idiom of the fab-fire-recovery episode.
func TestQueueDriftCancellation(t *testing.T) {
	n40 := technode.N40
	tl, err := Compile(Spec{
		Base:         "baseline",
		HorizonWeeks: 30,
		Segments: []Segment{
			{Kind: KindQueueDrift, Node: "40nm", StartWeek: 2, EndWeek: 6, DeltaWeeks: 2},
			{Kind: KindQueueDrift, Node: "40nm", StartWeek: 10, EndWeek: 20, DeltaWeeks: -2},
		},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	q := func(step int) float64 { return float64(tl.ConditionsAt(step).QueueWeeks[n40]) }
	if got := q(0); got != 0 {
		t.Errorf("week 0 queue %v, want 0", got)
	}
	if got := q(4); got != 1 {
		t.Errorf("mid-drift week 4 queue %v, want 1", got)
	}
	if got := q(8); got != 2 {
		t.Errorf("held week 8 queue %v, want exactly 2", got)
	}
	if got := q(25); got != 0 {
		t.Errorf("post-recovery week 25 queue %v, want exactly 0", got)
	}
	// A lone negative drift clamps at zero rather than going negative.
	tl2, err := Compile(Spec{
		Base:         "baseline",
		HorizonWeeks: 10,
		Segments: []Segment{
			{Kind: KindQueueDrift, Node: "40nm", StartWeek: 1, EndWeek: 4, DeltaWeeks: -3},
		},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(tl2.ConditionsAt(8).QueueWeeks[n40]); got != 0 {
		t.Errorf("clamped queue %v, want 0", got)
	}
}

// The exp ramp must land exactly on the target at the window edge (the
// normalization exists for this) and lose capacity faster than linear
// early in the window.
func TestExpRampShape(t *testing.T) {
	if got := rampShape(shapeExp, 1); got != 1 {
		t.Errorf("exp shape at u=1 is %v, want exactly 1", got)
	}
	if got := rampShape(shapeExp, 0); got != 0 {
		t.Errorf("exp shape at u=0 is %v, want 0", got)
	}
	if exp, lin := rampShape(shapeExp, 0.25), rampShape(shapeLinear, 0.25); exp <= lin {
		t.Errorf("exp shape %v at u=0.25 not ahead of linear %v", exp, lin)
	}
	for _, u := range []float64{0.1, 0.3, 0.7, 0.9} {
		if got := rampShape(shapeExp, u); got <= 0 || got >= 1 || math.IsNaN(got) {
			t.Errorf("exp shape at u=%v is %v, want in (0, 1)", u, got)
		}
	}
}

// A demand shock builds backlog during the window and, on an
// under-utilized line, drains to float-exact zero afterwards.
func TestDemandShockBacklog(t *testing.T) {
	n7 := technode.N7
	tl, err := Compile(Spec{
		Base:         "baseline",
		HorizonWeeks: 104,
		Segments: []Segment{
			{Kind: KindDemandShock, Node: "7nm", StartWeek: 10, EndWeek: 22,
				Multiplier: 2.2, Utilization: 0.5, Hoarding: true},
		},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	q := func(step int) float64 { return float64(tl.ConditionsAt(step).QueueWeeks[n7]) }
	if got := q(0); got != 0 {
		t.Errorf("pre-shock queue %v, want 0", got)
	}
	if got := q(21); got <= 1 {
		t.Errorf("peak-era queue %v, want > 1 queue-week", got)
	}
	if got := q(104); got != 0 {
		t.Errorf("post-drain queue %v, want float-exact 0", got)
	}
	// The shock is scoped to 7nm: other nodes never see it.
	if got := float64(tl.ConditionsAt(21).QueueWeeks[technode.N40]); got != 0 {
		t.Errorf("40nm queue %v during a 7nm-scoped shock, want 0", got)
	}
}

// Seeded multi-shock segments must be reproducible: same seed, same
// composed conditions; different seed, (almost surely) different.
func TestSeededShocksDeterministic(t *testing.T) {
	spec := func(seed int64) Spec {
		return Spec{
			Base:         "baseline",
			HorizonWeeks: 60,
			Segments: []Segment{
				{Kind: KindDemandShock, StartWeek: 5, EndWeek: 45, Shocks: 4, Seed: seed, Utilization: 0.5, Hoarding: true},
			},
		}
	}
	a1, err := Compile(spec(42), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Compile(spec(42), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(spec(43), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	n7 := technode.N7
	same, differ := true, false
	for i := 0; i < a1.StepCount(); i++ {
		qa1 := a1.ConditionsAt(i).QueueWeeks[n7]
		qa2 := a2.ConditionsAt(i).QueueWeeks[n7]
		if qa1 != qa2 {
			same = false
		}
		if qa1 != b.ConditionsAt(i).QueueWeeks[n7] {
			differ = true
		}
	}
	if !same {
		t.Error("same seed produced different composed conditions")
	}
	if !differ {
		t.Error("different seeds produced identical composed conditions")
	}
}

// FabDisruptions must be a deduplicated stair: fractions only where the
// composed capacity changes, matching ConditionsAt at every boundary.
func TestFabDisruptionsSchedule(t *testing.T) {
	n40 := technode.N40
	tl, err := Compile(Spec{
		Base:         "baseline",
		HorizonWeeks: 20,
		Segments: []Segment{
			{Kind: KindFabOutage, Node: "40nm", StartWeek: 4, EndWeek: 10, Depth: 0.5, Ramp: RampStep},
		},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ds := tl.FabDisruptions(n40)
	if len(ds) != 2 {
		t.Fatalf("disruption stair %v, want down-and-up (2 entries)", ds)
	}
	if float64(ds[0].AtWeek) != 4 || ds[0].Fraction != 0.5 {
		t.Errorf("first stair %+v, want week 4 fraction 0.5", ds[0])
	}
	if float64(ds[1].AtWeek) != 10 || ds[1].Fraction != 1 {
		t.Errorf("second stair %+v, want week 10 fraction 1", ds[1])
	}
	// Untouched nodes have no schedule and are omitted entirely.
	sched := tl.DisruptionSchedule([]technode.Node{n40, technode.N7})
	if _, ok := sched[technode.N7]; ok {
		t.Error("7nm got a schedule from a 40nm-only outage")
	}
	if _, ok := sched[n40]; !ok {
		t.Error("40nm missing from the schedule")
	}
}

// Compiling must leave the base scenario's shared maps untouched:
// ConditionsAt composes on copies, never in place.
func TestBaseConditionsNotMutated(t *testing.T) {
	sc, _ := market.FindScenario("fab-fire")
	before := map[technode.Node]float64{}
	for n, v := range sc.Conditions.NodeCapacity {
		before[n] = v
	}
	tl, err := Compile(Spec{
		Base:         "fab-fire",
		HorizonWeeks: 10,
		Segments: []Segment{
			{Kind: KindFabOutage, Node: "40nm", StartWeek: 0, EndWeek: 20, Depth: 0.5, Ramp: RampStep},
			{Kind: KindQueueDrift, Node: "40nm", StartWeek: 0, EndWeek: 5, DeltaWeeks: 3},
		},
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tl.StepCount(); i++ {
		tl.ConditionsAt(i)
	}
	after, _ := market.FindScenario("fab-fire")
	for n, v := range before {
		if after.Conditions.NodeCapacity[n] != v {
			t.Errorf("scenario NodeCapacity[%s] mutated: %v → %v", n, v, after.Conditions.NodeCapacity[n])
		}
	}
	// The compiled outage stacks multiplicatively on the base 0.25.
	if got := tl.ConditionsAt(5).NodeCapacity[technode.N40]; got != 0.125 {
		t.Errorf("stacked 40nm capacity %v, want 0.25 × 0.5 = 0.125", got)
	}
}

func TestEpisodeLookup(t *testing.T) {
	names := EpisodeNames()
	if len(names) < 3 {
		t.Fatalf("episode library has %d entries, want at least 3", len(names))
	}
	for _, name := range names {
		ep, ok := FindEpisode(name)
		if !ok {
			t.Fatalf("FindEpisode(%q) missed", name)
		}
		if ep.Name != name {
			t.Errorf("FindEpisode(%q).Name = %q", name, ep.Name)
		}
		if _, ok := market.FindScenario(ep.StartScenario); !ok {
			t.Errorf("episode %s anchors to unknown start scenario %q", name, ep.StartScenario)
		}
		if _, ok := market.FindScenario(ep.EndScenario); !ok {
			t.Errorf("episode %s anchors to unknown end scenario %q", name, ep.EndScenario)
		}
	}
	if _, ok := FindEpisode("alien-invasion"); ok {
		t.Error("FindEpisode invented an episode")
	}
}
