package timeline

import (
	"context"
	"fmt"
	"math"
	"sync"

	"ttmcas/internal/core"
	"ttmcas/internal/cost"
	"ttmcas/internal/design"
	"ttmcas/internal/market"
	"ttmcas/internal/sweep"
	"ttmcas/internal/units"
)

// Options tune an evaluation run.
type Options struct {
	// Workers is the parallel fan-out over timeline steps (0 =
	// GOMAXPROCS); Serial forces a plain single-goroutine loop — the
	// benchmark baseline the parallel driver must beat.
	Workers int
	Serial  bool
	// InFlight also runs the discrete-event in-flight study: an order
	// placed at week 0 simulated through the composed capacity curve
	// (core.EvaluateOperational), answering "what happens to chips
	// already on the line" — the question the per-step snapshots, which
	// re-quote at every step, cannot.
	InFlight bool
	// OnStep, when set, is called once per completed step (progress).
	OnStep func()
}

// Step is one evaluated point of the timeline.
type Step struct {
	// Week is the simulation time of the step.
	Week float64 `json:"week"`
	// TTMWeeks is the time-to-market quoted at this step's conditions;
	// nil (with Stalled set) when a required node is at zero capacity.
	TTMWeeks *float64 `json:"ttm_weeks"`
	Stalled  bool     `json:"stalled,omitempty"`
	// CAS is the Chip Agility Score at this step's conditions.
	CAS float64 `json:"cas"`
	// Conditions summarizes the composed market state.
	Conditions string `json:"conditions"`
}

// Summary aggregates a timeline run.
type Summary struct {
	// BaselineTTMWeeks and BaselineCAS are the step-0 values — the
	// pre-disruption promise every later step is measured against.
	BaselineTTMWeeks *float64 `json:"baseline_ttm_weeks"`
	BaselineCAS      float64  `json:"baseline_cas"`
	// PeakTTMWeeks is the worst finite TTM along the timeline and
	// PeakWeek when it occurs.
	PeakTTMWeeks *float64 `json:"peak_ttm_weeks"`
	PeakWeek     float64  `json:"peak_week"`
	// MinCAS is the worst agility score and CASDegradation the drop
	// from the baseline — "peak CAS degradation" in the plots.
	MinCAS         float64 `json:"min_cas"`
	MinCASWeek     float64 `json:"min_cas_week"`
	CASDegradation float64 `json:"cas_degradation"`
	// TimeToRecoverWeeks is how long after the TTM peak the quote
	// returns within 5% of the baseline; nil when it never does inside
	// the window.
	TimeToRecoverWeeks *float64 `json:"time_to_recover_weeks"`
	// AUCLossWeeks2 is the area under the excess-TTM curve,
	// Σ max(0, TTM(t) − TTM(0))·Δt in week² — the integrated schedule
	// damage of the whole episode, not just its worst moment.
	AUCLossWeeks2 float64 `json:"auc_loss_weeks2"`
	// StalledSteps counts steps where production never completes; they
	// are excluded from the peak and the area.
	StalledSteps int `json:"stalled_steps,omitempty"`
}

// InFlightNode is one node's simulated in-flight outcome.
type InFlightNode struct {
	Node            string  `json:"node"`
	LastFabComplete float64 `json:"last_fab_complete_weeks"`
	QueueDrained    float64 `json:"queue_drained_weeks"`
}

// InFlightSummary is the discrete-event study of an order placed at
// week 0 and fabricated through the composed disruption schedule.
type InFlightSummary struct {
	// PromisedTTMWeeks is the closed-form quote at week-0 conditions;
	// SimulatedTTMWeeks what the order actually takes; SlipWeeks the
	// difference.
	PromisedTTMWeeks  *float64       `json:"promised_ttm_weeks"`
	SimulatedTTMWeeks *float64       `json:"simulated_ttm_weeks"`
	SlipWeeks         float64        `json:"slip_weeks"`
	Nodes             []InFlightNode `json:"nodes,omitempty"`
}

// Result is a full timeline evaluation.
type Result struct {
	Name         string  `json:"name,omitempty"`
	Base         string  `json:"base"`
	Design       string  `json:"design"`
	Chips        float64 `json:"chips"`
	StepWeeks    float64 `json:"step_weeks"`
	HorizonWeeks float64 `json:"horizon_weeks"`
	Steps        []Step  `json:"steps"`
	Summary      Summary `json:"summary"`
	// CostUSD is the chip-creation cost — conditions-independent, so
	// evaluated once, not per step.
	CostUSD  float64          `json:"cost_usd"`
	InFlight *InFlightSummary `json:"in_flight,omitempty"`
}

// stepWorker is the pooled per-goroutine state of the batched step
// fan-out: an evaluator clone bound to its compiled source, a batch
// whose condition columns are refilled per chunk, the TTM/CAS output
// slices and a conditions scratch for the per-step summary strings.
// Workers are reused across Evaluate calls through stepWorkerPool; the
// clone is rebuilt only when a pooled worker last served a different
// evaluator, so steady-state chunk bodies allocate nothing beyond the
// per-step Conditions composition itself.
type stepWorker struct {
	src   *core.Evaluator
	ev    *core.Evaluator
	b     core.Batch
	ttm   []units.Weeks
	cas   []float64
	conds []market.Conditions
	errs  core.BatchErrors
}

var stepWorkerPool sync.Pool

func getStepWorker(ev *core.Evaluator, n int) *stepWorker {
	w, _ := stepWorkerPool.Get().(*stepWorker)
	if w == nil {
		w = &stepWorker{}
	}
	if w.src != ev {
		w.src = ev
		w.ev = ev.Clone()
	}
	w.ev.ResizeConditions(&w.b, n)
	if cap(w.ttm) < n {
		w.ttm = make([]units.Weeks, n)
	}
	w.ttm = w.ttm[:n]
	if cap(w.cas) < n {
		w.cas = make([]float64, n)
	}
	w.cas = w.cas[:n]
	if cap(w.conds) < n {
		w.conds = make([]market.Conditions, n)
	}
	w.conds = w.conds[:n]
	return w
}

func finiteWeeks(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// Evaluate runs the timeline for a design and chip count: every step
// compiles the composed conditions into the zero-allocation evaluator
// and reads TTM and CAS off it — the same kernel, and therefore the
// same bits, as the static evaluation path.
func Evaluate(ctx context.Context, m core.Model, d design.Design, n float64, tl *Timeline, opt Options) (*Result, error) {
	steps := tl.StepCount()
	res := &Result{
		Name:         tl.spec.Name,
		Base:         tl.baseName,
		Design:       d.Name,
		Chips:        n,
		StepWeeks:    tl.StepWeeks(),
		HorizonWeeks: tl.spec.HorizonWeeks,
	}

	// Compile once: the tables only depend on design × model (Compile
	// errors are conditions-independent), and per-step market state is
	// fed through the batch kernel's condition columns instead — the
	// per-step Compile was where the old path spent its allocations.
	ev, err := m.Compile(d, n, tl.ConditionsAt(0))
	if err != nil {
		return nil, err
	}
	res.Steps = make([]Step, steps)

	body := stepRangeBody(ev, tl, 0, res.Steps, opt.OnStep)

	if opt.Serial {
		for i := 0; i < steps; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := body(i, i+1); err != nil {
				return nil, err
			}
		}
	} else {
		if err := sweep.ForChunks(ctx, steps, opt.Workers, 1, body); err != nil {
			return nil, err
		}
	}

	return finishResult(ctx, m, d, n, tl, res, opt)
}

// stepRangeBody builds the chunk body shared by Evaluate and
// EvaluateSteps: it evaluates steps [base+lo, base+hi) of the timeline
// as one structure-of-arrays batch — sample s of the pooled worker's
// batch is step base+lo+s with its own composed conditions, all
// perturbation columns nil (unperturbed, exactly core.Perturbation{}) —
// and writes them into out[lo:hi]. Results land at disjoint index
// ranges of out, so chunk bodies need no synchronization.
func stepRangeBody(ev *core.Evaluator, tl *Timeline, base int, out []Step, onStep func()) func(lo, hi int) error {
	return func(lo, hi int) error {
		cnt := hi - lo
		w := getStepWorker(ev, cnt)
		defer stepWorkerPool.Put(w)
		for s := 0; s < cnt; s++ {
			c := tl.ConditionsAt(base + lo + s)
			w.conds[s] = c
			w.ev.SetConditions(&w.b, s, c)
		}
		if err := w.ev.EvalBatch(&w.b, w.ttm, &w.errs); err != nil {
			return err
		}
		if _, err := w.errs.First(); err != nil {
			return err
		}
		if err := w.ev.CASBatch(&w.b, w.cas, &w.errs); err != nil {
			return err
		}
		if _, err := w.errs.First(); err != nil {
			return err
		}
		for s := 0; s < cnt; s++ {
			i := base + lo + s
			wk := finiteWeeks(float64(w.ttm[s]))
			out[lo+s] = Step{
				Week:       tl.WeekAt(i),
				TTMWeeks:   wk,
				Stalled:    wk == nil,
				CAS:        w.cas[s],
				Conditions: w.conds[s].String(),
			}
			if onStep != nil {
				onStep()
			}
		}
		return nil
	}
}

// finishResult fills in the summary, cost, and optional in-flight study
// of a Result whose Steps are already evaluated.
func finishResult(ctx context.Context, m core.Model, d design.Design, n float64, tl *Timeline, res *Result, opt Options) (*Result, error) {
	res.Summary = summarize(res.Steps, tl.StepWeeks())

	// Cost mirrors the TTM model's manufacturing configuration so the
	// two agree on wafer counts.
	cm := cost.Model{Wafer: m.Wafer, YieldModel: m.YieldModel, Alpha: m.Alpha, Nodes: m.Nodes}
	total, err := cm.Total(d, n)
	if err != nil {
		return nil, err
	}
	res.CostUSD = float64(total)

	if opt.InFlight {
		inf, err := inFlight(ctx, m, d, n, tl)
		if err != nil {
			return nil, err
		}
		res.InFlight = inf
	}
	return res, nil
}

// EvaluateSteps evaluates the contiguous step range [lo, hi) of the
// timeline exactly as Evaluate evaluates it, writing step lo+s into
// out[s]. Because every step's conditions and outputs depend only on
// the step index, concatenating disjoint ranges reproduces Evaluate's
// step curve bit for bit — the sharding surface distributed timeline
// jobs scatter over. Error surface: a failing batch reports the error
// of its lowest-index step, and the error of the lowest range wins, so
// the first erroring shard in index order carries exactly the error the
// unsplit run would have returned.
func EvaluateSteps(ctx context.Context, m core.Model, d design.Design, n float64, tl *Timeline, lo, hi int, out []Step, opt Options) error {
	steps := tl.StepCount()
	if lo < 0 || hi > steps || lo > hi {
		return fmt.Errorf("timeline: step range [%d,%d) outside [0,%d]", lo, hi, steps)
	}
	if len(out) != hi-lo {
		return fmt.Errorf("timeline: step output length %d != range length %d", len(out), hi-lo)
	}
	ev, err := m.Compile(d, n, tl.ConditionsAt(0))
	if err != nil {
		return err
	}
	return sweep.ForChunks(ctx, hi-lo, opt.Workers, 1, stepRangeBody(ev, tl, lo, out, opt.OnStep))
}

// AssembleResult is the gather half of a sharded Evaluate: given the
// full step curve (the concatenation of EvaluateSteps ranges covering
// [0, StepCount)), it computes the summary, cost, and optional
// in-flight study exactly as Evaluate would, so a scattered run's
// Result equals the single-machine Result field for field.
func AssembleResult(ctx context.Context, m core.Model, d design.Design, n float64, tl *Timeline, steps []Step, opt Options) (*Result, error) {
	if len(steps) != tl.StepCount() {
		return nil, fmt.Errorf("timeline: assembled %d steps, want %d", len(steps), tl.StepCount())
	}
	res := &Result{
		Name:         tl.spec.Name,
		Base:         tl.baseName,
		Design:       d.Name,
		Chips:        n,
		StepWeeks:    tl.StepWeeks(),
		HorizonWeeks: tl.spec.HorizonWeeks,
		Steps:        steps,
	}
	return finishResult(ctx, m, d, n, tl, res, opt)
}

// summarize computes the headline stats from the step curve.
func summarize(steps []Step, stepWeeks float64) Summary {
	var s Summary
	if len(steps) == 0 {
		return s
	}
	s.BaselineTTMWeeks = steps[0].TTMWeeks
	s.BaselineCAS = steps[0].CAS
	s.MinCAS = steps[0].CAS
	s.MinCASWeek = steps[0].Week

	base := math.Inf(1)
	if s.BaselineTTMWeeks != nil {
		base = *s.BaselineTTMWeeks
	}
	peak := math.Inf(-1)
	peakIdx := 0
	for i, st := range steps {
		if st.TTMWeeks == nil {
			s.StalledSteps++
		} else {
			if *st.TTMWeeks > peak {
				peak = *st.TTMWeeks
				peakIdx = i
			}
			if excess := *st.TTMWeeks - base; excess > 0 && !math.IsInf(base, 1) {
				s.AUCLossWeeks2 += excess * stepWeeks
			}
		}
		if st.CAS < s.MinCAS {
			s.MinCAS = st.CAS
			s.MinCASWeek = st.Week
		}
	}
	if !math.IsInf(peak, -1) {
		s.PeakTTMWeeks = &peak
		s.PeakWeek = steps[peakIdx].Week
	}
	s.CASDegradation = s.BaselineCAS - s.MinCAS
	// Recovery: the first step at or after the peak whose quote is back
	// within 5% of the baseline. With no disruption the peak is step 0
	// and recovery is immediately zero.
	if s.BaselineTTMWeeks != nil && s.PeakTTMWeeks != nil {
		for _, st := range steps[peakIdx:] {
			if st.TTMWeeks != nil && *st.TTMWeeks <= base*1.05 {
				ttr := st.Week - steps[peakIdx].Week
				s.TimeToRecoverWeeks = &ttr
				break
			}
		}
	}
	return s
}

// inFlight runs the discrete-event study over the composed capacity
// curve for every node the design fabricates on.
func inFlight(ctx context.Context, m core.Model, d design.Design, n float64, tl *Timeline) (*InFlightSummary, error) {
	nodes := d.Nodes()
	sched := tl.DisruptionSchedule(nodes)
	op, err := m.EvaluateOperationalCtx(ctx, d, n, tl.ConditionsAt(0), core.DisruptionSchedule(sched))
	if err != nil {
		return nil, err
	}
	out := &InFlightSummary{
		PromisedTTMWeeks:  finiteWeeks(float64(op.Analytic.TTM)),
		SimulatedTTMWeeks: finiteWeeks(float64(op.TTM)),
		SlipWeeks:         float64(op.Slip),
	}
	// Deterministic order: follow the design's node list, not the map.
	for _, node := range nodes {
		nr, ok := op.PerNode[node]
		if !ok {
			continue
		}
		out.Nodes = append(out.Nodes, InFlightNode{
			Node:            node.String(),
			LastFabComplete: float64(nr.LastFabComplete),
			QueueDrained:    float64(nr.QueueDrained),
		})
	}
	return out, nil
}

// EvaluateEpisode compiles and evaluates a named library episode.
func EvaluateEpisode(ctx context.Context, m core.Model, d design.Design, n float64, name string, opt Options) (*Result, error) {
	ep, ok := FindEpisode(name)
	if !ok {
		return nil, invalidf("unknown episode %q (one of %v)", name, EpisodeNames())
	}
	tl, err := Compile(ep.Spec, Limits{})
	if err != nil {
		return nil, err
	}
	return Evaluate(ctx, m, d, n, tl, opt)
}
